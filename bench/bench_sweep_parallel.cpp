// Sweep-engine ablation: execution strategies for the Figs. 5-7 per-version
// sweep (seed trie vs. arena-compiled matcher, 1..N worker threads, and the
// delta-replay incremental engine).
//
// Every strategy must produce bit-identical VersionMetrics — this binary
// exits non-zero on any disagreement, so CI can smoke-run it. Prints
// versions/sec and speedup vs. the single-threaded seed-trie baseline, and
// writes the same numbers machine-readably to BENCH_sweep.json.
//
// Usage: bench_sweep_parallel [max_points] [max_threads]
//   max_points   versions sampled per strategy (default 48)
//   max_threads  highest thread count tried (default hardware_concurrency)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "psl/core/sweep.hpp"
#include "psl/obs/json.hpp"
#include "psl/obs/metrics.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"

namespace {

struct StrategyResult {
  std::string name;
  psl::harm::SweepOptions options;
  double wall_ms = 0.0;
  std::vector<psl::harm::VersionMetrics> series;
};

bool identical(const std::vector<psl::harm::VersionMetrics>& a,
               const std::vector<psl::harm::VersionMetrics>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].version_index != b[i].version_index || a[i].site_count != b[i].site_count ||
        a[i].mean_hosts_per_site != b[i].mean_hosts_per_site ||
        a[i].third_party_requests != b[i].third_party_requests ||
        a[i].divergent_hosts != b[i].divergent_hosts) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using Clock = std::chrono::steady_clock;

  const std::size_t max_points =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : psl::bench::kSweepPoints;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned max_threads =
      argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : hardware;
  if (max_points < 2) {
    std::cerr << "usage: bench_sweep_parallel [max_points >= 2] [max_threads >= 1]\n";
    return 2;
  }

  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();
  const psl::harm::Sweeper sweeper(history, corpus);

  std::cout << "=== Sweep engine: matcher + threading ablation ===\n";
  std::cout << "sampled versions: " << max_points << ", hardware threads: " << hardware
            << "\n\n";

  std::vector<StrategyResult> results;
  const auto add = [&](std::string name, psl::harm::SweepOptions options) {
    StrategyResult r;
    r.name = std::move(name);
    r.options = options;
    results.push_back(std::move(r));
  };

  psl::harm::SweepOptions base;
  base.max_points = max_points;

  {
    auto o = base;
    o.use_compiled = false;
    add("trie, 1 thread (seed)", o);
  }
  add("compiled, 1 thread", base);
  for (unsigned t = 2; t <= max_threads; t *= 2) {
    auto o = base;
    o.threads = t;
    add("compiled, " + std::to_string(t) + " threads", o);
  }
  {
    auto o = base;
    o.incremental = true;
    add("incremental (delta replay)", o);
  }

  for (auto& r : results) {
    const auto t0 = Clock::now();
    r.series = sweeper.sweep(r.options);
    const auto t1 = Clock::now();
    r.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  }

  bool all_agree = true;
  for (const auto& r : results) {
    if (!identical(r.series, results.front().series)) {
      all_agree = false;
      std::cout << "METRIC MISMATCH: '" << r.name << "' diverges from the seed baseline\n";
    }
  }

  const double baseline_ms = results.front().wall_ms;
  psl::util::TextTable table({"strategy", "wall time", "versions/sec", "speedup"});
  for (const auto& r : results) {
    const double vps = static_cast<double>(r.series.size()) / (r.wall_ms / 1000.0);
    table.add_row({r.name, psl::util::fmt_double(r.wall_ms, 0) + " ms",
                   psl::util::fmt_double(vps, 1),
                   psl::util::fmt_double(baseline_ms / r.wall_ms, 2) + "x"});
  }
  table.print(std::cout);
  std::cout << "\nmetric agreement across all strategies: "
            << (all_agree ? "EXACT" : "MISMATCH!") << "\n";

  std::ofstream json("BENCH_sweep.json");
  json << "{\n";
  json << "  \"sampled_versions\": " << results.front().series.size() << ",\n";
  json << "  \"hardware_threads\": " << hardware << ",\n";
  json << "  \"agreement\": " << (all_agree ? "true" : "false") << ",\n";
  json << "  \"strategies\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double vps = static_cast<double>(r.series.size()) / (r.wall_ms / 1000.0);
    json << "    {\"name\": \"" << r.name << "\", \"threads\": " << r.options.threads
         << ", \"use_compiled\": " << (r.options.use_compiled ? "true" : "false")
         << ", \"incremental\": " << (r.options.incremental ? "true" : "false")
         << ", \"wall_ms\": " << psl::util::fmt_double(r.wall_ms, 2)
         << ", \"versions_per_sec\": " << psl::util::fmt_double(vps, 2)
         << ", \"speedup_vs_seed\": " << psl::util::fmt_double(baseline_ms / r.wall_ms, 3)
         << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  psl::bench::emit_bench_delta(json);
  json << "\n}\n";
  std::cout << "wrote BENCH_sweep.json\n";

  // --- observability rerun: per-phase metrics snapshot + overhead check ----
  // Re-run the widest parallel configuration twice — once bare, once with a
  // registry attached — to (a) bound the instrumented overhead and (b) emit
  // the per-phase latency/work-steal snapshot alongside the wall-clock table.
  psl::harm::SweepOptions obs_options = base;
  obs_options.threads = max_threads;

  const auto t_null0 = Clock::now();
  const auto null_series = sweeper.sweep(obs_options);
  const auto t_null1 = Clock::now();
  const double null_ms = std::chrono::duration<double, std::milli>(t_null1 - t_null0).count();

  psl::obs::MetricsRegistry registry;
  obs_options.metrics = &registry;
  const auto t_obs0 = Clock::now();
  const auto obs_series = sweeper.sweep(obs_options);
  const auto t_obs1 = Clock::now();
  const double obs_ms = std::chrono::duration<double, std::milli>(t_obs1 - t_obs0).count();

  if (!identical(obs_series, null_series) || !identical(obs_series, results.front().series)) {
    std::cout << "METRIC MISMATCH: instrumented sweep diverges from the baseline\n";
    all_agree = false;
  }

  const double overhead_pct = null_ms > 0.0 ? (obs_ms - null_ms) / null_ms * 100.0 : 0.0;
  std::cout << "\nobservability overhead (" << max_threads << " threads): "
            << psl::util::fmt_double(null_ms, 0) << " ms bare vs "
            << psl::util::fmt_double(obs_ms, 0) << " ms instrumented ("
            << psl::util::fmt_double(overhead_pct, 1) << "%)\n";

  registry.gauge("bench.null_wall_ms").set(null_ms);
  registry.gauge("bench.instrumented_wall_ms").set(obs_ms);
  registry.gauge("bench.overhead_pct").set(overhead_pct);
  std::ofstream metrics_json("BENCH_sweep_metrics.json");
  psl::obs::write_json(registry, metrics_json);
  std::cout << "wrote BENCH_sweep_metrics.json\n";

  return all_agree ? 0 : 1;
}
