// Figure 7: number of hostnames assigned to a different site than under the
// most recent PSL, for each prior version.
//
// Paper shape: the older the list, the more hostnames land in the wrong
// site; the largest shifts come from rules added 2007-2016 (older suffixes
// accumulated more traffic), with smaller shifts in recent years.
#include <iostream>

#include "common.hpp"
#include "psl/core/incremental.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();

  std::cout << "=== Figure 7: hostnames in different sites vs. the newest list ===\n\n";

  // Full resolution, as in the paper: every one of the 1,142 versions is
  // evaluated (the incremental sweeper makes this cheap); the table prints
  // an evenly spaced sample of the series.
  psl::harm::IncrementalSweeper sweeper(history, corpus);
  const auto full_series = sweeper.sweep_all();
  std::vector<psl::harm::VersionMetrics> series;
  for (std::size_t index : history.sampled_versions(psl::bench::kSweepPoints)) {
    series.push_back(full_series[index]);
  }

  psl::util::TextTable table({"date", "rules", "divergent hostnames", "share of hosts"});
  for (const auto& m : series) {
    table.add_row({m.date.to_string(), std::to_string(m.rule_count),
                   std::to_string(m.divergent_hosts),
                   psl::util::fmt_percent(static_cast<double>(m.divergent_hosts) /
                                              static_cast<double>(corpus.unique_host_count()),
                                          1)});
  }
  table.print(std::cout);

  // Where do the shifts come from? Report divergence deltas per era.
  std::cout << "\ndivergence removed per era (bigger = more significant rules):\n";
  const auto share_at = [&](int year) {
    std::size_t best = series.front().divergent_hosts;
    for (const auto& m : series) {
      if (m.date <= psl::util::Date::from_civil(year, 12, 31)) best = m.divergent_hosts;
    }
    return best;
  };
  int prev_year = 2007;
  std::size_t prev = series.front().divergent_hosts;
  for (int year : {2010, 2013, 2016, 2019, 2022}) {
    const std::size_t now = share_at(year);
    std::cout << "  " << prev_year << "-" << year << ": " << (prev > now ? prev - now : 0)
              << " hostnames re-homed\n";
    prev = now;
    prev_year = year;
  }
  return 0;
}
