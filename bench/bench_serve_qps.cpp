// Serving-engine throughput ablation: psl::serve::Engine batched query QPS
// across worker-thread count x batch size, plus a reload-under-load run that
// hot-swaps the list ~50 times while a client keeps querying (the paper's
// "update the PSL without breaking boundary checks" scenario, §6).
//
// The engine is seeded through the full snapshot path — serialize the
// arena-compiled matcher, then load it back with the validating loader — so
// the numbers cover what a deployed daemon would actually run. Results print
// as a table and land machine-readably in BENCH_serve.json (with an embedded
// psl::obs metrics snapshot), which CI archives.
//
// Usage: bench_serve_qps [queries_per_cell] [max_threads]
//   queries_per_cell  batched queries measured per (threads, batch) cell
//                     (default 100000; CI smoke passes a small value)
//   max_threads       highest engine worker count tried (default
//                     hardware_concurrency)
#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common.hpp"
#include "psl/obs/json.hpp"
#include "psl/obs/metrics.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/engine.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/util/date.hpp"
#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"
#include "psl/util/zipf.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Hosts of varying depth, half under real suffixes (same recipe as
/// bench_micro_lookup so the two binaries measure the same workload).
std::vector<std::string> host_mix(const psl::List& list) {
  psl::util::Rng rng(7);
  psl::util::NameGen names{rng.fork(1)};
  const auto& rules = list.rules();
  std::vector<std::string> out;
  out.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    std::string host = names.fresh();
    if (rng.chance(0.5)) {
      const auto& rule = rules[rng.below(rules.size())];
      std::string suffix;
      for (const auto& label : rule.labels()) {
        if (!suffix.empty()) suffix.push_back('.');
        suffix += label;
      }
      host += "." + suffix;
    } else {
      host += "." + names.fresh() + (rng.chance(0.5) ? ".com" : ".net");
    }
    if (rng.chance(0.4)) host = "www." + host;
    out.push_back(std::move(host));
  }
  return out;
}

/// Seed an engine through the full serialize -> validate -> load path.
psl::snapshot::Snapshot snapshot_of(const psl::List& list, psl::util::Date source_date) {
  psl::snapshot::Metadata meta;
  meta.source_date = source_date;
  meta.rule_count = list.rules().size();
  const std::string bytes = psl::snapshot::serialize(psl::CompiledMatcher(list), meta);
  auto loaded = psl::snapshot::load_copy(
      {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
  if (!loaded.ok()) {
    std::cerr << "snapshot self-load failed: " << loaded.error().message << "\n";
    std::exit(2);
  }
  return *std::move(loaded);
}

struct Cell {
  std::size_t threads = 0;
  std::size_t batch = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
};

/// Drive `total` queries through the engine in batches of `batch`, keeping a
/// bounded window of in-flight futures so workers never starve.
double run_cell(psl::serve::Engine& engine, const std::vector<std::string>& hosts,
                std::size_t total, std::size_t batch) {
  const std::size_t window = 2 * engine.worker_count() + 2;
  std::deque<std::future<std::vector<std::string>>> inflight;
  std::vector<std::string> request;
  request.reserve(batch);

  const auto t0 = Clock::now();
  std::size_t sent = 0;
  std::size_t host_index = 0;
  while (sent < total) {
    request.clear();
    const std::size_t n = std::min(batch, total - sent);
    for (std::size_t i = 0; i < n; ++i) {
      request.push_back(hosts[host_index++ & 4095]);
    }
    for (;;) {
      auto submitted = engine.submit_registrable_domains(request);
      if (submitted.ok()) {
        inflight.push_back(std::move(*submitted));
        break;
      }
      // Backpressure: retire the oldest in-flight batch and retry.
      if (!inflight.empty()) {
        inflight.front().get();
        inflight.pop_front();
      } else {
        std::this_thread::yield();
      }
    }
    sent += n;
    while (inflight.size() >= window) {
      inflight.front().get();
      inflight.pop_front();
    }
  }
  while (!inflight.empty()) {
    inflight.front().get();
    inflight.pop_front();
  }
  const auto t1 = Clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t queries_per_cell =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : 100000;
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const unsigned max_threads = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : hardware;
  if (queries_per_cell < 1 || max_threads < 1) {
    std::cerr << "usage: bench_serve_qps [queries_per_cell >= 1] [max_threads >= 1]\n";
    return 2;
  }

  const psl::history::History& history = psl::bench::full_history();
  const psl::List& list = history.latest();
  const psl::util::Date latest_date = history.version_date(history.version_count() - 1);
  const std::vector<std::string> hosts = host_mix(list);

  std::cout << "=== Serving engine: threads x batch-size QPS ablation ===\n";
  std::cout << "rules: " << list.rules().size() << ", queries/cell: " << queries_per_cell
            << ", hardware threads: " << hardware << "\n\n";

  std::vector<std::size_t> thread_counts;
  for (unsigned t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  const std::vector<std::size_t> batch_sizes = {1, 16, 256, 4096};

  std::vector<Cell> cells;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t batch : batch_sizes) {
      psl::serve::Engine engine(snapshot_of(list, latest_date),
                                {.threads = threads, .max_queue_depth = 1024});
      Cell cell;
      cell.threads = threads;
      cell.batch = batch;
      cell.wall_ms = run_cell(engine, hosts, queries_per_cell, batch);
      cell.qps = static_cast<double>(queries_per_cell) / (cell.wall_ms / 1000.0);
      cells.push_back(cell);
    }
  }

  psl::util::TextTable table({"threads", "batch size", "wall time", "queries/sec"});
  for (const Cell& cell : cells) {
    table.add_row({std::to_string(cell.threads), std::to_string(cell.batch),
                   psl::util::fmt_double(cell.wall_ms, 0) + " ms",
                   psl::util::fmt_double(cell.qps, 0)});
  }
  table.print(std::cout);

  // --- cached vs uncached on a Zipf-skewed stream --------------------------
  // The serving workload the paper implies is heavily skewed (a few hot
  // hosts dominate the 498M-request corpus), which is exactly what the
  // per-worker registrable-domain caches exploit. Replay the same Zipf
  // stream through an engine with caches on (default slots) and one with
  // caches off (cache_slots = 0); same hosts, same batches — the delta is
  // the cache.
  std::vector<std::string> zipf_stream;
  {
    psl::util::Rng zrng(11);
    const psl::util::ZipfSampler zipf(hosts.size(), 1.0);
    zipf_stream.reserve(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      zipf_stream.push_back(hosts[zipf.sample(zrng)]);
    }
  }
  struct CacheCell {
    bool cached = false;
    std::size_t batch = 0;
    double wall_ms = 0.0;
    double qps = 0.0;
  };
  std::vector<CacheCell> cache_cells;
  const std::size_t cache_threads = std::min<std::size_t>(4, max_threads);
  for (const std::size_t batch : {std::size_t{16}, std::size_t{256}}) {
    for (const bool cached : {false, true}) {
      psl::serve::Engine engine(snapshot_of(list, latest_date),
                                {.threads = cache_threads,
                                 .max_queue_depth = 1024,
                                 .cache_slots = cached ? std::size_t{16384} : std::size_t{0}});
      CacheCell cell;
      cell.cached = cached;
      cell.batch = batch;
      cell.wall_ms = run_cell(engine, zipf_stream, queries_per_cell, batch);
      cell.qps = static_cast<double>(queries_per_cell) / (cell.wall_ms / 1000.0);
      cache_cells.push_back(cell);
    }
  }
  std::cout << "\n=== Zipf-skewed stream (s=1.0): registrable-domain cache on/off ===\n";
  psl::util::TextTable cache_table({"batch size", "cache", "wall time", "queries/sec"});
  for (const CacheCell& cell : cache_cells) {
    cache_table.add_row({std::to_string(cell.batch), cell.cached ? "on" : "off",
                         psl::util::fmt_double(cell.wall_ms, 0) + " ms",
                         psl::util::fmt_double(cell.qps, 0)});
  }
  cache_table.print(std::cout);

  // --- reload-under-load: hot-swap the list while a client keeps querying --
  // Alternates between the latest list and its predecessor, 50 swaps through
  // the full snapshot reload path, with batched queries racing the whole way.
  const std::size_t previous_index =
      history.version_count() >= 2 ? history.version_count() - 2 : 0;
  const psl::List previous = history.snapshot(previous_index);
  const psl::util::Date previous_date = history.version_date(previous_index);

  psl::obs::MetricsRegistry metrics;
  const std::size_t reload_threads = std::max<std::size_t>(2, max_threads);
  const std::size_t reload_batch = 256;
  constexpr int kReloads = 50;
  double reload_wall_ms = 0.0;
  std::uint64_t reload_generation = 0;
  {
    psl::serve::Engine engine(
        snapshot_of(list, latest_date),
        {.threads = reload_threads, .max_queue_depth = 1024, .metrics = &metrics});
    const std::string bytes_now = psl::snapshot::serialize(
        psl::CompiledMatcher(list), {latest_date, list.rules().size()});
    const std::string bytes_prev = psl::snapshot::serialize(
        psl::CompiledMatcher(previous), {previous_date, previous.rules().size()});

    std::thread reloader([&] {
      for (int i = 0; i < kReloads; ++i) {
        const std::string& bytes = i % 2 == 0 ? bytes_prev : bytes_now;
        auto swapped = engine.reload_snapshot(
            {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
        if (!swapped.ok()) {
          std::cerr << "reload failed: " << swapped.error().message << "\n";
          std::exit(2);
        }
        std::this_thread::yield();
      }
    });
    reload_wall_ms = run_cell(engine, hosts, queries_per_cell, reload_batch);
    reloader.join();
    reload_generation = engine.generation();
  }
  const double reload_qps = static_cast<double>(queries_per_cell) / (reload_wall_ms / 1000.0);

  std::cout << "\nreload-under-load (" << reload_threads << " threads, batch " << reload_batch
            << "): " << kReloads << " hot swaps, "
            << psl::util::fmt_double(reload_qps, 0) << " queries/sec, final generation "
            << reload_generation << "\n";
  if (reload_generation != 1u + kReloads) {
    std::cout << "GENERATION MISMATCH: expected " << (1u + kReloads) << "\n";
    return 1;
  }

  std::ofstream json("BENCH_serve.json");
  json << "{\n";
  json << "  \"rule_count\": " << list.rules().size() << ",\n";
  json << "  \"queries_per_cell\": " << queries_per_cell << ",\n";
  json << "  \"hardware_threads\": " << hardware << ",\n";
  json << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    json << "    {\"threads\": " << cell.threads << ", \"batch_size\": " << cell.batch
         << ", \"wall_ms\": " << psl::util::fmt_double(cell.wall_ms, 2)
         << ", \"qps\": " << psl::util::fmt_double(cell.qps, 1) << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"zipf_cache_comparison\": [\n";
  for (std::size_t i = 0; i < cache_cells.size(); ++i) {
    const CacheCell& cell = cache_cells[i];
    json << "    {\"threads\": " << cache_threads << ", \"batch_size\": " << cell.batch
         << ", \"cached\": " << (cell.cached ? "true" : "false")
         << ", \"wall_ms\": " << psl::util::fmt_double(cell.wall_ms, 2)
         << ", \"qps\": " << psl::util::fmt_double(cell.qps, 1) << "}"
         << (i + 1 < cache_cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"reload_under_load\": {\"threads\": " << reload_threads
       << ", \"batch_size\": " << reload_batch << ", \"reloads\": " << kReloads
       << ", \"wall_ms\": " << psl::util::fmt_double(reload_wall_ms, 2)
       << ", \"qps\": " << psl::util::fmt_double(reload_qps, 1)
       << ", \"final_generation\": " << reload_generation << "},\n";
  json << "  \"metrics\": " << psl::obs::to_json(metrics) << ",\n";
  psl::bench::emit_bench_delta(json);
  json << "\n}\n";
  std::cout << "wrote BENCH_serve.json\n";
  return 0;
}
