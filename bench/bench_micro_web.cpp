// Engineering bench: the browser-side primitives whose cost the PSL check
// sits inside — Set-Cookie processing with the supercookie check against
// the full list, cookie matching, and autofill suggestion lookups.
#include <benchmark/benchmark.h>

#include "psl/history/timeline.hpp"
#include "psl/web/autofill.hpp"
#include "psl/web/cookie_jar.hpp"

namespace {

const psl::List& full_list() {
  static const psl::history::History history =
      psl::history::generate_history(psl::history::TimelineSpec{});
  return history.latest();
}

const psl::url::Url& origin() {
  static const psl::url::Url url = *psl::url::Url::parse("https://shop.example.com/checkout");
  return url;
}

void BM_SetCookie_HostOnly(benchmark::State& state) {
  psl::web::CookieJar jar(full_list());
  for (auto _ : state) {
    benchmark::DoNotOptimize(jar.set_from_header(origin(), "sid=abc; Path=/; Secure"));
    jar.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetCookie_HostOnly);

void BM_SetCookie_WithDomainPslCheck(benchmark::State& state) {
  psl::web::CookieJar jar(full_list());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        jar.set_from_header(origin(), "sid=abc; Domain=example.com; Path=/"));
    jar.clear();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetCookie_WithDomainPslCheck);

void BM_SetCookie_SupercookieRejected(benchmark::State& state) {
  psl::web::CookieJar jar(full_list());
  for (auto _ : state) {
    benchmark::DoNotOptimize(jar.set_from_header(origin(), "track=x; Domain=com"));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SetCookie_SupercookieRejected);

void BM_CookiesForRequest(benchmark::State& state) {
  psl::web::CookieJar jar(full_list());
  for (int i = 0; i < 64; ++i) {
    jar.set_from_header(origin(), "c" + std::to_string(i) + "=v; Domain=example.com");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(jar.cookies_for(origin()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CookiesForRequest);

void BM_AutofillSuggestions(benchmark::State& state) {
  psl::web::AutofillMatcher manager;
  for (int i = 0; i < 256; ++i) {
    manager.store("host" + std::to_string(i) + ".example" + std::to_string(i % 32) + ".com",
                  "user", "pw");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(manager.suggestions("www.example7.com", full_list()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AutofillSuggestions);

}  // namespace

BENCHMARK_MAIN();
