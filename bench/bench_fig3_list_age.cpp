// Figure 3: age of the PSL copies stored in GitHub projects, as an ECDF per
// update strategy (t = 2022-12-08).
//
// Paper medians: all repositories 871 days, fixed 825 days, updated 915
// days.
#include <iostream>

#include "common.hpp"
#include "psl/core/repo_stats.hpp"
#include "psl/util/stats.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& repos = psl::bench::repo_corpus();
  const psl::harm::AgeStats stats = psl::harm::list_age_stats(repos);

  std::cout << "=== Figure 3: list age per repository (ECDF) ===\n\n";

  const psl::util::Ecdf all(stats.all);
  const psl::util::Ecdf fixed(stats.fixed);
  const psl::util::Ecdf updated(stats.updated);

  psl::util::TextTable table({"age (days)", "all", "fixed", "updated"});
  for (int age = 0; age <= 2200; age += 200) {
    table.add_row({std::to_string(age), psl::util::fmt_double(all.at(age), 2),
                   psl::util::fmt_double(fixed.at(age), 2),
                   psl::util::fmt_double(updated.at(age), 2)});
  }
  table.print(std::cout);

  std::cout << "\nMedians (paper: all 871 / fixed 825 / updated 915 days):\n";
  std::cout << "  all:     " << psl::util::fmt_double(stats.median_all, 0) << " days ("
            << stats.all.size() << " repos with measurable copies)\n";
  std::cout << "  fixed:   " << psl::util::fmt_double(stats.median_fixed, 0) << " days ("
            << stats.fixed.size() << ")\n";
  std::cout << "  updated: " << psl::util::fmt_double(stats.median_updated, 0) << " days ("
            << stats.updated.size() << ")\n";
  return 0;
}
