// Live-update gate: measures the delta recompile path (updater::DeltaCompiler)
// against from-scratch CompiledMatcher compiles over the synthetic history,
// and proves structural equivalence along the way. Two numbers the design is
// accountable for:
//
//   * single-rule reload speedup — apply one added/removed rule under the
//     heaviest TLD and reassemble the arena, versus compiling the whole list
//     from scratch. The pipeline's promise is O(diff) reloads, so this must
//     come in >= 10x or the binary exits non-zero (CI treats that like a
//     test failure, same as bench_store's dedup gate).
//   * history walk — seed at version 0 and ride every successive diff
//     through apply_diff()+compile(), versus recompiling each version from
//     scratch; every sampled pair is checked equivalent() against the
//     from-scratch arena (any mismatch exits non-zero).
//
// Results land machine-readably in BENCH_update.json, which CI archives.
//
// Usage: bench_update [--smoke] [reloads]
//   --smoke   tiny 96-version timeline (CI Release job); same 10x gate
//   reloads   single-rule reload iterations measured (default 200)
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "psl/history/timeline.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/psl/rule.hpp"
#include "psl/updater/delta_compiler.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t reloads = 200;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      reloads = static_cast<std::size_t>(std::atoll(argv[i]));
    }
  }
  const double gate = 10.0;

  psl::history::TimelineSpec spec;
  if (smoke) spec = psl::history::TimelineSpec::tiny();
  std::cerr << "[bench_update] generating " << (smoke ? "tiny" : "full")
            << " history...\n";
  const auto history = psl::history::generate_history(spec);
  const std::size_t versions = history.version_count();
  const psl::List newest = history.snapshot(versions - 1);

  // Baseline: full from-scratch compiles of the newest list.
  const std::size_t full_iters = smoke ? 20 : 50;
  std::size_t sink = 0;
  const auto t_full = Clock::now();
  for (std::size_t i = 0; i < full_iters; ++i) {
    psl::CompiledMatcher m(newest);
    sink += m.match_view("a.example.com").public_suffix.size();
  }
  const double full_ms = secs_since(t_full) / static_cast<double>(full_iters) * 1e3;

  // Single-rule reload: toggle a probe rule under .com — the heaviest TLD
  // segment in the synthetic list, so this is the expensive end of a
  // one-rule diff (the dirtied segment is the biggest one there is).
  auto probe = psl::Rule::parse("bench-probe-rule.com", psl::Section::kIcann);
  if (!probe.ok()) {
    std::cerr << "PROBE RULE PARSE FAILED\n";
    return 1;
  }
  psl::updater::DeltaCompiler delta(newest);
  {
    psl::CompiledMatcher seeded = delta.compile();  // flatten all segments once
    sink += seeded.match_view("a.example.com").public_suffix.size();
  }
  const psl::Rule probe_rule = *probe;
  const auto t_delta = Clock::now();
  for (std::size_t i = 0; i < reloads; ++i) {
    if (i % 2 == 0) {
      delta.apply({&probe_rule, 1}, {});
    } else {
      delta.apply({}, {&probe_rule, 1});
    }
    psl::CompiledMatcher m = delta.compile();
    sink += m.match_view("a.example.com").public_suffix.size();
  }
  const double delta_ms = secs_since(t_delta) / static_cast<double>(reloads) * 1e3;
  if (reloads % 2 == 1) delta.apply({}, {&probe_rule, 1});  // restore newest
  const double speedup = full_ms / delta_ms;
  const auto stats = delta.stats();

  // Spot-check the toggled-back compiler against a from-scratch compile.
  if (!psl::updater::DeltaCompiler::equivalent(delta.compile(),
                                               psl::CompiledMatcher(newest))) {
    std::cerr << "EQUIVALENCE FAILED after probe toggling\n";
    return 1;
  }

  // History walk: one DeltaCompiler rides every successive version diff;
  // sampled versions are verified structurally equivalent to a from-scratch
  // compile (the check itself is outside the timed region).
  const std::size_t stride = smoke ? 7 : 31;  // ~14 / ~37 checked pairs
  psl::List current = history.snapshot(0);
  psl::updater::DeltaCompiler walker(current);
  std::size_t checked = 0;
  double walk_secs = 0.0;
  double scratch_secs = 0.0;
  for (std::size_t v = 1; v < versions; ++v) {
    psl::List next = history.snapshot(v);
    const auto t_step = Clock::now();
    walker.apply_diff(current, next);
    psl::CompiledMatcher incremental = walker.compile();
    walk_secs += secs_since(t_step);

    const auto t_scratch = Clock::now();
    psl::CompiledMatcher scratch(next);
    scratch_secs += secs_since(t_scratch);

    if (v % stride == 0 || v == versions - 1) {
      if (!psl::updater::DeltaCompiler::equivalent(incremental, scratch)) {
        std::cerr << "EQUIVALENCE FAILED at version " << v << "\n";
        return 1;
      }
      ++checked;
    }
    current = std::move(next);
  }
  const double walk_speedup = scratch_secs / walk_secs;

  std::cout << "update: full compile " << full_ms << " ms, single-rule delta reload "
            << delta_ms << " ms -> " << speedup << "x (gate " << gate << "x)\n";
  std::cout << "history walk: " << versions - 1 << " diffs in " << walk_secs
            << "s delta vs " << scratch_secs << "s from-scratch (" << walk_speedup
            << "x), " << checked << " pairs equivalence-checked\n";
  std::cout << "segments: " << stats.segments << " live, last compile reflattened "
            << stats.dirty_segments << " (arena " << stats.arena_nodes << " nodes, sink "
            << sink << ")\n";

  std::ofstream json("BENCH_update.json");
  json << "{\n";
  json << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  json << "  \"versions\": " << versions << ",\n";
  json << "  \"rules_newest\": " << newest.rule_count() << ",\n";
  json << "  \"full_compile_ms\": " << full_ms << ",\n";
  json << "  \"delta_reload_ms\": " << delta_ms << ",\n";
  json << "  \"single_rule_speedup\": " << speedup << ",\n";
  json << "  \"speedup_gate\": " << gate << ",\n";
  json << "  \"reloads\": " << reloads << ",\n";
  json << "  \"history_walk_delta_secs\": " << walk_secs << ",\n";
  json << "  \"history_walk_scratch_secs\": " << scratch_secs << ",\n";
  json << "  \"history_walk_speedup\": " << walk_speedup << ",\n";
  json << "  \"equivalence_pairs_checked\": " << checked << ",\n";
  json << "  \"live_segments\": " << stats.segments << ",\n";
  psl::bench::emit_bench_delta(json);
  json << "\n}\n";

  if (speedup < gate) {
    std::cout << "SPEEDUP GATE FAILED: " << speedup << "x < " << gate << "x\n";
    return 1;
  }
  std::cout << "speedup gate passed (" << speedup << "x >= " << gate << "x)\n";
  return 0;
}
