// Figure 2: growth of the Public Suffix List and number of suffix
// components over time.
//
// Paper shape: 2,447 entries at birth (2007), ~8,062 by 2017, 9,368 by
// October 2022, with a visible mid-2012 spike (~1,623 Japanese city rules).
// Final component mix: 1: 17%, 2: 57.5%, 3: 25.3%, 4+: ~0.1%.
#include <iostream>

#include "common.hpp"
#include "psl/iana/root_zone.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& history = psl::bench::full_history();

  std::cout << "=== Figure 2: PSL growth and composition over time ===\n\n";
  psl::util::TextTable table({"date", "rules", "1-comp", "2-comp", "3-comp", "4+-comp"});
  for (std::size_t index : history.sampled_versions(32)) {
    const psl::List list = history.snapshot(index);
    const auto hist = list.component_histogram();
    auto at = [&](std::size_t k) {
      const auto it = hist.find(k);
      return it == hist.end() ? std::size_t{0} : it->second;
    };
    std::size_t four_plus = 0;
    for (const auto& [k, v] : hist) {
      if (k >= 4) four_plus += v;
    }
    table.add_row({history.version_date(index).to_string(), std::to_string(list.rule_count()),
                   std::to_string(at(1)), std::to_string(at(2)), std::to_string(at(3)),
                   std::to_string(four_plus)});
  }
  table.print(std::cout);

  const psl::List& latest = history.latest();
  const double total = static_cast<double>(latest.rule_count());
  const auto hist = latest.component_histogram();
  std::cout << "\nFinal composition (paper: 17% / 57.5% / 25.3% / ~0.1%):\n";
  for (const auto& [k, v] : hist) {
    std::cout << "  " << k << "-component: " << v << " ("
              << psl::util::fmt_percent(static_cast<double>(v) / total, 1) << ")\n";
  }

  // Companion breakdown the paper's Section 3 makes with the IANA root
  // zone: label the latest list's suffixes by TLD category.
  const auto& zone = psl::iana::RootZone::builtin();
  std::map<std::string_view, std::size_t> by_category;
  std::size_t private_rules = 0;
  for (const psl::Rule& rule : latest.rules()) {
    if (rule.section() == psl::Section::kPrivate) {
      ++private_rules;
      continue;
    }
    by_category[to_string(zone.categorize_suffix(rule.labels().back()))]++;
  }
  std::cout << "\nICANN-section rules by IANA root-zone category:\n";
  for (const auto& [category, count] : by_category) {
    std::cout << "  " << category << ": " << count << "\n";
  }
  std::cout << "  (private-section rules: " << private_rules << ")\n";

  std::cout << "\nMid-2012 spike check (paper: ~1,623 rules added for JP city registrations):\n";
  const auto before = history.snapshot_at(psl::util::Date::from_civil(2012, 6, 1)).rule_count();
  const auto after = history.snapshot_at(psl::util::Date::from_civil(2012, 9, 1)).rule_count();
  std::cout << "  rules 2012-06-01: " << before << " -> 2012-09-01: " << after << " (+"
            << after - before << ")\n";
  return 0;
}
