// Ablation: effective list age by update strategy and failure rate.
//
// Section 4 ranks the strategies qualitatively (fixed worst; updated-server
// "most at risk" among updaters because restarts are rare and a failed
// fetch silently keeps the stale fallback). This bench quantifies the
// ranking: for each strategy x fetch-failure-rate cell it simulates 1,000
// deployments from 2019 through the paper's measurement date and reports
// the median effective list age — then converts ages to privacy harm via
// the divergence curve (misclassified corpus hostnames at that vintage).
#include <iostream>

#include "common.hpp"
#include "psl/core/sweep.hpp"
#include "psl/updater/update_policy.hpp"
#include "psl/util/table.hpp"

int main() {
  using psl::updater::SimulationSpec;
  using psl::updater::Strategy;
  using psl::updater::UpdatePolicy;

  std::cout << "=== Ablation: update strategy vs. effective list age ===\n\n";

  SimulationSpec spec;
  spec.embed_date = psl::util::Date::from_civil(2018, 7, 1);
  spec.start = psl::util::Date::from_civil(2019, 1, 1);
  spec.end = psl::util::kMeasurementDate;
  spec.trials = 1000;

  struct Row {
    Strategy strategy;
    int cadence_days;
  };
  const Row rows[] = {
      {Strategy::kFixed, 0},
      {Strategy::kBuild, 90},
      {Strategy::kUser, 1},
      {Strategy::kServer, 365},
  };
  const double failure_rates[] = {0.0, 0.1, 0.3, 0.6, 0.9};

  psl::util::TextTable table({"strategy", "cadence (d)", "failure", "median age (d)",
                              "p90 age (d)", "stuck on fallback"});
  for (const Row& row : rows) {
    for (double failure : failure_rates) {
      UpdatePolicy policy;
      policy.strategy = row.strategy;
      policy.build_interval_days = row.cadence_days > 0 ? row.cadence_days : 90;
      policy.restart_interval_days = row.cadence_days > 0 ? row.cadence_days : 1;
      policy.fetch_failure_rate = failure;
      const auto result = simulate(policy, spec);
      table.add_row({std::string(to_string(row.strategy)), std::to_string(row.cadence_days),
                     psl::util::fmt_percent(failure, 0),
                     psl::util::fmt_double(result.median_final_age, 0),
                     psl::util::fmt_double(result.p90_final_age, 0),
                     psl::util::fmt_percent(result.stuck_on_fallback, 1)});
      if (row.strategy == Strategy::kFixed) break;  // failure rate is moot
    }
  }
  table.print(std::cout);

  // Convert the median ages at 30% failure into privacy harm using the
  // request corpus: hostnames assigned to the wrong site under a list of
  // that vintage.
  std::cout << "\nHarm conversion (30% fetch failure, misclassified corpus hostnames):\n";
  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();
  const psl::harm::Sweeper sweeper(history, corpus);

  psl::util::TextTable harm_table({"strategy", "median list date", "misclassified hostnames"});
  for (const Row& row : rows) {
    UpdatePolicy policy;
    policy.strategy = row.strategy;
    policy.build_interval_days = row.cadence_days > 0 ? row.cadence_days : 90;
    policy.restart_interval_days = row.cadence_days > 0 ? row.cadence_days : 1;
    policy.fetch_failure_rate = 0.3;
    const auto result = simulate(policy, spec);
    const psl::util::Date median_date =
        spec.end - static_cast<int>(result.median_final_age);
    harm_table.add_row({std::string(to_string(row.strategy)), median_date.to_string(),
                        std::to_string(sweeper.divergence_at(median_date))});
  }
  harm_table.print(std::cout);

  std::cout << "\nExpected ordering (paper section 4): user < build < server < fixed.\n";
  return 0;
}
