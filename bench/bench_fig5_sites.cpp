// Figure 5: number of sites formed in the request corpus by each version of
// the PSL.
//
// Paper shape: broadly flat in the early years, rapid growth 2013-2016,
// then flattening; the newest list creates 359,966 more sites than the
// first (at 498M-request HTTP Archive scale — ours is a ~1/1000-scale
// corpus, so the absolute numbers are proportionally smaller).
#include <iostream>

#include "common.hpp"
#include "psl/core/incremental.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();

  std::cout << "=== Figure 5: sites formed per PSL version ===\n";
  std::cout << "corpus: " << psl::util::with_commas(static_cast<long long>(corpus.unique_host_count()))
            << " unique hostnames, "
            << psl::util::with_commas(static_cast<long long>(corpus.request_count()))
            << " requests\n\n";

  // Full resolution, as in the paper: every one of the 1,142 versions is
  // evaluated (the incremental sweeper makes this cheap); the table prints
  // an evenly spaced sample of the series.
  psl::harm::IncrementalSweeper sweeper(history, corpus);
  const auto full_series = sweeper.sweep_all();
  std::vector<psl::harm::VersionMetrics> series;
  for (std::size_t index : history.sampled_versions(psl::bench::kSweepPoints)) {
    series.push_back(full_series[index]);
  }

  psl::util::TextTable table({"date", "rules", "sites", "mean hosts/site"});
  for (const auto& m : series) {
    table.add_row({m.date.to_string(), std::to_string(m.rule_count),
                   std::to_string(m.site_count),
                   psl::util::fmt_double(m.mean_hosts_per_site, 2)});
  }
  table.print(std::cout);

  const auto additional = series.back().site_count - series.front().site_count;
  std::cout << "\nnewest vs. oldest list: +"
            << psl::util::with_commas(static_cast<long long>(additional))
            << " sites (paper: +359,966 at full scale)\n";
  std::cout << "older lists form fewer, larger sites -> privacy boundaries merge "
            << "unrelated organizations.\n";
  return 0;
}
