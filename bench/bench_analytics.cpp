// Streaming-analytics throughput and memory ablation: ingest records/sec
// through the full client -> PSLN ingest_batch frame -> net::Server ->
// census path across engine-worker count x batch size, census-query latency
// under sustained concurrent ingest, and the bounded-memory gate the
// subsystem is named for — ten million corpus records streamed through one
// Census must stay under the 64 MiB budget with every exact aggregate
// intact. The gate runs in --smoke too (it IS the CI check); a violation
// exits nonzero.
//
// Results print as tables and land machine-readably in BENCH_analytics.json
// (with an embedded psl::obs metrics snapshot covering the analytics.*
// counters), which CI archives.
//
// Usage: bench_analytics [--smoke] [records_per_cell] [max_threads]
//   --smoke           tiny wire grid for CI (20k records/cell, 2 threads);
//                     the 10M-record memory gate still runs in full
//   records_per_cell  records streamed per (threads, batch) wire cell
//                     (default 400000)
//   max_threads       highest engine worker count tried (default
//                     hardware_concurrency)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "common.hpp"
#include "psl/analytics/census.hpp"
#include "psl/net/client.hpp"
#include "psl/net/server.hpp"
#include "psl/obs/json.hpp"
#include "psl/obs/metrics.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/serve/engine.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/url/host.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kGateRecords = 10'000'000;
constexpr std::size_t kGateBudgetBytes = 64u << 20;

psl::snapshot::Snapshot snapshot_of(const psl::List& list, psl::util::Date source_date) {
  psl::snapshot::Metadata meta;
  meta.source_date = source_date;
  meta.rule_count = list.rules().size();
  const std::string bytes = psl::snapshot::serialize(psl::CompiledMatcher(list), meta);
  auto loaded = psl::snapshot::load_copy(
      {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
  if (!loaded.ok()) {
    std::cerr << "snapshot self-load failed: " << loaded.error().message << "\n";
    std::exit(2);
  }
  return *std::move(loaded);
}

/// The corpus requests as wire records; views point into the corpus's
/// hostname table, which outlives every use here.
std::vector<psl::net::WireIngestRecord> wire_records(const psl::archive::Corpus& corpus) {
  std::vector<psl::net::WireIngestRecord> out;
  out.reserve(corpus.request_count());
  std::uint64_t ts = 0;
  for (const psl::archive::Request& r : corpus.requests()) {
    out.push_back({corpus.hostname(r.page_host), corpus.hostname(r.resource_host), ts++});
  }
  return out;
}

/// One blocking ingest client on its own connection, streaming `total`
/// records in batches of `batch`, cycling through `records`. Backpressure is
/// retried — the reject leaves the connection usable.
void ingest_worker(std::uint16_t port,
                   const std::vector<psl::net::WireIngestRecord>& records,
                   std::size_t total, std::size_t batch, std::size_t offset,
                   std::atomic<bool>& failed) {
  auto client = psl::net::Client::connect("127.0.0.1", port);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.error().message << "\n";
    failed = true;
    return;
  }
  std::vector<psl::net::WireIngestRecord> request;
  request.reserve(batch);
  std::size_t sent = 0;
  std::size_t index = offset % records.size();
  while (sent < total && !failed.load(std::memory_order_relaxed)) {
    request.clear();
    const std::size_t n = std::min(batch, total - sent);
    for (std::size_t i = 0; i < n; ++i) {
      request.push_back(records[index]);
      if (++index == records.size()) index = 0;
    }
    for (;;) {
      auto ack = client->ingest_batch(request);
      if (ack.ok()) {
        if (ack->accepted != n) {
          std::cerr << "short ack: " << ack->accepted << " of " << n << "\n";
          failed = true;
          return;
        }
        break;
      }
      if (ack.error().code == "net.backpressure") {
        std::this_thread::yield();
        continue;
      }
      std::cerr << "ingest failed: " << ack.error().message << " (" << ack.error().code
                << ")\n";
      failed = true;
      return;
    }
    sent += n;
  }
}

struct Cell {
  std::size_t threads = 0;
  std::size_t batch = 0;
  double wall_ms = 0.0;
  double rps = 0.0;
};

/// Boot engine (with census) + server, split `total` records across
/// `clients` connections, return wall ms.
double run_ingest_cell(const psl::snapshot::Snapshot& seed,
                       const std::vector<psl::net::WireIngestRecord>& records,
                       std::size_t engine_threads, std::size_t clients, std::size_t total,
                       std::size_t batch, psl::obs::MetricsRegistry* metrics) {
  psl::serve::EngineOptions engine_options;
  engine_options.threads = engine_threads;
  engine_options.max_queue_depth = 1024;
  engine_options.metrics = metrics;
  engine_options.census_factory = psl::analytics::census_factory({});
  psl::serve::Engine engine(psl::snapshot::Snapshot{seed.matcher, seed.meta}, engine_options);
  psl::net::ServerOptions options;
  options.metrics = metrics;
  psl::net::Server server(engine, options);
  auto port = server.start();
  if (!port.ok()) {
    std::cerr << "server start failed: " << port.error().message << "\n";
    std::exit(2);
  }

  std::atomic<bool> failed{false};
  const std::size_t per_client = (total + clients - 1) / clients;
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    const std::size_t share = std::min(per_client, total - std::min(total, c * per_client));
    if (share == 0) break;
    pool.emplace_back(ingest_worker, *port, std::cref(records), share, batch,
                      c * per_client, std::ref(failed));
  }
  for (std::thread& t : pool) t.join();
  const auto t1 = Clock::now();
  server.shutdown();
  if (failed) std::exit(2);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

/// The census's own site-key rule, restated for the reference pass: IPs and
/// suffix-only hosts stand alone, everything else groups by eTLD+1.
std::string_view reference_site_key(std::string_view host, const psl::MatchView& m) {
  if (psl::url::looks_like_ip_literal(host)) return host;
  return m.registrable_domain.empty() ? host : m.registrable_domain;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::size_t records_per_cell = smoke ? 20000 : 400000;
  unsigned max_threads = smoke ? 2u : hardware;
  if (positional.size() > 0) {
    records_per_cell = static_cast<std::size_t>(std::atol(positional[0]));
  }
  if (positional.size() > 1) max_threads = static_cast<unsigned>(std::atoi(positional[1]));
  if (records_per_cell < 1 || max_threads < 1) {
    std::cerr
        << "usage: bench_analytics [--smoke] [records_per_cell >= 1] [max_threads >= 1]\n";
    return 2;
  }

  const psl::history::History& history = psl::bench::full_history();
  const psl::List& list = history.latest();
  const psl::util::Date latest_date = history.version_date(history.version_count() - 1);
  const psl::archive::Corpus& corpus = psl::bench::full_corpus();
  const std::vector<psl::net::WireIngestRecord> records = wire_records(corpus);
  const psl::snapshot::Snapshot seed = snapshot_of(list, latest_date);
  const std::size_t clients = smoke ? 2 : 4;

  std::cout << "=== psl::analytics wire ingest: engine threads x batch-size ablation ===\n";
  std::cout << "rules: " << list.rules().size() << ", corpus requests: " << records.size()
            << ", records/cell: " << records_per_cell << ", client connections: " << clients
            << ", hardware threads: " << hardware << "\n\n";

  std::vector<std::size_t> thread_counts;
  for (unsigned t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  const std::vector<std::size_t> batch_sizes =
      smoke ? std::vector<std::size_t>{64, 1024} : std::vector<std::size_t>{16, 256, 4096};

  std::vector<Cell> cells;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t batch : batch_sizes) {
      Cell cell;
      cell.threads = threads;
      cell.batch = batch;
      cell.wall_ms =
          run_ingest_cell(seed, records, threads, clients, records_per_cell, batch, nullptr);
      cell.rps = static_cast<double>(records_per_cell) / (cell.wall_ms / 1000.0);
      cells.push_back(cell);
    }
  }

  psl::util::TextTable table({"engine threads", "batch size", "wall time", "records/sec"});
  for (const Cell& cell : cells) {
    table.add_row({std::to_string(cell.threads), std::to_string(cell.batch),
                   psl::util::fmt_double(cell.wall_ms, 0) + " ms",
                   psl::util::fmt_double(cell.rps, 0)});
  }
  table.print(std::cout);

  // --- census-query latency under sustained ingest -------------------------
  // Ingest clients stream continuously while a dedicated connection times
  // census_query round trips — the deployed read path: every query locks
  // each shard briefly against live writers and serializes the full tracker
  // table back over the wire.
  psl::obs::MetricsRegistry metrics;
  const std::size_t query_count = smoke ? 20 : 200;
  std::vector<double> census_ms;
  std::uint64_t observed_records = 0;
  {
    psl::serve::EngineOptions engine_options;
    engine_options.threads = std::min<std::size_t>(4, max_threads);
    engine_options.max_queue_depth = 1024;
    engine_options.metrics = &metrics;
    engine_options.census_factory = psl::analytics::census_factory({});
    psl::serve::Engine engine(psl::snapshot::Snapshot{seed.matcher, seed.meta},
                              engine_options);
    psl::net::ServerOptions options;
    options.metrics = &metrics;
    psl::net::Server server(engine, options);
    auto port = server.start();
    if (!port.ok()) {
      std::cerr << "server start failed: " << port.error().message << "\n";
      return 2;
    }

    std::atomic<bool> failed{false};
    std::atomic<bool> stop{false};
    std::vector<std::thread> ingesters;
    for (std::size_t c = 0; c < clients; ++c) {
      ingesters.emplace_back([&, c] {
        while (!stop.load(std::memory_order_relaxed) && !failed) {
          ingest_worker(*port, records, records.size(), 256, c * 1024, failed);
        }
      });
    }

    auto query_client = psl::net::Client::connect("127.0.0.1", *port);
    if (!query_client.ok()) {
      std::cerr << "connect failed: " << query_client.error().message << "\n";
      failed = true;
    } else {
      census_ms.reserve(query_count);
      for (std::size_t q = 0; q < query_count && !failed; ++q) {
        const auto t0 = Clock::now();
        auto snap = query_client->census(64);
        const auto t1 = Clock::now();
        if (!snap.ok()) {
          std::cerr << "census failed: " << snap.error().message << "\n";
          failed = true;
          break;
        }
        observed_records = snap->records;
        census_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    stop = true;
    for (std::thread& t : ingesters) t.join();
    server.shutdown();
    if (failed) return 2;
  }
  std::sort(census_ms.begin(), census_ms.end());
  const auto quantile = [&](double q) {
    return census_ms[std::min(census_ms.size() - 1,
                              static_cast<std::size_t>(q * static_cast<double>(census_ms.size())))];
  };
  std::cout << "\ncensus_query under ingest (" << query_count << " queries, top_k 64): p50 "
            << psl::util::fmt_double(quantile(0.50), 2) << " ms, p95 "
            << psl::util::fmt_double(quantile(0.95), 2) << " ms, max "
            << psl::util::fmt_double(census_ms.back(), 2) << " ms ("
            << observed_records << " records in census at last query)\n";

  // --- the bounded-memory gate ---------------------------------------------
  // Ten million records — the full corpus request stream cycled — through
  // ONE census, in process (the wire adds nothing to state growth). The
  // exact aggregates must hold at scale and the whole state must fit the
  // documented 64 MiB budget. This is the CI gate: violations exit nonzero.
  std::cout << "\n=== bounded-memory gate: " << kGateRecords << " records, budget "
            << (kGateBudgetBytes >> 20) << " MiB ===\n";
  const psl::CompiledMatcher gate_matcher(list);
  psl::analytics::Census census({}, std::min<std::size_t>(4, max_threads));

  // Reference pass over ONE cycle of the stream: exact third-party count
  // and distinct hosts, against which the census totals must be exact.
  std::uint64_t reference_third_party = 0;
  std::unordered_set<std::uint32_t> referenced;
  for (const psl::archive::Request& r : corpus.requests()) {
    referenced.insert(r.page_host);
    referenced.insert(r.resource_host);
    const std::string& page = corpus.hostname(r.page_host);
    const std::string& resource = corpus.hostname(r.resource_host);
    if (reference_site_key(page, gate_matcher.match_view(page)) !=
        reference_site_key(resource, gate_matcher.match_view(resource))) {
      ++reference_third_party;
    }
  }
  const std::uint64_t cycles = (kGateRecords + records.size() - 1) / records.size();
  const std::uint64_t gate_total = cycles * records.size();

  const std::size_t gate_threads = census.shard_count();
  const auto gate_t0 = Clock::now();
  std::vector<std::thread> gate_pool;
  for (std::size_t shard = 0; shard < gate_threads; ++shard) {
    gate_pool.emplace_back([&, shard] {
      constexpr std::size_t kBatch = 1024;
      std::vector<psl::analytics::CensusRecord> batch;
      batch.reserve(kBatch);
      // Shard s streams cycles [s, s+gate_threads, ...] of the request log.
      for (std::uint64_t cycle = shard; cycle < cycles; cycle += gate_threads) {
        for (std::size_t base = 0; base < records.size(); base += kBatch) {
          const std::size_t n = std::min(kBatch, records.size() - base);
          batch.clear();
          for (std::size_t i = 0; i < n; ++i) {
            const psl::net::WireIngestRecord& r = records[base + i];
            batch.push_back({r.page_host, r.resource_host, r.timestamp_ms});
          }
          census.ingest(shard, gate_matcher, batch);
        }
      }
    });
  }
  for (std::thread& t : gate_pool) t.join();
  const double gate_wall_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - gate_t0).count();

  const psl::analytics::CensusSnapshot snap = census.snapshot(64);
  const double gate_rps = static_cast<double>(gate_total) / (gate_wall_ms / 1000.0);
  std::cout << "streamed " << gate_total << " records in "
            << psl::util::fmt_double(gate_wall_ms, 0) << " ms ("
            << psl::util::fmt_double(gate_rps, 0) << " records/sec), state "
            << psl::util::fmt_double(static_cast<double>(snap.state_bytes) / (1 << 20), 1)
            << " MiB, unique hosts " << snap.unique_hosts << ", sites " << snap.sites_formed
            << ", third-party " << snap.third_party << ", dropped " << snap.dropped << "\n";

  bool gate_ok = true;
  const auto gate_check = [&](bool ok, const std::string& what) {
    if (!ok) {
      std::cout << "GATE VIOLATION: " << what << "\n";
      gate_ok = false;
    }
  };
  gate_check(snap.state_bytes <= kGateBudgetBytes,
             "state " + std::to_string(snap.state_bytes) + " bytes exceeds budget");
  gate_check(snap.records == gate_total, "records " + std::to_string(snap.records) +
                                             " != streamed " + std::to_string(gate_total));
  gate_check(snap.third_party == cycles * reference_third_party,
             "third_party " + std::to_string(snap.third_party) + " != " +
                 std::to_string(cycles * reference_third_party));
  gate_check(snap.first_party + snap.third_party == snap.records,
             "first+third != records");
  gate_check(snap.unique_hosts == referenced.size(),
             "unique_hosts " + std::to_string(snap.unique_hosts) + " != referenced " +
                 std::to_string(referenced.size()));
  gate_check(snap.dropped == 0, "default-size filters saturated on the smoke corpus");
  if (gate_ok) std::cout << "gate: OK\n";

  std::ofstream json("BENCH_analytics.json");
  json << "{\n";
  json << "  \"rule_count\": " << list.rules().size() << ",\n";
  json << "  \"corpus_requests\": " << records.size() << ",\n";
  json << "  \"records_per_cell\": " << records_per_cell << ",\n";
  json << "  \"client_connections\": " << clients << ",\n";
  json << "  \"hardware_threads\": " << hardware << ",\n";
  json << "  \"ingest_cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    json << "    {\"threads\": " << cell.threads << ", \"batch_size\": " << cell.batch
         << ", \"wall_ms\": " << psl::util::fmt_double(cell.wall_ms, 2)
         << ", \"records_per_sec\": " << psl::util::fmt_double(cell.rps, 1) << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"census_query_under_ingest\": {\"queries\": " << query_count
       << ", \"top_k\": 64, \"p50_ms\": " << psl::util::fmt_double(quantile(0.50), 3)
       << ", \"p95_ms\": " << psl::util::fmt_double(quantile(0.95), 3)
       << ", \"max_ms\": " << psl::util::fmt_double(census_ms.back(), 3) << "},\n";
  json << "  \"memory_gate\": {\"records\": " << gate_total
       << ", \"budget_bytes\": " << kGateBudgetBytes
       << ", \"state_bytes\": " << snap.state_bytes
       << ", \"wall_ms\": " << psl::util::fmt_double(gate_wall_ms, 2)
       << ", \"records_per_sec\": " << psl::util::fmt_double(gate_rps, 1)
       << ", \"unique_hosts\": " << snap.unique_hosts
       << ", \"sites_formed\": " << snap.sites_formed
       << ", \"third_party\": " << snap.third_party << ", \"dropped\": " << snap.dropped
       << ", \"ok\": " << (gate_ok ? "true" : "false") << "},\n";
  json << "  \"metrics\": " << psl::obs::to_json(metrics) << ",\n";
  psl::bench::emit_bench_delta(json);
  json << "\n}\n";
  std::cout << "wrote BENCH_analytics.json\n";
  return gate_ok ? 0 : 1;
}
