// Figure 6: number of requests categorised as third-party by each version
// of the PSL.
//
// Paper shape: a significant drop across the list's early years (the list
// formalises ownership boundaries, removing spurious third-party labels
// caused by over-broad wildcards), a plateau, then a steady rise from 2014
// through 2022 (shared-platform suffixes split tenant traffic from platform
// CDN hosts).
#include <iostream>

#include "common.hpp"
#include "psl/core/incremental.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();

  std::cout << "=== Figure 6: third-party requests per PSL version ===\n\n";

  // Full resolution, as in the paper: every one of the 1,142 versions is
  // evaluated (the incremental sweeper makes this cheap); the table prints
  // an evenly spaced sample of the series.
  psl::harm::IncrementalSweeper sweeper(history, corpus);
  const auto full_series = sweeper.sweep_all();
  std::vector<psl::harm::VersionMetrics> series;
  for (std::size_t index : history.sampled_versions(psl::bench::kSweepPoints)) {
    series.push_back(full_series[index]);
  }

  psl::util::TextTable table({"date", "rules", "third-party requests", "share"});
  for (const auto& m : series) {
    table.add_row({m.date.to_string(), std::to_string(m.rule_count),
                   std::to_string(m.third_party_requests),
                   psl::util::fmt_percent(static_cast<double>(m.third_party_requests) /
                                              static_cast<double>(corpus.request_count()),
                                          1)});
  }
  table.print(std::cout);

  // Locate the minimum: the end of the early formalisation drop.
  std::size_t min_index = 0;
  for (std::size_t i = 1; i < series.size(); ++i) {
    if (series[i].third_party_requests < series[min_index].third_party_requests) min_index = i;
  }
  std::cout << "\nearly drop:  " << series.front().third_party_requests << " (2007) -> "
            << series[min_index].third_party_requests << " ("
            << series[min_index].date.to_string() << ")\n";
  std::cout << "later rise:  " << series[min_index].third_party_requests << " -> "
            << series.back().third_party_requests << " (2022)\n";
  std::cout << "Out-of-date lists under-count third parties: requests are wrongly "
            << "treated as first-party.\n";
  return 0;
}
