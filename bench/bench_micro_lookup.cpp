// Engineering/ablation bench: PSL matching throughput.
//
// DESIGN.md ablation #1: reversed-label trie (psl::List) vs. hash-set
// per-depth probing (psl::FlatMatcher), over the full 9,368-rule list and
// a realistic host mix. Also measures file parsing and list construction.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "psl/history/timeline.hpp"
#include "psl/psl/flat_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"

namespace {

const psl::List& full_list() {
  static const psl::history::History history =
      psl::history::generate_history(psl::history::TimelineSpec{});
  return history.latest();
}

/// Hosts of varying depth, half under real suffixes, half random.
const std::vector<std::string>& host_mix() {
  static const std::vector<std::string> hosts = [] {
    psl::util::Rng rng(7);
    psl::util::NameGen names{rng.fork(1)};
    const auto& rules = full_list().rules();
    std::vector<std::string> out;
    out.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      std::string host = names.fresh();
      if (rng.chance(0.5)) {
        const auto& rule = rules[rng.below(rules.size())];
        std::string suffix;
        for (const auto& label : rule.labels()) {
          if (!suffix.empty()) suffix.push_back('.');
          suffix += label;
        }
        host += "." + suffix;
      } else {
        host += "." + names.fresh() + (rng.chance(0.5) ? ".com" : ".net");
      }
      if (rng.chance(0.4)) host = "www." + host;
      out.push_back(std::move(host));
    }
    return out;
  }();
  return hosts;
}

void BM_TrieMatch(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.match(hosts[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieMatch);

void BM_FlatMatch(benchmark::State& state) {
  const psl::FlatMatcher matcher(full_list());
  const auto& hosts = host_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(hosts[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMatch);

void BM_RegistrableDomain(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.registrable_domain(hosts[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrableDomain);

void BM_SameSite(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.same_site(hosts[i & 4095], hosts[(i + 1) & 4095]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SameSite);

void BM_ParseFullList(benchmark::State& state) {
  const std::string file = full_list().to_file();
  for (auto _ : state) {
    auto parsed = psl::List::parse(file);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * file.size()));
}
BENCHMARK(BM_ParseFullList);

void BM_BuildFromRules(benchmark::State& state) {
  const std::vector<psl::Rule> rules = full_list().rules();
  for (auto _ : state) {
    auto copy = rules;
    benchmark::DoNotOptimize(psl::List::from_rules(std::move(copy)));
  }
}
BENCHMARK(BM_BuildFromRules);

void BM_FlatMatcherConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl::FlatMatcher(full_list()));
  }
}
BENCHMARK(BM_FlatMatcherConstruction);

}  // namespace

BENCHMARK_MAIN();
