// Engineering/ablation bench: PSL matching throughput.
//
// DESIGN.md ablation #1, extended for the query-acceleration stack:
// reversed-label trie (psl::List) vs. hash-set per-depth probing
// (psl::FlatMatcher) vs. the arena-compiled matcher (psl::CompiledMatcher),
// single match_view vs. the interleaved prefetching match_batch vs.
// batched+cached (match_batch behind a RegDomainCache, the serve-layer hot
// path) — over the full list, a realistic uniform host mix, and a
// Zipf-skewed stream. Every match benchmark also reports heap allocations
// per operation (a replaced global operator new) — match_view AND the whole
// batched path must show 0. Also measures file parsing and the construction
// cost of each matcher.
//
// Usage: bench_micro_lookup [--smoke] [google-benchmark flags]
//   --smoke   skip google-benchmark; run the fixed single-vs-batched+cached
//             Zipf comparison, write BENCH_lookup.json, and exit non-zero
//             if the batched+cached path is SLOWER than the uncached
//             single-lookup baseline (CI's bench-compare gate).
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <new>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common.hpp"
#include "psl/history/timeline.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/flat_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/regdomain_cache.hpp"
#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"
#include "psl/util/zipf.hpp"

// --- allocation counting hook -----------------------------------------------

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

const psl::List& full_list() {
  static const psl::history::History history =
      psl::history::generate_history(psl::history::TimelineSpec{});
  return history.latest();
}

/// Hosts of varying depth, half under real suffixes, half random.
const std::vector<std::string>& host_mix() {
  static const std::vector<std::string> hosts = [] {
    psl::util::Rng rng(7);
    psl::util::NameGen names{rng.fork(1)};
    const auto& rules = full_list().rules();
    std::vector<std::string> out;
    out.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      std::string host = names.fresh();
      if (rng.chance(0.5)) {
        const auto& rule = rules[rng.below(rules.size())];
        std::string suffix;
        for (const auto& label : rule.labels()) {
          if (!suffix.empty()) suffix.push_back('.');
          suffix += label;
        }
        host += "." + suffix;
      } else {
        host += "." + names.fresh() + (rng.chance(0.5) ? ".com" : ".net");
      }
      if (rng.chance(0.4)) host = "www." + host;
      out.push_back(std::move(host));
    }
    return out;
  }();
  return hosts;
}

/// Report heap allocations per match alongside throughput.
class AllocCounter {
 public:
  AllocCounter() : start_(g_alloc_count.load()) {}
  void report(benchmark::State& state) const {
    const auto allocs = static_cast<double>(g_alloc_count.load() - start_);
    state.counters["allocs/op"] =
        benchmark::Counter(allocs / static_cast<double>(state.iterations()));
  }

 private:
  std::size_t start_;
};

void BM_TrieMatch(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.match(hosts[i++ & 4095]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieMatch);

void BM_FlatMatch(benchmark::State& state) {
  const psl::FlatMatcher matcher(full_list());
  const auto& hosts = host_mix();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(hosts[i++ & 4095]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMatch);

void BM_CompiledMatch(benchmark::State& state) {
  // The allocating Match adapter — apples-to-apples with the two above.
  const psl::CompiledMatcher matcher(full_list());
  const auto& hosts = host_mix();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(hosts[i++ & 4095]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledMatch);

void BM_CompiledMatchView(benchmark::State& state) {
  // The zero-allocation hot path the sweep engine runs on. allocs/op must
  // print 0 — CI's smoke run greps for exactly that.
  const psl::CompiledMatcher matcher(full_list());
  const auto& hosts = host_mix();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match_view(hosts[i++ & 4095]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledMatchView);

/// Zipf-skewed replay over the host mix (s = 1.0): the serving regime, where
/// a handful of hot hosts dominate. Views alias host_mix() strings.
const std::vector<std::string_view>& zipf_stream() {
  static const std::vector<std::string_view> stream = [] {
    const auto& hosts = host_mix();
    psl::util::Rng rng(11);
    const psl::util::ZipfSampler zipf(hosts.size(), 1.0);
    std::vector<std::string_view> out;
    out.reserve(1 << 16);
    for (std::size_t i = 0; i < (1 << 16); ++i) out.push_back(hosts[zipf.sample(rng)]);
    return out;
  }();
  return stream;
}

/// The serve-layer fast path, minus the engine plumbing: look every host up
/// in the cache, batch the misses through match_batch, insert their
/// boundaries. Returns the number of hits (for the hit-rate report). All
/// buffers are caller-owned so the loop allocates nothing.
std::size_t cached_batch_lookup(const psl::CompiledMatcher& matcher,
                                psl::serve::RegDomainCache& cache,
                                std::span<const std::string_view> hosts,
                                std::span<std::string_view> out,
                                std::vector<std::size_t>& miss_index,
                                std::vector<std::string_view>& miss_hosts,
                                std::vector<std::uint64_t>& miss_hashes,
                                std::vector<psl::MatchView>& miss_views) {
  using psl::serve::RegDomainCache;
  miss_index.clear();
  miss_hosts.clear();
  miss_hashes.clear();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    std::string_view stripped = hosts[i];
    if (!stripped.empty() && stripped.back() == '.') stripped.remove_suffix(1);
    const std::uint64_t h = RegDomainCache::hash_host(stripped);
    std::uint32_t rd_len = 0;
    if (cache.lookup(h, rd_len)) {
      out[i] = rd_len == RegDomainCache::kNoDomain
                   ? std::string_view{}
                   : stripped.substr(stripped.size() - rd_len);
      ++hits;
    } else {
      miss_index.push_back(i);
      miss_hosts.push_back(hosts[i]);
      miss_hashes.push_back(h);
    }
  }
  miss_views.resize(miss_index.size());
  matcher.match_batch(miss_hosts, miss_views);
  for (std::size_t j = 0; j < miss_index.size(); ++j) {
    const std::string_view rd = miss_views[j].registrable_domain;
    out[miss_index[j]] = rd;
    cache.insert(miss_hashes[j],
                 rd.empty() ? RegDomainCache::kNoDomain : static_cast<std::uint32_t>(rd.size()));
  }
  return hits;
}

constexpr std::size_t kBenchBatch = 64;

void BM_CompiledMatchBatch(benchmark::State& state) {
  // The interleaved + prefetched batch walk over the uniform mix. One
  // "iteration" = one batch of kBenchBatch hosts; allocs/op must print 0.
  const psl::CompiledMatcher matcher(full_list());
  const auto& hosts = host_mix();
  std::vector<std::string_view> batch(kBenchBatch);
  std::vector<psl::MatchView> views(kBenchBatch);
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    for (std::size_t k = 0; k < kBenchBatch; ++k) batch[k] = hosts[i++ & 4095];
    benchmark::DoNotOptimize(matcher.match_batch(batch, views));
  }
  allocs.report(state);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBenchBatch));
}
BENCHMARK(BM_CompiledMatchBatch);

void BM_CompiledMatchViewZipf(benchmark::State& state) {
  // Single-lookup baseline on the skewed stream (what the cached variants
  // below are measured against).
  const psl::CompiledMatcher matcher(full_list());
  const auto& stream = zipf_stream();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match_view(stream[i++ & 0xFFFF]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledMatchViewZipf);

void BM_CompiledMatchBatchZipf(benchmark::State& state) {
  const psl::CompiledMatcher matcher(full_list());
  const auto& stream = zipf_stream();
  std::vector<std::string_view> batch(kBenchBatch);
  std::vector<psl::MatchView> views(kBenchBatch);
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    for (std::size_t k = 0; k < kBenchBatch; ++k) batch[k] = stream[i++ & 0xFFFF];
    benchmark::DoNotOptimize(matcher.match_batch(batch, views));
  }
  allocs.report(state);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBenchBatch));
}
BENCHMARK(BM_CompiledMatchBatchZipf);

void BM_CachedBatchZipf(benchmark::State& state) {
  // The full serve-layer fast path: RegDomainCache in front of match_batch,
  // on the skewed stream. Steady-state allocs/op must print 0 (the scratch
  // vectors reach their high-water capacity in the first iterations).
  const psl::CompiledMatcher matcher(full_list());
  const auto& stream = zipf_stream();
  psl::serve::RegDomainCache cache(16384);
  std::vector<std::string_view> batch(kBenchBatch);
  std::vector<std::string_view> domains(kBenchBatch);
  std::vector<std::size_t> miss_index;
  std::vector<std::string_view> miss_hosts;
  std::vector<std::uint64_t> miss_hashes;
  std::vector<psl::MatchView> miss_views;
  miss_index.reserve(kBenchBatch);
  miss_hosts.reserve(kBenchBatch);
  miss_hashes.reserve(kBenchBatch);
  miss_views.reserve(kBenchBatch);
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    for (std::size_t k = 0; k < kBenchBatch; ++k) batch[k] = stream[i++ & 0xFFFF];
    benchmark::DoNotOptimize(cached_batch_lookup(matcher, cache, batch, domains, miss_index,
                                                 miss_hosts, miss_hashes, miss_views));
  }
  allocs.report(state);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kBenchBatch));
}
BENCHMARK(BM_CachedBatchZipf);

void BM_RegistrableDomain(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.registrable_domain(hosts[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrableDomain);

void BM_SameSite(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.same_site(hosts[i & 4095], hosts[(i + 1) & 4095]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SameSite);

void BM_ParseFullList(benchmark::State& state) {
  const std::string file = full_list().to_file();
  for (auto _ : state) {
    auto parsed = psl::List::parse(file);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * file.size()));
}
BENCHMARK(BM_ParseFullList);

void BM_BuildFromRules(benchmark::State& state) {
  const std::vector<psl::Rule> rules = full_list().rules();
  for (auto _ : state) {
    auto copy = rules;
    benchmark::DoNotOptimize(psl::List::from_rules(std::move(copy)));
  }
}
BENCHMARK(BM_BuildFromRules);

void BM_FlatMatcherConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl::FlatMatcher(full_list()));
  }
}
BENCHMARK(BM_FlatMatcherConstruction);

void BM_CompiledMatcherConstruction(benchmark::State& state) {
  // The price of freezing a snapshot — what each sweep worker pays once per
  // version before its ~100k zero-allocation matches.
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl::CompiledMatcher(full_list()));
  }
}
BENCHMARK(BM_CompiledMatcherConstruction);

// --- smoke mode: the CI bench-compare gate ----------------------------------

/// Fixed-workload comparison of the three lookup strategies on the Zipf
/// stream. Writes BENCH_lookup.json; returns non-zero when the batched+
/// cached path fails to beat the uncached single-lookup baseline (the
/// regression CI's bench-compare step exists to catch).
int run_smoke() {
  using Clock = std::chrono::steady_clock;
  const psl::CompiledMatcher matcher(full_list());
  const auto& stream = zipf_stream();
  constexpr std::size_t kQueries = 1 << 19;  // ~0.5M lookups per strategy

  // Strategy 1: single uncached match_view (the baseline).
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < kQueries; ++i) {
    benchmark::DoNotOptimize(matcher.match_view(stream[i & 0xFFFF]));
  }
  const double single_ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

  // Strategy 2: batched, no cache.
  std::vector<std::string_view> batch(kBenchBatch);
  std::vector<psl::MatchView> views(kBenchBatch);
  const auto t1 = Clock::now();
  for (std::size_t i = 0; i < kQueries; i += kBenchBatch) {
    for (std::size_t k = 0; k < kBenchBatch; ++k) batch[k] = stream[(i + k) & 0xFFFF];
    benchmark::DoNotOptimize(matcher.match_batch(batch, views));
  }
  const double batched_ms = std::chrono::duration<double, std::milli>(Clock::now() - t1).count();

  // Strategy 3: batched + cached (the serve-layer fast path), swept across
  // cache sizes so BENCH_lookup.json carries a hit-rate vs. QPS curve. The
  // headline (and the regression gate) is the largest size — the engine's
  // default per-worker cache.
  struct CachePoint {
    std::size_t slots;
    double hit_rate;
    double qps;
  };
  std::vector<CachePoint> sweep;
  std::vector<std::string_view> domains(kBenchBatch);
  std::vector<std::size_t> miss_index;
  std::vector<std::string_view> miss_hosts;
  std::vector<std::uint64_t> miss_hashes;
  std::vector<psl::MatchView> miss_views;
  for (const std::size_t slots : {std::size_t{256}, std::size_t{1024}, std::size_t{4096},
                                  std::size_t{16384}}) {
    psl::serve::RegDomainCache cache(slots);
    std::size_t hits = 0;
    const auto t2 = Clock::now();
    for (std::size_t i = 0; i < kQueries; i += kBenchBatch) {
      for (std::size_t k = 0; k < kBenchBatch; ++k) batch[k] = stream[(i + k) & 0xFFFF];
      hits += cached_batch_lookup(matcher, cache, batch, domains, miss_index, miss_hosts,
                                  miss_hashes, miss_views);
    }
    const double ms = std::chrono::duration<double, std::milli>(Clock::now() - t2).count();
    sweep.push_back({slots, static_cast<double>(hits) / static_cast<double>(kQueries),
                     kQueries / (ms / 1000.0)});
  }

  const double single_qps = kQueries / (single_ms / 1000.0);
  const double batched_qps = kQueries / (batched_ms / 1000.0);
  const double cached_qps = sweep.back().qps;
  const double speedup = cached_qps / single_qps;
  const double hit_rate = sweep.back().hit_rate;

  std::cout << "=== bench_micro_lookup --smoke: Zipf stream (s=1.0), " << kQueries
            << " lookups ===\n";
  std::cout << "single match_view:   " << static_cast<std::uint64_t>(single_qps) << " qps\n";
  std::cout << "match_batch(64):     " << static_cast<std::uint64_t>(batched_qps) << " qps\n";
  for (const CachePoint& p : sweep) {
    std::cout << "batched + cached (" << p.slots << " slots): "
              << static_cast<std::uint64_t>(p.qps) << " qps (hit rate " << p.hit_rate << ")\n";
  }
  std::cout << "batched+cached vs single: " << speedup << "x\n";

  std::ofstream json("BENCH_lookup.json");
  json << "{\n";
  json << "  \"zipf_queries\": " << kQueries << ",\n";
  json << "  \"batch_size\": " << kBenchBatch << ",\n";
  json << "  \"cache_slots\": " << sweep.back().slots << ",\n";
  json << "  \"single_matchview_qps\": " << single_qps << ",\n";
  json << "  \"batched_qps\": " << batched_qps << ",\n";
  json << "  \"batched_cached_qps\": " << cached_qps << ",\n";
  json << "  \"cache_hit_rate\": " << hit_rate << ",\n";
  json << "  \"speedup_batched_cached_vs_single\": " << speedup << ",\n";
  json << "  \"cache_sweep\": [\n";
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    json << "    {\"slots\": " << sweep[i].slots << ", \"hit_rate\": " << sweep[i].hit_rate
         << ", \"qps\": " << sweep[i].qps << "}" << (i + 1 < sweep.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  psl::bench::emit_bench_delta(json);
  json << "\n}\n";
  std::cout << "wrote BENCH_lookup.json\n";

  if (cached_qps < single_qps) {
    std::cout << "REGRESSION: batched+cached is slower than the single-lookup baseline\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return run_smoke();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
