// Engineering/ablation bench: PSL matching throughput.
//
// DESIGN.md ablation #1, now three-way: reversed-label trie (psl::List) vs.
// hash-set per-depth probing (psl::FlatMatcher) vs. the arena-compiled
// matcher (psl::CompiledMatcher), over the full 9,368-rule list and a
// realistic host mix. Every match benchmark also reports heap allocations
// per operation (a replaced global operator new) — CompiledMatcher's
// match_view path must show 0. Also measures file parsing and the
// construction cost of each matcher.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "psl/history/timeline.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/flat_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"

// --- allocation counting hook -----------------------------------------------

namespace {
std::atomic<std::size_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

const psl::List& full_list() {
  static const psl::history::History history =
      psl::history::generate_history(psl::history::TimelineSpec{});
  return history.latest();
}

/// Hosts of varying depth, half under real suffixes, half random.
const std::vector<std::string>& host_mix() {
  static const std::vector<std::string> hosts = [] {
    psl::util::Rng rng(7);
    psl::util::NameGen names{rng.fork(1)};
    const auto& rules = full_list().rules();
    std::vector<std::string> out;
    out.reserve(4096);
    for (int i = 0; i < 4096; ++i) {
      std::string host = names.fresh();
      if (rng.chance(0.5)) {
        const auto& rule = rules[rng.below(rules.size())];
        std::string suffix;
        for (const auto& label : rule.labels()) {
          if (!suffix.empty()) suffix.push_back('.');
          suffix += label;
        }
        host += "." + suffix;
      } else {
        host += "." + names.fresh() + (rng.chance(0.5) ? ".com" : ".net");
      }
      if (rng.chance(0.4)) host = "www." + host;
      out.push_back(std::move(host));
    }
    return out;
  }();
  return hosts;
}

/// Report heap allocations per match alongside throughput.
class AllocCounter {
 public:
  AllocCounter() : start_(g_alloc_count.load()) {}
  void report(benchmark::State& state) const {
    const auto allocs = static_cast<double>(g_alloc_count.load() - start_);
    state.counters["allocs/op"] =
        benchmark::Counter(allocs / static_cast<double>(state.iterations()));
  }

 private:
  std::size_t start_;
};

void BM_TrieMatch(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.match(hosts[i++ & 4095]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrieMatch);

void BM_FlatMatch(benchmark::State& state) {
  const psl::FlatMatcher matcher(full_list());
  const auto& hosts = host_mix();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(hosts[i++ & 4095]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlatMatch);

void BM_CompiledMatch(benchmark::State& state) {
  // The allocating Match adapter — apples-to-apples with the two above.
  const psl::CompiledMatcher matcher(full_list());
  const auto& hosts = host_mix();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match(hosts[i++ & 4095]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledMatch);

void BM_CompiledMatchView(benchmark::State& state) {
  // The zero-allocation hot path the sweep engine runs on. allocs/op must
  // print 0 — CI's smoke run greps for exactly that.
  const psl::CompiledMatcher matcher(full_list());
  const auto& hosts = host_mix();
  std::size_t i = 0;
  const AllocCounter allocs;
  for (auto _ : state) {
    benchmark::DoNotOptimize(matcher.match_view(hosts[i++ & 4095]));
  }
  allocs.report(state);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompiledMatchView);

void BM_RegistrableDomain(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.registrable_domain(hosts[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistrableDomain);

void BM_SameSite(benchmark::State& state) {
  const psl::List& list = full_list();
  const auto& hosts = host_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(list.same_site(hosts[i & 4095], hosts[(i + 1) & 4095]));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SameSite);

void BM_ParseFullList(benchmark::State& state) {
  const std::string file = full_list().to_file();
  for (auto _ : state) {
    auto parsed = psl::List::parse(file);
    benchmark::DoNotOptimize(parsed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * file.size()));
}
BENCHMARK(BM_ParseFullList);

void BM_BuildFromRules(benchmark::State& state) {
  const std::vector<psl::Rule> rules = full_list().rules();
  for (auto _ : state) {
    auto copy = rules;
    benchmark::DoNotOptimize(psl::List::from_rules(std::move(copy)));
  }
}
BENCHMARK(BM_BuildFromRules);

void BM_FlatMatcherConstruction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl::FlatMatcher(full_list()));
  }
}
BENCHMARK(BM_FlatMatcherConstruction);

void BM_CompiledMatcherConstruction(benchmark::State& state) {
  // The price of freezing a snapshot — what each sweep worker pays once per
  // version before its ~100k zero-allocation matches.
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl::CompiledMatcher(full_list()));
  }
}
BENCHMARK(BM_CompiledMatcherConstruction);

}  // namespace

BENCHMARK_MAIN();
