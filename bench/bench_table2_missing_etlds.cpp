// Table 2: largest eTLDs in the request corpus created by subsequent rule
// additions, where at least one fixed-production project misses the rule.
//
// Paper's top rows (hostnames at HTTP-Archive scale): myshopify.com (7,848),
// digitaloceanspaces.com (3,359), smushcdn.com (3,337), r.appspot.com
// (3,194), sp.gov.br (2,024), ... and headline totals of 1,313 eTLDs
// affecting 50,750 hostnames. Our corpus embeds those platforms at a
// configurable scale (default 0.5), so rows keep the paper's ordering with
// proportionally scaled hostname counts.
#include <iostream>

#include "common.hpp"
#include "psl/core/impact.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();
  const auto& repos = psl::bench::repo_corpus();

  std::cout << "=== Table 2: largest eTLDs missing from fixed-production projects ===\n\n";

  const psl::harm::ImpactSummary summary =
      psl::harm::compute_etld_impacts(history, corpus, repos);

  psl::util::TextTable table({"eTLD", "hostnames", "rule added", "D", "Prd", "T/O", "U"});
  std::size_t rows = 0;
  for (const auto& impact : summary.impacts) {
    if (impact.missing_fixed_production == 0) continue;  // the table's filter
    table.add_row({impact.etld, std::to_string(impact.hostnames),
                   impact.rule_added.to_string(), std::to_string(impact.missing_dependency),
                   std::to_string(impact.missing_fixed_production),
                   std::to_string(impact.missing_fixed_test_other),
                   std::to_string(impact.missing_updated)});
    if (++rows == 15) break;  // the paper shows the top 15
  }
  table.print(std::cout);

  std::cout << "\nHeadline: "
            << psl::util::with_commas(static_cast<long long>(summary.harmed_etlds))
            << " eTLDs missing from >=1 fixed-production project, affecting "
            << psl::util::with_commas(static_cast<long long>(summary.harmed_hostnames))
            << " hostnames\n";
  std::cout << "(paper: 1,313 eTLDs / 50,750 hostnames at full HTTP Archive scale)\n";
  return 0;
}
