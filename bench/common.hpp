// Shared setup for the table/figure regeneration binaries: every bench runs
// against the same default-spec corpora so the numbers are comparable
// across binaries (and across runs — everything is seed-deterministic).
#pragma once

#include <sys/utsname.h>

#include <cstdio>
#include <ostream>
#include <string>
#include <thread>

#include "psl/archive/corpus.hpp"
#include "psl/history/timeline.hpp"
#include "psl/repos/corpus.hpp"

namespace psl::bench {

inline const history::History& full_history() {
  static const history::History h = history::generate_history(history::TimelineSpec{});
  return h;
}

inline const archive::Corpus& full_corpus() {
  static const archive::Corpus c = [] {
    std::fprintf(stderr, "[bench] generating request corpus (~100k hosts, ~500k requests)...\n");
    return archive::generate_corpus(archive::CorpusSpec{}, full_history());
  }();
  return c;
}

inline const std::vector<repos::RepoRecord>& repo_corpus() {
  static const std::vector<repos::RepoRecord> r =
      repos::generate_repo_corpus(repos::RepoCorpusSpec{});
  return r;
}

/// Versions sampled for the figure sweeps: enough points to see the curve,
/// few enough that each binary finishes in seconds.
inline constexpr std::size_t kSweepPoints = 48;

namespace detail {

inline std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

inline std::string run_line(const char* command) {
  std::string out;
  if (FILE* pipe = ::popen(command, "r")) {
    char buf[256];
    if (std::fgets(buf, sizeof buf, pipe)) out = buf;
    ::pclose(pipe);
  }
  while (!out.empty() && (out.back() == '\n' || out.back() == '\r')) out.pop_back();
  return out;
}

}  // namespace detail

/// Emit one `"env": {...}` JSON object (no trailing comma) identifying the
/// machine, toolchain and source revision a bench ran on. Every BENCH_*.json
/// writer includes this so numbers in the bench trajectory are comparable
/// across PRs — a delta only means something when the hardware and commit
/// that produced each side are recorded next to it.
inline void emit_bench_delta(std::ostream& os) {
  utsname un{};
  const bool have_uname = ::uname(&un) == 0;
  const std::string git = detail::run_line("git describe --always --dirty --tags 2>/dev/null");
  os << "  \"env\": {\n";
  os << "    \"git_describe\": \"" << detail::json_escape(git.empty() ? "unknown" : git)
     << "\",\n";
  os << "    \"compiler\": \"" << detail::json_escape(__VERSION__) << "\",\n";
  os << "    \"hardware_threads\": " << std::thread::hardware_concurrency() << ",\n";
  os << "    \"os\": \""
     << detail::json_escape(have_uname ? std::string(un.sysname) + " " + un.release : "unknown")
     << "\",\n";
  os << "    \"machine\": \"" << detail::json_escape(have_uname ? un.machine : "unknown")
     << "\",\n";
  os << "    \"build_type\": \""
#ifdef NDEBUG
     << "release"
#else
     << "debug"
#endif
     << "\"\n";
  os << "  }";
}

}  // namespace psl::bench
