// Shared setup for the table/figure regeneration binaries: every bench runs
// against the same default-spec corpora so the numbers are comparable
// across binaries (and across runs — everything is seed-deterministic).
#pragma once

#include <cstdio>

#include "psl/archive/corpus.hpp"
#include "psl/history/timeline.hpp"
#include "psl/repos/corpus.hpp"

namespace psl::bench {

inline const history::History& full_history() {
  static const history::History h = history::generate_history(history::TimelineSpec{});
  return h;
}

inline const archive::Corpus& full_corpus() {
  static const archive::Corpus c = [] {
    std::fprintf(stderr, "[bench] generating request corpus (~100k hosts, ~500k requests)...\n");
    return archive::generate_corpus(archive::CorpusSpec{}, full_history());
  }();
  return c;
}

inline const std::vector<repos::RepoRecord>& repo_corpus() {
  static const std::vector<repos::RepoRecord> r =
      repos::generate_repo_corpus(repos::RepoCorpusSpec{});
  return r;
}

/// Versions sampled for the figure sweeps: enough points to see the curve,
/// few enough that each binary finishes in seconds.
inline constexpr std::size_t kSweepPoints = 48;

}  // namespace psl::bench
