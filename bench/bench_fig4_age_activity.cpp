// Figure 4: PSL age vs. days since last commit, sized by star count, for
// projects with fixed production lists.
//
// Paper shape: most fixed-production repositories have few stars (median
// 60; only 5 have >= 500), but several very popular, actively maintained
// projects (bitwarden/server 10,959 stars, bitwarden/mobile, autopsy) still
// ship lists that are years old.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "psl/core/repo_stats.hpp"
#include "psl/util/stats.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& repos = psl::bench::repo_corpus();

  std::cout << "=== Figure 4: list age vs. project activity (fixed production) ===\n\n";

  std::vector<const psl::repos::RepoRecord*> fixed_production;
  for (const auto& r : repos) {
    if (r.usage == psl::repos::Usage::kFixedProduction && r.list_age()) {
      fixed_production.push_back(&r);
    }
  }
  std::sort(fixed_production.begin(), fixed_production.end(),
            [](const auto* a, const auto* b) { return a->stars > b->stars; });

  psl::util::TextTable table(
      {"repository", "stars", "list age (d)", "days since last commit"});
  for (const auto* r : fixed_production) {
    table.add_row({r->name, std::to_string(r->stars), std::to_string(*r->list_age()),
                   std::to_string(psl::util::kMeasurementDate - r->last_commit)});
  }
  table.print(std::cout);

  std::vector<double> stars;
  std::size_t over_500 = 0;
  for (const auto* r : fixed_production) {
    stars.push_back(r->stars);
    if (r->stars >= 500) ++over_500;
  }
  std::cout << "\nmedian stars: " << psl::util::median(stars) << " (paper: 60)\n";
  std::cout << "repos with >= 500 stars: " << over_500 << " (paper: 5)\n";
  std::cout << "stars-forks Pearson r: "
            << psl::util::fmt_double(psl::harm::stars_forks_pearson(repos), 3)
            << " (paper: 0.96)\n";
  return 0;
}
