// Companion analysis: where the harm lives, by PSL section and IANA
// root-zone category (extends the paper's Section 3 labelling to the harm
// estimates). Expected shape: hosts are mostly under ICANN rules in generic
// TLD space, but the HARMED hosts are overwhelmingly under PRIVATE-section
// rules — shared-hosting platforms — with the Brazilian state domains the
// main ICANN-section exception.
#include <iostream>

#include "common.hpp"
#include "psl/core/categorize.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();
  const auto& repos = psl::bench::repo_corpus();

  std::cout << "=== Harm by suffix category ===\n\n";

  const psl::harm::ImpactSummary impacts =
      psl::harm::compute_etld_impacts(history, corpus, repos);
  const psl::harm::CategoryBreakdown breakdown =
      psl::harm::categorize_harm(history, corpus, impacts);

  psl::util::TextTable by_section({"rule bucket", "hostnames", "harmed hostnames"});
  by_section.add_row({"ICANN-section rules",
                      std::to_string(breakdown.hosts_under_icann_rules),
                      std::to_string(breakdown.harmed_under_icann_rules)});
  by_section.add_row({"PRIVATE-section rules",
                      std::to_string(breakdown.hosts_under_private_rules),
                      std::to_string(breakdown.harmed_under_private_rules)});
  by_section.add_row({"implicit * only",
                      std::to_string(breakdown.hosts_under_implicit_star), "0"});
  by_section.add_row({"IP literals", std::to_string(breakdown.ip_hosts), "0"});
  by_section.print(std::cout);

  std::cout << "\nBy IANA root-zone category of the eTLD:\n";
  psl::util::TextTable by_category({"TLD category", "hostnames", "harmed hostnames"});
  for (const auto& [category, count] : breakdown.hosts_by_tld_category) {
    const auto harmed = breakdown.harmed_by_tld_category.find(category);
    by_category.add_row({std::string(to_string(category)), std::to_string(count),
                         std::to_string(harmed == breakdown.harmed_by_tld_category.end()
                                            ? 0
                                            : harmed->second)});
  }
  by_category.print(std::cout);

  std::cout << "\nReading: the misclassification risk concentrates in PRIVATE-section\n"
               "suffixes under generic TLDs — operator-submitted shared-hosting rules,\n"
               "exactly the additions out-of-date lists keep missing.\n";
  return 0;
}
