// Figure 1: the paper's illustrative example, executed.
//
// "PSL v1 does not include the example.co.uk eTLD, resulting in the domains
//  example.co.uk, good.example.co.uk, and bad.example.co.uk being grouped
//  together within the same site. PSL v2 includes this suffix, so these
//  subdomains are appropriately separated."  (3 sites vs. 4 sites; 1.33 vs.
//  1 domains per site, per Section 5's discussion.)
#include <iostream>
#include <string>
#include <vector>

#include "psl/core/site_former.hpp"
#include "psl/util/table.hpp"

int main() {
  const std::vector<std::string> hosts{
      "example.co.uk", "good.example.co.uk", "bad.example.co.uk", "www.example.com"};

  const auto v1 = psl::List::parse("com\nuk\nco.uk\n");
  const auto v2 = psl::List::parse("com\nuk\nco.uk\nexample.co.uk\n");
  if (!v1 || !v2) return 1;

  std::cout << "=== Figure 1: impact of an out-of-date list (executed) ===\n\n";

  psl::util::TextTable table({"hostname", "site under PSL v1", "site under PSL v2"});
  const psl::harm::SiteAssignment a1 = psl::harm::assign_sites(*v1, hosts);
  const psl::harm::SiteAssignment a2 = psl::harm::assign_sites(*v2, hosts);
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    table.add_row({hosts[i], a1.site_keys[a1.site_ids[i]], a2.site_keys[a2.site_ids[i]]});
  }
  table.print(std::cout);

  const psl::harm::SiteStats s1 = psl::harm::site_stats(a1);
  const psl::harm::SiteStats s2 = psl::harm::site_stats(a2);
  std::cout << "\nPSL v1: " << s1.site_count << " sites, "
            << psl::util::fmt_double(s1.mean_hosts_per_site, 2)
            << " domains/site (paper: 3 sites, 1.33)\n";
  std::cout << "PSL v2: " << s2.site_count << " sites, "
            << psl::util::fmt_double(s2.mean_hosts_per_site, 2)
            << " domains/site (paper: 4 sites, 1.00)\n";

  // The paper's Figure 1 universe contains a fourth unaffected domain, so
  // its absolute counts differ slightly; the claim under test is the
  // direction — v1 forms FEWER, LARGER sites and merges good. with bad. —
  // which the numbers above show exactly.
  std::cout << "\nBoundary check: good vs. bad subdomain same-site?\n";
  std::cout << "  v1: " << (v1->same_site("good.example.co.uk", "bad.example.co.uk") ? "YES"
                                                                                     : "no")
            << "   v2: "
            << (v2->same_site("good.example.co.uk", "bad.example.co.uk") ? "YES" : "no")
            << "\n";
  return 0;
}
