// Socket-serving throughput ablation: loopback QPS through the full
// client -> PSLN wire protocol -> net::Server -> serve::Engine -> client
// path, across engine-worker count x batch size, plus a reload-under-load
// run that ships ~50 snapshot hot-swaps OVER THE WIRE while client threads
// keep querying (the deployed form of the paper's "update the PSL without
// breaking boundary checks" scenario, §6).
//
// Each cell boots a fresh engine + server on an ephemeral loopback port and
// drives it from a small pool of blocking clients (one connection per
// thread, matching the client library's contract). Results print as a table
// and land machine-readably in BENCH_net.json (with an embedded psl::obs
// metrics snapshot covering net.* and serve.*), which CI archives.
//
// Usage: bench_net_qps [--smoke] [queries_per_cell] [max_threads]
//   --smoke           tiny fixed workload for CI (2000 queries/cell, 2
//                     threads) — exercises every path, settles in seconds
//   queries_per_cell  queries measured per (threads, batch) cell
//                     (default 100000)
//   max_threads       highest engine worker count tried (default
//                     hardware_concurrency)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "psl/net/client.hpp"
#include "psl/net/server.hpp"
#include "psl/obs/json.hpp"
#include "psl/obs/metrics.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/engine.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/util/date.hpp"
#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"
#include "psl/util/zipf.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Same workload recipe as bench_serve_qps, so the delta between the two
/// binaries is exactly the socket + framing overhead.
std::vector<std::string> host_mix(const psl::List& list) {
  psl::util::Rng rng(7);
  psl::util::NameGen names{rng.fork(1)};
  const auto& rules = list.rules();
  std::vector<std::string> out;
  out.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    std::string host = names.fresh();
    if (rng.chance(0.5)) {
      const auto& rule = rules[rng.below(rules.size())];
      std::string suffix;
      for (const auto& label : rule.labels()) {
        if (!suffix.empty()) suffix.push_back('.');
        suffix += label;
      }
      host += "." + suffix;
    } else {
      host += "." + names.fresh() + (rng.chance(0.5) ? ".com" : ".net");
    }
    if (rng.chance(0.4)) host = "www." + host;
    out.push_back(std::move(host));
  }
  return out;
}

psl::snapshot::Snapshot snapshot_of(const psl::List& list, psl::util::Date source_date) {
  psl::snapshot::Metadata meta;
  meta.source_date = source_date;
  meta.rule_count = list.rules().size();
  const std::string bytes = psl::snapshot::serialize(psl::CompiledMatcher(list), meta);
  auto loaded = psl::snapshot::load_copy(
      {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
  if (!loaded.ok()) {
    std::cerr << "snapshot self-load failed: " << loaded.error().message << "\n";
    std::exit(2);
  }
  return *std::move(loaded);
}

struct Cell {
  std::size_t threads = 0;
  std::size_t batch = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
};

/// One blocking client on its own connection, sending `total` queries in
/// batches of `batch`. Backpressure rejections are retried (the wire-level
/// reject leaves the connection usable — that is the contract under test).
void client_worker(std::uint16_t port, const std::vector<std::string>& hosts,
                   std::size_t total, std::size_t batch, std::atomic<bool>& failed) {
  auto client = psl::net::Client::connect("127.0.0.1", port);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.error().message << "\n";
    failed = true;
    return;
  }
  std::vector<std::string> request;
  request.reserve(batch);
  std::size_t sent = 0;
  std::size_t host_index = 0;
  while (sent < total) {
    request.clear();
    const std::size_t n = std::min(batch, total - sent);
    for (std::size_t i = 0; i < n; ++i) request.push_back(hosts[host_index++ & 4095]);
    for (;;) {
      auto answers = client->registrable_domains(request);
      if (answers.ok()) {
        if (answers->size() != n) {
          std::cerr << "short batch: " << answers->size() << " of " << n << "\n";
          failed = true;
          return;
        }
        break;
      }
      if (answers.error().code == "net.backpressure") {
        std::this_thread::yield();
        continue;
      }
      std::cerr << "query failed: " << answers.error().message << " ("
                << answers.error().code << ")\n";
      failed = true;
      return;
    }
    sent += n;
  }
}

/// Boot engine + server, split `total` across `clients` connections, return
/// wall ms for the whole run.
double run_cell(const psl::snapshot::Snapshot& seed, const std::vector<std::string>& hosts,
                std::size_t engine_threads, std::size_t clients, std::size_t total,
                std::size_t batch, psl::obs::MetricsRegistry* metrics,
                std::size_t cache_slots = 16384) {
  psl::serve::Engine engine(psl::snapshot::Snapshot{seed.matcher, seed.meta},
                            {.threads = engine_threads,
                             .max_queue_depth = 1024,
                             .cache_slots = cache_slots,
                             .metrics = metrics});
  psl::net::ServerOptions options;
  options.metrics = metrics;
  psl::net::Server server(engine, options);
  auto port = server.start();
  if (!port.ok()) {
    std::cerr << "server start failed: " << port.error().message << "\n";
    std::exit(2);
  }

  std::atomic<bool> failed{false};
  const std::size_t per_client = (total + clients - 1) / clients;
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    const std::size_t share = std::min(per_client, total - std::min(total, c * per_client));
    if (share == 0) break;
    pool.emplace_back(client_worker, *port, std::cref(hosts), share, batch,
                      std::ref(failed));
  }
  for (std::thread& t : pool) t.join();
  const auto t1 = Clock::now();
  server.shutdown();
  if (failed) std::exit(2);
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      positional.push_back(argv[i]);
    }
  }
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::size_t queries_per_cell = smoke ? 2000 : 100000;
  unsigned max_threads = smoke ? 2u : hardware;
  if (positional.size() > 0) {
    queries_per_cell = static_cast<std::size_t>(std::atol(positional[0]));
  }
  if (positional.size() > 1) max_threads = static_cast<unsigned>(std::atoi(positional[1]));
  if (queries_per_cell < 1 || max_threads < 1) {
    std::cerr << "usage: bench_net_qps [--smoke] [queries_per_cell >= 1] [max_threads >= 1]\n";
    return 2;
  }

  const psl::history::History& history = psl::bench::full_history();
  const psl::List& list = history.latest();
  const psl::util::Date latest_date = history.version_date(history.version_count() - 1);
  const std::vector<std::string> hosts = host_mix(list);
  const psl::snapshot::Snapshot seed = snapshot_of(list, latest_date);
  const std::size_t clients = smoke ? 2 : 4;

  std::cout << "=== psl::net loopback: engine threads x batch-size QPS ablation ===\n";
  std::cout << "rules: " << list.rules().size() << ", queries/cell: " << queries_per_cell
            << ", client connections: " << clients << ", hardware threads: " << hardware
            << "\n\n";

  std::vector<std::size_t> thread_counts;
  for (unsigned t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  const std::vector<std::size_t> batch_sizes =
      smoke ? std::vector<std::size_t>{1, 256} : std::vector<std::size_t>{1, 16, 256, 4096};

  std::vector<Cell> cells;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t batch : batch_sizes) {
      Cell cell;
      cell.threads = threads;
      cell.batch = batch;
      cell.wall_ms = run_cell(seed, hosts, threads, clients, queries_per_cell, batch, nullptr);
      cell.qps = static_cast<double>(queries_per_cell) / (cell.wall_ms / 1000.0);
      cells.push_back(cell);
    }
  }

  psl::util::TextTable table({"engine threads", "batch size", "wall time", "queries/sec"});
  for (const Cell& cell : cells) {
    table.add_row({std::to_string(cell.threads), std::to_string(cell.batch),
                   psl::util::fmt_double(cell.wall_ms, 0) + " ms",
                   psl::util::fmt_double(cell.qps, 0)});
  }
  table.print(std::cout);

  // --- cached vs uncached over the wire on a Zipf-skewed stream ------------
  // Same construction as bench_serve_qps's comparison, but end to end
  // through the socket path: the delta isolates what the per-worker
  // registrable-domain caches buy a deployed daemon under realistic skew.
  std::vector<std::string> zipf_stream;
  {
    psl::util::Rng zrng(11);
    const psl::util::ZipfSampler zipf(hosts.size(), 1.0);
    zipf_stream.reserve(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      zipf_stream.push_back(hosts[zipf.sample(zrng)]);
    }
  }
  struct CacheCell {
    bool cached = false;
    std::size_t batch = 0;
    double wall_ms = 0.0;
    double qps = 0.0;
  };
  std::vector<CacheCell> cache_cells;
  const std::size_t cache_threads = std::min<std::size_t>(4, max_threads);
  const std::vector<std::size_t> cache_batches =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 256};
  for (const std::size_t batch : cache_batches) {
    for (const bool cached : {false, true}) {
      CacheCell cell;
      cell.cached = cached;
      cell.batch = batch;
      cell.wall_ms = run_cell(seed, zipf_stream, cache_threads, clients, queries_per_cell,
                              batch, nullptr, cached ? 16384 : 0);
      cell.qps = static_cast<double>(queries_per_cell) / (cell.wall_ms / 1000.0);
      cache_cells.push_back(cell);
    }
  }
  std::cout << "\n=== Zipf-skewed wire stream (s=1.0): registrable-domain cache on/off ===\n";
  psl::util::TextTable cache_table({"batch size", "cache", "wall time", "queries/sec"});
  for (const CacheCell& cell : cache_cells) {
    cache_table.add_row({std::to_string(cell.batch), cell.cached ? "on" : "off",
                         psl::util::fmt_double(cell.wall_ms, 0) + " ms",
                         psl::util::fmt_double(cell.qps, 0)});
  }
  cache_table.print(std::cout);

  // --- reload-under-load: wire-level hot swaps racing wire-level queries ---
  // A dedicated reloader CONNECTION ships alternating snapshot versions via
  // the reload frame type while the client pool keeps querying; the final
  // generation proves every swap landed exactly once.
  const std::size_t previous_index =
      history.version_count() >= 2 ? history.version_count() - 2 : 0;
  const psl::List previous = history.snapshot(previous_index);
  const psl::util::Date previous_date = history.version_date(previous_index);
  const std::string bytes_now =
      psl::snapshot::serialize(psl::CompiledMatcher(list), {latest_date, list.rules().size()});
  const std::string bytes_prev = psl::snapshot::serialize(
      psl::CompiledMatcher(previous), {previous_date, previous.rules().size()});

  psl::obs::MetricsRegistry metrics;
  const std::size_t reload_threads = std::max<std::size_t>(2, max_threads);
  const std::size_t reload_batch = 256;
  constexpr int kReloads = 50;
  double reload_wall_ms = 0.0;
  std::uint64_t reload_generation = 0;
  {
    psl::serve::Engine engine(
        psl::snapshot::Snapshot{seed.matcher, seed.meta},
        {.threads = reload_threads, .max_queue_depth = 1024, .metrics = &metrics});
    psl::net::ServerOptions options;
    options.metrics = &metrics;
    psl::net::Server server(engine, options);
    auto port = server.start();
    if (!port.ok()) {
      std::cerr << "server start failed: " << port.error().message << "\n";
      return 2;
    }

    std::atomic<bool> failed{false};
    std::thread reloader([&] {
      auto client = psl::net::Client::connect("127.0.0.1", *port);
      if (!client.ok()) {
        failed = true;
        return;
      }
      for (int i = 0; i < kReloads; ++i) {
        const std::string& bytes = i % 2 == 0 ? bytes_prev : bytes_now;
        auto swapped = client->reload(
            {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
        if (!swapped.ok()) {
          std::cerr << "wire reload failed: " << swapped.error().message << "\n";
          failed = true;
          return;
        }
        std::this_thread::yield();
      }
    });

    const auto t0 = Clock::now();
    std::vector<std::thread> pool;
    const std::size_t per_client = (queries_per_cell + clients - 1) / clients;
    for (std::size_t c = 0; c < clients; ++c) {
      const std::size_t share =
          std::min(per_client, queries_per_cell - std::min(queries_per_cell, c * per_client));
      if (share == 0) break;
      pool.emplace_back(client_worker, *port, std::cref(hosts), share, reload_batch,
                        std::ref(failed));
    }
    for (std::thread& t : pool) t.join();
    reload_wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    reloader.join();
    reload_generation = engine.generation();
    server.shutdown();
    if (failed) return 2;
  }
  const double reload_qps = static_cast<double>(queries_per_cell) / (reload_wall_ms / 1000.0);

  std::cout << "\nreload-under-load (" << reload_threads << " engine threads, batch "
            << reload_batch << "): " << kReloads << " wire hot swaps, "
            << psl::util::fmt_double(reload_qps, 0) << " queries/sec, final generation "
            << reload_generation << "\n";
  if (reload_generation != 1u + kReloads) {
    std::cout << "GENERATION MISMATCH: expected " << (1u + kReloads) << "\n";
    return 1;
  }

  std::ofstream json("BENCH_net.json");
  json << "{\n";
  json << "  \"rule_count\": " << list.rules().size() << ",\n";
  json << "  \"queries_per_cell\": " << queries_per_cell << ",\n";
  json << "  \"client_connections\": " << clients << ",\n";
  json << "  \"hardware_threads\": " << hardware << ",\n";
  json << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    json << "    {\"threads\": " << cell.threads << ", \"batch_size\": " << cell.batch
         << ", \"wall_ms\": " << psl::util::fmt_double(cell.wall_ms, 2)
         << ", \"qps\": " << psl::util::fmt_double(cell.qps, 1) << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"zipf_cache_comparison\": [\n";
  for (std::size_t i = 0; i < cache_cells.size(); ++i) {
    const CacheCell& cell = cache_cells[i];
    json << "    {\"threads\": " << cache_threads << ", \"batch_size\": " << cell.batch
         << ", \"cached\": " << (cell.cached ? "true" : "false")
         << ", \"wall_ms\": " << psl::util::fmt_double(cell.wall_ms, 2)
         << ", \"qps\": " << psl::util::fmt_double(cell.qps, 1) << "}"
         << (i + 1 < cache_cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"reload_under_load\": {\"threads\": " << reload_threads
       << ", \"batch_size\": " << reload_batch << ", \"reloads\": " << kReloads
       << ", \"wall_ms\": " << psl::util::fmt_double(reload_wall_ms, 2)
       << ", \"qps\": " << psl::util::fmt_double(reload_qps, 1)
       << ", \"final_generation\": " << reload_generation << "},\n";
  json << "  \"metrics\": " << psl::obs::to_json(metrics) << ",\n";
  psl::bench::emit_bench_delta(json);
  json << "\n}\n";
  std::cout << "wrote BENCH_net.json\n";
  return 0;
}
