// Socket-serving throughput ablation: loopback QPS through the full
// client -> PSLN wire protocol -> net::Server -> serve::Engine -> client
// path, across engine-worker count x batch size, plus a reload-under-load
// run that ships ~50 snapshot hot-swaps OVER THE WIRE while client threads
// keep querying (the deployed form of the paper's "update the PSL without
// breaking boundary checks" scenario, §6).
//
// Each cell boots a fresh engine + server on an ephemeral loopback port and
// drives it from a small pool of blocking clients (one connection per
// thread, matching the client library's contract). Results print as a table
// and land machine-readably in BENCH_net.json (with an embedded psl::obs
// metrics snapshot covering net.* and serve.*), which CI archives.
//
// Every measured cell also reports round-trip latency percentiles
// (p50/p90/p99/p999 per batch round trip) beside its throughput, in the
// table and in the JSON.
//
// Usage: bench_net_qps [--smoke] [--shards N] [queries_per_cell] [max_threads]
//   --smoke           tiny fixed workload for CI (2000 queries/cell, 2
//                     threads) — exercises every path, settles in seconds
//   --shards N        SO_REUSEPORT scale-out mode instead of the ablation:
//                     1 forked server process vs N on one shared port,
//                     asserting the N=2 fleet clears 1.5x the single-process
//                     qps when the machine has >= 2 cores per shard (skips
//                     loudly otherwise); writes BENCH_net_shards.json
//   queries_per_cell  queries measured per (threads, batch) cell
//                     (default 100000; 20000 in --smoke --shards)
//   max_threads       highest engine worker count tried (default
//                     hardware_concurrency)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "psl/net/client.hpp"
#include "psl/net/server.hpp"
#include "psl/obs/json.hpp"
#include "psl/obs/metrics.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/engine.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/util/date.hpp"
#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"
#include "psl/util/zipf.hpp"

namespace {

using Clock = std::chrono::steady_clock;

/// Same workload recipe as bench_serve_qps, so the delta between the two
/// binaries is exactly the socket + framing overhead.
std::vector<std::string> host_mix(const psl::List& list) {
  psl::util::Rng rng(7);
  psl::util::NameGen names{rng.fork(1)};
  const auto& rules = list.rules();
  std::vector<std::string> out;
  out.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    std::string host = names.fresh();
    if (rng.chance(0.5)) {
      const auto& rule = rules[rng.below(rules.size())];
      std::string suffix;
      for (const auto& label : rule.labels()) {
        if (!suffix.empty()) suffix.push_back('.');
        suffix += label;
      }
      host += "." + suffix;
    } else {
      host += "." + names.fresh() + (rng.chance(0.5) ? ".com" : ".net");
    }
    if (rng.chance(0.4)) host = "www." + host;
    out.push_back(std::move(host));
  }
  return out;
}

psl::snapshot::Snapshot snapshot_of(const psl::List& list, psl::util::Date source_date) {
  psl::snapshot::Metadata meta;
  meta.source_date = source_date;
  meta.rule_count = list.rules().size();
  const std::string bytes = psl::snapshot::serialize(psl::CompiledMatcher(list), meta);
  auto loaded = psl::snapshot::load_copy(
      {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
  if (!loaded.ok()) {
    std::cerr << "snapshot self-load failed: " << loaded.error().message << "\n";
    std::exit(2);
  }
  return *std::move(loaded);
}

/// Round-trip latency percentiles, in milliseconds. One sample = one batch
/// round trip (send -> engine -> full response parsed), the unit a caller
/// actually waits on; batch size is reported beside them so nobody compares
/// a batch-1 p99 against a batch-4096 p99 by accident.
struct Percentiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

Percentiles percentiles_of(std::vector<double>& samples_ms) {
  Percentiles out;
  if (samples_ms.empty()) return out;
  std::sort(samples_ms.begin(), samples_ms.end());
  const auto at = [&](double q) {
    const std::size_t rank = static_cast<std::size_t>(q * static_cast<double>(samples_ms.size()));
    return samples_ms[std::min(samples_ms.size() - 1, rank)];
  };
  out.p50 = at(0.50);
  out.p90 = at(0.90);
  out.p99 = at(0.99);
  out.p999 = at(0.999);
  return out;
}

struct Cell {
  std::size_t threads = 0;
  std::size_t batch = 0;
  double wall_ms = 0.0;
  double qps = 0.0;
  Percentiles latency;
};

/// One blocking client on its own connection, sending `total` queries in
/// batches of `batch`. Backpressure rejections are retried (the wire-level
/// reject leaves the connection usable — that is the contract under test);
/// the retried round trip is timed as ONE sample including the backoff, the
/// latency a real caller would see. `latencies_ms` (optional) receives one
/// sample per batch.
void client_worker(std::uint16_t port, const std::vector<std::string>& hosts,
                   std::size_t total, std::size_t batch, std::atomic<bool>& failed,
                   std::vector<double>* latencies_ms = nullptr) {
  auto client = psl::net::Client::connect("127.0.0.1", port);
  if (!client.ok()) {
    std::cerr << "connect failed: " << client.error().message << "\n";
    failed = true;
    return;
  }
  if (latencies_ms) latencies_ms->reserve(total / std::max<std::size_t>(1, batch) + 1);
  std::vector<std::string> request;
  request.reserve(batch);
  std::size_t sent = 0;
  std::size_t host_index = 0;
  while (sent < total) {
    request.clear();
    const std::size_t n = std::min(batch, total - sent);
    for (std::size_t i = 0; i < n; ++i) request.push_back(hosts[host_index++ & 4095]);
    const auto t0 = Clock::now();
    for (;;) {
      auto answers = client->registrable_domains(request);
      if (answers.ok()) {
        if (answers->size() != n) {
          std::cerr << "short batch: " << answers->size() << " of " << n << "\n";
          failed = true;
          return;
        }
        break;
      }
      if (answers.error().code == "net.backpressure") {
        std::this_thread::yield();
        continue;
      }
      std::cerr << "query failed: " << answers.error().message << " ("
                << answers.error().code << ")\n";
      failed = true;
      return;
    }
    if (latencies_ms) {
      latencies_ms->push_back(
          std::chrono::duration<double, std::milli>(Clock::now() - t0).count());
    }
    sent += n;
  }
}

/// Boot engine + server, split `total` across `clients` connections, return
/// wall ms for the whole run.
/// Drive `total` queries split over `clients` connections against `port`;
/// returns wall ms and (optionally) the merged round-trip percentiles.
double drive_clients(std::uint16_t port, const std::vector<std::string>& hosts,
                     std::size_t clients, std::size_t total, std::size_t batch,
                     Percentiles* latency_out) {
  std::atomic<bool> failed{false};
  const std::size_t per_client = (total + clients - 1) / clients;
  std::vector<std::vector<double>> latencies(clients);
  const auto t0 = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    const std::size_t share = std::min(per_client, total - std::min(total, c * per_client));
    if (share == 0) break;
    pool.emplace_back(client_worker, port, std::cref(hosts), share, batch,
                      std::ref(failed), latency_out ? &latencies[c] : nullptr);
  }
  for (std::thread& t : pool) t.join();
  const auto t1 = Clock::now();
  if (failed) std::exit(2);
  if (latency_out) {
    std::vector<double> merged;
    for (auto& v : latencies) merged.insert(merged.end(), v.begin(), v.end());
    *latency_out = percentiles_of(merged);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

double run_cell(const psl::snapshot::Snapshot& seed, const std::vector<std::string>& hosts,
                std::size_t engine_threads, std::size_t clients, std::size_t total,
                std::size_t batch, psl::obs::MetricsRegistry* metrics,
                std::size_t cache_slots = 16384, Percentiles* latency_out = nullptr) {
  psl::serve::Engine engine(psl::snapshot::Snapshot{seed.matcher, seed.meta},
                            {.threads = engine_threads,
                             .max_queue_depth = 1024,
                             .cache_slots = cache_slots,
                             .metrics = metrics});
  psl::net::ServerOptions options;
  options.metrics = metrics;
  psl::net::Server server(engine, options);
  auto port = server.start();
  if (!port.ok()) {
    std::cerr << "server start failed: " << port.error().message << "\n";
    std::exit(2);
  }
  const double wall_ms = drive_clients(*port, hosts, clients, total, batch, latency_out);
  server.shutdown();
  return wall_ms;
}

// --- SO_REUSEPORT shard scaling (bench_net_qps --shards N) ------------------
//
// The multi-process deployment measured honestly: N forked server processes
// (each its own engine + event loop) bind one port via SO_REUSEPORT, and the
// kernel spreads client connections across them — exactly psld --shards,
// minus the latch/reload machinery that doesn't move packets. Baseline is
// the same setup with ONE process, so the ratio isolates what sharding buys.

/// Bind a SO_REUSEPORT placeholder to pick the group's ephemeral port (never
/// listens, so it receives nothing). Returns the fd; fills `port`.
int reserve_reuseport_port(std::uint16_t& port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port = ntohs(addr.sin_port);
  return fd;
}

/// One forked shard: boot engine + server on the shared port, report 'R' (or
/// 'E') on ready_fd, then serve until exit_fd closes. Runs in a child
/// process; the return value becomes the child's exit status.
int shard_child_main(const std::string& snap_bytes, std::uint16_t port, int ready_fd,
                     int exit_fd) {
  auto loaded = psl::snapshot::load_copy(
      {reinterpret_cast<const std::uint8_t*>(snap_bytes.data()), snap_bytes.size()});
  if (!loaded.ok()) {
    (void)!::write(ready_fd, "E", 1);
    return 2;
  }
  psl::serve::Engine engine(*std::move(loaded),
                            {.threads = 2, .max_queue_depth = 1024, .cache_slots = 16384});
  psl::net::ServerOptions options;
  options.port = port;
  options.reuse_port = true;
  psl::net::Server server(engine, options);
  auto started = server.start();
  if (!started.ok()) {
    (void)!::write(ready_fd, "E", 1);
    return 2;
  }
  (void)!::write(ready_fd, "R", 1);
  ::close(ready_fd);
  std::uint8_t byte = 0;
  while (::read(exit_fd, &byte, 1) < 0 && errno == EINTR) {
  }
  server.shutdown();
  return 0;
}

/// Boot `shards` forked servers on one SO_REUSEPORT port, drive the client
/// pool from this process, tear the fleet down. Exits the bench on any
/// failure (a half-ready fleet measures nothing).
double run_sharded_cell(const std::string& snap_bytes, const std::vector<std::string>& hosts,
                        std::size_t shards, std::size_t clients, std::size_t total,
                        std::size_t batch, Percentiles* latency_out) {
  std::uint16_t port = 0;
  const int placeholder = reserve_reuseport_port(port);
  if (placeholder < 0) {
    std::cerr << "port reservation failed: " << std::strerror(errno) << "\n";
    std::exit(2);
  }
  std::vector<pid_t> pids;
  std::vector<int> exit_fds;
  for (std::size_t s = 0; s < shards; ++s) {
    int ready[2], exitp[2];
    if (::pipe(ready) != 0 || ::pipe(exitp) != 0) {
      std::cerr << "pipe failed\n";
      std::exit(2);
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::cerr << "fork failed\n";
      std::exit(2);
    }
    if (pid == 0) {
      ::close(placeholder);
      ::close(ready[0]);
      ::close(exitp[1]);
      for (const int fd : exit_fds) ::close(fd);  // siblings' exit pipes
      ::_exit(shard_child_main(snap_bytes, port, ready[1], exitp[0]));
    }
    ::close(ready[1]);
    ::close(exitp[0]);
    std::uint8_t byte = 0;
    if (::read(ready[0], &byte, 1) != 1 || byte != 'R') {
      std::cerr << "shard " << s << " failed to start\n";
      std::exit(2);
    }
    ::close(ready[0]);
    pids.push_back(pid);
    exit_fds.push_back(exitp[1]);
  }

  const double wall_ms = drive_clients(port, hosts, clients, total, batch, latency_out);

  for (const int fd : exit_fds) ::close(fd);  // each shard's read() returns 0
  for (const pid_t pid : pids) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::cerr << "shard exited abnormally\n";
      std::exit(2);
    }
  }
  ::close(placeholder);
  return wall_ms;
}

/// The --shards entry point: 1-process baseline vs N-process fleet, same
/// total work, percentiles for both; asserts the >= 1.5x scaling floor when
/// the machine has the cores to honor it (>= 2 per shard — a 1-core CI
/// runner proves nothing about scale-out and skips loudly instead of
/// flaking).
int run_shard_scaling(std::size_t shards, bool smoke, std::size_t queries) {
  const psl::history::History& history = psl::bench::full_history();
  const psl::List& list = history.latest();
  const psl::util::Date latest_date = history.version_date(history.version_count() - 1);
  const std::vector<std::string> hosts = host_mix(list);
  const std::string snap_bytes = psl::snapshot::serialize(
      psl::CompiledMatcher(list), {latest_date, list.rules().size()});
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  const std::size_t clients = std::max<std::size_t>(8, 4 * shards);
  const std::size_t batch = 16;

  std::cout << "=== SO_REUSEPORT shard scaling: 1 process vs " << shards
            << " processes on one port ===\n";
  std::cout << "rules: " << list.rules().size() << ", queries: " << queries
            << ", client connections: " << clients << ", batch: " << batch
            << ", hardware threads: " << hardware << "\n\n";

  Percentiles base_lat, shard_lat;
  const double base_ms =
      run_sharded_cell(snap_bytes, hosts, 1, clients, queries, batch, &base_lat);
  const double shard_ms =
      run_sharded_cell(snap_bytes, hosts, shards, clients, queries, batch, &shard_lat);
  const double base_qps = static_cast<double>(queries) / (base_ms / 1000.0);
  const double shard_qps = static_cast<double>(queries) / (shard_ms / 1000.0);
  const double speedup = shard_qps / base_qps;

  psl::util::TextTable table(
      {"shards", "wall time", "queries/sec", "p50", "p90", "p99", "p999"});
  const auto row = [&](std::size_t n, double wall, double qps, const Percentiles& p) {
    table.add_row({std::to_string(n), psl::util::fmt_double(wall, 0) + " ms",
                   psl::util::fmt_double(qps, 0), psl::util::fmt_double(p.p50, 3) + " ms",
                   psl::util::fmt_double(p.p90, 3) + " ms",
                   psl::util::fmt_double(p.p99, 3) + " ms",
                   psl::util::fmt_double(p.p999, 3) + " ms"});
  };
  row(1, base_ms, base_qps, base_lat);
  row(shards, shard_ms, shard_qps, shard_lat);
  table.print(std::cout);
  std::cout << "\nspeedup: " << psl::util::fmt_double(speedup, 2) << "x\n";

  const bool enough_cores = hardware >= 2 * shards;
  const char* assertion = "skipped";
  int rc = 0;
  if (!enough_cores) {
    std::cout << "scaling assertion skipped: " << hardware << " hardware threads < "
              << 2 * shards << " (need 2 per shard)\n";
  } else if (speedup < 1.5) {
    std::cout << "SCALING ASSERTION FAILED: " << psl::util::fmt_double(speedup, 2)
              << "x < 1.5x with " << shards << " shards\n";
    assertion = "failed";
    rc = 1;
  } else {
    assertion = "passed";
  }

  std::ofstream json("BENCH_net_shards.json");
  const auto emit = [&](const char* key, std::size_t n, double wall, double qps,
                        const Percentiles& p, const char* tail) {
    json << "  \"" << key << "\": {\"shards\": " << n
         << ", \"wall_ms\": " << psl::util::fmt_double(wall, 2)
         << ", \"qps\": " << psl::util::fmt_double(qps, 1)
         << ", \"p50_ms\": " << psl::util::fmt_double(p.p50, 4)
         << ", \"p90_ms\": " << psl::util::fmt_double(p.p90, 4)
         << ", \"p99_ms\": " << psl::util::fmt_double(p.p99, 4)
         << ", \"p999_ms\": " << psl::util::fmt_double(p.p999, 4) << "}" << tail << "\n";
  };
  json << "{\n";
  json << "  \"queries\": " << queries << ",\n";
  json << "  \"client_connections\": " << clients << ",\n";
  json << "  \"batch_size\": " << batch << ",\n";
  json << "  \"hardware_threads\": " << hardware << ",\n";
  json << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n";
  emit("baseline", 1, base_ms, base_qps, base_lat, ",");
  emit("sharded", shards, shard_ms, shard_qps, shard_lat, ",");
  json << "  \"speedup\": " << psl::util::fmt_double(speedup, 3) << ",\n";
  json << "  \"scaling_assertion\": \"" << assertion << "\"\n";
  json << "}\n";
  std::cout << "wrote BENCH_net_shards.json\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t shards = 0;
  std::vector<const char*> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = static_cast<std::size_t>(std::atol(argv[++i]));
    } else {
      positional.push_back(argv[i]);
    }
  }
  const unsigned hardware = std::max(1u, std::thread::hardware_concurrency());
  std::size_t queries_per_cell = smoke ? 2000 : 100000;
  unsigned max_threads = smoke ? 2u : hardware;
  if (positional.size() > 0) {
    queries_per_cell = static_cast<std::size_t>(std::atol(positional[0]));
  }
  if (positional.size() > 1) max_threads = static_cast<unsigned>(std::atoi(positional[1]));
  if (queries_per_cell < 1 || max_threads < 1 || shards > 64) {
    std::cerr << "usage: bench_net_qps [--smoke] [--shards N] [queries_per_cell >= 1]"
                 " [max_threads >= 1]\n";
    return 2;
  }
  if (shards > 0) {
    // Shard mode replaces the ablation: it measures process scale-out, not
    // worker scale-up, and writes its own BENCH_net_shards.json.
    return run_shard_scaling(shards, smoke, positional.empty() ? (smoke ? 20000 : 200000)
                                                               : queries_per_cell);
  }

  const psl::history::History& history = psl::bench::full_history();
  const psl::List& list = history.latest();
  const psl::util::Date latest_date = history.version_date(history.version_count() - 1);
  const std::vector<std::string> hosts = host_mix(list);
  const psl::snapshot::Snapshot seed = snapshot_of(list, latest_date);
  const std::size_t clients = smoke ? 2 : 4;

  std::cout << "=== psl::net loopback: engine threads x batch-size QPS ablation ===\n";
  std::cout << "rules: " << list.rules().size() << ", queries/cell: " << queries_per_cell
            << ", client connections: " << clients << ", hardware threads: " << hardware
            << "\n\n";

  std::vector<std::size_t> thread_counts;
  for (unsigned t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);
  const std::vector<std::size_t> batch_sizes =
      smoke ? std::vector<std::size_t>{1, 256} : std::vector<std::size_t>{1, 16, 256, 4096};

  std::vector<Cell> cells;
  for (const std::size_t threads : thread_counts) {
    for (const std::size_t batch : batch_sizes) {
      Cell cell;
      cell.threads = threads;
      cell.batch = batch;
      cell.wall_ms = run_cell(seed, hosts, threads, clients, queries_per_cell, batch, nullptr,
                              16384, &cell.latency);
      cell.qps = static_cast<double>(queries_per_cell) / (cell.wall_ms / 1000.0);
      cells.push_back(cell);
    }
  }

  psl::util::TextTable table({"engine threads", "batch size", "wall time", "queries/sec",
                              "p50", "p99", "p999"});
  for (const Cell& cell : cells) {
    table.add_row({std::to_string(cell.threads), std::to_string(cell.batch),
                   psl::util::fmt_double(cell.wall_ms, 0) + " ms",
                   psl::util::fmt_double(cell.qps, 0),
                   psl::util::fmt_double(cell.latency.p50, 3) + " ms",
                   psl::util::fmt_double(cell.latency.p99, 3) + " ms",
                   psl::util::fmt_double(cell.latency.p999, 3) + " ms"});
  }
  table.print(std::cout);

  // --- cached vs uncached over the wire on a Zipf-skewed stream ------------
  // Same construction as bench_serve_qps's comparison, but end to end
  // through the socket path: the delta isolates what the per-worker
  // registrable-domain caches buy a deployed daemon under realistic skew.
  std::vector<std::string> zipf_stream;
  {
    psl::util::Rng zrng(11);
    const psl::util::ZipfSampler zipf(hosts.size(), 1.0);
    zipf_stream.reserve(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      zipf_stream.push_back(hosts[zipf.sample(zrng)]);
    }
  }
  struct CacheCell {
    bool cached = false;
    std::size_t batch = 0;
    double wall_ms = 0.0;
    double qps = 0.0;
  };
  std::vector<CacheCell> cache_cells;
  const std::size_t cache_threads = std::min<std::size_t>(4, max_threads);
  const std::vector<std::size_t> cache_batches =
      smoke ? std::vector<std::size_t>{16} : std::vector<std::size_t>{16, 256};
  for (const std::size_t batch : cache_batches) {
    for (const bool cached : {false, true}) {
      CacheCell cell;
      cell.cached = cached;
      cell.batch = batch;
      cell.wall_ms = run_cell(seed, zipf_stream, cache_threads, clients, queries_per_cell,
                              batch, nullptr, cached ? 16384 : 0);
      cell.qps = static_cast<double>(queries_per_cell) / (cell.wall_ms / 1000.0);
      cache_cells.push_back(cell);
    }
  }
  std::cout << "\n=== Zipf-skewed wire stream (s=1.0): registrable-domain cache on/off ===\n";
  psl::util::TextTable cache_table({"batch size", "cache", "wall time", "queries/sec"});
  for (const CacheCell& cell : cache_cells) {
    cache_table.add_row({std::to_string(cell.batch), cell.cached ? "on" : "off",
                         psl::util::fmt_double(cell.wall_ms, 0) + " ms",
                         psl::util::fmt_double(cell.qps, 0)});
  }
  cache_table.print(std::cout);

  // --- reload-under-load: wire-level hot swaps racing wire-level queries ---
  // A dedicated reloader CONNECTION ships alternating snapshot versions via
  // the reload frame type while the client pool keeps querying; the final
  // generation proves every swap landed exactly once.
  const std::size_t previous_index =
      history.version_count() >= 2 ? history.version_count() - 2 : 0;
  const psl::List previous = history.snapshot(previous_index);
  const psl::util::Date previous_date = history.version_date(previous_index);
  const std::string bytes_now =
      psl::snapshot::serialize(psl::CompiledMatcher(list), {latest_date, list.rules().size()});
  const std::string bytes_prev = psl::snapshot::serialize(
      psl::CompiledMatcher(previous), {previous_date, previous.rules().size()});

  psl::obs::MetricsRegistry metrics;
  const std::size_t reload_threads = std::max<std::size_t>(2, max_threads);
  const std::size_t reload_batch = 256;
  constexpr int kReloads = 50;
  double reload_wall_ms = 0.0;
  std::uint64_t reload_generation = 0;
  {
    psl::serve::Engine engine(
        psl::snapshot::Snapshot{seed.matcher, seed.meta},
        {.threads = reload_threads, .max_queue_depth = 1024, .metrics = &metrics});
    psl::net::ServerOptions options;
    options.metrics = &metrics;
    psl::net::Server server(engine, options);
    auto port = server.start();
    if (!port.ok()) {
      std::cerr << "server start failed: " << port.error().message << "\n";
      return 2;
    }

    std::atomic<bool> failed{false};
    std::thread reloader([&] {
      auto client = psl::net::Client::connect("127.0.0.1", *port);
      if (!client.ok()) {
        failed = true;
        return;
      }
      for (int i = 0; i < kReloads; ++i) {
        const std::string& bytes = i % 2 == 0 ? bytes_prev : bytes_now;
        auto swapped = client->reload(
            {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
        if (!swapped.ok()) {
          std::cerr << "wire reload failed: " << swapped.error().message << "\n";
          failed = true;
          return;
        }
        std::this_thread::yield();
      }
    });

    const auto t0 = Clock::now();
    std::vector<std::thread> pool;
    const std::size_t per_client = (queries_per_cell + clients - 1) / clients;
    for (std::size_t c = 0; c < clients; ++c) {
      const std::size_t share =
          std::min(per_client, queries_per_cell - std::min(queries_per_cell, c * per_client));
      if (share == 0) break;
      pool.emplace_back(client_worker, *port, std::cref(hosts), share, reload_batch,
                        std::ref(failed), nullptr);
    }
    for (std::thread& t : pool) t.join();
    reload_wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    reloader.join();
    reload_generation = engine.generation();
    server.shutdown();
    if (failed) return 2;
  }
  const double reload_qps = static_cast<double>(queries_per_cell) / (reload_wall_ms / 1000.0);

  std::cout << "\nreload-under-load (" << reload_threads << " engine threads, batch "
            << reload_batch << "): " << kReloads << " wire hot swaps, "
            << psl::util::fmt_double(reload_qps, 0) << " queries/sec, final generation "
            << reload_generation << "\n";
  if (reload_generation != 1u + kReloads) {
    std::cout << "GENERATION MISMATCH: expected " << (1u + kReloads) << "\n";
    return 1;
  }

  std::ofstream json("BENCH_net.json");
  json << "{\n";
  json << "  \"rule_count\": " << list.rules().size() << ",\n";
  json << "  \"queries_per_cell\": " << queries_per_cell << ",\n";
  json << "  \"client_connections\": " << clients << ",\n";
  json << "  \"hardware_threads\": " << hardware << ",\n";
  json << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& cell = cells[i];
    json << "    {\"threads\": " << cell.threads << ", \"batch_size\": " << cell.batch
         << ", \"wall_ms\": " << psl::util::fmt_double(cell.wall_ms, 2)
         << ", \"qps\": " << psl::util::fmt_double(cell.qps, 1)
         << ", \"p50_ms\": " << psl::util::fmt_double(cell.latency.p50, 4)
         << ", \"p90_ms\": " << psl::util::fmt_double(cell.latency.p90, 4)
         << ", \"p99_ms\": " << psl::util::fmt_double(cell.latency.p99, 4)
         << ", \"p999_ms\": " << psl::util::fmt_double(cell.latency.p999, 4) << "}"
         << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"zipf_cache_comparison\": [\n";
  for (std::size_t i = 0; i < cache_cells.size(); ++i) {
    const CacheCell& cell = cache_cells[i];
    json << "    {\"threads\": " << cache_threads << ", \"batch_size\": " << cell.batch
         << ", \"cached\": " << (cell.cached ? "true" : "false")
         << ", \"wall_ms\": " << psl::util::fmt_double(cell.wall_ms, 2)
         << ", \"qps\": " << psl::util::fmt_double(cell.qps, 1) << "}"
         << (i + 1 < cache_cells.size() ? "," : "") << "\n";
  }
  json << "  ],\n";
  json << "  \"reload_under_load\": {\"threads\": " << reload_threads
       << ", \"batch_size\": " << reload_batch << ", \"reloads\": " << kReloads
       << ", \"wall_ms\": " << psl::util::fmt_double(reload_wall_ms, 2)
       << ", \"qps\": " << psl::util::fmt_double(reload_qps, 1)
       << ", \"final_generation\": " << reload_generation << "},\n";
  json << "  \"metrics\": " << psl::obs::to_json(metrics) << ",\n";
  psl::bench::emit_bench_delta(json);
  json << "\n}\n";
  std::cout << "wrote BENCH_net.json\n";
  return 0;
}
