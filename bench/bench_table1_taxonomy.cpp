// Table 1: open-source projects using the Public Suffix List by usage type.
//
// Paper values: Fixed 68 (24.9%) [production 43 / test 24 / other 1],
// Updated 35 (12.8%) [build 24 / user 8 / server 3], Dependency 170 (62.3%)
// [jre 113, ddns-scripts 15, oneforall 12, python-whois 10, domain_name 10,
// other 10].
#include <iostream>

#include "common.hpp"
#include "psl/core/repo_stats.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& repos = psl::bench::repo_corpus();
  const psl::harm::TaxonomyBreakdown t = psl::harm::taxonomy(repos);

  std::cout << "=== Table 1: projects by usage type (n=" << t.total << ") ===\n\n";
  psl::util::TextTable table({"Category", "Projects", "Share"});
  auto row = [&](const std::string& name, std::size_t count) {
    table.add_row({name, std::to_string(count), psl::util::fmt_percent(t.fraction(count), 1)});
  };
  row("Fixed (F)", t.fixed);
  row("  Production (Prd.)", t.fixed_production);
  row("  Test (T)", t.fixed_test);
  row("  Other (O)", t.fixed_other);
  row("Updated (U)", t.updated);
  row("  Build", t.updated_build);
  row("  User", t.updated_user);
  row("  Server", t.updated_server);
  row("Dependency (D)", t.dependency);
  for (const auto& [lib, count] : t.dependency_by_lib) {
    row("  " + std::string(to_string(lib)), count);
  }
  table.print(std::cout);

  std::cout << "\nPaper: Fixed 24.9% / Updated 12.8% / Dependency 62.3%\n";
  std::cout << "Here:  Fixed " << psl::util::fmt_percent(t.fraction(t.fixed), 1) << " / Updated "
            << psl::util::fmt_percent(t.fraction(t.updated), 1) << " / Dependency "
            << psl::util::fmt_percent(t.fraction(t.dependency), 1) << "\n";
  return 0;
}
