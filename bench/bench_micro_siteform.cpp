// Engineering/ablation bench: site-formation throughput.
//
// DESIGN.md ablation #3: the pipeline computes suffixes per UNIQUE hostname
// and joins to requests via interned ids (the paper's step 2); the naive
// alternative matches the list per request. On a corpus with ~5 requests
// per unique host the dedup path should win by roughly that factor.
#include <benchmark/benchmark.h>

#include "psl/archive/corpus.hpp"
#include "psl/core/site_former.hpp"
#include "psl/core/sweep.hpp"
#include "psl/history/timeline.hpp"

namespace {

const psl::history::History& hist() {
  static const psl::history::History h =
      psl::history::generate_history(psl::history::TimelineSpec{});
  return h;
}

const psl::archive::Corpus& corpus() {
  static const psl::archive::Corpus c = [] {
    psl::archive::CorpusSpec spec;
    // Quarter-scale corpus keeps each benchmark iteration under ~100ms.
    spec.page_views = 5000;
    spec.organizations = 4000;
    spec.platform_tenant_scale = 0.125;
    return psl::archive::generate_corpus(spec, hist());
  }();
  return c;
}

void BM_AssignSites_UniqueHostDedup(benchmark::State& state) {
  const psl::List& latest = hist().latest();
  for (auto _ : state) {
    const auto assignment = psl::harm::assign_sites(latest, corpus().hostnames());
    benchmark::DoNotOptimize(assignment.site_count);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * corpus().request_count()));
}
BENCHMARK(BM_AssignSites_UniqueHostDedup);

void BM_AssignSites_NaivePerRequest(benchmark::State& state) {
  const psl::List& latest = hist().latest();
  for (auto _ : state) {
    std::size_t third_party = 0;
    for (const auto& request : corpus().requests()) {
      third_party += !latest.same_site(corpus().hostname(request.page_host),
                                       corpus().hostname(request.resource_host));
    }
    benchmark::DoNotOptimize(third_party);
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * corpus().request_count()));
}
BENCHMARK(BM_AssignSites_NaivePerRequest);

void BM_FullVersionEvaluation(benchmark::State& state) {
  const psl::harm::Sweeper sweeper(hist(), corpus());
  const std::size_t version = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sweeper.evaluate(version * (hist().version_count() - 1)));
  }
}
BENCHMARK(BM_FullVersionEvaluation)->Arg(0)->Arg(1);  // oldest and newest list

void BM_SnapshotMaterialisation(benchmark::State& state) {
  const std::size_t version = hist().version_count() / 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(hist().snapshot(version));
  }
}
BENCHMARK(BM_SnapshotMaterialisation);

void BM_DivergenceComputation(benchmark::State& state) {
  const auto latest = psl::harm::assign_sites(hist().latest(), corpus().hostnames());
  const auto old = psl::harm::assign_sites(
      hist().snapshot_at(psl::util::Date::from_civil(2015, 1, 1)), corpus().hostnames());
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl::harm::divergent_hosts(old, latest));
  }
}
BENCHMARK(BM_DivergenceComputation);

}  // namespace

BENCHMARK_MAIN();
