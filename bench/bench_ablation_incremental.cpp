// Ablation: incremental per-version updates vs. full recompute for the
// Figs. 5-7 sweep (DESIGN.md ablation #2).
//
// Full recompute matches every unique hostname against every sampled
// version; the incremental sweeper re-matches only hosts under rules that
// changed between versions. Both must produce identical metrics; the
// incremental path makes the full-resolution 1,142-version sweep cheap.
#include <chrono>
#include <iostream>

#include "common.hpp"
#include "psl/core/incremental.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"

int main() {
  using Clock = std::chrono::steady_clock;
  const auto ms = [](Clock::time_point a, Clock::time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  };

  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();

  std::cout << "=== Ablation: incremental vs. full-recompute sweeping ===\n\n";

  // Full recompute over a 48-point sample.
  const auto t0 = Clock::now();
  const psl::harm::Sweeper full(history, corpus);
  const auto sampled = full.sweep(psl::bench::kSweepPoints);
  const auto t1 = Clock::now();

  // Incremental over EVERY version.
  const auto t2 = Clock::now();
  psl::harm::IncrementalSweeper incremental(history, corpus);
  const auto everything = incremental.sweep_all();
  const auto t3 = Clock::now();

  // Agreement check on the sampled points.
  std::size_t mismatches = 0;
  for (const auto& m : sampled) {
    const auto& n = everything[m.version_index];
    if (n.site_count != m.site_count || n.third_party_requests != m.third_party_requests ||
        n.divergent_hosts != m.divergent_hosts) {
      ++mismatches;
    }
  }

  psl::util::TextTable table({"strategy", "versions evaluated", "wall time", "per version"});
  table.add_row({"full recompute", std::to_string(sampled.size()),
                 psl::util::fmt_double(ms(t0, t1), 0) + " ms",
                 psl::util::fmt_double(ms(t0, t1) / static_cast<double>(sampled.size()), 1) +
                     " ms"});
  table.add_row({"incremental", std::to_string(everything.size()),
                 psl::util::fmt_double(ms(t2, t3), 0) + " ms",
                 psl::util::fmt_double(ms(t2, t3) / static_cast<double>(everything.size()), 1) +
                     " ms"});
  table.print(std::cout);

  std::cout << "\nmetric agreement on the " << sampled.size()
            << " sampled versions: " << (mismatches == 0 ? "EXACT" : "MISMATCH!") << "\n";
  std::cout << "hosts re-matched incrementally: "
            << psl::util::with_commas(static_cast<long long>(incremental.hosts_rematched()))
            << " of "
            << psl::util::with_commas(static_cast<long long>(
                   corpus.unique_host_count() * history.version_count()))
            << " a full per-version recompute would do\n";
  return mismatches == 0 ? 0 : 1;
}
