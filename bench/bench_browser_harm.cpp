// End-to-end browser harm: replay identical corpus traffic through two
// complete browser models — one carrying the 2018-vintage list a real
// fixed-production project shipped (bitwarden's, per Table 3), one carrying
// the newest list — and compare the concrete privacy events:
//
//   * supercookies accepted (Domain=<platform suffix> set by tenant pages);
//   * cookies attached to requests the current list knows are cross-site;
//   * full-URL Referer headers disclosed to foreign organizations.
//
// This is the paper's abstract "incorrect privacy boundaries" made
// operational: every number below is an actual cookie or header.
#include <iostream>

#include "common.hpp"
#include "psl/web/browser.hpp"
#include "psl/util/table.hpp"

namespace {

using psl::archive::Request;
using psl::web::Browser;
using psl::web::ResourceFetch;

psl::url::Url page_url(const std::string& host) {
  return *psl::url::Url::parse("https://" + host + "/account/orders?session=s3cr3t");
}

psl::url::Url resource_url(const std::string& host) {
  return *psl::url::Url::parse("https://" + host + "/asset.js");
}

struct ReplayStats {
  std::size_t pages = 0;
  std::size_t fetches = 0;
  std::size_t cookies_stored = 0;
  std::size_t supercookies_rejected = 0;
};

/// Replay the first `max_pages` page views. Servers behave uniformly for
/// both browsers: every resource host sets a tracking cookie scoped to its
/// registrable domain *under the current list* (servers are typically
/// fresh), and resources under a shared-hosting suffix additionally attempt
/// the platform-wide supercookie an attacker would.
ReplayStats replay(Browser& browser, const psl::List& server_side_list,
                   std::size_t max_pages) {
  const auto& corpus = psl::bench::full_corpus();
  ReplayStats stats;

  std::vector<ResourceFetch> fetches;
  std::string current_page;
  std::int64_t now = 0;

  const auto flush = [&]() {
    if (current_page.empty()) return;
    const auto visit = browser.visit(page_url(current_page), fetches, now++);
    ++stats.pages;
    stats.fetches += visit.fetches.size();
    for (const auto& f : visit.fetches) {
      stats.cookies_stored += f.cookies_stored;
      stats.supercookies_rejected += f.cookies_rejected;
    }
    fetches.clear();
  };

  for (const Request& r : corpus.requests()) {
    const std::string& page = corpus.hostname(r.page_host);
    const std::string& resource = corpus.hostname(r.resource_host);
    if (r.page_host == r.resource_host) {  // document fetch = new page view
      flush();
      if (stats.pages >= max_pages) break;
      current_page = page;
      continue;
    }
    if (current_page.empty()) continue;

    ResourceFetch fetch{resource_url(resource), {}};
    const psl::Match m = server_side_list.match(resource);
    if (!m.registrable_domain.empty()) {
      fetch.set_cookie_headers.push_back("uid=u1; Domain=" + m.registrable_domain);
      // Tenants of PRIVATE-section platforms also try the platform-wide
      // supercookie (the attack a correct list blocks).
      if (m.section == psl::Section::kPrivate && m.matched_explicit_rule) {
        fetch.set_cookie_headers.push_back("track=all; Domain=" + m.public_suffix);
      }
    }
    fetches.push_back(std::move(fetch));
  }
  flush();
  return stats;
}

}  // namespace

int main() {
  const auto& history = psl::bench::full_history();
  const psl::List stale = history.snapshot_at(psl::util::Date::from_civil(2018, 7, 22));
  const psl::List& current = history.latest();

  std::cout << "=== End-to-end browser harm: stale (2018) vs. current list ===\n\n";
  constexpr std::size_t kPages = 2000;

  Browser stale_browser(stale);
  Browser current_browser(current);
  const ReplayStats stale_stats = replay(stale_browser, current, kPages);
  const ReplayStats current_stats = replay(current_browser, current, kPages);

  psl::util::TextTable table({"metric", "stale-list browser", "current-list browser"});
  table.add_row({"page views replayed", std::to_string(stale_stats.pages),
                 std::to_string(current_stats.pages)});
  table.add_row({"subresource fetches", std::to_string(stale_stats.fetches),
                 std::to_string(current_stats.fetches)});
  table.add_row({"cookies stored", std::to_string(stale_stats.cookies_stored),
                 std::to_string(current_stats.cookies_stored)});
  table.add_row({"supercookies rejected", std::to_string(stale_stats.supercookies_rejected),
                 std::to_string(current_stats.supercookies_rejected)});
  table.add_row({"cookies sent cross-site",
                 std::to_string(stale_browser.cross_site_cookie_sends()),
                 std::to_string(current_browser.cross_site_cookie_sends())});
  table.add_row({"full-URL referrers sent", std::to_string(stale_browser.full_url_referrers()),
                 std::to_string(current_browser.full_url_referrers())});
  table.print(std::cout);

  const long long extra_cookies =
      static_cast<long long>(stale_stats.cookies_stored) -
      static_cast<long long>(current_stats.cookies_stored);
  const long long extra_referrers =
      static_cast<long long>(stale_browser.full_url_referrers()) -
      static_cast<long long>(current_browser.full_url_referrers());
  std::cout << "\nThe stale browser accepted " << extra_cookies
            << " cookies the current list rejects as supercookies, and disclosed\n"
            << "the full page URL (session token included) on " << extra_referrers
            << " more fetches.\n";
  return 0;
}
