// Multi-version store gate: builds a psl::store file over the synthetic
// history, proves every version materializes bit-identically, and measures
// the two numbers the design is accountable for:
//
//   * dedup ratio — store file size as a fraction of shipping every version
//     as a standalone snapshot. The full 1,142-version corpus must come in
//     under 0.30 or the binary exits non-zero (CI treats that like a test
//     failure); --smoke runs the 96-version tiny timeline with a looser
//     0.50 bar (fewer versions means less sharing to exploit).
//   * time-travel query throughput — match_at-style lookups (resolve the
//     version in effect at a random date, then match one host) against the
//     plain current-generation matcher on the same host stream.
//
// Results land machine-readably in BENCH_store.json, which CI archives.
//
// Usage: bench_store [--smoke] [queries]
//   --smoke   tiny 96-version timeline + relaxed gate (CI Release job)
//   queries   time-travel lookups measured (default 200000)
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/store/store.hpp"
#include "psl/util/date.hpp"
#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// Host mix biased toward rules that exist somewhere in the history, so
/// time-travel answers actually vary across versions.
std::vector<std::string> host_mix(const psl::List& newest) {
  psl::util::Rng rng(23);
  psl::util::NameGen names{rng.fork(1)};
  const auto& rules = newest.rules();
  std::vector<std::string> out;
  out.reserve(4096);
  for (int i = 0; i < 4096; ++i) {
    std::string host = names.fresh();
    if (rng.chance(0.6) && !rules.empty()) {
      const auto& rule = rules[rng.below(rules.size())];
      std::string suffix;
      for (const auto& label : rule.labels()) {
        if (!suffix.empty()) suffix.push_back('.');
        suffix += label;
      }
      host += "." + suffix;
    } else {
      host += "." + names.fresh() + (rng.chance(0.5) ? ".com" : ".net");
    }
    out.push_back(std::move(host));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::size_t queries = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      queries = static_cast<std::size_t>(std::atoll(argv[i]));
    }
  }
  const double gate = smoke ? 0.50 : 0.30;

  psl::history::TimelineSpec spec;
  if (smoke) spec = psl::history::TimelineSpec::tiny();
  std::cerr << "[bench_store] generating " << (smoke ? "tiny" : "full")
            << " history...\n";
  const auto history = psl::history::generate_history(spec);
  const std::size_t versions = history.version_count();

  // Build: every version through the public Builder path (compile -> delta
  // -> verify round-trip), exactly what `psltool store build` runs.
  const auto t_build = Clock::now();
  psl::store::Builder builder;
  for (std::size_t v = 0; v < versions; ++v) {
    const psl::List list = history.snapshot(v);
    psl::snapshot::Metadata meta;
    meta.source_date = history.version_date(v);
    meta.rule_count = list.rule_count();
    auto added = builder.add(psl::CompiledMatcher(list), meta);
    if (!added.ok()) {
      std::cerr << "ADD FAILED at version " << v << ": " << added.error().message << "\n";
      return 1;
    }
  }
  const double build_secs = secs_since(t_build);

  const std::string path = "BENCH_store.pstore";
  auto written = builder.write_file(path);
  if (!written.ok()) {
    std::cerr << "WRITE FAILED: " << written.error().message << "\n";
    return 1;
  }
  auto opened = psl::store::StoreView::open(path);
  if (!opened.ok()) {
    std::cerr << "OPEN FAILED: " << opened.error().message << "\n";
    return 1;
  }
  const auto view = *opened;
  const psl::store::Stats stats = view->stats();

  // Materialize every version once (cold) — this is the validating load
  // path, so it also re-proves every checksum in the file.
  const auto t_mat = Clock::now();
  for (std::size_t v = 0; v < versions; ++v) {
    auto snap = view->open_version(v);
    if (!snap.ok()) {
      std::cerr << "MATERIALIZE FAILED at version " << v << ": "
                << snap.error().message << "\n";
      return 1;
    }
  }
  const double materialize_secs = secs_since(t_mat);

  // Bit-identity spot check: first, middle, newest re-serialize to exactly
  // the standalone bytes.
  for (const std::size_t v : {std::size_t{0}, versions / 2, versions - 1}) {
    const psl::List list = history.snapshot(v);
    psl::snapshot::Metadata meta;
    meta.source_date = history.version_date(v);
    meta.rule_count = list.rule_count();
    const std::string standalone =
        psl::snapshot::serialize(psl::CompiledMatcher(list), meta);
    const auto snap = view->open_version(v);
    if (psl::snapshot::serialize(snap->matcher, snap->meta) != standalone) {
      std::cerr << "BIT-IDENTITY FAILED at version " << v << "\n";
      return 1;
    }
  }

  // Time-travel lookups: random date in the stored span -> version in
  // effect -> one match_view. Materializations are cached, so steady state
  // is the binary-search + a matcher walk.
  const psl::List newest = history.snapshot(versions - 1);
  const std::vector<std::string> hosts = host_mix(newest);
  const std::int32_t first_day = history.version_date(0).days_since_epoch();
  const std::int32_t last_day = history.version_date(versions - 1).days_since_epoch();
  psl::util::Rng rng(29);
  std::vector<psl::util::Date> dates;
  dates.reserve(1024);
  for (int i = 0; i < 1024; ++i) {
    dates.push_back(psl::util::Date{static_cast<std::int32_t>(
        first_day + static_cast<std::int32_t>(
                        rng.below(static_cast<std::size_t>(last_day - first_day) + 1)))});
  }

  std::size_t sink = 0;
  const auto t_tt = Clock::now();
  for (std::size_t i = 0; i < queries; ++i) {
    auto snap = view->open_at(dates[i % dates.size()]);
    if (!snap.ok()) return 1;
    sink += snap->matcher.match_view(hosts[i % hosts.size()]).public_suffix.size();
  }
  const double tt_secs = secs_since(t_tt);

  // Baseline: the same host stream against the fixed newest matcher.
  const psl::CompiledMatcher current(newest);
  const auto t_cur = Clock::now();
  for (std::size_t i = 0; i < queries; ++i) {
    sink += current.match_view(hosts[i % hosts.size()]).public_suffix.size();
  }
  const double cur_secs = secs_since(t_cur);

  const double tt_qps = static_cast<double>(queries) / tt_secs;
  const double cur_qps = static_cast<double>(queries) / cur_secs;

  std::cout << "store: " << versions << " versions, " << stats.file_bytes
            << " bytes (" << 100.0 * stats.dedup_ratio() << "% of "
            << stats.standalone_bytes << " standalone), built in " << build_secs
            << "s, materialized all in " << materialize_secs << "s\n";
  std::cout << "segments: " << stats.segment_count << " (" << stats.raw_segments
            << " raw, " << stats.delta_segments << " delta)\n";
  std::cout << "match_at " << static_cast<long long>(tt_qps)
            << " qps vs current-generation " << static_cast<long long>(cur_qps)
            << " qps (sink " << sink << ")\n";

  std::ofstream json("BENCH_store.json");
  json << "{\n";
  json << "  \"mode\": \"" << (smoke ? "smoke" : "full") << "\",\n";
  json << "  \"versions\": " << versions << ",\n";
  json << "  \"file_bytes\": " << stats.file_bytes << ",\n";
  json << "  \"standalone_bytes\": " << stats.standalone_bytes << ",\n";
  json << "  \"dedup_ratio\": " << stats.dedup_ratio() << ",\n";
  json << "  \"dedup_gate\": " << gate << ",\n";
  json << "  \"raw_segments\": " << stats.raw_segments << ",\n";
  json << "  \"delta_segments\": " << stats.delta_segments << ",\n";
  json << "  \"build_secs\": " << build_secs << ",\n";
  json << "  \"materialize_all_secs\": " << materialize_secs << ",\n";
  json << "  \"queries\": " << queries << ",\n";
  json << "  \"match_at_qps\": " << tt_qps << ",\n";
  json << "  \"current_generation_qps\": " << cur_qps << ",\n";
  psl::bench::emit_bench_delta(json);
  json << "\n}\n";

  if (stats.dedup_ratio() >= gate) {
    std::cout << "DEDUP GATE FAILED: ratio " << stats.dedup_ratio() << " >= " << gate
              << "\n";
    return 1;
  }
  std::cout << "dedup gate passed (" << stats.dedup_ratio() << " < " << gate << ")\n";
  return 0;
}
