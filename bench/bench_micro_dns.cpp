// Engineering bench: the DNS substrate — wire codec throughput, server
// query handling, resolver cache behaviour, and full DBOUND discovery.
#include <benchmark/benchmark.h>

#include "psl/dbound/dbound.hpp"
#include "psl/dns/resolver.hpp"

namespace {

using namespace psl::dns;

Name name(std::string_view text) { return *Name::parse(text); }

Message sample_response() {
  Message m;
  m.header.id = 42;
  m.header.qr = true;
  m.header.aa = true;
  m.questions.push_back(Question{name("www.example.com"), Type::kA});
  m.answers.push_back(
      ResourceRecord{name("www.example.com"), Type::kA, 300, ARecord{{192, 0, 2, 7}}});
  m.answers.push_back(ResourceRecord{name("www.example.com"), Type::kTxt, 300,
                                     TxtRecord{{"v=spf1 include:_spf.example.com ~all"}}});
  m.authority.push_back(ResourceRecord{
      name("example.com"), Type::kSoa, 3600,
      SoaRecord{name("ns1.example.com"), name("admin.example.com"), 1, 7200, 900, 1209600,
                300}});
  return m;
}

const AuthServer& server() {
  static const AuthServer s = [] {
    AuthServer srv;
    Zone zone(name("myshopify.com"),
              SoaRecord{name("ns1.myshopify.com"), name("admin.myshopify.com"), 1, 7200, 900,
                        1209600, 300});
    psl::dbound::publish_registry(zone, "myshopify.com");
    for (int i = 0; i < 512; ++i) {
      zone.add_a(name("store" + std::to_string(i) + ".myshopify.com"),
                 {10, 0, static_cast<std::uint8_t>(i >> 8), static_cast<std::uint8_t>(i)});
    }
    srv.add_zone(std::move(zone));
    return srv;
  }();
  return s;
}

void BM_EncodeMessage(benchmark::State& state) {
  const Message m = sample_response();
  for (auto _ : state) {
    benchmark::DoNotOptimize(encode(m));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeMessage);

void BM_DecodeMessage(benchmark::State& state) {
  const auto wire = encode(sample_response());
  for (auto _ : state) {
    benchmark::DoNotOptimize(decode(wire));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations() * wire.size()));
}
BENCHMARK(BM_DecodeMessage);

void BM_ServerHandleWire(benchmark::State& state) {
  Message q;
  q.header.id = 1;
  q.questions.push_back(Question{name("store37.myshopify.com"), Type::kA});
  const auto wire = encode(q);
  for (auto _ : state) {
    benchmark::DoNotOptimize(server().handle_wire(wire));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ServerHandleWire);

void BM_ResolverCacheHit(benchmark::State& state) {
  StubResolver resolver(server());
  resolver.query(name("store1.myshopify.com"), Type::kA, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.query(name("store1.myshopify.com"), Type::kA, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResolverCacheHit);

void BM_ResolverCacheMiss(benchmark::State& state) {
  StubResolver resolver(server());
  std::uint64_t now = 0;
  for (auto _ : state) {
    // Flushing each round keeps every query on the wire path.
    resolver.flush();
    benchmark::DoNotOptimize(resolver.query(name("store1.myshopify.com"), Type::kA, now++));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ResolverCacheMiss);

void BM_DboundDiscoveryWarm(benchmark::State& state) {
  StubResolver resolver(server());
  psl::dbound::discover(resolver, "store0.myshopify.com", 0);  // warm the platform record
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(psl::dbound::discover(
        resolver, "store" + std::to_string(i++ & 511) + ".myshopify.com", 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DboundDiscoveryWarm);

}  // namespace

BENCHMARK_MAIN();
