// Table 3: projects with fixed PSL usage — stars, forks, list age, and the
// number of corpus hostnames their stale copy assigns to the wrong site.
//
// Paper shape: misclassified-hostname counts grow with list age;
// bitwarden/server (age 1,596 d) misses 36,326 hostnames at HTTP Archive
// scale while SAP/SapMachine (age 376 d) misses 3,966.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "psl/core/impact.hpp"
#include "psl/core/repo_stats.hpp"
#include "psl/util/stats.hpp"
#include "psl/util/table.hpp"

int main() {
  const auto& history = psl::bench::full_history();
  const auto& corpus = psl::bench::full_corpus();
  const auto& repos = psl::bench::repo_corpus();

  std::cout << "=== Table 3: fixed-usage projects and their misclassified hostnames ===\n\n";

  const psl::harm::Sweeper sweeper(history, corpus);
  auto impacts =
      psl::harm::per_repo_divergence(history, corpus, sweeper, repos, /*anchored_only=*/true);

  // The paper lists production first, then test, then other; stars
  // descending within each group.
  const auto group_rank = [](psl::repos::Usage usage) {
    switch (usage) {
      case psl::repos::Usage::kFixedProduction: return 0;
      case psl::repos::Usage::kFixedTest: return 1;
      default: return 2;
    }
  };
  std::sort(impacts.begin(), impacts.end(), [&](const auto& a, const auto& b) {
    if (group_rank(a.repo->usage) != group_rank(b.repo->usage)) {
      return group_rank(a.repo->usage) < group_rank(b.repo->usage);
    }
    return a.repo->stars > b.repo->stars;
  });

  psl::util::TextTable table(
      {"repository", "usage", "stars", "forks", "list age (d)", "misclassified hosts"});
  for (const auto& impact : impacts) {
    table.add_row({impact.repo->name, std::string(to_string(impact.repo->usage)),
                   std::to_string(impact.repo->stars), std::to_string(impact.repo->forks),
                   std::to_string(*impact.repo->list_age()),
                   std::to_string(impact.misclassified_hostnames)});
  }
  table.print(std::cout);

  std::cout << "\nstars-forks Pearson r over these projects: "
            << psl::util::fmt_double(psl::harm::stars_forks_pearson(repos), 3)
            << " (paper: 0.96)\n";

  // Direction check the paper emphasises: age drives harm.
  std::vector<double> ages, missed;
  for (const auto& impact : impacts) {
    ages.push_back(static_cast<double>(*impact.repo->list_age()));
    missed.push_back(static_cast<double>(impact.misclassified_hostnames));
  }
  std::cout << "age vs. misclassified-hosts Pearson r: "
            << psl::util::fmt_double(psl::util::pearson(ages, missed), 3)
            << " (strongly positive expected)\n";
  return 0;
}
