// Ablation: list-shipped boundaries (PSL) vs. DNS-advertised boundaries
// (DBOUND) — the alternative the paper's conclusion advocates.
//
// Scenario: a shared-hosting platform turns on per-tenant boundaries at
// time T (a new PSL rule / a freshly published _bound record). Who sees the
// correct boundary?
//   * PSL clients: only those whose embedded list postdates T — measured
//     against the repository corpus's actual list vintages;
//   * DBOUND clients: everyone, within one DNS TTL of T.
//
// The bench also prices the DNS path: wire queries per boundary decision
// with and without a warm cache.
#include <algorithm>
#include <iostream>

#include "common.hpp"
#include "psl/dbound/dbound.hpp"
#include "psl/util/table.hpp"

int main() {
  using psl::dns::Name;

  std::cout << "=== Ablation: PSL-shipped vs. DNS-advertised boundaries ===\n\n";

  // --- PSL side: which projects' lists contain each anchor rule? ----------
  const auto& history = psl::bench::full_history();
  const auto& repos = psl::bench::repo_corpus();

  std::size_t dated_repos = 0;
  for (const auto& repo : repos) {
    if (repo.effective_list_date()) ++dated_repos;
  }

  psl::util::TextTable table({"boundary rule", "added", "projects seeing it (PSL)",
                              "share", "DBOUND clients after 1 TTL"});
  for (const char* rule : {"github.io", "altervista.org", "netlify.app", "myshopify.com",
                           "digitaloceanspaces.com"}) {
    const auto added = history.added_date(rule);
    if (!added) continue;
    std::size_t seeing = 0;
    for (const auto& repo : repos) {
      const auto date = repo.effective_list_date();
      if (date && *date >= *added) ++seeing;
    }
    table.add_row({rule, added->to_string(), std::to_string(seeing),
                   psl::util::fmt_percent(static_cast<double>(seeing) /
                                              static_cast<double>(dated_repos),
                                          1),
                   "100%"});
  }
  table.print(std::cout);
  std::cout << "(" << dated_repos
            << " projects with a determinable list vintage, t = 2022-12-08)\n\n";

  // --- DBOUND side: price the DNS path ------------------------------------
  psl::dns::AuthServer server;
  psl::dns::Zone zone(*Name::parse("myshopify.com"),
                      psl::dns::SoaRecord{*Name::parse("ns1.myshopify.com"),
                                          *Name::parse("admin.myshopify.com"), 1, 7200, 900,
                                          1209600, 300});
  psl::dbound::publish_registry(zone, "myshopify.com", /*ttl=*/3600);
  server.add_zone(std::move(zone));
  psl::dns::StubResolver resolver(server);

  // Cold: first tenant decision pays the walk; warm: later tenants reuse
  // the cached platform record.
  psl::dbound::discover(resolver, "store0.myshopify.com", 0);
  const std::size_t cold_queries = resolver.wire_queries();
  for (int i = 1; i <= 200; ++i) {
    psl::dbound::discover(resolver, "store" + std::to_string(i) + ".myshopify.com",
                          static_cast<std::uint64_t>(i));
  }
  const std::size_t total_queries = resolver.wire_queries();

  std::cout << "DNS cost: cold boundary decision = " << cold_queries
            << " wire queries; 200 further tenants = "
            << (total_queries - cold_queries) << " queries ("
            << psl::util::fmt_double(
                   static_cast<double>(total_queries - cold_queries) / 200.0, 2)
            << "/decision, platform record cached)\n";
  std::cout << "\nTrade-off: the PSL answers locally at zero queries but with\n"
            << "list-age staleness measured in YEARS for fixed projects; DBOUND\n"
            << "pays ~1 query per new name and is stale for at most one TTL\n"
            << "(here 3600s).\n";
  return 0;
}
