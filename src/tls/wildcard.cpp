#include "psl/tls/wildcard.hpp"

#include <algorithm>

#include "psl/util/strings.hpp"

namespace psl::tls {

bool dns_name_matches(std::string_view pattern, std::string_view host) noexcept {
  if (pattern.empty() || host.empty()) return false;
  if (!pattern.empty() && pattern.back() == '.') pattern.remove_suffix(1);
  if (!host.empty() && host.back() == '.') host.remove_suffix(1);

  if (pattern.find('*') == std::string_view::npos) {
    return pattern == host;
  }

  // The wildcard must be the complete left-most label.
  if (!util::starts_with(pattern, "*.")) return false;
  const std::string_view tail = pattern.substr(2);
  if (tail.empty() || tail.find('*') != std::string_view::npos) return false;

  // The host must be exactly one label deeper than the tail.
  const std::size_t dot = host.find('.');
  if (dot == std::string_view::npos || dot == 0) return false;
  return host.substr(dot + 1) == tail;
}

std::string_view to_string(IssuanceVerdict verdict) noexcept {
  switch (verdict) {
    case IssuanceVerdict::kOk: return "ok";
    case IssuanceVerdict::kRejectedSyntax: return "rejected-syntax";
    case IssuanceVerdict::kRejectedPublicSuffix: return "rejected-public-suffix";
    case IssuanceVerdict::kRejectedTld: return "rejected-tld";
  }
  return "unknown";
}

namespace {

bool valid_pattern_labels(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (std::string_view label : util::split(name, '.')) {
    if (label.empty()) return false;
    if (label.find('*') != std::string_view::npos) return false;
  }
  return true;
}

}  // namespace

IssuanceVerdict check_issuance(const List& list, std::string_view pattern) {
  if (pattern.empty()) return IssuanceVerdict::kRejectedSyntax;
  if (!pattern.empty() && pattern.back() == '.') pattern.remove_suffix(1);

  if (pattern == "*") return IssuanceVerdict::kRejectedTld;

  if (pattern.find('*') == std::string_view::npos) {
    return valid_pattern_labels(pattern) ? IssuanceVerdict::kOk
                                         : IssuanceVerdict::kRejectedSyntax;
  }

  if (!util::starts_with(pattern, "*.")) return IssuanceVerdict::kRejectedSyntax;
  const std::string_view parent = pattern.substr(2);
  if (!valid_pattern_labels(parent)) return IssuanceVerdict::kRejectedSyntax;

  // CABF BR 3.2.2.6: no wildcard immediately above a registry-controlled
  // label. "*.<public suffix>" covers every registrant under the suffix.
  if (list.is_public_suffix(parent)) {
    return IssuanceVerdict::kRejectedPublicSuffix;
  }
  return IssuanceVerdict::kOk;
}

bool Certificate::matches(std::string_view host) const noexcept {
  return std::any_of(dns_names.begin(), dns_names.end(), [&](const std::string& pattern) {
    return dns_name_matches(pattern, host);
  });
}

std::vector<std::string> covered_hosts(std::string_view pattern,
                                       const std::vector<std::string>& universe) {
  std::vector<std::string> out;
  for (const std::string& host : universe) {
    if (dns_name_matches(pattern, host)) out.push_back(host);
  }
  return out;
}

}  // namespace psl::tls
