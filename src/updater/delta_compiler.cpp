#include "psl/updater/delta_compiler.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "psl/psl/detail/match_walk.hpp"

namespace psl::updater {

// The friend backdoor into CompiledMatcher's arena: re-exports the private
// record types and flag bits, constructs a matcher from pre-built arena
// vectors, and exposes the spans for the equivalence walk. Mirrors
// snapshot::Access — the arena layout stays private to everyone else.
struct ArenaAccess {
  using Node = CompiledMatcher::Node;
  using Child = CompiledMatcher::Child;
  static constexpr std::uint8_t kHasNormal = CompiledMatcher::kHasNormal;
  static constexpr std::uint8_t kHasWildcard = CompiledMatcher::kHasWildcard;
  static constexpr std::uint8_t kHasException = CompiledMatcher::kHasException;

  static CompiledMatcher adopt(std::vector<Node> nodes, std::vector<std::uint32_t> hashes,
                               std::vector<Child> children, std::vector<char> pool) {
    CompiledMatcher m;
    m.owned_nodes_ = std::move(nodes);
    m.owned_hashes_ = std::move(hashes);
    m.owned_children_ = std::move(children);
    m.owned_pool_ = std::move(pool);
    m.adopt_owned();
    return m;
  }

  static std::span<const Node> nodes(const CompiledMatcher& m) noexcept { return m.nodes_; }
  static std::span<const std::uint32_t> hashes(const CompiledMatcher& m) noexcept {
    return m.child_hashes_;
  }
  static std::span<const Child> children(const CompiledMatcher& m) noexcept {
    return m.children_;
  }
  static std::string_view pool(const CompiledMatcher& m) noexcept { return m.pool_; }
};

namespace {

using Node = ArenaAccess::Node;
using Child = ArenaAccess::Child;

std::uint8_t flag_bit(RuleKind kind) noexcept {
  switch (kind) {
    case RuleKind::kNormal: return ArenaAccess::kHasNormal;
    case RuleKind::kWildcard: return ArenaAccess::kHasWildcard;
    case RuleKind::kException: return ArenaAccess::kHasException;
  }
  return 0;
}

}  // namespace

struct DeltaCompiler::Impl {
  // The persistent Pass-1 trie. Matches CompiledMatcher's throwaway
  // BuildNode exactly, plus a parent link so removal can prune upward.
  struct BuildNode {
    std::map<std::string, std::uint32_t, std::less<>> children;
    std::uint32_t parent = 0;
    std::uint8_t flags = 0;
    std::uint8_t sections = 0;
  };

  // One TLD subtree plus its cached flattened chunk. All indices/offsets
  // in the chunk are segment-local: nodes[0] is the TLD node itself,
  // Child::node indexes `nodes`, Child::label_offset indexes `pool`.
  struct Segment {
    std::uint32_t build_root = 0;
    bool dirty = true;
    std::vector<Node> nodes;
    std::vector<std::uint32_t> hashes;
    std::vector<Child> children;
    std::string pool;
  };

  std::vector<BuildNode> build{1};  // [0] = root
  std::vector<std::uint32_t> free_nodes;
  std::map<std::string, Segment, std::less<>> segments;
  DeltaStats stats;

  std::uint32_t alloc_node(std::uint32_t parent) {
    if (!free_nodes.empty()) {
      const std::uint32_t idx = free_nodes.back();
      free_nodes.pop_back();
      build[idx].parent = parent;
      return idx;
    }
    const auto idx = static_cast<std::uint32_t>(build.size());
    build.emplace_back().parent = parent;
    return idx;
  }

  void insert(const Rule& rule) {
    std::uint32_t node = 0;
    const auto& labels = rule.labels();
    for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
      const auto found = build[node].children.find(*it);
      if (found != build[node].children.end()) {
        node = found->second;
      } else {
        const std::uint32_t idx = alloc_node(node);
        build[node].children.emplace(*it, idx);
        node = idx;
      }
    }
    const std::uint8_t bit = flag_bit(rule.kind());
    build[node].flags |= bit;
    if (rule.section() == Section::kPrivate) {
      build[node].sections |= bit;
    } else {
      build[node].sections &= static_cast<std::uint8_t>(~bit);
    }
  }

  void remove(const Rule& rule) {
    // Descend, remembering the path so the prune can walk back up.
    std::uint32_t node = 0;
    const auto& labels = rule.labels();
    struct Hop {
      std::uint32_t parent;
      std::string_view label;
      std::uint32_t child;
    };
    std::vector<Hop> path;
    path.reserve(labels.size());
    for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
      const auto found = build[node].children.find(*it);
      if (found == build[node].children.end()) return;  // precondition violated; no-op
      path.push_back({node, *it, found->second});
      node = found->second;
    }
    const std::uint8_t bit = flag_bit(rule.kind());
    build[node].flags &= static_cast<std::uint8_t>(~bit);
    build[node].sections &= static_cast<std::uint8_t>(~bit);

    // Prune: a node left flagless and childless would not exist in a
    // from-scratch Pass 1 over the new rule set — drop it from its parent
    // and keep walking up while that keeps being true.
    for (std::size_t i = path.size(); i-- > 0;) {
      const Hop& hop = path[i];
      if (build[hop.child].flags != 0 || !build[hop.child].children.empty()) break;
      const auto it = build[hop.parent].children.find(hop.label);
      build[hop.parent].children.erase(it);
      build[hop.child] = BuildNode{};
      free_nodes.push_back(hop.child);
    }
  }

  /// Re-sync the segment for `tld` with the build trie: (re)create it
  /// dirty if the TLD node exists, drop it if the prune removed the TLD.
  void touch(std::string_view tld) {
    const auto found = build[0].children.find(tld);
    if (found == build[0].children.end()) {
      const auto seg = segments.find(tld);
      if (seg != segments.end()) segments.erase(seg);
      return;
    }
    auto [it, inserted] = segments.try_emplace(std::string(tld));
    it->second.build_root = found->second;
    it->second.dirty = true;
  }

  /// Flatten one TLD subtree into its local chunk — the same (hash, label)
  /// child ordering as CompiledMatcher's Pass 2, with node indices assigned
  /// in BFS order and labels interned into the segment-local pool.
  void flatten(Segment& seg) {
    seg.nodes.clear();
    seg.hashes.clear();
    seg.children.clear();
    seg.pool.clear();

    // Keys view into the build trie's map keys, stable for this pass.
    std::unordered_map<std::string_view, std::uint32_t> pool_offsets;
    const auto intern = [&](std::string_view label) {
      const auto found = pool_offsets.find(label);
      if (found != pool_offsets.end()) return found->second;
      const auto offset = static_cast<std::uint32_t>(seg.pool.size());
      seg.pool.append(label);
      pool_offsets.emplace(label, offset);
      return offset;
    };

    struct PendingChild {
      std::uint32_t hash;
      std::string_view label;
      std::uint32_t local_node;
    };
    std::vector<PendingChild> pending;

    std::vector<std::uint32_t> order{seg.build_root};  // build index; position = local index
    for (std::size_t qi = 0; qi < order.size(); ++qi) {
      const BuildNode& b = build[order[qi]];
      pending.clear();
      for (const auto& [label, child] : b.children) {
        pending.push_back(
            {detail::fnv1a_reverse(label), label, static_cast<std::uint32_t>(order.size())});
        order.push_back(child);
      }
      std::sort(pending.begin(), pending.end(), [](const PendingChild& a, const PendingChild& b2) {
        if (a.hash != b2.hash) return a.hash < b2.hash;
        return a.label < b2.label;
      });

      Node node;
      node.children_begin = static_cast<std::uint32_t>(seg.children.size());
      for (const PendingChild& p : pending) {
        seg.hashes.push_back(p.hash);
        seg.children.push_back(
            {intern(p.label), static_cast<std::uint32_t>(p.label.size()), p.local_node});
      }
      node.children_end = static_cast<std::uint32_t>(seg.children.size());
      node.flags = b.flags;
      node.sections = b.sections;
      seg.nodes.push_back(node);
    }
  }
};

DeltaCompiler::DeltaCompiler(const List& initial) : impl_(std::make_unique<Impl>()) {
  for (const Rule& rule : initial.rules()) impl_->insert(rule);
  for (const auto& [label, node] : impl_->build[0].children) {
    Impl::Segment& seg = impl_->segments[label];
    seg.build_root = node;
    seg.dirty = true;
  }
  impl_->stats.segments = impl_->segments.size();
  impl_->stats.build_nodes = impl_->build.size() - impl_->free_nodes.size();
}

DeltaCompiler::~DeltaCompiler() = default;
DeltaCompiler::DeltaCompiler(DeltaCompiler&&) noexcept = default;
DeltaCompiler& DeltaCompiler::operator=(DeltaCompiler&&) noexcept = default;

void DeltaCompiler::apply(std::span<const Rule> added, std::span<const Rule> removed) {
  for (const Rule& rule : removed) impl_->remove(rule);
  for (const Rule& rule : added) impl_->insert(rule);
  // Re-sync touched TLD segments only after every mutation has landed —
  // a TLD node pruned by a removal and re-created by an addition keeps a
  // consistent build_root this way.
  for (const Rule& rule : removed) impl_->touch(rule.labels().back());
  for (const Rule& rule : added) impl_->touch(rule.labels().back());
  impl_->stats.segments = impl_->segments.size();
  impl_->stats.build_nodes = impl_->build.size() - impl_->free_nodes.size();
}

void DeltaCompiler::apply_diff(const List& current, const List& newer) {
  const auto [added, removed] = current.diff(newer);
  apply(added, removed);
}

CompiledMatcher DeltaCompiler::compile() {
  Impl& impl = *impl_;
  std::size_t dirty = 0;
  for (auto& [label, seg] : impl.segments) {
    if (!seg.dirty) continue;
    impl.flatten(seg);
    seg.dirty = false;
    ++dirty;
  }
  impl.stats.dirty_segments = dirty;

  const auto segment_count = static_cast<std::uint32_t>(impl.segments.size());
  std::size_t node_total = 1;
  std::size_t child_total = segment_count;
  std::size_t pool_total = 0;
  for (const auto& [label, seg] : impl.segments) {
    node_total += seg.nodes.size();
    child_total += seg.children.size();
    pool_total += label.size() + seg.pool.size();
  }

  std::vector<Node> nodes;
  std::vector<std::uint32_t> hashes;
  std::vector<Child> children;
  std::vector<char> pool;
  nodes.reserve(node_total);
  hashes.reserve(child_total);
  children.reserve(child_total);
  pool.reserve(pool_total);

  Node root;
  root.children_begin = 0;
  root.children_end = segment_count;
  nodes.push_back(root);

  // The root's child range must honor the arena-wide (hash, label) order.
  struct RootChild {
    std::uint32_t hash;
    std::string_view label;
    const Impl::Segment* seg;
    std::uint32_t node_base = 0;
    std::uint32_t child_base = 0;
  };
  std::vector<RootChild> roots;
  roots.reserve(segment_count);
  for (const auto& [label, seg] : impl.segments) {
    roots.push_back({detail::fnv1a_reverse(label), label, &seg});
  }
  std::sort(roots.begin(), roots.end(), [](const RootChild& a, const RootChild& b) {
    if (a.hash != b.hash) return a.hash < b.hash;
    return a.label < b.label;
  });

  std::uint32_t node_base = 1;
  std::uint32_t child_base = segment_count;
  for (RootChild& rc : roots) {
    rc.node_base = node_base;
    rc.child_base = child_base;
    node_base += static_cast<std::uint32_t>(rc.seg->nodes.size());
    child_base += static_cast<std::uint32_t>(rc.seg->children.size());

    const auto label_offset = static_cast<std::uint32_t>(pool.size());
    pool.insert(pool.end(), rc.label.begin(), rc.label.end());
    hashes.push_back(rc.hash);
    children.push_back(
        {label_offset, static_cast<std::uint32_t>(rc.label.size()), rc.node_base});
  }

  // Splice every segment chunk: a straight copy with three integer fixups
  // per record. No hashing, no per-node allocation, no sorting.
  for (const RootChild& rc : roots) {
    const auto pool_base = static_cast<std::uint32_t>(pool.size());
    pool.insert(pool.end(), rc.seg->pool.begin(), rc.seg->pool.end());
    for (const Node& n : rc.seg->nodes) {
      nodes.push_back({n.children_begin + rc.child_base, n.children_end + rc.child_base, n.flags,
                       n.sections, 0});
    }
    hashes.insert(hashes.end(), rc.seg->hashes.begin(), rc.seg->hashes.end());
    for (const Child& c : rc.seg->children) {
      children.push_back({c.label_offset + pool_base, c.label_len, c.node + rc.node_base});
    }
  }

  impl.stats.arena_nodes = nodes.size();
  return ArenaAccess::adopt(std::move(nodes), std::move(hashes), std::move(children),
                            std::move(pool));
}

const DeltaStats& DeltaCompiler::stats() const noexcept { return impl_->stats; }

bool DeltaCompiler::equivalent(const CompiledMatcher& a, const CompiledMatcher& b) {
  const auto a_nodes = ArenaAccess::nodes(a);
  const auto b_nodes = ArenaAccess::nodes(b);
  if (a_nodes.empty() || b_nodes.empty()) return a_nodes.empty() == b_nodes.empty();
  const auto a_hashes = ArenaAccess::hashes(a);
  const auto b_hashes = ArenaAccess::hashes(b);
  const auto a_children = ArenaAccess::children(a);
  const auto b_children = ArenaAccess::children(b);
  const std::string_view a_pool = ArenaAccess::pool(a);
  const std::string_view b_pool = ArenaAccess::pool(b);

  // Both arenas sort every child range by (hash, label-content), so the
  // reachable tries compare index-aligned: pair the roots and walk.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [ai, bi] = stack.back();
    stack.pop_back();
    const Node& an = a_nodes[ai];
    const Node& bn = b_nodes[bi];
    if (an.flags != bn.flags || an.sections != bn.sections) return false;
    const std::uint32_t count = an.children_end - an.children_begin;
    if (count != bn.children_end - bn.children_begin) return false;
    for (std::uint32_t k = 0; k < count; ++k) {
      const std::uint32_t ak = an.children_begin + k;
      const std::uint32_t bk = bn.children_begin + k;
      if (a_hashes[ak] != b_hashes[bk]) return false;
      const Child& ac = a_children[ak];
      const Child& bc = b_children[bk];
      if (std::string_view(a_pool.data() + ac.label_offset, ac.label_len) !=
          std::string_view(b_pool.data() + bc.label_offset, bc.label_len)) {
        return false;
      }
      stack.emplace_back(ac.node, bc.node);
    }
  }
  return true;
}

}  // namespace psl::updater
