#include "psl/updater/update_policy.hpp"

#include <algorithm>
#include <cassert>

#include "psl/util/stats.hpp"

namespace psl::updater {

std::string_view to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::kFixed: return "fixed";
    case Strategy::kBuild: return "updated-build";
    case Strategy::kUser: return "updated-user";
    case Strategy::kServer: return "updated-server";
  }
  return "unknown";
}

namespace {

/// Interval between update opportunities for a policy, or 0 for never.
int opportunity_interval(const UpdatePolicy& policy) {
  switch (policy.strategy) {
    case Strategy::kFixed: return 0;
    case Strategy::kBuild: return policy.build_interval_days;
    case Strategy::kUser:
    case Strategy::kServer: return policy.restart_interval_days;
  }
  return 0;
}

}  // namespace

SimulationResult simulate(const UpdatePolicy& policy, const SimulationSpec& spec) {
  assert(spec.end >= spec.start);
  assert(spec.start >= spec.embed_date);

  const int interval = opportunity_interval(policy);
  assert(policy.strategy == Strategy::kFixed || interval > 0);

  util::Rng rng(spec.seed);
  const int window_days = spec.end - spec.start;

  SimulationResult result;
  result.final_ages.reserve(spec.trials);

  double age_sum = 0.0;
  std::size_t age_samples = 0;
  std::size_t stuck = 0;

  for (std::size_t trial = 0; trial < spec.trials; ++trial) {
    // The list the deployment currently applies. An update opportunity
    // (build or restart) refreshes it to "today" unless the fetch fails.
    util::Date list_date = spec.embed_date;
    bool ever_succeeded = false;

    // Desynchronise deployments: the first opportunity lands uniformly
    // within one interval of the start.
    int next_opportunity =
        interval > 0 ? static_cast<int>(rng.below(static_cast<std::uint64_t>(interval))) : -1;

    for (int day = 0; day <= window_days; ++day) {
      const util::Date today = spec.start + day;
      if (interval > 0 && day == next_opportunity) {
        if (!rng.chance(policy.fetch_failure_rate)) {
          list_date = today;
          ever_succeeded = true;
        }
        next_opportunity += interval;
      }
      age_sum += today - list_date;
      ++age_samples;
    }

    result.final_ages.push_back(static_cast<double>(spec.end - list_date));
    if (!ever_succeeded && policy.strategy != Strategy::kFixed) ++stuck;
    if (policy.strategy == Strategy::kFixed) ++stuck;  // by definition
  }

  result.mean_age_over_window =
      age_samples == 0 ? 0.0 : age_sum / static_cast<double>(age_samples);
  result.median_final_age = util::median(result.final_ages);
  result.p90_final_age = util::percentile(result.final_ages, 90.0);
  result.stuck_on_fallback =
      static_cast<double>(stuck) / static_cast<double>(std::max<std::size_t>(spec.trials, 1));
  return result;
}

}  // namespace psl::updater
