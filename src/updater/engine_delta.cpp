// serve::Engine's delta-reload methods. They live in psl_updater (not
// psl_serve) so the serve library does not depend on the updater layer —
// the same split as the store methods in src/store/engine_store.cpp. The
// engine holds the delta state behind a forward-declared shared_ptr, and
// only binaries that reload incrementally (bench_update, the tests) link
// these definitions in.

#include <optional>

#include "psl/serve/engine.hpp"
#include "psl/updater/delta_compiler.hpp"

namespace psl::serve {

struct Engine::DeltaState {
  updater::DeltaCompiler compiler;
  List list;  ///< the list the compiler's trie currently represents

  DeltaState(updater::DeltaCompiler c, List l) : compiler(std::move(c)), list(std::move(l)) {}
};

std::uint64_t Engine::load_list(List list, snapshot::Metadata meta) {
  if (meta.rule_count == 0) meta.rule_count = list.rules().size();
  updater::DeltaCompiler compiler(list);
  CompiledMatcher matcher = compiler.compile();
  {
    std::lock_guard<std::mutex> lock(delta_mutex_);
    delta_ = std::make_shared<DeltaState>(std::move(compiler), std::move(list));
  }
  return swap(snapshot::Snapshot{std::move(matcher), meta});
}

util::Result<std::uint64_t> Engine::reload_delta(List newer, snapshot::Metadata meta) {
  if (meta.rule_count == 0) meta.rule_count = newer.rules().size();
  std::optional<snapshot::Snapshot> next;
  {
    std::lock_guard<std::mutex> lock(delta_mutex_);
    if (!delta_) {
      if (reload_failure_) reload_failure_->add();
      return util::make_error("serve.no-delta-state",
                              "reload_delta requires a prior load_list seed");
    }
    delta_->compiler.apply_diff(delta_->list, newer);
    next.emplace(snapshot::Snapshot{delta_->compiler.compile(), meta});
    delta_->list = std::move(newer);
  }
  return swap(std::move(*next));
}

}  // namespace psl::serve
