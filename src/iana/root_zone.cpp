#include "psl/iana/root_zone.hpp"

#include <algorithm>
#include <array>

#include "psl/util/strings.hpp"

namespace psl::iana {

std::string_view to_string(TldCategory category) noexcept {
  switch (category) {
    case TldCategory::kGeneric: return "generic";
    case TldCategory::kCountryCode: return "country-code";
    case TldCategory::kSponsored: return "sponsored";
    case TldCategory::kInfrastructure: return "infrastructure";
    case TldCategory::kTest: return "test";
  }
  return "unknown";
}

namespace {

// The complete sponsored-TLD set per the IANA root zone database.
constexpr std::array<std::string_view, 14> kSponsored = {
    "aero", "asia", "cat",  "coop",   "edu",  "gov",  "int",
    "jobs", "mil",  "museum", "post", "tel",  "travel", "xxx",
};

// Reserved test/documentation TLDs (RFC 2606 / RFC 6761).
constexpr std::array<std::string_view, 4> kTest = {
    "test", "example", "invalid", "localhost",
};

template <std::size_t N>
bool contains(const std::array<std::string_view, N>& set, std::string_view s) noexcept {
  return std::find(set.begin(), set.end(), s) != set.end();
}

bool is_two_letter_alpha(std::string_view s) noexcept {
  return s.size() == 2 &&
         std::all_of(s.begin(), s.end(), [](char c) { return c >= 'a' && c <= 'z'; });
}

// Internationalised ccTLDs appear in the root zone as A-labels; the IDN
// ccTLD fast-track entries all carry country status. We recognise the
// common ones used by PSL entries.
constexpr std::array<std::string_view, 8> kIdnCountryCode = {
    "xn--fiqs8s",  // 中国 (China)
    "xn--fiqz9s",  // 中國
    "xn--j6w193g", // 香港 (Hong Kong)
    "xn--kprw13d", // 台湾 (Taiwan)
    "xn--kpry57d", // 台灣
    "xn--p1ai",    // рф (Russia)
    "xn--wgbh1c",  // مصر (Egypt)
    "xn--mgbaam7a8h",  // امارات (UAE)
};

}  // namespace

const RootZone& RootZone::builtin() noexcept {
  static const RootZone instance;
  return instance;
}

TldCategory RootZone::categorize_tld(std::string_view tld) const noexcept {
  if (!tld.empty() && tld.front() == '.') tld.remove_prefix(1);

  if (tld == "arpa") return TldCategory::kInfrastructure;
  if (contains(kTest, tld)) return TldCategory::kTest;
  if (contains(kSponsored, tld)) return TldCategory::kSponsored;
  if (is_two_letter_alpha(tld)) return TldCategory::kCountryCode;
  if (contains(kIdnCountryCode, tld)) return TldCategory::kCountryCode;
  return TldCategory::kGeneric;
}

TldCategory RootZone::categorize_suffix(std::string_view suffix) const noexcept {
  const std::size_t last_dot = suffix.rfind('.');
  const std::string_view tld =
      last_dot == std::string_view::npos ? suffix : suffix.substr(last_dot + 1);
  return categorize_tld(tld);
}

}  // namespace psl::iana
