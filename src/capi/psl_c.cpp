#include "psl/capi/psl_c.h"

#include <cstring>
#include <new>
#include <string>

#include "psl/history/timeline.hpp"
#include "psl/psl/list.hpp"

struct pslh_ctx {
  psl::List list;
};

namespace {

const char* dup_string(const std::string& s) {
  char* out = new (std::nothrow) char[s.size() + 1];
  if (out == nullptr) return nullptr;
  std::memcpy(out, s.c_str(), s.size() + 1);
  return out;
}

}  // namespace

extern "C" {

const pslh_ctx_t* pslh_builtin(void) {
  static const pslh_ctx ctx = [] {
    const auto history = psl::history::generate_history(psl::history::TimelineSpec{});
    return pslh_ctx{history.snapshot(history.version_count() - 1)};
  }();
  return &ctx;
}

pslh_ctx_t* pslh_load_from_data(const char* data, size_t length) {
  if (data == nullptr) return nullptr;
  auto parsed = psl::List::parse(std::string_view(data, length));
  if (!parsed) return nullptr;
  return new (std::nothrow) pslh_ctx{*std::move(parsed)};
}

void pslh_free(pslh_ctx_t* ctx) { delete ctx; }

int pslh_is_public_suffix(const pslh_ctx_t* ctx, const char* domain) {
  if (ctx == nullptr || domain == nullptr) return 0;
  return ctx->list.is_public_suffix(domain) ? 1 : 0;
}

const char* pslh_unregistrable_domain(const pslh_ctx_t* ctx, const char* domain) {
  if (ctx == nullptr || domain == nullptr || domain[0] == '\0') return nullptr;
  return dup_string(ctx->list.public_suffix(domain));
}

const char* pslh_registrable_domain(const pslh_ctx_t* ctx, const char* domain) {
  if (ctx == nullptr || domain == nullptr) return nullptr;
  const auto rd = ctx->list.registrable_domain(domain);
  if (!rd) return nullptr;
  return dup_string(*rd);
}

int pslh_same_site(const pslh_ctx_t* ctx, const char* a, const char* b) {
  if (ctx == nullptr || a == nullptr || b == nullptr) return 0;
  return ctx->list.same_site(a, b) ? 1 : 0;
}

size_t pslh_rule_count(const pslh_ctx_t* ctx) {
  return ctx == nullptr ? 0 : ctx->list.rule_count();
}

void pslh_free_string(const char* s) { delete[] s; }

}  // extern "C"
