#include "psl/capi/psl_c.h"

#include <atomic>
#include <cstdint>
#include <cstring>
#include <new>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "psl/history/timeline.hpp"
#include "psl/net/client.hpp"
#include "psl/util/date.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/engine.hpp"
#include "psl/serve/snapshot.hpp"

struct pslh_ctx {
  psl::List list;
  /// Arena-compiled mirror of `list`: batch entry points walk its
  /// interleaved match_batch instead of one trie walk per call.
  psl::CompiledMatcher matcher;

  explicit pslh_ctx(psl::List l) : list(std::move(l)), matcher(list) {}
};

struct pslh_engine {
  psl::serve::Engine engine;

  // Engine is pinned (workers hold `this`), so it is built in place here.
  pslh_engine(psl::snapshot::Snapshot initial, psl::serve::EngineOptions options)
      : engine(std::move(initial), options) {}
};

struct pslh_client {
  psl::net::Client client;
  pslh_push_callback_t push_callback = nullptr;
  void* push_user_data = nullptr;
};

namespace {

/// Countdown armed by pslh_test_fail_next_allocs: while positive, each
/// dup_string decrements it and reports allocation failure.
std::atomic<int> g_fail_allocs{0};

bool test_alloc_should_fail() {
  int current = g_fail_allocs.load(std::memory_order_relaxed);
  while (current > 0) {
    if (g_fail_allocs.compare_exchange_weak(current, current - 1,
                                            std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

const char* dup_string(const std::string& s) {
  if (test_alloc_should_fail()) return nullptr;
  char* out = new (std::nothrow) char[s.size() + 1];
  if (out == nullptr) return nullptr;
  std::memcpy(out, s.c_str(), s.size() + 1);
  return out;
}

}  // namespace

extern "C" {

const pslh_ctx_t* pslh_builtin(void) {
  static const pslh_ctx ctx = [] {
    const auto history = psl::history::generate_history(psl::history::TimelineSpec{});
    return pslh_ctx{history.snapshot(history.version_count() - 1)};
  }();
  return &ctx;
}

pslh_ctx_t* pslh_load_from_data(const char* data, size_t length) {
  if (data == nullptr) return nullptr;
  auto parsed = psl::List::parse(std::string_view(data, length));
  if (!parsed) return nullptr;
  return new (std::nothrow) pslh_ctx{*std::move(parsed)};
}

void pslh_free(pslh_ctx_t* ctx) { delete ctx; }

int pslh_is_public_suffix(const pslh_ctx_t* ctx, const char* domain) {
  if (ctx == nullptr || domain == nullptr) return 0;
  return ctx->list.is_public_suffix(domain) ? 1 : 0;
}

const char* pslh_unregistrable_domain(const pslh_ctx_t* ctx, const char* domain) {
  if (ctx == nullptr || domain == nullptr || domain[0] == '\0') return nullptr;
  return dup_string(ctx->list.public_suffix(domain));
}

const char* pslh_registrable_domain(const pslh_ctx_t* ctx, const char* domain) {
  if (ctx == nullptr || domain == nullptr) return nullptr;
  const auto rd = ctx->list.registrable_domain(domain);
  if (!rd) return nullptr;
  return dup_string(*rd);
}

int pslh_same_site(const pslh_ctx_t* ctx, const char* a, const char* b) {
  if (ctx == nullptr || a == nullptr || b == nullptr) return 0;
  return ctx->list.same_site(a, b) ? 1 : 0;
}

pslh_status pslh_same_site_batch(const pslh_ctx_t* ctx, const char* const* a,
                                 const char* const* b, size_t count, int* out) {
  if (count == 0) return PSLH_OK;
  if (out == nullptr) return PSLH_ERROR;
  std::memset(out, 0, count * sizeof(int));
  if (ctx == nullptr || a == nullptr || b == nullptr) return PSLH_ERROR;
  for (size_t i = 0; i < count; ++i) {
    if (a[i] == nullptr || b[i] == nullptr) return PSLH_ERROR;
  }
  // Each side of the pair list rides one interleaved batch walk; the packed
  // keys re-attach to the caller's strings, so the predicate below is the
  // psl::same_site contract evaluated without per-pair trie walks.
  std::vector<std::string_view> lhs(count), rhs(count);
  for (size_t i = 0; i < count; ++i) {
    lhs[i] = a[i];
    rhs[i] = b[i];
  }
  std::vector<psl::RegDomainKey> ka(count), kb(count);
  ctx->matcher.reg_domain_batch(lhs, ka);
  ctx->matcher.reg_domain_batch(rhs, kb);
  for (size_t i = 0; i < count; ++i) {
    const std::string_view ra = ka[i].in(lhs[i]);
    const std::string_view rb = kb[i].in(rhs[i]);
    bool same;
    if (ra.empty() || rb.empty()) {
      std::string_view sa = lhs[i];
      std::string_view sb = rhs[i];
      if (!sa.empty() && sa.back() == '.') sa.remove_suffix(1);
      if (!sb.empty() && sb.back() == '.') sb.remove_suffix(1);
      same = ra.empty() && rb.empty() && sa == sb;
    } else {
      same = ra == rb;
    }
    out[i] = same ? 1 : 0;
  }
  return PSLH_OK;
}

size_t pslh_rule_count(const pslh_ctx_t* ctx) {
  return ctx == nullptr ? 0 : ctx->list.rule_count();
}

void pslh_string_free(const char* s) { delete[] s; }

void pslh_free_string(const char* s) { pslh_string_free(s); }

void pslh_test_fail_next_allocs(int count) {
  g_fail_allocs.store(count > 0 ? count : 0, std::memory_order_relaxed);
}

/* --- serving engine ------------------------------------------------------ */

pslh_engine_t* pslh_engine_new(const pslh_ctx_t* ctx, size_t threads, size_t max_queue_depth) {
  if (ctx == nullptr) return nullptr;
  try {
    psl::serve::EngineOptions options;
    options.threads = threads == 0 ? 1 : threads;
    options.max_queue_depth = max_queue_depth == 0 ? 64 : max_queue_depth;
    psl::snapshot::Metadata meta;
    meta.rule_count = ctx->list.rule_count();
    psl::snapshot::Snapshot initial{psl::CompiledMatcher(ctx->list), meta};
    return new pslh_engine(std::move(initial), options);
  } catch (...) {
    return nullptr;
  }
}

void pslh_engine_free(pslh_engine_t* engine) { delete engine; }

unsigned long long pslh_engine_generation(const pslh_engine_t* engine) {
  return engine == nullptr ? 0 : engine->engine.generation();
}

pslh_status pslh_engine_reload_list(pslh_engine_t* engine, const char* data, size_t length) {
  if (engine == nullptr || data == nullptr) return PSLH_ERROR;
  try {
    auto parsed = psl::List::parse(std::string_view(data, length));
    if (!parsed) return PSLH_ERROR;
    engine->engine.reload_list(*parsed);
    return PSLH_OK;
  } catch (...) {
    return PSLH_ERROR;
  }
}

pslh_status pslh_engine_reload_snapshot(pslh_engine_t* engine, const unsigned char* bytes,
                                        size_t length) {
  if (engine == nullptr || bytes == nullptr) return PSLH_ERROR;
  try {
    return engine->engine.reload_snapshot({bytes, length}).ok() ? PSLH_OK : PSLH_ERROR;
  } catch (...) {
    return PSLH_ERROR;
  }
}

pslh_status pslh_engine_registrable_domains(pslh_engine_t* engine, const char* const* hosts,
                                            size_t count, const char** out) {
  if (count == 0) return PSLH_OK;
  if (out == nullptr) return PSLH_ERROR;
  for (size_t i = 0; i < count; ++i) out[i] = nullptr;
  if (engine == nullptr || hosts == nullptr) return PSLH_ERROR;
  try {
    std::vector<std::string> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (hosts[i] == nullptr) return PSLH_ERROR;
      batch.emplace_back(hosts[i]);
    }
    auto submitted = engine->engine.submit_registrable_domains(std::move(batch));
    if (!submitted) {
      return submitted.error().code == "serve.backpressure" ? PSLH_BACKPRESSURE : PSLH_ERROR;
    }
    const std::vector<std::string> answers = submitted->get();
    for (size_t i = 0; i < count; ++i) {
      if (answers[i].empty()) continue;  // no eTLD+1: out[i] stays NULL
      out[i] = dup_string(answers[i]);
      if (out[i] == nullptr) {
        for (size_t j = 0; j < i; ++j) {
          pslh_string_free(out[j]);
          out[j] = nullptr;
        }
        return PSLH_ERROR;
      }
    }
    return PSLH_OK;
  } catch (...) {
    for (size_t i = 0; i < count; ++i) {
      pslh_string_free(out[i]);
      out[i] = nullptr;
    }
    return PSLH_ERROR;
  }
}

pslh_status pslh_engine_same_site(pslh_engine_t* engine, const char* const* a,
                                  const char* const* b, size_t count, int* out) {
  if (count == 0) return PSLH_OK;
  if (out == nullptr) return PSLH_ERROR;
  std::memset(out, 0, count * sizeof(int));
  if (engine == nullptr || a == nullptr || b == nullptr) return PSLH_ERROR;
  try {
    std::vector<std::pair<std::string, std::string>> pairs;
    pairs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (a[i] == nullptr || b[i] == nullptr) return PSLH_ERROR;
      pairs.emplace_back(a[i], b[i]);
    }
    auto submitted = engine->engine.submit_same_site(std::move(pairs));
    if (!submitted) {
      return submitted.error().code == "serve.backpressure" ? PSLH_BACKPRESSURE : PSLH_ERROR;
    }
    const std::vector<std::uint8_t> answers = submitted->get();
    for (size_t i = 0; i < count; ++i) out[i] = answers[i] ? 1 : 0;
    return PSLH_OK;
  } catch (...) {
    return PSLH_ERROR;
  }
}

/* --- network client (psl::net::Client) ----------------------------------- */

pslh_client_t* pslh_client_connect(const char* address, unsigned short port, int timeout_ms) {
  if (address == nullptr) return nullptr;
  try {
    psl::net::ClientOptions options;
    options.connect_timeout_ms = timeout_ms > 0 ? timeout_ms : 10000;
    options.io_timeout_ms = timeout_ms > 0 ? timeout_ms : 10000;
    auto connected = psl::net::Client::connect(address, port, options);
    if (!connected) return nullptr;
    return new (std::nothrow) pslh_client{*std::move(connected)};
  } catch (...) {
    return nullptr;
  }
}

pslh_client_t* pslh_client_connect_udp(const char* address, unsigned short port,
                                       int timeout_ms) {
  if (address == nullptr) return nullptr;
  try {
    psl::net::ClientOptions options;
    options.connect_timeout_ms = timeout_ms > 0 ? timeout_ms : 10000;
    options.io_timeout_ms = timeout_ms > 0 ? timeout_ms : 10000;
    auto connected = psl::net::Client::connect_udp(address, port, options);
    if (!connected) return nullptr;
    return new (std::nothrow) pslh_client{*std::move(connected)};
  } catch (...) {
    return nullptr;
  }
}

void pslh_client_free(pslh_client_t* client) { delete client; }

int pslh_client_connected(const pslh_client_t* client) {
  return client != nullptr && client->client.connected() ? 1 : 0;
}

pslh_status pslh_client_ping(pslh_client_t* client) {
  if (client == nullptr) return PSLH_ERROR;
  try {
    return client->client.ping().ok() ? PSLH_OK : PSLH_ERROR;
  } catch (...) {
    return PSLH_ERROR;
  }
}

pslh_status pslh_client_registrable_domains(pslh_client_t* client, const char* const* hosts,
                                            size_t count, const char** out) {
  if (count == 0) return PSLH_OK;
  if (out == nullptr) return PSLH_ERROR;
  for (size_t i = 0; i < count; ++i) out[i] = nullptr;
  if (client == nullptr || hosts == nullptr) return PSLH_ERROR;
  try {
    std::vector<std::string> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (hosts[i] == nullptr) return PSLH_ERROR;
      batch.emplace_back(hosts[i]);
    }
    auto answers = client->client.registrable_domains(batch);
    if (!answers) {
      return answers.error().code == "net.backpressure" ? PSLH_BACKPRESSURE : PSLH_ERROR;
    }
    for (size_t i = 0; i < count; ++i) {
      if ((*answers)[i].empty()) continue;  /* no eTLD+1: out[i] stays NULL */
      out[i] = dup_string((*answers)[i]);
      if (out[i] == nullptr) {
        for (size_t j = 0; j < i; ++j) {
          pslh_string_free(out[j]);
          out[j] = nullptr;
        }
        return PSLH_ERROR;
      }
    }
    return PSLH_OK;
  } catch (...) {
    for (size_t i = 0; i < count; ++i) {
      pslh_string_free(out[i]);
      out[i] = nullptr;
    }
    return PSLH_ERROR;
  }
}

pslh_status pslh_client_same_site(pslh_client_t* client, const char* const* a,
                                  const char* const* b, size_t count, int* out) {
  if (count == 0) return PSLH_OK;
  if (out == nullptr) return PSLH_ERROR;
  std::memset(out, 0, count * sizeof(int));
  if (client == nullptr || a == nullptr || b == nullptr) return PSLH_ERROR;
  try {
    std::vector<std::pair<std::string, std::string>> pairs;
    pairs.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (a[i] == nullptr || b[i] == nullptr) return PSLH_ERROR;
      pairs.emplace_back(a[i], b[i]);
    }
    auto answers = client->client.same_site_batch(pairs);
    if (!answers) {
      return answers.error().code == "net.backpressure" ? PSLH_BACKPRESSURE : PSLH_ERROR;
    }
    for (size_t i = 0; i < count; ++i) out[i] = (*answers)[i] ? 1 : 0;
    return PSLH_OK;
  } catch (...) {
    return PSLH_ERROR;
  }
}

pslh_status pslh_client_reload_snapshot(pslh_client_t* client, const unsigned char* bytes,
                                        size_t length) {
  if (client == nullptr || (bytes == nullptr && length > 0)) return PSLH_ERROR;
  try {
    return client->client.reload({bytes, length}).ok() ? PSLH_OK : PSLH_ERROR;
  } catch (...) {
    return PSLH_ERROR;
  }
}

unsigned long long pslh_client_generation(pslh_client_t* client) {
  if (client == nullptr) return 0;
  try {
    auto stats = client->client.stats();
    return stats.ok() ? stats->generation : 0;
  } catch (...) {
    return 0;
  }
}

pslh_status pslh_client_match_at(pslh_client_t* client, long long date_days,
                                 const char* const* hosts, size_t count, const char** out,
                                 long long* version_date_days_out) {
  if (version_date_days_out != nullptr) *version_date_days_out = 0;
  if (count == 0) return PSLH_OK;
  if (out == nullptr) return PSLH_ERROR;
  for (size_t i = 0; i < count; ++i) out[i] = nullptr;
  if (client == nullptr || hosts == nullptr) return PSLH_ERROR;
  if (date_days < INT32_MIN || date_days > INT32_MAX) return PSLH_ERROR;
  try {
    std::vector<std::string> batch;
    batch.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (hosts[i] == nullptr) return PSLH_ERROR;
      batch.emplace_back(hosts[i]);
    }
    auto answer =
        client->client.match_at(psl::util::Date{static_cast<std::int32_t>(date_days)}, batch);
    if (!answer) {
      return answer.error().code == "net.backpressure" ? PSLH_BACKPRESSURE : PSLH_ERROR;
    }
    for (size_t i = 0; i < count; ++i) {
      const auto& rd = answer->matches[i].registrable_domain;
      if (rd.empty()) continue; /* no eTLD+1 under that version: out[i] stays NULL */
      out[i] = dup_string(rd);
      if (out[i] == nullptr) {
        for (size_t j = 0; j < i; ++j) {
          pslh_string_free(out[j]);
          out[j] = nullptr;
        }
        return PSLH_ERROR;
      }
    }
    if (version_date_days_out != nullptr) {
      *version_date_days_out = answer->version_date_days;
    }
    return PSLH_OK;
  } catch (...) {
    for (size_t i = 0; i < count; ++i) {
      pslh_string_free(out[i]);
      out[i] = nullptr;
    }
    return PSLH_ERROR;
  }
}

pslh_status pslh_client_divergence(pslh_client_t* client, const char* host,
                                   long long* first_days, long long* last_days,
                                   const char** domains, size_t max_ranges,
                                   size_t* total_out) {
  if (total_out != nullptr) *total_out = 0;
  for (size_t i = 0; i < max_ranges; ++i) {
    if (first_days != nullptr) first_days[i] = 0;
    if (last_days != nullptr) last_days[i] = 0;
    if (domains != nullptr) domains[i] = nullptr;
  }
  if (client == nullptr || host == nullptr || total_out == nullptr) return PSLH_ERROR;
  if (max_ranges > 0 &&
      (first_days == nullptr || last_days == nullptr || domains == nullptr)) {
    return PSLH_ERROR;
  }
  try {
    auto ranges = client->client.divergence(host);
    if (!ranges) {
      return ranges.error().code == "net.backpressure" ? PSLH_BACKPRESSURE : PSLH_ERROR;
    }
    const size_t fill = ranges->size() < max_ranges ? ranges->size() : max_ranges;
    for (size_t i = 0; i < fill; ++i) {
      const auto& r = (*ranges)[i];
      first_days[i] = r.first_date_days;
      last_days[i] = r.last_date_days;
      if (r.registrable_domain.empty()) continue; /* NULL = no eTLD+1 in range */
      domains[i] = dup_string(r.registrable_domain);
      if (domains[i] == nullptr) {
        for (size_t j = 0; j < i; ++j) {
          pslh_string_free(domains[j]);
          domains[j] = nullptr;
        }
        for (size_t j = 0; j <= i && j < max_ranges; ++j) {
          first_days[j] = 0;
          last_days[j] = 0;
        }
        return PSLH_ERROR;
      }
    }
    *total_out = ranges->size();
    return PSLH_OK;
  } catch (...) {
    for (size_t i = 0; i < max_ranges; ++i) {
      if (domains != nullptr) {
        pslh_string_free(domains[i]);
        domains[i] = nullptr;
      }
      if (first_days != nullptr) first_days[i] = 0;
      if (last_days != nullptr) last_days[i] = 0;
    }
    return PSLH_ERROR;
  }
}

/* --- streaming analytics --------------------------------------------------- */

pslh_status pslh_client_ingest_batch(pslh_client_t* client, const char* const* page_hosts,
                                     const char* const* resource_hosts,
                                     const long long* timestamps_ms, size_t count,
                                     unsigned long long* generation_out) {
  if (generation_out != nullptr) *generation_out = 0;
  if (count == 0) return PSLH_OK;
  if (client == nullptr || page_hosts == nullptr || resource_hosts == nullptr) return PSLH_ERROR;
  try {
    std::vector<psl::net::WireIngestRecord> records;
    records.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      if (page_hosts[i] == nullptr || resource_hosts[i] == nullptr) return PSLH_ERROR;
      records.push_back(psl::net::WireIngestRecord{
          page_hosts[i], resource_hosts[i],
          timestamps_ms == nullptr ? 0 : static_cast<std::uint64_t>(timestamps_ms[i])});
    }
    auto ack = client->client.ingest_batch(records);
    if (!ack) {
      return ack.error().code == "net.backpressure" ? PSLH_BACKPRESSURE : PSLH_ERROR;
    }
    if (generation_out != nullptr) *generation_out = ack->generation;
    return PSLH_OK;
  } catch (...) {
    return PSLH_ERROR;
  }
}

pslh_status pslh_client_census(pslh_client_t* client, unsigned int top_k, pslh_census_t* out) {
  if (out == nullptr) return PSLH_ERROR;
  std::memset(out, 0, sizeof(*out));
  if (client == nullptr) return PSLH_ERROR;
  try {
    auto census = client->client.census(static_cast<std::uint32_t>(top_k));
    if (!census) {
      return census.error().code == "net.backpressure" ? PSLH_BACKPRESSURE : PSLH_ERROR;
    }
    out->generation = census->generation;
    out->records = census->records;
    out->first_party = census->first_party;
    out->third_party = census->third_party;
    out->unique_hosts = census->unique_hosts;
    out->sites_formed = census->sites_formed;
    out->misbound_hosts = census->misbound_hosts;
    out->dropped = census->dropped;
    out->state_bytes = census->state_bytes;
    const size_t etlds = census->etlds.size();
    const size_t trackers = census->trackers.size();
    /* All arrays first (value-only, so a later dup_string failure unwinds
     * through pslh_census_free without partially-typed state). */
    if (etlds > 0) {
      out->etlds = new (std::nothrow) const char*[etlds]();
      out->etld_misbound = new (std::nothrow) unsigned long long[etlds]();
    }
    if (trackers > 0) {
      out->tracker_domains = new (std::nothrow) const char*[trackers]();
      out->tracker_requests = new (std::nothrow) unsigned long long[trackers]();
      out->tracker_requests_err = new (std::nothrow) unsigned long long[trackers]();
      out->tracker_reach = new (std::nothrow) unsigned long long[trackers]();
      out->tracker_reach_err = new (std::nothrow) unsigned long long[trackers]();
    }
    if ((etlds > 0 && (out->etlds == nullptr || out->etld_misbound == nullptr)) ||
        (trackers > 0 &&
         (out->tracker_domains == nullptr || out->tracker_requests == nullptr ||
          out->tracker_requests_err == nullptr || out->tracker_reach == nullptr ||
          out->tracker_reach_err == nullptr))) {
      pslh_census_free(out);
      return PSLH_ERROR;
    }
    out->etld_count = etlds;
    out->tracker_count = trackers;
    for (size_t i = 0; i < etlds; ++i) {
      out->etlds[i] = dup_string(census->etlds[i].etld);
      if (out->etlds[i] == nullptr) {
        pslh_census_free(out);
        return PSLH_ERROR;
      }
      out->etld_misbound[i] = census->etlds[i].misbound;
    }
    for (size_t i = 0; i < trackers; ++i) {
      const auto& row = census->trackers[i];
      out->tracker_domains[i] = dup_string(row.domain);
      if (out->tracker_domains[i] == nullptr) {
        pslh_census_free(out);
        return PSLH_ERROR;
      }
      out->tracker_requests[i] = row.requests;
      out->tracker_requests_err[i] = row.requests_err;
      out->tracker_reach[i] = row.reach;
      out->tracker_reach_err[i] = row.reach_err;
    }
    return PSLH_OK;
  } catch (...) {
    pslh_census_free(out);
    return PSLH_ERROR;
  }
}

void pslh_census_free(pslh_census_t* out) {
  if (out == nullptr) return;
  for (size_t i = 0; i < out->etld_count; ++i) pslh_string_free(out->etlds[i]);
  for (size_t i = 0; i < out->tracker_count; ++i) pslh_string_free(out->tracker_domains[i]);
  delete[] out->etlds;
  delete[] out->etld_misbound;
  delete[] out->tracker_domains;
  delete[] out->tracker_requests;
  delete[] out->tracker_requests_err;
  delete[] out->tracker_reach;
  delete[] out->tracker_reach_err;
  std::memset(out, 0, sizeof(*out));
}

/* --- the push channel ----------------------------------------------------- */

pslh_status pslh_client_subscribe(pslh_client_t* client, unsigned long long* generation_out) {
  if (generation_out != nullptr) *generation_out = 0;
  if (client == nullptr) return PSLH_ERROR;
  try {
    auto generation = client->client.subscribe();
    if (!generation) return PSLH_ERROR;
    if (generation_out != nullptr) *generation_out = *generation;
    return PSLH_OK;
  } catch (...) {
    return PSLH_ERROR;
  }
}

pslh_status pslh_client_set_push_callback(pslh_client_t* client, pslh_push_callback_t callback,
                                          void* user_data) {
  if (client == nullptr) return PSLH_ERROR;
  client->push_callback = callback;
  client->push_user_data = user_data;
  if (callback == nullptr) {
    client->client.set_push_callback(nullptr);
    return PSLH_OK;
  }
  /* The lambda reads the handle's fields at fire time, so re-registering a
   * different callback/user_data takes effect without another wire call. */
  client->client.set_push_callback([client](const psl::net::WireGenerationChanged& push) {
    if (client->push_callback != nullptr) {
      client->push_callback(push.generation, push.rule_count, push.rule_delta,
                            client->push_user_data);
    }
  });
  return PSLH_OK;
}

pslh_status pslh_client_poll_pushes(pslh_client_t* client, size_t* drained_out) {
  if (drained_out != nullptr) *drained_out = 0;
  if (client == nullptr) return PSLH_ERROR;
  try {
    auto drained = client->client.poll_pushes();
    if (!drained) return PSLH_ERROR;
    if (drained_out != nullptr) *drained_out = *drained;
    return PSLH_OK;
  } catch (...) {
    return PSLH_ERROR;
  }
}

unsigned long long pslh_client_last_pushed_generation(const pslh_client_t* client) {
  return client == nullptr ? 0 : client->client.last_pushed_generation();
}

pslh_status pslh_client_reconnect(pslh_client_t* client) {
  if (client == nullptr) return PSLH_ERROR;
  try {
    return client->client.reconnect().ok() ? PSLH_OK : PSLH_ERROR;
  } catch (...) {
    return PSLH_ERROR;
  }
}

}  // extern "C"
