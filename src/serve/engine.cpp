#include "psl/serve/engine.hpp"

#include "psl/obs/span.hpp"
#include "psl/psl/match.hpp"

namespace psl::serve {

Engine::Engine(snapshot::Snapshot initial, EngineOptions options)
    : max_queue_depth_(options.max_queue_depth) {
  if (options.metrics) {
    queries_ = &options.metrics->counter("serve.queries");
    batches_ = &options.metrics->counter("serve.batches");
    rejected_ = &options.metrics->counter("serve.rejected");
    reload_success_ = &options.metrics->counter("serve.reload.success");
    reload_failure_ = &options.metrics->counter("serve.reload.failure");
    queue_depth_gauge_ = &options.metrics->gauge("serve.queue_depth");
    batch_ms_ = &options.metrics->histogram("serve.batch_ms");
  }
  install(std::move(initial));

  const std::size_t threads = options.threads == 0 ? 1 : options.threads;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Engine::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // accepted future gets fulfilled.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_) queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    }
    job();
  }
}

Engine::Enqueue Engine::enqueue(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Enqueue::kStopped;
    if (queue_.size() >= max_queue_depth_) return Enqueue::kBackpressure;
    queue_.push_back(std::move(job));
    if (queue_depth_gauge_) queue_depth_gauge_->set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return Enqueue::kOk;
}

void Engine::count_queries(std::size_t n) const noexcept {
  if (queries_) queries_->add(static_cast<std::int64_t>(n));
}

Engine::Enqueue Engine::submit_job(std::function<void(const Pinned&)> job) {
  const Enqueue outcome = enqueue([this, job = std::move(job)] {
    const auto state = current();  // one State for the whole batch
    const obs::Timer timer(batch_ms_);
    if (batches_) batches_->add();
    job(Pinned{state->matcher, state->meta, state->generation});
  });
  if (outcome == Enqueue::kBackpressure && rejected_) rejected_->add();
  return outcome;
}

namespace {

/// Shared submit plumbing: wrap `work` in a packaged_task, hand it to
/// submit_job, and map the enqueue outcome onto the Result contract.
template <typename R, typename Work>
util::Result<std::future<R>> submit_typed(Engine& engine, Work work) {
  auto task = std::make_shared<std::packaged_task<R(const Engine::Pinned&)>>(std::move(work));
  auto future = task->get_future();
  switch (engine.submit_job([task](const Engine::Pinned& pinned) { (*task)(pinned); })) {
    case Engine::Enqueue::kBackpressure:
      return util::make_error("serve.backpressure", "batch queue is full");
    case Engine::Enqueue::kStopped:
      return util::make_error("serve.stopped", "engine is shutting down");
    case Engine::Enqueue::kOk:
      break;
  }
  return future;
}

}  // namespace

// --- single queries ---------------------------------------------------------

std::string Engine::registrable_domain(std::string_view host) const {
  const auto state = current();
  if (queries_) queries_->add();
  return std::string(state->matcher.match_view(host).registrable_domain);
}

bool Engine::same_site(std::string_view a, std::string_view b) const {
  const auto state = current();
  if (queries_) queries_->add();
  return psl::same_site(state->matcher, a, b);
}

Match Engine::match(std::string_view host) const {
  const auto state = current();
  if (queries_) queries_->add();
  return state->matcher.match(host);
}

// --- batched queries ---------------------------------------------------------

util::Result<std::future<std::vector<std::string>>> Engine::submit_registrable_domains(
    std::vector<std::string> hosts) {
  return submit_typed<std::vector<std::string>>(
      *this, [this, hosts = std::move(hosts)](const Pinned& pinned) {
        std::vector<std::string> out;
        out.reserve(hosts.size());
        for (const std::string& host : hosts) {
          out.emplace_back(pinned.matcher.match_view(host).registrable_domain);
        }
        count_queries(hosts.size());
        return out;
      });
}

util::Result<std::future<std::vector<std::uint8_t>>> Engine::submit_same_site(
    std::vector<std::pair<std::string, std::string>> pairs) {
  return submit_typed<std::vector<std::uint8_t>>(
      *this, [this, pairs = std::move(pairs)](const Pinned& pinned) {
        std::vector<std::uint8_t> out;
        out.reserve(pairs.size());
        for (const auto& [a, b] : pairs) {
          out.push_back(psl::same_site(pinned.matcher, a, b) ? 1 : 0);
        }
        count_queries(pairs.size());
        return out;
      });
}

util::Result<std::future<std::vector<Match>>> Engine::submit_match(
    std::vector<std::string> hosts) {
  return submit_typed<std::vector<Match>>(
      *this, [this, hosts = std::move(hosts)](const Pinned& pinned) {
        std::vector<Match> out;
        out.reserve(hosts.size());
        for (const std::string& host : hosts) {
          out.push_back(pinned.matcher.match(host));
        }
        count_queries(hosts.size());
        return out;
      });
}

// --- hot reload --------------------------------------------------------------

std::uint64_t Engine::install(snapshot::Snapshot next) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  const std::uint64_t generation = ++next_generation_;
  auto state = std::make_shared<const State>(
      State{std::move(next.matcher), next.meta, generation});
  {
    std::lock_guard<std::mutex> state_lock(state_mutex_);
    state_.swap(state);
  }
  // `state` (the previous State) is released outside state_mutex_, so a
  // reader never waits on the old matcher's destruction.
  return generation;
}

std::uint64_t Engine::swap(snapshot::Snapshot next) {
  const std::uint64_t generation = install(std::move(next));
  if (reload_success_) reload_success_->add();
  return generation;
}

std::uint64_t Engine::reload_list(const List& list, snapshot::Metadata meta) {
  if (meta.rule_count == 0) meta.rule_count = list.rules().size();
  return swap(snapshot::Snapshot{CompiledMatcher(list), meta});
}

util::Result<std::uint64_t> Engine::reload_snapshot(std::span<const std::uint8_t> bytes) {
  auto loaded = snapshot::load_copy(bytes);
  if (!loaded) {
    if (reload_failure_) reload_failure_->add();
    return loaded.error();  // keep-last-good: state_ untouched
  }
  return swap(std::move(loaded).value());
}

util::Result<std::uint64_t> Engine::reload_file(const std::string& path) {
  auto loaded = snapshot::load_file(path);
  if (!loaded) {
    if (reload_failure_) reload_failure_->add();
    return loaded.error();  // keep-last-good: state_ untouched
  }
  return swap(std::move(loaded).value());
}

// --- introspection ------------------------------------------------------------

std::uint64_t Engine::generation() const noexcept { return current()->generation; }

snapshot::Metadata Engine::metadata() const { return current()->meta; }

std::size_t Engine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace psl::serve
