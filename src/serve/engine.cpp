#include "psl/serve/engine.hpp"

#include <algorithm>

#include "psl/obs/span.hpp"
#include "psl/psl/match.hpp"

namespace psl::serve {

namespace {

/// psl.match.batch_size bucket bounds: powers of two up to the frame caps.
constexpr double kBatchSizeBounds[] = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024};

}  // namespace

Engine::Engine(snapshot::Snapshot initial, EngineOptions options)
    : census_factory_(std::move(options.census_factory)),
      max_queue_depth_(options.max_queue_depth),
      cache_slots_(options.cache_slots) {
  if (options.metrics) {
    queries_ = &options.metrics->counter("serve.queries");
    batches_ = &options.metrics->counter("serve.batches");
    rejected_ = &options.metrics->counter("serve.rejected");
    reload_success_ = &options.metrics->counter("serve.reload.success");
    reload_failure_ = &options.metrics->counter("serve.reload.failure");
    cache_hits_ = &options.metrics->counter("serve.cache.hit");
    cache_misses_ = &options.metrics->counter("serve.cache.miss");
    cache_evicts_ = &options.metrics->counter("serve.cache.evict");
    queue_depth_gauge_ = &options.metrics->gauge("serve.queue_depth");
    batch_ms_ = &options.metrics->histogram("serve.batch_ms");
    batch_size_ = &options.metrics->histogram("psl.match.batch_size", kBatchSizeBounds);
  }
  const std::size_t threads = options.threads == 0 ? 1 : options.threads;
  configured_workers_ = threads;  // install() sizes the per-worker caches
  install(std::move(initial), options.initial_generation);

  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Engine::~Engine() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void Engine::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::function<void(std::size_t)> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      // Drain-on-shutdown: exit only once the queue is empty, so every
      // accepted future gets fulfilled.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      if (queue_depth_gauge_) queue_depth_gauge_->set(static_cast<double>(queue_.size()));
    }
    job(worker_index);
  }
}

Engine::Enqueue Engine::enqueue(std::function<void(std::size_t)> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) return Enqueue::kStopped;
    if (queue_.size() >= max_queue_depth_) return Enqueue::kBackpressure;
    queue_.push_back(std::move(job));
    if (queue_depth_gauge_) queue_depth_gauge_->set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return Enqueue::kOk;
}

void Engine::count_queries(std::size_t n) const noexcept {
  if (queries_) queries_->add(static_cast<std::int64_t>(n));
}

Engine::Enqueue Engine::submit_job(std::function<void(const Pinned&)> job) {
  const Enqueue outcome = enqueue([this, job = std::move(job)](std::size_t worker) {
    const auto state = current();  // one State for the whole batch
    const obs::Timer timer(batch_ms_);
    if (batches_) batches_->add();
    RegDomainCache* cache =
        worker < state->caches.size() && state->caches[worker].enabled()
            ? &state->caches[worker]
            : nullptr;
    job(Pinned{state->matcher, state->meta, state->generation, cache, this,
               state->census.get(), worker});
  });
  if (outcome == Enqueue::kBackpressure && rejected_) rejected_->add();
  return outcome;
}

// --- Pinned cached helpers ---------------------------------------------------

namespace {

/// Cache value for a computed view (the registrable domain is a suffix of
/// the stripped host, so its length fully encodes the boundary).
std::uint32_t encode_boundary(std::string_view registrable_domain) noexcept {
  return registrable_domain.empty() ? RegDomainCache::kNoDomain
                                    : static_cast<std::uint32_t>(registrable_domain.size());
}

std::string_view strip_dot(std::string_view host) noexcept {
  if (!host.empty() && host.back() == '.') host.remove_suffix(1);
  return host;
}

/// Re-attach a cached boundary to the query's own buffer.
std::string_view apply_boundary(std::string_view stripped, std::uint32_t rd_len) noexcept {
  return rd_len == RegDomainCache::kNoDomain ? std::string_view{}
                                             : stripped.substr(stripped.size() - rd_len);
}

}  // namespace

std::string_view Engine::Pinned::registrable_domain_view(std::string_view host) const noexcept {
  if (!cache) return matcher.match_view(host).registrable_domain;
  const std::string_view stripped = strip_dot(host);
  const std::uint64_t h = RegDomainCache::hash_host(stripped);
  std::uint32_t rd_len = 0;
  if (cache->lookup(h, rd_len)) {
    if (engine && engine->cache_hits_) engine->cache_hits_->add();
    return apply_boundary(stripped, rd_len);
  }
  const MatchView m = matcher.match_view(host);
  const bool evicted = cache->insert(h, encode_boundary(m.registrable_domain));
  if (engine) {
    if (engine->cache_misses_) engine->cache_misses_->add();
    if (evicted && engine->cache_evicts_) engine->cache_evicts_->add();
  }
  return m.registrable_domain;
}

bool Engine::Pinned::same_site(std::string_view a, std::string_view b) const noexcept {
  // Same semantics as psl::same_site, over the cached boundary: equal
  // non-empty registrable domains, else (both empty) dot-stripped literal
  // equality. The cached views alias the query buffers, so == compares
  // content exactly like the uncached predicate.
  const std::string_view ra = registrable_domain_view(a);
  const std::string_view rb = registrable_domain_view(b);
  if (ra.empty() || rb.empty()) {
    return ra.empty() && rb.empty() && strip_dot(a) == strip_dot(b);
  }
  return ra == rb;
}

void Engine::Pinned::registrable_domains(std::span<const std::string_view> hosts,
                                         std::span<std::string_view> out) const {
  const std::size_t n = std::min(hosts.size(), out.size());
  // Worker-thread scratch: reused across batches, so the steady-state path
  // allocates nothing.
  thread_local std::vector<std::size_t> miss_index;
  thread_local std::vector<std::string_view> miss_hosts;
  thread_local std::vector<std::uint64_t> miss_hashes;
  thread_local std::vector<MatchView> miss_views;

  if (!cache) {
    miss_views.resize(n);
    match_batch(hosts.first(n), miss_views);
    for (std::size_t i = 0; i < n; ++i) out[i] = miss_views[i].registrable_domain;
    return;
  }

  miss_index.clear();
  miss_hosts.clear();
  miss_hashes.clear();
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::string_view stripped = strip_dot(hosts[i]);
    const std::uint64_t h = RegDomainCache::hash_host(stripped);
    std::uint32_t rd_len = 0;
    if (cache->lookup(h, rd_len)) {
      out[i] = apply_boundary(stripped, rd_len);
      ++hits;
    } else {
      miss_index.push_back(i);
      miss_hosts.push_back(hosts[i]);
      miss_hashes.push_back(h);
    }
  }

  std::size_t evictions = 0;
  if (!miss_index.empty()) {
    miss_views.resize(miss_index.size());
    match_batch(miss_hosts, miss_views);  // the trie fall-through, batched
    for (std::size_t j = 0; j < miss_index.size(); ++j) {
      const std::string_view rd = miss_views[j].registrable_domain;
      out[miss_index[j]] = rd;
      if (cache->insert(miss_hashes[j], encode_boundary(rd))) ++evictions;
    }
  }
  if (engine) {
    if (hits && engine->cache_hits_) engine->cache_hits_->add(static_cast<std::int64_t>(hits));
    if (!miss_index.empty() && engine->cache_misses_)
      engine->cache_misses_->add(static_cast<std::int64_t>(miss_index.size()));
    if (evictions && engine->cache_evicts_)
      engine->cache_evicts_->add(static_cast<std::int64_t>(evictions));
  }
}

std::size_t Engine::Pinned::match_batch(std::span<const std::string_view> hosts,
                                        std::span<MatchView> out) const noexcept {
  const std::size_t n = matcher.match_batch(hosts, out);
  if (engine && engine->batch_size_ && n > 0) {
    engine->batch_size_->observe(static_cast<double>(n));
  }
  return n;
}

namespace {

/// Shared submit plumbing: wrap `work` in a packaged_task, hand it to
/// submit_job, and map the enqueue outcome onto the Result contract.
template <typename R, typename Work>
util::Result<std::future<R>> submit_typed(Engine& engine, Work work) {
  auto task = std::make_shared<std::packaged_task<R(const Engine::Pinned&)>>(std::move(work));
  auto future = task->get_future();
  switch (engine.submit_job([task](const Engine::Pinned& pinned) { (*task)(pinned); })) {
    case Engine::Enqueue::kBackpressure:
      return util::make_error("serve.backpressure", "batch queue is full");
    case Engine::Enqueue::kStopped:
      return util::make_error("serve.stopped", "engine is shutting down");
    case Engine::Enqueue::kOk:
      break;
  }
  return future;
}

}  // namespace

// --- single queries ---------------------------------------------------------

std::string Engine::registrable_domain(std::string_view host) const {
  const auto state = current();
  if (queries_) queries_->add();
  return std::string(state->matcher.match_view(host).registrable_domain);
}

bool Engine::same_site(std::string_view a, std::string_view b) const {
  const auto state = current();
  if (queries_) queries_->add();
  return psl::same_site(state->matcher, a, b);
}

Match Engine::match(std::string_view host) const {
  const auto state = current();
  if (queries_) queries_->add();
  return state->matcher.match(host);
}

// --- batched queries ---------------------------------------------------------

util::Result<std::future<std::vector<std::string>>> Engine::submit_registrable_domains(
    std::vector<std::string> hosts) {
  return submit_typed<std::vector<std::string>>(
      *this, [this, hosts = std::move(hosts)](const Pinned& pinned) {
        std::vector<std::string_view> views(hosts.begin(), hosts.end());
        std::vector<std::string_view> domains(hosts.size());
        pinned.registrable_domains(views, domains);  // cached fast path
        std::vector<std::string> out(domains.begin(), domains.end());
        count_queries(hosts.size());
        return out;
      });
}

util::Result<std::future<std::vector<std::uint8_t>>> Engine::submit_same_site(
    std::vector<std::pair<std::string, std::string>> pairs) {
  return submit_typed<std::vector<std::uint8_t>>(
      *this, [this, pairs = std::move(pairs)](const Pinned& pinned) {
        std::vector<std::uint8_t> out;
        out.reserve(pairs.size());
        for (const auto& [a, b] : pairs) {
          out.push_back(pinned.same_site(a, b) ? 1 : 0);
        }
        count_queries(pairs.size());
        return out;
      });
}

util::Result<std::future<std::vector<Match>>> Engine::submit_match(
    std::vector<std::string> hosts) {
  return submit_typed<std::vector<Match>>(
      *this, [this, hosts = std::move(hosts)](const Pinned& pinned) {
        std::vector<std::string_view> views(hosts.begin(), hosts.end());
        std::vector<MatchView> matches(hosts.size());
        pinned.match_batch(views, matches);  // interleaved + prefetched walk
        std::vector<Match> out;
        out.reserve(hosts.size());
        for (const MatchView& m : matches) out.push_back(m.to_match());
        count_queries(hosts.size());
        return out;
      });
}

// --- hot reload --------------------------------------------------------------

std::uint64_t Engine::install(snapshot::Snapshot next, std::uint64_t target_generation) {
  std::lock_guard<std::mutex> lock(reload_mutex_);
  // An explicit target (the shard-latch generation) wins when it moves the
  // counter forward; generations stay strictly monotone either way.
  const std::uint64_t generation = std::max(target_generation, next_generation_ + 1);
  next_generation_ = generation;
  auto fresh =
      std::make_shared<State>(State{std::move(next.matcher), next.meta, generation, {}, {}});
  // Cold caches, one per worker. Built before publication (the state_mutex_
  // handoff below is the happens-before edge workers read through), sized
  // here so even the constructor's initial install — which runs before the
  // worker threads exist — gets the full set.
  fresh->caches.reserve(configured_workers_);
  for (std::size_t i = 0; i < configured_workers_; ++i) {
    fresh->caches.emplace_back(cache_slots_);
  }
  // Fresh census per generation, built before publication like the caches:
  // no ingest record can ever be attributed across a generation boundary.
  if (census_factory_) fresh->census = census_factory_(configured_workers_);
  const snapshot::Metadata meta = fresh->meta;
  std::shared_ptr<const State> state = std::move(fresh);
  {
    std::lock_guard<std::mutex> state_lock(state_mutex_);
    state_.swap(state);
  }
  // `state` (the previous State) is released outside state_mutex_, so a
  // reader never waits on the old matcher's destruction.
  //
  // Notify AFTER publication (a listener that queries sees the new
  // generation) and still under reload_mutex_ (notifications arrive in
  // generation order, never interleaved).
  GenerationListener listener;
  {
    std::lock_guard<std::mutex> listener_lock(listener_mutex_);
    listener = generation_listener_;
  }
  if (listener) listener(generation, meta);
  return generation;
}

void Engine::set_generation_listener(GenerationListener listener) {
  std::lock_guard<std::mutex> lock(listener_mutex_);
  generation_listener_ = std::move(listener);
}

std::uint64_t Engine::swap(snapshot::Snapshot next) {
  const std::uint64_t generation = install(std::move(next));
  if (reload_success_) reload_success_->add();
  return generation;
}

std::uint64_t Engine::reload_list(const List& list, snapshot::Metadata meta) {
  if (meta.rule_count == 0) meta.rule_count = list.rules().size();
  return swap(snapshot::Snapshot{CompiledMatcher(list), meta});
}

util::Result<std::uint64_t> Engine::reload_snapshot(std::span<const std::uint8_t> bytes) {
  auto loaded = snapshot::load_copy(bytes);
  if (!loaded) {
    if (reload_failure_) reload_failure_->add();
    return loaded.error();  // keep-last-good: state_ untouched
  }
  return swap(std::move(loaded).value());
}

util::Result<std::uint64_t> Engine::reload_file(const std::string& path) {
  auto loaded = snapshot::load_file(path);
  if (!loaded) {
    if (reload_failure_) reload_failure_->add();
    return loaded.error();  // keep-last-good: state_ untouched
  }
  return swap(std::move(loaded).value());
}

util::Result<std::uint64_t> Engine::reload_file_view(const std::string& path,
                                                     std::uint64_t target_generation) {
  auto loaded = snapshot::load_file_view(path);
  if (!loaded) {
    if (reload_failure_) reload_failure_->add();
    return loaded.error();  // keep-last-good: state_ untouched
  }
  return swap_as(std::move(loaded).value(), target_generation);
}

std::uint64_t Engine::swap_as(snapshot::Snapshot next, std::uint64_t target_generation) {
  const std::uint64_t generation = install(std::move(next), target_generation);
  if (reload_success_) reload_success_->add();
  return generation;
}

// --- introspection ------------------------------------------------------------

std::uint64_t Engine::generation() const noexcept { return current()->generation; }

snapshot::Metadata Engine::metadata() const { return current()->meta; }

std::size_t Engine::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace psl::serve
