#include "psl/serve/snapshot.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "psl/psl/detail/match_walk.hpp"

namespace psl::snapshot {

/// Serialization backdoor declared a friend by CompiledMatcher — the only
/// code outside the matcher that sees the raw arena.
struct Access {
  using Node = CompiledMatcher::Node;
  using Child = CompiledMatcher::Child;

  static std::span<const Node> nodes(const CompiledMatcher& m) noexcept { return m.nodes_; }
  static std::span<const std::uint32_t> hashes(const CompiledMatcher& m) noexcept {
    return m.child_hashes_;
  }
  static std::span<const Child> children(const CompiledMatcher& m) noexcept {
    return m.children_;
  }
  static std::string_view pool(const CompiledMatcher& m) noexcept { return m.pool_; }

  /// Build a matcher over an already-validated external arena. `retain`
  /// keeps the buffer alive for owning loads; null for borrowed loads.
  static CompiledMatcher adopt(std::span<const Node> nodes,
                               std::span<const std::uint32_t> hashes,
                               std::span<const Child> children, std::string_view pool,
                               std::shared_ptr<const void> retain) {
    CompiledMatcher m;
    m.nodes_ = nodes;
    m.child_hashes_ = hashes;
    m.children_ = children;
    m.pool_ = pool;
    m.retain_ = std::move(retain);
    return m;
  }

  static constexpr std::uint8_t known_flags() noexcept {
    return CompiledMatcher::kHasNormal | CompiledMatcher::kHasWildcard |
           CompiledMatcher::kHasException;
  }
};

namespace {

using Node = Access::Node;
using Child = Access::Child;

std::uint64_t fnv1a64(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

constexpr std::uint64_t align8(std::uint64_t v) noexcept { return (v + 7) & ~std::uint64_t{7}; }

/// Section offsets/sizes implied by the header counts. Counts are capped at
/// 2^32 before this runs, so none of the arithmetic can overflow u64.
struct Layout {
  std::uint64_t nodes_off, nodes_bytes;
  std::uint64_t hashes_off, hashes_bytes;
  std::uint64_t children_off, children_bytes;
  std::uint64_t pool_off, pool_bytes;
  std::uint64_t total;
};

Layout layout_for(std::uint64_t node_count, std::uint64_t child_count,
                  std::uint64_t pool_bytes) noexcept {
  Layout l;
  l.nodes_off = kHeaderBytes;
  l.nodes_bytes = node_count * sizeof(Node);
  l.hashes_off = align8(l.nodes_off + l.nodes_bytes);
  l.hashes_bytes = child_count * sizeof(std::uint32_t);
  l.children_off = align8(l.hashes_off + l.hashes_bytes);
  l.children_bytes = child_count * sizeof(Child);
  l.pool_off = align8(l.children_off + l.children_bytes);
  l.pool_bytes = pool_bytes;
  l.total = l.pool_off + l.pool_bytes;
  return l;
}

util::Error err(const char* code, std::string message) {
  return util::make_error(code, std::move(message));
}

}  // namespace

util::Result<HeaderView> parse_header(std::span<const std::uint8_t> header) {
  if (header.size() < kHeaderBytes) {
    return err("snapshot.truncated",
               "buffer is " + std::to_string(header.size()) + " bytes; header needs " +
                   std::to_string(kHeaderBytes));
  }
  const std::uint8_t* const p = header.data();
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return err("snapshot.bad-magic", "magic bytes are not PSLSNAP1");
  }
  const std::uint32_t version = get_u32(p + 8);
  if (version != kFormatVersion) {
    return err("snapshot.bad-version", "format version " + std::to_string(version) +
                                           " unsupported (expect " +
                                           std::to_string(kFormatVersion) + ")");
  }
  if (get_u32(p + 12) != kHeaderBytes) {
    return err("snapshot.bad-header", "header size field is not 96");
  }

  HeaderView h;
  h.node_count = get_u64(p + 16);
  h.child_count = get_u64(p + 24);
  const std::uint64_t pool_bytes = get_u64(p + 32);

  h.meta.rule_count = get_u64(p + 40);
  const auto date_raw = static_cast<std::int64_t>(get_u64(p + 48));
  if (date_raw < std::numeric_limits<std::int32_t>::min() ||
      date_raw > std::numeric_limits<std::int32_t>::max()) {
    return err("snapshot.bad-header", "source date out of range");
  }
  h.meta.source_date = util::Date(static_cast<std::int32_t>(date_raw));

  constexpr std::uint64_t kMaxIndex = 0xFFFFFFFFull;
  if (h.node_count == 0 || h.node_count > kMaxIndex || h.child_count > kMaxIndex ||
      pool_bytes > kMaxIndex) {
    return err("snapshot.bad-counts", "counts empty or overflow 32-bit arena indices");
  }

  const Layout l = layout_for(h.node_count, h.child_count, pool_bytes);
  h.nodes_off = l.nodes_off;
  h.nodes_bytes = l.nodes_bytes;
  h.hashes_off = l.hashes_off;
  h.hashes_bytes = l.hashes_bytes;
  h.children_off = l.children_off;
  h.children_bytes = l.children_bytes;
  h.pool_off = l.pool_off;
  h.pool_bytes = l.pool_bytes;
  h.total_bytes = l.total;
  h.nodes_sum = get_u64(p + 56);
  h.hashes_sum = get_u64(p + 64);
  h.children_sum = get_u64(p + 72);
  h.pool_sum = get_u64(p + 80);
  h.header_sum = get_u64(p + 88);
  return h;
}

util::Result<Snapshot> load_view_sections(std::span<const std::uint8_t> header,
                                          std::span<const std::uint8_t> nodes_bytes,
                                          std::span<const std::uint8_t> hashes_bytes,
                                          std::span<const std::uint8_t> children_bytes,
                                          std::span<const std::uint8_t> pool_bytes,
                                          std::shared_ptr<const void> retain) {
  auto parsed = parse_header(header);
  if (!parsed.ok()) return parsed.error();
  const HeaderView& h = *parsed;

  const auto check_section = [](std::string_view name, std::span<const std::uint8_t> got,
                                std::uint64_t want, bool need_alignment)
      -> util::Result<bool> {
    if (got.size() < want) {
      return err("snapshot.truncated", std::string(name) + " section is " +
                                           std::to_string(got.size()) + " bytes; header declares " +
                                           std::to_string(want));
    }
    if (got.size() > want) {
      return err("snapshot.size-mismatch", std::string(name) + " section is " +
                                               std::to_string(got.size()) +
                                               " bytes; header declares " + std::to_string(want));
    }
    if (need_alignment &&
        reinterpret_cast<std::uintptr_t>(got.data()) % kBufferAlignment != 0) {
      return err("snapshot.misaligned",
                 std::string(name) + " section buffer must be 8-byte aligned");
    }
    return true;
  };
  if (auto ok = check_section("node", nodes_bytes, h.nodes_bytes, true); !ok.ok()) {
    return ok.error();
  }
  if (auto ok = check_section("hash", hashes_bytes, h.hashes_bytes, true); !ok.ok()) {
    return ok.error();
  }
  if (auto ok = check_section("child", children_bytes, h.children_bytes, true); !ok.ok()) {
    return ok.error();
  }
  if (auto ok = check_section("pool", pool_bytes, h.pool_bytes, false); !ok.ok()) {
    return ok.error();
  }

  const std::uint64_t node_count = h.node_count;
  const std::uint64_t child_count = h.child_count;
  const std::span<const Node> nodes(reinterpret_cast<const Node*>(nodes_bytes.data()),
                                    static_cast<std::size_t>(node_count));
  const std::span<const std::uint32_t> hashes(
      reinterpret_cast<const std::uint32_t*>(hashes_bytes.data()),
      static_cast<std::size_t>(child_count));
  const std::span<const Child> children(reinterpret_cast<const Child*>(children_bytes.data()),
                                        static_cast<std::size_t>(child_count));
  const std::string_view pool(reinterpret_cast<const char*>(pool_bytes.data()),
                              static_cast<std::size_t>(h.pool_bytes));

  // Nodes: child ranges must partition [0, child_count) in node order (the
  // compiler emits them that way, and it implies every range is in bounds),
  // flag bytes must hold only known bits, and padding must be zero.
  const std::uint8_t known = Access::known_flags();
  std::uint64_t expected_begin = 0;
  for (std::uint64_t i = 0; i < node_count; ++i) {
    const Node& n = nodes[i];
    if (n.children_begin != expected_begin || n.children_end < n.children_begin ||
        n.children_end > child_count) {
      return err("snapshot.bad-node",
                 "child range broken at node " + std::to_string(i));
    }
    expected_begin = n.children_end;
    if ((n.flags & ~known) != 0 || (n.sections & static_cast<std::uint8_t>(~n.flags)) != 0 ||
        n.reserved != 0) {
      return err("snapshot.bad-node",
                 "unknown flag bits or nonzero padding at node " + std::to_string(i));
    }
  }
  if (expected_begin != child_count) {
    return err("snapshot.bad-node", "child ranges do not cover the child array");
  }

  // Children: labels in the pool and non-empty, stored hash actually the
  // label's hash (the binary search compares hashes first), edges to real
  // non-root nodes. Cycles among non-root nodes cannot hang a lookup — the
  // shared walk is bounded at kMaxMatchDepth — so reachability is not
  // checked here.
  for (std::uint64_t i = 0; i < child_count; ++i) {
    const Child& c = children[i];
    if (c.label_len == 0 || c.label_offset > h.pool_bytes ||
        c.label_len > h.pool_bytes - c.label_offset) {
      return err("snapshot.bad-child", "label out of pool bounds at child " + std::to_string(i));
    }
    if (c.node == 0 || c.node >= node_count) {
      return err("snapshot.bad-child", "edge out of range at child " + std::to_string(i));
    }
    const std::string_view label(pool.data() + c.label_offset, c.label_len);
    if (hashes[i] != detail::fnv1a_reverse(label)) {
      return err("snapshot.bad-child", "stored hash != label hash at child " + std::to_string(i));
    }
  }

  // Each range sorted by (hash, label), strictly — duplicates would make
  // lookups ambiguous. Ranges partition the array (checked above), so one
  // linear pass with per-node resets covers every range.
  for (std::uint64_t n = 0; n < node_count; ++n) {
    for (std::uint64_t i = nodes[n].children_begin + 1; i < nodes[n].children_end; ++i) {
      if (hashes[i] < hashes[i - 1]) {
        return err("snapshot.bad-order", "hashes out of order at child " + std::to_string(i));
      }
      if (hashes[i] == hashes[i - 1]) {
        const Child& a = children[i - 1];
        const Child& b = children[i];
        const std::string_view la(pool.data() + a.label_offset, a.label_len);
        const std::string_view lb(pool.data() + b.label_offset, b.label_len);
        if (!(la < lb)) {
          return err("snapshot.bad-order",
                     "labels out of order or duplicate at child " + std::to_string(i));
        }
      }
    }
  }

  if (fnv1a64(header.data(), 88) != h.header_sum) {
    return err("snapshot.checksum", "header checksum mismatch");
  }
  if (fnv1a64(nodes.data(), nodes.size_bytes()) != h.nodes_sum) {
    return err("snapshot.checksum", "node section checksum mismatch");
  }
  if (fnv1a64(hashes.data(), hashes.size_bytes()) != h.hashes_sum) {
    return err("snapshot.checksum", "hash section checksum mismatch");
  }
  if (fnv1a64(children.data(), children.size_bytes()) != h.children_sum) {
    return err("snapshot.checksum", "child section checksum mismatch");
  }
  if (fnv1a64(pool.data(), pool.size()) != h.pool_sum) {
    return err("snapshot.checksum", "label pool checksum mismatch");
  }

  return Snapshot{Access::adopt(nodes, hashes, children, pool, std::move(retain)), h.meta};
}

namespace {

/// The contiguous-buffer pipeline: header + layout/padding checks over one
/// 8-byte-aligned buffer, then the shared scattered-section validator over
/// exact subspans. Checksums still run LAST, deliberately: a fuzzer that
/// only flips payload bytes would otherwise never get past the checksum
/// gate into the structural checks, which are the ones the match path's
/// safety actually rests on.
util::Result<Snapshot> load_validated(std::span<const std::uint8_t> bytes,
                                      std::shared_ptr<const void> retain) {
  auto parsed = parse_header(bytes);
  if (!parsed.ok()) return parsed.error();
  const HeaderView& h = *parsed;

  if (bytes.size() < h.total_bytes) {
    return err("snapshot.truncated", "buffer is " + std::to_string(bytes.size()) +
                                         " bytes; header declares " +
                                         std::to_string(h.total_bytes));
  }
  if (bytes.size() > h.total_bytes) {
    return err("snapshot.size-mismatch", std::to_string(bytes.size() - h.total_bytes) +
                                             " trailing bytes past the declared layout");
  }

  // Inter-section padding must be zero. Together with the checksums this
  // makes the format canonical: every byte is either validated structure or
  // checksummed payload, so any single-byte corruption is detectable.
  const std::uint8_t* const p = bytes.data();
  const auto padding_zero = [p](std::uint64_t from, std::uint64_t to) {
    for (std::uint64_t i = from; i < to; ++i) {
      if (p[i] != 0) return false;
    }
    return true;
  };
  if (!padding_zero(h.nodes_off + h.nodes_bytes, h.hashes_off) ||
      !padding_zero(h.hashes_off + h.hashes_bytes, h.children_off) ||
      !padding_zero(h.children_off + h.children_bytes, h.pool_off)) {
    return err("snapshot.bad-padding", "nonzero inter-section padding");
  }

  return load_view_sections(
      bytes.first(kHeaderBytes),
      bytes.subspan(static_cast<std::size_t>(h.nodes_off),
                    static_cast<std::size_t>(h.nodes_bytes)),
      bytes.subspan(static_cast<std::size_t>(h.hashes_off),
                    static_cast<std::size_t>(h.hashes_bytes)),
      bytes.subspan(static_cast<std::size_t>(h.children_off),
                    static_cast<std::size_t>(h.children_bytes)),
      bytes.subspan(static_cast<std::size_t>(h.pool_off),
                    static_cast<std::size_t>(h.pool_bytes)),
      std::move(retain));
}

}  // namespace

std::string serialize(const CompiledMatcher& matcher, const Metadata& meta) {
  const auto nodes = Access::nodes(matcher);
  const auto hashes = Access::hashes(matcher);
  const auto children = Access::children(matcher);
  const std::string_view pool = Access::pool(matcher);

  const Layout l = layout_for(nodes.size(), children.size(), pool.size());

  std::string out;
  out.reserve(static_cast<std::size_t>(l.total));
  out.append(kMagic, sizeof(kMagic));
  put_u32(out, kFormatVersion);
  put_u32(out, static_cast<std::uint32_t>(kHeaderBytes));
  put_u64(out, nodes.size());
  put_u64(out, children.size());
  put_u64(out, pool.size());
  put_u64(out, meta.rule_count);
  put_u64(out, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(meta.source_date.days_since_epoch())));
  put_u64(out, fnv1a64(nodes.data(), nodes.size_bytes()));
  put_u64(out, fnv1a64(hashes.data(), hashes.size_bytes()));
  put_u64(out, fnv1a64(children.data(), children.size_bytes()));
  put_u64(out, fnv1a64(pool.data(), pool.size()));
  put_u64(out, fnv1a64(out.data(), 88));  // header checksum over bytes [0, 88)

  out.append(reinterpret_cast<const char*>(nodes.data()), nodes.size_bytes());
  out.resize(static_cast<std::size_t>(l.hashes_off), '\0');
  out.append(reinterpret_cast<const char*>(hashes.data()), hashes.size_bytes());
  out.resize(static_cast<std::size_t>(l.children_off), '\0');
  out.append(reinterpret_cast<const char*>(children.data()), children.size_bytes());
  out.resize(static_cast<std::size_t>(l.pool_off), '\0');
  out.append(pool.data(), pool.size());
  return out;
}

util::Result<Snapshot> load_view(std::span<const std::uint8_t> bytes) {
  if (reinterpret_cast<std::uintptr_t>(bytes.data()) % kBufferAlignment != 0) {
    return err("snapshot.misaligned", "borrowed buffer must be 8-byte aligned");
  }
  return load_validated(bytes, nullptr);
}

util::Result<Snapshot> load_copy(std::span<const std::uint8_t> bytes) {
  // A u64 vector gives the 8-byte alignment load_validated's casts need.
  auto buffer = std::make_shared<std::vector<std::uint64_t>>((bytes.size() + 7) / 8);
  if (!bytes.empty()) std::memcpy(buffer->data(), bytes.data(), bytes.size());
  const std::span<const std::uint8_t> aligned(
      reinterpret_cast<const std::uint8_t*>(buffer->data()), bytes.size());
  return load_validated(aligned, std::move(buffer));
}

namespace {

// Test injection for the durability paths (see the header). Mirrors the
// countdown style of pslh_test_fail_next_allocs in the C API.
std::atomic<int> g_fail_fsyncs{0};
void (*g_load_file_hook)(const char* path) = nullptr;

/// fsync(fd), honoring the test countdown. Returns false (with errno set)
/// on failure.
bool fsync_ok(int fd) {
  int pending = g_fail_fsyncs.load(std::memory_order_relaxed);
  while (pending > 0) {
    if (g_fail_fsyncs.compare_exchange_weak(pending, pending - 1,
                                            std::memory_order_relaxed)) {
      errno = EIO;
      return false;
    }
  }
  return ::fsync(fd) == 0;
}

}  // namespace

void test_fail_next_fsyncs(int count) {
  g_fail_fsyncs.store(count, std::memory_order_relaxed);
}

void test_set_load_file_hook(void (*hook)(const char* path)) { g_load_file_hook = hook; }

util::Result<Snapshot> load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return err("snapshot.io", "cannot open " + path);
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size < 0) return err("snapshot.io", "cannot size " + path);
  in.seekg(0, std::ios::beg);
  if (g_load_file_hook != nullptr) g_load_file_hook(path.c_str());
  auto buffer =
      std::make_shared<std::vector<std::uint64_t>>((static_cast<std::size_t>(size) + 7) / 8);
  if (size > 0 && !in.read(reinterpret_cast<char*>(buffer->data()), size)) {
    return err("snapshot.io", "short read from " + path);
  }
  // A concurrent writer that APPENDS between the size probe and the read
  // would otherwise pass validation on the prefix while the on-disk file
  // says something else (a truncation already fails as a short read above).
  // Anyone publishing through write_file_durable never hits this; reject
  // the racy writer instead of guessing.
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    return err("snapshot.io", "cannot re-stat " + path);
  }
  if (st.st_size != static_cast<off_t>(size)) {
    return err("snapshot.io", "file size changed while reading " + path + " (" +
                                  std::to_string(size) + " -> " +
                                  std::to_string(static_cast<long long>(st.st_size)) +
                                  " bytes); concurrent writer?");
  }
  const std::span<const std::uint8_t> bytes(
      reinterpret_cast<const std::uint8_t*>(buffer->data()), static_cast<std::size_t>(size));
  return load_validated(bytes, std::move(buffer));
}

util::Result<Snapshot> load_file_view(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return err("snapshot.io", "cannot open " + path);
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return err("snapshot.io", "cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return err("snapshot.truncated", path + " is empty");
  }
  void* mem = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping pins the inode; the fd is no longer needed
  if (mem == MAP_FAILED) return err("snapshot.io", "cannot mmap " + path);
  std::shared_ptr<const void> mapping(mem, [size](const void* p) {
    ::munmap(const_cast<void*>(p), size);
  });
  const std::span<const std::uint8_t> bytes(static_cast<const std::uint8_t*>(mem), size);
  // mmap is page-aligned, so load_view's 8-byte alignment contract holds.
  return load_validated(bytes, std::move(mapping));
}

util::Result<std::uint64_t> write_file_durable(const std::string& path,
                                               std::span<const std::uint8_t> bytes) {
  const std::string tmp = path + ".tmp";
  const auto fail = [&tmp](const std::string& what) {
    const int saved = errno;
    ::unlink(tmp.c_str());
    return err("snapshot.io", what + " (" + std::strerror(saved) + ")");
  };

  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) return fail("cannot create " + tmp);
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ::ssize_t n =
        ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return fail("cannot write " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  // The tmp file's bytes must be on disk BEFORE the rename: otherwise a
  // crash after the rename commits can leave the final path pointing at a
  // file whose contents were never flushed — exactly the torn snapshot this
  // helper exists to rule out.
  if (!fsync_ok(fd)) {
    ::close(fd);
    return fail("cannot fsync " + tmp);
  }
  if (::close(fd) != 0) return fail("cannot close " + tmp);

  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return fail("cannot rename " + tmp + " -> " + path);
  }

  // And the rename itself must reach disk: fsync the directory so the new
  // directory entry is durable. Past this point the tmp no longer exists,
  // so failures just report — the file at `path` is valid either way, but
  // the caller must treat a non-ok publish as not-yet-durable.
  std::string dir = path;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? std::string(".") : dir.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd < 0) {
    return err("snapshot.io",
               "cannot open directory " + dir + " (" + std::strerror(errno) + ")");
  }
  if (!fsync_ok(dfd)) {
    const int saved = errno;
    ::close(dfd);
    return err("snapshot.io",
               "cannot fsync directory " + dir + " (" + std::strerror(saved) + ")");
  }
  ::close(dfd);
  return static_cast<std::uint64_t>(bytes.size());
}

util::Result<std::uint64_t> write_file(const std::string& path, const CompiledMatcher& matcher,
                                       const Metadata& meta) {
  const std::string bytes = serialize(matcher, meta);
  return write_file_durable(
      path, std::span<const std::uint8_t>(
                reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()));
}

}  // namespace psl::snapshot
