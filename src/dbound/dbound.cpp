#include "psl/dbound/dbound.hpp"

#include <cassert>

#include "psl/util/strings.hpp"

namespace psl::dbound {

namespace {

constexpr std::string_view kVersionTag = "v=bound1";
constexpr std::string_view kBoundLabel = "_bound";

dns::Name must_name(std::string_view text) {
  auto name = dns::Name::parse(text);
  assert(name.ok());
  return *std::move(name);
}

}  // namespace

std::string make_registry_record() {
  return std::string(kVersionTag) + "; policy=registry";
}

std::string make_org_record(std::string_view org_domain) {
  return std::string(kVersionTag) + "; org=" + std::string(org_domain);
}

util::Result<BoundRecord> parse_record(std::string_view txt) {
  BoundRecord record;
  bool versioned = false;
  for (std::string_view part : util::split(txt, ';')) {
    part = util::trim(part);
    if (part.empty()) continue;
    if (part == kVersionTag) {
      versioned = true;
    } else if (part == "policy=registry") {
      record.registry_policy = true;
    } else if (util::starts_with(part, "org=")) {
      const std::string_view value = util::trim(part.substr(4));
      if (value.empty()) {
        return util::make_error("dbound.empty-org", "org= with no domain");
      }
      record.org = util::to_lower(value);
    }
    // Unknown tags are ignored for extensibility.
  }
  if (!versioned) {
    return util::make_error("dbound.no-version", "missing v=bound1 tag");
  }
  if (record.registry_policy == record.org.has_value()) {
    return util::make_error("dbound.bad-record",
                            "exactly one of policy=registry / org= required");
  }
  return record;
}

void publish_registry(dns::Zone& zone, std::string_view domain, std::uint32_t ttl) {
  const auto name = must_name(domain).child(std::string(kBoundLabel));
  assert(name.ok());
  zone.add_txt(*name, make_registry_record(), ttl);
}

void publish_org(dns::Zone& zone, std::string_view domain, std::string_view org_domain,
                 std::uint32_t ttl) {
  const auto name = must_name(domain).child(std::string(kBoundLabel));
  assert(name.ok());
  zone.add_txt(*name, make_org_record(org_domain), ttl);
}

Discovery discover(dns::StubResolver& resolver, std::string_view host, std::uint64_t now,
                   std::size_t max_walk) {
  Discovery result;

  auto parsed_host = dns::Name::parse(host);
  if (!parsed_host) return result;
  const dns::Name host_name = *std::move(parsed_host);

  // Walk candidates from the host upward (closest encloser first).
  dns::Name candidate = host_name;
  for (std::size_t step = 0; step < max_walk && candidate.label_count() >= 1; ++step) {
    ++result.names_walked;
    const auto query_name = candidate.child(std::string(kBoundLabel));
    if (!query_name) break;
    const dns::ResolveResult answer = resolver.query(*query_name, dns::Type::kTxt, now);

    if (answer.ok()) {
      for (const dns::ResourceRecord& rr : answer.answers) {
        if (rr.type != dns::Type::kTxt) continue;
        const auto record = parse_record(std::get<dns::TxtRecord>(rr.rdata).joined());
        if (!record) continue;

        if (record->registry_policy) {
          // <candidate> is suffix-like: the org is one label below it on
          // the host's path. The candidate itself has no organization.
          if (host_name == candidate) return result;
          const std::size_t child_depth = candidate.label_count() + 1;
          const auto& labels = host_name.labels();
          std::vector<std::string> org_labels(labels.end() - static_cast<long>(child_depth),
                                              labels.end());
          auto org = dns::Name::from_labels(std::move(org_labels));
          assert(org.ok());
          result.org_domain = org->to_string();
          result.found_record = true;
          return result;
        }

        // org= record: trusted only if the claimed org encloses the host.
        auto org_name = dns::Name::parse(*record->org);
        if (org_name && host_name.is_subdomain_of(*org_name)) {
          result.org_domain = org_name->to_string();
          result.found_record = true;
          return result;
        }
      }
    }
    if (candidate.label_count() == 1) break;
    candidate = candidate.parent();
  }
  return result;
}

bool same_org(dns::StubResolver& resolver, std::string_view a, std::string_view b,
              std::uint64_t now) {
  const Discovery da = discover(resolver, a, now);
  const Discovery db = discover(resolver, b, now);
  return da.org_domain && db.org_domain && *da.org_domain == *db.org_domain;
}

}  // namespace psl::dbound
