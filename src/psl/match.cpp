#include "psl/psl/match.hpp"

namespace psl {

std::string MatchView::prevailing_rule() const {
  if (!matched_explicit_rule) return {};
  switch (rule_kind) {
    case RuleKind::kException:
      return "!" + std::string(rule_span);
    case RuleKind::kWildcard:
      return "*." + std::string(rule_span);
    case RuleKind::kNormal:
      break;
  }
  return std::string(rule_span);
}

Match MatchView::to_match() const {
  Match m;
  m.public_suffix = std::string(public_suffix);
  m.registrable_domain = std::string(registrable_domain);
  m.matched_explicit_rule = matched_explicit_rule;
  m.section = section;
  m.rule_labels = rule_labels;
  m.prevailing_rule = prevailing_rule();
  return m;
}

}  // namespace psl
