#include "psl/psl/rule.hpp"

#include "psl/idna/idna.hpp"
#include "psl/util/strings.hpp"

namespace psl {

util::Result<Rule> Rule::parse(std::string_view text, Section section) {
  std::string_view s = util::trim(text);
  if (s.empty()) {
    return util::make_error("rule.empty", "empty rule");
  }

  RuleKind kind = RuleKind::kNormal;
  if (s.front() == '!') {
    kind = RuleKind::kException;
    s.remove_prefix(1);
    if (s.empty()) {
      return util::make_error("rule.bare-bang", "'!' with no labels");
    }
  } else if (util::starts_with(s, "*.")) {
    kind = RuleKind::kWildcard;
    s.remove_prefix(2);
    if (s.empty()) {
      return util::make_error("rule.bare-star", "'*.' with no labels");
    }
  } else if (s == "*") {
    return util::make_error("rule.bare-star", "the implicit '*' rule cannot be listed");
  }

  // Exception rules must carve out of a wildcard, so they need >= 2 labels.
  std::vector<std::string> labels;
  for (std::string_view raw_label : util::split(s, '.')) {
    if (raw_label.empty()) {
      return util::make_error("rule.empty-label", "empty label in rule");
    }
    if (raw_label.find('*') != std::string_view::npos ||
        raw_label.find('!') != std::string_view::npos) {
      return util::make_error("rule.misplaced-marker",
                              "'*'/'!' only allowed as leading markers");
    }
    auto ascii = idna::label_to_ascii(raw_label);
    if (!ascii) return ascii.error();
    labels.push_back(*std::move(ascii));
  }

  if (kind == RuleKind::kException && labels.size() < 2) {
    return util::make_error("rule.short-exception",
                            "exception rules need at least two labels");
  }

  return Rule(kind, section, std::move(labels));
}

std::string Rule::to_string() const {
  std::string out;
  switch (kind_) {
    case RuleKind::kException: out = "!"; break;
    case RuleKind::kWildcard: out = "*."; break;
    case RuleKind::kNormal: break;
  }
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i) out.push_back('.');
    out += labels_[i];
  }
  return out;
}

}  // namespace psl
