#include "psl/psl/flat_matcher.hpp"

#include <algorithm>

#include "psl/psl/detail/match_walk.hpp"
#include "psl/util/strings.hpp"

namespace psl {

FlatMatcher::FlatMatcher(const List& list) {
  for (const Rule& rule : list.rules()) {
    std::string key = util::join(rule.labels(), ".");
    Flags& f = rules_[std::move(key)];
    switch (rule.kind()) {
      case RuleKind::kNormal:
        f.normal = true;
        f.normal_section = rule.section();
        break;
      case RuleKind::kWildcard:
        f.wildcard = true;
        f.wildcard_section = rule.section();
        break;
      case RuleKind::kException:
        f.exception = true;
        f.exception_section = rule.section();
        break;
    }
  }
}

/// Shared-walk adapter over the rule-string hash map (see
/// psl/detail/match_walk.hpp). The cursor's position is the suffix string
/// probed so far; descend() extends it by one label and re-probes. A hash
/// probe cannot tell "no rule here" from "no rule anywhere deeper", so
/// descend() always keeps walking — same results as the trie matchers, just
/// more probes (this is the ablation baseline).
struct FlatMatcher::Cursor {
  const std::unordered_map<std::string, Flags>* rules;
  std::string suffix;
  const Flags* here = nullptr;  ///< rules entry for `suffix`, if any

  bool descend(std::string_view label, std::uint32_t) {
    if (suffix.empty()) {
      suffix.assign(label);
    } else {
      std::string extended(label);
      extended.push_back('.');
      extended += suffix;
      suffix = std::move(extended);
    }
    const auto it = rules->find(suffix);
    here = it == rules->end() ? nullptr : &it->second;
    return true;
  }
  bool has_wildcard() const noexcept { return here != nullptr && here->wildcard; }
  Section wildcard_section() const noexcept { return here->wildcard_section; }
  bool has_normal() const noexcept { return here != nullptr && here->normal; }
  Section normal_section() const noexcept { return here->normal_section; }
  bool has_exception() const noexcept { return here != nullptr && here->exception; }
  Section exception_section() const noexcept { return here->exception_section; }
};

MatchView FlatMatcher::match_view(std::string_view host) const {
  return detail::match_walk(Cursor{&rules_}, host);
}

}  // namespace psl
