#include "psl/psl/flat_matcher.hpp"

#include <algorithm>

#include "psl/util/strings.hpp"

namespace psl {

FlatMatcher::FlatMatcher(const List& list) {
  for (const Rule& rule : list.rules()) {
    std::string key = util::join(rule.labels(), ".");
    Flags& f = rules_[std::move(key)];
    switch (rule.kind()) {
      case RuleKind::kNormal:
        f.normal = true;
        f.normal_section = rule.section();
        break;
      case RuleKind::kWildcard:
        f.wildcard = true;
        f.wildcard_section = rule.section();
        break;
      case RuleKind::kException:
        f.exception = true;
        f.exception_section = rule.section();
        break;
    }
  }
}

Match FlatMatcher::match(std::string_view host) const {
  if (!host.empty() && host.back() == '.') host.remove_suffix(1);
  // Degenerate hosts match nothing — same contract as List::match.
  if (host.empty() || host.back() == '.') return Match{};
  const std::vector<std::string_view> labels = util::split(host, '.');
  const std::size_t n = labels.size();

  std::size_t best_len = 1;
  bool explicit_rule = false;
  Section best_section = Section::kIcann;
  RuleKind best_kind = RuleKind::kNormal;
  std::size_t exception_depth = 0;

  // Probe every suffix of the host, shortest first, mirroring the trie walk.
  std::string suffix;
  for (std::size_t depth = 1; depth <= n; ++depth) {
    const std::string_view label = labels[n - depth];
    if (label.empty()) break;

    // Wildcard check: a wildcard stored at the (depth-1)-label suffix covers
    // this label. For depth==1 the parent is the root, which never carries a
    // wildcard in the published format ("*" alone is illegal).
    if (depth >= 2) {
      const auto parent = rules_.find(suffix);
      if (parent != rules_.end() && parent->second.wildcard && depth >= best_len) {
        best_len = depth;
        best_section = parent->second.wildcard_section;
        best_kind = RuleKind::kWildcard;
        explicit_rule = true;
      }
    }

    if (suffix.empty()) {
      suffix.assign(label);
    } else {
      std::string extended(label);
      extended.push_back('.');
      extended += suffix;
      suffix = std::move(extended);
    }

    const auto it = rules_.find(suffix);
    if (it == rules_.end()) continue;
    if (it->second.normal && depth >= best_len) {
      best_len = depth;
      best_section = it->second.normal_section;
      best_kind = RuleKind::kNormal;
      explicit_rule = true;
    }
    if (it->second.exception) {
      exception_depth = depth;
      best_section = it->second.exception_section;
      explicit_rule = true;
    }
  }

  std::size_t ps_len = exception_depth > 0 ? exception_depth - 1 : best_len;
  ps_len = std::min(ps_len, n);

  auto join_tail = [&](std::size_t count) {
    // Keep separators around empty labels — the literal byte suffix of the
    // host, matching List::match on malformed input.
    std::string out;
    for (std::size_t i = n - count; i < n; ++i) {
      if (i > n - count) out.push_back('.');
      out += labels[i];
    }
    return out;
  };

  Match result;
  result.public_suffix = join_tail(ps_len);
  result.registrable_domain = n > ps_len ? join_tail(ps_len + 1) : std::string{};
  result.matched_explicit_rule = explicit_rule;
  result.section = best_section;
  result.rule_labels = ps_len;
  if (explicit_rule) {
    if (exception_depth > 0) {
      result.prevailing_rule = "!" + join_tail(std::min(exception_depth, n));
    } else if (best_kind == RuleKind::kWildcard) {
      result.prevailing_rule = "*." + join_tail(ps_len - 1);
    } else {
      result.prevailing_rule = result.public_suffix;
    }
  }
  return result;
}

}  // namespace psl
