#include "psl/psl/compiled_matcher.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace psl {

namespace {

std::uint32_t hash_label(std::string_view label) noexcept {
  // FNV-1a, 32-bit, over the label bytes in REVERSE order — the match loop
  // scans the host right-to-left and hashes while looking for the dot, so
  // the build side must hash in the same order. Labels are short (median
  // 2-8 bytes); anything fancier loses to its own setup cost here.
  std::uint32_t h = 2166136261u;
  for (auto it = label.rbegin(); it != label.rend(); ++it) {
    h ^= static_cast<unsigned char>(*it);
    h *= 16777619u;
  }
  return h;
}

// Deepest label stack tracked per match. DNS names carry at most 127
// labels; the walk itself dies at (deepest rule + 1) labels anyway, so this
// bounds stack usage, not matching correctness for any realistic list.
constexpr std::size_t kMaxDepth = 256;

}  // namespace

std::string MatchView::prevailing_rule() const {
  if (!matched_explicit_rule) return {};
  switch (rule_kind) {
    case RuleKind::kException:
      return "!" + std::string(rule_span);
    case RuleKind::kWildcard:
      return "*." + std::string(rule_span);
    case RuleKind::kNormal:
      break;
  }
  return std::string(rule_span);
}

Match MatchView::to_match() const {
  Match m;
  m.public_suffix = std::string(public_suffix);
  m.registrable_domain = std::string(registrable_domain);
  m.matched_explicit_rule = matched_explicit_rule;
  m.section = section;
  m.rule_labels = rule_labels;
  m.prevailing_rule = prevailing_rule();
  return m;
}

CompiledMatcher::CompiledMatcher(const List& list) {
  // Pass 1: a throwaway pointer-free trie with map children, inserted in
  // rules() order so duplicate (labels, kind) rules resolve sections the
  // same way List::insert does (last insertion wins).
  struct BuildNode {
    std::map<std::string, std::uint32_t, std::less<>> children;
    std::uint8_t flags = 0;
    std::uint8_t sections = 0;
  };
  std::vector<BuildNode> build(1);

  for (const Rule& rule : list.rules()) {
    std::uint32_t node = 0;
    const auto& labels = rule.labels();
    for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
      const auto found = build[node].children.find(*it);
      if (found != build[node].children.end()) {
        node = found->second;
      } else {
        const auto index = static_cast<std::uint32_t>(build.size());
        build[node].children.emplace(*it, index);
        build.emplace_back();
        node = index;
      }
    }
    std::uint8_t bit = 0;
    switch (rule.kind()) {
      case RuleKind::kNormal: bit = kHasNormal; break;
      case RuleKind::kWildcard: bit = kHasWildcard; break;
      case RuleKind::kException: bit = kHasException; break;
    }
    build[node].flags |= bit;
    if (rule.section() == Section::kPrivate) {
      build[node].sections |= bit;
    } else {
      build[node].sections &= static_cast<std::uint8_t>(~bit);
    }
  }

  // Pass 2: flatten into the arena. Node indices are reused verbatim;
  // children become contiguous sorted ranges; labels are deduplicated into
  // the pool.
  std::unordered_map<std::string_view, std::uint32_t> pool_offsets;
  pool_offsets.reserve(build.size());
  const auto intern = [&](std::string_view label) {
    const auto found = pool_offsets.find(label);
    if (found != pool_offsets.end()) return found->second;
    const auto offset = static_cast<std::uint32_t>(pool_.size());
    pool_.append(label);
    pool_offsets.emplace(label, offset);
    return offset;
  };

  nodes_.resize(build.size());
  std::size_t total_children = 0;
  for (const BuildNode& b : build) total_children += b.children.size();
  children_.reserve(total_children);
  child_hashes_.reserve(total_children);

  struct PendingChild {
    std::uint32_t hash;
    std::string_view label;
    std::uint32_t node;
  };
  std::vector<PendingChild> pending;
  for (std::uint32_t i = 0; i < build.size(); ++i) {
    pending.clear();
    for (const auto& [label, child] : build[i].children) {
      pending.push_back({hash_label(label), label, child});
    }
    std::sort(pending.begin(), pending.end(), [](const PendingChild& a, const PendingChild& b) {
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.label < b.label;
    });

    Node& node = nodes_[i];
    node.children_begin = static_cast<std::uint32_t>(children_.size());
    for (const PendingChild& p : pending) {
      child_hashes_.push_back(p.hash);
      children_.push_back({intern(p.label), static_cast<std::uint32_t>(p.label.size()), p.node});
    }
    node.children_end = static_cast<std::uint32_t>(children_.size());
    node.flags = build[i].flags;
    node.sections = build[i].sections;
  }
}

std::uint32_t CompiledMatcher::find_child(std::uint32_t node, std::string_view label,
                                          std::uint32_t h) const noexcept {
  const Node& n = nodes_[node];
  // The binary search runs over the dense hash array — the root node holds
  // every TLD, and scanning 4-byte keys keeps that search in ~3 cache
  // lines. Child records are only touched on a hash hit.
  const std::uint32_t* const first = child_hashes_.data() + n.children_begin;
  const std::uint32_t* const last = child_hashes_.data() + n.children_end;
  const std::uint32_t* it = std::lower_bound(first, last, h);
  for (; it != last && *it == h; ++it) {
    const Child& c = children_[static_cast<std::size_t>(it - child_hashes_.data())];
    if (std::string_view(pool_.data() + c.label_offset, c.label_len) == label) {
      return c.node;
    }
  }
  return kNoChild;
}

MatchView CompiledMatcher::match_view(std::string_view host) const noexcept {
  MatchView out;
  if (!host.empty() && host.back() == '.') host.remove_suffix(1);
  // Empty hosts and hosts whose rightmost label is empty ("", ".", "a..")
  // have no suffix at all — same degenerate-input contract as List::match.
  if (host.empty() || host.back() == '.') return out;

  // One right-to-left scan: trie-walk while alive, recording where each
  // suffix of the host starts. starts[d] = offset of the d-rightmost-labels
  // suffix. Once the walk dies the prevailing rule is fixed, so scanning
  // stops as soon as the registrable domain's start is known — long hosts
  // under shallow rules never pay for their full label count.
  std::size_t starts[kMaxDepth];
  constexpr std::size_t npos = std::string_view::npos;

  std::size_t best_len = 1;  // the implicit "*" rule
  bool explicit_rule = false;
  Section best_section = Section::kIcann;
  RuleKind best_kind = RuleKind::kNormal;
  std::size_t exception_depth = 0;

  std::uint32_t node = 0;
  bool walking = true;
  std::size_t depth = 0;
  std::size_t label_end = host.size();

  while (true) {
    // One backward pass per label: find its start and FNV-hash its bytes
    // (reverse order, matching hash_label) in the same scan.
    std::uint32_t h = 2166136261u;
    std::size_t pos = label_end;
    while (pos > 0 && host[pos - 1] != '.') {
      h ^= static_cast<unsigned char>(host[pos - 1]);
      h *= 16777619u;
      --pos;
    }
    const std::size_t label_start = pos;
    const std::size_t dot = pos == 0 ? npos : pos - 1;
    ++depth;
    if (depth >= kMaxDepth) {  // unreachable for DNS-shaped hosts
      --depth;
      break;
    }
    starts[depth] = label_start;

    if (walking) {
      const std::string_view label = host.substr(label_start, label_end - label_start);
      if (label.empty()) {
        walking = false;  // malformed host ("a..b"); the walk stops here
      } else {
        // A wildcard on the current node covers this label, whatever it is.
        if ((nodes_[node].flags & kHasWildcard) && depth >= best_len) {
          best_len = depth;
          best_section = section_of(node, kHasWildcard);
          best_kind = RuleKind::kWildcard;
          explicit_rule = true;
        }
        const std::uint32_t child = find_child(node, label, h);
        if (child == kNoChild) {
          walking = false;
        } else {
          node = child;
          if ((nodes_[node].flags & kHasNormal) && depth >= best_len) {
            best_len = depth;
            best_section = section_of(node, kHasNormal);
            best_kind = RuleKind::kNormal;
            explicit_rule = true;
          }
          if (nodes_[node].flags & kHasException) {
            // Exception prevails over everything; its public suffix drops
            // the leftmost (deepest) label of the rule.
            exception_depth = depth;
            best_section = section_of(node, kHasException);
            explicit_rule = true;
          }
        }
      }
    }
    if (!walking) {
      const std::size_t needed = (exception_depth > 0 ? exception_depth - 1 : best_len) + 1;
      if (depth >= needed) break;
    }
    if (dot == npos) break;
    label_end = dot;
  }

  const std::size_t ps_len = exception_depth > 0 ? exception_depth - 1 : best_len;
  out.public_suffix = ps_len == 0 ? std::string_view{} : host.substr(starts[ps_len]);
  out.registrable_domain = depth > ps_len ? host.substr(starts[ps_len + 1]) : std::string_view{};
  out.matched_explicit_rule = explicit_rule;
  out.section = best_section;
  out.rule_labels = ps_len;
  if (explicit_rule) {
    if (exception_depth > 0) {
      out.rule_kind = RuleKind::kException;
      out.rule_span = host.substr(starts[exception_depth]);
    } else if (best_kind == RuleKind::kWildcard) {
      out.rule_kind = RuleKind::kWildcard;
      // The wildcard rule's stored labels are the suffix minus its leftmost
      // (the '*') label.
      out.rule_span = best_len > 1 ? host.substr(starts[best_len - 1]) : std::string_view{};
    } else {
      out.rule_kind = RuleKind::kNormal;
      out.rule_span = out.public_suffix;
    }
  }
  return out;
}

}  // namespace psl
