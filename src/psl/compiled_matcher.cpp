#include "psl/psl/compiled_matcher.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "psl/psl/detail/match_walk.hpp"

namespace psl {

CompiledMatcher::CompiledMatcher(const List& list) {
  // Pass 1: a throwaway pointer-free trie with map children, inserted in
  // rules() order so duplicate (labels, kind) rules resolve sections the
  // same way List::insert does (last insertion wins).
  struct BuildNode {
    std::map<std::string, std::uint32_t, std::less<>> children;
    std::uint8_t flags = 0;
    std::uint8_t sections = 0;
  };
  std::vector<BuildNode> build(1);

  for (const Rule& rule : list.rules()) {
    std::uint32_t node = 0;
    const auto& labels = rule.labels();
    for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
      const auto found = build[node].children.find(*it);
      if (found != build[node].children.end()) {
        node = found->second;
      } else {
        const auto index = static_cast<std::uint32_t>(build.size());
        build[node].children.emplace(*it, index);
        build.emplace_back();
        node = index;
      }
    }
    std::uint8_t bit = 0;
    switch (rule.kind()) {
      case RuleKind::kNormal: bit = kHasNormal; break;
      case RuleKind::kWildcard: bit = kHasWildcard; break;
      case RuleKind::kException: bit = kHasException; break;
    }
    build[node].flags |= bit;
    if (rule.section() == Section::kPrivate) {
      build[node].sections |= bit;
    } else {
      build[node].sections &= static_cast<std::uint8_t>(~bit);
    }
  }

  // Pass 2: flatten into the arena. Node indices are reused verbatim;
  // children become contiguous sorted ranges; labels are deduplicated into
  // the pool.
  std::unordered_map<std::string_view, std::uint32_t> pool_offsets;
  pool_offsets.reserve(build.size());
  const auto intern = [&](std::string_view label) {
    const auto found = pool_offsets.find(label);
    if (found != pool_offsets.end()) return found->second;
    const auto offset = static_cast<std::uint32_t>(owned_pool_.size());
    owned_pool_.insert(owned_pool_.end(), label.begin(), label.end());
    // The key views into the build trie's map keys, which outlive this pass.
    pool_offsets.emplace(label, offset);
    return offset;
  };

  owned_nodes_.resize(build.size());
  std::size_t total_children = 0;
  for (const BuildNode& b : build) total_children += b.children.size();
  owned_children_.reserve(total_children);
  owned_hashes_.reserve(total_children);

  struct PendingChild {
    std::uint32_t hash;
    std::string_view label;
    std::uint32_t node;
  };
  std::vector<PendingChild> pending;
  for (std::uint32_t i = 0; i < build.size(); ++i) {
    pending.clear();
    for (const auto& [label, child] : build[i].children) {
      pending.push_back({detail::fnv1a_reverse(label), label, child});
    }
    std::sort(pending.begin(), pending.end(), [](const PendingChild& a, const PendingChild& b) {
      if (a.hash != b.hash) return a.hash < b.hash;
      return a.label < b.label;
    });

    Node& node = owned_nodes_[i];
    node.children_begin = static_cast<std::uint32_t>(owned_children_.size());
    for (const PendingChild& p : pending) {
      owned_hashes_.push_back(p.hash);
      owned_children_.push_back({intern(p.label), static_cast<std::uint32_t>(p.label.size()), p.node});
    }
    node.children_end = static_cast<std::uint32_t>(owned_children_.size());
    node.flags = build[i].flags;
    node.sections = build[i].sections;
  }

  adopt_owned();
}

void CompiledMatcher::adopt_owned() noexcept {
  nodes_ = owned_nodes_;
  child_hashes_ = owned_hashes_;
  children_ = owned_children_;
  pool_ = std::string_view(owned_pool_.data(), owned_pool_.size());
}

CompiledMatcher::CompiledMatcher(const CompiledMatcher& other)
    : owned_nodes_(other.owned_nodes_),
      owned_hashes_(other.owned_hashes_),
      owned_children_(other.owned_children_),
      owned_pool_(other.owned_pool_),
      retain_(other.retain_) {
  if (!owned_nodes_.empty()) {
    adopt_owned();
  } else {
    // Snapshot-backed: the spans alias the (shared or borrowed) buffer.
    nodes_ = other.nodes_;
    child_hashes_ = other.child_hashes_;
    children_ = other.children_;
    pool_ = other.pool_;
  }
}

CompiledMatcher& CompiledMatcher::operator=(const CompiledMatcher& other) {
  if (this != &other) *this = CompiledMatcher(other);
  return *this;
}

CompiledMatcher::CompiledMatcher(CompiledMatcher&& other) noexcept
    : owned_nodes_(std::move(other.owned_nodes_)),
      owned_hashes_(std::move(other.owned_hashes_)),
      owned_children_(std::move(other.owned_children_)),
      owned_pool_(std::move(other.owned_pool_)),
      retain_(std::move(other.retain_)),
      nodes_(other.nodes_),
      child_hashes_(other.child_hashes_),
      children_(other.children_),
      pool_(other.pool_) {
  // Vector moves transfer the heap buffers, so the copied spans still point
  // at live storage either way. Leave the source empty-but-valid.
  other.nodes_ = {};
  other.child_hashes_ = {};
  other.children_ = {};
  other.pool_ = {};
}

CompiledMatcher& CompiledMatcher::operator=(CompiledMatcher&& other) noexcept {
  if (this != &other) {
    owned_nodes_ = std::move(other.owned_nodes_);
    owned_hashes_ = std::move(other.owned_hashes_);
    owned_children_ = std::move(other.owned_children_);
    owned_pool_ = std::move(other.owned_pool_);
    retain_ = std::move(other.retain_);
    nodes_ = other.nodes_;
    child_hashes_ = other.child_hashes_;
    children_ = other.children_;
    pool_ = other.pool_;
    other.nodes_ = {};
    other.child_hashes_ = {};
    other.children_ = {};
    other.pool_ = {};
  }
  return *this;
}

std::uint32_t CompiledMatcher::find_child(std::uint32_t node, std::string_view label,
                                          std::uint32_t h) const noexcept {
  const Node& n = nodes_[node];
  // The binary search runs over the dense hash array — the root node holds
  // every TLD, and scanning 4-byte keys keeps that search in ~3 cache
  // lines. Child records are only touched on a hash hit.
  const std::uint32_t* const first = child_hashes_.data() + n.children_begin;
  const std::uint32_t* const last = child_hashes_.data() + n.children_end;
  const std::uint32_t* it = std::lower_bound(first, last, h);
  for (; it != last && *it == h; ++it) {
    const Child& c = children_[static_cast<std::size_t>(it - child_hashes_.data())];
    if (std::string_view(pool_.data() + c.label_offset, c.label_len) == label) {
      return c.node;
    }
  }
  return kNoChild;
}

/// Shared-walk adapter over the arena (see psl/detail/match_walk.hpp).
struct CompiledMatcher::Cursor {
  const CompiledMatcher* m;
  std::uint32_t node = 0;

  bool descend(std::string_view label, std::uint32_t hash) noexcept {
    const std::uint32_t child = m->find_child(node, label, hash);
    if (child == kNoChild) return false;
    node = child;
    return true;
  }
  bool has_wildcard() const noexcept { return m->nodes_[node].flags & kHasWildcard; }
  Section wildcard_section() const noexcept { return m->section_of(node, kHasWildcard); }
  bool has_normal() const noexcept { return m->nodes_[node].flags & kHasNormal; }
  Section normal_section() const noexcept { return m->section_of(node, kHasNormal); }
  bool has_exception() const noexcept { return m->nodes_[node].flags & kHasException; }
  Section exception_section() const noexcept { return m->section_of(node, kHasException); }
};

MatchView CompiledMatcher::match_view(std::string_view host) const noexcept {
  return detail::match_walk(Cursor{this}, host);
}

namespace {

/// Hosts interleaved per batch round. Each in-flight walk carries a
/// kMaxMatchDepth offset stack, so this bounds the driver's stack frame
/// (16 x ~2 KiB); it also caps the useful prefetch distance — by the time a
/// round returns to host i, its prefetched child range has had 15 other
/// binary searches' worth of time to arrive.
constexpr std::size_t kBatchInterleave = 16;

}  // namespace

std::size_t CompiledMatcher::match_batch(std::span<const std::string_view> hosts,
                                         std::span<MatchView> out) const noexcept {
  const std::size_t n = std::min(hosts.size(), out.size());
  detail::MatchWalkState<Cursor> walks[kBatchInterleave];

  const auto prefetch_children = [this](std::uint32_t node) {
    const Node& nd = nodes_[node];
    if (nd.children_begin == nd.children_end) return;
    const std::uint32_t* const base = child_hashes_.data() + nd.children_begin;
    const std::size_t len = nd.children_end - nd.children_begin;
    // The binary search's first probes: the range midpoint, then one line at
    // each end. 16 hashes share a cache line, so three touches cover every
    // range the real list produces below the root.
    __builtin_prefetch(base + len / 2, 0, 1);
    __builtin_prefetch(base, 0, 1);
    __builtin_prefetch(base + (len - 1), 0, 1);
  };

  for (std::size_t batch_start = 0; batch_start < n; batch_start += kBatchInterleave) {
    const std::size_t batch = std::min(kBatchInterleave, n - batch_start);
    std::uint32_t live = 0;

    // Up-front pass: every host's rightmost label is scanned and hashed
    // before any walk consumes trie lines, and the root's child ranges are
    // pulled in for round one.
    for (std::size_t i = 0; i < batch; ++i) {
      if (walks[i].init(Cursor{this}, hosts[batch_start + i])) {
        live |= 1u << i;
        prefetch_children(0);
      } else {
        out[batch_start + i] = walks[i].finish();  // degenerate: empty view
      }
    }

    // Interleaved rounds: advance each live walk one label, then prefetch
    // the child range its NEXT descend will binary-search while the other
    // walks run. Iterating the live mask bit-by-bit keeps late rounds (most
    // hosts done, a few deep ones still walking) proportional to the
    // survivors, not the batch width.
    while (live != 0) {
      for (std::uint32_t round = live; round != 0; round &= round - 1) {
        const auto i = static_cast<std::size_t>(__builtin_ctz(round));
        if (walks[i].step()) {
          prefetch_children(walks[i].cursor.node);
        } else {
          live &= ~(1u << i);
          out[batch_start + i] = walks[i].finish();
        }
      }
    }
  }
  return n;
}

std::size_t CompiledMatcher::reg_domain_batch(std::span<const std::string_view> hosts,
                                              std::span<RegDomainKey> out) const noexcept {
  const std::size_t n = std::min(hosts.size(), out.size());
  MatchView views[kBatchInterleave];
  for (std::size_t base = 0; base < n; base += kBatchInterleave) {
    const std::size_t m = std::min(kBatchInterleave, n - base);
    match_batch(hosts.subspan(base, m), {views, m});
    for (std::size_t i = 0; i < m; ++i) {
      out[base + i] = RegDomainKey::of(hosts[base + i], views[i]);
    }
  }
  return n;
}

}  // namespace psl
