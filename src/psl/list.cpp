#include "psl/psl/list.hpp"

#include <algorithm>
#include <cassert>

#include "psl/psl/detail/match_walk.hpp"
#include "psl/util/strings.hpp"

namespace psl {

List::List() : root_(std::make_unique<TrieNode>()) {}

namespace {

constexpr std::string_view kIcannBegin = "===BEGIN ICANN DOMAINS===";
constexpr std::string_view kIcannEnd = "===END ICANN DOMAINS===";
constexpr std::string_view kPrivateBegin = "===BEGIN PRIVATE DOMAINS===";
constexpr std::string_view kPrivateEnd = "===END PRIVATE DOMAINS===";

}  // namespace

util::Result<List> List::parse(std::string_view file_contents) {
  std::vector<Rule> rules;
  Section section = Section::kIcann;

  std::size_t line_no = 0;
  for (std::string_view line : util::split(file_contents, '\n')) {
    ++line_no;
    std::string_view s = util::trim(line);
    if (s.empty()) continue;

    if (util::starts_with(s, "//")) {
      const std::string_view comment = util::trim(s.substr(2));
      if (comment == kIcannBegin || comment == kIcannEnd || comment == kPrivateEnd) {
        section = Section::kIcann;
      } else if (comment == kPrivateBegin) {
        section = Section::kPrivate;
      }
      continue;
    }

    // The published format terminates a rule at the first whitespace.
    const std::size_t space = s.find_first_of(" \t");
    if (space != std::string_view::npos) s = s.substr(0, space);

    auto rule = Rule::parse(s, section);
    if (!rule) {
      return util::make_error(rule.error().code,
                              "line " + std::to_string(line_no) + ": " + rule.error().message);
    }
    rules.push_back(*std::move(rule));
  }

  return from_rules(std::move(rules));
}

List List::from_rules(std::vector<Rule> rules) {
  List list;
  // De-duplicate identical rules (same kind + labels + section).
  std::sort(rules.begin(), rules.end(), [](const Rule& a, const Rule& b) {
    if (a.labels() != b.labels()) return a.labels() < b.labels();
    if (a.kind() != b.kind()) return a.kind() < b.kind();
    return a.section() < b.section();
  });
  rules.erase(std::unique(rules.begin(), rules.end()), rules.end());

  list.rules_ = std::move(rules);
  for (const Rule& rule : list.rules_) list.insert(rule);
  return list;
}

void List::insert(const Rule& rule) {
  TrieNode* node = root_.get();
  const auto& labels = rule.labels();
  // Walk labels right-to-left ("co.uk" inserts uk -> co).
  for (auto it = labels.rbegin(); it != labels.rend(); ++it) {
    auto child = node->children.find(*it);
    if (child == node->children.end()) {
      child = node->children.emplace(*it, std::make_unique<TrieNode>()).first;
    }
    node = child->second.get();
  }
  switch (rule.kind()) {
    case RuleKind::kNormal:
      node->has_normal = true;
      node->normal_section = rule.section();
      break;
    case RuleKind::kWildcard:
      // "*.ck" is stored on the node for "ck": any single extra label matches.
      node->has_wildcard = true;
      node->wildcard_section = rule.section();
      break;
    case RuleKind::kException:
      node->has_exception = true;
      node->exception_section = rule.section();
      break;
  }
}

/// Shared-walk adapter over the pointer trie (see psl/detail/match_walk.hpp).
struct List::Cursor {
  const TrieNode* node;

  bool descend(std::string_view label, std::uint32_t) noexcept {
    const auto child = node->children.find(label);
    if (child == node->children.end()) return false;
    node = child->second.get();
    return true;
  }
  bool has_wildcard() const noexcept { return node->has_wildcard; }
  Section wildcard_section() const noexcept { return node->wildcard_section; }
  bool has_normal() const noexcept { return node->has_normal; }
  Section normal_section() const noexcept { return node->normal_section; }
  bool has_exception() const noexcept { return node->has_exception; }
  Section exception_section() const noexcept { return node->exception_section; }
};

MatchView List::match_view(std::string_view host) const noexcept {
  return detail::match_walk(Cursor{root_.get()}, host);
}

std::string List::public_suffix(std::string_view host) const {
  return std::string(match_view(host).public_suffix);
}

std::optional<std::string> List::registrable_domain(std::string_view host) const {
  const MatchView m = match_view(host);
  if (m.registrable_domain.empty()) return std::nullopt;
  return std::string(m.registrable_domain);
}

bool List::is_public_suffix(std::string_view host) const {
  // match_view() already tolerates one trailing dot; stripping here too
  // would turn the degenerate "a.." into "a". Degenerate hosts match
  // nothing at all — they are not suffixes.
  const MatchView m = match_view(host);
  return !m.public_suffix.empty() && m.registrable_domain.empty();
}

bool List::same_site(std::string_view a, std::string_view b) const {
  return psl::same_site(*this, a, b);
}

void List::add_rule(Rule rule) {
  insert(rule);
  rules_.push_back(std::move(rule));
}

bool List::remove_rule(const Rule& rule_ref) {
  const auto it = std::find(rules_.begin(), rules_.end(), rule_ref);
  if (it == rules_.end()) return false;
  // `rule_ref` may alias an element of rules_ (callers often pass
  // `list.rules()[i]` straight back in); copy before erase shifts it.
  const Rule rule = *it;
  rules_.erase(it);

  // A duplicate-kind rule in the *other* section may survive the removal
  // ("foo.com" in both ICANN and PRIVATE); the trie node must then keep its
  // flag and take that rule's section. Mirror insert()'s last-write-wins:
  // the prevailing duplicate is the last one in rules_ order.
  const Rule* survivor = nullptr;
  for (const Rule& r : rules_) {
    if (r.kind() == rule.kind() && r.labels() == rule.labels()) survivor = &r;
  }

  // Update the rule's trie node. Child nodes are left in place (harmless:
  // nodes without flags never influence matching).
  TrieNode* node = root_.get();
  const auto& labels = rule.labels();
  for (auto label_it = labels.rbegin(); label_it != labels.rend(); ++label_it) {
    const auto child = node->children.find(*label_it);
    if (child == node->children.end()) return false;  // unreachable given the precondition
    node = child->second.get();
  }
  const bool keep = survivor != nullptr;
  // When the flag clears, the stored section resets to its default rather
  // than leaking the removed rule's section into a future re-add.
  const Section section = keep ? survivor->section() : Section::kIcann;
  switch (rule.kind()) {
    case RuleKind::kNormal:
      node->has_normal = keep;
      node->normal_section = section;
      break;
    case RuleKind::kWildcard:
      node->has_wildcard = keep;
      node->wildcard_section = section;
      break;
    case RuleKind::kException:
      node->has_exception = keep;
      node->exception_section = section;
      break;
  }
  return true;
}

std::pair<std::vector<Rule>, std::vector<Rule>> List::diff(const List& newer) const {
  auto key = [](const Rule& r) { return std::make_tuple(r.labels(), r.kind(), r.section()); };
  auto less = [&](const Rule& a, const Rule& b) { return key(a) < key(b); };

  std::vector<Rule> old_sorted = rules_;
  std::vector<Rule> new_sorted = newer.rules_;
  std::sort(old_sorted.begin(), old_sorted.end(), less);
  std::sort(new_sorted.begin(), new_sorted.end(), less);

  std::vector<Rule> added, removed;
  std::set_difference(new_sorted.begin(), new_sorted.end(), old_sorted.begin(), old_sorted.end(),
                      std::back_inserter(added), less);
  std::set_difference(old_sorted.begin(), old_sorted.end(), new_sorted.begin(), new_sorted.end(),
                      std::back_inserter(removed), less);
  return {std::move(added), std::move(removed)};
}

std::map<std::size_t, std::size_t> List::component_histogram() const {
  std::map<std::size_t, std::size_t> out;
  for (const Rule& r : rules_) ++out[r.match_label_count()];
  return out;
}

std::string List::to_file() const {
  std::vector<const Rule*> icann, priv;
  for (const Rule& r : rules_) {
    (r.section() == Section::kIcann ? icann : priv).push_back(&r);
  }
  auto text_less = [](const Rule* a, const Rule* b) {
    return a->to_string() < b->to_string();
  };
  std::sort(icann.begin(), icann.end(), text_less);
  std::sort(priv.begin(), priv.end(), text_less);

  std::string out;
  out += "// This file is generated by psl-harms; format: publicsuffix.org/list\n";
  out += "// ===BEGIN ICANN DOMAINS===\n";
  for (const Rule* r : icann) {
    out += r->to_string();
    out.push_back('\n');
  }
  out += "// ===END ICANN DOMAINS===\n";
  out += "// ===BEGIN PRIVATE DOMAINS===\n";
  for (const Rule* r : priv) {
    out += r->to_string();
    out.push_back('\n');
  }
  out += "// ===END PRIVATE DOMAINS===\n";
  return out;
}

}  // namespace psl
