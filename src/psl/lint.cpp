#include "psl/psl/lint.hpp"

#include <map>
#include <set>

#include "psl/util/strings.hpp"

namespace psl {

std::string_view to_string(LintCode code) noexcept {
  switch (code) {
    case LintCode::kExceptionWithoutWildcard: return "exception-without-wildcard";
    case LintCode::kRedundantRule: return "redundant-rule";
    case LintCode::kWildcardParentMissing: return "wildcard-parent-missing";
    case LintCode::kDuplicateRuleText: return "duplicate-rule-text";
    case LintCode::kExcessiveDepth: return "excessive-depth";
  }
  return "unknown";
}

std::vector<LintFinding> lint(const List& list) {
  std::vector<LintFinding> findings;

  // Index rule label-strings by kind.
  std::set<std::string> normals, wildcards, exceptions;
  std::map<std::string, int> text_counts;
  for (const Rule& rule : list.rules()) {
    const std::string labels = util::join(rule.labels(), ".");
    switch (rule.kind()) {
      case RuleKind::kNormal: normals.insert(labels); break;
      case RuleKind::kWildcard: wildcards.insert(labels); break;
      case RuleKind::kException: exceptions.insert(labels); break;
    }
    ++text_counts[rule.to_string()];
  }

  for (const Rule& rule : list.rules()) {
    const std::string labels = util::join(rule.labels(), ".");
    const std::string text = rule.to_string();

    if (rule.match_label_count() > 5) {
      findings.push_back({LintSeverity::kWarning, LintCode::kExcessiveDepth, text,
                          "rules deeper than 5 labels are almost always typos"});
    }

    switch (rule.kind()) {
      case RuleKind::kException: {
        // "!www.ck" carves out of "*.ck": the parent labels must carry a
        // wildcard, otherwise the exception changes nothing useful.
        const std::size_t dot = labels.find('.');
        const std::string parent = dot == std::string::npos ? "" : labels.substr(dot + 1);
        if (!wildcards.contains(parent)) {
          findings.push_back({LintSeverity::kError, LintCode::kExceptionWithoutWildcard, text,
                              "no '*." + parent + "' wildcard for this exception to carve"});
        }
        break;
      }
      case RuleKind::kWildcard: {
        // "*.b" almost always accompanies a rule for "b" itself; without
        // one, "b" is only a suffix via the implicit star.
        if (!normals.contains(labels)) {
          findings.push_back({LintSeverity::kWarning, LintCode::kWildcardParentMissing, text,
                              "no plain rule for '" + labels + "' alongside the wildcard"});
        }
        break;
      }
      case RuleKind::kNormal: {
        // "a.b" next to "*.b" is redundant: the wildcard already makes
        // every child of b a suffix. (Not an error — the published list
        // contains a few for documentation value.)
        const std::size_t dot = labels.find('.');
        if (dot != std::string::npos) {
          const std::string parent = labels.substr(dot + 1);
          if (wildcards.contains(parent)) {
            findings.push_back({LintSeverity::kWarning, LintCode::kRedundantRule, text,
                                "covered by '*." + parent + "'"});
          }
        }
        break;
      }
    }
  }

  for (const auto& [text, count] : text_counts) {
    if (count > 1) {
      findings.push_back({LintSeverity::kWarning, LintCode::kDuplicateRuleText, text,
                          "appears in both the ICANN and PRIVATE sections"});
    }
  }
  return findings;
}

}  // namespace psl
