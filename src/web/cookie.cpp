#include "psl/web/cookie.hpp"

#include <charconv>

#include "psl/util/strings.hpp"

namespace psl::web {

namespace {

bool valid_cookie_name(std::string_view name) noexcept {
  if (name.empty()) return false;
  for (char c : name) {
    // RFC 6265 token: no CTLs, separators, or whitespace.
    const bool bad = c <= ' ' || c == 0x7f || c == '(' || c == ')' || c == '<' || c == '>' ||
                     c == '@' || c == ',' || c == ';' || c == ':' || c == '\\' || c == '"' ||
                     c == '/' || c == '[' || c == ']' || c == '?' || c == '=' || c == '{' ||
                     c == '}';
    if (bad) return false;
  }
  return true;
}

}  // namespace

util::Result<Cookie> parse_set_cookie(std::string_view header) {
  const auto parts = util::split(header, ';');
  if (parts.empty()) {
    return util::make_error("cookie.empty", "empty Set-Cookie header");
  }

  // First part: name=value.
  const std::string_view pair = util::trim(parts[0]);
  const std::size_t eq = pair.find('=');
  if (eq == std::string_view::npos) {
    return util::make_error("cookie.no-equals", "missing '=' in cookie pair");
  }
  Cookie cookie;
  cookie.name = std::string(util::trim(pair.substr(0, eq)));
  cookie.value = std::string(util::trim(pair.substr(eq + 1)));
  if (!valid_cookie_name(cookie.name)) {
    return util::make_error("cookie.bad-name", "invalid cookie name token");
  }

  for (std::size_t i = 1; i < parts.size(); ++i) {
    const std::string_view attr = util::trim(parts[i]);
    const std::size_t attr_eq = attr.find('=');
    const std::string key =
        util::to_lower(attr_eq == std::string_view::npos ? attr : attr.substr(0, attr_eq));
    const std::string_view value =
        attr_eq == std::string_view::npos ? std::string_view{}
                                          : util::trim(attr.substr(attr_eq + 1));

    if (key == "domain") {
      std::string_view d = value;
      if (!d.empty() && d.front() == '.') d.remove_prefix(1);
      if (d.empty()) {
        return util::make_error("cookie.bad-domain", "empty Domain attribute");
      }
      cookie.domain = util::to_lower(d);
      cookie.host_only = false;
    } else if (key == "path") {
      if (!value.empty() && value.front() == '/') cookie.path = std::string(value);
    } else if (key == "secure") {
      cookie.secure = true;
    } else if (key == "httponly") {
      cookie.http_only = true;
    } else if (key == "max-age") {
      std::int64_t seconds = 0;
      const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), seconds);
      if (ec == std::errc{} && ptr == value.data() + value.size()) {
        cookie.max_age = seconds;
      }
      // Malformed Max-Age is ignored per the RFC's lenient attribute rules.
    }
    // Unknown attributes: ignored.
  }
  return cookie;
}

bool domain_match(std::string_view host, std::string_view domain) noexcept {
  return util::host_matches_domain(host, domain);
}

bool path_match(std::string_view request_path, std::string_view cookie_path) noexcept {
  if (request_path == cookie_path) return true;
  if (!util::starts_with(request_path, cookie_path)) return false;
  if (!cookie_path.empty() && cookie_path.back() == '/') return true;
  return request_path.size() > cookie_path.size() && request_path[cookie_path.size()] == '/';
}

std::string default_path(std::string_view request_path) {
  if (request_path.empty() || request_path.front() != '/') return "/";
  const std::size_t last_slash = request_path.rfind('/');
  if (last_slash == 0) return "/";
  return std::string(request_path.substr(0, last_slash));
}

}  // namespace psl::web
