#include "psl/web/autofill.hpp"

#include <algorithm>

namespace psl::web {

void AutofillMatcher::store(std::string host, std::string username, std::string password) {
  credentials_.push_back(
      Credential{std::move(host), std::move(username), std::move(password)});
}

std::vector<const Credential*> AutofillMatcher::suggestions(std::string_view host,
                                                            const List& list) const {
  std::vector<const Credential*> out;
  for (const Credential& c : credentials_) {
    if (list.same_site(host, c.saved_host)) out.push_back(&c);
  }
  return out;
}

std::vector<const Credential*> AutofillMatcher::leaked_suggestions(
    std::string_view host, const List& stale, const List& current) const {
  std::vector<const Credential*> out;
  for (const Credential& c : credentials_) {
    if (stale.same_site(host, c.saved_host) && !current.same_site(host, c.saved_host)) {
      out.push_back(&c);
    }
  }
  return out;
}

}  // namespace psl::web
