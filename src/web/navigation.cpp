#include "psl/web/navigation.hpp"

#include "psl/url/host.hpp"
#include "psl/util/strings.hpp"

namespace psl::web {

std::string StoragePartitioner::partition_key(std::string_view top_level_host) const {
  std::string_view host = top_level_host;
  if (!host.empty() && host.back() == '.') host.remove_suffix(1);
  if (url::looks_like_ip_literal(host)) return std::string(host);
  const auto rd = list_->registrable_domain(host);
  return rd ? *rd : std::string(host);
}

void StoragePartitioner::set_item(std::string_view top_level_host, std::string key,
                                  std::string value) {
  partitions_[partition_key(top_level_host)][std::move(key)] = std::move(value);
}

std::optional<std::string> StoragePartitioner::get_item(std::string_view top_level_host,
                                                        std::string_view key) const {
  const auto partition = partitions_.find(partition_key(top_level_host));
  if (partition == partitions_.end()) return std::nullopt;
  const auto item = partition->second.find(key);
  if (item == partition->second.end()) return std::nullopt;
  return item->second;
}

namespace {

std::string origin_of(const url::Url& u) {
  std::string out = u.scheme() + "://" + u.host().name();
  if (u.port() && *u.port() != url::default_port(u.scheme())) {
    out += ":" + std::to_string(*u.port());
  }
  return out;
}

std::string full_url_without_fragment(const url::Url& u) {
  std::string out = origin_of(u) + u.path();
  if (!u.query().empty()) out += "?" + u.query();
  return out;
}

bool same_origin(const url::Url& a, const url::Url& b) {
  return a.scheme() == b.scheme() && a.host().name() == b.host().name() &&
         a.effective_port() == b.effective_port();
}

}  // namespace

std::string_view to_string(DocumentDomainOutcome outcome) noexcept {
  switch (outcome) {
    case DocumentDomainOutcome::kAllowed: return "allowed";
    case DocumentDomainOutcome::kRejectedNotSuffix: return "rejected-not-suffix";
    case DocumentDomainOutcome::kRejectedPublicSuffix: return "rejected-public-suffix";
    case DocumentDomainOutcome::kRejectedIp: return "rejected-ip";
  }
  return "unknown";
}

DocumentDomainOutcome check_document_domain(const List& list, std::string_view host,
                                            std::string_view requested) {
  if (!host.empty() && host.back() == '.') host.remove_suffix(1);
  if (!requested.empty() && requested.back() == '.') requested.remove_suffix(1);

  if (url::looks_like_ip_literal(host)) {
    return DocumentDomainOutcome::kRejectedIp;
  }
  if (!util::host_matches_domain(host, requested)) {
    return DocumentDomainOutcome::kRejectedNotSuffix;
  }
  // HTML spec: the new value must itself have a registrable domain (it may
  // BE the registrable domain, but never a public suffix).
  if (list.is_public_suffix(requested)) {
    return DocumentDomainOutcome::kRejectedPublicSuffix;
  }
  return DocumentDomainOutcome::kAllowed;
}

std::string referrer_for(const List& list, const url::Url& from, const url::Url& to,
                         ReferrerPolicy policy) {
  const bool downgrade = from.is_secure() && !to.is_secure();

  switch (policy) {
    case ReferrerPolicy::kNoReferrer:
      return {};

    case ReferrerPolicy::kSameOriginOnly:
      return same_origin(from, to) ? full_url_without_fragment(from) : std::string{};

    case ReferrerPolicy::kStrictOriginWhenCrossOrigin:
      if (downgrade) return {};
      if (same_origin(from, to)) return full_url_without_fragment(from);
      return origin_of(from);

    case ReferrerPolicy::kSameSiteFullUrl: {
      if (downgrade) return {};
      const bool cross_ip =
          from.host().is_ip() || to.host().is_ip()
              ? from.host().name() != to.host().name()
              : false;
      const bool same_site =
          !cross_ip && (from.host().is_ip()
                            ? from.host().name() == to.host().name()
                            : list.same_site(from.host().name(), to.host().name()));
      return same_site ? full_url_without_fragment(from) : origin_of(from);
    }
  }
  return {};
}

}  // namespace psl::web
