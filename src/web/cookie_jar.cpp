#include "psl/web/cookie_jar.hpp"

#include <algorithm>

namespace psl::web {

std::string_view to_string(SetCookieOutcome outcome) noexcept {
  switch (outcome) {
    case SetCookieOutcome::kStored: return "stored";
    case SetCookieOutcome::kRejectedSupercookie: return "rejected-supercookie";
    case SetCookieOutcome::kRejectedForeign: return "rejected-foreign";
    case SetCookieOutcome::kRejectedSecure: return "rejected-secure";
    case SetCookieOutcome::kRejectedParse: return "rejected-parse";
  }
  return "unknown";
}

SetCookieOutcome CookieJar::set_from_header(const url::Url& origin,
                                            std::string_view set_cookie, std::int64_t now) {
  auto parsed = parse_set_cookie(set_cookie);
  if (!parsed) return SetCookieOutcome::kRejectedParse;
  Cookie cookie = *std::move(parsed);
  if (cookie.max_age) {
    // RFC 6265: Max-Age <= 0 means "expire immediately" — used to delete.
    cookie.expires_at = now + std::max<std::int64_t>(*cookie.max_age, 0);
  }

  const std::string& host = origin.host().name();

  if (!cookie.host_only) {
    // RFC 6265 5.3 step 5 + the public-suffix carve-out: a Domain attribute
    // naming a public suffix is only allowed when it equals the request
    // host itself, and then the cookie becomes host-only.
    if (origin.host().is_ip()) {
      // IP hosts can never use Domain attributes.
      if (cookie.domain != host) return SetCookieOutcome::kRejectedForeign;
      cookie.host_only = true;
    } else if (list_->is_public_suffix(cookie.domain)) {
      if (cookie.domain == host) {
        cookie.host_only = true;
      } else {
        return SetCookieOutcome::kRejectedSupercookie;
      }
    } else if (!domain_match(host, cookie.domain)) {
      return SetCookieOutcome::kRejectedForeign;
    }
  }
  if (cookie.host_only) cookie.domain = host;

  if (cookie.secure && !origin.is_secure()) {
    return SetCookieOutcome::kRejectedSecure;
  }

  if (cookie.path == "/" ) {
    // An absent Path attribute takes the default path of the request URL.
    // parse_set_cookie leaves "/" for both "absent" and an explicit
    // Path=/ — identical behaviour either way.
    cookie.path = default_path(origin.path());
    if (cookie.path.empty()) cookie.path = "/";
  }

  // Replace an existing cookie with the same (name, domain, path) identity.
  // An already-expired cookie (Max-Age <= 0) acts as a deletion.
  const auto same_identity = [&](const Cookie& c) {
    return c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path &&
           c.host_only == cookie.host_only;
  };
  const auto it = std::find_if(cookies_.begin(), cookies_.end(), same_identity);
  if (cookie.expired(now)) {
    if (it != cookies_.end()) cookies_.erase(it);
    return SetCookieOutcome::kStored;
  }
  if (it != cookies_.end()) {
    *it = std::move(cookie);
  } else {
    cookies_.push_back(std::move(cookie));
  }
  return SetCookieOutcome::kStored;
}

std::vector<const Cookie*> CookieJar::cookies_for(const url::Url& target, bool http_api,
                                                  std::int64_t now) const {
  std::vector<const Cookie*> out;
  const std::string& host = target.host().name();
  for (const Cookie& c : cookies_) {
    if (c.expired(now)) continue;
    if (c.host_only) {
      if (host != c.domain) continue;
    } else if (!domain_match(host, c.domain)) {
      continue;
    }
    if (!path_match(target.path(), c.path)) continue;
    if (c.secure && !target.is_secure()) continue;
    if (c.http_only && !http_api) continue;
    out.push_back(&c);
  }
  return out;
}

std::size_t CookieJar::purge_expired(std::int64_t now) {
  const auto before = cookies_.size();
  std::erase_if(cookies_, [&](const Cookie& c) { return c.expired(now); });
  return before - cookies_.size();
}

}  // namespace psl::web
