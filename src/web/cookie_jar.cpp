#include "psl/web/cookie_jar.hpp"

#include <algorithm>
#include <limits>
#include <string>

namespace psl::web {

std::string_view to_string(SetCookieOutcome outcome) noexcept {
  switch (outcome) {
    case SetCookieOutcome::kStored: return "stored";
    case SetCookieOutcome::kRejectedSupercookie: return "rejected-supercookie";
    case SetCookieOutcome::kRejectedForeign: return "rejected-foreign";
    case SetCookieOutcome::kRejectedSecure: return "rejected-secure";
    case SetCookieOutcome::kRejectedParse: return "rejected-parse";
  }
  return "unknown";
}

void CookieJar::set_metrics(obs::MetricsRegistry* metrics) {
  if (!metrics) {
    outcome_counters_ = {};
    purged_counter_ = nullptr;
    return;
  }
  for (const auto outcome :
       {SetCookieOutcome::kStored, SetCookieOutcome::kRejectedSupercookie,
        SetCookieOutcome::kRejectedForeign, SetCookieOutcome::kRejectedSecure,
        SetCookieOutcome::kRejectedParse}) {
    outcome_counters_[static_cast<std::size_t>(outcome)] =
        &metrics->counter("cookie.set." + std::string(to_string(outcome)));
  }
  purged_counter_ = &metrics->counter("cookie.purged");
}

SetCookieOutcome CookieJar::set_from_header(const url::Url& origin,
                                            std::string_view set_cookie, std::int64_t now) {
  const auto count = [&](SetCookieOutcome outcome) {
    if (obs::Counter* c = outcome_counters_[static_cast<std::size_t>(outcome)]) c->add();
    return outcome;
  };
  auto parsed = parse_set_cookie(set_cookie);
  if (!parsed) return count(SetCookieOutcome::kRejectedParse);
  Cookie cookie = *std::move(parsed);
  if (cookie.max_age) {
    // RFC 6265: Max-Age <= 0 means "expire immediately" — used to delete.
    // Saturate instead of overflowing: Max-Age=INT64_MAX is "never expires",
    // not UB.
    const std::int64_t age = std::max<std::int64_t>(*cookie.max_age, 0);
    constexpr std::int64_t kForever = std::numeric_limits<std::int64_t>::max();
    cookie.expires_at = (now > 0 && age > kForever - now) ? kForever : now + age;
  }

  const std::string& host = origin.host().name();

  if (!cookie.host_only) {
    // RFC 6265 5.3 step 5 + the public-suffix carve-out: a Domain attribute
    // naming a public suffix is only allowed when it equals the request
    // host itself, and then the cookie becomes host-only.
    if (origin.host().is_ip()) {
      // IP hosts can never use Domain attributes.
      if (cookie.domain != host) return count(SetCookieOutcome::kRejectedForeign);
      cookie.host_only = true;
    } else if (list_->is_public_suffix(cookie.domain)) {
      if (cookie.domain == host) {
        cookie.host_only = true;
      } else {
        return count(SetCookieOutcome::kRejectedSupercookie);
      }
    } else if (!domain_match(host, cookie.domain)) {
      return count(SetCookieOutcome::kRejectedForeign);
    }
  }
  if (cookie.host_only) cookie.domain = host;

  if (cookie.secure && !origin.is_secure()) {
    return count(SetCookieOutcome::kRejectedSecure);
  }

  if (cookie.path == "/" ) {
    // An absent Path attribute takes the default path of the request URL.
    // parse_set_cookie leaves "/" for both "absent" and an explicit
    // Path=/ — identical behaviour either way.
    cookie.path = default_path(origin.path());
    if (cookie.path.empty()) cookie.path = "/";
  }

  // Replace an existing cookie with the same (name, domain, path) identity.
  // RFC 6265 5.3 step 11 keys on exactly that triple — host_only is NOT
  // part of the identity, so a Domain= re-set of a host-only cookie (or
  // vice versa) replaces it rather than duplicating it.
  // An already-expired cookie (Max-Age <= 0) acts as a deletion.
  const auto same_identity = [&](const Cookie& c) {
    return c.name == cookie.name && c.domain == cookie.domain && c.path == cookie.path;
  };
  const auto it = std::find_if(cookies_.begin(), cookies_.end(), same_identity);
  if (cookie.expired(now)) {
    if (it != cookies_.end()) cookies_.erase(it);
    return count(SetCookieOutcome::kStored);
  }
  if (it != cookies_.end()) {
    *it = std::move(cookie);
  } else {
    cookies_.push_back(std::move(cookie));
  }
  return count(SetCookieOutcome::kStored);
}

std::vector<const Cookie*> CookieJar::cookies_for(const url::Url& target, bool http_api,
                                                  std::int64_t now) const {
  std::vector<const Cookie*> out;
  const std::string& host = target.host().name();
  for (const Cookie& c : cookies_) {
    if (c.expired(now)) continue;
    if (c.host_only) {
      if (host != c.domain) continue;
    } else if (!domain_match(host, c.domain)) {
      continue;
    }
    if (!path_match(target.path(), c.path)) continue;
    if (c.secure && !target.is_secure()) continue;
    if (c.http_only && !http_api) continue;
    out.push_back(&c);
  }
  return out;
}

std::size_t CookieJar::purge_expired(std::int64_t now) {
  const auto before = cookies_.size();
  std::erase_if(cookies_, [&](const Cookie& c) { return c.expired(now); });
  const std::size_t purged = before - cookies_.size();
  if (purged_counter_) purged_counter_->add(static_cast<std::int64_t>(purged));
  return purged;
}

}  // namespace psl::web
