#include "psl/web/browser.hpp"

namespace psl::web {

PageVisit Browser::visit(const url::Url& page, const std::vector<ResourceFetch>& resources,
                         std::int64_t now) {
  PageVisit log;
  log.page_host = page.host().name();

  // The document fetch itself delivers first-party cookies.
  // (No Set-Cookie modelling for the document; callers can use cookies()
  // directly when they need it.)

  for (const ResourceFetch& fetch : resources) {
    FetchLog entry;
    entry.resource_host = fetch.url.host().name();

    const bool both_dns = !page.host().is_ip() && !fetch.url.host().is_ip();
    entry.cross_site = both_dns
                           ? !list_->same_site(page.host().name(), fetch.url.host().name())
                           : page.host().name() != fetch.url.host().name();

    entry.referrer_sent =
        referrer_for(*list_, page, fetch.url, ReferrerPolicy::kSameSiteFullUrl);
    // Count fetches that received the page's full URL (path included) —
    // more of these under a stale list means more URL disclosure to what
    // are actually foreign organizations.
    const std::string origin_only = page.scheme() + "://" + page.host().name();
    if (!entry.referrer_sent.empty() && entry.referrer_sent != origin_only) {
      ++full_url_referrers_;
    }

    entry.cookies_attached = cookies_.cookies_for(fetch.url, /*http_api=*/true, now).size();
    if (entry.cross_site) cross_site_cookie_sends_ += entry.cookies_attached;

    for (const std::string& header : fetch.set_cookie_headers) {
      const SetCookieOutcome outcome = cookies_.set_from_header(fetch.url, header, now);
      if (outcome == SetCookieOutcome::kStored) {
        ++entry.cookies_stored;
      } else {
        ++entry.cookies_rejected;
      }
    }
    log.fetches.push_back(std::move(entry));
  }
  return log;
}

}  // namespace psl::web
