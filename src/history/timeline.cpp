#include "psl/history/timeline.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <set>
#include <stdexcept>

#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"

namespace psl::history {

namespace {

using util::Date;

// ---------------------------------------------------------------------------
// Static vocabulary
// ---------------------------------------------------------------------------

// Classic gTLD / sponsored / infrastructure TLDs present from the start.
constexpr std::string_view kCoreTlds[] = {
    "com", "net",  "org",  "edu",    "gov",  "mil",  "int",   "arpa",
    "info", "biz", "name", "pro",    "mobi", "aero", "asia",  "cat",
    "coop", "jobs", "museum", "tel", "travel", "post", "xxx",
};

// Real ccTLDs (a representative 150 of the ~250 in the root zone; the
// remainder are padded with synthetic two-letter codes so the count matches).
constexpr std::string_view kCcTlds[] = {
    "ac", "ad", "ae", "af", "ag", "ai", "al", "am", "ao", "ar", "at", "au",
    "aw", "az", "ba", "bb", "bd", "be", "bf", "bg", "bh", "bi", "bj", "bm",
    "bn", "bo", "br", "bs", "bt", "bw", "by", "bz", "ca", "cc", "cd", "cf",
    "cg", "ch", "ci", "ck", "cl", "cm", "cn", "co", "cr", "cu", "cv", "cy",
    "cz", "de", "dj", "dk", "dm", "do", "dz", "ec", "ee", "eg", "er", "es",
    "et", "eu", "fi", "fj", "fk", "fm", "fo", "fr", "ga", "gd", "ge", "gf",
    "gg", "gh", "gi", "gl", "gm", "gn", "gp", "gq", "gr", "gt", "gu", "gw",
    "gy", "hk", "hn", "hr", "ht", "hu", "id", "ie", "il", "im", "in", "iq",
    "ir", "is", "it", "je", "jm", "jo", "jp", "ke", "kg", "kh", "ki", "km",
    "kn", "kp", "kr", "kw", "ky", "kz", "la", "lb", "lc", "li", "lk", "lr",
    "ls", "lt", "lu", "lv", "ly", "ma", "mc", "md", "me", "mg", "mh", "mk",
    "ml", "mm", "mn", "mo", "mp", "mq", "mr", "ms", "mt", "mu", "mv", "mw",
    "mx", "my", "mz", "na", "nc", "ne", "nf", "ng", "ni", "nl", "no", "np",
    "nr", "nu", "nz", "om", "pa", "pe", "pf", "pg", "ph", "pk", "pl", "pm",
    "pn", "pr", "ps", "pt", "pw", "py", "qa", "re", "ro", "rs", "ru", "rw",
    "sa", "sb", "sc", "sd", "se", "sg", "sh", "si", "sk", "sl", "sm", "sn",
    "so", "sr", "st", "sv", "sy", "sz", "tc", "td", "tg", "th", "tj", "tk",
    "tl", "tm", "tn", "to", "tr", "tt", "tv", "tw", "tz", "ua", "ug", "uk",
    "us", "uy", "uz", "va", "vc", "ve", "vg", "vi", "vn", "vu", "wf", "ws",
    "ye", "za", "zm", "zw",
};

// Second-level zone labels used by structured ccTLD registries.
constexpr std::string_view kSldZones[] = {
    "com", "co",  "net", "org", "gov", "edu", "ac", "mil", "or",  "ne",
    "go",  "in",  "info", "web", "biz", "name", "sch", "pub", "int", "res",
    "alt", "pro", "art", "law", "med", "eco", "rec", "firm", "store", "k12",
};

// ccTLDs that seed with a broad wildcard rule (*.cc) — as the early real
// list did — each later replaced by explicit second-level rules.
struct WildcardRetirement {
  std::string_view cc;
  Date removed;
  std::initializer_list<std::string_view> replacement_zones;
};

const WildcardRetirement kWildcardRetirements[] = {
    {"uk", Date::from_civil(2009, 9, 10),
     {"co", "org", "me", "net", "ltd", "plc", "ac", "gov", "mod", "nhs", "police", "sch"}},
    {"jp", Date::from_civil(2012, 5, 20),
     {"co", "or", "ne", "ac", "ad", "ed", "go", "gr", "lg"}},
    {"nz", Date::from_civil(2012, 9, 10),
     {"co", "net", "org", "govt", "ac", "school", "geek", "gen", "kiwi", "maori"}},
    {"za", Date::from_civil(2013, 6, 1),
     {"co", "net", "org", "gov", "ac", "web", "edu"}},
};

// ccTLDs that keep a broad wildcard for the whole timeline (as *.ck, *.er,
// *.fj, ... do in the real list).
constexpr std::string_view kPermanentWildcards[] = {
    "bd", "ck", "er", "fj", "fk", "gu", "kh", "mm", "np", "pg", "mv", "ye",
};

// The 47 Japanese prefectures, for the mid-2012 city-registration spike.
constexpr std::string_view kJpPrefectures[] = {
    "aichi",    "akita",    "aomori",  "chiba",    "ehime",    "fukui",
    "fukuoka",  "fukushima", "gifu",   "gunma",    "hiroshima", "hokkaido",
    "hyogo",    "ibaraki",  "ishikawa", "iwate",   "kagawa",   "kagoshima",
    "kanagawa", "kochi",    "kumamoto", "kyoto",   "mie",      "miyagi",
    "miyazaki", "nagano",   "nagasaki", "nara",    "niigata",  "oita",
    "okayama",  "okinawa",  "osaka",   "saga",     "saitama",  "shiga",
    "shimane",  "shizuoka", "tochigi", "tokushima", "tokyo",   "tottori",
    "toyama",   "wakayama", "yamagata", "yamaguchi", "yamanashi",
};

// US states for seed k12.{state}.us-style three-component rules.
constexpr std::string_view kUsStates[] = {
    "al", "ak", "az", "ar", "ca", "co", "ct", "de", "fl", "ga", "hi", "ia",
    "id", "il", "in", "ks", "ky", "la", "ma", "md", "me", "mi", "mn", "mo",
    "ms", "mt", "nc", "nd", "ne", "nh", "nj", "nm", "nv", "ny", "oh", "ok",
    "or", "pa", "ri", "sc", "sd", "tn", "tx", "ut", "va", "vt", "wa", "wi",
    "wv", "wy",
};

// Named platform rules with fixed add dates. Dates are chosen so that the
// Table 3 anchor projects' embedded lists (dated t - age, t = 2022-12-08)
// miss/contain each rule the way the paper's Table 2 reports. tenant_weight
// is proportional to Table 2's "hostnames" column for the late rules, and to
// plausible relative volumes for the early (never-missing) platforms.
constexpr PlatformAnchor kAnchors[] = {
    {"blogspot.com", Section::kPrivate, Date::from_civil(2009, 4, 10), 2500, false, 0.05},
    {"appspot.com", Section::kPrivate, Date::from_civil(2009, 9, 21), 1200, false, 0.15},
    {"cloudfront.net", Section::kPrivate, Date::from_civil(2010, 11, 5), 800, true, 0.0},
    {"herokuapp.com", Section::kPrivate, Date::from_civil(2013, 5, 20), 2000, false, 0.3},
    {"github.io", Section::kPrivate, Date::from_civil(2013, 8, 14), 6000, false, 0.35},
    {"azurewebsites.net", Section::kPrivate, Date::from_civil(2014, 3, 10), 1500, false, 0.3},
    {"fastly.net", Section::kPrivate, Date::from_civil(2015, 2, 10), 800, true, 0.0},
    {"wordpress.com", Section::kPrivate, Date::from_civil(2015, 9, 1), 3500, false, 0.4},
    {"sp.gov.br", Section::kIcann, Date::from_civil(2017, 6, 20), 2024, false, 0.3},
    {"mg.gov.br", Section::kIcann, Date::from_civil(2017, 6, 20), 1153, false, 0.3},
    {"pr.gov.br", Section::kIcann, Date::from_civil(2017, 6, 20), 891, false, 0.3},
    {"rs.gov.br", Section::kIcann, Date::from_civil(2017, 6, 20), 747, false, 0.3},
    {"sc.gov.br", Section::kIcann, Date::from_civil(2017, 6, 20), 714, false, 0.3},
    {"altervista.org", Section::kPrivate, Date::from_civil(2019, 9, 15), 1954, false, 0.4},
    {"netlify.app", Section::kPrivate, Date::from_civil(2019, 12, 10), 1278, false, 0.5},
    {"r.appspot.com", Section::kPrivate, Date::from_civil(2019, 12, 10), 3194, false, 0.5},
    {"lpages.co", Section::kPrivate, Date::from_civil(2020, 3, 25), 1067, false, 0.5},
    {"readthedocs.io", Section::kPrivate, Date::from_civil(2020, 3, 20), 1887, false, 0.45},
    {"web.app", Section::kPrivate, Date::from_civil(2020, 4, 15), 871, false, 0.5},
    {"carrd.co", Section::kPrivate, Date::from_civil(2020, 5, 10), 776, false, 0.5},
    {"myshopify.com", Section::kPrivate, Date::from_civil(2021, 2, 20), 7848, false, 0.6},
    {"smushcdn.com", Section::kPrivate, Date::from_civil(2021, 2, 20), 3337, true, 0.0},
    {"digitaloceanspaces.com", Section::kPrivate, Date::from_civil(2022, 2, 5), 3359, true, 0.0},
};

Rule must_parse(std::string_view text, Section section) {
  auto rule = Rule::parse(text, section);
  if (!rule) {
    throw std::logic_error("timeline: bad built-in rule '" + std::string(text) +
                           "': " + rule.error().message);
  }
  return *std::move(rule);
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

class Generator {
 public:
  explicit Generator(const TimelineSpec& spec)
      : spec_(spec),
        rng_(spec.seed),
        names_(rng_.fork(1)),
        // Structural block sizes scale with the requested final rule count so
        // TimelineSpec::tiny() keeps the same shape at a tenth the volume.
        scale_(static_cast<double>(spec.final_rule_count) / 9368.0) {}

  History generate() {
    build_seed_rules();
    build_wildcard_retirements();
    build_jp_spike();
    build_gtld_wave();
    build_three_component_stream();
    build_four_component_rules();
    build_anchor_rules();
    build_private_filler();
    std::vector<Date> versions = build_version_dates();
    snap_schedule_to_versions(versions);
    return History(std::move(versions), std::move(schedule_));
  }

 private:
  std::size_t scaled(std::size_t full) const {
    return std::max<std::size_t>(1, static_cast<std::size_t>(static_cast<double>(full) * scale_));
  }

  void add(Rule rule, Date added, std::optional<Date> removed = std::nullopt) {
    schedule_.push_back(ScheduledRule{std::move(rule), added, removed});
  }

  bool claim_text(const std::string& text) { return used_texts_.insert(text).second; }

  /// Random date uniform in [lo, hi].
  Date random_date(Date lo, Date hi) {
    return Date(static_cast<std::int32_t>(
        rng_.between(lo.days_since_epoch(), hi.days_since_epoch())));
  }

  // --- seed (first version) ------------------------------------------------

  void build_seed_rules() {
    const Date t0 = spec_.first_version;
    std::size_t count = 0;
    auto seed_rule = [&](std::string_view text, Section section) {
      if (!claim_text(std::string(text))) return;
      add(must_parse(text, section), t0);
      ++count;
    };

    for (std::string_view tld : kCoreTlds) seed_rule(tld, Section::kIcann);
    for (std::string_view cc : kCcTlds) seed_rule(cc, Section::kIcann);

    // Broad wildcards present from day one. The retired ones carry their
    // retirement date; the permanent ones never go away.
    for (const auto& retirement : kWildcardRetirements) {
      const std::string text = "*." + std::string(retirement.cc);
      if (claim_text(text)) {
        add(must_parse(text, Section::kIcann), t0, retirement.removed);
        ++count;
      }
    }
    for (std::string_view cc : kPermanentWildcards) {
      seed_rule("*." + std::string(cc), Section::kIcann);
    }
    seed_rule("!www.ck", Section::kIcann);
    seed_rule("!metro.tokyo.jp", Section::kIcann);

    // Structured ccTLD second-level zones (skipping the wildcarded ccTLDs,
    // whose zones arrive with the wildcard retirement).
    std::set<std::string_view> wildcarded;
    for (const auto& r : kWildcardRetirements) wildcarded.insert(r.cc);
    for (std::string_view cc : kPermanentWildcards) wildcarded.insert(cc);

    const std::size_t sld_target = count + scaled(1300);
    for (std::string_view cc : kCcTlds) {
      if (count >= sld_target) break;
      if (wildcarded.contains(cc)) continue;
      if (!rng_.chance(0.55)) continue;  // not every registry is structured
      const std::size_t zones = 8 + rng_.below(18);
      std::vector<std::string_view> pool(std::begin(kSldZones), std::end(kSldZones));
      rng_.shuffle(pool);
      for (std::size_t i = 0; i < zones && i < pool.size() && count < sld_target; ++i) {
        seed_rule(std::string(pool[i]) + "." + std::string(cc), Section::kIcann);
      }
    }

    // Three-component seed rules: US k12-style plus a few *.edu.au-style.
    const std::size_t three_target = count + scaled(170);
    for (std::string_view state : kUsStates) {
      if (count >= three_target) break;
      seed_rule("k12." + std::string(state) + ".us", Section::kIcann);
      seed_rule("cc." + std::string(state) + ".us", Section::kIcann);
      seed_rule("lib." + std::string(state) + ".us", Section::kIcann);
    }
    while (count < three_target) {
      seed_rule(names_.fresh(1) + "." + std::string(kSldZones[rng_.below(std::size(kSldZones))]) +
                    "." + std::string(kCcTlds[rng_.below(std::size(kCcTlds))]),
                Section::kIcann);
    }

    // A small early PRIVATE section.
    seed_rule("operaunite.com", Section::kPrivate);
    seed_rule("dyndns.org", Section::kPrivate);

    // Two-component filler up to the seed total.
    while (count < spec_.seed_rule_count) {
      seed_rule(names_.fresh(1) + "." + std::string(kCcTlds[rng_.below(std::size(kCcTlds))]),
                Section::kIcann);
    }
  }

  // --- timeline events -------------------------------------------------------

  void build_wildcard_retirements() {
    // Each retirement replaces the wildcard with explicit second-level rules
    // plus (for jp) the prefecture rules that the city spike later extends.
    for (const auto& retirement : kWildcardRetirements) {
      for (std::string_view zone : retirement.replacement_zones) {
        const std::string text = std::string(zone) + "." + std::string(retirement.cc);
        if (claim_text(text)) add(must_parse(text, Section::kIcann), retirement.removed);
      }
      if (retirement.cc == "jp") {
        for (std::string_view pref : kJpPrefectures) {
          const std::string text = std::string(pref) + ".jp";
          if (claim_text(text)) add(must_parse(text, Section::kIcann), retirement.removed);
        }
      }
    }
  }

  void build_jp_spike() {
    // "In mid-2012, a significant number of suffixes (~1623) are added to
    // support 4th-level name registrations within the Japanese registry."
    const Date spike = Date::from_civil(2012, 7, 15);
    const std::size_t target = scaled(1623);
    std::size_t made = 0;
    util::NameGen city_names(rng_.fork(2));
    while (made < target) {
      for (std::string_view pref : kJpPrefectures) {
        if (made >= target) break;
        const std::string text = city_names.fresh(2) + "." + std::string(pref) + ".jp";
        if (claim_text(text)) {
          add(must_parse(text, Section::kIcann), spike);
          ++made;
        }
      }
    }
  }

  void build_gtld_wave() {
    // The ICANN new-gTLD programme: ~1300 single-component rules delegated
    // across 2013-10 .. 2016-12.
    const Date lo = Date::from_civil(2013, 10, 1);
    const Date hi = Date::from_civil(2016, 12, 31);
    const std::size_t target = scaled(1300);
    for (std::size_t i = 0; i < target;) {
      const std::string text = names_.fresh(1 + rng_.below(2));
      if (!claim_text(text)) continue;
      add(must_parse(text, Section::kIcann), random_date(lo, hi));
      ++i;
    }
  }

  void build_three_component_stream() {
    // Steady multi-label additions 2013-2022 (registry restructurings,
    // region-scoped platform zones).
    const Date lo = Date::from_civil(2013, 1, 1);
    const Date hi = spec_.last_version;
    const std::size_t target = scaled(550);
    for (std::size_t i = 0; i < target;) {
      const std::string cc(kCcTlds[rng_.below(std::size(kCcTlds))]);
      const std::string zone(kSldZones[rng_.below(std::size(kSldZones))]);
      const std::string text = names_.fresh(2) + "." + zone + "." + cc;
      if (!claim_text(text)) continue;
      const Section section = rng_.chance(0.4) ? Section::kPrivate : Section::kIcann;
      add(must_parse(text, section), random_date(lo, hi));
      ++i;
    }
  }

  void build_four_component_rules() {
    // "~0.1% of entries have four or more components" — e.g. regional object
    // storage zones. A handful, added late.
    const Date lo = Date::from_civil(2018, 1, 1);
    const Date hi = Date::from_civil(2021, 12, 31);
    const std::size_t target = std::max<std::size_t>(2, scaled(9));
    for (std::size_t i = 0; i < target;) {
      const std::string text =
          names_.fresh(1) + ".compute." + names_.fresh(2) + ".com";
      if (!claim_text(text)) continue;
      add(must_parse(text, Section::kPrivate), random_date(lo, hi));
      ++i;
    }
  }

  void build_anchor_rules() {
    for (const PlatformAnchor& anchor : kAnchors) {
      if (!claim_text(std::string(anchor.rule_text))) continue;
      add(must_parse(anchor.rule_text, anchor.section), anchor.added);
    }
  }

  void build_private_filler() {
    // Whatever is left to reach the exact final rule count: the long tail of
    // shared-hosting platforms submitting their zones, 2009 -> end.
    std::size_t final_count = 0;
    for (const ScheduledRule& sr : schedule_) {
      if (!sr.removed) ++final_count;
    }
    if (final_count > spec_.final_rule_count) {
      throw std::logic_error("timeline: structural rules exceed final_rule_count; "
                             "use a larger final_rule_count in the spec");
    }

    static constexpr std::string_view kPlatformTlds[] = {
        "com", "net", "org", "io", "co", "app", "dev", "cloud", "site", "host",
    };
    const Date lo = Date::from_civil(2009, 1, 1);
    const Date hi = spec_.last_version;
    while (final_count < spec_.final_rule_count) {
      const std::string text =
          names_.fresh() + "." + std::string(kPlatformTlds[rng_.below(std::size(kPlatformTlds))]);
      if (!claim_text(text)) continue;
      // Additions skew later: the PRIVATE section grew fastest post-2015.
      const Date d1 = random_date(lo, hi);
      const Date d2 = random_date(lo, hi);
      add(must_parse(text, Section::kPrivate), std::max(d1, d2));
      ++final_count;
    }
  }

  std::vector<Date> build_version_dates() {
    // Versions: first and last pinned, plus the dated structural events
    // (wildcard retirements, the JP spike, anchor additions); the remainder
    // uniform across the range, deduplicated — the real list ships several
    // versions a month. Rule add dates are then snapped forward to the next
    // version, because a rule only reaches users via a published version.
    std::set<std::int32_t> days;
    days.insert(spec_.first_version.days_since_epoch());
    days.insert(spec_.last_version.days_since_epoch());
    for (const auto& retirement : kWildcardRetirements) {
      days.insert(retirement.removed.days_since_epoch());
    }
    days.insert(Date::from_civil(2012, 7, 15).days_since_epoch());
    for (const PlatformAnchor& anchor : kAnchors) {
      days.insert(anchor.added.days_since_epoch());
    }
    while (days.size() < spec_.version_count) {
      days.insert(static_cast<std::int32_t>(rng_.between(
          spec_.first_version.days_since_epoch(), spec_.last_version.days_since_epoch())));
    }
    std::vector<Date> out;
    out.reserve(days.size());
    for (std::int32_t d : days) out.emplace_back(d);
    return out;
  }

  void snap_schedule_to_versions(const std::vector<Date>& versions) {
    const auto snap_forward = [&](Date d) {
      const auto it = std::lower_bound(versions.begin(), versions.end(), d);
      return it == versions.end() ? versions.back() : *it;
    };
    for (ScheduledRule& sr : schedule_) {
      sr.added = snap_forward(sr.added);
      if (sr.removed) {
        Date snapped = snap_forward(*sr.removed);
        // Keep the removal strictly after the addition.
        if (snapped <= sr.added) {
          const auto it =
              std::upper_bound(versions.begin(), versions.end(), sr.added);
          if (it == versions.end()) {
            sr.removed = std::nullopt;  // nothing after: the rule simply stays
            continue;
          }
          snapped = *it;
        }
        sr.removed = snapped;
      }
    }
  }

  TimelineSpec spec_;
  util::Rng rng_;
  util::NameGen names_;
  double scale_;
  std::vector<ScheduledRule> schedule_;
  std::set<std::string> used_texts_;
};

}  // namespace

std::span<const PlatformAnchor> platform_anchors() noexcept { return kAnchors; }

History generate_history(const TimelineSpec& spec) { return Generator(spec).generate(); }

}  // namespace psl::history
