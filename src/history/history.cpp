#include "psl/history/history.hpp"

#include <algorithm>
#include <cassert>

namespace psl::history {

History::History(std::vector<util::Date> version_dates, std::vector<ScheduledRule> schedule)
    : version_dates_(std::move(version_dates)), schedule_(std::move(schedule)) {
  assert(!version_dates_.empty());
  assert(std::is_sorted(version_dates_.begin(), version_dates_.end(),
                        [](util::Date a, util::Date b) { return a <= b; }));
  for ([[maybe_unused]] const ScheduledRule& sr : schedule_) {
    assert(!sr.removed || *sr.removed > sr.added);
  }
  std::sort(schedule_.begin(), schedule_.end(),
            [](const ScheduledRule& a, const ScheduledRule& b) { return a.added < b.added; });
}

std::optional<std::size_t> History::version_index_at(util::Date date) const noexcept {
  const auto it = std::upper_bound(version_dates_.begin(), version_dates_.end(), date);
  if (it == version_dates_.begin()) return std::nullopt;
  return static_cast<std::size_t>(it - version_dates_.begin()) - 1;
}

List History::snapshot(std::size_t version) const {
  const util::Date date = version_dates_.at(version);
  std::vector<Rule> rules;
  rules.reserve(schedule_.size());
  for (const ScheduledRule& sr : schedule_) {
    if (sr.added > date) break;  // schedule_ is sorted by added date
    if (sr.removed && *sr.removed <= date) continue;
    rules.push_back(sr.rule);
  }
  return List::from_rules(std::move(rules));
}

List History::snapshot_at(util::Date date) const {
  const auto index = version_index_at(date);
  if (!index) return List{};
  return snapshot(*index);
}

std::size_t History::rule_count(std::size_t version) const noexcept {
  const util::Date date = version_dates_[version];
  std::size_t count = 0;
  for (const ScheduledRule& sr : schedule_) {
    if (sr.added > date) break;
    if (sr.removed && *sr.removed <= date) continue;
    ++count;
  }
  return count;
}

const List& History::latest() const {
  if (!latest_cache_) latest_cache_ = snapshot(version_count() - 1);
  return *latest_cache_;
}

std::optional<util::Date> History::added_date(std::string_view rule_text) const {
  std::optional<util::Date> earliest;
  for (const ScheduledRule& sr : schedule_) {
    if (sr.rule.to_string() == rule_text) {
      if (!earliest || sr.added < *earliest) earliest = sr.added;
    }
  }
  return earliest;
}

std::vector<History::VersionDelta> History::version_deltas() const {
  std::vector<VersionDelta> out;
  out.reserve(version_dates_.size());
  for (std::size_t i = 0; i < version_dates_.size(); ++i) {
    out.push_back(VersionDelta{i, version_dates_[i], 0, 0});
  }
  // Schedule dates are snapped onto version dates, so exact lookups apply.
  const auto index_of = [&](util::Date d) -> std::optional<std::size_t> {
    const auto it = std::lower_bound(version_dates_.begin(), version_dates_.end(), d);
    if (it == version_dates_.end() || *it != d) return std::nullopt;
    return static_cast<std::size_t>(it - version_dates_.begin());
  };
  for (const ScheduledRule& sr : schedule_) {
    if (const auto idx = index_of(sr.added)) ++out[*idx].rules_added;
    if (sr.removed) {
      if (const auto idx = index_of(*sr.removed)) ++out[*idx].rules_removed;
    }
  }
  return out;
}

std::vector<std::size_t> History::sampled_versions(std::size_t max_points) const {
  const std::size_t n = version_count();
  std::vector<std::size_t> out;
  if (max_points == 0) return out;
  if (max_points >= n) {
    out.resize(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    return out;
  }
  out.reserve(max_points);
  for (std::size_t i = 0; i < max_points; ++i) {
    out.push_back(i * (n - 1) / (max_points - 1));
  }
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace psl::history
