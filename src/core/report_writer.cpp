#include "psl/core/report_writer.hpp"

#include <ostream>

#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"

namespace psl::harm {

namespace {

void md_table(std::ostream& out, const std::vector<std::string>& headers,
              const std::vector<std::vector<std::string>>& rows) {
  out << '|';
  for (const auto& h : headers) out << ' ' << h << " |";
  out << "\n|";
  for (std::size_t i = 0; i < headers.size(); ++i) out << "---|";
  out << '\n';
  for (const auto& row : rows) {
    out << '|';
    for (const auto& cell : row) out << ' ' << cell << " |";
    out << '\n';
  }
  out << '\n';
}

std::string num(std::size_t v) { return util::with_commas(static_cast<long long>(v)); }

}  // namespace

void write_markdown(const HarmReport& report, std::ostream& out,
                    const ReportWriterOptions& options) {
  out << "# PSL privacy-harm measurement report\n\n";

  // --- the list ---------------------------------------------------------
  out << "## The Public Suffix List (Fig. 2)\n\n";
  out << "Rules grew from **" << num(report.first_version_rules) << "** to **"
      << num(report.last_version_rules) << "** across the measured history.\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [components, count] : report.component_histogram) {
      rows.push_back({std::to_string(components), num(count),
                      util::fmt_percent(static_cast<double>(count) /
                                            static_cast<double>(report.last_version_rules),
                                        1)});
    }
    md_table(out, {"components", "rules", "share"}, rows);
  }

  // --- taxonomy ---------------------------------------------------------
  out << "## Project taxonomy (Table 1)\n\n";
  {
    const TaxonomyBreakdown& t = report.taxonomy;
    md_table(out, {"category", "projects", "share"},
             {{"fixed", num(t.fixed), util::fmt_percent(t.fraction(t.fixed), 1)},
              {"&nbsp;&nbsp;production", num(t.fixed_production),
               util::fmt_percent(t.fraction(t.fixed_production), 1)},
              {"&nbsp;&nbsp;test", num(t.fixed_test),
               util::fmt_percent(t.fraction(t.fixed_test), 1)},
              {"&nbsp;&nbsp;other", num(t.fixed_other),
               util::fmt_percent(t.fraction(t.fixed_other), 1)},
              {"updated", num(t.updated), util::fmt_percent(t.fraction(t.updated), 1)},
              {"dependency", num(t.dependency),
               util::fmt_percent(t.fraction(t.dependency), 1)}});
  }

  // --- ages -------------------------------------------------------------
  out << "## Embedded-list ages (Fig. 3)\n\n";
  out << "Median list age: **" << util::fmt_double(report.ages.median_all, 0)
      << " days** overall, **" << util::fmt_double(report.ages.median_fixed, 0)
      << "** for fixed copies, **" << util::fmt_double(report.ages.median_updated, 0)
      << "** for updated projects' fallbacks. Stars-forks Pearson r = "
      << util::fmt_double(report.stars_forks_correlation, 3) << " (Fig. 4).\n\n";

  // --- sweep ------------------------------------------------------------
  out << "## Boundaries under each list version (Figs. 5-7)\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    const std::size_t n = report.sweep.size();
    const std::size_t step =
        options.sweep_rows == 0 || n <= options.sweep_rows ? 1 : n / options.sweep_rows;
    for (std::size_t i = 0; i < n; i += step) {
      const VersionMetrics& m = report.sweep[i];
      rows.push_back({m.date.to_string(), num(m.rule_count), num(m.site_count),
                      num(m.third_party_requests), num(m.divergent_hosts)});
    }
    if ((n - 1) % step != 0) {
      const VersionMetrics& m = report.sweep.back();
      rows.push_back({m.date.to_string(), num(m.rule_count), num(m.site_count),
                      num(m.third_party_requests), num(m.divergent_hosts)});
    }
    md_table(out, {"date", "rules", "sites", "third-party requests", "divergent hosts"},
             rows);
  }
  out << "The newest list forms **" << num(report.additional_sites_latest_vs_first)
      << "** more sites over the corpus than the oldest.\n\n";

  // --- impacts ----------------------------------------------------------
  out << "## Missing-eTLD impact (Table 2)\n\n";
  out << "**" << num(report.harmed_etlds)
      << " eTLDs** are missing from at least one fixed-production project, affecting **"
      << num(report.harmed_hostnames) << " hostnames**.\n\n";
  {
    std::vector<std::vector<std::string>> rows;
    for (const EtldImpact& i : report.top_impacts) {
      rows.push_back({i.etld, num(i.hostnames), i.rule_added.to_string(),
                      num(i.missing_dependency), num(i.missing_fixed_production),
                      num(i.missing_fixed_test_other), num(i.missing_updated)});
    }
    md_table(out, {"eTLD", "hostnames", "rule added", "D", "Prd", "T/O", "U"}, rows);
  }

  // --- per-repo ---------------------------------------------------------
  if (options.include_repo_table && !report.repo_impacts.empty()) {
    out << "## Per-project misclassified hostnames (Table 3)\n\n";
    std::vector<std::vector<std::string>> rows;
    for (const RepoImpact& impact : report.repo_impacts) {
      rows.push_back({impact.repo->name, std::string(to_string(impact.repo->usage)),
                      std::to_string(impact.repo->stars),
                      std::to_string(impact.repo->list_age().value_or(-1)),
                      num(impact.misclassified_hostnames)});
    }
    md_table(out, {"repository", "usage", "stars", "list age (d)", "misclassified"}, rows);
  }
}

}  // namespace psl::harm
