#include "psl/core/impact.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace psl::harm {

ImpactSummary compute_etld_impacts(const history::History& history,
                                   const archive::Corpus& corpus,
                                   std::span<const repos::RepoRecord> repos) {
  const List& latest = history.latest();

  // Pass 1: group unique corpus hostnames by their eTLD under the newest
  // list, remembering the prevailing rule per eTLD.
  struct SuffixAgg {
    std::string rule_text;
    std::size_t hostnames = 0;
  };
  std::unordered_map<std::string, SuffixAgg> by_suffix;
  for (const std::string& host : corpus.hostnames()) {
    if (is_ip_literal(host)) continue;
    Match m = latest.match(host);
    if (m.registrable_domain.empty() || !m.matched_explicit_rule) continue;
    SuffixAgg& agg = by_suffix[m.public_suffix];
    if (agg.rule_text.empty()) agg.rule_text = std::move(m.prevailing_rule);
    ++agg.hostnames;
  }

  // Pass 2: date every rule once.
  std::unordered_map<std::string, util::Date> added_index;
  added_index.reserve(history.schedule().size());
  for (const auto& sr : history.schedule()) {
    auto [it, inserted] = added_index.emplace(sr.rule.to_string(), sr.added);
    if (!inserted && sr.added < it->second) it->second = sr.added;
  }

  // Pass 3: per eTLD, count projects whose effective list predates the rule.
  ImpactSummary summary;
  summary.impacts.reserve(by_suffix.size());
  for (auto& [suffix, agg] : by_suffix) {
    const auto added_it = added_index.find(agg.rule_text);
    if (added_it == added_index.end()) continue;  // rule unknown to history

    EtldImpact impact;
    impact.etld = suffix;
    impact.rule_text = agg.rule_text;
    impact.rule_added = added_it->second;
    impact.hostnames = agg.hostnames;

    for (const repos::RepoRecord& repo : repos) {
      const auto list_date = repo.effective_list_date();
      if (!list_date || *list_date >= impact.rule_added) continue;
      switch (repo.usage) {
        case repos::Usage::kDependency:
          ++impact.missing_dependency;
          break;
        case repos::Usage::kFixedProduction:
          ++impact.missing_fixed_production;
          break;
        case repos::Usage::kFixedTest:
        case repos::Usage::kFixedOther:
          ++impact.missing_fixed_test_other;
          break;
        case repos::Usage::kUpdatedBuild:
        case repos::Usage::kUpdatedUser:
        case repos::Usage::kUpdatedServer:
          ++impact.missing_updated;
          break;
      }
    }

    if (impact.missing_fixed_production > 0) {
      ++summary.harmed_etlds;
      summary.harmed_hostnames += impact.hostnames;
    }
    summary.impacts.push_back(std::move(impact));
  }

  std::sort(summary.impacts.begin(), summary.impacts.end(),
            [](const EtldImpact& a, const EtldImpact& b) {
              if (a.hostnames != b.hostnames) return a.hostnames > b.hostnames;
              return a.etld < b.etld;
            });
  return summary;
}

std::vector<RepoImpact> per_repo_divergence(const history::History& history,
                                            const archive::Corpus& corpus,
                                            const Sweeper& sweeper,
                                            std::span<const repos::RepoRecord> repos,
                                            bool anchored_only) {
  // Repos sharing a list vintage resolve to the same history version; cache
  // the divergence per version index.
  std::map<std::size_t, std::size_t> divergence_by_version;

  std::vector<RepoImpact> out;
  for (const repos::RepoRecord& repo : repos) {
    if (anchored_only && !repo.anchored) continue;
    const auto list_date = repo.effective_list_date();
    if (!list_date) continue;

    RepoImpact impact;
    impact.repo = &repo;

    const auto version = history.version_index_at(*list_date);
    if (!version) {
      // A list older than the history itself diverges on everything that
      // any explicit rule ever grouped; evaluate against the empty list.
      impact.misclassified_hostnames =
          divergent_hosts(assign_sites(List{}, corpus.hostnames()),
                          sweeper.latest_assignment());
    } else {
      auto it = divergence_by_version.find(*version);
      if (it == divergence_by_version.end()) {
        const std::size_t d = sweeper.evaluate(*version).divergent_hosts;
        it = divergence_by_version.emplace(*version, d).first;
      }
      impact.misclassified_hostnames = it->second;
    }
    out.push_back(impact);
  }
  return out;
}

}  // namespace psl::harm
