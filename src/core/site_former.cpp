#include "psl/core/site_former.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "psl/url/host.hpp"

namespace psl::harm {

bool is_ip_literal(std::string_view host) noexcept {
  return url::looks_like_ip_literal(host);
}

SiteAssignment assign_sites(const List& list, std::span<const std::string> hostnames) {
  SiteAssignment out;
  out.site_ids.reserve(hostnames.size());

  std::unordered_map<std::string, std::uint32_t> interned;
  interned.reserve(hostnames.size());

  for (const std::string& host : hostnames) {
    std::string key;
    if (is_ip_literal(host)) {
      key = host;  // an IP is only ever same-site with itself
    } else {
      Match m = list.match(host);
      // A host that *is* a public suffix has no eTLD+1; it stands alone.
      key = m.registrable_domain.empty() ? host : std::move(m.registrable_domain);
    }
    const auto [it, inserted] =
        interned.emplace(std::move(key), static_cast<std::uint32_t>(interned.size()));
    if (inserted) out.site_keys.push_back(it->first);
    out.site_ids.push_back(it->second);
  }
  out.site_count = interned.size();
  return out;
}

SiteStats site_stats(const SiteAssignment& assignment) {
  SiteStats stats;
  stats.host_count = assignment.site_ids.size();
  stats.site_count = assignment.site_count;
  if (assignment.site_count == 0) return stats;

  std::vector<std::size_t> sizes(assignment.site_count, 0);
  for (std::uint32_t id : assignment.site_ids) ++sizes[id];
  stats.largest_site = *std::max_element(sizes.begin(), sizes.end());
  stats.mean_hosts_per_site =
      static_cast<double>(stats.host_count) / static_cast<double>(stats.site_count);
  return stats;
}

std::size_t divergent_hosts(const SiteAssignment& a, const SiteAssignment& b) {
  assert(a.site_ids.size() == b.site_ids.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.site_ids.size(); ++i) {
    if (a.site_keys[a.site_ids[i]] != b.site_keys[b.site_ids[i]]) ++count;
  }
  return count;
}

}  // namespace psl::harm
