#include "psl/core/site_former.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "psl/obs/span.hpp"
#include "psl/url/host.hpp"

namespace psl::harm {

bool is_ip_literal(std::string_view host) noexcept {
  return url::looks_like_ip_literal(host);
}

SiteAssignment assign_sites(const List& list, std::span<const std::string> hostnames) {
  SiteAssignment out;
  out.site_ids.reserve(hostnames.size());

  std::unordered_map<std::string, std::uint32_t> interned;
  interned.reserve(hostnames.size());

  for (const std::string& host : hostnames) {
    std::string key;
    if (is_ip_literal(host)) {
      key = host;  // an IP is only ever same-site with itself
    } else {
      Match m = list.match(host);
      // A host that *is* a public suffix has no eTLD+1; it stands alone.
      key = m.registrable_domain.empty() ? host : std::move(m.registrable_domain);
    }
    const auto [it, inserted] =
        interned.emplace(std::move(key), static_cast<std::uint32_t>(interned.size()));
    if (inserted) out.site_keys.push_back(it->first);
    out.site_ids.push_back(it->second);
  }
  out.site_count = interned.size();
  return out;
}

SiteAssigner::SiteAssigner(std::span<const std::string> hostnames) : hostnames_(hostnames) {
  scratch_.site_ids.reserve(hostnames.size());
  interned_.reserve(hostnames.size());
}

void SiteAssigner::set_metrics(obs::MetricsRegistry* metrics) {
  if (!metrics) {
    assign_ms_ = nullptr;
    hosts_assigned_ = nullptr;
    assign_calls_ = nullptr;
    return;
  }
  assign_ms_ = &metrics->histogram("siteform.assign_ms");
  hosts_assigned_ = &metrics->counter("siteform.hosts_assigned");
  assign_calls_ = &metrics->counter("siteform.assign_calls");
}

const SiteAssignment& SiteAssigner::assign(const CompiledMatcher& matcher) {
  const obs::Timer timer(assign_ms_);
  scratch_.site_ids.clear();
  scratch_.site_keys.clear();
  interned_.clear();  // buckets are retained; only the entries go

  for (const std::string& host : hostnames_) {
    std::string_view key;
    if (is_ip_literal(host)) {
      key = host;  // an IP is only ever same-site with itself
    } else {
      const MatchView m = matcher.match_view(host);
      // A host that *is* a public suffix has no eTLD+1; it stands alone.
      key = m.registrable_domain.empty() ? std::string_view(host) : m.registrable_domain;
    }
    auto it = interned_.find(key);
    if (it == interned_.end()) {
      it = interned_.emplace(std::string(key), static_cast<std::uint32_t>(interned_.size()))
               .first;
      scratch_.site_keys.push_back(it->first);
    }
    scratch_.site_ids.push_back(it->second);
  }
  scratch_.site_count = interned_.size();
  if (assign_calls_) {
    assign_calls_->add();
    hosts_assigned_->add(static_cast<std::int64_t>(hostnames_.size()));
  }
  return scratch_;
}

SiteAssignment assign_sites(const CompiledMatcher& matcher,
                            std::span<const std::string> hostnames) {
  SiteAssigner assigner(hostnames);
  SiteAssignment out = assigner.assign(matcher);  // copy out of the scratch
  return out;
}

SiteStats site_stats(const SiteAssignment& assignment) {
  SiteStats stats;
  stats.host_count = assignment.site_ids.size();
  stats.site_count = assignment.site_count;
  if (assignment.site_count == 0) return stats;

  std::vector<std::size_t> sizes(assignment.site_count, 0);
  for (std::uint32_t id : assignment.site_ids) ++sizes[id];
  stats.largest_site = *std::max_element(sizes.begin(), sizes.end());
  stats.mean_hosts_per_site =
      static_cast<double>(stats.host_count) / static_cast<double>(stats.site_count);
  return stats;
}

std::size_t divergent_hosts(const SiteAssignment& a, const SiteAssignment& b) {
  assert(a.site_ids.size() == b.site_ids.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.site_ids.size(); ++i) {
    if (a.site_keys[a.site_ids[i]] != b.site_keys[b.site_ids[i]]) ++count;
  }
  return count;
}

}  // namespace psl::harm
