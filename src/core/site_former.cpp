#include "psl/core/site_former.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "psl/obs/span.hpp"
#include "psl/url/host.hpp"

namespace psl::harm {

bool is_ip_literal(std::string_view host) noexcept {
  return url::looks_like_ip_literal(host);
}

SiteAssigner::SiteAssigner(std::span<const std::string> hostnames) : hostnames_(hostnames) {
  scratch_.site_ids.reserve(hostnames.size());
  interned_.reserve(hostnames.size());
}

void SiteAssigner::set_metrics(obs::MetricsRegistry* metrics) {
  if (!metrics) {
    assign_ms_ = nullptr;
    hosts_assigned_ = nullptr;
    assign_calls_ = nullptr;
    return;
  }
  assign_ms_ = &metrics->histogram("siteform.assign_ms");
  hosts_assigned_ = &metrics->counter("siteform.hosts_assigned");
  assign_calls_ = &metrics->counter("siteform.assign_calls");
}

SiteStats site_stats(const SiteAssignment& assignment) {
  SiteStats stats;
  stats.host_count = assignment.site_ids.size();
  stats.site_count = assignment.site_count;
  if (assignment.site_count == 0) return stats;

  std::vector<std::size_t> sizes(assignment.site_count, 0);
  for (std::uint32_t id : assignment.site_ids) ++sizes[id];
  stats.largest_site = *std::max_element(sizes.begin(), sizes.end());
  stats.mean_hosts_per_site =
      static_cast<double>(stats.host_count) / static_cast<double>(stats.site_count);
  return stats;
}

std::size_t divergent_hosts(const SiteAssignment& a, const SiteAssignment& b) {
  assert(a.site_ids.size() == b.site_ids.size());
  std::size_t count = 0;
  for (std::size_t i = 0; i < a.site_ids.size(); ++i) {
    if (a.site_keys[a.site_ids[i]] != b.site_keys[b.site_ids[i]]) ++count;
  }
  return count;
}

}  // namespace psl::harm
