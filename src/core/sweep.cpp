#include "psl/core/sweep.hpp"

#include <atomic>
#include <optional>
#include <string>
#include <thread>

#include "psl/core/incremental.hpp"
#include "psl/obs/span.hpp"

namespace psl::harm {

Sweeper::Sweeper(const history::History& history, const archive::Corpus& corpus)
    : history_(history),
      corpus_(corpus),
      latest_(assign_sites(CompiledMatcher(history.latest()), corpus.hostnames())) {}

VersionMetrics Sweeper::metrics_for(const SiteAssignment& assignment,
                                    std::size_t rule_count) const {
  VersionMetrics m;
  m.rule_count = rule_count;

  const SiteStats stats = site_stats(assignment);
  m.site_count = stats.site_count;
  m.mean_hosts_per_site = stats.mean_hosts_per_site;

  // Fig. 6: a request is third-party when the resource host is not
  // same-site with the page host under this version's boundaries.
  std::size_t third_party = 0;
  for (const archive::Request& r : corpus_.requests()) {
    if (assignment.site_ids[r.page_host] != assignment.site_ids[r.resource_host]) {
      ++third_party;
    }
  }
  m.third_party_requests = third_party;

  // Fig. 7: hosts grouped differently than under the newest list.
  m.divergent_hosts = harm::divergent_hosts(assignment, latest_);
  return m;
}

VersionMetrics Sweeper::evaluate_list(const List& list) const {
  // One-off evaluation: compiling first still wins — the arena build is a
  // few ms, the ~100k matches it accelerates dominate.
  const SiteAssignment assignment = assign_sites(CompiledMatcher(list), corpus_.hostnames());
  return metrics_for(assignment, list.rule_count());
}

VersionMetrics Sweeper::evaluate_version(std::size_t version_index, SiteAssigner& scratch,
                                         bool use_compiled, const PhaseSinks& sinks) const {
  // Phase 1 — compile: materialise the version's list (delta replay inside
  // History) and, on the compiled path, freeze it into the arena matcher.
  std::size_t rule_count = 0;
  std::optional<CompiledMatcher> matcher;
  std::optional<List> snapshot;
  {
    const obs::Timer timer(sinks.compile_ms);
    snapshot.emplace(history_.snapshot(version_index));
    rule_count = snapshot->rule_count();
    if (use_compiled) {
      matcher.emplace(*snapshot);
      snapshot.reset();  // the arena is self-contained
    }
  }

  // Phase 2 — assign: one match per unique hostname.
  const SiteAssignment* assignment = nullptr;
  std::optional<SiteAssignment> owned;
  {
    const obs::Timer timer(sinks.assign_ms);
    if (use_compiled) {
      assignment = &scratch.assign(*matcher);
    } else {
      owned.emplace(assign_sites(*snapshot, corpus_.hostnames()));
      assignment = &*owned;
    }
  }

  // Phase 3 — metrics: per-request third-party flags + divergence.
  const obs::Timer timer(sinks.metrics_ms);
  VersionMetrics m = metrics_for(*assignment, rule_count);
  m.version_index = version_index;
  m.date = history_.version_date(version_index);
  return m;
}

VersionMetrics Sweeper::evaluate(std::size_t version_index) const {
  VersionMetrics m = evaluate_list(history_.snapshot(version_index));
  m.version_index = version_index;
  m.date = history_.version_date(version_index);
  return m;
}

std::vector<VersionMetrics> Sweeper::sweep(std::size_t max_points) const {
  SweepOptions options;
  options.max_points = max_points;
  return sweep(options);
}

std::vector<VersionMetrics> Sweeper::sweep(const SweepOptions& options) const {
  obs::MetricsRegistry* registry = options.metrics;
  const obs::ScopedSpan sweep_span(registry, "sweep");
  const std::vector<std::size_t> sampled = history_.sampled_versions(options.max_points);
  std::vector<VersionMetrics> out(sampled.size());
  if (sampled.empty()) return out;

  PhaseSinks sinks;
  if (registry) {
    sinks.compile_ms = &registry->histogram("sweep.compile_ms");
    sinks.assign_ms = &registry->histogram("sweep.assign_ms");
    sinks.metrics_ms = &registry->histogram("sweep.metrics_ms");
    registry->gauge("sweep.sampled_versions").set(static_cast<double>(sampled.size()));
  }

  if (options.incremental) {
    // The span's histogram ("sweep.replay_ms") is the replay-phase timing.
    const obs::ScopedSpan replay_span(registry, "sweep.replay");
    IncrementalSweeper incremental(history_, corpus_);
    out = incremental.sweep_versions(sampled);
    if (registry) {
      registry->counter("sweep.versions_evaluated").add(static_cast<std::int64_t>(out.size()));
      registry->counter("sweep.hosts_rematched")
          .add(static_cast<std::int64_t>(incremental.hosts_rematched()));
    }
    return out;
  }

  unsigned threads = options.threads != 0 ? options.threads
                                          : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, sampled.size()));
  if (registry) {
    registry->gauge("sweep.threads").set(static_cast<double>(threads));
    registry->counter("sweep.versions_evaluated").add(static_cast<std::int64_t>(sampled.size()));
  }
  // Per-worker pull counts: with work-stealing these won't be equal — their
  // spread is the load-balance signal the bench tables watch.
  const auto worker_counter = [&](unsigned t) -> obs::Counter* {
    if (!registry) return nullptr;
    return &registry->counter("sweep.worker." + std::to_string(t) + ".versions");
  };

  if (threads <= 1) {
    SiteAssigner scratch(corpus_.hostnames());
    scratch.set_metrics(registry);
    obs::Counter* pulled = worker_counter(0);
    for (std::size_t i = 0; i < sampled.size(); ++i) {
      out[i] = evaluate_version(sampled[i], scratch, options.use_compiled, sinks);
      if (pulled) pulled->add();
    }
    return out;
  }

  // Work-stealing over the sampled indices: version costs vary (early lists
  // are tiny), so a shared atomic cursor beats static partitioning. Each
  // result lands in its own slot — the output is identical no matter how
  // the scheduler interleaves workers.
  std::atomic<std::size_t> next{0};
  const auto worker = [&](unsigned t) {
    SiteAssigner scratch(corpus_.hostnames());
    scratch.set_metrics(registry);
    obs::Counter* pulled = worker_counter(t);
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sampled.size()) break;
      out[i] = evaluate_version(sampled[i], scratch, options.use_compiled, sinks);
      if (pulled) pulled->add();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (std::thread& t : pool) t.join();
  return out;
}

std::size_t Sweeper::divergence_at(util::Date date) const {
  const SiteAssignment assignment =
      assign_sites(CompiledMatcher(history_.snapshot_at(date)), corpus_.hostnames());
  return harm::divergent_hosts(assignment, latest_);
}

}  // namespace psl::harm
