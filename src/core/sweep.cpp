#include "psl/core/sweep.hpp"

#include <atomic>
#include <thread>

#include "psl/core/incremental.hpp"

namespace psl::harm {

Sweeper::Sweeper(const history::History& history, const archive::Corpus& corpus)
    : history_(history),
      corpus_(corpus),
      latest_(assign_sites(CompiledMatcher(history.latest()), corpus.hostnames())) {}

VersionMetrics Sweeper::metrics_for(const SiteAssignment& assignment,
                                    std::size_t rule_count) const {
  VersionMetrics m;
  m.rule_count = rule_count;

  const SiteStats stats = site_stats(assignment);
  m.site_count = stats.site_count;
  m.mean_hosts_per_site = stats.mean_hosts_per_site;

  // Fig. 6: a request is third-party when the resource host is not
  // same-site with the page host under this version's boundaries.
  std::size_t third_party = 0;
  for (const archive::Request& r : corpus_.requests()) {
    if (assignment.site_ids[r.page_host] != assignment.site_ids[r.resource_host]) {
      ++third_party;
    }
  }
  m.third_party_requests = third_party;

  // Fig. 7: hosts grouped differently than under the newest list.
  m.divergent_hosts = harm::divergent_hosts(assignment, latest_);
  return m;
}

VersionMetrics Sweeper::evaluate_list(const List& list) const {
  // One-off evaluation: compiling first still wins — the arena build is a
  // few ms, the ~100k matches it accelerates dominate.
  const SiteAssignment assignment = assign_sites(CompiledMatcher(list), corpus_.hostnames());
  return metrics_for(assignment, list.rule_count());
}

VersionMetrics Sweeper::evaluate_version(std::size_t version_index, SiteAssigner& scratch,
                                         bool use_compiled) const {
  const List snapshot = history_.snapshot(version_index);
  VersionMetrics m;
  if (use_compiled) {
    m = metrics_for(scratch.assign(CompiledMatcher(snapshot)), snapshot.rule_count());
  } else {
    m = metrics_for(assign_sites(snapshot, corpus_.hostnames()), snapshot.rule_count());
  }
  m.version_index = version_index;
  m.date = history_.version_date(version_index);
  return m;
}

VersionMetrics Sweeper::evaluate(std::size_t version_index) const {
  VersionMetrics m = evaluate_list(history_.snapshot(version_index));
  m.version_index = version_index;
  m.date = history_.version_date(version_index);
  return m;
}

std::vector<VersionMetrics> Sweeper::sweep(std::size_t max_points) const {
  SweepOptions options;
  options.max_points = max_points;
  return sweep(options);
}

std::vector<VersionMetrics> Sweeper::sweep(const SweepOptions& options) const {
  const std::vector<std::size_t> sampled = history_.sampled_versions(options.max_points);
  std::vector<VersionMetrics> out(sampled.size());
  if (sampled.empty()) return out;

  if (options.incremental) {
    IncrementalSweeper incremental(history_, corpus_);
    return incremental.sweep_versions(sampled);
  }

  unsigned threads = options.threads != 0 ? options.threads
                                          : std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(
      std::min<std::size_t>(threads, sampled.size()));

  if (threads <= 1) {
    SiteAssigner scratch(corpus_.hostnames());
    for (std::size_t i = 0; i < sampled.size(); ++i) {
      out[i] = evaluate_version(sampled[i], scratch, options.use_compiled);
    }
    return out;
  }

  // Work-stealing over the sampled indices: version costs vary (early lists
  // are tiny), so a shared atomic cursor beats static partitioning. Each
  // result lands in its own slot — the output is identical no matter how
  // the scheduler interleaves workers.
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    SiteAssigner scratch(corpus_.hostnames());
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= sampled.size()) break;
      out[i] = evaluate_version(sampled[i], scratch, options.use_compiled);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (std::thread& t : pool) t.join();
  return out;
}

std::size_t Sweeper::divergence_at(util::Date date) const {
  const SiteAssignment assignment =
      assign_sites(CompiledMatcher(history_.snapshot_at(date)), corpus_.hostnames());
  return harm::divergent_hosts(assignment, latest_);
}

}  // namespace psl::harm
