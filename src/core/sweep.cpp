#include "psl/core/sweep.hpp"

namespace psl::harm {

Sweeper::Sweeper(const history::History& history, const archive::Corpus& corpus)
    : history_(history),
      corpus_(corpus),
      latest_(assign_sites(history.latest(), corpus.hostnames())) {}

VersionMetrics Sweeper::evaluate_list(const List& list) const {
  VersionMetrics m;
  m.rule_count = list.rule_count();

  const SiteAssignment assignment = assign_sites(list, corpus_.hostnames());
  const SiteStats stats = site_stats(assignment);
  m.site_count = stats.site_count;
  m.mean_hosts_per_site = stats.mean_hosts_per_site;

  // Fig. 6: a request is third-party when the resource host is not
  // same-site with the page host under this version's boundaries.
  std::size_t third_party = 0;
  for (const archive::Request& r : corpus_.requests()) {
    if (assignment.site_ids[r.page_host] != assignment.site_ids[r.resource_host]) {
      ++third_party;
    }
  }
  m.third_party_requests = third_party;

  // Fig. 7: hosts grouped differently than under the newest list.
  m.divergent_hosts = harm::divergent_hosts(assignment, latest_);
  return m;
}

VersionMetrics Sweeper::evaluate(std::size_t version_index) const {
  VersionMetrics m = evaluate_list(history_.snapshot(version_index));
  m.version_index = version_index;
  m.date = history_.version_date(version_index);
  return m;
}

std::vector<VersionMetrics> Sweeper::sweep(std::size_t max_points) const {
  std::vector<VersionMetrics> out;
  for (std::size_t index : history_.sampled_versions(max_points)) {
    out.push_back(evaluate(index));
  }
  return out;
}

std::size_t Sweeper::divergence_at(util::Date date) const {
  const SiteAssignment assignment =
      assign_sites(history_.snapshot_at(date), corpus_.hostnames());
  return harm::divergent_hosts(assignment, latest_);
}

}  // namespace psl::harm
