#include "psl/core/report.hpp"

namespace psl::harm {

HarmReport generate_report(const history::History& history, const archive::Corpus& corpus,
                           std::span<const repos::RepoRecord> repos,
                           const ReportOptions& options) {
  HarmReport report;

  report.first_version_rules = history.rule_count(0);
  report.last_version_rules = history.rule_count(history.version_count() - 1);
  report.component_histogram = history.latest().component_histogram();

  report.taxonomy = taxonomy(repos);
  report.ages = list_age_stats(repos, options.measurement);
  report.stars_forks_correlation = stars_forks_pearson(repos);

  const Sweeper sweeper(history, corpus);
  report.sweep = sweeper.sweep(options.sweep_points);
  if (!report.sweep.empty()) {
    const std::size_t first_sites = report.sweep.front().site_count;
    const std::size_t last_sites = report.sweep.back().site_count;
    report.additional_sites_latest_vs_first =
        last_sites > first_sites ? last_sites - first_sites : 0;
  }

  ImpactSummary impacts = compute_etld_impacts(history, corpus, repos);
  report.harmed_etlds = impacts.harmed_etlds;
  report.harmed_hostnames = impacts.harmed_hostnames;
  if (impacts.impacts.size() > options.top_etlds) {
    impacts.impacts.resize(options.top_etlds);
  }
  report.top_impacts = std::move(impacts.impacts);

  report.repo_impacts =
      per_repo_divergence(history, corpus, sweeper, repos, /*anchored_only=*/true);

  return report;
}

}  // namespace psl::harm
