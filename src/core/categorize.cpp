#include "psl/core/categorize.hpp"

#include <unordered_map>
#include <unordered_set>

#include "psl/core/site_former.hpp"

namespace psl::harm {

CategoryBreakdown categorize_harm(const history::History& history,
                                  const archive::Corpus& corpus,
                                  const ImpactSummary& impacts) {
  const List& latest = history.latest();
  const iana::RootZone& zone = iana::RootZone::builtin();

  // The harmed eTLD set (missing from >= 1 fixed-production project).
  std::unordered_set<std::string> harmed_etlds;
  for (const EtldImpact& impact : impacts.impacts) {
    if (impact.missing_fixed_production > 0) harmed_etlds.insert(impact.etld);
  }

  CategoryBreakdown breakdown;
  for (const std::string& host : corpus.hostnames()) {
    if (is_ip_literal(host)) {
      ++breakdown.ip_hosts;
      continue;
    }
    const Match m = latest.match(host);
    const iana::TldCategory category = zone.categorize_suffix(m.public_suffix);
    ++breakdown.hosts_by_tld_category[category];

    if (!m.matched_explicit_rule) {
      ++breakdown.hosts_under_implicit_star;
    } else if (m.section == Section::kPrivate) {
      ++breakdown.hosts_under_private_rules;
    } else {
      ++breakdown.hosts_under_icann_rules;
    }

    if (harmed_etlds.contains(m.public_suffix)) {
      ++breakdown.harmed_by_tld_category[category];
      if (m.matched_explicit_rule && m.section == Section::kPrivate) {
        ++breakdown.harmed_under_private_rules;
      } else if (m.matched_explicit_rule) {
        ++breakdown.harmed_under_icann_rules;
      }
    }
  }
  return breakdown;
}

}  // namespace psl::harm
