#include "psl/core/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

#include "psl/core/site_former.hpp"
#include "psl/util/strings.hpp"

namespace psl::harm {

IncrementalSweeper::IncrementalSweeper(const history::History& history,
                                       const archive::Corpus& corpus)
    : history_(history), corpus_(corpus) {
  const auto& hosts = corpus_.hostnames();

  // Suffix index: "www.example.co.uk" registers under uk, co.uk,
  // example.co.uk and www.example.co.uk. Keys are string_views into the
  // corpus-owned hostname storage (each suffix is a slice of its host's own
  // bytes), so the index allocates nothing per key; a pre-count pass sizes
  // the table once so the build never rehashes.
  std::size_t suffix_count = 0;
  for (const std::string& host : hosts) {
    if (is_ip_literal(host)) continue;
    suffix_count += 1 + static_cast<std::size_t>(
                            std::count(host.begin(), host.end(), '.'));
  }
  hosts_by_suffix_.reserve(suffix_count);
  for (archive::HostId id = 0; id < hosts.size(); ++id) {
    const std::string& host = hosts[id];
    if (is_ip_literal(host)) continue;
    std::string_view view = host;
    while (true) {
      hosts_by_suffix_[view].push_back(id);
      const std::size_t dot = view.find('.');
      if (dot == std::string_view::npos) break;
      view = view.substr(dot + 1);
    }
  }

  // Request adjacency.
  requests_of_host_.resize(hosts.size());
  const auto& requests = corpus_.requests();
  for (std::uint32_t r = 0; r < requests.size(); ++r) {
    requests_of_host_[requests[r].page_host].push_back(r);
    if (requests[r].resource_host != requests[r].page_host) {
      requests_of_host_[requests[r].resource_host].push_back(r);
    }
  }

  // Reference keys from the newest list (for divergence). This is a full
  // pass over the corpus, so it goes through the arena-compiled matcher.
  {
    const CompiledMatcher latest(history_.latest());
    latest_keys_.reserve(hosts.size());
    for (const std::string& host : hosts) latest_keys_.push_back(key_for(host, latest));
  }

  // Per-version churn from the schedule (dates are snapped to versions).
  adds_by_version_.resize(history_.version_count());
  removes_by_version_.resize(history_.version_count());
  for (const history::ScheduledRule& sr : history_.schedule()) {
    if (const auto idx = history_.version_index_at(sr.added);
        idx && history_.version_date(*idx) == sr.added) {
      adds_by_version_[*idx].push_back(sr.rule);
    }
    if (sr.removed) {
      if (const auto idx = history_.version_index_at(*sr.removed);
          idx && history_.version_date(*idx) == *sr.removed) {
        removes_by_version_[*idx].push_back(sr.rule);
      }
    }
  }

  assign_initial(0);
}

std::string IncrementalSweeper::key_for(const std::string& host, const List& list) const {
  if (is_ip_literal(host)) return host;
  Match m = list.match(host);
  return m.registrable_domain.empty() ? host : std::move(m.registrable_domain);
}

std::string IncrementalSweeper::key_for(const std::string& host,
                                        const CompiledMatcher& matcher) const {
  if (is_ip_literal(host)) return host;
  const MatchView m = matcher.match_view(host);
  return m.registrable_domain.empty() ? host : std::string(m.registrable_domain);
}

void IncrementalSweeper::assign_initial(std::size_t version_index) {
  version_ = version_index;
  list_ = history_.snapshot(version_index);

  const auto& hosts = corpus_.hostnames();
  keys_.clear();
  keys_.reserve(hosts.size());
  key_refcounts_.clear();
  divergent_ = 0;
  const CompiledMatcher compiled(list_);  // one full corpus pass: compile first
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    keys_.push_back(key_for(hosts[i], compiled));
    ++key_refcounts_[keys_.back()];
    if (keys_.back() != latest_keys_[i]) ++divergent_;
  }

  const auto& requests = corpus_.requests();
  request_third_party_.assign(requests.size(), false);
  third_party_ = 0;
  for (std::size_t r = 0; r < requests.size(); ++r) {
    const bool third = keys_[requests[r].page_host] != keys_[requests[r].resource_host];
    request_third_party_[r] = third;
    third_party_ += third;
  }
}

void IncrementalSweeper::rekey_host(archive::HostId host, const List& list) {
  ++hosts_rematched_;
  std::string fresh = key_for(corpus_.hostname(host), list);
  std::string& slot = keys_[host];
  if (fresh == slot) return;

  // Site structure.
  auto old_it = key_refcounts_.find(slot);
  assert(old_it != key_refcounts_.end());
  if (--old_it->second == 0) key_refcounts_.erase(old_it);
  ++key_refcounts_[fresh];

  // Divergence.
  const bool was_divergent = slot != latest_keys_[host];
  const bool now_divergent = fresh != latest_keys_[host];
  if (was_divergent && !now_divergent) --divergent_;
  if (!was_divergent && now_divergent) ++divergent_;

  slot = std::move(fresh);

  // Third-party flags of every request touching this host.
  const auto& requests = corpus_.requests();
  for (std::uint32_t r : requests_of_host_[host]) {
    const bool third = keys_[requests[r].page_host] != keys_[requests[r].resource_host];
    if (third != static_cast<bool>(request_third_party_[r])) {
      request_third_party_[r] = third;
      third_party_ += third ? 1 : -1;
    }
  }
}

VersionMetrics IncrementalSweeper::current() const {
  VersionMetrics m;
  m.version_index = version_;
  m.date = history_.version_date(version_);
  m.rule_count = list_.rule_count();
  m.site_count = key_refcounts_.size();
  m.mean_hosts_per_site =
      key_refcounts_.empty()
          ? 0.0
          : static_cast<double>(keys_.size()) / static_cast<double>(key_refcounts_.size());
  m.third_party_requests = third_party_;
  m.divergent_hosts = divergent_;
  return m;
}

VersionMetrics IncrementalSweeper::advance_to(std::size_t version_index) {
  assert(version_index >= version_);
  if (version_index == version_) return current();

  // Replay the per-version churn into the live trie, collecting hosts
  // affected by any changed rule: exactly those carrying the rule's label
  // string as a dotted suffix (wildcards/exceptions reach one label deeper
  // or shallower, but all such hosts still carry the rule's base labels).
  std::unordered_set<archive::HostId> affected;
  const auto collect = [&](const Rule& rule) {
    const std::string joined = util::join(rule.labels(), ".");
    const auto it = hosts_by_suffix_.find(std::string_view(joined));
    if (it == hosts_by_suffix_.end()) return;
    affected.insert(it->second.begin(), it->second.end());
  };

  for (std::size_t v = version_ + 1; v <= version_index; ++v) {
    for (const Rule& rule : removes_by_version_[v]) {
      list_.remove_rule(rule);
      collect(rule);
    }
    for (const Rule& rule : adds_by_version_[v]) {
      list_.add_rule(rule);
      collect(rule);
    }
  }

  version_ = version_index;
  for (archive::HostId host : affected) rekey_host(host, list_);
  return current();
}

std::vector<VersionMetrics> IncrementalSweeper::sweep_versions(
    const std::vector<std::size_t>& versions) {
  std::vector<VersionMetrics> out;
  out.reserve(versions.size());
  for (const std::size_t v : versions) out.push_back(advance_to(v));
  return out;
}

std::vector<VersionMetrics> IncrementalSweeper::sweep_all() {
  std::vector<VersionMetrics> out;
  out.reserve(history_.version_count() - version_);
  out.push_back(current());
  for (std::size_t v = version_ + 1; v < history_.version_count(); ++v) {
    out.push_back(advance_to(v));
  }
  return out;
}

}  // namespace psl::harm
