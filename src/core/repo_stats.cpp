#include "psl/core/repo_stats.hpp"

#include "psl/util/stats.hpp"

namespace psl::harm {

TaxonomyBreakdown taxonomy(std::span<const repos::RepoRecord> repos) {
  TaxonomyBreakdown t;
  t.total = repos.size();
  for (const repos::RepoRecord& r : repos) {
    switch (r.usage) {
      case repos::Usage::kFixedProduction: ++t.fixed_production; break;
      case repos::Usage::kFixedTest: ++t.fixed_test; break;
      case repos::Usage::kFixedOther: ++t.fixed_other; break;
      case repos::Usage::kUpdatedBuild: ++t.updated_build; break;
      case repos::Usage::kUpdatedUser: ++t.updated_user; break;
      case repos::Usage::kUpdatedServer: ++t.updated_server; break;
      case repos::Usage::kDependency:
        ++t.dependency;
        ++t.dependency_by_lib[r.dependency_lib];
        break;
    }
  }
  t.fixed = t.fixed_production + t.fixed_test + t.fixed_other;
  t.updated = t.updated_build + t.updated_user + t.updated_server;
  return t;
}

AgeStats list_age_stats(std::span<const repos::RepoRecord> repos, util::Date t) {
  AgeStats stats;
  for (const repos::RepoRecord& r : repos) {
    const auto age = r.list_age(t);
    if (!age) continue;
    const auto days = static_cast<double>(*age);
    stats.all.push_back(days);
    if (repos::is_fixed(r.usage)) stats.fixed.push_back(days);
    if (repos::is_updated(r.usage)) stats.updated.push_back(days);
  }
  stats.median_all = util::median(stats.all);
  stats.median_fixed = util::median(stats.fixed);
  stats.median_updated = util::median(stats.updated);
  return stats;
}

double stars_forks_pearson(std::span<const repos::RepoRecord> repos, bool anchored_only) {
  std::vector<double> stars, forks;
  for (const repos::RepoRecord& r : repos) {
    if (anchored_only && !r.anchored) continue;
    stars.push_back(static_cast<double>(r.stars));
    forks.push_back(static_cast<double>(r.forks));
  }
  return util::pearson(stars, forks);
}

}  // namespace psl::harm
