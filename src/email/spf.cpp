#include "psl/email/spf.hpp"

#include <charconv>

#include "psl/url/host.hpp"
#include "psl/util/strings.hpp"

namespace psl::email {

std::string_view to_string(SpfResult result) noexcept {
  switch (result) {
    case SpfResult::kPass: return "pass";
    case SpfResult::kFail: return "fail";
    case SpfResult::kSoftFail: return "softfail";
    case SpfResult::kNeutral: return "neutral";
    case SpfResult::kNone: return "none";
    case SpfResult::kPermError: return "permerror";
    case SpfResult::kTempError: return "temperror";
  }
  return "unknown";
}

bool ip4_in_network(const std::array<std::uint8_t, 4>& ip,
                    const std::array<std::uint8_t, 4>& network, int prefix_len) noexcept {
  if (prefix_len <= 0) return true;
  if (prefix_len > 32) return false;
  const auto to_u32 = [](const std::array<std::uint8_t, 4>& a) {
    return (static_cast<std::uint32_t>(a[0]) << 24) | (static_cast<std::uint32_t>(a[1]) << 16) |
           (static_cast<std::uint32_t>(a[2]) << 8) | a[3];
  };
  const std::uint32_t mask =
      prefix_len == 32 ? 0xFFFFFFFFu : ~((1u << (32 - prefix_len)) - 1);
  return (to_u32(ip) & mask) == (to_u32(network) & mask);
}

namespace {

constexpr std::size_t kDnsMechanismLimit = 10;
constexpr int kIncludeDepthLimit = 10;

util::Result<SpfTerm> parse_term(std::string_view token) {
  SpfTerm term;
  if (!token.empty() &&
      (token[0] == '+' || token[0] == '-' || token[0] == '~' || token[0] == '?')) {
    term.qualifier = token[0];
    token.remove_prefix(1);
  }

  const std::string lowered = util::to_lower(token);
  const std::string_view t = lowered;

  if (t == "all") {
    term.kind = SpfTerm::Kind::kAll;
    return term;
  }
  if (util::starts_with(t, "ip4:")) {
    term.kind = SpfTerm::Kind::kIp4;
    std::string_view value = t.substr(4);
    const std::size_t slash = value.find('/');
    if (slash != std::string_view::npos) {
      const std::string_view prefix = value.substr(slash + 1);
      int len = -1;
      const auto [ptr, ec] = std::from_chars(prefix.data(), prefix.data() + prefix.size(), len);
      if (ec != std::errc{} || ptr != prefix.data() + prefix.size() || len < 0 || len > 32) {
        return util::make_error("spf.bad-cidr", "invalid ip4 prefix length");
      }
      term.prefix_len = len;
      value = value.substr(0, slash);
    }
    auto parsed = url::parse_ipv4(value);
    if (!parsed) return util::make_error("spf.bad-ip4", "invalid ip4 address");
    term.address = *parsed;
    return term;
  }
  if (t == "a" || util::starts_with(t, "a:")) {
    term.kind = SpfTerm::Kind::kA;
    if (util::starts_with(t, "a:")) term.domain = std::string(t.substr(2));
    return term;
  }
  if (t == "mx" || util::starts_with(t, "mx:")) {
    term.kind = SpfTerm::Kind::kMx;
    if (util::starts_with(t, "mx:")) term.domain = std::string(t.substr(3));
    return term;
  }
  if (util::starts_with(t, "include:")) {
    term.kind = SpfTerm::Kind::kInclude;
    term.domain = std::string(t.substr(8));
    if (term.domain.empty()) return util::make_error("spf.bad-include", "empty include target");
    return term;
  }
  if (util::starts_with(t, "redirect=")) {
    term.kind = SpfTerm::Kind::kRedirect;
    term.domain = std::string(t.substr(9));
    if (term.domain.empty()) return util::make_error("spf.bad-redirect", "empty redirect target");
    return term;
  }
  return util::make_error("spf.unknown-term", "unsupported mechanism: " + std::string(t));
}

}  // namespace

util::Result<SpfRecord> parse_spf(std::string_view txt) {
  const auto tokens = util::split(txt, ' ');
  if (tokens.empty() || util::trim(tokens[0]) != "v=spf1") {
    return util::make_error("spf.no-version", "record must start with v=spf1");
  }
  SpfRecord record;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = util::trim(tokens[i]);
    if (token.empty()) continue;
    auto term = parse_term(token);
    if (!term) return term.error();
    record.terms.push_back(*std::move(term));
  }
  return record;
}

namespace {

SpfResult qualifier_result(char q) {
  switch (q) {
    case '-': return SpfResult::kFail;
    case '~': return SpfResult::kSoftFail;
    case '?': return SpfResult::kNeutral;
    default: return SpfResult::kPass;
  }
}

}  // namespace

SpfOutcome SpfEvaluator::check_host(const std::array<std::uint8_t, 4>& sender_ip,
                                    std::string_view domain, std::uint64_t now) {
  std::size_t budget = kDnsMechanismLimit;
  return evaluate(sender_ip, domain, now, budget, 0);
}

SpfOutcome SpfEvaluator::evaluate(const std::array<std::uint8_t, 4>& sender_ip,
                                  std::string_view domain, std::uint64_t now,
                                  std::size_t& query_budget, int depth) {
  SpfOutcome outcome;
  if (depth > kIncludeDepthLimit) {
    outcome.result = SpfResult::kPermError;
    return outcome;
  }

  auto qname = dns::Name::parse(domain);
  if (!qname) {
    outcome.result = SpfResult::kPermError;
    return outcome;
  }

  const dns::ResolveResult answer = resolver_->query(*qname, dns::Type::kTxt, now);
  if (answer.rcode == dns::Rcode::kServFail) {
    outcome.result = SpfResult::kTempError;
    return outcome;
  }

  // Find the (single) SPF record among the TXT strings.
  std::optional<SpfRecord> record;
  for (const dns::ResourceRecord& rr : answer.answers) {
    if (rr.type != dns::Type::kTxt) continue;
    const std::string text = std::get<dns::TxtRecord>(rr.rdata).joined();
    if (!util::starts_with(text, "v=spf1")) continue;
    auto parsed = parse_spf(text);
    if (!parsed) {
      outcome.result = SpfResult::kPermError;
      return outcome;
    }
    if (record) {
      // RFC 7208 section 4.5: multiple records are a permerror.
      outcome.result = SpfResult::kPermError;
      return outcome;
    }
    record = *std::move(parsed);
  }
  if (!record) {
    outcome.result = SpfResult::kNone;
    return outcome;
  }

  const auto charge = [&]() -> bool {
    if (query_budget == 0) return false;
    --query_budget;
    ++outcome.dns_mechanism_queries;
    return true;
  };

  const auto a_matches = [&](std::string_view target) {
    auto target_name = dns::Name::parse(target);
    if (!target_name) return false;
    const dns::ResolveResult a = resolver_->query(*target_name, dns::Type::kA, now);
    for (const dns::ResourceRecord& rr : a.answers) {
      if (rr.type != dns::Type::kA) continue;
      if (std::get<dns::ARecord>(rr.rdata).address == sender_ip) return true;
    }
    return false;
  };

  for (const SpfTerm& term : record->terms) {
    switch (term.kind) {
      case SpfTerm::Kind::kAll:
        outcome.result = qualifier_result(term.qualifier);
        outcome.matched_mechanism = "all";
        return outcome;

      case SpfTerm::Kind::kIp4:
        if (ip4_in_network(sender_ip, term.address, term.prefix_len)) {
          outcome.result = qualifier_result(term.qualifier);
          outcome.matched_mechanism = "ip4";
          return outcome;
        }
        break;

      case SpfTerm::Kind::kA: {
        if (!charge()) {
          outcome.result = SpfResult::kPermError;
          return outcome;
        }
        const std::string target =
            term.domain.empty() ? std::string(domain) : term.domain;
        if (a_matches(target)) {
          outcome.result = qualifier_result(term.qualifier);
          outcome.matched_mechanism = "a";
          return outcome;
        }
        break;
      }

      case SpfTerm::Kind::kMx: {
        if (!charge()) {
          outcome.result = SpfResult::kPermError;
          return outcome;
        }
        const std::string target =
            term.domain.empty() ? std::string(domain) : term.domain;
        auto target_name = dns::Name::parse(target);
        if (!target_name) break;
        const dns::ResolveResult mx = resolver_->query(*target_name, dns::Type::kMx, now);
        for (const dns::ResourceRecord& rr : mx.answers) {
          if (rr.type != dns::Type::kMx) continue;
          if (a_matches(std::get<dns::MxRecord>(rr.rdata).exchange.to_string())) {
            outcome.result = qualifier_result(term.qualifier);
            outcome.matched_mechanism = "mx";
            return outcome;
          }
        }
        break;
      }

      case SpfTerm::Kind::kInclude: {
        if (!charge()) {
          outcome.result = SpfResult::kPermError;
          return outcome;
        }
        SpfOutcome inner = evaluate(sender_ip, term.domain, now, query_budget, depth + 1);
        outcome.dns_mechanism_queries += inner.dns_mechanism_queries;
        // RFC 7208 table: include matches iff the inner result is pass;
        // inner permerror/none propagate as permerror.
        if (inner.result == SpfResult::kPass) {
          outcome.result = qualifier_result(term.qualifier);
          outcome.matched_mechanism = "include:" + term.domain;
          return outcome;
        }
        if (inner.result == SpfResult::kPermError || inner.result == SpfResult::kNone) {
          outcome.result = SpfResult::kPermError;
          return outcome;
        }
        if (inner.result == SpfResult::kTempError) {
          outcome.result = SpfResult::kTempError;
          return outcome;
        }
        break;
      }

      case SpfTerm::Kind::kRedirect: {
        if (!charge()) {
          outcome.result = SpfResult::kPermError;
          return outcome;
        }
        SpfOutcome inner = evaluate(sender_ip, term.domain, now, query_budget, depth + 1);
        inner.dns_mechanism_queries += outcome.dns_mechanism_queries;
        if (inner.result == SpfResult::kNone) inner.result = SpfResult::kPermError;
        return inner;
      }
    }
  }

  // Fell off the record: neutral, per RFC 7208 section 4.7.
  outcome.result = SpfResult::kNeutral;
  return outcome;
}

}  // namespace psl::email
