#include "psl/email/receiver.hpp"

namespace psl::email {

std::string_view to_string(Disposition disposition) noexcept {
  switch (disposition) {
    case Disposition::kAccept: return "accept";
    case Disposition::kQuarantine: return "quarantine";
    case Disposition::kReject: return "reject";
    case Disposition::kNoPolicy: return "no-policy";
  }
  return "unknown";
}

ReceiverVerdict evaluate_message(dns::StubResolver& resolver, const List& list,
                                 const MailMessage& message, std::uint64_t now) {
  ReceiverVerdict verdict;

  // 1. Policy discovery (determines alignment strictness too).
  verdict.lookup = discover_policy(resolver, list, message.from_domain, now);
  const bool aspf_strict = verdict.lookup.record && verdict.lookup.record->aspf_strict;
  const bool adkim_strict = verdict.lookup.record && verdict.lookup.record->adkim_strict;

  // 2. SPF for the envelope sender.
  SpfEvaluator spf(resolver);
  verdict.spf = spf.check_host(message.sender_ip, message.mail_from_domain, now);
  verdict.spf_aligned =
      verdict.spf.result == SpfResult::kPass &&
      identifier_aligned(list, message.from_domain, message.mail_from_domain, aspf_strict);

  // 3. DKIM alignment (signature validity is the caller's statement).
  for (const std::string& d : message.dkim_pass_domains) {
    if (identifier_aligned(list, message.from_domain, d, adkim_strict)) {
      verdict.dkim_aligned = true;
      break;
    }
  }

  // 4. DMARC pass: either aligned authenticated identifier.
  verdict.dmarc_pass = verdict.spf_aligned || verdict.dkim_aligned;

  // 5. Disposition.
  const auto policy = verdict.lookup.effective_policy();
  if (!policy) {
    verdict.disposition = Disposition::kNoPolicy;
  } else if (verdict.dmarc_pass) {
    verdict.disposition = Disposition::kAccept;
  } else {
    switch (*policy) {
      case Policy::kNone: verdict.disposition = Disposition::kAccept; break;
      case Policy::kQuarantine: verdict.disposition = Disposition::kQuarantine; break;
      case Policy::kReject: verdict.disposition = Disposition::kReject; break;
    }
  }
  return verdict;
}

}  // namespace psl::email
