#include "psl/email/dmarc.hpp"

#include "psl/util/strings.hpp"

namespace psl::email {

std::string organizational_domain(const List& list, std::string_view host) {
  std::string_view h = host;
  if (!h.empty() && h.back() == '.') h.remove_suffix(1);
  const auto rd = list.registrable_domain(h);
  return rd ? *rd : std::string(h);
}

std::string_view to_string(Policy policy) noexcept {
  switch (policy) {
    case Policy::kNone: return "none";
    case Policy::kQuarantine: return "quarantine";
    case Policy::kReject: return "reject";
  }
  return "unknown";
}

namespace {

std::optional<Policy> parse_policy(std::string_view value) {
  if (value == "none") return Policy::kNone;
  if (value == "quarantine") return Policy::kQuarantine;
  if (value == "reject") return Policy::kReject;
  return std::nullopt;
}

}  // namespace

util::Result<DmarcRecord> parse_dmarc(std::string_view txt) {
  const auto tags = util::split(txt, ';');
  if (tags.empty() || util::trim(tags[0]) != "v=DMARC1") {
    return util::make_error("dmarc.no-version", "first tag must be v=DMARC1");
  }

  DmarcRecord record;
  bool have_p = false;
  for (std::size_t i = 1; i < tags.size(); ++i) {
    const std::string_view tag = util::trim(tags[i]);
    if (tag.empty()) continue;
    const std::size_t eq = tag.find('=');
    if (eq == std::string_view::npos) {
      return util::make_error("dmarc.bad-tag", "tag without '='");
    }
    const std::string key = util::to_lower(util::trim(tag.substr(0, eq)));
    const std::string_view value = util::trim(tag.substr(eq + 1));

    if (key == "p") {
      const auto p = parse_policy(value);
      if (!p) return util::make_error("dmarc.bad-policy", "p= must be none/quarantine/reject");
      record.policy = *p;
      have_p = true;
    } else if (key == "sp") {
      const auto p = parse_policy(value);
      if (!p) return util::make_error("dmarc.bad-policy", "sp= must be none/quarantine/reject");
      record.subdomain_policy = *p;
    } else if (key == "pct") {
      int pct = 0;
      for (char c : value) {
        if (c < '0' || c > '9') return util::make_error("dmarc.bad-pct", "pct= not numeric");
        pct = pct * 10 + (c - '0');
      }
      if (pct > 100) return util::make_error("dmarc.bad-pct", "pct= above 100");
      record.pct = pct;
    } else if (key == "adkim") {
      record.adkim_strict = value == "s";
    } else if (key == "aspf") {
      record.aspf_strict = value == "s";
    } else if (key == "rua") {
      for (std::string_view uri : util::split(value, ',')) {
        record.rua.emplace_back(util::trim(uri));
      }
    }
    // Unknown tags are ignored, per the RFC.
  }
  if (!have_p) {
    return util::make_error("dmarc.no-policy", "missing required p= tag");
  }
  return record;
}

namespace {

/// Query _dmarc.<domain> TXT and return the first parseable DMARC record.
std::optional<DmarcRecord> query_dmarc(dns::StubResolver& resolver, std::string_view domain,
                                       std::uint64_t now, std::vector<std::string>& queried) {
  auto name = dns::Name::parse("_dmarc." + std::string(domain));
  if (!name) return std::nullopt;
  queried.push_back(name->to_string());
  const dns::ResolveResult answer = resolver.query(*name, dns::Type::kTxt, now);
  if (!answer.ok()) return std::nullopt;
  for (const dns::ResourceRecord& rr : answer.answers) {
    if (rr.type != dns::Type::kTxt) continue;
    const auto record = parse_dmarc(std::get<dns::TxtRecord>(rr.rdata).joined());
    if (record.ok()) return *record;
  }
  return std::nullopt;
}

}  // namespace

DmarcLookup discover_policy(dns::StubResolver& resolver, const List& list,
                            std::string_view from_host, std::uint64_t now) {
  DmarcLookup lookup;

  if (auto record = query_dmarc(resolver, from_host, now, lookup.queried_names)) {
    lookup.record = std::move(record);
    return lookup;
  }

  const std::string org = organizational_domain(list, from_host);
  if (org != from_host) {
    if (auto record = query_dmarc(resolver, org, now, lookup.queried_names)) {
      lookup.record = std::move(record);
      lookup.used_org_fallback = true;
      // The mail came from a subdomain of the record's domain, so the
      // subdomain policy (sp=) governs.
      lookup.subdomain_policy_applies = true;
    }
  }
  return lookup;
}

bool identifier_aligned(const List& list, std::string_view from_domain,
                        std::string_view authenticated_domain, bool strict) {
  std::string_view a = from_domain;
  std::string_view b = authenticated_domain;
  if (!a.empty() && a.back() == '.') a.remove_suffix(1);
  if (!b.empty() && b.back() == '.') b.remove_suffix(1);
  if (strict) return a == b;
  return organizational_domain(list, a) == organizational_domain(list, b);
}

}  // namespace psl::email
