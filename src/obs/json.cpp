#include "psl/obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace psl::obs {

namespace {

void write_escaped(std::ostream& out, std::string_view s) {
  out << '"';
  for (const char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void write_number(std::ostream& out, double v) {
  // JSON has no Infinity/NaN; an empty histogram's min/max become null.
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  std::ostringstream buf;
  buf.precision(12);
  buf << v;
  out << buf.str();
}

}  // namespace

void write_json(const MetricsRegistry& registry, std::ostream& out) {
  out << "{\n";

  out << "  \"counters\": {";
  const auto counters = registry.counters();
  for (std::size_t i = 0; i < counters.size(); ++i) {
    out << (i ? ", " : "");
    write_escaped(out, counters[i].first);
    out << ": " << counters[i].second;
  }
  out << "},\n";

  out << "  \"gauges\": {";
  const auto gauges = registry.gauges();
  for (std::size_t i = 0; i < gauges.size(); ++i) {
    out << (i ? ", " : "");
    write_escaped(out, gauges[i].first);
    out << ": ";
    write_number(out, gauges[i].second);
  }
  out << "},\n";

  out << "  \"histograms\": {\n";
  const auto histograms = registry.histograms();
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const auto& [name, h] = histograms[i];
    out << "    ";
    write_escaped(out, name);
    out << ": {\"count\": " << h.count << ", \"sum\": ";
    write_number(out, h.sum);
    out << ", \"min\": ";
    write_number(out, h.min);
    out << ", \"max\": ";
    write_number(out, h.max);
    out << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      out << (b ? ", " : "") << "{\"le\": ";
      if (b < h.bounds.size()) {
        write_number(out, h.bounds[b]);
      } else {
        out << "\"inf\"";
      }
      out << ", \"count\": " << h.counts[b] << "}";
    }
    out << "]}" << (i + 1 < histograms.size() ? "," : "") << "\n";
  }
  out << "  },\n";

  out << "  \"spans\": [\n";
  const auto spans = registry.spans();
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    out << "    {\"name\": ";
    write_escaped(out, s.name);
    out << ", \"parent\": ";
    write_escaped(out, s.parent);
    out << ", \"start_ms\": ";
    write_number(out, s.start_ms);
    out << ", \"dur_ms\": ";
    write_number(out, s.dur_ms);
    out << ", \"depth\": " << s.depth << "}" << (i + 1 < spans.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"diagnostics\": [\n";
  const auto diagnostics = registry.diagnostics();
  for (std::size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    out << "    {\"code\": ";
    write_escaped(out, d.code);
    out << ", \"line\": " << d.line << ", \"detail\": ";
    write_escaped(out, d.detail);
    out << "}" << (i + 1 < diagnostics.size() ? "," : "") << "\n";
  }
  out << "  ],\n";

  out << "  \"diagnostics_dropped\": " << registry.diagnostics_dropped() << "\n";
  out << "}\n";
}

std::string to_json(const MetricsRegistry& registry) {
  std::ostringstream out;
  write_json(registry, out);
  return out.str();
}

}  // namespace psl::obs
