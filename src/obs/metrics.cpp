#include "psl/obs/metrics.hpp"

#include <algorithm>
#include <array>

namespace psl::obs {

namespace {

// 50µs .. 10s in roughly 1-2.5-5 steps: wide enough for a whole sweep,
// fine enough for a single per-version phase.
constexpr std::array<double, 16> kLatencyBoundsMs = {
    0.05, 0.1, 0.25, 0.5, 1.0,  2.5,   5.0,   10.0,
    25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0};

void atomic_min(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v < cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& slot, double v) noexcept {
  double cur = slot.load(std::memory_order_relaxed);
  while (v > cur && !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

std::span<const double> Histogram::default_latency_bounds_ms() noexcept {
  return kLatencyBoundsMs;
}

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()),
      counts_(bounds_.size() + 1) {}

void Histogram::observe(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  counts_[static_cast<std::size_t>(it - bounds_.begin())].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value, std::memory_order_relaxed)) {
  }
  atomic_min(min_, value);
  atomic_max(max_, value);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) s.counts.push_back(c.load(std::memory_order_relaxed));
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.min = min_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

MetricsRegistry::MetricsRegistry(std::size_t diagnostic_capacity, std::size_t span_capacity)
    : diagnostic_capacity_(diagnostic_capacity),
      span_capacity_(span_capacity),
      epoch_(std::chrono::steady_clock::now()) {}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  // Instruments hold atomics (immovable); construct in place.
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::span<const double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_
      .emplace(std::piecewise_construct, std::forward_as_tuple(std::string(name)),
               std::forward_as_tuple(bounds))
      .first->second;
}

void MetricsRegistry::diagnose(Diagnostic d) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (diagnostics_.size() >= diagnostic_capacity_) {
    dropped_diagnostics_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  diagnostics_.push_back(std::move(d));
}

std::vector<Diagnostic> MetricsRegistry::diagnostics() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return diagnostics_;
}

void MetricsRegistry::record_span(SpanRecord r) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= span_capacity_) {
    dropped_spans_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  spans_.push_back(std::move(r));
}

std::vector<SpanRecord> MetricsRegistry::spans() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

double MetricsRegistry::now_ms() const noexcept {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<std::pair<std::string, std::int64_t>> MetricsRegistry::counters() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, std::int64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.emplace_back(name, c.value());
  return out;
}

std::vector<std::pair<std::string, double>> MetricsRegistry::gauges() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.emplace_back(name, g.value());
  return out;
}

std::vector<std::pair<std::string, Histogram::Snapshot>> MetricsRegistry::histograms() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::string, Histogram::Snapshot>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.emplace_back(name, h.snapshot());
  return out;
}

}  // namespace psl::obs
