#include "psl/obs/span.hpp"

namespace psl::obs {

#if PSL_OBS_ENABLED

namespace {

// Innermost open span on this thread — the parent of any span opened next.
// Spans are strictly scoped (RAII), so a plain intrusive stack suffices.
thread_local ScopedSpan* t_current_span = nullptr;

}  // namespace

ScopedSpan::ScopedSpan(MetricsRegistry* registry, std::string_view name)
    : registry_(registry) {
  if (!registry_) return;
  name_ = std::string(name);
  parent_ = t_current_span;
  depth_ = parent_ ? parent_->depth_ + 1 : 0;
  start_ms_ = registry_->now_ms();
  t_current_span = this;
}

ScopedSpan::~ScopedSpan() {
  if (!registry_) return;
  const double dur = registry_->now_ms() - start_ms_;
  SpanRecord record;
  record.name = name_;
  record.parent = parent_ ? parent_->name_ : std::string();
  record.start_ms = start_ms_;
  record.dur_ms = dur;
  record.depth = depth_;
  registry_->histogram(name_ + "_ms").observe(dur);
  registry_->record_span(std::move(record));
  t_current_span = parent_;
}

double ScopedSpan::elapsed_ms() const noexcept {
  if (!registry_) return 0.0;
  return registry_->now_ms() - start_ms_;
}

#endif  // PSL_OBS_ENABLED

}  // namespace psl::obs
