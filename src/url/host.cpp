#include "psl/url/host.hpp"

#include <algorithm>
#include <cstdio>

#include "psl/idna/idna.hpp"
#include "psl/util/strings.hpp"

namespace psl::url {

namespace {

bool all_digits(std::string_view s) noexcept {
  return !s.empty() && std::all_of(s.begin(), s.end(),
                                   [](char c) { return c >= '0' && c <= '9'; });
}

}  // namespace

bool looks_like_ipv4(std::string_view s) noexcept {
  if (!s.empty() && s.back() == '.') s.remove_suffix(1);
  const auto labels = util::split(s, '.');
  if (labels.empty()) return false;
  // Per the URL spec, a host whose final label is numeric is treated as an
  // IPv4 candidate; we use the stricter "all labels numeric" since our
  // corpora never emit mixed forms.
  return std::all_of(labels.begin(), labels.end(),
                     [](std::string_view l) { return all_digits(l); });
}

bool looks_like_ip_literal(std::string_view host) noexcept {
  if (host.empty()) return false;
  if (host.find(':') != std::string_view::npos) return true;  // IPv6
  const std::size_t last_dot = host.rfind('.');
  const std::string_view last =
      last_dot == std::string_view::npos ? host : host.substr(last_dot + 1);
  return all_digits(last);
}

util::Result<std::array<std::uint8_t, 4>> parse_ipv4(std::string_view s) {
  const auto labels = util::split(s, '.');
  if (labels.size() != 4) {
    return util::make_error("ipv4.bad-shape", "expected four dot-separated octets");
  }
  std::array<std::uint8_t, 4> out{};
  for (std::size_t i = 0; i < 4; ++i) {
    const std::string_view l = labels[i];
    if (!all_digits(l) || l.size() > 3) {
      return util::make_error("ipv4.bad-octet", "octet is not 1-3 digits");
    }
    if (l.size() > 1 && l.front() == '0') {
      return util::make_error("ipv4.leading-zero", "octet has a leading zero");
    }
    int value = 0;
    for (char c : l) value = value * 10 + (c - '0');
    if (value > 255) {
      return util::make_error("ipv4.octet-range", "octet exceeds 255");
    }
    out[i] = static_cast<std::uint8_t>(value);
  }
  return out;
}

namespace {

util::Result<std::uint16_t> parse_hex_group(std::string_view g) {
  if (g.empty() || g.size() > 4) {
    return util::make_error("ipv6.bad-group", "group must be 1-4 hex digits");
  }
  std::uint32_t value = 0;
  for (char c : g) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
    else return util::make_error("ipv6.bad-group", "non-hex digit in group");
    value = value * 16 + static_cast<std::uint32_t>(digit);
  }
  return static_cast<std::uint16_t>(value);
}

}  // namespace

util::Result<std::array<std::uint16_t, 8>> parse_ipv6(std::string_view s) {
  if (s.empty()) return util::make_error("ipv6.empty", "empty IPv6 literal");

  // Split on "::" (at most one occurrence).
  const std::size_t gap = s.find("::");
  if (gap != std::string_view::npos && s.find("::", gap + 1) != std::string_view::npos) {
    return util::make_error("ipv6.double-gap", "more than one '::'");
  }

  auto parse_side = [](std::string_view side,
                       std::vector<std::uint16_t>& out) -> util::Result<bool> {
    if (side.empty()) return true;
    auto groups = util::split(side, ':');
    for (std::size_t i = 0; i < groups.size(); ++i) {
      const std::string_view g = groups[i];
      if (g.find('.') != std::string_view::npos) {
        // Embedded IPv4 — only legal as the final component.
        if (i + 1 != groups.size()) {
          return util::make_error("ipv6.bad-v4-position", "IPv4 tail not at end");
        }
        auto v4 = parse_ipv4(g);
        if (!v4) return v4.error();
        out.push_back(static_cast<std::uint16_t>(((*v4)[0] << 8) | (*v4)[1]));
        out.push_back(static_cast<std::uint16_t>(((*v4)[2] << 8) | (*v4)[3]));
        continue;
      }
      auto group = parse_hex_group(g);
      if (!group) return group.error();
      out.push_back(*group);
    }
    return true;
  };

  std::vector<std::uint16_t> head, tail;
  if (gap == std::string_view::npos) {
    auto r = parse_side(s, head);
    if (!r) return r.error();
    if (head.size() != 8) {
      return util::make_error("ipv6.bad-length", "expected 8 groups without '::'");
    }
  } else {
    auto r1 = parse_side(s.substr(0, gap), head);
    if (!r1) return r1.error();
    auto r2 = parse_side(s.substr(gap + 2), tail);
    if (!r2) return r2.error();
    if (head.size() + tail.size() >= 8) {
      return util::make_error("ipv6.bad-length", "'::' must compress at least one group");
    }
  }

  std::array<std::uint16_t, 8> out{};
  std::copy(head.begin(), head.end(), out.begin());
  std::copy(tail.begin(), tail.end(), out.end() - static_cast<long>(tail.size()));
  return out;
}

std::string format_ipv6(const std::array<std::uint16_t, 8>& groups) {
  // RFC 5952: find the longest run of zero groups (length >= 2) to compress;
  // the leftmost wins ties.
  int best_start = -1, best_len = 0;
  for (int i = 0; i < 8;) {
    if (groups[static_cast<std::size_t>(i)] != 0) {
      ++i;
      continue;
    }
    int j = i;
    while (j < 8 && groups[static_cast<std::size_t>(j)] == 0) ++j;
    if (j - i > best_len) {
      best_start = i;
      best_len = j - i;
    }
    i = j;
  }
  if (best_len < 2) best_start = -1;

  std::string out;
  char buf[8];
  for (int i = 0; i < 8;) {
    if (i == best_start) {
      out += "::";
      i += best_len;
      continue;
    }
    if (!out.empty() && out.back() != ':') out.push_back(':');
    std::snprintf(buf, sizeof buf, "%x", groups[static_cast<std::size_t>(i)]);
    out += buf;
    ++i;
  }
  return out;
}

util::Result<Host> Host::parse(std::string_view raw) {
  std::string_view s = util::trim(raw);
  if (s.empty()) return util::make_error("host.empty", "empty host");

  if (s.front() == '[') {
    if (s.back() != ']') {
      return util::make_error("host.bad-brackets", "'[' without matching ']'");
    }
    s = s.substr(1, s.size() - 2);
    auto v6 = parse_ipv6(s);
    if (!v6) return v6.error();
    return Host(HostKind::kIpv6, format_ipv6(*v6));
  }

  if (s.find(':') != std::string_view::npos) {
    // A bare colon means an unbracketed IPv6 literal.
    auto v6 = parse_ipv6(s);
    if (!v6) return v6.error();
    return Host(HostKind::kIpv6, format_ipv6(*v6));
  }

  if (looks_like_ipv4(s)) {
    std::string_view v4 = s;
    if (!v4.empty() && v4.back() == '.') v4.remove_suffix(1);
    auto parsed = parse_ipv4(v4);
    if (!parsed) return parsed.error();
    char buf[20];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (*parsed)[0], (*parsed)[1], (*parsed)[2],
                  (*parsed)[3]);
    return Host(HostKind::kIpv4, buf);
  }

  auto ascii = idna::host_to_ascii(s);
  if (!ascii) return ascii.error();
  // Reject characters that can never appear in a DNS hostname. We allow
  // '_' (service labels like _dmarc) on top of strict LDH.
  for (char c : *ascii) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-' ||
                    c == '_' || c == '.';
    if (!ok) {
      return util::make_error("host.bad-char",
                              std::string("invalid hostname character '") + c + "'");
    }
  }
  return Host(HostKind::kDnsName, *std::move(ascii));
}

}  // namespace psl::url
