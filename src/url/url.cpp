#include "psl/url/url.hpp"

#include <algorithm>
#include <charconv>

#include "psl/util/strings.hpp"

namespace psl::url {

std::uint16_t default_port(std::string_view scheme) noexcept {
  if (scheme == "http" || scheme == "ws") return 80;
  if (scheme == "https" || scheme == "wss") return 443;
  if (scheme == "ftp") return 21;
  return 0;
}

namespace {

bool valid_scheme(std::string_view s) noexcept {
  if (s.empty()) return false;
  const char c0 = util::to_lower(s.front());
  if (c0 < 'a' || c0 > 'z') return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    const char l = util::to_lower(c);
    return (l >= 'a' && l <= 'z') || (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.';
  });
}

}  // namespace

util::Result<Url> Url::parse(std::string_view raw) {
  std::string_view s = util::trim(raw);

  // --- scheme ---
  const std::size_t scheme_end = s.find("://");
  if (scheme_end == std::string_view::npos || scheme_end == 0) {
    return util::make_error("url.no-scheme", "missing '<scheme>://'");
  }
  const std::string_view scheme_raw = s.substr(0, scheme_end);
  if (!valid_scheme(scheme_raw)) {
    return util::make_error("url.bad-scheme", "invalid scheme characters");
  }
  std::string scheme = util::to_lower(scheme_raw);
  s = s.substr(scheme_end + 3);

  // --- fragment / query / path (rightmost first so '#' wins over '?') ---
  std::string fragment, query, path;
  if (const std::size_t pos = s.find('#'); pos != std::string_view::npos) {
    fragment = std::string(s.substr(pos + 1));
    s = s.substr(0, pos);
  }
  if (const std::size_t pos = s.find('?'); pos != std::string_view::npos) {
    query = std::string(s.substr(pos + 1));
    s = s.substr(0, pos);
  }
  if (const std::size_t pos = s.find('/'); pos != std::string_view::npos) {
    path = std::string(s.substr(pos));
    s = s.substr(0, pos);
  } else {
    path = "/";
  }

  // --- userinfo ---
  std::string userinfo;
  if (const std::size_t pos = s.rfind('@'); pos != std::string_view::npos) {
    userinfo = std::string(s.substr(0, pos));
    s = s.substr(pos + 1);
  }

  if (s.empty()) {
    return util::make_error("url.no-host", "empty authority");
  }

  // --- host[:port]; bracketed IPv6 may itself contain colons ---
  std::string_view host_part = s;
  std::optional<std::uint16_t> port;
  std::size_t port_sep = std::string_view::npos;
  if (s.front() == '[') {
    const std::size_t close = s.find(']');
    if (close == std::string_view::npos) {
      return util::make_error("url.bad-brackets", "unterminated IPv6 literal");
    }
    if (close + 1 < s.size()) {
      if (s[close + 1] != ':') {
        return util::make_error("url.bad-authority", "junk after IPv6 literal");
      }
      port_sep = close + 1;
    }
  } else {
    port_sep = s.rfind(':');
  }

  if (port_sep != std::string_view::npos) {
    const std::string_view port_str = s.substr(port_sep + 1);
    host_part = s.substr(0, port_sep);
    if (port_str.empty()) {
      return util::make_error("url.empty-port", "':' with no port digits");
    }
    unsigned value = 0;
    const auto [ptr, ec] =
        std::from_chars(port_str.data(), port_str.data() + port_str.size(), value);
    if (ec != std::errc{} || ptr != port_str.data() + port_str.size() || value > 65535) {
      return util::make_error("url.bad-port", "port is not an integer in [0, 65535]");
    }
    port = static_cast<std::uint16_t>(value);
  }

  auto host = Host::parse(host_part);
  if (!host) return host.error();

  return Url(std::move(scheme), std::move(userinfo), *std::move(host), port, std::move(path),
             std::move(query), std::move(fragment));
}

std::uint16_t Url::effective_port() const noexcept {
  return port_.value_or(default_port(scheme_));
}

namespace {

/// RFC 3986 section 5.2.4 dot-segment removal on an absolute path.
std::string remove_dot_segments(std::string_view path) {
  std::vector<std::string_view> out;
  for (std::string_view segment : util::split(path, '/')) {
    if (segment == ".") continue;
    if (segment == "..") {
      if (!out.empty()) out.pop_back();
      continue;
    }
    out.push_back(segment);
  }
  std::string result = util::join(out, "/");
  // A trailing "." or ".." still ends the path with a slash.
  if ((util::ends_with(path, "/.") || util::ends_with(path, "/..")) &&
      !util::ends_with(result, "/")) {
    result.push_back('/');
  }
  if (result.empty() || result.front() != '/') result.insert(result.begin(), '/');
  return result;
}

/// Directory part of a path ("/a/b/c" -> "/a/b/").
std::string_view path_directory(std::string_view path) {
  const std::size_t last_slash = path.rfind('/');
  return last_slash == std::string_view::npos ? "/" : path.substr(0, last_slash + 1);
}

}  // namespace

util::Result<Url> resolve(const Url& base, std::string_view reference) {
  reference = util::trim(reference);
  if (reference.empty()) return Url::parse(base.to_string());

  // Absolute reference: anything starting with a scheme (RFC 3986 — a
  // relative reference cannot contain ':' before its first '/').
  {
    std::size_t i = 0;
    const char c0 = reference[0];
    if ((c0 >= 'a' && c0 <= 'z') || (c0 >= 'A' && c0 <= 'Z')) {
      i = 1;
      while (i < reference.size()) {
        const char c = reference[i];
        const bool scheme_char = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                                 (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '.';
        if (!scheme_char) break;
        ++i;
      }
      if (i < reference.size() && reference[i] == ':') {
        return Url::parse(reference);  // non-hierarchical schemes fail here
      }
    }
  }
  // Scheme-relative: "//host/path".
  if (util::starts_with(reference, "//")) {
    return Url::parse(base.scheme() + ":" + std::string(reference));
  }

  // Everything else reuses the base authority.
  std::string authority = base.host().kind() == HostKind::kIpv6
                              ? "[" + base.host().name() + "]"
                              : base.host().name();
  if (base.port() && *base.port() != default_port(base.scheme())) {
    authority += ":" + std::to_string(*base.port());
  }
  const std::string prefix = base.scheme() + "://" + authority;

  if (reference.front() == '#') {
    std::string target = base.path();
    if (!base.query().empty()) target += "?" + base.query();
    return Url::parse(prefix + target + std::string(reference));
  }
  if (reference.front() == '?') {
    return Url::parse(prefix + base.path() + std::string(reference));
  }
  if (reference.front() == '/') {
    return Url::parse(prefix + remove_dot_segments(reference));
  }
  // Relative path: merge with the base path's directory.
  const std::string merged = std::string(path_directory(base.path())) + std::string(reference);
  return Url::parse(prefix + remove_dot_segments(merged));
}

std::string Url::to_string() const {
  std::string out = scheme_ + "://";
  if (!userinfo_.empty()) {
    out += userinfo_;
    out.push_back('@');
  }
  if (host_.kind() == HostKind::kIpv6) {
    out.push_back('[');
    out += host_.name();
    out.push_back(']');
  } else {
    out += host_.name();
  }
  if (port_ && *port_ != default_port(scheme_)) {
    out.push_back(':');
    out += std::to_string(*port_);
  }
  out += path_;
  if (!query_.empty()) {
    out.push_back('?');
    out += query_;
  }
  if (!fragment_.empty()) {
    out.push_back('#');
    out += fragment_;
  }
  return out;
}

}  // namespace psl::url
