#include "psl/repos/corpus.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"

namespace psl::repos {

namespace {

// The paper's Table 3: fixed-usage projects where the embedded list's age
// could be determined (age in days relative to t = 2022-12-08).
const AnchorRepo kAnchors[] = {
    // --- Production ---
    {"bitwarden/server", Usage::kFixedProduction, 10959, 1087, 1596},
    {"bitwarden/mobile", Usage::kFixedProduction, 4059, 635, 1596},
    {"sleuthkit/autopsy", Usage::kFixedProduction, 1720, 561, 746},
    {"alkacon/opencms-core", Usage::kFixedProduction, 473, 384, 1778},
    {"firewalla/firewalla", Usage::kFixedProduction, 434, 117, 746},
    {"SAP/SapMachine", Usage::kFixedProduction, 397, 79, 376},
    {"Yubico/python-fido2", Usage::kFixedProduction, 324, 102, 188},
    {"gorhill/uBO-Scope", Usage::kFixedProduction, 222, 20, 1927},
    {"fgont/ipv6toolkit", Usage::kFixedProduction, 222, 66, 1791},
    {"LeFroid/Viper-Browser", Usage::kFixedProduction, 164, 22, 529},
    {"Keeper-Security/Commander", Usage::kFixedProduction, 145, 67, 1113},
    {"nabeelio/phpvms", Usage::kFixedProduction, 134, 116, 644},
    {"coreruleset/ftw", Usage::kFixedProduction, 104, 36, 750},
    {"gorhill/publicsuffixlist.js", Usage::kFixedProduction, 79, 12, 289},
    {"Twi1ight/TSpider", Usage::kFixedProduction, 68, 21, 2070},
    {"j3ssie/go-auxs", Usage::kFixedProduction, 60, 22, 664},
    {"Intsights/PyDomainExtractor", Usage::kFixedProduction, 59, 5, 31},
    {"alterakey/trueseeing", Usage::kFixedProduction, 47, 13, 296},
    {"BenWiederhake/domain-word", Usage::kFixedProduction, 40, 3, 1233},
    {"timlib/webXray", Usage::kFixedProduction, 27, 22, 1659},
    {"mecsa/mecsa-st", Usage::kFixedProduction, 20, 5, 1659},
    {"amphp/artax", Usage::kFixedProduction, 20, 4, 2054},
    {"dicekeys/dicekeys-app-typescript", Usage::kFixedProduction, 15, 4, 825},
    {"netarchivesuite/netarchivesuite", Usage::kFixedProduction, 14, 22, 1778},
    {"mallardduck/php-whois-client", Usage::kFixedProduction, 11, 3, 657},
    {"kee-org/keevault2", Usage::kFixedProduction, 10, 4, 895},
    {"AdaptedAS/url_parser", Usage::kFixedProduction, 9, 3, 924},
    {"h-i-13/WHOISpy", Usage::kFixedProduction, 9, 3, 1527},
    {"oaplatform/oap", Usage::kFixedProduction, 9, 5, 1527},
    {"amphp/http-client-cookies", Usage::kFixedProduction, 7, 5, 162},
    {"hrbrmstr/psl", Usage::kFixedProduction, 6, 5, 1527},
    {"szopoviktor/unique-email-address", Usage::kFixedProduction, 6, 2, 810},
    {"WebCuratorTool/webcurator", Usage::kFixedProduction, 6, 4, 973},
    // --- Test ---
    {"ClickHouse/ClickHouse", Usage::kFixedTest, 26127, 5725, 737},
    {"win-acme/win-acme", Usage::kFixedTest, 4620, 770, 560},
    {"yasserg/crawler4j", Usage::kFixedTest, 4336, 1923, 1527},
    {"jeremykendall/php-domain-parser", Usage::kFixedTest, 1021, 121, 296},
    {"rockdaboot/wget2", Usage::kFixedTest, 365, 61, 1805},
    {"DNS-OARC/dsc", Usage::kFixedTest, 94, 23, 1010},
    {"rushmorem/publicsuffix", Usage::kFixedTest, 90, 17, 636},
    {"park-manager/park-manager", Usage::kFixedTest, 49, 7, 653},
    {"addr-rs/addr", Usage::kFixedTest, 40, 11, 636},
    {"datablade-io/daisy", Usage::kFixedTest, 32, 7, 737},
    {"elliotwutingfeng/go-fasttld", Usage::kFixedTest, 10, 3, 221},
    {"m2osw/libtld", Usage::kFixedTest, 9, 3, 581},
    {"Komposten/public_suffix", Usage::kFixedTest, 8, 2, 1217},
    // --- Other ---
    {"du5/gfwlist", Usage::kFixedOther, 29, 16, 1023},
};

class Builder {
 public:
  explicit Builder(const RepoCorpusSpec& spec)
      : spec_(spec), rng_(spec.seed), names_(rng_.fork(3)) {}

  std::vector<RepoRecord> build() {
    std::size_t remaining_prod = spec_.fixed_production;
    std::size_t remaining_test = spec_.fixed_test;
    std::size_t remaining_other = spec_.fixed_other;

    if (spec_.include_anchors) {
      for (const AnchorRepo& a : anchor_repos()) {
        std::size_t* budget = nullptr;
        switch (a.usage) {
          case Usage::kFixedProduction: budget = &remaining_prod; break;
          case Usage::kFixedTest: budget = &remaining_test; break;
          case Usage::kFixedOther: budget = &remaining_other; break;
          default: throw std::logic_error("anchor with non-fixed usage");
        }
        if (*budget == 0) continue;  // spec smaller than the anchor set
        --*budget;
        RepoRecord r;
        r.name = std::string(a.name);
        r.usage = a.usage;
        r.stars = a.stars;
        r.forks = a.forks;
        r.list_date = spec_.measurement - a.list_age_days;
        r.last_commit = synth_last_commit(a.stars);
        r.anchored = true;
        out_.push_back(std::move(r));
      }
    }

    // Unnamed fixed projects: the paper could not obtain a list age for
    // these (e.g. vendored under a rewritten filename), so they carry none.
    emit_plain(remaining_prod, Usage::kFixedProduction, DependencyLib::kNone, false);
    emit_plain(remaining_test, Usage::kFixedTest, DependencyLib::kNone, false);
    emit_plain(remaining_other, Usage::kFixedOther, DependencyLib::kNone, false);

    // Updated projects all embed a fallback copy whose age is measurable;
    // the paper reports a median of 915 days for this group.
    emit_plain(spec_.updated_build, Usage::kUpdatedBuild, DependencyLib::kNone, true);
    emit_plain(spec_.updated_user, Usage::kUpdatedUser, DependencyLib::kNone, true);
    emit_plain(spec_.updated_server, Usage::kUpdatedServer, DependencyLib::kNone, true);

    emit_plain(spec_.dep_jre, Usage::kDependency, DependencyLib::kJavaJre, false);
    emit_plain(spec_.dep_ddns_scripts, Usage::kDependency, DependencyLib::kShellDdnsScripts, false);
    emit_plain(spec_.dep_oneforall, Usage::kDependency, DependencyLib::kPythonOneforall, false);
    emit_plain(spec_.dep_python_whois, Usage::kDependency, DependencyLib::kPythonWhois, false);
    emit_plain(spec_.dep_ruby_domain_name, Usage::kDependency, DependencyLib::kRubyDomainName,
               false);
    emit_plain(spec_.dep_other, Usage::kDependency, DependencyLib::kOther, false);

    return std::move(out_);
  }

 private:
  void emit_plain(std::size_t count, Usage usage, DependencyLib lib, bool with_age) {
    for (std::size_t i = 0; i < count; ++i) {
      RepoRecord r;
      r.name = names_.fresh() + "/" + names_.fresh();
      r.usage = usage;
      r.dependency_lib = lib;
      r.stars = synth_stars();
      r.forks = synth_forks(r.stars);
      if (with_age) r.list_date = spec_.measurement - synth_updated_age();
      if (usage == Usage::kDependency) {
        r.library_list_date = spec_.measurement - synth_library_age(lib);
      }
      r.last_commit = synth_last_commit(r.stars);
      out_.push_back(std::move(r));
    }
  }

  /// Age of the list copy bundled inside each dependency library. The JRE's
  /// copy is notoriously stale; the smaller language libraries refresh on
  /// their own release cadence.
  int synth_library_age(DependencyLib lib) {
    double median_days;
    switch (lib) {
      case DependencyLib::kJavaJre: median_days = 1500; break;
      case DependencyLib::kShellDdnsScripts: median_days = 1100; break;
      case DependencyLib::kPythonOneforall: median_days = 900; break;
      case DependencyLib::kPythonWhois: median_days = 500; break;
      case DependencyLib::kRubyDomainName: median_days = 420; break;
      default: median_days = 700; break;
    }
    const double v = rng_.lognormal(std::log(median_days), 0.45);
    return std::clamp(static_cast<int>(std::lround(v)), 10, 3000);
  }

  /// Star counts are heavy-tailed; the paper reports a median of 60 among
  /// fixed-production projects with a few >10k outliers.
  int synth_stars() {
    const double v = rng_.lognormal(std::log(60.0), 1.6);
    return std::max(0, static_cast<int>(std::lround(v)));
  }

  /// Forks scale with stars (Pearson r = 0.96 in the paper): proportional
  /// with modest multiplicative noise.
  int synth_forks(int stars) {
    const double ratio = 0.12 * std::exp(0.25 * rng_.normal());
    return std::max(0, static_cast<int>(std::lround(stars * ratio + rng_.below(3))));
  }

  /// Ages of the fallback copies inside updated-strategy projects
  /// (median ~915 days in the paper; the 0.45 sigma keeps the overall
  /// fixed+updated median near the paper's 871).
  int synth_updated_age() {
    const double v = rng_.lognormal(std::log(850.0), 0.45);
    return std::clamp(static_cast<int>(std::lround(v)), 10, 2600);
  }

  /// Days-since-last-commit: popular projects are usually active.
  util::Date synth_last_commit(int stars) {
    const double scale = stars >= 500 ? 45.0 : 280.0;
    const int days_ago =
        std::clamp(static_cast<int>(std::lround(rng_.lognormal(std::log(scale), 1.0))), 0, 2000);
    return spec_.measurement - days_ago;
  }

  RepoCorpusSpec spec_;
  util::Rng rng_;
  util::NameGen names_;
  std::vector<RepoRecord> out_;
};

}  // namespace

std::vector<AnchorRepo> anchor_repos() {
  return std::vector<AnchorRepo>(std::begin(kAnchors), std::end(kAnchors));
}

std::vector<RepoRecord> generate_repo_corpus(const RepoCorpusSpec& spec) {
  return Builder(spec).build();
}

}  // namespace psl::repos
