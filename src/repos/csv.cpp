#include "psl/repos/csv.hpp"

#include <charconv>
#include <istream>
#include <ostream>

#include "psl/util/strings.hpp"

namespace psl::repos {

namespace {

constexpr std::string_view kHeader =
    "name,usage,dependency_lib,stars,forks,list_date,library_list_date,last_commit,anchored";

std::string_view usage_token(Usage usage) { return to_string(usage); }

util::Result<Usage> parse_usage(std::string_view token) {
  for (Usage usage :
       {Usage::kFixedProduction, Usage::kFixedTest, Usage::kFixedOther, Usage::kUpdatedBuild,
        Usage::kUpdatedUser, Usage::kUpdatedServer, Usage::kDependency}) {
    if (token == to_string(usage)) return usage;
  }
  return util::make_error("csv.bad-usage", "unknown usage: " + std::string(token));
}

util::Result<DependencyLib> parse_lib(std::string_view token) {
  for (DependencyLib lib :
       {DependencyLib::kNone, DependencyLib::kJavaJre, DependencyLib::kShellDdnsScripts,
        DependencyLib::kPythonOneforall, DependencyLib::kPythonWhois,
        DependencyLib::kRubyDomainName, DependencyLib::kOther}) {
    if (token == to_string(lib)) return lib;
  }
  return util::make_error("csv.bad-lib", "unknown dependency lib: " + std::string(token));
}

std::string date_field(const std::optional<util::Date>& date) {
  return date ? date->to_string() : std::string{};
}

util::Result<std::optional<util::Date>> parse_date_field(std::string_view field) {
  if (field.empty()) return std::optional<util::Date>{};
  const auto date = util::Date::parse(field);
  if (!date) {
    return util::make_error("csv.bad-date", "bad date: " + std::string(field));
  }
  return std::optional<util::Date>(*date);
}

util::Result<int> parse_int(std::string_view field) {
  int value = 0;
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    return util::make_error("csv.bad-number", "not an integer: " + std::string(field));
  }
  return value;
}

}  // namespace

void write_csv(const std::vector<RepoRecord>& repos, std::ostream& out) {
  out << kHeader << '\n';
  for (const RepoRecord& r : repos) {
    out << r.name << ',' << usage_token(r.usage) << ',' << to_string(r.dependency_lib) << ','
        << r.stars << ',' << r.forks << ',' << date_field(r.list_date) << ','
        << date_field(r.library_list_date) << ',' << r.last_commit.to_string() << ','
        << (r.anchored ? 1 : 0) << '\n';
  }
}

util::Result<std::vector<RepoRecord>> read_csv(std::istream& in) {
  std::vector<RepoRecord> out;
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view s = util::trim(line);
    if (s.empty()) continue;
    if (!header_seen) {
      if (s != kHeader) {
        return util::make_error("csv.bad-header", "unexpected header row");
      }
      header_seen = true;
      continue;
    }

    const auto fields = util::split(s, ',');
    if (fields.size() != 9) {
      return util::make_error(
          "csv.bad-row", "line " + std::to_string(line_no) + ": expected 9 fields, got " +
                             std::to_string(fields.size()));
    }

    RepoRecord r;
    r.name = std::string(fields[0]);
    auto usage = parse_usage(fields[1]);
    if (!usage) return usage.error();
    r.usage = *usage;
    auto lib = parse_lib(fields[2]);
    if (!lib) return lib.error();
    r.dependency_lib = *lib;
    auto stars = parse_int(fields[3]);
    if (!stars) return stars.error();
    r.stars = *stars;
    auto forks = parse_int(fields[4]);
    if (!forks) return forks.error();
    r.forks = *forks;
    auto list_date = parse_date_field(fields[5]);
    if (!list_date) return list_date.error();
    r.list_date = *list_date;
    auto library_date = parse_date_field(fields[6]);
    if (!library_date) return library_date.error();
    r.library_list_date = *library_date;
    auto commit = parse_date_field(fields[7]);
    if (!commit) return commit.error();
    if (!commit->has_value()) {
      return util::make_error("csv.bad-date",
                              "line " + std::to_string(line_no) + ": last_commit required");
    }
    r.last_commit = **commit;
    auto anchored = parse_int(fields[8]);
    if (!anchored) return anchored.error();
    r.anchored = *anchored != 0;
    out.push_back(std::move(r));
  }
  if (!header_seen) {
    return util::make_error("csv.empty", "no header row");
  }
  return out;
}

}  // namespace psl::repos
