#include "psl/repos/repo.hpp"

namespace psl::repos {

std::string_view to_string(Usage usage) noexcept {
  switch (usage) {
    case Usage::kFixedProduction: return "fixed-production";
    case Usage::kFixedTest: return "fixed-test";
    case Usage::kFixedOther: return "fixed-other";
    case Usage::kUpdatedBuild: return "updated-build";
    case Usage::kUpdatedUser: return "updated-user";
    case Usage::kUpdatedServer: return "updated-server";
    case Usage::kDependency: return "dependency";
  }
  return "unknown";
}

std::string_view to_string(DependencyLib lib) noexcept {
  switch (lib) {
    case DependencyLib::kNone: return "none";
    case DependencyLib::kJavaJre: return "java:jre";
    case DependencyLib::kShellDdnsScripts: return "shell:ddns-scripts";
    case DependencyLib::kPythonOneforall: return "python:oneforall";
    case DependencyLib::kPythonWhois: return "python:python-whois";
    case DependencyLib::kRubyDomainName: return "ruby:domain_name";
    case DependencyLib::kOther: return "other";
  }
  return "unknown";
}

bool is_fixed(Usage usage) noexcept {
  return usage == Usage::kFixedProduction || usage == Usage::kFixedTest ||
         usage == Usage::kFixedOther;
}

bool is_updated(Usage usage) noexcept {
  return usage == Usage::kUpdatedBuild || usage == Usage::kUpdatedUser ||
         usage == Usage::kUpdatedServer;
}

}  // namespace psl::repos
