#include "psl/repos/scanner.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "psl/util/strings.hpp"

namespace psl::repos {

namespace fs = std::filesystem;

Scanner::Scanner(const history::History& history, ScanOptions options)
    : history_(history), options_(std::move(options)) {}

namespace {

std::optional<std::string> read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return std::move(buf).str();
}

bool path_mentions(const fs::path& path, std::initializer_list<std::string_view> needles) {
  const std::string as_lower = util::to_lower(path.generic_string());
  return std::any_of(needles.begin(), needles.end(), [&](std::string_view needle) {
    return as_lower.find(needle) != std::string::npos;
  });
}

/// True if a sibling/ancestor build file appears to re-fetch the list
/// (references the canonical URL or an obvious update script name).
bool has_update_machinery(const fs::path& list_file) {
  static constexpr std::string_view kBuildFiles[] = {
      "Makefile", "makefile", "CMakeLists.txt", "update.sh", "update_psl.sh",
      "update-psl.sh", "build.gradle", "build.sh",
  };
  fs::path dir = list_file.parent_path();
  for (int depth = 0; depth < 3 && !dir.empty(); ++depth, dir = dir.parent_path()) {
    for (std::string_view candidate : kBuildFiles) {
      const fs::path p = dir / fs::path(std::string(candidate));
      std::error_code ec;
      if (!fs::is_regular_file(p, ec)) continue;
      if (const auto contents = read_file(p)) {
        if (contents->find("publicsuffix.org") != std::string::npos ||
            contents->find("public_suffix_list") != std::string::npos) {
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

Usage Scanner::classify_usage(const fs::path& file) const {
  if (path_mentions(file, {"/test/", "/tests/", "/testdata/", "/fixtures/", "/spec/"})) {
    return Usage::kFixedTest;
  }
  if (has_update_machinery(file)) {
    return Usage::kUpdatedBuild;
  }
  return Usage::kFixedProduction;
}

ScanFinding Scanner::analyze_file(const fs::path& file) const {
  ScanFinding finding;
  finding.path = file;
  finding.classified_usage = classify_usage(file);

  const auto contents = read_file(file);
  if (!contents) return finding;

  const auto parsed = List::parse(*contents);
  if (!parsed) return finding;
  const List& copy = *parsed;
  finding.rule_count = copy.rule_count();

  // Vintage: a copy cannot predate any rule it contains, so the newest
  // known add date among its rules is the estimate. Build a text->added
  // index once per call; the schedule is shared across rules.
  std::unordered_map<std::string, util::Date> added_index;
  added_index.reserve(history_.schedule().size());
  for (const auto& sr : history_.schedule()) {
    auto [it, inserted] = added_index.emplace(sr.rule.to_string(), sr.added);
    if (!inserted && sr.added < it->second) it->second = sr.added;
  }

  std::optional<util::Date> newest;
  for (const Rule& rule : copy.rules()) {
    const auto it = added_index.find(rule.to_string());
    if (it == added_index.end()) continue;
    if (!newest || it->second > *newest) newest = it->second;
  }
  finding.estimated_date = newest;
  if (newest) finding.estimated_age_days = options_.measurement - *newest;

  // Missing rules vs. the latest list.
  const auto [added, removed] = copy.diff(history_.latest());
  finding.missing_rule_count = added.size();
  for (const Rule& rule : added) {
    if (finding.missing_rules.size() >= options_.max_missing_examples) break;
    finding.missing_rules.push_back(rule.to_string());
  }
  return finding;
}

std::string advisory_text(const ScanFinding& finding, util::Date measurement) {
  std::string out;
  out += "Subject: Out-of-date Public Suffix List copy in " +
         finding.path.filename().string() + "\n\n";
  out += "Hello! This project ships an embedded copy of the Public Suffix List\n";
  out += "at `" + finding.path.generic_string() + "` (" +
         std::to_string(finding.rule_count) + " rules).\n\n";

  if (finding.estimated_date) {
    out += "The newest rule in that copy dates it to about " +
           finding.estimated_date->to_string() + " - roughly " +
           std::to_string(measurement - *finding.estimated_date) +
           " days old at " + measurement.to_string() + ".\n";
  } else {
    out += "The copy could not be dated against the list's published history,\n";
    out += "which usually means it was modified by hand.\n";
  }

  if (finding.missing_rule_count > 0) {
    out += "It is missing " + std::to_string(finding.missing_rule_count) +
           " rules present in the current list, including:\n";
    for (const std::string& rule : finding.missing_rules) {
      out += "  - " + rule + "\n";
    }
    out += "\nEach missing rule is a privacy boundary this code will get wrong:\n";
    out += "domains under those suffixes are separately-owned registrations,\n";
    out += "but this copy groups them into one organization (shared cookies,\n";
    out += "password autofill across tenants, merged storage, ...).\n";
  }

  out += "\nRecommended fix: fetch the list at build time from\n";
  out += "https://publicsuffix.org/list/public_suffix_list.dat and refresh it\n";
  out += "on every release (or at application start), rather than vendoring a\n";
  out += "fixed copy. The list changes several times a month.\n";

  switch (finding.classified_usage) {
    case Usage::kFixedTest:
      out += "\n(This copy appears to live in test fixtures; pinned test data is\n";
      out += "fine, but make sure production code paths use a fresh list.)\n";
      break;
    case Usage::kUpdatedBuild:
      out += "\n(This project already refreshes the list at build time - consider\n";
      out += "also refreshing this embedded fallback so failed fetches degrade\n";
      out += "to something recent.)\n";
      break;
    default:
      break;
  }
  return out;
}

util::Result<std::vector<ScanFinding>> Scanner::scan(const fs::path& root) const {
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return util::make_error("scan.bad-root",
                            "not a readable directory: " + root.generic_string());
  }

  std::vector<ScanFinding> findings;
  fs::recursive_directory_iterator it(
      root, fs::directory_options::skip_permission_denied, ec);
  if (ec) {
    return util::make_error("scan.walk-failed", ec.message());
  }
  for (const fs::directory_entry& entry : it) {
    if (it.depth() > static_cast<int>(options_.max_depth)) {
      it.disable_recursion_pending();
      continue;
    }
    if (!entry.is_regular_file(ec)) continue;
    const std::string filename = entry.path().filename().string();
    const bool is_list = std::any_of(
        options_.list_filenames.begin(), options_.list_filenames.end(),
        [&](const std::string& candidate) { return filename == candidate; });
    if (!is_list) continue;
    findings.push_back(analyze_file(entry.path()));
  }
  return findings;
}

}  // namespace psl::repos
