#include "psl/http/crawler.hpp"

#include "psl/obs/span.hpp"

namespace psl::http {

Crawler::Crawler(const VirtualWeb& web, const List& list)
    : web_(&web), list_(&list), jar_(list) {}

void Crawler::set_metrics(obs::MetricsRegistry* metrics) {
  jar_.set_metrics(metrics);
  if (!metrics) {
    fetch_ms_ = nullptr;
    pages_ = nullptr;
    resources_ = nullptr;
    http_errors_ = nullptr;
    return;
  }
  fetch_ms_ = &metrics->histogram("crawl.fetch_ms");
  pages_ = &metrics->counter("crawl.pages");
  resources_ = &metrics->counter("crawl.resources");
  http_errors_ = &metrics->counter("crawl.http_errors");
}

Response Crawler::fetch(const url::Url& target) {
  const obs::Timer timer(fetch_ms_);
  Request request;
  request.target = target.path();
  request.headers.add("Host", target.host().name());
  request.headers.add("User-Agent", "psl-harms-crawler/1.0");
  stats_.cookies_attached += jar_.cookies_for(target, /*http_api=*/true, clock_).size();

  // The wire round trip: serialise, let the origin parse and answer,
  // parse the reply — the full crawl path, not a shortcut.
  const std::string request_wire = request.serialize();
  const auto parsed_request = parse_request(request_wire);
  Response response;
  if (!parsed_request) {
    response.status = 400;
    response.reason = "Bad Request";
  } else {
    response = web_->serve(target.host().name(), *parsed_request);
  }
  const auto parsed_response = parse_response(response.serialize());
  if (!parsed_response) {
    Response error;
    error.status = 502;
    return error;
  }

  for (const std::string_view header : parsed_response->headers.get_all("Set-Cookie")) {
    const auto outcome = jar_.set_from_header(target, header, clock_);
    if (outcome == web::SetCookieOutcome::kStored) {
      ++stats_.cookies_stored;
    } else {
      ++stats_.cookies_rejected;
    }
  }
  ++clock_;
  return *std::move(parsed_response);
}

std::vector<CrawlRecord> Crawler::crawl(const std::vector<std::string>& seeds) {
  std::vector<CrawlRecord> log;

  for (const std::string& seed : seeds) {
    const auto page_url = url::Url::parse(seed);
    if (!page_url) continue;

    const Response page = fetch(*page_url);
    ++stats_.pages_fetched;
    if (pages_) pages_->add();
    if (page.status != 200) {
      ++stats_.http_errors;
      if (http_errors_) http_errors_->add();
      continue;
    }
    log.push_back(CrawlRecord{page_url->host().name(), page_url->host().name()});

    for (const ExtractedLink& link : extract_links(page.body, *page_url)) {
      if (!link.is_resource) continue;  // navigation links are out of scope
      const Response resource = fetch(link.url);
      ++stats_.resources_fetched;
      if (resources_) resources_->add();
      if (resource.status != 200) {
        ++stats_.http_errors;
        if (http_errors_) http_errors_->add();
      }
      log.push_back(CrawlRecord{page_url->host().name(), link.url.host().name()});
    }
  }
  return log;
}

}  // namespace psl::http
