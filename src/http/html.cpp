#include "psl/http/html.hpp"

#include <algorithm>
#include <array>

#include "psl/util/strings.hpp"

namespace psl::http {

namespace {

struct TagSpec {
  std::string_view name;
  std::string_view attribute;
  bool is_resource;
};

constexpr std::array<TagSpec, 6> kTags{{
    {"script", "src", true},
    {"img", "src", true},
    {"iframe", "src", true},
    {"link", "href", true},
    {"a", "href", false},
    {"source", "src", true},
}};

/// Case-insensitive search for `needle` in `haystack` starting at `from`.
std::size_t ifind(std::string_view haystack, std::string_view needle, std::size_t from) {
  if (needle.empty() || haystack.size() < needle.size()) return std::string_view::npos;
  for (std::size_t i = from; i + needle.size() <= haystack.size(); ++i) {
    bool match = true;
    for (std::size_t k = 0; k < needle.size(); ++k) {
      if (util::to_lower(haystack[i + k]) != util::to_lower(needle[k])) {
        match = false;
        break;
      }
    }
    if (match) return i;
  }
  return std::string_view::npos;
}

/// Value of `attribute` inside a tag's attribute section, or empty.
std::string_view attribute_value(std::string_view tag_body, std::string_view attribute) {
  std::size_t pos = 0;
  while ((pos = ifind(tag_body, attribute, pos)) != std::string_view::npos) {
    // Must be a standalone attribute name (not part of data-src etc.).
    if (pos > 0) {
      const char before = tag_body[pos - 1];
      if (before != ' ' && before != '\t' && before != '\n' && before != '"' &&
          before != '\'') {
        pos += attribute.size();
        continue;
      }
    }
    std::size_t cursor = pos + attribute.size();
    while (cursor < tag_body.size() &&
           (tag_body[cursor] == ' ' || tag_body[cursor] == '\t')) {
      ++cursor;
    }
    if (cursor >= tag_body.size() || tag_body[cursor] != '=') {
      pos += attribute.size();
      continue;
    }
    ++cursor;
    while (cursor < tag_body.size() &&
           (tag_body[cursor] == ' ' || tag_body[cursor] == '\t')) {
      ++cursor;
    }
    if (cursor >= tag_body.size()) return {};
    const char quote = tag_body[cursor];
    if (quote == '"' || quote == '\'') {
      const std::size_t close = tag_body.find(quote, cursor + 1);
      if (close == std::string_view::npos) return {};
      return tag_body.substr(cursor + 1, close - cursor - 1);
    }
    // Unquoted value: runs to whitespace or tag end.
    std::size_t end = cursor;
    while (end < tag_body.size() && tag_body[end] != ' ' && tag_body[end] != '\t' &&
           tag_body[end] != '>') {
      ++end;
    }
    return tag_body.substr(cursor, end - cursor);
  }
  return {};
}

}  // namespace

std::vector<ExtractedLink> extract_links(std::string_view html, const url::Url& page_url) {
  std::vector<ExtractedLink> out;

  std::size_t pos = 0;
  while ((pos = html.find('<', pos)) != std::string_view::npos) {
    const std::size_t end = html.find('>', pos);
    if (end == std::string_view::npos) break;
    const std::string_view tag_body = html.substr(pos + 1, end - pos - 1);
    pos = end + 1;
    if (tag_body.empty() || tag_body.front() == '/' || tag_body.front() == '!') continue;

    // Element name.
    std::size_t name_end = 0;
    while (name_end < tag_body.size() && tag_body[name_end] != ' ' &&
           tag_body[name_end] != '\t' && tag_body[name_end] != '\n' &&
           tag_body[name_end] != '/') {
      ++name_end;
    }
    const std::string name = util::to_lower(tag_body.substr(0, name_end));

    for (const TagSpec& spec : kTags) {
      if (name != spec.name) continue;
      const std::string_view value = attribute_value(tag_body, spec.attribute);
      if (value.empty()) break;
      auto resolved = url::resolve(page_url, value);
      if (!resolved) break;
      if (resolved->scheme() != "http" && resolved->scheme() != "https") break;
      out.push_back(ExtractedLink{name, *std::move(resolved), spec.is_resource});
      break;
    }
  }
  return out;
}

}  // namespace psl::http
