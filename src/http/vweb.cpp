#include "psl/http/vweb.hpp"

#include "psl/url/host.hpp"

namespace psl::http {

VirtualWeb::VirtualWeb(const archive::Corpus& corpus, const List& server_list,
                       std::size_t max_pages) {
  // Group the request log into page views (a request whose resource equals
  // its page is the document fetch that opens a view).
  std::size_t page_index = 0;
  std::string html;
  std::string current_host;
  std::string current_path;

  const auto flush = [&]() {
    if (current_host.empty()) return;
    html += "</body></html>\n";
    origins_[current_host].pages[current_path] = std::move(html);
    html.clear();
    current_host.clear();
  };

  for (const archive::Request& r : corpus.requests()) {
    const std::string& page = corpus.hostname(r.page_host);
    const std::string& resource = corpus.hostname(r.resource_host);
    if (r.page_host == r.resource_host) {
      flush();
      if (max_pages != 0 && page_index >= max_pages) break;
      current_host = page;
      current_path = "/page/" + std::to_string(page_index);
      page_urls_.push_back("https://" + page + current_path);
      html = "<html><head><title>page " + std::to_string(page_index) +
             "</title></head><body>\n";
      ++page_index;
      continue;
    }
    if (current_host.empty()) continue;
    // Alternate element kinds for realism; both are sub-resources.
    const std::string url = "https://" + resource + "/asset/" + std::to_string(page_index);
    if (html.size() % 2 == 0) {
      html += "<script src=\"" + url + "\"></script>\n";
    } else {
      html += "<img src='" + url + "'>\n";
    }
  }
  flush();

  // Every host that appears as a resource gets a cookie-setting asset
  // endpoint: its own rd-scoped tracking cookie, plus — on shared-hosting
  // platforms — the platform-wide supercookie attempt that distinguishes
  // fresh from stale clients.
  for (const std::string& host : corpus.hostnames()) {
    Origin& origin = origins_[host];  // creates hosts that only serve assets
    if (origin.cookie_headers.empty() && !url::looks_like_ip_literal(host)) {
      const Match m = server_list.match(host);
      if (!m.registrable_domain.empty()) {
        origin.cookie_headers.push_back("uid=u-" + host +
                                        "; Domain=" + m.registrable_domain);
        if (m.matched_explicit_rule && m.section == Section::kPrivate) {
          origin.cookie_headers.push_back("track=all; Domain=" + m.public_suffix);
        }
      }
    }
  }
}

Response VirtualWeb::serve(const std::string& host, const Request& request) const {
  ++served_;
  Response response;

  const auto origin = origins_.find(host);
  if (origin == origins_.end()) {
    response.status = 502;
    response.reason = "Bad Gateway";
    response.body = "no such origin\n";
    return response;
  }

  const auto page = origin->second.pages.find(request.target);
  if (page != origin->second.pages.end()) {
    response.headers.add("Content-Type", "text/html");
    response.body = page->second;
    return response;
  }

  if (request.target.rfind("/asset/", 0) == 0) {
    response.headers.add("Content-Type", "application/javascript");
    for (const std::string& header : origin->second.cookie_headers) {
      response.headers.add("Set-Cookie", header);
    }
    response.body = "/* asset */\n";
    return response;
  }

  response.status = 404;
  response.reason = "Not Found";
  response.body = "not found\n";
  return response;
}

}  // namespace psl::http
