#include "psl/http/message.hpp"

#include <algorithm>
#include <charconv>

#include "psl/util/strings.hpp"

namespace psl::http {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (util::to_lower(a[i]) != util::to_lower(b[i])) return false;
  }
  return true;
}

bool valid_token(std::string_view s) noexcept {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) {
    return (c > ' ' && c < 0x7f) && c != ':' && c != '(' && c != ')' && c != ',' &&
           c != ';';
  });
}

struct StartAndHeaders {
  std::string_view start_line;
  Headers headers;
  std::string_view body;
};

util::Result<StartAndHeaders> split_message(std::string_view wire) {
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return util::make_error("http.no-header-end", "missing CRLFCRLF");
  }
  const std::string_view head = wire.substr(0, head_end);
  const std::string_view body = wire.substr(head_end + 4);

  StartAndHeaders out;
  bool first = true;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    if (first) {
      out.start_line = line;
      first = false;
    } else {
      const std::size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return util::make_error("http.bad-header", "header line without ':'");
      }
      const std::string_view name = line.substr(0, colon);
      if (!valid_token(name)) {
        return util::make_error("http.bad-header-name", "invalid header field name");
      }
      out.headers.add(std::string(name), std::string(util::trim(line.substr(colon + 1))));
    }
    pos = eol + 2;
  }
  if (out.start_line.empty()) {
    return util::make_error("http.empty-start-line", "empty start line");
  }

  // Body per Content-Length (absent => empty body expected).
  std::size_t content_length = 0;
  if (const auto header = out.headers.get("Content-Length")) {
    const auto [ptr, ec] =
        std::from_chars(header->data(), header->data() + header->size(), content_length);
    if (ec != std::errc{} || ptr != header->data() + header->size()) {
      return util::make_error("http.bad-content-length", "non-numeric Content-Length");
    }
  }
  if (body.size() < content_length) {
    return util::make_error("http.truncated-body", "body shorter than Content-Length");
  }
  out.body = body.substr(0, content_length);
  return out;
}

void serialize_headers(std::string& out, const Headers& headers, std::size_t body_size) {
  bool has_length = false;
  for (const auto& [name, value] : headers.entries()) {
    out += name + ": " + value + "\r\n";
    if (iequals(name, "Content-Length")) has_length = true;
  }
  if (!has_length && body_size > 0) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

}  // namespace

void Headers::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

std::optional<std::string_view> Headers::get(std::string_view name) const noexcept {
  for (const auto& [key, value] : entries_) {
    if (iequals(key, name)) return std::string_view(value);
  }
  return std::nullopt;
}

std::vector<std::string_view> Headers::get_all(std::string_view name) const {
  std::vector<std::string_view> out;
  for (const auto& [key, value] : entries_) {
    if (iequals(key, name)) out.emplace_back(value);
  }
  return out;
}

std::string Request::serialize() const {
  std::string out = method + " " + target + " HTTP/1.1\r\n";
  serialize_headers(out, headers, body.size());
  out += body;
  return out;
}

std::string Response::serialize() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  serialize_headers(out, headers, body.size());
  out += body;
  return out;
}

util::Result<Request> parse_request(std::string_view wire) {
  auto parts = split_message(wire);
  if (!parts) return parts.error();

  const auto fields = util::split(parts->start_line, ' ');
  if (fields.size() != 3 || !util::starts_with(fields[2], "HTTP/")) {
    return util::make_error("http.bad-request-line", "want 'METHOD target HTTP/x.y'");
  }
  if (!valid_token(fields[0]) || fields[1].empty()) {
    return util::make_error("http.bad-request-line", "bad method or target");
  }
  Request request;
  request.method = std::string(fields[0]);
  request.target = std::string(fields[1]);
  request.headers = std::move(parts->headers);
  request.body = std::string(parts->body);
  return request;
}

util::Result<Response> parse_response(std::string_view wire) {
  auto parts = split_message(wire);
  if (!parts) return parts.error();

  const std::string_view line = parts->start_line;
  if (!util::starts_with(line, "HTTP/")) {
    return util::make_error("http.bad-status-line", "missing HTTP version");
  }
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) {
    return util::make_error("http.bad-status-line", "missing status code");
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view code =
      line.substr(sp1 + 1, sp2 == std::string_view::npos ? line.size() : sp2 - sp1 - 1);
  int status = 0;
  const auto [ptr, ec] = std::from_chars(code.data(), code.data() + code.size(), status);
  if (ec != std::errc{} || ptr != code.data() + code.size() || status < 100 || status > 599) {
    return util::make_error("http.bad-status", "status code not in [100,599]");
  }

  Response response;
  response.status = status;
  response.reason =
      sp2 == std::string_view::npos ? std::string{} : std::string(line.substr(sp2 + 1));
  response.headers = std::move(parts->headers);
  response.body = std::string(parts->body);
  return response;
}

}  // namespace psl::http
