#include "psl/idna/utf8.hpp"

namespace psl::idna {

namespace {

constexpr bool is_continuation(unsigned char b) noexcept { return (b & 0xC0) == 0x80; }

constexpr bool is_surrogate(CodePoint cp) noexcept { return cp >= 0xD800 && cp <= 0xDFFF; }

}  // namespace

util::Result<std::vector<CodePoint>> utf8_decode(std::string_view bytes) {
  std::vector<CodePoint> out;
  out.reserve(bytes.size());
  std::size_t i = 0;
  while (i < bytes.size()) {
    const auto b0 = static_cast<unsigned char>(bytes[i]);
    if (b0 < 0x80) {
      out.push_back(b0);
      ++i;
      continue;
    }

    std::size_t len = 0;
    CodePoint cp = 0;
    CodePoint min_cp = 0;
    if ((b0 & 0xE0) == 0xC0) {
      len = 2;
      cp = b0 & 0x1F;
      min_cp = 0x80;
    } else if ((b0 & 0xF0) == 0xE0) {
      len = 3;
      cp = b0 & 0x0F;
      min_cp = 0x800;
    } else if ((b0 & 0xF8) == 0xF0) {
      len = 4;
      cp = b0 & 0x07;
      min_cp = 0x10000;
    } else {
      return util::make_error("utf8.bad-lead",
                              "invalid lead byte at offset " + std::to_string(i));
    }

    if (i + len > bytes.size()) {
      return util::make_error("utf8.truncated",
                              "truncated sequence at offset " + std::to_string(i));
    }
    for (std::size_t k = 1; k < len; ++k) {
      const auto b = static_cast<unsigned char>(bytes[i + k]);
      if (!is_continuation(b)) {
        return util::make_error("utf8.bad-continuation",
                                "invalid continuation at offset " + std::to_string(i + k));
      }
      cp = (cp << 6) | (b & 0x3F);
    }
    if (cp < min_cp) {
      return util::make_error("utf8.overlong",
                              "overlong encoding at offset " + std::to_string(i));
    }
    if (is_surrogate(cp)) {
      return util::make_error("utf8.surrogate",
                              "surrogate code point at offset " + std::to_string(i));
    }
    if (cp > kMaxCodePoint) {
      return util::make_error("utf8.out-of-range",
                              "code point above U+10FFFF at offset " + std::to_string(i));
    }
    out.push_back(cp);
    i += len;
  }
  return out;
}

util::Result<std::string> utf8_encode(const std::vector<CodePoint>& code_points) {
  std::string out;
  out.reserve(code_points.size());
  for (CodePoint cp : code_points) {
    if (is_surrogate(cp) || cp > kMaxCodePoint) {
      return util::make_error("utf8.bad-scalar", "cannot encode U+" + std::to_string(cp));
    }
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }
  return out;
}

bool utf8_valid(std::string_view bytes) noexcept {
  return utf8_decode(bytes).ok();
}

bool is_ascii(std::string_view bytes) noexcept {
  for (char c : bytes) {
    if (static_cast<unsigned char>(c) >= 0x80) return false;
  }
  return true;
}

}  // namespace psl::idna
