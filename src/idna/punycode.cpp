#include "psl/idna/punycode.hpp"

#include <cstdint>
#include <limits>

namespace psl::idna {

namespace {

// RFC 3492 section 5: parameter values for IDNA.
constexpr std::uint32_t kBase = 36;
constexpr std::uint32_t kTMin = 1;
constexpr std::uint32_t kTMax = 26;
constexpr std::uint32_t kSkew = 38;
constexpr std::uint32_t kDamp = 700;
constexpr std::uint32_t kInitialBias = 72;
constexpr std::uint32_t kInitialN = 128;
constexpr char kDelimiter = '-';

constexpr std::uint32_t kMaxUint = std::numeric_limits<std::uint32_t>::max();

// RFC 3492 section 6.1: bias adaptation.
std::uint32_t adapt(std::uint32_t delta, std::uint32_t num_points, bool first_time) {
  delta = first_time ? delta / kDamp : delta / 2;
  delta += delta / num_points;
  std::uint32_t k = 0;
  while (delta > ((kBase - kTMin) * kTMax) / 2) {
    delta /= kBase - kTMin;
    k += kBase;
  }
  return k + (((kBase - kTMin + 1) * delta) / (delta + kSkew));
}

// Digit value -> basic code point (lower case).
char encode_digit(std::uint32_t d) {
  return d < 26 ? static_cast<char>('a' + d) : static_cast<char>('0' + d - 26);
}

// Basic code point -> digit value, or kBase on non-digit.
std::uint32_t decode_digit(char c) {
  if (c >= '0' && c <= '9') return static_cast<std::uint32_t>(c - '0') + 26;
  if (c >= 'a' && c <= 'z') return static_cast<std::uint32_t>(c - 'a');
  if (c >= 'A' && c <= 'Z') return static_cast<std::uint32_t>(c - 'A');
  return kBase;
}

constexpr bool is_basic(CodePoint cp) noexcept { return cp < 0x80; }

}  // namespace

util::Result<std::string> punycode_encode(const std::vector<CodePoint>& input) {
  for (CodePoint cp : input) {
    if (cp > kMaxCodePoint || (cp >= 0xD800 && cp <= 0xDFFF)) {
      return util::make_error("punycode.bad-scalar", "non-scalar code point in input");
    }
  }

  std::string output;
  // Copy basic code points, then the delimiter if any were copied.
  for (CodePoint cp : input) {
    if (is_basic(cp)) output.push_back(static_cast<char>(cp));
  }
  const std::uint32_t basic_count = static_cast<std::uint32_t>(output.size());
  std::uint32_t handled = basic_count;
  if (basic_count > 0) output.push_back(kDelimiter);

  std::uint32_t n = kInitialN;
  std::uint32_t delta = 0;
  std::uint32_t bias = kInitialBias;

  while (handled < input.size()) {
    // Find the smallest code point >= n among the unhandled ones.
    std::uint32_t m = kMaxUint;
    for (CodePoint cp : input) {
      if (cp >= n && cp < m) m = cp;
    }
    if (m - n > (kMaxUint - delta) / (handled + 1)) {
      return util::make_error("punycode.overflow", "delta overflow during encode");
    }
    delta += (m - n) * (handled + 1);
    n = m;

    for (CodePoint cp : input) {
      if (cp < n) {
        if (++delta == 0) {
          return util::make_error("punycode.overflow", "delta wrapped during encode");
        }
      }
      if (cp == n) {
        // Encode delta as a variable-length integer.
        std::uint32_t q = delta;
        for (std::uint32_t k = kBase;; k += kBase) {
          const std::uint32_t t = k <= bias ? kTMin : (k >= bias + kTMax ? kTMax : k - bias);
          if (q < t) break;
          output.push_back(encode_digit(t + (q - t) % (kBase - t)));
          q = (q - t) / (kBase - t);
        }
        output.push_back(encode_digit(q));
        bias = adapt(delta, handled + 1, handled == basic_count);
        delta = 0;
        ++handled;
      }
    }
    ++delta;
    ++n;
  }
  return output;
}

util::Result<std::vector<CodePoint>> punycode_decode(std::string_view input) {
  std::vector<CodePoint> output;

  // Locate the last delimiter; everything before it is basic code points.
  const std::size_t last_delim = input.rfind(kDelimiter);
  std::size_t in = 0;
  if (last_delim != std::string_view::npos) {
    for (std::size_t i = 0; i < last_delim; ++i) {
      const auto c = static_cast<unsigned char>(input[i]);
      if (c >= 0x80) {
        return util::make_error("punycode.non-basic", "non-ASCII byte before delimiter");
      }
      output.push_back(c);
    }
    in = last_delim + 1;
  }

  std::uint32_t n = kInitialN;
  std::uint32_t i = 0;
  std::uint32_t bias = kInitialBias;

  while (in < input.size()) {
    const std::uint32_t old_i = i;
    std::uint32_t w = 1;
    for (std::uint32_t k = kBase;; k += kBase) {
      if (in >= input.size()) {
        return util::make_error("punycode.truncated", "input ended mid-integer");
      }
      const std::uint32_t digit = decode_digit(input[in++]);
      if (digit >= kBase) {
        return util::make_error("punycode.bad-digit", "invalid punycode digit");
      }
      if (digit > (kMaxUint - i) / w) {
        return util::make_error("punycode.overflow", "i overflow during decode");
      }
      i += digit * w;
      const std::uint32_t t = k <= bias ? kTMin : (k >= bias + kTMax ? kTMax : k - bias);
      if (digit < t) break;
      if (w > kMaxUint / (kBase - t)) {
        return util::make_error("punycode.overflow", "w overflow during decode");
      }
      w *= kBase - t;
    }

    const auto out_len = static_cast<std::uint32_t>(output.size());
    bias = adapt(i - old_i, out_len + 1, old_i == 0);
    if (i / (out_len + 1) > kMaxUint - n) {
      return util::make_error("punycode.overflow", "n overflow during decode");
    }
    n += i / (out_len + 1);
    i %= out_len + 1;
    if (n > kMaxCodePoint || (n >= 0xD800 && n <= 0xDFFF)) {
      return util::make_error("punycode.bad-scalar", "decoded non-scalar code point");
    }
    output.insert(output.begin() + i, n);
    ++i;
  }
  return output;
}

}  // namespace psl::idna
