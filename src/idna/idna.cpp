#include "psl/idna/idna.hpp"

#include "psl/idna/punycode.hpp"
#include "psl/idna/utf8.hpp"
#include "psl/util/strings.hpp"

namespace psl::idna {

namespace {

// Lower-case ASCII letters inside a code point sequence (IDNA case folding
// for the subset we support).
void fold_case(std::vector<CodePoint>& cps) {
  for (auto& cp : cps) {
    if (cp >= 'A' && cp <= 'Z') cp += 'a' - 'A';
  }
}

}  // namespace

util::Result<std::string> label_to_ascii(std::string_view label) {
  if (label.empty()) {
    return util::make_error("idna.empty-label", "empty label");
  }
  if (is_ascii(label)) {
    std::string lowered = util::to_lower(label);
    if (lowered.size() > kMaxLabelLength) {
      return util::make_error("idna.label-too-long", "label exceeds 63 octets");
    }
    return lowered;
  }

  auto decoded = utf8_decode(label);
  if (!decoded) return decoded.error();
  fold_case(*decoded);

  auto encoded = punycode_encode(*decoded);
  if (!encoded) return encoded.error();

  std::string out(kAcePrefix);
  out += *encoded;
  if (out.size() > kMaxLabelLength) {
    return util::make_error("idna.label-too-long", "A-label exceeds 63 octets");
  }
  return out;
}

util::Result<std::string> label_to_unicode(std::string_view label) {
  if (label.empty()) {
    return util::make_error("idna.empty-label", "empty label");
  }
  if (!util::starts_with(util::to_lower(label), std::string(kAcePrefix))) {
    if (is_ascii(label)) return util::to_lower(label);
    // Already a U-label: validate the UTF-8 and case-fold.
    auto decoded = utf8_decode(label);
    if (!decoded) return decoded.error();
    fold_case(*decoded);
    return utf8_encode(*decoded);
  }

  auto decoded = punycode_decode(label.substr(kAcePrefix.size()));
  if (!decoded) return decoded.error();
  fold_case(*decoded);
  return utf8_encode(*decoded);
}

namespace {

template <typename PerLabel>
util::Result<std::string> convert_host(std::string_view host, PerLabel per_label) {
  if (host.empty()) {
    return util::make_error("idna.empty-host", "empty hostname");
  }
  // FQDN form: strip one trailing dot.
  if (host.back() == '.') host.remove_suffix(1);
  if (host.empty()) {
    return util::make_error("idna.empty-host", "hostname was only a dot");
  }

  std::string out;
  out.reserve(host.size());
  for (std::string_view label : util::split(host, '.')) {
    auto converted = per_label(label);
    if (!converted) return converted.error();
    if (!out.empty()) out.push_back('.');
    out += *converted;
  }
  if (out.size() > kMaxHostLength) {
    return util::make_error("idna.host-too-long", "hostname exceeds 253 octets");
  }
  return out;
}

}  // namespace

util::Result<std::string> host_to_ascii(std::string_view host) {
  return convert_host(host, [](std::string_view l) { return label_to_ascii(l); });
}

util::Result<std::string> host_to_unicode(std::string_view host) {
  return convert_host(host, [](std::string_view l) { return label_to_unicode(l); });
}

bool is_ldh_label(std::string_view label) noexcept {
  if (label.empty() || label.size() > kMaxLabelLength) return false;
  if (label.front() == '-' || label.back() == '-') return false;
  for (char c : label) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-';
    if (!ok) return false;
  }
  return true;
}

}  // namespace psl::idna
