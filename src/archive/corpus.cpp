#include "psl/archive/corpus.hpp"

#include <algorithm>
#include <cassert>
#include <optional>
#include <cmath>
#include <set>
#include <cstdio>

#include "psl/history/timeline.hpp"
#include "psl/util/namegen.hpp"
#include "psl/util/rng.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/zipf.hpp"

namespace psl::archive {

namespace {

using util::Rng;

constexpr std::string_view kOrgSubdomains[] = {
    "cdn", "static", "api", "shop", "blog", "mail", "img", "app",
    "m",   "assets", "media", "news", "store", "dev", "docs", "login",
};

constexpr std::string_view kTrackerSubdomains[] = {
    "cdn", "pixel", "tag", "ads", "js", "sync", "beacon", "metrics",
};

// Labels for organizations registered directly under once-wildcarded ccTLDs
// (parliament.uk-style): institutional second-level names with several
// subdomains each, which the early broad wildcards over-split.
constexpr std::string_view kInstitutionSubdomains[] = {"www", "assets", "mail", "search"};

/// Everything the request generator needs to know about one "organization"
/// (a classic registrant, a platform tenant, or a tracker).
struct Org {
  std::vector<HostId> hosts;
  /// For platform tenants: the org holding the platform's shared asset
  /// hosts (cdn.myshopify.com, ...), which tenant pages fetch from heavily.
  /// Under a list missing the platform rule those fetches look first-party;
  /// with the rule they are third-party — the source of Fig. 6's rise.
  std::size_t shared_platform_org = kNoOrg;
  /// Fraction of first-party resource picks redirected to the shared org.
  double shared_fetch_rate = 0.0;

  static constexpr std::size_t kNoOrg = static_cast<std::size_t>(-1);
};

class Builder {
 public:
  Builder(const CorpusSpec& spec, const history::History& history)
      : spec_(spec),
        history_(history),
        latest_(history.latest()),
        rng_(spec.seed),
        names_(rng_.fork(11)) {}

  Corpus build() {
    build_suffix_pool();
    build_organizations();
    build_platform_tenants();
    build_generic_platform_tenants();
    build_trackers();
    build_ip_hosts();
    generate_requests();
    return Corpus(std::move(hostnames_), std::move(requests_));
  }

 private:
  HostId intern(std::string host) {
    hostnames_.push_back(std::move(host));
    return static_cast<HostId>(hostnames_.size() - 1);
  }

  // --- universe --------------------------------------------------------------

  void build_suffix_pool() {
    // Weighted pool of ICANN normal suffixes for organization placement.
    // "com" dominates real registrations; ccTLD second-level zones follow.
    double total = 0.0;
    for (const Rule& rule : latest_.rules()) {
      if (rule.kind() != RuleKind::kNormal || rule.section() == Section::kPrivate) continue;
      const std::string text = rule.to_string();
      double weight;
      if (text == "com") weight = 2500;
      else if (text == "net" || text == "org") weight = 320;
      else if (rule.labels().size() == 1) weight = text.size() == 2 ? 8 : 1.5;
      else if (rule.labels().size() == 2) weight = 2.5;
      else weight = 0.3;
      suffix_pool_.push_back(text);
      suffix_weights_.push_back(weight);
      total += weight;
    }
    suffix_cdf_.reserve(suffix_weights_.size());
    double acc = 0.0;
    for (double w : suffix_weights_) {
      acc += w / total;
      suffix_cdf_.push_back(acc);
    }
    if (!suffix_cdf_.empty()) suffix_cdf_.back() = 1.0;
  }

  const std::string& sample_suffix() {
    const double u = rng_.uniform01();
    const auto it = std::lower_bound(suffix_cdf_.begin(), suffix_cdf_.end(), u);
    return suffix_pool_[static_cast<std::size_t>(it - suffix_cdf_.begin())];
  }

  void build_organizations() {
    static constexpr std::string_view kRetiredWildcardCcs[] = {"uk", "jp", "nz", "za"};
    const auto direct_count =
        static_cast<std::size_t>(spec_.cc_direct_fraction *
                                 static_cast<double>(spec_.organizations));

    for (std::size_t i = 0; i < spec_.organizations; ++i) {
      Org org;
      std::string registrable;
      if (i < direct_count) {
        // Institutional name directly under a once-wildcarded ccTLD.
        // These are government/university-style sites with above-average
        // traffic; entering the page pool several times weights their page
        // views up, which is what surfaces the wildcard-era over-splitting
        // (Fig. 6's early drop in third-party classifications).
        registrable = names_.fresh(2 + rng_.below(2)) + "." +
                      std::string(kRetiredWildcardCcs[rng_.below(std::size(kRetiredWildcardCcs))]);
        org.hosts.push_back(intern(registrable));
        for (std::string_view sub : kInstitutionSubdomains) {
          org.hosts.push_back(intern(std::string(sub) + "." + registrable));
        }
        for (std::size_t w = 0; w < spec_.institution_page_weight; ++w) {
          page_pool_.push_back(orgs_.size());
        }
      } else {
        registrable = names_.fresh() + "." + sample_suffix();
        if (rng_.chance(0.7)) org.hosts.push_back(intern(registrable));
        org.hosts.push_back(intern("www." + registrable));
        const std::size_t extra = rng_.below(6);
        std::vector<std::string_view> pool(std::begin(kOrgSubdomains), std::end(kOrgSubdomains));
        rng_.shuffle(pool);
        for (std::size_t k = 0; k < extra; ++k) {
          org.hosts.push_back(intern(std::string(pool[k]) + "." + registrable));
        }
        for (std::size_t w = 0; w < spec_.org_page_weight; ++w) {
          page_pool_.push_back(orgs_.size());
        }
      }
      orgs_.push_back(std::move(org));
    }
  }

  /// One tenant block under `suffix`: a shared-asset org plus `tenants`
  /// single-host tenant orgs feeding the page pool (or the CDN pool).
  void emit_platform(const std::string& suffix, std::size_t tenants, bool cdn_like,
                     double shared_fetch_rate) {
    if (tenants == 0) return;

    std::size_t shared_org_index = Org::kNoOrg;
    if (shared_fetch_rate > 0.0) {
      shared_org_index = orgs_.size();
      Org shared;
      shared.hosts.push_back(intern("cdn." + suffix));
      if (tenants >= 16) shared.hosts.push_back(intern("assets." + suffix));
      orgs_.push_back(std::move(shared));
    }

    for (std::size_t i = 0; i < tenants; ++i) {
      Org org;
      org.hosts.push_back(intern(names_.fresh() + "." + suffix));
      org.shared_platform_org = shared_org_index;
      org.shared_fetch_rate = shared_fetch_rate;
      if (cdn_like) {
        cdn_pool_.push_back(orgs_.size());
      } else {
        page_pool_.push_back(orgs_.size());
      }
      orgs_.push_back(std::move(org));
    }
  }

  void build_platform_tenants() {
    for (const history::PlatformAnchor& anchor : history::platform_anchors()) {
      const auto tenants = static_cast<std::size_t>(
          anchor.tenant_weight * spec_.platform_tenant_scale + 0.5);
      emit_platform(std::string(anchor.rule_text), tenants, anchor.cdn_like,
                    anchor.shared_fetch_rate);
    }
  }

  /// The long tail of unnamed PRIVATE rules in the history also hosts
  /// content. Tenant volume scales with the rule's age — older suffixes
  /// accumulated more registrations and traffic (the effect behind Fig. 7's
  /// "older rules shift more hostnames").
  void build_generic_platform_tenants() {
    if (spec_.generic_platform_tenant_mean <= 0.0) return;

    std::set<std::string_view> anchored;
    for (const history::PlatformAnchor& anchor : history::platform_anchors()) {
      anchored.insert(anchor.rule_text);
    }

    const util::Date first = history_.version_date(0);
    const util::Date last = history_.version_date(history_.version_count() - 1);
    const double range_days = std::max(1, last - first);

    for (const history::ScheduledRule& sr : history_.schedule()) {
      if (sr.rule.section() != Section::kPrivate) continue;
      if (sr.rule.kind() != RuleKind::kNormal) continue;
      if (sr.removed) continue;
      const std::string text = sr.rule.to_string();
      if (anchored.contains(text)) continue;

      const double age_frac = static_cast<double>(last - sr.added) / range_days;
      const double mean =
          spec_.generic_platform_tenant_mean * std::pow(std::max(age_frac, 0.0), 1.2);
      const auto tenants = static_cast<std::size_t>(mean * rng_.lognormal(0.0, 0.6) + 0.5);
      emit_platform(text, std::min<std::size_t>(tenants, 400), /*cdn_like=*/false,
                    /*shared_fetch_rate=*/0.25);
    }
  }

  void build_trackers() {
    for (std::size_t i = 0; i < spec_.trackers; ++i) {
      Org org;
      const std::string registrable = names_.fresh() + (rng_.chance(0.8) ? ".com" : ".net");
      const std::size_t host_count = 1 + rng_.below(4);
      std::vector<std::string_view> pool(std::begin(kTrackerSubdomains),
                                         std::end(kTrackerSubdomains));
      rng_.shuffle(pool);
      for (std::size_t k = 0; k < host_count; ++k) {
        org.hosts.push_back(intern(std::string(pool[k]) + "." + registrable));
      }
      tracker_pool_.push_back(orgs_.size());
      orgs_.push_back(std::move(org));
    }
  }

  void build_ip_hosts() {
    const std::size_t count = spec_.ip_literal_fraction > 0.0 ? 32 : 0;
    char buf[20];
    for (std::size_t i = 0; i < count; ++i) {
      std::snprintf(buf, sizeof buf, "%u.%u.%u.%u",
                    static_cast<unsigned>(10 + rng_.below(200)),
                    static_cast<unsigned>(rng_.below(256)),
                    static_cast<unsigned>(rng_.below(256)),
                    static_cast<unsigned>(1 + rng_.below(254)));
      ip_hosts_.push_back(intern(buf));
    }
  }

  // --- requests ---------------------------------------------------------------

  HostId random_host_of(const Org& org) {
    return org.hosts[rng_.below(org.hosts.size())];
  }

  void generate_requests() {
    // Zipf rank -> page-pool entry; the pool is shuffled first so popularity
    // is independent of creation order.
    rng_.shuffle(page_pool_);
    rng_.shuffle(tracker_pool_);
    util::ZipfSampler page_zipf(page_pool_.size(), spec_.page_zipf_exponent);
    if (!tracker_pool_.empty()) {
      tracker_zipf_.emplace(tracker_pool_.size(), spec_.tracker_zipf_exponent);
    }

    requests_.reserve(spec_.page_views * (spec_.resources_per_page_mean + 1));
    for (std::size_t pv = 0; pv < spec_.page_views; ++pv) {
      const Org& page_org = orgs_[page_pool_[page_zipf.sample(rng_)]];
      const HostId page = random_host_of(page_org);
      requests_.push_back(Request{page, page});  // the document fetch

      const std::size_t resources =
          spec_.resources_per_page_mean / 2 + rng_.below(spec_.resources_per_page_mean + 1);
      for (std::size_t r = 0; r < resources; ++r) {
        requests_.push_back(Request{page, pick_resource_host(page_org)});
      }
    }
  }

  HostId pick_resource_host(const Org& page_org) {
    if (!ip_hosts_.empty() && rng_.chance(spec_.ip_literal_fraction)) {
      return ip_hosts_[rng_.below(ip_hosts_.size())];
    }
    const double roll = rng_.uniform01();
    if (roll < spec_.first_party_fraction) {
      // Platform tenants load much of their "own" page weight from the
      // platform's shared asset hosts.
      if (page_org.shared_platform_org != Org::kNoOrg &&
          rng_.chance(page_org.shared_fetch_rate)) {
        return random_host_of(orgs_[page_org.shared_platform_org]);
      }
      return random_host_of(page_org);
    }
    if (roll < spec_.first_party_fraction + spec_.tracker_fraction) {
      // Tracker/CDN resource: mostly classic trackers, partly CDN-platform
      // tenant buckets (the digitaloceanspaces.com-style hosts).
      if (!cdn_pool_.empty() && rng_.chance(0.25)) {
        return random_host_of(orgs_[cdn_pool_[rng_.below(cdn_pool_.size())]]);
      }
      if (tracker_zipf_) {
        return random_host_of(orgs_[tracker_pool_[tracker_zipf_->sample(rng_)]]);
      }
    }
    // Cross-reference to a random other organization (links, embeds, fonts).
    const Org& other = orgs_[page_pool_[rng_.below(page_pool_.size())]];
    return random_host_of(other);
  }

  CorpusSpec spec_;
  const history::History& history_;
  const List& latest_;
  Rng rng_;
  util::NameGen names_;

  std::vector<std::string> suffix_pool_;
  std::vector<double> suffix_weights_;
  std::vector<double> suffix_cdf_;

  std::vector<Org> orgs_;
  std::vector<std::size_t> page_pool_;     // org indices visitable as pages
  std::vector<std::size_t> tracker_pool_;  // org indices acting as trackers
  std::optional<util::ZipfSampler> tracker_zipf_;
  std::vector<std::size_t> cdn_pool_;      // org indices acting as CDN buckets
  std::vector<HostId> ip_hosts_;

  std::vector<std::string> hostnames_;
  std::vector<Request> requests_;
};

}  // namespace

Corpus generate_corpus(const CorpusSpec& spec, const history::History& history) {
  return Builder(spec, history).build();
}

}  // namespace psl::archive
