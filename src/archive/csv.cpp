#include "psl/archive/csv.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <string>

#include "psl/util/strings.hpp"

namespace psl::archive {

void write_csv(const Corpus& corpus, std::ostream& out) {
  out << "#hosts\n";
  const auto& hosts = corpus.hostnames();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    out << i << ',' << hosts[i] << '\n';
  }
  out << "#requests\n";
  for (const Request& r : corpus.requests()) {
    out << r.page_host << ',' << r.resource_host << '\n';
  }
}

namespace {

util::Result<std::uint64_t> parse_u64(std::string_view field) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    return util::make_error("csv.bad-number", "not an unsigned integer: " + std::string(field));
  }
  return value;
}

}  // namespace

util::Result<Corpus> read_csv(std::istream& in) {
  std::vector<std::string> hosts;
  std::vector<Request> requests;

  enum class Section { kNone, kHosts, kRequests } section = Section::kNone;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view s = util::trim(line);
    if (s.empty()) continue;
    if (s == "#hosts") {
      section = Section::kHosts;
      continue;
    }
    if (s == "#requests") {
      section = Section::kRequests;
      continue;
    }
    if (section == Section::kNone) {
      return util::make_error("csv.no-section",
                              "line " + std::to_string(line_no) + ": data before a section");
    }

    const std::size_t comma = s.find(',');
    if (comma == std::string_view::npos) {
      return util::make_error("csv.bad-row",
                              "line " + std::to_string(line_no) + ": missing comma");
    }
    const std::string_view first = s.substr(0, comma);
    const std::string_view second = s.substr(comma + 1);

    if (section == Section::kHosts) {
      auto id = parse_u64(first);
      if (!id) return id.error();
      if (*id != hosts.size()) {
        return util::make_error("csv.bad-host-id",
                                "line " + std::to_string(line_no) + ": ids must be dense");
      }
      if (second.empty()) {
        return util::make_error("csv.empty-host",
                                "line " + std::to_string(line_no) + ": empty hostname");
      }
      hosts.emplace_back(second);
    } else {
      auto page = parse_u64(first);
      if (!page) return page.error();
      auto resource = parse_u64(second);
      if (!resource) return resource.error();
      if (*page >= hosts.size() || *resource >= hosts.size()) {
        return util::make_error("csv.bad-request-id",
                                "line " + std::to_string(line_no) + ": id out of range");
      }
      requests.push_back(
          Request{static_cast<HostId>(*page), static_cast<HostId>(*resource)});
    }
  }
  if (section == Section::kNone) {
    return util::make_error("csv.empty", "no sections found");
  }
  return Corpus(std::move(hosts), std::move(requests));
}

}  // namespace psl::archive
