#include "psl/archive/csv.hpp"

#include <charconv>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>

#include "psl/util/strings.hpp"

namespace psl::archive {

void write_csv(const Corpus& corpus, std::ostream& out) {
  out << "#hosts\n";
  const auto& hosts = corpus.hostnames();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    out << i << ',' << hosts[i] << '\n';
  }
  out << "#requests\n";
  for (const Request& r : corpus.requests()) {
    out << r.page_host << ',' << r.resource_host << '\n';
  }
}

namespace {

util::Result<std::uint64_t> parse_u64(std::string_view field) {
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    return util::make_error("csv.bad-number", "not an unsigned integer: " + std::string(field));
  }
  return value;
}

util::Error line_error(std::string code, std::size_t line_no, std::string_view detail) {
  return util::make_error(std::move(code),
                          "line " + std::to_string(line_no) + ": " + std::string(detail));
}

}  // namespace

util::Result<Corpus> read_csv(std::istream& in, const CsvOptions& options) {
  std::vector<std::string> hosts;
  std::vector<Request> requests;
  // Recover mode: hosts may be dropped, so file ids are no longer dense
  // corpus indices — requests resolve through this map instead.
  std::unordered_map<std::uint64_t, HostId> id_map;

  std::size_t skipped = 0;
  const auto record_skip = [&](std::string_view code, std::size_t line_no,
                               std::string_view detail) {
    ++skipped;
    if (options.metrics) {
      options.metrics->diagnose(
          obs::Diagnostic{std::string(code), line_no, std::string(detail)});
    }
  };

  enum class Section { kNone, kHosts, kRequests } section = Section::kNone;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view s = util::trim(line);
    if (s.empty()) continue;
    // Section structure is never recoverable: a repeated header or
    // out-of-order section means the file is not this format at all, and
    // "recovering" would silently mis-assign every following row.
    if (s == "#hosts") {
      if (section != Section::kNone) {
        return line_error("csv.duplicate-section", line_no,
                          "#hosts may appear only once, before #requests");
      }
      section = Section::kHosts;
      continue;
    }
    if (s == "#requests") {
      if (section == Section::kRequests) {
        return line_error("csv.duplicate-section", line_no, "#requests may appear only once");
      }
      if (section == Section::kNone) {
        return line_error("csv.requests-before-hosts", line_no,
                          "#requests requires a preceding #hosts section");
      }
      section = Section::kRequests;
      continue;
    }
    if (section == Section::kNone) {
      return line_error("csv.no-section", line_no, "data before a section");
    }

    const std::size_t comma = s.find(',');
    if (comma == std::string_view::npos) {
      if (!options.recover) return line_error("csv.bad-row", line_no, "missing comma");
      record_skip("csv.bad-row", line_no, "missing comma");
      continue;
    }
    const std::string_view first = s.substr(0, comma);
    const std::string_view second = s.substr(comma + 1);

    if (section == Section::kHosts) {
      auto id = parse_u64(first);
      if (!id) {
        if (!options.recover) return id.error();
        record_skip(id.error().code, line_no, id.error().message);
        continue;
      }
      if (options.recover ? id_map.contains(*id) : *id != hosts.size()) {
        if (!options.recover) return line_error("csv.bad-host-id", line_no, "ids must be dense");
        record_skip("csv.duplicate-host-id", line_no,
                    "host id " + std::to_string(*id) + " already defined");
        continue;
      }
      if (second.empty()) {
        if (!options.recover) return line_error("csv.empty-host", line_no, "empty hostname");
        record_skip("csv.empty-host", line_no, "empty hostname");
        continue;
      }
      if (options.recover) id_map.emplace(*id, static_cast<HostId>(hosts.size()));
      hosts.emplace_back(second);
    } else {
      auto page = parse_u64(first);
      auto resource = parse_u64(second);
      if (!page || !resource) {
        const util::Error& error = !page ? page.error() : resource.error();
        if (!options.recover) return error;
        record_skip(error.code, line_no, error.message);
        continue;
      }
      HostId page_id = 0;
      HostId resource_id = 0;
      if (options.recover) {
        const auto p = id_map.find(*page);
        const auto r = id_map.find(*resource);
        if (p == id_map.end() || r == id_map.end()) {
          record_skip("csv.bad-request-id", line_no,
                      "request references an unknown host id");
          continue;
        }
        page_id = p->second;
        resource_id = r->second;
      } else {
        if (*page >= hosts.size() || *resource >= hosts.size()) {
          return line_error("csv.bad-request-id", line_no, "id out of range");
        }
        page_id = static_cast<HostId>(*page);
        resource_id = static_cast<HostId>(*resource);
      }
      requests.push_back(Request{page_id, resource_id});
    }
  }
  if (section == Section::kNone) {
    return util::make_error("csv.empty", "no sections found");
  }
  if (options.metrics) {
    options.metrics->counter("csv.hosts").add(static_cast<std::int64_t>(hosts.size()));
    options.metrics->counter("csv.requests").add(static_cast<std::int64_t>(requests.size()));
    options.metrics->counter("csv.rows_skipped").add(static_cast<std::int64_t>(skipped));
  }
  return Corpus(std::move(hosts), std::move(requests));
}

util::Result<Corpus> read_csv(std::istream& in) { return read_csv(in, CsvOptions{}); }

}  // namespace psl::archive
