#include "psl/util/strings.hpp"

#include <algorithm>
#include <cstdio>

namespace psl::util {

char to_lower(char c) noexcept {
  return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return to_lower(c); });
  return out;
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

namespace {

template <typename Parts>
std::string join_impl(const Parts& parts, std::string_view sep) {
  std::string out;
  std::size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  bool first = true;
  for (const auto& p : parts) {
    if (!first) out.append(sep);
    out.append(p);
    first = false;
  }
  return out;
}

}  // namespace

std::string join(const std::vector<std::string_view>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  return join_impl(parts, sep);
}

std::string_view trim(std::string_view s) noexcept {
  const auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == '\f' || c == '\v';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool host_matches_domain(std::string_view host, std::string_view domain) noexcept {
  if (domain.empty() || host.size() < domain.size()) return false;
  if (host == domain) return true;
  return host.size() > domain.size() && ends_with(host, domain) &&
         host[host.size() - domain.size() - 1] == '.';
}

std::size_t label_count(std::string_view host) noexcept {
  if (host.empty()) return 0;
  return static_cast<std::size_t>(std::count(host.begin(), host.end(), '.')) + 1;
}

std::string with_commas(long long value) {
  char digits[32];
  const bool negative = value < 0;
  std::snprintf(digits, sizeof digits, "%lld", negative ? -value : value);
  const std::string_view raw = digits;
  std::string out;
  if (negative) out.push_back('-');
  const std::size_t n = raw.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (i != 0 && (n - i) % 3 == 0) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

}  // namespace psl::util
