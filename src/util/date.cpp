#include "psl/util/date.hpp"

#include <charconv>
#include <cstdio>

namespace psl::util {

std::optional<Date> Date::parse(std::string_view iso) {
  // Exactly "YYYY-MM-DD" with 4-2-2 digit groups; no leniency, because the
  // corpora we generate always serialise through to_string().
  if (iso.size() != 10 || iso[4] != '-' || iso[7] != '-') return std::nullopt;

  auto parse_uint = [](std::string_view s, int& out) {
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc{} && ptr == s.data() + s.size();
  };

  int y = 0, m = 0, d = 0;
  if (!parse_uint(iso.substr(0, 4), y) || !parse_uint(iso.substr(5, 2), m) ||
      !parse_uint(iso.substr(8, 2), d)) {
    return std::nullopt;
  }
  if (m < 1 || !is_valid_civil(y, static_cast<unsigned>(m), static_cast<unsigned>(d))) {
    return std::nullopt;
  }
  return from_civil(y, static_cast<unsigned>(m), static_cast<unsigned>(d));
}

std::string Date::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%04d-%02u-%02u", year(), month(), day());
  return buf;
}

}  // namespace psl::util
