#include "psl/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace psl::util {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

namespace {

double interpolated_rank(std::span<const double> sorted, double rank) {
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  if (hi >= sorted.size()) return sorted.back();
  const double frac = rank - std::floor(rank);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
  return interpolated_rank(sorted, std::clamp(rank, 0.0, static_cast<double>(sorted.size() - 1)));
}

double pearson(std::span<const double> xs, std::span<const double> ys) noexcept {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Ecdf::Ecdf(std::span<const double> samples) : sorted_(samples.begin(), samples.end()) {
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::at(double x) const noexcept {
  if (sorted_.empty()) return 0.0;
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) / static_cast<double>(sorted_.size());
}

std::vector<std::pair<double, double>> Ecdf::curve(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (sorted_.empty() || points == 0) return out;
  const double lo = sorted_.front();
  const double hi = sorted_.back();
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double x =
        points == 1 ? hi : lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(x, at(x));
  }
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(bins >= 1);
  assert(hi > lo);
}

void Histogram::add(double x) noexcept {
  const double span = hi_ - lo_;
  auto raw = static_cast<long>(std::floor((x - lo_) / span * static_cast<double>(counts_.size())));
  const long max_bin = static_cast<long>(counts_.size()) - 1;
  const std::size_t bin = static_cast<std::size_t>(std::clamp(raw, 0L, max_bin));
  ++counts_[bin];
  ++total_;
}

double Histogram::bin_low(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) / static_cast<double>(counts_.size());
}

double Histogram::bin_high(std::size_t bin) const noexcept {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin + 1) / static_cast<double>(counts_.size());
}

}  // namespace psl::util
