#include "psl/util/namegen.hpp"

namespace psl::util {

namespace {

constexpr std::string_view kOnsets[] = {
    "b", "c", "d", "f", "g", "h", "j", "k", "l", "m", "n", "p",
    "r", "s", "t", "v", "w", "z", "br", "ch", "cl", "cr", "dr",
    "fl", "gr", "pl", "pr", "sh", "sl", "st", "th", "tr",
};

constexpr std::string_view kVowels[] = {"a", "e", "i", "o", "u", "ai", "ea", "io", "ou"};

constexpr std::string_view kCodas[] = {"", "", "", "n", "r", "s", "l", "x", "m", "t", "k"};

}  // namespace

std::string NameGen::candidate(std::size_t syllables) {
  std::string out;
  for (std::size_t i = 0; i < syllables; ++i) {
    out += kOnsets[rng_.below(std::size(kOnsets))];
    out += kVowels[rng_.below(std::size(kVowels))];
  }
  out += kCodas[rng_.below(std::size(kCodas))];
  return out;
}

std::string NameGen::fresh(std::size_t syllables) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    std::string c = candidate(syllables);
    if (used_.insert(c).second) return c;
  }
  // Dense region of the name space: disambiguate with a numeric suffix.
  for (std::uint64_t n = 2;; ++n) {
    std::string c = candidate(syllables) + std::to_string(n);
    if (used_.insert(c).second) return c;
  }
}

std::string NameGen::fresh() { return fresh(2 + rng_.below(3)); }

}  // namespace psl::util
