#include "psl/util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace psl::util {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  assert(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t rule_len = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(rule_len, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

namespace {

void csv_field(std::ostream& os, std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) {
    os << field;
    return;
  }
  os << '"';
  for (char c : field) {
    if (c == '"') os << '"';
    os << c;
  }
  os << '"';
}

}  // namespace

void TextTable::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      csv_field(os, row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

}  // namespace psl::util
