#include "psl/util/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace psl::util {

ZipfSampler::ZipfSampler(std::size_t n, double s) : s_(s) {
  assert(n >= 1);
  assert(s > 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = total;
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::probability(std::size_t rank) const noexcept {
  if (rank >= cdf_.size()) return 0.0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace psl::util
