#include "psl/analytics/sketch.hpp"

#include <algorithm>

namespace psl::analytics {

namespace {

std::size_t round_pow2(std::size_t n, std::size_t floor) {
  std::size_t p = floor;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth)
    : width_(round_pow2(width, 16)),
      depth_(std::clamp<std::size_t>(depth, 1, 8)),
      mask_(width_ - 1),
      cells_(width_ * depth_) {
  seeds_.reserve(depth_);
  for (std::size_t row = 0; row < depth_; ++row) {
    seeds_.push_back(mix64(0x5EEDC0DEull + row * 0x9E3779B97F4A7C15ull));
  }
}

HashFilter::HashFilter(std::size_t slots)
    : mask_(round_pow2(slots, 64) - 1), slots_(round_pow2(slots, 64)) {}

SpaceSaving::SpaceSaving(std::size_t capacity) : capacity_(std::max<std::size_t>(capacity, 1)) {
  entries_.reserve(capacity_);
  heap_.reserve(capacity_);
  pos_.reserve(capacity_);
  index_.reserve(capacity_ * 2);
}

std::uint64_t SpaceSaving::min_count() const noexcept {
  if (entries_.size() < capacity_) return 0;
  return entries_[heap_[0]].count;
}

std::size_t SpaceSaving::state_bytes() const noexcept {
  std::size_t bytes = entries_.capacity() * sizeof(Entry) +
                      heap_.capacity() * sizeof(std::size_t) +
                      pos_.capacity() * sizeof(std::size_t);
  for (const Entry& e : entries_) bytes += e.key.capacity();
  // unordered_map nodes: key string + bucket overhead, approximated.
  bytes += index_.size() * (sizeof(std::string) + 48);
  return bytes;
}

void SpaceSaving::sift_down(std::size_t heap_pos) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t left = 2 * heap_pos + 1;
    const std::size_t right = left + 1;
    std::size_t smallest = heap_pos;
    if (left < n && heap_less(left, smallest)) smallest = left;
    if (right < n && heap_less(right, smallest)) smallest = right;
    if (smallest == heap_pos) return;
    std::swap(heap_[heap_pos], heap_[smallest]);
    pos_[heap_[heap_pos]] = heap_pos;
    pos_[heap_[smallest]] = smallest;
    heap_pos = smallest;
  }
}

void SpaceSaving::sift_up(std::size_t heap_pos) {
  while (heap_pos > 0) {
    const std::size_t parent = (heap_pos - 1) / 2;
    if (!heap_less(heap_pos, parent)) return;
    std::swap(heap_[heap_pos], heap_[parent]);
    pos_[heap_[heap_pos]] = heap_pos;
    pos_[heap_[parent]] = parent;
    heap_pos = parent;
  }
}

void SpaceSaving::offer(std::string_view key, std::uint64_t weight) {
  if (const auto it = index_.find(key); it != index_.end()) {
    entries_[it->second].count += weight;
    sift_down(pos_[it->second]);
    return;
  }
  if (entries_.size() < capacity_) {
    const std::size_t idx = entries_.size();
    entries_.push_back(Entry{std::string(key), weight, 0});
    heap_.push_back(idx);
    pos_.push_back(heap_.size() - 1);
    index_.emplace(entries_[idx].key, idx);
    sift_up(pos_[idx]);
    return;
  }
  // Full and absent: the newcomer takes over the minimum entry, inheriting
  // its count as the newcomer's error (the Space-Saving invariant).
  const std::size_t idx = heap_[0];
  Entry& victim = entries_[idx];
  index_.erase(victim.key);
  const std::uint64_t floor = victim.count;
  victim.key.assign(key);
  victim.error = floor;
  victim.count = floor + weight;
  index_.emplace(victim.key, idx);
  sift_down(0);
}

}  // namespace psl::analytics
