#include "psl/analytics/census.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "psl/url/host.hpp"

namespace psl::analytics {

Census::Shard::Shard(const CensusOptions& options)
    : reach(options.sketch_width, options.sketch_depth), trackers(options.heavy_hitters) {
  etld_misbound.reserve(options.max_etlds);
}

Census::Census(CensusOptions options, std::size_t shards)
    : options_(options),
      host_filter_(options.host_filter_slots),
      site_filter_(options.site_filter_slots),
      pair_filter_(options.pair_filter_slots) {
  const std::size_t count = std::max<std::size_t>(shards, 1);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(options_));
  }
}

std::string_view Census::site_key(std::string_view host, const MatchView& m) noexcept {
  if (url::looks_like_ip_literal(host)) return host;  // an IP stands alone
  return m.registrable_domain.empty() ? host : m.registrable_domain;
}

IngestResult Census::ingest(std::size_t shard_index, const CompiledMatcher& matcher,
                            std::span<const CensusRecord> records) {
  if (records.empty()) return {};
  Shard& shard = *shards_[shard_index % shards_.size()];

  // Match both endpoints of every record in one batch (zero-allocation
  // after the scratch reaches high-water size).
  thread_local std::vector<std::string_view> hosts;
  thread_local std::vector<MatchView> views;
  hosts.clear();
  hosts.reserve(records.size() * 2);
  for (const CensusRecord& r : records) {
    hosts.push_back(r.page_host);
    hosts.push_back(r.resource_host);
  }
  views.resize(hosts.size());
  matcher.match_batch(hosts, views);

  std::uint64_t third_party = 0;
  std::uint64_t drops = 0;
  std::uint64_t reach_increments = 0;

  // One lock per BATCH, and only this shard's — ingest never serializes
  // against another worker's ingest; only a concurrent census read can
  // contend here, briefly.
  std::lock_guard<std::mutex> lock(shard.mutex);

  // First sight of a host classifies it once: its site key joins the
  // distinct-sites filter, and a host the matcher only bounded with the
  // implicit * rule joins the per-eTLD mis-bounding tally.
  const auto account_host = [&](std::string_view host, const MatchView& m,
                                std::string_view site) {
    switch (host_filter_.insert(hash_bytes(host))) {
      case HashFilter::Insert::kSeen:
        return;
      case HashFilter::Insert::kSaturated:
        ++drops;
        return;
      case HashFilter::Insert::kNew:
        break;
    }
    if (site_filter_.insert(hash_bytes(site)) == HashFilter::Insert::kSaturated) ++drops;
    if (!m.matched_explicit_rule && !m.public_suffix.empty() &&
        !url::looks_like_ip_literal(host)) {
      if (const auto it = shard.etld_misbound.find(m.public_suffix);
          it != shard.etld_misbound.end()) {
        ++it->second;
      } else if (shard.etld_misbound.size() < options_.max_etlds) {
        shard.etld_misbound.emplace(std::string(m.public_suffix), 1);
      } else {
        ++drops;  // tally table full; misbound_hosts undercounts, visibly
      }
    }
  };

  for (std::size_t i = 0; i < records.size(); ++i) {
    const CensusRecord& r = records[i];
    const std::string_view page_site = site_key(r.page_host, views[2 * i]);
    const std::string_view resource_site = site_key(r.resource_host, views[2 * i + 1]);
    account_host(r.page_host, views[2 * i], page_site);
    account_host(r.resource_host, views[2 * i + 1], resource_site);

    if (page_site != resource_site) {
      ++third_party;
      shard.trackers.offer(resource_site);
      const std::uint64_t tracker_hash = hash_bytes(resource_site);
      switch (pair_filter_.insert(hash_pair(hash_bytes(page_site), tracker_hash))) {
        case HashFilter::Insert::kNew:
          shard.reach.add(tracker_hash);
          ++reach_increments;
          break;
        case HashFilter::Insert::kSeen:
          break;
        case HashFilter::Insert::kSaturated:
          ++drops;
          break;
      }
    }

    if (!shard.has_timestamp || r.timestamp_ms < shard.first_timestamp_ms) {
      shard.first_timestamp_ms = r.timestamp_ms;
    }
    if (!shard.has_timestamp || r.timestamp_ms > shard.last_timestamp_ms) {
      shard.last_timestamp_ms = r.timestamp_ms;
    }
    shard.has_timestamp = true;
  }

  // records before third_party: a concurrent merge that clamps
  // first_party = records - third_party never sees third_party run ahead
  // by more than this batch (and clamps to zero regardless).
  shard.records.fetch_add(records.size(), std::memory_order_relaxed);
  shard.third_party.fetch_add(third_party, std::memory_order_relaxed);
  shard.dropped.fetch_add(drops, std::memory_order_relaxed);
  shard.reach_increments.fetch_add(reach_increments, std::memory_order_relaxed);

  return IngestResult{static_cast<std::uint32_t>(records.size()),
                      static_cast<std::uint32_t>(drops)};
}

std::uint64_t Census::records() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->records.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t Census::dropped() const noexcept {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->dropped.load(std::memory_order_relaxed);
  return total;
}

std::size_t Census::state_bytes() const noexcept {
  std::size_t bytes = host_filter_.state_bytes() + site_filter_.state_bytes() +
                      pair_filter_.state_bytes();
  for (const auto& shard : shards_) {
    bytes += sizeof(Shard) + shard->reach.state_bytes();
    std::lock_guard<std::mutex> lock(shard->mutex);
    bytes += shard->trackers.state_bytes();
    // unordered_map nodes: key string + bucket overhead, approximated.
    for (const auto& [etld, count] : shard->etld_misbound) {
      bytes += sizeof(std::string) + etld.capacity() + sizeof(count) + 48;
    }
  }
  return bytes;
}

CensusSnapshot Census::snapshot(std::size_t top_k) const {
  if (top_k == 0) top_k = options_.top_k;
  CensusSnapshot out;

  struct ShardView {
    std::vector<SpaceSaving::Entry> entries;
    std::uint64_t min_count = 0;
    std::uint64_t reach_increments = 0;
  };
  std::vector<ShardView> shard_views(shards_.size());
  std::unordered_map<std::string, std::uint64_t> etlds;
  bool saw_timestamp = false;

  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    out.records += shard.records.load(std::memory_order_relaxed);
    out.third_party += shard.third_party.load(std::memory_order_relaxed);
    out.dropped += shard.dropped.load(std::memory_order_relaxed);
    shard_views[s].reach_increments =
        shard.reach_increments.load(std::memory_order_relaxed);

    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto entries = shard.trackers.entries();
    shard_views[s].entries.assign(entries.begin(), entries.end());
    shard_views[s].min_count = shard.trackers.min_count();
    for (const auto& [etld, count] : shard.etld_misbound) etlds[etld] += count;
    if (shard.has_timestamp) {
      if (!saw_timestamp || shard.first_timestamp_ms < out.first_timestamp_ms) {
        out.first_timestamp_ms = shard.first_timestamp_ms;
      }
      if (!saw_timestamp || shard.last_timestamp_ms > out.last_timestamp_ms) {
        out.last_timestamp_ms = shard.last_timestamp_ms;
      }
      saw_timestamp = true;
    }
  }
  // Clamp: under concurrent ingest the two relaxed counters may be read a
  // batch apart; quiesced, first_party is exact.
  out.first_party = out.records >= out.third_party ? out.records - out.third_party : 0;
  out.unique_hosts = host_filter_.occupancy();
  out.sites_formed = site_filter_.occupancy();

  for (const auto& [etld, count] : etlds) out.misbound_hosts += count;
  out.etlds.reserve(etlds.size());
  for (auto& [etld, count] : etlds) out.etlds.push_back({etld, count});
  std::sort(out.etlds.begin(), out.etlds.end(), [](const auto& a, const auto& b) {
    if (a.misbound != b.misbound) return a.misbound > b.misbound;
    return a.etld < b.etld;
  });
  if (out.etlds.size() > options_.max_etld_rows) out.etlds.resize(options_.max_etld_rows);

  // Tracker table: union of the shard SpaceSaving tables. A shard that does
  // not track a candidate contributes at most its min_count requests — that
  // uncertainty is charged to the row's error, so the merged contract stays
  // |true - requests| <= requests_err.
  std::unordered_map<std::string_view, CensusSnapshot::TrackerRow> merged;
  for (const ShardView& view : shard_views) {
    for (const SpaceSaving::Entry& entry : view.entries) {
      merged.try_emplace(entry.key).first->second.domain = entry.key;
    }
  }
  std::uint64_t reach_err = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    reach_err += shards_[s]->reach.error_bound(shard_views[s].reach_increments);
  }
  for (auto& [key, row] : merged) {
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      const ShardView& view = shard_views[s];
      const auto it = std::find_if(view.entries.begin(), view.entries.end(),
                                   [&](const auto& e) { return e.key == key; });
      if (it != view.entries.end()) {
        row.requests += it->count;
        row.requests_err += it->error;
      } else {
        row.requests_err += view.min_count;
      }
      row.reach += shards_[s]->reach.estimate(hash_bytes(key));
    }
    row.reach_err = reach_err;
  }

  out.trackers.reserve(merged.size());
  for (auto& [key, row] : merged) out.trackers.push_back(std::move(row));
  std::sort(out.trackers.begin(), out.trackers.end(), [](const auto& a, const auto& b) {
    if (a.reach != b.reach) return a.reach > b.reach;
    if (a.requests != b.requests) return a.requests > b.requests;
    return a.domain < b.domain;
  });
  if (out.trackers.size() > top_k) out.trackers.resize(top_k);

  out.state_bytes = state_bytes();
  return out;
}

}  // namespace psl::analytics
