#include "psl/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <climits>
#include <cstring>

#include "psl/analytics/census.hpp"
#include "psl/store/store.hpp"

#if defined(__linux__)
#include <sys/epoll.h>
#endif

// The io_uring backend talks to the kernel through raw syscalls (no liburing
// dependency); it is compiled in only where the uapi header exists and still
// probes at runtime before first use (Server::io_uring_supported()).
#if defined(__linux__) && __has_include(<linux/io_uring.h>)
#define PSL_HAVE_IO_URING 1
#include <linux/io_uring.h>
#include <linux/time_types.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#else
#define PSL_HAVE_IO_URING 0
#endif

namespace psl::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

/// How long the listener stays parked after accept() hits fd exhaustion.
constexpr int kAcceptRetryMs = 100;

}  // namespace

// --- Poller: the epoll/poll readiness backend -------------------------------

class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool error = false;
  };

  virtual ~Poller() = default;
  virtual bool add(int fd, bool want_read, bool want_write) = 0;
  virtual bool mod(int fd, bool want_read, bool want_write) = 0;
  virtual void del(int fd) = 0;
  /// Fill `out` (cleared first) with ready fds; timeout_ms < 0 blocks.
  virtual int wait(std::vector<Event>& out, int timeout_ms) = 0;
  virtual const char* name() const noexcept = 0;

  /// Resolve `backend` to a concrete poller. kAuto prefers epoll where
  /// available; kIoUring returns nullptr when the kernel cannot run it (the
  /// caller turns that into a "net.backend" error — no silent substitution
  /// of an explicitly requested backend).
  static std::unique_ptr<Poller> make(Backend backend);
};

namespace {

/// Portable backend: one pollfd per fd, O(n) wait. n is bounded by
/// max_connections, so this stays serviceable where epoll is unavailable.
class PollPoller final : public Poller {
 public:
  bool add(int fd, bool want_read, bool want_write) override {
    if (index_.count(fd) != 0) return false;
    index_[fd] = fds_.size();
    fds_.push_back(pollfd{fd, events_of(want_read, want_write), 0});
    return true;
  }

  bool mod(int fd, bool want_read, bool want_write) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return false;
    fds_[it->second].events = events_of(want_read, want_write);
    return true;
  }

  void del(int fd) override {
    auto it = index_.find(fd);
    if (it == index_.end()) return;
    const std::size_t pos = it->second;
    index_.erase(it);
    if (pos + 1 != fds_.size()) {
      fds_[pos] = fds_.back();
      index_[fds_[pos].fd] = pos;
    }
    fds_.pop_back();
  }

  int wait(std::vector<Event>& out, int timeout_ms) override {
    out.clear();
    const int n = ::poll(fds_.data(), fds_.size(), timeout_ms);
    if (n <= 0) return n;
    for (const pollfd& p : fds_) {
      if (p.revents == 0) continue;
      Event ev;
      ev.fd = p.fd;
      // POLLHUP surfaces as readable so the read path observes EOF.
      ev.readable = (p.revents & (POLLIN | POLLHUP)) != 0;
      ev.writable = (p.revents & POLLOUT) != 0;
      ev.error = (p.revents & (POLLERR | POLLNVAL)) != 0;
      out.push_back(ev);
    }
    return n;
  }

  const char* name() const noexcept override { return "poll"; }

 private:
  static short events_of(bool want_read, bool want_write) {
    return static_cast<short>((want_read ? POLLIN : 0) | (want_write ? POLLOUT : 0));
  }

  std::vector<pollfd> fds_;
  std::unordered_map<int, std::size_t> index_;
};

#if defined(__linux__)
class EpollPoller final : public Poller {
 public:
  EpollPoller() : epoll_fd_(::epoll_create1(EPOLL_CLOEXEC)) {}
  ~EpollPoller() override {
    if (epoll_fd_ >= 0) ::close(epoll_fd_);
  }

  bool ok() const { return epoll_fd_ >= 0; }

  bool add(int fd, bool want_read, bool want_write) override {
    return ctl(EPOLL_CTL_ADD, fd, want_read, want_write);
  }
  bool mod(int fd, bool want_read, bool want_write) override {
    return ctl(EPOLL_CTL_MOD, fd, want_read, want_write);
  }
  void del(int fd) override { ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr); }

  int wait(std::vector<Event>& out, int timeout_ms) override {
    out.clear();
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) {
      Event ev;
      ev.fd = events[i].data.fd;
      ev.readable = (events[i].events & (EPOLLIN | EPOLLHUP)) != 0;
      ev.writable = (events[i].events & EPOLLOUT) != 0;
      ev.error = (events[i].events & EPOLLERR) != 0;
      out.push_back(ev);
    }
    return n;
  }

  const char* name() const noexcept override { return "epoll"; }

 private:
  bool ctl(int op, int fd, bool want_read, bool want_write) {
    epoll_event ev{};
    ev.events = (want_read ? EPOLLIN : 0u) | (want_write ? EPOLLOUT : 0u);
    ev.data.fd = fd;
    return ::epoll_ctl(epoll_fd_, op, fd, &ev) == 0;
  }

  int epoll_fd_;
};
#endif  // __linux__

#if PSL_HAVE_IO_URING

int sys_io_uring_setup(unsigned entries, io_uring_params* params) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, params));
}

int sys_io_uring_enter(int ring_fd, unsigned to_submit, unsigned min_complete, unsigned flags,
                       const void* arg, std::size_t argsz) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, ring_fd, to_submit, min_complete, flags, arg, argsz));
}

/// io_uring backend with poll()-equivalent level-triggered semantics: every
/// watched fd is armed with a ONE-SHOT IORING_OP_POLL_ADD; a completion
/// disarms it and the next wait() re-arms it with the fd's current interest
/// mask. That costs one SQE per *ready* fd per loop iteration (idle fds stay
/// armed for free) and keeps the Server's event-loop logic — which was
/// written against level-triggered poll/epoll — valid without modification.
///
/// Interest changes (mod/del) cancel the in-flight arm with
/// IORING_OP_POLL_REMOVE and bump the fd's arm token; CQEs carry
/// (fd, token) in user_data, so a completion from a canceled arm that raced
/// the cancellation is recognized as stale and dropped instead of being
/// misread as fresh readiness for the new interest mask.
class IoUringPoller final : public Poller {
 public:
  /// Set up the ring; nullptr when the kernel cannot run this backend
  /// (ENOSYS, the io_uring_disabled sysctl, or missing EXT_ARG timed waits).
  static std::unique_ptr<IoUringPoller> try_make() {
    auto poller = std::unique_ptr<IoUringPoller>(new IoUringPoller());
    if (!poller->init()) return nullptr;
    return poller;
  }

  ~IoUringPoller() override {
    if (sqes_ != nullptr) ::munmap(sqes_, sqes_bytes_);
    if (sq_ring_ != nullptr) ::munmap(sq_ring_, sq_ring_bytes_);
    if (cq_ring_ != nullptr && cq_ring_ != sq_ring_) ::munmap(cq_ring_, cq_ring_bytes_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  bool add(int fd, bool want_read, bool want_write) override {
    if (states_.count(fd) != 0) return false;
    states_[fd] = FdState{want_read, want_write, false, next_token_++};
    return true;
  }

  bool mod(int fd, bool want_read, bool want_write) override {
    auto it = states_.find(fd);
    if (it == states_.end()) return false;
    FdState& s = it->second;
    if (s.want_read == want_read && s.want_write == want_write) return true;
    if (s.armed) cancel_arm(fd, s);
    s.want_read = want_read;
    s.want_write = want_write;
    return true;
  }

  void del(int fd) override {
    auto it = states_.find(fd);
    if (it == states_.end()) return;
    if (it->second.armed) cancel_arm(fd, it->second);
    states_.erase(it);
    // Flush the POLL_REMOVE now: the caller is about to close(fd), and the
    // armed POLL_ADD holds a reference on the file until canceled.
    submit_pending(0, nullptr, 0, 0);
  }

  int wait(std::vector<Event>& out, int timeout_ms) override {
    out.clear();
    for (auto& [fd, s] : states_) {
      if (s.armed) continue;
      io_uring_sqe* sqe = next_sqe();
      if (sqe == nullptr) break;  // ring full; the rest re-arm next wait
      sqe->opcode = IORING_OP_POLL_ADD;
      sqe->fd = fd;
      // POLLERR/POLLHUP are always reported, as with poll(2), even when the
      // interest mask is empty (a write-stalled connection being back-
      // pressured still notices the peer vanishing).
      sqe->poll32_events = (s.want_read ? POLLIN : 0u) | (s.want_write ? POLLOUT : 0u);
      sqe->user_data = pack(fd, s.token);
      s.armed = true;
    }

    io_uring_getevents_arg arg{};
    __kernel_timespec ts{};
    const void* argp = nullptr;
    std::size_t argsz = 0;
    unsigned flags = IORING_ENTER_GETEVENTS;
    unsigned min_complete = 1;
    if (timeout_ms == 0) {
      min_complete = 0;
    } else if (timeout_ms > 0) {
      ts.tv_sec = timeout_ms / 1000;
      ts.tv_nsec = static_cast<long long>(timeout_ms % 1000) * 1'000'000;
      arg.ts = reinterpret_cast<std::uint64_t>(&ts);
      argp = &arg;
      argsz = sizeof arg;
      flags |= IORING_ENTER_EXT_ARG;
    }
    submit_pending(min_complete, argp, argsz, flags);  // ETIME/EINTR: reap & return

    int n = 0;
    const unsigned tail = cq_tail_->load(std::memory_order_acquire);
    unsigned head = cq_head_->load(std::memory_order_relaxed);
    for (; head != tail; ++head) {
      const io_uring_cqe& cqe = cqes_[head & cq_mask_];
      if (cqe.user_data == kCancelData) continue;  // a POLL_REMOVE's own CQE
      const int fd = unpack_fd(cqe.user_data);
      const std::uint32_t token = unpack_token(cqe.user_data);
      auto it = states_.find(fd);
      if (it == states_.end() || it->second.token != token) continue;  // stale arm
      it->second.armed = false;
      if (cqe.res == -ECANCELED) continue;
      Event ev;
      ev.fd = fd;
      if (cqe.res < 0) {
        ev.error = true;  // e.g. -EBADF: surface as an error event
      } else {
        const unsigned mask = static_cast<unsigned>(cqe.res);
        ev.readable = (mask & (POLLIN | POLLHUP)) != 0;
        ev.writable = (mask & POLLOUT) != 0;
        ev.error = (mask & (POLLERR | POLLNVAL)) != 0;
      }
      out.push_back(ev);
      ++n;
    }
    cq_head_->store(head, std::memory_order_release);
    return n;
  }

  const char* name() const noexcept override { return "io_uring"; }

 private:
  struct FdState {
    bool want_read = false;
    bool want_write = false;
    bool armed = false;          ///< a one-shot POLL_ADD is in flight
    std::uint32_t token = 0;     ///< arm identity; bumped on cancel
  };

  IoUringPoller() = default;

  static constexpr unsigned kEntries = 256;
  static constexpr std::uint64_t kCancelData = ~std::uint64_t{0};

  static std::uint64_t pack(int fd, std::uint32_t token) {
    return (static_cast<std::uint64_t>(token) << 32) | static_cast<std::uint32_t>(fd);
  }
  static int unpack_fd(std::uint64_t data) { return static_cast<int>(data & 0xFFFFFFFFu); }
  static std::uint32_t unpack_token(std::uint64_t data) {
    return static_cast<std::uint32_t>(data >> 32);
  }

  bool init() {
    io_uring_params params{};
    ring_fd_ = sys_io_uring_setup(kEntries, &params);
    if (ring_fd_ < 0) return false;
    // EXT_ARG (5.11+) carries the wait timeout through io_uring_enter —
    // without it every timed wait would need a TIMEOUT SQE competing for
    // ring space. Treat its absence as "kernel too old for this backend".
    if ((params.features & IORING_FEAT_EXT_ARG) == 0) return false;

    sq_ring_bytes_ = params.sq_off.array + params.sq_entries * sizeof(std::uint32_t);
    cq_ring_bytes_ = params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    const bool single_mmap = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) sq_ring_bytes_ = cq_ring_bytes_ = std::max(sq_ring_bytes_, cq_ring_bytes_);

    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                      ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) {
      sq_ring_ = nullptr;
      return false;
    }
    if (single_mmap) {
      cq_ring_ = sq_ring_;
    } else {
      cq_ring_ = ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_CQ_RING);
      if (cq_ring_ == MAP_FAILED) {
        cq_ring_ = nullptr;
        return false;
      }
    }
    sqes_bytes_ = params.sq_entries * sizeof(io_uring_sqe);
    sqes_ = static_cast<io_uring_sqe*>(::mmap(nullptr, sqes_bytes_, PROT_READ | PROT_WRITE,
                                              MAP_SHARED | MAP_POPULATE, ring_fd_,
                                              IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) {
      sqes_ = nullptr;
      return false;
    }

    auto* sq = static_cast<std::uint8_t*>(sq_ring_);
    sq_head_ = reinterpret_cast<std::atomic<unsigned>*>(sq + params.sq_off.head);
    sq_tail_ = reinterpret_cast<std::atomic<unsigned>*>(sq + params.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    auto* cq = static_cast<std::uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<std::atomic<unsigned>*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<std::atomic<unsigned>*>(cq + params.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);
    local_tail_ = sq_tail_->load(std::memory_order_relaxed);
    return true;
  }

  /// Next free SQE (zeroed, already indexed in the SQ array), or nullptr
  /// when the ring is full.
  io_uring_sqe* next_sqe() {
    const unsigned head = sq_head_->load(std::memory_order_acquire);
    if (local_tail_ - head >= kEntries) return nullptr;
    io_uring_sqe* sqe = &sqes_[local_tail_ & sq_mask_];
    std::memset(sqe, 0, sizeof *sqe);
    sq_array_[local_tail_ & sq_mask_] = local_tail_ & sq_mask_;
    ++local_tail_;
    return sqe;
  }

  /// Cancel `fd`'s in-flight arm and retire its token. The POLL_REMOVE SQE
  /// is queued here and flushed by the caller (del() immediately, mod() at
  /// the next wait()).
  void cancel_arm(int fd, FdState& s) {
    io_uring_sqe* sqe = next_sqe();
    if (sqe == nullptr) {
      submit_pending(0, nullptr, 0, 0);
      sqe = next_sqe();
    }
    if (sqe != nullptr) {
      sqe->opcode = IORING_OP_POLL_REMOVE;
      sqe->addr = pack(fd, s.token);  // user_data of the arm to cancel
      sqe->user_data = kCancelData;
    }
    // Even if the ring was too full to queue the cancel, the token bump
    // makes any late completion stale — the old arm can only leak until its
    // fd next becomes ready, never corrupt readiness.
    s.token = next_token_++;
    s.armed = false;
  }

  /// Publish queued SQEs and (optionally) wait for completions.
  void submit_pending(unsigned min_complete, const void* argp, std::size_t argsz,
                      unsigned flags) {
    sq_tail_->store(local_tail_, std::memory_order_release);
    const unsigned to_submit = local_tail_ - sq_head_->load(std::memory_order_acquire);
    if (to_submit == 0 && min_complete == 0 && (flags & IORING_ENTER_GETEVENTS) == 0) return;
    (void)sys_io_uring_enter(ring_fd_, to_submit, min_complete, flags, argp, argsz);
    // ETIME (timed out), EINTR (signal): both fine — the caller reaps
    // whatever completed. Submission errors leave arms pending and the
    // affected fds simply re-arm on a later wait.
  }

  int ring_fd_ = -1;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  io_uring_sqe* sqes_ = nullptr;
  std::size_t sq_ring_bytes_ = 0, cq_ring_bytes_ = 0, sqes_bytes_ = 0;
  std::atomic<unsigned>* sq_head_ = nullptr;
  std::atomic<unsigned>* sq_tail_ = nullptr;
  unsigned* sq_array_ = nullptr;
  unsigned sq_mask_ = 0;
  std::atomic<unsigned>* cq_head_ = nullptr;
  std::atomic<unsigned>* cq_tail_ = nullptr;
  io_uring_cqe* cqes_ = nullptr;
  unsigned cq_mask_ = 0;
  unsigned local_tail_ = 0;

  std::uint32_t next_token_ = 1;
  std::unordered_map<int, FdState> states_;
};

#endif  // PSL_HAVE_IO_URING

}  // namespace

std::unique_ptr<Poller> Poller::make(Backend backend) {
  switch (backend) {
    case Backend::kPoll:
      return std::make_unique<PollPoller>();
    case Backend::kIoUring:
#if PSL_HAVE_IO_URING
      return IoUringPoller::try_make();  // nullptr when the kernel can't
#else
      return nullptr;
#endif
    case Backend::kEpoll:
    case Backend::kAuto:
      break;
  }
#if defined(__linux__)
  {
    auto epoll = std::make_unique<EpollPoller>();
    if (epoll->ok()) return epoll;
  }
#endif
  return backend == Backend::kEpoll ? nullptr : std::make_unique<PollPoller>();
}

// --- connection + completion state ------------------------------------------

struct Server::Connection {
  Connection(std::uint64_t id_in, int fd_in, std::size_t max_frame_bytes)
      : id(id_in), fd(fd_in), decoder(max_frame_bytes) {}

  std::uint64_t id;
  int fd;
  FrameDecoder decoder;
  std::vector<std::uint8_t> out;
  std::size_t out_off = 0;
  std::size_t inflight = 0;  ///< engine jobs whose responses are pending
  bool draining = false;
  bool subscribed = false;  ///< receives generation_changed pushes
  /// Last generation/rule count pushed (or implied by the subscribe reply);
  /// the next push carries rule_delta relative to pushed_rule_count.
  std::uint64_t pushed_generation = 0;
  std::uint64_t pushed_rule_count = 0;
  bool want_read = true;
  bool want_write = false;
  bool mid_frame = false;
  std::chrono::steady_clock::time_point last_activity;
  std::chrono::steady_clock::time_point frame_start;

  std::size_t pending_out() const noexcept { return out.size() - out_off; }
};

/// A finished engine batch: one fully encoded response frame plus enough
/// context to route and time it. Produced on engine workers, consumed on the
/// loop thread.
struct Server::Completion {
  std::uint64_t conn_id = 0;
  std::vector<std::uint8_t> frame;  ///< recycled via the buffer pool
  FrameType request_type = FrameType::kPing;
  std::chrono::steady_clock::time_point t0;
};

// --- lifecycle --------------------------------------------------------------

Server::Server(serve::Engine& engine, ServerOptions options)
    : engine_(engine), options_(std::move(options)) {
  if (options_.metrics) {
    auto& m = *options_.metrics;
    connections_gauge_ = &m.gauge("net.connections");
    accepted_ = &m.counter("net.accepted");
    frames_in_ = &m.counter("net.frames_in");
    frames_out_ = &m.counter("net.frames_out");
    bytes_in_ = &m.counter("net.bytes_in");
    bytes_out_ = &m.counter("net.bytes_out");
    reject_backpressure_ = &m.counter("net.reject.backpressure");
    reject_malformed_ = &m.counter("net.reject.malformed");
    reject_max_conns_ = &m.counter("net.reject.max_conns");
    timeout_idle_ = &m.counter("net.timeout.idle");
    timeout_read_ = &m.counter("net.timeout.read");
    timeout_write_stall_ = &m.counter("net.timeout.write_stall");
    frame_errors_ = &m.counter("net.frame_errors");
    push_sent_ = &m.counter("net.push.sent");
    udp_datagrams_ = &m.counter("net.udp.datagrams");
    udp_dropped_ = &m.counter("net.udp.dropped");
    latency_ping_ = &m.histogram("net.request_ms.ping");
    latency_same_site_ = &m.histogram("net.request_ms.same_site");
    latency_match_ = &m.histogram("net.request_ms.match");
    latency_reload_ = &m.histogram("net.request_ms.reload");
    latency_stats_ = &m.histogram("net.request_ms.stats");
    latency_match_at_ = &m.histogram("net.request_ms.match_at");
    latency_divergence_ = &m.histogram("net.request_ms.divergence");
    latency_ingest_ = &m.histogram("net.request_ms.ingest");
    latency_census_ = &m.histogram("net.request_ms.census");
    analytics_ingest_records_ = &m.counter("analytics.ingest.records");
    analytics_ingest_dropped_ = &m.counter("analytics.ingest.dropped");
    analytics_census_queries_ = &m.counter("analytics.census.queries");
    analytics_hosts_gauge_ = &m.gauge("analytics.hosts.occupancy");
    analytics_sites_gauge_ = &m.gauge("analytics.sites.occupancy");
    analytics_pairs_gauge_ = &m.gauge("analytics.pairs.occupancy");
  }
}

Server::~Server() { shutdown(); }

bool Server::io_uring_supported() {
#if PSL_HAVE_IO_URING
  static const bool supported = [] { return IoUringPoller::try_make() != nullptr; }();
  return supported;
#else
  return false;
#endif
}

util::Result<std::uint16_t> Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    return util::make_error("net.started", "server is already running");
  }

  // Resolve the backend before touching any socket so an unsupported
  // explicit request fails with nothing to unwind.
  const Backend backend = options_.force_poll ? Backend::kPoll : options_.backend;
  poller_ = Poller::make(backend);
  if (!poller_) {
    return util::make_error(
        "net.backend",
        backend == Backend::kIoUring
            ? "io_uring backend unavailable on this kernel (probe Server::io_uring_supported)"
            : "requested event backend unavailable");
  }
  backend_name_ = poller_->name();

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return util::make_error("net.listen", "bad IPv4 bind address: " + options_.bind_address);
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return util::make_error("net.listen", errno_text("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (options_.reuse_port) {
    // Must be set on EVERY socket sharing the port, before bind — this is
    // the kernel's shard load-balancer (psld --shards).
    if (::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0) {
      const auto err = util::make_error("net.listen", errno_text("setsockopt(SO_REUSEPORT)"));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return err;
    }
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listen_fd_, 128) != 0 || !set_nonblocking(listen_fd_)) {
    const auto err = util::make_error("net.listen", errno_text("bind/listen"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    const auto err = util::make_error("net.listen", errno_text("getsockname"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return err;
  }
  port_ = ntohs(bound.sin_port);

  if (options_.enable_udp) {
    udp_fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (udp_fd_ < 0) {
      const auto err = util::make_error("net.listen", errno_text("socket(udp)"));
      ::close(listen_fd_);
      listen_fd_ = -1;
      return err;
    }
    if (options_.reuse_port) ::setsockopt(udp_fd_, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
    sockaddr_in udp_addr = addr;
    udp_addr.sin_port = htons(port_);  // the TCP-resolved port, even when 0 was asked
    if (::bind(udp_fd_, reinterpret_cast<sockaddr*>(&udp_addr), sizeof udp_addr) != 0 ||
        !set_nonblocking(udp_fd_)) {
      const auto err = util::make_error("net.listen", errno_text("bind(udp)"));
      ::close(udp_fd_);
      udp_fd_ = -1;
      ::close(listen_fd_);
      listen_fd_ = -1;
      return err;
    }
    udp_in_.resize(std::min(options_.max_frame_bytes + kHeaderBytes, kUdpMaxDatagramBytes));
  }

  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    const auto err = util::make_error("net.listen", errno_text("pipe"));
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (udp_fd_ >= 0) {
      ::close(udp_fd_);
      udp_fd_ = -1;
    }
    return err;
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  set_nonblocking(wake_read_fd_);
  set_nonblocking(wake_write_fd_);

  poller_->add(listen_fd_, true, false);
  poller_->add(wake_read_fd_, true, false);
  if (udp_fd_ >= 0) poller_->add(udp_fd_, true, false);

  read_scratch_.resize(64 * 1024);
  stop_requested_.store(false, std::memory_order_release);

  // Arm the push channel: the engine's generation listener records the new
  // generation and wakes the loop, which broadcasts to subscribed
  // connections. The listener captures the shared state (not `this`), so an
  // invocation racing shutdown() cannot dangle; disarming under the mutex
  // guarantees no pipe write after the fd closes.
  push_state_ = std::make_shared<PushState>();
  push_state_->armed = true;
  push_state_->wake_fd = wake_write_fd_;
  engine_.set_generation_listener(
      [state = push_state_](std::uint64_t generation, const snapshot::Metadata& meta) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->armed) return;
        state->pending = true;
        state->generation = generation;
        state->rule_count = meta.rule_count;
        state->source_date_days = meta.source_date.days_since_epoch();
        const std::uint8_t byte = 1;
        (void)!::write(state->wake_fd, &byte, 1);  // EAGAIN = wakeup already pending
      });

  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread([this] { loop(); });
  return port_;
}

void Server::shutdown() {
  if (!running_.load(std::memory_order_acquire)) return;
  // Disarm the push channel first: clearing the engine listener stops new
  // invocations, and flipping `armed` under the mutex waits out any
  // listener mid-write so nothing touches the wake pipe once it closes.
  engine_.set_generation_listener(nullptr);
  if (push_state_) {
    std::lock_guard<std::mutex> lock(push_state_->mutex);
    push_state_->armed = false;
    push_state_->wake_fd = -1;
  }
  stop_requested_.store(true, std::memory_order_release);
  const std::uint8_t byte = 1;
  // A full pipe already guarantees a pending wakeup.
  (void)!::write(wake_write_fd_, &byte, 1);
  if (loop_thread_.joinable()) loop_thread_.join();

  // Engine jobs capture `this`; wait for every one of them to report back
  // (the engine's workers keep draining its queue, so this is finite)
  // before retiring the wake pipe and letting the server be destroyed.
  {
    std::unique_lock<std::mutex> lock(completion_mutex_);
    jobs_cv_.wait(lock, [this] { return outstanding_jobs_ == 0; });
    ::close(wake_write_fd_);
    wake_write_fd_ = -1;
  }
  ::close(wake_read_fd_);
  wake_read_fd_ = -1;
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (udp_fd_ >= 0) {
    ::close(udp_fd_);
    udp_fd_ = -1;
  }
  poller_.reset();
  running_.store(false, std::memory_order_release);
}

std::size_t Server::connection_count() const {
  std::lock_guard<std::mutex> lock(conn_count_mutex_);
  return conn_count_;
}

// --- buffer pool ------------------------------------------------------------

std::vector<std::uint8_t> Server::acquire_buffer() {
  std::lock_guard<std::mutex> lock(buffer_pool_mutex_);
  if (buffer_pool_.empty()) return {};
  std::vector<std::uint8_t> buffer = std::move(buffer_pool_.back());
  buffer_pool_.pop_back();
  buffer.clear();
  return buffer;
}

void Server::release_buffer(std::vector<std::uint8_t> buffer) {
  std::lock_guard<std::mutex> lock(buffer_pool_mutex_);
  if (buffer_pool_.size() < 64) buffer_pool_.push_back(std::move(buffer));
}

// --- event loop -------------------------------------------------------------

void Server::loop() {
  using Clock = std::chrono::steady_clock;
  std::vector<Poller::Event> events;
  bool draining = false;
  Clock::time_point drain_deadline{};

  for (;;) {
    const Clock::time_point now = Clock::now();

    if (stop_requested_.load(std::memory_order_acquire) && !draining) {
      draining = true;
      drain_deadline = now + std::chrono::milliseconds(options_.drain_timeout_ms);
      poller_->del(listen_fd_);
      if (udp_fd_ >= 0) poller_->del(udp_fd_);
      for (auto& [id, conn] : connections_) {
        conn->draining = true;
        update_read_interest(*conn);
      }
    }

    if (draining) {
      // Close connections with nothing left to deliver; exit once all are
      // gone or the drain bound expires (in-flight responses are then shed).
      std::vector<std::uint64_t> done;
      for (auto& [id, conn] : connections_) {
        if (conn->inflight == 0 && conn->pending_out() == 0) done.push_back(id);
      }
      for (const std::uint64_t id : done) close_connection(id);
      if (connections_.empty() || now >= drain_deadline) break;
    }

    // Enforce idle/read/write-stall timeouts before sleeping. The guards here
    // must stay in lockstep with next_timeout_ms: every deadline that call
    // reports has to be one this check can fire, or the loop busy-spins on a
    // deadline that never resolves.
    {
      std::vector<std::uint64_t> expired_idle, expired_read, expired_write;
      for (auto& [id, conn] : connections_) {
        if (options_.read_timeout_ms > 0 && conn->mid_frame &&
            now - conn->frame_start >= std::chrono::milliseconds(options_.read_timeout_ms)) {
          expired_read.push_back(id);
        } else if (options_.write_stall_timeout_ms > 0 && conn->pending_out() > 0 &&
                   now - conn->last_activity >=
                       std::chrono::milliseconds(options_.write_stall_timeout_ms)) {
          // last_activity advances on every successful send, so this fires
          // only when the peer has accepted nothing for the whole window.
          expired_write.push_back(id);
        } else if (options_.idle_timeout_ms > 0 && conn->inflight == 0 &&
                   conn->pending_out() == 0 &&
                   now - conn->last_activity >=
                       std::chrono::milliseconds(options_.idle_timeout_ms)) {
          expired_idle.push_back(id);
        }
      }
      for (const std::uint64_t id : expired_read) {
        if (timeout_read_) timeout_read_->add();
        close_connection(id);
      }
      for (const std::uint64_t id : expired_write) {
        if (timeout_write_stall_) timeout_write_stall_->add();
        close_connection(id);
      }
      for (const std::uint64_t id : expired_idle) {
        if (timeout_idle_) timeout_idle_->add();
        close_connection(id);
      }
    }

    // Un-park the listener once the fd-exhaustion backoff elapses.
    if (accept_paused_ && !draining && now >= accept_resume_at_) {
      accept_paused_ = false;
      poller_->add(listen_fd_, true, false);
    }

    int timeout_ms = next_timeout_ms(now);
    if (accept_paused_ && !draining) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(accept_resume_at_ - now).count();
      const int resume_left = static_cast<int>(std::max<long long>(0, left));
      timeout_ms = timeout_ms < 0 ? resume_left : std::min(timeout_ms, resume_left);
    }
    if (draining) {
      const auto left =
          std::chrono::duration_cast<std::chrono::milliseconds>(drain_deadline - now).count();
      const int drain_left = static_cast<int>(std::max<long long>(0, left));
      timeout_ms = timeout_ms < 0 ? drain_left : std::min(timeout_ms, drain_left);
    }

    poller_->wait(events, timeout_ms);

    // Drain the wake pipe BEFORE anything that can make a worker write to
    // it. Draining it mid-batch (after dispatching a connection's request)
    // could swallow a byte the worker wrote for a completion that
    // drain_completions() already missed this iteration — the next wait()
    // would then block indefinitely with that response stranded.
    for (const Poller::Event& ev : events) {
      if (ev.fd != wake_read_fd_) continue;
      std::uint8_t sink[256];
      while (::read(wake_read_fd_, sink, sizeof sink) > 0) {
      }
      break;
    }
    drain_completions();
    broadcast_generation();

    bool accept_ready = false;
    for (const Poller::Event& ev : events) {
      if (ev.fd == wake_read_fd_) continue;  // drained above
      if (ev.fd == listen_fd_) {
        accept_ready = true;  // handled after existing connections, so a
        continue;             // just-closed fd cannot alias a fresh accept
      }
      if (udp_fd_ >= 0 && ev.fd == udp_fd_) {
        if (!draining) handle_udp();
        continue;
      }
      auto it = fd_to_conn_.find(ev.fd);
      if (it == fd_to_conn_.end()) continue;  // closed earlier this batch
      const std::uint64_t conn_id = it->second;
      Connection& conn = *connections_.at(conn_id);
      bool alive = true;
      if (ev.error) alive = false;
      if (alive && ev.readable && conn.want_read) alive = handle_readable(conn);
      if (alive && ev.writable) alive = flush_writes(conn);
      if (!alive) close_connection(conn_id);
    }
    if (accept_ready && !draining) handle_accept();
  }

  // Force-close whatever the drain bound left behind.
  while (!connections_.empty()) close_connection(connections_.begin()->first);
}

int Server::next_timeout_ms(std::chrono::steady_clock::time_point now) const {
  using std::chrono::milliseconds;
  std::chrono::steady_clock::time_point earliest{};
  bool have = false;
  // Only deadlines the expiry check can fire in the connection's CURRENT
  // state count. Reporting any other deadline (e.g. an idle deadline for a
  // write-stalled or inflight connection) would clamp the poll timeout to 0
  // once it passes and spin the loop at 100% CPU with nothing to do.
  for (const auto& [id, conn] : connections_) {
    if (options_.read_timeout_ms > 0 && conn->mid_frame) {
      const auto deadline = conn->frame_start + milliseconds(options_.read_timeout_ms);
      if (!have || deadline < earliest) earliest = deadline, have = true;
    }
    if (conn->pending_out() > 0) {
      if (options_.write_stall_timeout_ms > 0) {
        const auto deadline =
            conn->last_activity + milliseconds(options_.write_stall_timeout_ms);
        if (!have || deadline < earliest) earliest = deadline, have = true;
      }
    } else if (conn->inflight == 0 && options_.idle_timeout_ms > 0) {
      const auto deadline = conn->last_activity + milliseconds(options_.idle_timeout_ms);
      if (!have || deadline < earliest) earliest = deadline, have = true;
    }
  }
  if (!have) return -1;
  const auto left = std::chrono::duration_cast<milliseconds>(earliest - now).count();
  return static_cast<int>(std::clamp<long long>(left, 0, 60'000));
}

void Server::handle_accept() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS || errno == ENOMEM) {
        // fd/buffer exhaustion: the backlog stays ready, so level-triggered
        // wakeups would hot-spin the loop. Park the listener and retry once
        // the backoff elapses (pending clients just wait in the backlog).
        poller_->del(listen_fd_);
        accept_paused_ = true;
        accept_resume_at_ =
            std::chrono::steady_clock::now() + std::chrono::milliseconds(kAcceptRetryMs);
      }
      return;  // EAGAIN or a transient accept error: try next wake
    }
    if (connections_.size() >= options_.max_connections) {
      if (reject_max_conns_) reject_max_conns_->add();
      ::close(fd);
      continue;
    }
    if (!set_nonblocking(fd)) {
      ::close(fd);
      continue;
    }
    set_nodelay(fd);
    const std::uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(id, fd, options_.max_frame_bytes);
    conn->last_activity = std::chrono::steady_clock::now();
    poller_->add(fd, true, false);
    fd_to_conn_[fd] = id;
    connections_[id] = std::move(conn);
    if (accepted_) accepted_->add();
    {
      std::lock_guard<std::mutex> lock(conn_count_mutex_);
      conn_count_ = connections_.size();
    }
    if (connections_gauge_) connections_gauge_->set(static_cast<double>(connections_.size()));
  }
}

void Server::close_connection(std::uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  const int fd = it->second->fd;
  poller_->del(fd);
  ::close(fd);
  fd_to_conn_.erase(fd);
  connections_.erase(it);
  {
    std::lock_guard<std::mutex> lock(conn_count_mutex_);
    conn_count_ = connections_.size();
  }
  if (connections_gauge_) connections_gauge_->set(static_cast<double>(connections_.size()));
}

bool Server::handle_readable(Connection& conn) {
  for (;;) {
    const ssize_t n = ::read(conn.fd, read_scratch_.data(), read_scratch_.size());
    if (n > 0) {
      if (bytes_in_) bytes_in_->add(n);
      conn.last_activity = std::chrono::steady_clock::now();
      conn.decoder.feed({read_scratch_.data(), static_cast<std::size_t>(n)});
      if (static_cast<std::size_t>(n) < read_scratch_.size()) break;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  Frame frame;
  for (;;) {
    const FrameDecoder::Next got = conn.decoder.next(frame);
    if (got == FrameDecoder::Next::kFrame) {
      if (frames_in_) frames_in_->add();
      dispatch_frame(conn, frame);
      continue;
    }
    if (got == FrameDecoder::Next::kError) {
      // The stream cannot be resynchronized past a bad header; drop it.
      if (frame_errors_) frame_errors_->add();
      return false;
    }
    break;  // kNeedMore
  }

  // Read-timeout bookkeeping: a partial frame sitting in the decoder is a
  // started frame that must complete within read_timeout_ms.
  if (conn.decoder.buffered() > 0) {
    if (!conn.mid_frame) {
      conn.mid_frame = true;
      conn.frame_start = std::chrono::steady_clock::now();
    }
  } else {
    conn.mid_frame = false;
  }

  if (!flush_writes(conn)) return false;
  update_read_interest(conn);
  return true;
}

bool Server::flush_writes(Connection& conn) {
  while (conn.pending_out() > 0) {
    const ssize_t n = ::send(conn.fd, conn.out.data() + conn.out_off, conn.pending_out(),
                             MSG_NOSIGNAL);
    if (n > 0) {
      if (bytes_out_) bytes_out_->add(n);
      conn.out_off += static_cast<std::size_t>(n);
      // Send progress resets the write-stall clock (and the idle clock, as
      // reads already do) so only a peer accepting NOTHING gets stalled out.
      conn.last_activity = std::chrono::steady_clock::now();
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  if (conn.pending_out() == 0) {
    conn.out.clear();  // capacity kept: the steady-state no-alloc contract
    conn.out_off = 0;
    if (conn.want_write) {
      conn.want_write = false;
      poller_->mod(conn.fd, conn.want_read, false);
    }
  } else if (!conn.want_write) {
    conn.want_write = true;
    poller_->mod(conn.fd, conn.want_read, true);
  }
  update_read_interest(conn);
  return true;
}

void Server::update_read_interest(Connection& conn) {
  // Stop reading from peers that won't drain their responses (bounded
  // buffering), and from everyone once the server is draining.
  const bool want = !conn.draining && conn.pending_out() <= options_.max_frame_bytes;
  if (want != conn.want_read) {
    conn.want_read = want;
    poller_->mod(conn.fd, conn.want_read, conn.want_write);
  }
}

// --- request dispatch -------------------------------------------------------

void Server::respond_status(Connection& conn, FrameType type, std::uint32_t id, Status status,
                            std::string_view detail) {
  const std::size_t frame_begin = begin_response_frame(conn.out, type, id);
  put_u8(conn.out, static_cast<std::uint8_t>(status));
  put_str16(conn.out, detail.substr(0, 512));
  end_frame(conn.out, frame_begin);
  if (frames_out_) frames_out_->add();
}

void Server::append_stats_response(std::vector<std::uint8_t>& out, std::uint32_t id) {
  const std::size_t frame_begin = begin_response_frame(out, FrameType::kStats, id);
  put_u8(out, static_cast<std::uint8_t>(Status::kOk));
  const snapshot::Metadata meta = engine_.metadata();
  put_u64(out, engine_.generation());
  put_u64(out, meta.rule_count);
  put_u64(out, static_cast<std::uint64_t>(
                   static_cast<std::int64_t>(meta.source_date.days_since_epoch())));
  put_u32(out, static_cast<std::uint32_t>(connections_.size()));
  put_u32(out, static_cast<std::uint32_t>(engine_.queue_depth()));
  // Analytics block: the SERVING generation's census (zeroed when
  // --analytics is off); census queries are server-lifetime.
  const auto census = engine_.census();
  put_u8(out, census ? 1 : 0);
  put_u64(out, census ? census->records() : 0);
  put_u64(out, census ? census->dropped() : 0);
  put_u64(out, census_queries_total_.load(std::memory_order_relaxed));
  put_u64(out, census ? census->state_bytes() : 0);
  end_frame(out, frame_begin);
}

// --- the UDP fast path ------------------------------------------------------
//
// One datagram = one PSLN frame, same header and payload layouts as TCP.
// Requests are answered INLINE on the loop thread — no worker hop, no
// completion queue — which is the whole point: a client that cannot amortize
// a TCP batch (one lookup per event, e.g. a resolver plugin) gets an answer
// in one socket round trip with no connection state on either side.
// Datagram loss/reordering is the client's problem by UDP contract (the
// request id echoes back for matching); oversized responses are replaced by
// a kUnsupported("udp.oversize") status so the peer learns the bound rather
// than silently missing a truncated reply.

namespace {

/// Decode the one frame a request datagram must contain: full header, exact
/// payload length, nothing else. Datagrams that fail this are dropped —
/// answering would require trusting the very bytes that failed validation.
bool parse_udp_datagram(std::span<const std::uint8_t> bytes, FrameHeader& header,
                        std::span<const std::uint8_t>& payload) {
  if (bytes.size() < kHeaderBytes) return false;
  std::uint32_t magic = 0;
  std::memcpy(&magic, bytes.data(), 4);
  if (magic != kMagic) return false;
  header.version = bytes[4];
  header.type = bytes[5];
  std::memcpy(&header.flags, bytes.data() + 6, 2);
  std::memcpy(&header.id, bytes.data() + 8, 4);
  std::memcpy(&header.payload_len, bytes.data() + 12, 4);
  if (header.version != kProtocolVersion || header.flags != 0) return false;
  if (bytes.size() != kHeaderBytes + header.payload_len) return false;
  payload = bytes.subspan(kHeaderBytes);
  return true;
}

}  // namespace

void Server::handle_udp() {
  for (;;) {
    sockaddr_in peer{};
    socklen_t peer_len = sizeof peer;
    const ssize_t n = ::recvfrom(udp_fd_, udp_in_.data(), udp_in_.size(), MSG_TRUNC,
                                 reinterpret_cast<sockaddr*>(&peer), &peer_len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN (drained) or transient error: next wake retries
    }
    if (udp_datagrams_) udp_datagrams_->add();
    if (bytes_in_) bytes_in_->add(n);
    if (static_cast<std::size_t>(n) > udp_in_.size()) {
      // MSG_TRUNC reported the true size: the datagram exceeded the frame
      // bound and was truncated — undecodable by construction.
      if (udp_dropped_) udp_dropped_->add();
      continue;
    }
    FrameHeader header;
    std::span<const std::uint8_t> payload;
    if (!parse_udp_datagram({udp_in_.data(), static_cast<std::size_t>(n)}, header, payload)) {
      if (udp_dropped_) udp_dropped_->add();
      continue;
    }
    if (frames_in_) frames_in_->add();
    dispatch_udp_frame(header, payload);
    if (udp_out_.empty()) continue;
    const ssize_t sent = ::sendto(udp_fd_, udp_out_.data(), udp_out_.size(), 0,
                                  reinterpret_cast<sockaddr*>(&peer), peer_len);
    if (sent > 0) {
      if (bytes_out_) bytes_out_->add(sent);
      if (frames_out_) frames_out_->add();
    } else if (udp_dropped_) {
      udp_dropped_->add();  // full socket buffer: lossy by UDP contract
    }
  }
}

void Server::dispatch_udp_frame(const FrameHeader& header, std::span<const std::uint8_t> payload) {
  const auto t0 = std::chrono::steady_clock::now();
  const FrameType type = static_cast<FrameType>(header.type);
  const std::uint32_t id = header.id;
  udp_out_.clear();

  const auto respond_error = [&](Status status, std::string_view detail) {
    udp_out_.clear();
    const std::size_t frame_begin = begin_response_frame(udp_out_, type, id);
    put_u8(udp_out_, static_cast<std::uint8_t>(status));
    put_str16(udp_out_, detail);
    end_frame(udp_out_, frame_begin);
  };

  switch (type) {
    case FrameType::kPing: {
      const std::size_t frame_begin = begin_response_frame(udp_out_, type, id);
      put_u8(udp_out_, static_cast<std::uint8_t>(Status::kOk));
      put_raw(udp_out_, payload);
      end_frame(udp_out_, frame_begin);
      break;
    }

    case FrameType::kStats:
      append_stats_response(udp_out_, id);
      break;

    case FrameType::kMatchBatch: {
      if (!parse_match_request(payload, host_scratch_)) {
        if (reject_malformed_) reject_malformed_->add();
        respond_error(Status::kMalformed, "bad match_batch payload");
        break;
      }
      const std::size_t frame_begin = begin_response_frame(udp_out_, type, id);
      put_u8(udp_out_, static_cast<std::uint8_t>(Status::kOk));
      put_u32(udp_out_, static_cast<std::uint32_t>(host_scratch_.size()));
      for (const std::string_view host : host_scratch_) {
        const Match match = engine_.match(host);
        put_str16(udp_out_, match.public_suffix);
        put_str16(udp_out_, match.registrable_domain);
        const std::uint8_t flags = (match.matched_explicit_rule ? 1u : 0u) |
                                   (match.section == Section::kPrivate ? 2u : 0u);
        put_u8(udp_out_, flags);
      }
      end_frame(udp_out_, frame_begin);
      engine_.count_queries(host_scratch_.size());
      break;
    }

    case FrameType::kSameSiteBatch: {
      if (!parse_same_site_request(payload, pair_scratch_)) {
        if (reject_malformed_) reject_malformed_->add();
        respond_error(Status::kMalformed, "bad same_site_batch payload");
        break;
      }
      const std::size_t frame_begin = begin_response_frame(udp_out_, type, id);
      put_u8(udp_out_, static_cast<std::uint8_t>(Status::kOk));
      put_u32(udp_out_, static_cast<std::uint32_t>(pair_scratch_.size()));
      for (const auto& [a, b] : pair_scratch_) {
        put_u8(udp_out_, engine_.same_site(a, b) ? 1 : 0);
      }
      end_frame(udp_out_, frame_begin);
      engine_.count_queries(pair_scratch_.size());
      break;
    }

    // Stateful (subscribe), mutating (reload, ingest), or unboundedly large
    // (census, divergence, match_at) request types stay TCP-only: they need
    // a connection's ordering, bounded-buffer, and drain guarantees.
    default:
      respond_error(Status::kUnsupported, "udp.unsupported");
      break;
  }

  if (udp_out_.size() > kUdpMaxDatagramBytes) {
    respond_error(Status::kUnsupported, "udp.oversize");
  }
  observe_latency(type, t0);
}

void Server::observe_latency(FrameType request_type,
                             std::chrono::steady_clock::time_point t0) {
  obs::Histogram* sink = nullptr;
  switch (request_type) {
    case FrameType::kPing: sink = latency_ping_; break;
    case FrameType::kSameSiteBatch: sink = latency_same_site_; break;
    case FrameType::kMatchBatch: sink = latency_match_; break;
    case FrameType::kReload: sink = latency_reload_; break;
    case FrameType::kStats: sink = latency_stats_; break;
    case FrameType::kMatchAt: sink = latency_match_at_; break;
    case FrameType::kDivergence: sink = latency_divergence_; break;
    case FrameType::kIngestBatch: sink = latency_ingest_; break;
    case FrameType::kCensusQuery: sink = latency_census_; break;
    case FrameType::kSubscribe:
    case FrameType::kGenerationChanged: break;  // loop-thread only, not timed
  }
  if (!sink) return;
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  sink->observe(std::chrono::duration<double, std::milli>(elapsed).count());
}

void Server::dispatch_frame(Connection& conn, const Frame& frame) {
  const auto t0 = std::chrono::steady_clock::now();
  const FrameType type = static_cast<FrameType>(frame.header.type);
  const std::uint32_t id = frame.header.id;

  if (conn.draining) {
    respond_status(conn, type, id, Status::kShuttingDown, "server is draining");
    return;
  }

  switch (type) {
    case FrameType::kPing: {
      const std::size_t frame_begin = begin_response_frame(conn.out, type, id);
      put_u8(conn.out, static_cast<std::uint8_t>(Status::kOk));
      put_raw(conn.out, frame.payload);
      end_frame(conn.out, frame_begin);
      if (frames_out_) frames_out_->add();
      observe_latency(type, t0);
      return;
    }

    case FrameType::kStats: {
      append_stats_response(conn.out, id);
      if (frames_out_) frames_out_->add();
      observe_latency(type, t0);
      return;
    }

    case FrameType::kSubscribe: {
      if (!frame.payload.empty()) {
        if (reject_malformed_) reject_malformed_->add();
        respond_status(conn, type, id, Status::kMalformed, "subscribe payload must be empty");
        return;
      }
      // Record what this peer now knows so the first push carries a
      // meaningful rule_delta and a generation it already saw is skipped.
      conn.subscribed = true;
      conn.pushed_generation = engine_.generation();
      conn.pushed_rule_count = engine_.metadata().rule_count;
      const std::size_t frame_begin = begin_response_frame(conn.out, type, id);
      put_u8(conn.out, static_cast<std::uint8_t>(Status::kOk));
      put_u64(conn.out, conn.pushed_generation);
      end_frame(conn.out, frame_begin);
      if (frames_out_) frames_out_->add();
      return;
    }

    case FrameType::kReload: {
      // Validation is keep-last-good inside the engine; running it on the
      // loop thread briefly pauses I/O but never the engine workers.
      auto swapped = engine_.reload_snapshot(frame.payload);
      if (swapped.ok()) {
        const std::size_t frame_begin = begin_response_frame(conn.out, type, id);
        put_u8(conn.out, static_cast<std::uint8_t>(Status::kOk));
        put_u64(conn.out, *swapped);
        end_frame(conn.out, frame_begin);
        if (frames_out_) frames_out_->add();
      } else {
        respond_status(conn, type, id, Status::kReloadRejected, swapped.error().code);
      }
      observe_latency(type, t0);
      return;
    }

    // Both batch types follow the same zero-copy shape: validate the payload
    // on the loop thread (malformed requests answer immediately, and the
    // worker-side re-parse below can then never fail), memcpy the payload
    // ONCE into a pooled buffer, and hand that to the job. The worker
    // re-parses into thread_local view scratch — every hostname the matcher
    // sees is a view into the job-owned request copy, every response field
    // is encoded straight from arena-backed MatchView spans into the pooled
    // response frame. No per-host std::string, no per-pair std::pair<string,
    // string>, anywhere on the path.
    case FrameType::kSameSiteBatch: {
      if (!parse_same_site_request(frame.payload, pair_scratch_)) {
        if (reject_malformed_) reject_malformed_->add();
        respond_status(conn, type, id, Status::kMalformed, "bad same_site_batch payload");
        return;
      }
      std::vector<std::uint8_t> request = acquire_buffer();
      request.assign(frame.payload.begin(), frame.payload.end());
      auto* engine = &engine_;
      auto* frames_out = frames_out_;
      const std::uint64_t conn_id = conn.id;
      {
        // Reserve before submit: the job may run (and report back) before
        // submit_job even returns.
        std::lock_guard<std::mutex> lock(completion_mutex_);
        ++outstanding_jobs_;
      }
      const auto enq = engine_.submit_job(
          [this, engine, frames_out, conn_id, id, type, t0,
           request = std::move(request)](const serve::Engine::Pinned& pinned) mutable {
            thread_local std::vector<std::pair<std::string_view, std::string_view>> pairs;
            parse_same_site_request(request, pairs);  // validated on the loop thread
            std::vector<std::uint8_t> buf = acquire_buffer();
            const std::size_t frame_begin = begin_response_frame(buf, type, id);
            put_u8(buf, static_cast<std::uint8_t>(Status::kOk));
            put_u32(buf, static_cast<std::uint32_t>(pairs.size()));
            for (const auto& [a, b] : pairs) {
              put_u8(buf, pinned.same_site(a, b) ? 1 : 0);  // cached path
            }
            end_frame(buf, frame_begin);
            engine->count_queries(pairs.size());
            if (frames_out) frames_out->add();
            release_buffer(std::move(request));
            complete(Completion{conn_id, std::move(buf), type, t0});
          });
      finish_submit(conn, enq, type, id);
      return;
    }

    case FrameType::kMatchBatch: {
      if (!parse_match_request(frame.payload, host_scratch_)) {
        if (reject_malformed_) reject_malformed_->add();
        respond_status(conn, type, id, Status::kMalformed, "bad match_batch payload");
        return;
      }
      std::vector<std::uint8_t> request = acquire_buffer();
      request.assign(frame.payload.begin(), frame.payload.end());
      auto* engine = &engine_;
      auto* frames_out = frames_out_;
      const std::uint64_t conn_id = conn.id;
      {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        ++outstanding_jobs_;
      }
      const auto enq = engine_.submit_job(
          [this, engine, frames_out, conn_id, id, type, t0,
           request = std::move(request)](const serve::Engine::Pinned& pinned) mutable {
            thread_local std::vector<std::string_view> hosts;
            thread_local std::vector<MatchView> views;
            parse_match_request(request, hosts);  // validated on the loop thread
            views.resize(hosts.size());
            pinned.match_batch(hosts, views);  // interleaved + prefetched walk
            std::vector<std::uint8_t> buf = acquire_buffer();
            const std::size_t frame_begin = begin_response_frame(buf, type, id);
            put_u8(buf, static_cast<std::uint8_t>(Status::kOk));
            put_u32(buf, static_cast<std::uint32_t>(hosts.size()));
            for (const MatchView& view : views) {
              put_str16(buf, view.public_suffix);
              put_str16(buf, view.registrable_domain);
              const std::uint8_t flags =
                  (view.matched_explicit_rule ? 1u : 0u) |
                  (view.section == Section::kPrivate ? 2u : 0u);
              put_u8(buf, flags);
            }
            end_frame(buf, frame_begin);
            engine->count_queries(hosts.size());
            if (frames_out) frames_out->add();
            release_buffer(std::move(request));
            complete(Completion{conn_id, std::move(buf), type, t0});
          });
      finish_submit(conn, enq, type, id);
      return;
    }

    // The time-travel requests (psl::store). Same pooled-buffer shape as the
    // batches; the difference is that version resolution and materialization
    // run ON THE WORKER (a cold version may decode delta chains — never on
    // the loop thread), so store-level errors are encoded inside the job and
    // travel back through complete() like any other response.
    case FrameType::kMatchAt: {
      std::int64_t date_days = 0;
      if (!parse_match_at_request(frame.payload, date_days, host_scratch_)) {
        if (reject_malformed_) reject_malformed_->add();
        respond_status(conn, type, id, Status::kMalformed, "bad match_at payload");
        return;
      }
      std::vector<std::uint8_t> request = acquire_buffer();
      request.assign(frame.payload.begin(), frame.payload.end());
      auto* engine = &engine_;
      auto* frames_out = frames_out_;
      const std::uint64_t conn_id = conn.id;
      {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        ++outstanding_jobs_;
      }
      const auto enq = engine_.submit_job(
          [this, engine, frames_out, conn_id, id, type, t0,
           request = std::move(request)](const serve::Engine::Pinned&) mutable {
            thread_local std::vector<std::string_view> hosts;
            thread_local std::vector<MatchView> views;
            std::int64_t days = 0;
            parse_match_at_request(request, days, hosts);  // validated on the loop thread
            std::vector<std::uint8_t> buf = acquire_buffer();
            const auto respond_error = [&](Status status, std::string_view detail) {
              const std::size_t frame_begin = begin_response_frame(buf, type, id);
              put_u8(buf, static_cast<std::uint8_t>(status));
              put_str16(buf, detail.substr(0, 512));
              end_frame(buf, frame_begin);
            };
            if (days < INT32_MIN || days > INT32_MAX) {
              respond_error(Status::kMalformed, "store.no-version");
            } else {
              const auto snap = engine->version_at(util::Date{static_cast<std::int32_t>(days)});
              if (!snap.ok()) {
                respond_error(snap.error().code == "store.none" ? Status::kUnsupported
                                                                : Status::kMalformed,
                              snap.error().code);
              } else {
                views.resize(hosts.size());
                snap->matcher.match_batch(hosts, views);
                const std::size_t frame_begin = begin_response_frame(buf, type, id);
                put_u8(buf, static_cast<std::uint8_t>(Status::kOk));
                put_u64(buf, static_cast<std::uint64_t>(static_cast<std::int64_t>(
                                 snap->meta.source_date.days_since_epoch())));
                put_u64(buf, snap->meta.rule_count);
                put_u32(buf, static_cast<std::uint32_t>(hosts.size()));
                for (const MatchView& view : views) {
                  put_str16(buf, view.public_suffix);
                  put_str16(buf, view.registrable_domain);
                  const std::uint8_t flags =
                      (view.matched_explicit_rule ? 1u : 0u) |
                      (view.section == Section::kPrivate ? 2u : 0u);
                  put_u8(buf, flags);
                }
                end_frame(buf, frame_begin);
                engine->count_queries(hosts.size());
              }
            }
            if (frames_out) frames_out->add();
            release_buffer(std::move(request));
            complete(Completion{conn_id, std::move(buf), type, t0});
          });
      finish_submit(conn, enq, type, id);
      return;
    }

    case FrameType::kDivergence: {
      std::string_view host;
      if (!parse_divergence_request(frame.payload, host)) {
        if (reject_malformed_) reject_malformed_->add();
        respond_status(conn, type, id, Status::kMalformed, "bad divergence payload");
        return;
      }
      std::vector<std::uint8_t> request = acquire_buffer();
      request.assign(frame.payload.begin(), frame.payload.end());
      auto* engine = &engine_;
      auto* frames_out = frames_out_;
      const std::uint64_t conn_id = conn.id;
      {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        ++outstanding_jobs_;
      }
      const auto enq = engine_.submit_job(
          [this, engine, frames_out, conn_id, id, type, t0,
           request = std::move(request)](const serve::Engine::Pinned&) mutable {
            std::string_view h;
            parse_divergence_request(request, h);  // validated on the loop thread
            std::vector<std::uint8_t> buf = acquire_buffer();
            const auto ranges = engine->divergence(h);
            if (!ranges.ok()) {
              const std::size_t frame_begin = begin_response_frame(buf, type, id);
              put_u8(buf, static_cast<std::uint8_t>(ranges.error().code == "store.none"
                                                        ? Status::kUnsupported
                                                        : Status::kMalformed));
              put_str16(buf, std::string_view(ranges.error().code).substr(0, 512));
              end_frame(buf, frame_begin);
            } else {
              const std::size_t frame_begin = begin_response_frame(buf, type, id);
              put_u8(buf, static_cast<std::uint8_t>(Status::kOk));
              put_u32(buf, static_cast<std::uint32_t>(ranges->size()));
              for (const store::DivergenceRange& r : *ranges) {
                put_u64(buf, static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(r.first_date.days_since_epoch())));
                put_u64(buf, static_cast<std::uint64_t>(
                                 static_cast<std::int64_t>(r.last_date.days_since_epoch())));
                put_str16(buf, r.registrable_domain);
              }
              end_frame(buf, frame_begin);
              engine->count_queries(1);
            }
            if (frames_out) frames_out->add();
            release_buffer(std::move(request));
            complete(Completion{conn_id, std::move(buf), type, t0});
          });
      finish_submit(conn, enq, type, id);
      return;
    }

    case FrameType::kIngestBatch: {
      if (!parse_ingest_request(frame.payload, ingest_scratch_)) {
        if (reject_malformed_) reject_malformed_->add();
        respond_status(conn, type, id, Status::kMalformed, "bad ingest_batch payload");
        return;
      }
      std::vector<std::uint8_t> request = acquire_buffer();
      request.assign(frame.payload.begin(), frame.payload.end());
      auto* frames_out = frames_out_;
      const std::uint64_t conn_id = conn.id;
      {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        ++outstanding_jobs_;
      }
      const auto enq = engine_.submit_job(
          [this, frames_out, conn_id, id, type, t0,
           request = std::move(request)](const serve::Engine::Pinned& pinned) mutable {
            thread_local std::vector<WireIngestRecord> records;
            thread_local std::vector<analytics::CensusRecord> batch;
            parse_ingest_request(request, records);  // validated on the loop thread
            std::vector<std::uint8_t> buf = acquire_buffer();
            const std::size_t frame_begin = begin_response_frame(buf, type, id);
            if (!pinned.census) {
              put_u8(buf, static_cast<std::uint8_t>(Status::kUnsupported));
              put_str16(buf, "analytics.none");
            } else {
              batch.clear();
              batch.reserve(records.size());
              for (const WireIngestRecord& r : records) {
                batch.push_back({r.page_host, r.resource_host, r.timestamp_ms});
              }
              // The whole batch lands in the pinned generation's census —
              // that is the ack's generation, and the atomicity contract.
              const analytics::IngestResult result =
                  pinned.census->ingest(pinned.worker, pinned.matcher, batch);
              if (analytics_ingest_records_) {
                analytics_ingest_records_->add(static_cast<std::int64_t>(result.records));
              }
              if (analytics_ingest_dropped_ && result.dropped > 0) {
                analytics_ingest_dropped_->add(static_cast<std::int64_t>(result.dropped));
              }
              if (analytics_hosts_gauge_) {
                analytics_hosts_gauge_->set(static_cast<double>(pinned.census->unique_hosts()));
                analytics_sites_gauge_->set(static_cast<double>(pinned.census->sites_formed()));
                analytics_pairs_gauge_->set(static_cast<double>(pinned.census->reach_pairs()));
              }
              put_u8(buf, static_cast<std::uint8_t>(Status::kOk));
              put_u64(buf, pinned.generation);
              put_u32(buf, result.records);
            }
            end_frame(buf, frame_begin);
            if (frames_out) frames_out->add();
            release_buffer(std::move(request));
            complete(Completion{conn_id, std::move(buf), type, t0});
          });
      finish_submit(conn, enq, type, id);
      return;
    }

    case FrameType::kCensusQuery: {
      std::uint32_t top_k = 0;
      if (!parse_census_request(frame.payload, top_k)) {
        if (reject_malformed_) reject_malformed_->add();
        respond_status(conn, type, id, Status::kMalformed, "bad census_query payload");
        return;
      }
      auto* frames_out = frames_out_;
      const std::uint64_t conn_id = conn.id;
      {
        std::lock_guard<std::mutex> lock(completion_mutex_);
        ++outstanding_jobs_;
      }
      const auto enq = engine_.submit_job(
          [this, frames_out, conn_id, id, type, t0, top_k](const serve::Engine::Pinned& pinned) {
            std::vector<std::uint8_t> buf = acquire_buffer();
            const std::size_t frame_begin = begin_response_frame(buf, type, id);
            if (!pinned.census) {
              put_u8(buf, static_cast<std::uint8_t>(Status::kUnsupported));
              put_str16(buf, "analytics.none");
            } else {
              analytics::CensusSnapshot snap = pinned.census->snapshot(top_k);
              WireCensus wire;
              wire.generation = pinned.generation;
              wire.records = snap.records;
              wire.first_party = snap.first_party;
              wire.third_party = snap.third_party;
              wire.unique_hosts = snap.unique_hosts;
              wire.sites_formed = snap.sites_formed;
              wire.misbound_hosts = snap.misbound_hosts;
              wire.dropped = snap.dropped;
              wire.first_timestamp_ms = snap.first_timestamp_ms;
              wire.last_timestamp_ms = snap.last_timestamp_ms;
              wire.state_bytes = snap.state_bytes;
              wire.etlds.reserve(snap.etlds.size());
              for (auto& row : snap.etlds) {
                wire.etlds.push_back({std::move(row.etld), row.misbound});
              }
              wire.trackers.reserve(snap.trackers.size());
              for (auto& row : snap.trackers) {
                wire.trackers.push_back({std::move(row.domain), row.requests,
                                         row.requests_err, row.reach, row.reach_err});
              }
              put_u8(buf, static_cast<std::uint8_t>(Status::kOk));
              put_census(buf, wire);
              census_queries_total_.fetch_add(1, std::memory_order_relaxed);
              if (analytics_census_queries_) analytics_census_queries_->add();
            }
            end_frame(buf, frame_begin);
            if (frames_out) frames_out->add();
            complete(Completion{conn_id, std::move(buf), type, t0});
          });
      finish_submit(conn, enq, type, id);
      return;
    }

    case FrameType::kGenerationChanged:
      break;  // server-push only; a client sending it gets kUnsupported
  }

  respond_status(conn, type, id, Status::kUnsupported,
                 "unknown frame type " + std::to_string(frame.header.type));
}

void Server::finish_submit(Connection& conn, serve::Engine::Enqueue enq, FrameType type,
                           std::uint32_t id) {
  switch (enq) {
    case serve::Engine::Enqueue::kOk:
      ++conn.inflight;
      return;
    case serve::Engine::Enqueue::kBackpressure:
      if (reject_backpressure_) reject_backpressure_->add();
      respond_status(conn, type, id, Status::kBackpressure, "engine queue is full");
      break;
    case serve::Engine::Enqueue::kStopped:
      respond_status(conn, type, id, Status::kShuttingDown, "engine is stopped");
      break;
  }
  // The job was never enqueued; give back its reservation.
  std::lock_guard<std::mutex> lock(completion_mutex_);
  --outstanding_jobs_;
  jobs_cv_.notify_all();
}

// --- completions (worker -> loop handoff) -----------------------------------

void Server::complete(Completion completion) {
  std::lock_guard<std::mutex> lock(completion_mutex_);
  completions_.push_back(std::move(completion));
  --outstanding_jobs_;
  jobs_cv_.notify_all();
  if (wake_write_fd_ >= 0) {
    const std::uint8_t byte = 1;
    (void)!::write(wake_write_fd_, &byte, 1);  // EAGAIN = wakeup already pending
  }
}

void Server::broadcast_generation() {
  WireGenerationChanged push;
  {
    std::lock_guard<std::mutex> lock(push_state_->mutex);
    if (!push_state_->pending) return;
    push_state_->pending = false;
    push.generation = push_state_->generation;
    push.rule_count = push_state_->rule_count;
    push.source_date_days = push_state_->source_date_days;
  }
  std::vector<std::uint64_t> dead;
  for (auto& [id, conn] : connections_) {
    if (!conn->subscribed || conn->draining) continue;
    // The subscribe reply (or a previous push) already told this peer about
    // this generation — e.g. it subscribed after the listener fired but
    // before this broadcast ran.
    if (conn->pushed_generation == push.generation) continue;
    push.rule_delta =
        static_cast<std::int64_t>(push.rule_count) -
        static_cast<std::int64_t>(conn->pushed_rule_count);
    // A push is not a response: no response bit, request id 0.
    const std::size_t frame_begin = begin_frame(conn->out, FrameType::kGenerationChanged, 0);
    put_generation_changed(conn->out, push);
    end_frame(conn->out, frame_begin);
    conn->pushed_generation = push.generation;
    conn->pushed_rule_count = push.rule_count;
    if (frames_out_) frames_out_->add();
    if (push_sent_) push_sent_->add();
    if (!flush_writes(*conn)) dead.push_back(id);
  }
  for (const std::uint64_t id : dead) close_connection(id);
}

void Server::drain_completions() {
  std::vector<Completion> ready;
  {
    std::lock_guard<std::mutex> lock(completion_mutex_);
    ready.swap(completions_);
  }
  for (Completion& completion : ready) {
    auto it = connections_.find(completion.conn_id);
    if (it != connections_.end()) {
      Connection& conn = *it->second;
      if (conn.inflight > 0) --conn.inflight;
      conn.out.insert(conn.out.end(), completion.frame.begin(), completion.frame.end());
      conn.last_activity = std::chrono::steady_clock::now();
      observe_latency(completion.request_type, completion.t0);
      if (!flush_writes(conn)) close_connection(completion.conn_id);
    }
    release_buffer(std::move(completion.frame));
  }
}

}  // namespace psl::net
