#include "psl/net/frame.hpp"

#include <cstring>

namespace psl::net {

namespace {

std::uint16_t load_u16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t load_u32(const std::uint8_t* p) noexcept {
  return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) | (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t load_u64(const std::uint8_t* p) noexcept {
  return static_cast<std::uint64_t>(load_u32(p)) |
         (static_cast<std::uint64_t>(load_u32(p + 4)) << 32);
}

}  // namespace

// --- FrameDecoder -----------------------------------------------------------

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes) : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::feed(std::span<const std::uint8_t> bytes) {
  if (failed_ || bytes.empty()) return;
  // Compact consumed bytes away first so frame spans returned by next()
  // stay valid between feeds and the buffer's high-water mark tracks the
  // largest in-flight frame, not the whole connection history.
  if (read_off_ > 0) {
    const std::size_t live = buffer_.size() - read_off_;
    if (live > 0) std::memmove(buffer_.data(), buffer_.data() + read_off_, live);
    buffer_.resize(live);
    read_off_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameDecoder::Next FrameDecoder::next(Frame& out) {
  if (failed_) return Next::kError;
  const std::size_t avail = buffer_.size() - read_off_;
  if (avail < kHeaderBytes) return Next::kNeedMore;

  const std::uint8_t* h = buffer_.data() + read_off_;
  if (load_u32(h) != kMagic) {
    failed_ = true;
    error_ = util::make_error("net.frame.magic", "frame does not start with PSLN");
    return Next::kError;
  }
  FrameHeader header;
  header.version = h[4];
  header.type = h[5];
  header.flags = load_u16(h + 6);
  header.id = load_u32(h + 8);
  header.payload_len = load_u32(h + 12);
  if (header.version != kProtocolVersion) {
    failed_ = true;
    error_ = util::make_error("net.frame.version",
                              "unsupported protocol version " + std::to_string(header.version));
    return Next::kError;
  }
  if (header.flags != 0) {
    failed_ = true;
    error_ = util::make_error("net.frame.flags", "reserved flag bits set");
    return Next::kError;
  }
  if (static_cast<std::uint64_t>(header.payload_len) > max_frame_bytes_) {
    failed_ = true;
    error_ = util::make_error("net.frame.oversize",
                              "declared payload of " + std::to_string(header.payload_len) +
                                  " bytes exceeds the " + std::to_string(max_frame_bytes_) +
                                  "-byte frame cap");
    return Next::kError;
  }
  if (avail < kHeaderBytes + header.payload_len) return Next::kNeedMore;

  out.header = header;
  out.payload = std::span<const std::uint8_t>(h + kHeaderBytes, header.payload_len);
  read_off_ += kHeaderBytes + header.payload_len;
  return Next::kFrame;
}

// --- encode helpers ---------------------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16(out, static_cast<std::uint16_t>(v));
  put_u16(out, static_cast<std::uint16_t>(v >> 16));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out, static_cast<std::uint32_t>(v >> 32));
}

void put_raw(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> bytes) {
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void put_str16(std::vector<std::uint8_t>& out, std::string_view s) {
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  const auto* p = reinterpret_cast<const std::uint8_t*>(s.data());
  out.insert(out.end(), p, p + s.size());
}

std::size_t begin_frame(std::vector<std::uint8_t>& out, std::uint8_t type, std::uint32_t id) {
  const std::size_t frame_begin = out.size();
  put_u32(out, kMagic);
  put_u8(out, kProtocolVersion);
  put_u8(out, type);
  put_u16(out, 0);  // flags
  put_u32(out, id);
  put_u32(out, 0);  // payload_len, patched by end_frame
  return frame_begin;
}

void end_frame(std::vector<std::uint8_t>& out, std::size_t frame_begin) {
  const std::size_t payload_len = out.size() - frame_begin - kHeaderBytes;
  std::uint8_t* len = out.data() + frame_begin + 12;
  len[0] = static_cast<std::uint8_t>(payload_len);
  len[1] = static_cast<std::uint8_t>(payload_len >> 8);
  len[2] = static_cast<std::uint8_t>(payload_len >> 16);
  len[3] = static_cast<std::uint8_t>(payload_len >> 24);
}

void encode_frame(std::vector<std::uint8_t>& out, std::uint8_t type, std::uint32_t id,
                  std::span<const std::uint8_t> payload) {
  const std::size_t frame_begin = begin_frame(out, type, id);
  put_raw(out, payload);
  end_frame(out, frame_begin);
}

// --- WireReader -------------------------------------------------------------

bool WireReader::u8(std::uint8_t& v) {
  if (remaining() < 1) return false;
  v = data_[off_++];
  return true;
}

bool WireReader::u16(std::uint16_t& v) {
  if (remaining() < 2) return false;
  v = load_u16(data_.data() + off_);
  off_ += 2;
  return true;
}

bool WireReader::u32(std::uint32_t& v) {
  if (remaining() < 4) return false;
  v = load_u32(data_.data() + off_);
  off_ += 4;
  return true;
}

bool WireReader::u64(std::uint64_t& v) {
  if (remaining() < 8) return false;
  v = load_u64(data_.data() + off_);
  off_ += 8;
  return true;
}

bool WireReader::str16(std::string_view& v) {
  std::uint16_t len = 0;
  if (remaining() < 2) return false;
  len = load_u16(data_.data() + off_);
  if (remaining() < 2u + len) return false;
  off_ += 2;
  v = std::string_view(reinterpret_cast<const char*>(data_.data() + off_), len);
  off_ += len;
  return true;
}

bool WireReader::raw(std::size_t n, std::span<const std::uint8_t>& v) {
  if (remaining() < n) return false;
  v = data_.subspan(off_, n);
  off_ += n;
  return true;
}

// --- request parsers --------------------------------------------------------

bool parse_same_site_request(std::span<const std::uint8_t> payload,
                             std::vector<std::pair<std::string_view, std::string_view>>& out) {
  out.clear();
  WireReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.u32(count)) return false;
  // Each pair needs at least two length prefixes: a count the payload could
  // not possibly hold is rejected before any reserve.
  if (static_cast<std::uint64_t>(count) * 4 > reader.remaining()) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string_view a, b;
    if (!reader.str16(a) || !reader.str16(b)) return false;
    out.emplace_back(a, b);
  }
  return reader.done();
}

bool parse_match_request(std::span<const std::uint8_t> payload,
                         std::vector<std::string_view>& out) {
  out.clear();
  WireReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.u32(count)) return false;
  if (static_cast<std::uint64_t>(count) * 2 > reader.remaining()) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string_view host;
    if (!reader.str16(host)) return false;
    out.push_back(host);
  }
  return reader.done();
}

bool parse_match_at_request(std::span<const std::uint8_t> payload, std::int64_t& date_days,
                            std::vector<std::string_view>& out) {
  out.clear();
  WireReader reader(payload);
  std::uint64_t raw_date = 0;
  std::uint32_t count = 0;
  if (!reader.u64(raw_date) || !reader.u32(count)) return false;
  if (static_cast<std::uint64_t>(count) * 2 > reader.remaining()) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string_view host;
    if (!reader.str16(host)) return false;
    out.push_back(host);
  }
  if (!reader.done()) return false;
  date_days = static_cast<std::int64_t>(raw_date);
  return true;
}

bool parse_divergence_request(std::span<const std::uint8_t> payload, std::string_view& host) {
  WireReader reader(payload);
  return reader.str16(host) && reader.done();
}

bool parse_ingest_request(std::span<const std::uint8_t> payload,
                          std::vector<WireIngestRecord>& out) {
  out.clear();
  WireReader reader(payload);
  std::uint32_t count = 0;
  if (!reader.u32(count)) return false;
  // Each record needs two length prefixes plus a timestamp: a count the
  // payload could not possibly hold is rejected before any reserve.
  if (static_cast<std::uint64_t>(count) * 12 > reader.remaining()) return false;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    WireIngestRecord record;
    if (!reader.str16(record.page_host) || !reader.str16(record.resource_host) ||
        !reader.u64(record.timestamp_ms)) {
      return false;
    }
    out.push_back(record);
  }
  return reader.done();
}

bool parse_census_request(std::span<const std::uint8_t> payload, std::uint32_t& top_k) {
  WireReader reader(payload);
  return reader.u32(top_k) && reader.done();
}

void put_census(std::vector<std::uint8_t>& out, const WireCensus& census) {
  put_u64(out, census.generation);
  put_u64(out, census.records);
  put_u64(out, census.first_party);
  put_u64(out, census.third_party);
  put_u64(out, census.unique_hosts);
  put_u64(out, census.sites_formed);
  put_u64(out, census.misbound_hosts);
  put_u64(out, census.dropped);
  put_u64(out, census.first_timestamp_ms);
  put_u64(out, census.last_timestamp_ms);
  put_u64(out, census.state_bytes);
  put_u32(out, static_cast<std::uint32_t>(census.etlds.size()));
  for (const WireCensus::EtldRow& row : census.etlds) {
    put_str16(out, row.etld);
    put_u64(out, row.misbound);
  }
  put_u32(out, static_cast<std::uint32_t>(census.trackers.size()));
  for (const WireCensus::TrackerRow& row : census.trackers) {
    put_str16(out, row.domain);
    put_u64(out, row.requests);
    put_u64(out, row.requests_err);
    put_u64(out, row.reach);
    put_u64(out, row.reach_err);
  }
}

bool parse_census(std::span<const std::uint8_t> payload, WireCensus& out) {
  out = WireCensus{};
  WireReader reader(payload);
  if (!reader.u64(out.generation) || !reader.u64(out.records) || !reader.u64(out.first_party) ||
      !reader.u64(out.third_party) || !reader.u64(out.unique_hosts) ||
      !reader.u64(out.sites_formed) || !reader.u64(out.misbound_hosts) ||
      !reader.u64(out.dropped) || !reader.u64(out.first_timestamp_ms) ||
      !reader.u64(out.last_timestamp_ms) || !reader.u64(out.state_bytes)) {
    return false;
  }
  std::uint32_t etld_count = 0;
  if (!reader.u32(etld_count)) return false;
  if (static_cast<std::uint64_t>(etld_count) * 10 > reader.remaining()) return false;
  out.etlds.reserve(etld_count);
  for (std::uint32_t i = 0; i < etld_count; ++i) {
    std::string_view etld;
    WireCensus::EtldRow row;
    if (!reader.str16(etld) || !reader.u64(row.misbound)) return false;
    row.etld.assign(etld);
    out.etlds.push_back(std::move(row));
  }
  std::uint32_t tracker_count = 0;
  if (!reader.u32(tracker_count)) return false;
  if (static_cast<std::uint64_t>(tracker_count) * 34 > reader.remaining()) return false;
  out.trackers.reserve(tracker_count);
  for (std::uint32_t i = 0; i < tracker_count; ++i) {
    std::string_view domain;
    WireCensus::TrackerRow row;
    if (!reader.str16(domain) || !reader.u64(row.requests) || !reader.u64(row.requests_err) ||
        !reader.u64(row.reach) || !reader.u64(row.reach_err)) {
      return false;
    }
    row.domain.assign(domain);
    out.trackers.push_back(std::move(row));
  }
  return reader.done();
}

void put_generation_changed(std::vector<std::uint8_t>& out, const WireGenerationChanged& push) {
  put_u64(out, push.generation);
  put_u64(out, push.rule_count);
  put_u64(out, static_cast<std::uint64_t>(push.source_date_days));
  put_u64(out, static_cast<std::uint64_t>(push.rule_delta));
}

bool parse_generation_changed(std::span<const std::uint8_t> payload, WireGenerationChanged& out) {
  WireReader reader(payload);
  std::uint64_t date = 0;
  std::uint64_t delta = 0;
  if (!reader.u64(out.generation) || !reader.u64(out.rule_count) || !reader.u64(date) ||
      !reader.u64(delta) || !reader.done()) {
    return false;
  }
  out.source_date_days = static_cast<std::int64_t>(date);
  out.rule_delta = static_cast<std::int64_t>(delta);
  return true;
}

const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBackpressure: return "backpressure";
    case Status::kMalformed: return "malformed";
    case Status::kUnsupported: return "unsupported";
    case Status::kReloadRejected: return "reload-rejected";
    case Status::kShuttingDown: return "shutting-down";
  }
  return "unknown";
}

}  // namespace psl::net
