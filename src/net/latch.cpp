#include "psl/net/latch.hpp"

#include <sys/mman.h>

#include <cstring>
#include <new>
#include <utility>

namespace psl::net {

namespace {
constexpr std::uint64_t kLatchMagic = 0x50534C4C41544348ULL;  // "PSLLATCH"
}  // namespace

// One cache line of atomics. The sequence is the seqlock: odd while the
// writer is mid-publish, even when the fields are consistent. Fields are
// atomics so the unsynchronized reader loads are race-free C++; the
// acquire/release pairing on `sequence` orders them.
struct GenerationLatch::Cell {
  std::atomic<std::uint64_t> magic;
  std::atomic<std::uint64_t> sequence;
  std::atomic<std::uint64_t> generation;
  std::atomic<std::uint64_t> rule_count;
  std::atomic<std::int64_t> source_date_days;
  std::atomic<std::uint64_t> publish_count;
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "the latch lives in shared memory; a lock-backed atomic would "
              "not be address-free");

GenerationLatch::GenerationLatch(GenerationLatch&& other) noexcept
    : cell_(std::exchange(other.cell_, nullptr)),
      owned_page_(std::exchange(other.owned_page_, nullptr)),
      owned_bytes_(std::exchange(other.owned_bytes_, 0)) {}

GenerationLatch& GenerationLatch::operator=(GenerationLatch&& other) noexcept {
  if (this != &other) {
    if (owned_page_ != nullptr) ::munmap(owned_page_, owned_bytes_);
    cell_ = std::exchange(other.cell_, nullptr);
    owned_page_ = std::exchange(other.owned_page_, nullptr);
    owned_bytes_ = std::exchange(other.owned_bytes_, 0);
  }
  return *this;
}

GenerationLatch::~GenerationLatch() {
  if (owned_page_ != nullptr) ::munmap(owned_page_, owned_bytes_);
}

util::Result<GenerationLatch> GenerationLatch::create_shared() {
  static_assert(sizeof(Cell) <= kBytes);
  const std::size_t page = 4096;
  void* mem = ::mmap(nullptr, page, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return util::make_error("latch.mmap", "mmap of the shared latch page failed");
  }
  auto attached = attach(mem, page);
  if (!attached.ok()) {  // unreachable: the page is aligned and large enough
    ::munmap(mem, page);
    return attached.error();
  }
  GenerationLatch latch = std::move(attached).value();
  latch.owned_page_ = mem;
  latch.owned_bytes_ = page;
  return latch;
}

util::Result<GenerationLatch> GenerationLatch::attach(void* mem, std::size_t bytes) {
  if (mem == nullptr || (reinterpret_cast<std::uintptr_t>(mem) % alignof(std::uint64_t)) != 0) {
    return util::make_error("latch.misaligned", "latch memory must be 8-byte aligned");
  }
  if (bytes < kBytes) {
    return util::make_error("latch.truncated", "latch memory must be at least 64 bytes");
  }
  GenerationLatch latch;
  // Atomics of unsigned 64-bit are trivially default-constructible and
  // lock-free here; placement-new over fresh zero pages (or an
  // already-initialized cell — the stores below are idempotent for a zeroed
  // page and skipped for a live one) sets up the object representation.
  auto* cell = reinterpret_cast<Cell*>(mem);
  if (cell->magic.load(std::memory_order_acquire) != kLatchMagic) {
    cell = new (mem) Cell{};
    cell->sequence.store(0, std::memory_order_relaxed);
    cell->generation.store(0, std::memory_order_relaxed);
    cell->rule_count.store(0, std::memory_order_relaxed);
    cell->source_date_days.store(0, std::memory_order_relaxed);
    cell->publish_count.store(0, std::memory_order_relaxed);
    cell->magic.store(kLatchMagic, std::memory_order_release);
  }
  latch.cell_ = cell;
  return latch;
}

void GenerationLatch::publish(const LatchValue& v) noexcept {
  Cell& c = *cell_;
  // Odd sequence = publish in flight. The acquire on the first bump keeps
  // the field stores from hoisting above it; the release on the second
  // keeps them from sinking below.
  const std::uint64_t seq = c.sequence.load(std::memory_order_relaxed);
  c.sequence.store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  c.generation.store(v.generation, std::memory_order_relaxed);
  c.rule_count.store(v.rule_count, std::memory_order_relaxed);
  c.source_date_days.store(v.source_date_days, std::memory_order_relaxed);
  c.publish_count.store(c.publish_count.load(std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  c.sequence.store(seq + 2, std::memory_order_release);
}

LatchValue GenerationLatch::read() const noexcept {
  const Cell& c = *cell_;
  for (;;) {
    const std::uint64_t before = c.sequence.load(std::memory_order_acquire);
    if ((before & 1) != 0) continue;  // writer mid-publish; retry
    LatchValue v;
    v.generation = c.generation.load(std::memory_order_relaxed);
    v.rule_count = c.rule_count.load(std::memory_order_relaxed);
    v.source_date_days = c.source_date_days.load(std::memory_order_relaxed);
    v.publish_count = c.publish_count.load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (c.sequence.load(std::memory_order_relaxed) == before) return v;
  }
}

}  // namespace psl::net
