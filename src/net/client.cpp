#include "psl/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fcntl.h>

namespace psl::net {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void set_timeout(int fd, int which, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = (ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, which, &tv, sizeof tv);
}

util::Error status_error(Status status, std::string_view detail) {
  switch (status) {
    case Status::kBackpressure:
      return util::make_error("net.backpressure", "server rejected the batch: engine queue full");
    case Status::kMalformed:
      return util::make_error("net.malformed", "server could not parse the request payload");
    case Status::kUnsupported:
      return util::make_error("net.unsupported",
                              detail.empty() ? "server does not support this frame type"
                                             : std::string(detail));
    case Status::kReloadRejected:
      return util::make_error("net.reload-rejected",
                              "reload refused, previous list keeps serving: " +
                                  std::string(detail));
    case Status::kShuttingDown:
      return util::make_error("net.stopped", "server is draining");
    case Status::kOk:
      break;
  }
  return util::make_error("net.protocol", "unknown response status");
}

}  // namespace

Client::Client(int fd, ClientOptions options)
    : fd_(fd), options_(options), decoder_(options.max_frame_bytes), cache_(options.cache_slots) {
  recv_scratch_.resize(64 * 1024);
}

Client::Client(Client&& other) noexcept
    : fd_(other.fd_),
      options_(other.options_),
      next_id_(other.next_id_),
      decoder_(std::move(other.decoder_)),
      send_buf_(std::move(other.send_buf_)),
      payload_buf_(std::move(other.payload_buf_)),
      recv_scratch_(std::move(other.recv_scratch_)),
      address_(std::move(other.address_)),
      port_(other.port_),
      udp_(other.udp_),
      subscribed_(other.subscribed_),
      pushed_generation_(other.pushed_generation_),
      push_callback_(std::move(other.push_callback_)),
      cache_(std::move(other.cache_)),
      cache_generation_(other.cache_generation_) {
  other.fd_ = -1;
}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    options_ = other.options_;
    next_id_ = other.next_id_;
    decoder_ = std::move(other.decoder_);
    send_buf_ = std::move(other.send_buf_);
    payload_buf_ = std::move(other.payload_buf_);
    recv_scratch_ = std::move(other.recv_scratch_);
    address_ = std::move(other.address_);
    port_ = other.port_;
    udp_ = other.udp_;
    subscribed_ = other.subscribed_;
    pushed_generation_ = other.pushed_generation_;
    push_callback_ = std::move(other.push_callback_);
    cache_ = std::move(other.cache_);
    cache_generation_ = other.cache_generation_;
    other.fd_ = -1;
  }
  return *this;
}

Client::~Client() { close(); }

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<Client> Client::connect(const std::string& address, std::uint16_t port,
                                     ClientOptions options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return util::make_error("net.io", "bad IPv4 address: " + address);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return util::make_error("net.io", errno_text("socket"));

  // Non-blocking connect so the timeout is enforceable, then back to
  // blocking with SO_RCVTIMEO/SO_SNDTIMEO for the per-request bound.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      const auto err = util::make_error("net.io", errno_text("connect"));
      ::close(fd);
      return err;
    }
    pollfd p{fd, POLLOUT, 0};
    const int ready = ::poll(&p, 1, options.connect_timeout_ms);
    if (ready <= 0) {
      ::close(fd);
      return util::make_error("net.timeout", "connect timed out");
    }
    int soerr = 0;
    socklen_t len = sizeof soerr;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &len);
    if (soerr != 0) {
      ::close(fd);
      return util::make_error("net.io",
                              std::string("connect: ") + std::strerror(soerr));
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  set_timeout(fd, SO_RCVTIMEO, options.io_timeout_ms);
  set_timeout(fd, SO_SNDTIMEO, options.io_timeout_ms);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  Client client(fd, options);
  client.address_ = address;  // kept for reconnect()
  client.port_ = port;
  return client;
}

util::Result<Client> Client::connect_udp(const std::string& address, std::uint16_t port,
                                         ClientOptions options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    return util::make_error("net.io", "bad IPv4 address: " + address);
  }
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) return util::make_error("net.io", errno_text("socket"));
  // connect() on a datagram socket just pins the peer: send()/recv() work,
  // and datagrams from anyone else are filtered by the kernel.
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const auto err = util::make_error("net.io", errno_text("connect"));
    ::close(fd);
    return err;
  }
  set_timeout(fd, SO_RCVTIMEO, options.io_timeout_ms);
  set_timeout(fd, SO_SNDTIMEO, options.io_timeout_ms);
  Client client(fd, options);
  client.address_ = address;
  client.port_ = port;
  client.udp_ = true;
  return client;
}

util::Result<bool> Client::send_all(std::span<const std::uint8_t> bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return util::make_error("net.timeout", "send timed out");
    }
    return util::make_error("net.io", errno_text("send"));
  }
  return true;
}

util::Result<bool> Client::round_trip(FrameType type, std::span<const std::uint8_t> payload,
                                      Frame& out) {
  if (fd_ < 0) return util::make_error("net.closed", "client is not connected");
  if (udp_) return round_trip_udp(type, payload, out);
  if (payload.size() > options_.max_frame_bytes) {
    return util::make_error("net.oversize", "request payload exceeds max_frame_bytes");
  }
  const std::uint32_t id = next_id_++;
  send_buf_.clear();
  encode_frame(send_buf_, type, id, payload);
  if (auto sent = send_all(send_buf_); !sent.ok()) {
    close();
    return sent.error();
  }

  for (;;) {
    switch (decoder_.next(out)) {
      case FrameDecoder::Next::kFrame: {
        // A generation_changed push may interleave ahead of (or between) our
        // responses — consume it and keep waiting for the real answer.
        if (out.header.type == static_cast<std::uint8_t>(FrameType::kGenerationChanged)) {
          if (auto handled = handle_push(out); !handled.ok()) return handled.error();
          continue;
        }
        if (out.header.type != response_type(type) || out.header.id != id) {
          close();
          return util::make_error("net.protocol", "response type/id mismatch");
        }
        WireReader reader(out.payload);
        std::uint8_t status = 0;
        if (!reader.u8(status)) {
          close();
          return util::make_error("net.protocol", "response payload missing status byte");
        }
        if (static_cast<Status>(status) != Status::kOk) {
          std::string_view detail;
          reader.str16(detail);  // optional; empty when absent
          return status_error(static_cast<Status>(status), detail);
        }
        return true;
      }
      case FrameDecoder::Next::kError:
        close();
        return util::make_error("net.protocol", decoder_.error().message);
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, recv_scratch_.data(), recv_scratch_.size(), 0);
    if (n > 0) {
      decoder_.feed({recv_scratch_.data(), static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {
      close();
      return util::make_error("net.closed", "server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      close();  // a half-read response frame cannot be resumed
      return util::make_error("net.timeout", "response timed out");
    }
    close();
    return util::make_error("net.io", errno_text("recv"));
  }
}

util::Result<bool> Client::round_trip_udp(FrameType type, std::span<const std::uint8_t> payload,
                                          Frame& out) {
  if (payload.size() + kHeaderBytes > kUdpMaxDatagramBytes) {
    return util::make_error("net.oversize", "request exceeds the UDP datagram bound");
  }
  const std::uint32_t id = next_id_++;
  send_buf_.clear();
  encode_frame(send_buf_, type, id, payload);
  // One datagram out; partial sends cannot happen on SOCK_DGRAM.
  for (;;) {
    const ssize_t n = ::send(fd_, send_buf_.data(), send_buf_.size(), MSG_NOSIGNAL);
    if (n >= 0) break;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return util::make_error("net.timeout", "send timed out");
    }
    return util::make_error("net.io", errno_text("send"));
  }

  // Datagrams for requests that already timed out may still be in flight;
  // skip anything that is not OUR response instead of treating it as a
  // protocol violation (reordering is legal under UDP).
  for (;;) {
    const ssize_t n = ::recv(fd_, recv_scratch_.data(), recv_scratch_.size(), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return util::make_error("net.timeout",
                                "response timed out (UDP is lossy: retry or use TCP)");
      }
      return util::make_error("net.io", errno_text("recv"));
    }
    if (static_cast<std::size_t>(n) < kHeaderBytes) continue;
    std::uint32_t magic = 0;
    std::memcpy(&magic, recv_scratch_.data(), 4);
    FrameHeader header;
    header.version = recv_scratch_[4];
    header.type = recv_scratch_[5];
    std::memcpy(&header.flags, recv_scratch_.data() + 6, 2);
    std::memcpy(&header.id, recv_scratch_.data() + 8, 4);
    std::memcpy(&header.payload_len, recv_scratch_.data() + 12, 4);
    if (magic != kMagic || header.version != kProtocolVersion || header.flags != 0 ||
        static_cast<std::size_t>(n) != kHeaderBytes + header.payload_len) {
      continue;  // mangled datagram: drop, keep waiting for ours
    }
    if (header.id != id) continue;  // stale response to an abandoned request
    if (header.type != response_type(type)) {
      return util::make_error("net.protocol", "response type mismatch");
    }
    out.header = header;
    out.payload = {recv_scratch_.data() + kHeaderBytes, header.payload_len};
    WireReader reader(out.payload);
    std::uint8_t status = 0;
    if (!reader.u8(status)) {
      return util::make_error("net.protocol", "response payload missing status byte");
    }
    if (static_cast<Status>(status) != Status::kOk) {
      std::string_view detail;
      reader.str16(detail);  // optional; empty when absent
      return status_error(static_cast<Status>(status), detail);
    }
    return true;
  }
}

util::Result<bool> Client::ping() {
  static constexpr std::uint8_t kProbe[4] = {0xB1, 0x05, 0x5E, 0xD5};
  Frame frame;
  if (auto ok = round_trip(FrameType::kPing, kProbe, frame); !ok.ok()) return ok.error();
  // Status byte + echo.
  if (frame.payload.size() != 1 + sizeof kProbe ||
      std::memcmp(frame.payload.data() + 1, kProbe, sizeof kProbe) != 0) {
    return util::make_error("net.protocol", "ping echo mismatch");
  }
  return true;
}

util::Result<std::vector<std::uint8_t>> Client::same_site_batch(
    const std::vector<std::pair<std::string, std::string>>& pairs) {
  payload_buf_.clear();
  put_u32(payload_buf_, static_cast<std::uint32_t>(pairs.size()));
  for (const auto& [a, b] : pairs) {
    if (a.size() > 0xFFFF || b.size() > 0xFFFF) {
      return util::make_error("net.oversize", "hostname exceeds the 65535-byte wire bound");
    }
    put_str16(payload_buf_, a);
    put_str16(payload_buf_, b);
  }
  Frame frame;
  if (auto ok = round_trip(FrameType::kSameSiteBatch, payload_buf_, frame); !ok.ok()) {
    return ok.error();
  }
  WireReader reader(frame.payload);
  std::uint8_t status = 0;
  std::uint32_t count = 0;
  if (!reader.u8(status) || !reader.u32(count) || count != pairs.size()) {
    return util::make_error("net.protocol", "bad same_site response body");
  }
  std::vector<std::uint8_t> out(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!reader.u8(out[i])) {
      return util::make_error("net.protocol", "short same_site response body");
    }
  }
  if (!reader.done()) {
    return util::make_error("net.protocol", "trailing bytes in same_site response");
  }
  return out;
}

util::Result<std::vector<WireMatch>> Client::match_batch(const std::vector<std::string>& hosts) {
  payload_buf_.clear();
  put_u32(payload_buf_, static_cast<std::uint32_t>(hosts.size()));
  for (const std::string& host : hosts) {
    if (host.size() > 0xFFFF) {
      return util::make_error("net.oversize", "hostname exceeds the 65535-byte wire bound");
    }
    put_str16(payload_buf_, host);
  }
  Frame frame;
  if (auto ok = round_trip(FrameType::kMatchBatch, payload_buf_, frame); !ok.ok()) {
    return ok.error();
  }
  WireReader reader(frame.payload);
  std::uint8_t status = 0;
  std::uint32_t count = 0;
  if (!reader.u8(status) || !reader.u32(count) || count != hosts.size()) {
    return util::make_error("net.protocol", "bad match response body");
  }
  std::vector<WireMatch> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string_view public_suffix, registrable_domain;
    std::uint8_t flags = 0;
    if (!reader.str16(public_suffix) || !reader.str16(registrable_domain) ||
        !reader.u8(flags)) {
      return util::make_error("net.protocol", "short match response body");
    }
    WireMatch m;
    m.public_suffix = std::string(public_suffix);
    m.registrable_domain = std::string(registrable_domain);
    m.matched_explicit_rule = (flags & 1u) != 0;
    m.private_section = (flags & 2u) != 0;
    out.push_back(std::move(m));
  }
  if (!reader.done()) {
    return util::make_error("net.protocol", "trailing bytes in match response");
  }
  return out;
}

util::Result<WireMatchAt> Client::match_at(util::Date date,
                                           const std::vector<std::string>& hosts) {
  payload_buf_.clear();
  put_u64(payload_buf_, static_cast<std::uint64_t>(
                            static_cast<std::int64_t>(date.days_since_epoch())));
  put_u32(payload_buf_, static_cast<std::uint32_t>(hosts.size()));
  for (const std::string& host : hosts) {
    if (host.size() > 0xFFFF) {
      return util::make_error("net.oversize", "hostname exceeds the 65535-byte wire bound");
    }
    put_str16(payload_buf_, host);
  }
  Frame frame;
  if (auto ok = round_trip(FrameType::kMatchAt, payload_buf_, frame); !ok.ok()) {
    return ok.error();
  }
  WireReader reader(frame.payload);
  std::uint8_t status = 0;
  std::uint64_t version_date = 0;
  std::uint32_t count = 0;
  WireMatchAt out;
  if (!reader.u8(status) || !reader.u64(version_date) || !reader.u64(out.rule_count) ||
      !reader.u32(count) || count != hosts.size()) {
    return util::make_error("net.protocol", "bad match_at response body");
  }
  out.version_date_days = static_cast<std::int64_t>(version_date);
  out.matches.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::string_view public_suffix, registrable_domain;
    std::uint8_t flags = 0;
    if (!reader.str16(public_suffix) || !reader.str16(registrable_domain) ||
        !reader.u8(flags)) {
      return util::make_error("net.protocol", "short match_at response body");
    }
    WireMatch m;
    m.public_suffix = std::string(public_suffix);
    m.registrable_domain = std::string(registrable_domain);
    m.matched_explicit_rule = (flags & 1u) != 0;
    m.private_section = (flags & 2u) != 0;
    out.matches.push_back(std::move(m));
  }
  if (!reader.done()) {
    return util::make_error("net.protocol", "trailing bytes in match_at response");
  }
  return out;
}

util::Result<std::vector<WireDivergenceRange>> Client::divergence(const std::string& host) {
  if (host.size() > 0xFFFF) {
    return util::make_error("net.oversize", "hostname exceeds the 65535-byte wire bound");
  }
  payload_buf_.clear();
  put_str16(payload_buf_, host);
  Frame frame;
  if (auto ok = round_trip(FrameType::kDivergence, payload_buf_, frame); !ok.ok()) {
    return ok.error();
  }
  WireReader reader(frame.payload);
  std::uint8_t status = 0;
  std::uint32_t count = 0;
  if (!reader.u8(status) || !reader.u32(count)) {
    return util::make_error("net.protocol", "bad divergence response body");
  }
  std::vector<WireDivergenceRange> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t first = 0, last = 0;
    std::string_view domain;
    if (!reader.u64(first) || !reader.u64(last) || !reader.str16(domain)) {
      return util::make_error("net.protocol", "short divergence response body");
    }
    WireDivergenceRange r;
    r.first_date_days = static_cast<std::int64_t>(first);
    r.last_date_days = static_cast<std::int64_t>(last);
    r.registrable_domain = std::string(domain);
    out.push_back(std::move(r));
  }
  if (!reader.done()) {
    return util::make_error("net.protocol", "trailing bytes in divergence response");
  }
  return out;
}

util::Result<std::vector<std::string>> Client::registrable_domains(
    const std::vector<std::string>& hosts) {
  // Cached path: only with slots configured AND an active subscription —
  // the pushed generation is the invalidation signal, so serving cached
  // boundaries without one could hand out stale answers forever.
  if (!cache_.enabled() || !subscribed_) {
    auto matches = match_batch(hosts);
    if (!matches.ok()) return matches.error();
    std::vector<std::string> out;
    out.reserve(matches->size());
    for (WireMatch& m : *matches) out.push_back(std::move(m.registrable_domain));
    return out;
  }

  // Drain pending pushes BEFORE consulting the cache: a generation change
  // sitting unread in the socket must invalidate, not be discovered after
  // stale hits were already served. A drain failure means the connection
  // died; surface that instead of answering from a cache we can no longer
  // invalidate.
  if (auto drained = poll_pushes(); !drained.ok()) return drained.error();
  if (cache_generation_ != pushed_generation_) reset_cache(pushed_generation_);

  std::vector<std::string> out(hosts.size());
  std::vector<std::string> miss_hosts;
  std::vector<std::size_t> miss_index;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const std::uint64_t hash = serve::RegDomainCache::hash_host(hosts[i]);
    std::uint32_t rd_len = 0;
    if (cache_.lookup(hash, rd_len)) {
      if (rd_len != serve::RegDomainCache::kNoDomain && rd_len <= hosts[i].size()) {
        out[i] = hosts[i].substr(hosts[i].size() - rd_len);
      }
      continue;  // kNoDomain -> "" (already default-constructed)
    }
    miss_index.push_back(i);
    miss_hosts.push_back(hosts[i]);
  }
  if (miss_hosts.empty()) return out;

  auto matches = match_batch(miss_hosts);
  if (!matches.ok()) return matches.error();
  for (std::size_t m = 0; m < matches->size(); ++m) {
    const std::size_t i = miss_index[m];
    std::string& domain = (*matches)[m].registrable_domain;
    // Cache entries are suffix LENGTHS of the queried host; a boundary the
    // server normalized into something that is not a literal suffix (rare:
    // trailing-dot hosts) is served but not cached.
    if (domain.empty()) {
      cache_.insert(serve::RegDomainCache::hash_host(hosts[i]),
                    serve::RegDomainCache::kNoDomain);
    } else if (hosts[i].ends_with(domain)) {
      cache_.insert(serve::RegDomainCache::hash_host(hosts[i]),
                    static_cast<std::uint32_t>(domain.size()));
    }
    out[i] = std::move(domain);
  }
  return out;
}

// --- the push channel --------------------------------------------------------

util::Result<bool> Client::handle_push(const Frame& frame) {
  WireGenerationChanged push;
  if (frame.header.id != 0 || !parse_generation_changed(frame.payload, push)) {
    close();
    return util::make_error("net.protocol", "bad generation_changed push");
  }
  pushed_generation_ = push.generation;
  if (push_callback_) push_callback_(push);
  return true;
}

util::Result<std::uint64_t> Client::subscribe() {
  Frame frame;
  if (auto ok = round_trip(FrameType::kSubscribe, {}, frame); !ok.ok()) return ok.error();
  WireReader reader(frame.payload);
  std::uint8_t status = 0;
  std::uint64_t generation = 0;
  if (!reader.u8(status) || !reader.u64(generation) || !reader.done()) {
    return util::make_error("net.protocol", "bad subscribe response body");
  }
  subscribed_ = true;
  // The subscribe response pins where this connection's knowledge starts;
  // the cache re-keys here so pre-subscription state can never satisfy a
  // post-subscription lookup.
  pushed_generation_ = generation;
  reset_cache(generation);
  return generation;
}

util::Result<std::size_t> Client::poll_pushes() {
  if (fd_ < 0) return util::make_error("net.closed", "client is not connected");
  if (udp_) return util::make_error("net.unsupported", "udp.no-push-channel");
  std::size_t received = 0;
  for (;;) {
    Frame frame;
    switch (decoder_.next(frame)) {
      case FrameDecoder::Next::kFrame: {
        // Nothing but pushes may arrive between round trips.
        if (frame.header.type != static_cast<std::uint8_t>(FrameType::kGenerationChanged)) {
          close();
          return util::make_error("net.protocol", "unsolicited non-push frame");
        }
        if (auto handled = handle_push(frame); !handled.ok()) return handled.error();
        ++received;
        continue;
      }
      case FrameDecoder::Next::kError:
        close();
        return util::make_error("net.protocol", decoder_.error().message);
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd_, recv_scratch_.data(), recv_scratch_.size(), MSG_DONTWAIT);
    if (n > 0) {
      decoder_.feed({recv_scratch_.data(), static_cast<std::size_t>(n)});
      continue;
    }
    if (n == 0) {
      close();
      return util::make_error("net.closed", "server closed the connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return received;  // socket drained
    close();
    return util::make_error("net.io", errno_text("recv"));
  }
}

util::Result<bool> Client::reconnect() {
  if (address_.empty()) {
    return util::make_error("net.io", "client has no dial target (not created via connect())");
  }
  close();
  auto fresh = udp_ ? connect_udp(address_, port_, options_) : connect(address_, port_, options_);
  if (!fresh.ok()) return fresh.error();
  // Adopt the new socket but keep this client's identity (callback, options,
  // subscription intent). The decoder restarts clean — the old stream died
  // mid-anything and none of it can be trusted.
  fd_ = fresh->fd_;
  fresh->fd_ = -1;
  decoder_ = FrameDecoder(options_.max_frame_bytes);
  reset_cache(0);
  pushed_generation_ = 0;
  if (subscribed_) {
    subscribed_ = false;  // re-established by the subscribe below
    if (auto generation = subscribe(); !generation.ok()) return generation.error();
  }
  return true;
}

void Client::reset_cache(std::uint64_t generation) {
  if (cache_.enabled()) cache_ = serve::RegDomainCache(options_.cache_slots);
  cache_generation_ = generation;
}

util::Result<std::uint64_t> Client::reload(std::span<const std::uint8_t> snapshot_bytes) {
  Frame frame;
  if (auto ok = round_trip(FrameType::kReload, snapshot_bytes, frame); !ok.ok()) {
    return ok.error();
  }
  WireReader reader(frame.payload);
  std::uint8_t status = 0;
  std::uint64_t generation = 0;
  if (!reader.u8(status) || !reader.u64(generation)) {
    return util::make_error("net.protocol", "bad reload response body");
  }
  return generation;
}

util::Result<WireStats> Client::stats() {
  Frame frame;
  if (auto ok = round_trip(FrameType::kStats, {}, frame); !ok.ok()) return ok.error();
  WireReader reader(frame.payload);
  std::uint8_t status = 0;
  WireStats stats;
  std::uint64_t date = 0;
  if (!reader.u8(status) || !reader.u64(stats.generation) || !reader.u64(stats.rule_count) ||
      !reader.u64(date) || !reader.u32(stats.connections) || !reader.u32(stats.queue_depth) ||
      !reader.u8(stats.analytics_enabled) || !reader.u64(stats.analytics_records) ||
      !reader.u64(stats.analytics_dropped) || !reader.u64(stats.analytics_census_queries) ||
      !reader.u64(stats.analytics_state_bytes)) {
    return util::make_error("net.protocol", "bad stats response body");
  }
  stats.source_date_days = static_cast<std::int64_t>(date);
  return stats;
}

util::Result<WireIngestAck> Client::ingest_batch(std::span<const WireIngestRecord> records) {
  payload_buf_.clear();
  put_u32(payload_buf_, static_cast<std::uint32_t>(records.size()));
  for (const WireIngestRecord& r : records) {
    if (r.page_host.size() > 0xFFFF || r.resource_host.size() > 0xFFFF) {
      return util::make_error("net.oversize", "hostname exceeds the 65535-byte wire bound");
    }
    put_str16(payload_buf_, r.page_host);
    put_str16(payload_buf_, r.resource_host);
    put_u64(payload_buf_, r.timestamp_ms);
  }
  Frame frame;
  if (auto ok = round_trip(FrameType::kIngestBatch, payload_buf_, frame); !ok.ok()) {
    return ok.error();
  }
  WireReader reader(frame.payload);
  std::uint8_t status = 0;
  WireIngestAck ack;
  if (!reader.u8(status) || !reader.u64(ack.generation) || !reader.u32(ack.accepted) ||
      !reader.done()) {
    return util::make_error("net.protocol", "bad ingest response body");
  }
  return ack;
}

util::Result<WireCensus> Client::census(std::uint32_t top_k) {
  payload_buf_.clear();
  put_u32(payload_buf_, top_k);
  Frame frame;
  if (auto ok = round_trip(FrameType::kCensusQuery, payload_buf_, frame); !ok.ok()) {
    return ok.error();
  }
  WireCensus out;
  // round_trip already consumed the leading status byte's semantics; the
  // body after it is the census payload.
  if (frame.payload.empty() || !parse_census(frame.payload.subspan(1), out)) {
    return util::make_error("net.protocol", "bad census response body");
  }
  return out;
}

}  // namespace psl::net
