// psl::store implementation: the delta codec, the Builder (write side) and
// the StoreView (mmap read side). See include/psl/store/store.hpp for the
// file format and the dedup strategy rationale.

#include "psl/store/store.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace psl::store {

namespace {

util::Error err(std::string code, std::string message) {
  return util::make_error(std::move(code), std::move(message));
}

std::uint64_t fnv1a64(const void* data, std::size_t len) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t align8(std::uint64_t v) noexcept { return (v + 7) & ~std::uint64_t{7}; }

// ---------------------------------------------------------------------------
// Delta codec: a tiny byte-oriented op VM.
//
//   COPY n            copy n bytes from the base cursor
//   INSERT n <bytes>  emit n literal bytes
//   SKIP n            advance the base cursor by n bytes
//   ADDROW w n <d_0..d_{w-1}>
//                     n rows of w u32 lanes: out_lane = base_lane + d_lane
//                     (mod 2^32), base cursor advances with the rows. The
//                     per-lane deltas are zigzag varints, so the dominant
//                     churn pattern — "+k to the same lanes of every
//                     following row" — costs a handful of bytes per run.
//   DIFFROW w n <d_00..d_0{w-1} .. d_{n-1}{w-1}>
//                     like ADDROW but with an independent per-lane delta for
//                     every row (row-major zigzag varints). This carries the
//                     "aligned but jittery" regions — rows whose lanes shift
//                     by small, row-varying amounts — at ~1 byte per lane
//                     instead of a fresh ADDROW header per row.
//
// All counts are LEB128 varints. The decoder bounds-checks every op and
// requires the program to end exactly at the declared decoded size; the
// Builder additionally round-trip-verifies every program it emits.
// ---------------------------------------------------------------------------

enum : std::uint8_t {
  kOpCopy = 1,
  kOpInsert = 2,
  kOpSkip = 3,
  kOpAddRow = 4,
  kOpDiffRow = 5
};

constexpr std::size_t kMaxRowWidth = 16;   // lanes per ADDROW row
constexpr std::size_t kMinDeltaRun = 4;    // ADDROW runs shorter than this try a resync first
constexpr std::size_t kResyncWindow = 64;  // rows searched for realignment
constexpr std::size_t kResyncConfirm = 8;  // equal rows required to accept a resync

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

bool get_varint(std::span<const std::uint8_t> buf, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  for (int shift = 0; shift < 64 && pos < buf.size(); shift += 7) {
    const std::uint8_t b = buf[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
  }
  return false;
}

std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^ static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^ -static_cast<std::int64_t>(v & 1);
}

/// Run `ops` against `base`, writing exactly `out.size()` bytes into `out`.
util::Result<std::uint64_t> decode_delta(std::span<const std::uint8_t> ops,
                                         std::span<const std::uint8_t> base,
                                         std::span<std::uint8_t> out) {
  std::size_t pos = 0;  // program cursor
  std::size_t bc = 0;   // base cursor
  std::size_t wc = 0;   // write cursor
  const auto bad = [](const char* what) { return err("store.bad-delta", what); };
  while (pos < ops.size()) {
    const std::uint8_t op = ops[pos++];
    std::uint64_t n = 0;
    switch (op) {
      case kOpCopy:
        if (!get_varint(ops, pos, n)) return bad("truncated COPY count");
        if (n > base.size() - bc || n > out.size() - wc) return bad("COPY out of bounds");
        std::memcpy(out.data() + wc, base.data() + bc, static_cast<std::size_t>(n));
        bc += static_cast<std::size_t>(n);
        wc += static_cast<std::size_t>(n);
        break;
      case kOpInsert:
        if (!get_varint(ops, pos, n)) return bad("truncated INSERT count");
        if (n > ops.size() - pos || n > out.size() - wc) return bad("INSERT out of bounds");
        std::memcpy(out.data() + wc, ops.data() + pos, static_cast<std::size_t>(n));
        pos += static_cast<std::size_t>(n);
        wc += static_cast<std::size_t>(n);
        break;
      case kOpSkip:
        if (!get_varint(ops, pos, n)) return bad("truncated SKIP count");
        if (n > base.size() - bc) return bad("SKIP out of bounds");
        bc += static_cast<std::size_t>(n);
        break;
      case kOpAddRow: {
        std::uint64_t w = 0;
        if (!get_varint(ops, pos, w) || !get_varint(ops, pos, n)) {
          return bad("truncated ADDROW header");
        }
        if (w < 1 || w > kMaxRowWidth || n < 1) return bad("ADDROW shape invalid");
        if (bc % 4 != 0 || wc % 4 != 0) return bad("ADDROW cursor misaligned");
        const std::uint64_t row_bytes = w * 4;
        if (n > (base.size() - bc) / row_bytes || n > (out.size() - wc) / row_bytes) {
          return bad("ADDROW out of bounds");
        }
        std::int64_t d[kMaxRowWidth];
        for (std::uint64_t k = 0; k < w; ++k) {
          std::uint64_t zz = 0;
          if (!get_varint(ops, pos, zz)) return bad("truncated ADDROW delta");
          d[k] = unzigzag(zz);
        }
        for (std::uint64_t r = 0; r < n; ++r) {
          for (std::uint64_t k = 0; k < w; ++k) {
            const std::uint32_t bv = get_u32(base.data() + bc);
            const std::uint32_t nv =
                static_cast<std::uint32_t>(static_cast<std::uint64_t>(bv) +
                                           static_cast<std::uint64_t>(d[k]));
            out[wc + 0] = static_cast<std::uint8_t>(nv & 0xFF);
            out[wc + 1] = static_cast<std::uint8_t>((nv >> 8) & 0xFF);
            out[wc + 2] = static_cast<std::uint8_t>((nv >> 16) & 0xFF);
            out[wc + 3] = static_cast<std::uint8_t>((nv >> 24) & 0xFF);
            bc += 4;
            wc += 4;
          }
        }
        break;
      }
      case kOpDiffRow: {
        std::uint64_t w = 0;
        if (!get_varint(ops, pos, w) || !get_varint(ops, pos, n)) {
          return bad("truncated DIFFROW header");
        }
        if (w < 1 || w > kMaxRowWidth || n < 1) return bad("DIFFROW shape invalid");
        if (bc % 4 != 0 || wc % 4 != 0) return bad("DIFFROW cursor misaligned");
        const std::uint64_t row_bytes = w * 4;
        if (n > (base.size() - bc) / row_bytes || n > (out.size() - wc) / row_bytes) {
          return bad("DIFFROW out of bounds");
        }
        for (std::uint64_t r = 0; r < n; ++r) {
          for (std::uint64_t k = 0; k < w; ++k) {
            std::uint64_t zz = 0;
            if (!get_varint(ops, pos, zz)) return bad("truncated DIFFROW delta");
            const std::uint32_t bv = get_u32(base.data() + bc);
            const std::uint32_t nv =
                static_cast<std::uint32_t>(static_cast<std::uint64_t>(bv) +
                                           static_cast<std::uint64_t>(unzigzag(zz)));
            out[wc + 0] = static_cast<std::uint8_t>(nv & 0xFF);
            out[wc + 1] = static_cast<std::uint8_t>((nv >> 8) & 0xFF);
            out[wc + 2] = static_cast<std::uint8_t>((nv >> 16) & 0xFF);
            out[wc + 3] = static_cast<std::uint8_t>((nv >> 24) & 0xFF);
            bc += 4;
            wc += 4;
          }
        }
        break;
      }
      default:
        return bad("unknown opcode");
    }
  }
  if (wc != out.size()) return bad("program does not produce the declared size");
  return static_cast<std::uint64_t>(wc);
}

/// Byte-mode encoder for the label pool. Labels are interned append-mostly,
/// but one new rule can scatter insertions across the pool, so a single
/// prefix/suffix splice degenerates into an INSERT spanning almost the whole
/// section. Instead: index every 8-byte shingle of the base, then walk the
/// new bytes greedily — extend the aligned match into COPY, or jump forward
/// (SKIP is forward-only in the VM) to the nearest indexed match and splice;
/// unmatched bytes pool into one pending INSERT.
constexpr std::size_t kShingle = 8;        // bytes hashed per index entry
constexpr std::size_t kMinCopyRun = 4;     // aligned runs shorter than this stay literal
constexpr std::size_t kMinJumpMatch = 12;  // jump matches must repay SKIP+COPY overhead

std::string encode_bytes_delta(std::span<const std::uint8_t> base,
                               std::span<const std::uint8_t> neu) {
  // Shingle index: open-addressed hash -> ascending base positions.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> index;
  if (base.size() >= kShingle) {
    index.reserve(base.size());
    for (std::size_t pos = 0; pos + kShingle <= base.size(); ++pos) {
      index[get_u64(base.data() + pos)].push_back(static_cast<std::uint32_t>(pos));
    }
  }
  const auto match_len = [&](std::size_t ni, std::size_t bj) {
    std::size_t m = 0;
    const std::size_t cap = std::min(neu.size() - ni, base.size() - bj);
    while (m < cap && neu[ni + m] == base[bj + m]) ++m;
    return m;
  };

  std::string ops;
  std::string pending;  // literal bytes awaiting one INSERT
  const auto flush = [&] {
    if (pending.empty()) return;
    ops.push_back(static_cast<char>(kOpInsert));
    put_varint(ops, pending.size());
    ops.append(pending);
    pending.clear();
  };

  std::size_t i = 0, j = 0;  // new / base cursors
  while (i < neu.size()) {
    // Aligned run first: the common case between churn sites.
    if (j < base.size() && base[j] == neu[i]) {
      const std::size_t run = match_len(i, j);
      if (run >= kMinCopyRun) {
        flush();
        ops.push_back(static_cast<char>(kOpCopy));
        put_varint(ops, run);
        i += run;
        j += run;
        continue;
      }
    }
    // Jump: nearest indexed occurrence at or past the base cursor.
    if (i + kShingle <= neu.size()) {
      const auto it = index.find(get_u64(neu.data() + i));
      if (it != index.end()) {
        const auto& positions = it->second;
        const auto lo = std::lower_bound(positions.begin(), positions.end(),
                                         static_cast<std::uint32_t>(j));
        if (lo != positions.end()) {
          const std::size_t bj = *lo;
          const std::size_t run = match_len(i, bj);
          if (run >= kMinJumpMatch) {
            flush();
            if (bj > j) {
              ops.push_back(static_cast<char>(kOpSkip));
              put_varint(ops, bj - j);
            }
            ops.push_back(static_cast<char>(kOpCopy));
            put_varint(ops, run);
            i += run;
            j = bj + run;
            continue;
          }
        }
      }
    }
    pending.push_back(static_cast<char>(neu[i]));
    ++i;
  }
  flush();
  return ops;
}

/// Row-mode encoder for the fixed-width sections (nodes / hashes /
/// children). Greedy: maximal equal runs become COPY; maximal constant-
/// per-lane-delta runs become ADDROW (the offset-shift pattern); when
/// neither bites, a bounded search realigns the cursors across inserted /
/// removed rows with INSERT + SKIP. Returns nullopt when the sizes are not
/// row-multiples (the caller falls back to raw).
std::optional<std::string> encode_rows_delta(std::span<const std::uint8_t> base,
                                             std::span<const std::uint8_t> neu,
                                             std::size_t w) {
  const std::size_t row = w * 4;
  if (base.size() % row != 0 || neu.size() % row != 0) return std::nullopt;
  const std::size_t nb = base.size() / row;
  const std::size_t nn = neu.size() / row;
  const auto base_row = [&](std::size_t r) { return base.data() + r * row; };
  const auto new_row = [&](std::size_t r) { return neu.data() + r * row; };
  const auto rows_equal = [&](std::size_t i, std::size_t j) {
    return std::memcmp(new_row(i), base_row(j), row) == 0;
  };

  std::string ops;
  std::size_t i = 0, j = 0;  // new row / base row cursors
  while (i < nn && j < nb) {
    // 1. Equal run -> COPY.
    std::size_t e = 0;
    while (i + e < nn && j + e < nb && rows_equal(i + e, j + e)) ++e;
    if (e > 0) {
      ops.push_back(static_cast<char>(kOpCopy));
      put_varint(ops, e * row);
      i += e;
      j += e;
      continue;
    }
    // 2. Constant per-lane delta run -> ADDROW.
    std::int64_t d[kMaxRowWidth];
    for (std::size_t k = 0; k < w; ++k) {
      d[k] = static_cast<std::int64_t>(get_u32(new_row(i) + k * 4)) -
             static_cast<std::int64_t>(get_u32(base_row(j) + k * 4));
    }
    const auto delta_holds = [&](std::size_t di) {
      for (std::size_t k = 0; k < w; ++k) {
        const std::uint32_t bv = get_u32(base_row(j + di) + k * 4);
        const std::uint32_t nv = get_u32(new_row(i + di) + k * 4);
        if (static_cast<std::uint32_t>(static_cast<std::uint64_t>(bv) +
                                       static_cast<std::uint64_t>(d[k])) != nv) {
          return false;
        }
      }
      return true;
    };
    std::size_t c = 1;
    while (i + c < nn && j + c < nb && delta_holds(c)) ++c;
    if (c >= kMinDeltaRun) {
      ops.push_back(static_cast<char>(kOpAddRow));
      put_varint(ops, w);
      put_varint(ops, c);
      for (std::size_t k = 0; k < w; ++k) put_varint(ops, zigzag(d[k]));
      i += c;
      j += c;
      continue;
    }
    {
      // 3. Short mismatch: possibly inserted/removed rows. Find the nearest
      // realignment and splice across it.
      const auto matches_from = [&](std::size_t ni, std::size_t bj) {
        const std::size_t need =
            std::min(kResyncConfirm, std::min(nn - ni, nb - bj));
        if (need == 0) return false;
        for (std::size_t t = 0; t < need; ++t) {
          if (!rows_equal(ni + t, bj + t)) return false;
        }
        return true;
      };
      std::size_t best_di = 0, best_dj = 0;
      bool found = false;
      for (std::size_t cost = 1; cost <= 2 * kResyncWindow && !found; ++cost) {
        for (std::size_t di = 0; di <= cost && !found; ++di) {
          const std::size_t dj = cost - di;
          if (di > kResyncWindow || dj > kResyncWindow) continue;
          if (i + di >= nn || j + dj >= nb) continue;
          if (matches_from(i + di, j + dj)) {
            best_di = di;
            best_dj = dj;
            found = true;
          }
        }
      }
      if (found) {
        if (best_di > 0) {
          ops.push_back(static_cast<char>(kOpInsert));
          put_varint(ops, best_di * row);
          ops.append(reinterpret_cast<const char*>(new_row(i)), best_di * row);
          i += best_di;
        }
        if (best_dj > 0) {
          ops.push_back(static_cast<char>(kOpSkip));
          put_varint(ops, best_dj * row);
          j += best_dj;
        }
        continue;
      }
    }
    // 4. Aligned but jittery: the lanes shift by small row-varying amounts
    // (churn renumbers offsets unevenly), so constant-delta runs die after a
    // row or two and per-run ADDROW headers would dominate. Accumulate the
    // whole jittery region into one DIFFROW — per-row per-lane zigzag
    // deltas — breaking only where a COPY or ADDROW run worth its own
    // header begins.
    const auto const_run_from = [&](std::size_t m, std::size_t need) {
      if (i + m + need > nn || j + m + need > nb) return false;
      std::int64_t dd[kMaxRowWidth];
      for (std::size_t k = 0; k < w; ++k) {
        dd[k] = static_cast<std::int64_t>(get_u32(new_row(i + m) + k * 4)) -
                static_cast<std::int64_t>(get_u32(base_row(j + m) + k * 4));
      }
      for (std::size_t t = 1; t < need; ++t) {
        for (std::size_t k = 0; k < w; ++k) {
          const std::uint32_t bv = get_u32(base_row(j + m + t) + k * 4);
          const std::uint32_t nv = get_u32(new_row(i + m + t) + k * 4);
          if (static_cast<std::uint32_t>(static_cast<std::uint64_t>(bv) +
                                         static_cast<std::uint64_t>(dd[k])) != nv) {
            return false;
          }
        }
      }
      return true;
    };
    std::size_t m = 1;
    while (i + m < nn && j + m < nb) {
      if (rows_equal(i + m, j + m) &&
          (i + m + 1 >= nn || j + m + 1 >= nb || rows_equal(i + m + 1, j + m + 1))) {
        break;  // an equal run >= 2 repays a COPY header
      }
      if (const_run_from(m, kMinDeltaRun)) break;  // an ADDROW run begins
      ++m;
    }
    ops.push_back(static_cast<char>(kOpDiffRow));
    put_varint(ops, w);
    put_varint(ops, m);
    for (std::size_t r = 0; r < m; ++r) {
      for (std::size_t k = 0; k < w; ++k) {
        const std::int64_t dr =
            static_cast<std::int64_t>(get_u32(new_row(i + r) + k * 4)) -
            static_cast<std::int64_t>(get_u32(base_row(j + r) + k * 4));
        put_varint(ops, zigzag(dr));
      }
    }
    i += m;
    j += m;
  }
  if (i < nn) {
    ops.push_back(static_cast<char>(kOpInsert));
    put_varint(ops, (nn - i) * row);
    ops.append(reinterpret_cast<const char*>(new_row(i)), (nn - i) * row);
  }
  return ops;
}

std::optional<std::string> encode_delta(std::span<const std::uint8_t> base,
                                        std::span<const std::uint8_t> neu,
                                        std::size_t row_width) {
  if (row_width == 0) return encode_bytes_delta(base, neu);
  return encode_rows_delta(base, neu, row_width);
}

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Arena record widths in u32 lanes, indexed like the section arrays:
/// nodes (12-byte Node = 3 lanes), hashes (1 lane), children (12-byte
/// Child = 3 lanes), pool (0 = unstructured bytes).
constexpr std::size_t kRowWidth[4] = {3, 1, 3, 0};

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

std::uint32_t Builder::intern_section(std::span<const std::uint8_t> bytes,
                                      std::size_t row_width,
                                      const std::uint32_t* prev_segment) {
  const std::uint64_t hash = fnv1a64(bytes.data(), bytes.size());
  for (const auto& [h, idx] : dedup_) {
    if (h != hash) continue;
    const std::string& d = *segments_[idx].decoded;
    if (d.size() == bytes.size() &&
        (bytes.empty() || std::memcmp(d.data(), bytes.data(), bytes.size()) == 0)) {
      return idx;
    }
  }

  BuiltSegment seg;
  seg.decoded = std::make_shared<const std::string>(
      reinterpret_cast<const char*>(bytes.data()), bytes.size());
  bool use_delta = false;
  if (prev_segment != nullptr) {
    const BuiltSegment& base = segments_[*prev_segment];
    if (base.chain_depth + 1 <= kMaxChainDepth) {
      auto ops = encode_delta(as_bytes(*base.decoded), bytes, row_width);
      // Worth storing only if clearly smaller than raw (7/8), and trusted
      // only after a full round trip: decode(base, ops) must reproduce the
      // new section bit-for-bit. An encoder bug can cost space, never
      // correctness.
      if (ops && ops->size() < bytes.size() - bytes.size() / 8) {
        std::vector<std::uint64_t> buf((bytes.size() + 7) / 8);
        const std::span<std::uint8_t> out(reinterpret_cast<std::uint8_t*>(buf.data()),
                                          bytes.size());
        const auto rt = decode_delta(as_bytes(*ops), as_bytes(*base.decoded), out);
        if (rt.ok() &&
            (bytes.empty() || std::memcmp(out.data(), bytes.data(), bytes.size()) == 0)) {
          seg.stored = std::move(*ops);
          seg.kind = kDeltaSegment;
          seg.base = *prev_segment;
          seg.chain_depth = base.chain_depth + 1;
          use_delta = true;
        }
      }
    }
  }
  if (!use_delta) {
    seg.stored.assign(reinterpret_cast<const char*>(bytes.data()), bytes.size());
    seg.kind = kRawSegment;
    seg.base = kNoBase;
    seg.chain_depth = 0;
  }
  if (std::getenv("PSL_STORE_DEBUG") != nullptr) {
    std::size_t n_copy = 0, n_ins = 0, n_skip = 0, n_add = 0, ins_bytes = 0;
    if (use_delta) {
      const auto ops = as_bytes(seg.stored);
      std::size_t pos = 0;
      while (pos < ops.size()) {
        const std::uint8_t op = ops[pos++];
        std::uint64_t n = 0;
        if (op == kOpCopy) { get_varint(ops, pos, n); ++n_copy; }
        else if (op == kOpInsert) { get_varint(ops, pos, n); ++n_ins; ins_bytes += n; pos += n; }
        else if (op == kOpSkip) { get_varint(ops, pos, n); ++n_skip; }
        else if (op == kOpAddRow) {
          std::uint64_t w = 0;
          get_varint(ops, pos, w);
          get_varint(ops, pos, n);
          for (std::uint64_t k = 0; k < w; ++k) { std::uint64_t zz; get_varint(ops, pos, zz); }
          ++n_add;
        } else break;
      }
    }
    std::fprintf(stderr,
                 "[store] w=%zu %s %zu -> %zu copy=%zu ins=%zu/%zuB skip=%zu add=%zu\n",
                 row_width, use_delta ? "delta" : "raw  ", bytes.size(),
                 seg.stored.size(), n_copy, n_ins, ins_bytes, n_skip, n_add);
  }
  seg.hash = fnv1a64(seg.stored.data(), seg.stored.size());
  const auto idx = static_cast<std::uint32_t>(segments_.size());
  segments_.push_back(std::move(seg));
  dedup_.emplace_back(hash, idx);
  return idx;
}

util::Result<std::size_t> Builder::add_snapshot(std::span<const std::uint8_t> snapshot_bytes) {
  // Full validation first (structure + checksums): a store only ever holds
  // snapshots that load.
  auto loaded = snapshot::load_copy(snapshot_bytes);
  if (!loaded.ok()) return loaded.error();
  const auto parsed = snapshot::parse_header(snapshot_bytes);
  if (!parsed.ok()) return parsed.error();
  const snapshot::HeaderView& h = *parsed;

  if (!records_.empty()) {
    const util::Date last = records_.back().meta.source_date;
    if (!(last < h.meta.source_date)) {
      return err("store.out-of-order",
                 "version dated " + h.meta.source_date.to_string() +
                     " does not follow " + last.to_string());
    }
  }

  const struct {
    std::uint64_t off, size;
  } sections[4] = {{h.nodes_off, h.nodes_bytes},
                   {h.hashes_off, h.hashes_bytes},
                   {h.children_off, h.children_bytes},
                   {h.pool_off, h.pool_bytes}};

  Record rec;
  rec.header.assign(reinterpret_cast<const char*>(snapshot_bytes.data()),
                    snapshot::kHeaderBytes);
  rec.meta = h.meta;
  for (int s = 0; s < 4; ++s) {
    const auto sec = snapshot_bytes.subspan(static_cast<std::size_t>(sections[s].off),
                                            static_cast<std::size_t>(sections[s].size));
    const std::uint32_t* prev = records_.empty() ? nullptr : &records_.back().seg[s];
    rec.seg[s] = intern_section(sec, kRowWidth[s], prev);
  }
  standalone_bytes_ += snapshot_bytes.size();
  records_.push_back(std::move(rec));
  return records_.size() - 1;
}

util::Result<std::size_t> Builder::add(const CompiledMatcher& matcher,
                                       const snapshot::Metadata& meta) {
  const std::string bytes = snapshot::serialize(matcher, meta);
  return add_snapshot(as_bytes(bytes));
}

Stats Builder::stats() const {
  Stats st;
  st.standalone_bytes = standalone_bytes_;
  st.version_count = records_.size();
  st.segment_count = segments_.size();
  std::uint64_t size = kHeaderBytes;
  for (const BuiltSegment& seg : segments_) {
    size = align8(size) + seg.stored.size();
    if (seg.kind == kRawSegment) {
      ++st.raw_segments;
      st.raw_bytes += seg.stored.size();
    } else {
      ++st.delta_segments;
      st.delta_bytes += seg.stored.size();
    }
  }
  size = align8(size) + segments_.size() * kSegmentEntryBytes +
         records_.size() * kVersionRecordBytes;
  st.file_bytes = size;
  return st;
}

util::Result<std::string> Builder::serialize() const {
  if (records_.empty()) return err("store.empty", "no versions added");

  std::string out(kHeaderBytes, '\0');
  std::vector<std::uint64_t> offsets(segments_.size());
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    out.resize(static_cast<std::size_t>(align8(out.size())), '\0');
    offsets[i] = out.size();
    out += segments_[i].stored;
  }
  out.resize(static_cast<std::size_t>(align8(out.size())), '\0');

  const std::uint64_t seg_table_off = out.size();
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const BuiltSegment& seg = segments_[i];
    put_u64(out, offsets[i]);
    put_u64(out, seg.stored.size());
    put_u64(out, seg.decoded->size());
    put_u64(out, seg.hash);
    put_u32(out, seg.kind);
    put_u32(out, seg.base);
  }
  const std::uint64_t ver_table_off = out.size();
  for (const Record& rec : records_) {
    out += rec.header;
    for (const std::uint32_t s : rec.seg) put_u32(out, s);
  }
  const std::uint64_t total = out.size();

  std::string header;
  header.reserve(kHeaderBytes);
  header.append(kMagic, sizeof(kMagic));
  put_u32(header, kFormatVersion);
  put_u32(header, static_cast<std::uint32_t>(kHeaderBytes));
  put_u64(header, records_.size());
  put_u64(header, segments_.size());
  put_u64(header, seg_table_off);
  put_u64(header, ver_table_off);
  put_u64(header, total);
  put_u64(header, fnv1a64(out.data() + seg_table_off, ver_table_off - seg_table_off));
  put_u64(header, fnv1a64(out.data() + ver_table_off, total - ver_table_off));
  put_u64(header, static_cast<std::uint64_t>(static_cast<std::int64_t>(
                      records_.back().meta.source_date.days_since_epoch())));
  put_u64(header, standalone_bytes_);
  put_u64(header, fnv1a64(header.data(), 88));
  out.replace(0, kHeaderBytes, header);
  return out;
}

util::Result<std::uint64_t> Builder::write_file(const std::string& path) const {
  auto bytes = serialize();
  if (!bytes.ok()) return bytes.error();
  return snapshot::write_file_durable(path, as_bytes(*bytes));
}

// ---------------------------------------------------------------------------
// StoreView
// ---------------------------------------------------------------------------

struct StoreView::Mapping {
  const std::uint8_t* data = nullptr;
  std::size_t size = 0;

  Mapping() = default;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() {
    if (data != nullptr) {
      ::munmap(const_cast<std::uint8_t*>(data), size);
    }
  }
};

StoreView::~StoreView() = default;

util::Result<std::shared_ptr<const StoreView>> StoreView::open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return err("store.io", "cannot open " + path + " (" + std::strerror(errno) + ")");
  }
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    return err("store.io", "cannot stat " + path + " (" + std::strerror(saved) + ")");
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < kHeaderBytes) {
    ::close(fd);
    return err("store.truncated", path + " is " + std::to_string(size) +
                                      " bytes; header needs " + std::to_string(kHeaderBytes));
  }
  void* mapped = ::mmap(nullptr, static_cast<std::size_t>(size), PROT_READ, MAP_PRIVATE, fd, 0);
  const int saved = errno;
  ::close(fd);
  if (mapped == MAP_FAILED) {
    return err("store.io", "cannot mmap " + path + " (" + std::strerror(saved) + ")");
  }
  auto mapping = std::make_shared<Mapping>();
  mapping->data = static_cast<const std::uint8_t*>(mapped);
  mapping->size = static_cast<std::size_t>(size);
  const std::uint8_t* const p = mapping->data;

  // --- header ---------------------------------------------------------------
  if (std::memcmp(p, kMagic, sizeof(kMagic)) != 0) {
    return err("store.bad-magic", "magic bytes are not PSLSTOR1");
  }
  if (get_u32(p + 8) != kFormatVersion) {
    return err("store.bad-version",
               "format version " + std::to_string(get_u32(p + 8)) + " unsupported");
  }
  if (get_u32(p + 12) != kHeaderBytes) {
    return err("store.bad-header", "header size field must be 96");
  }
  if (fnv1a64(p, 88) != get_u64(p + 88)) {
    return err("store.checksum", "header checksum mismatch");
  }
  const std::uint64_t version_count = get_u64(p + 16);
  const std::uint64_t segment_count = get_u64(p + 24);
  const std::uint64_t seg_table_off = get_u64(p + 32);
  const std::uint64_t ver_table_off = get_u64(p + 40);
  const std::uint64_t total = get_u64(p + 48);
  const std::uint64_t seg_table_sum = get_u64(p + 56);
  const std::uint64_t ver_table_sum = get_u64(p + 64);
  const std::int64_t newest_days = static_cast<std::int64_t>(get_u64(p + 72));
  const std::uint64_t standalone_bytes = get_u64(p + 80);
  if (version_count == 0 || segment_count == 0) {
    return err("store.bad-header", "empty version or segment table");
  }
  if (total != size) {
    return err("store.truncated", path + " is " + std::to_string(size) +
                                      " bytes; header declares " + std::to_string(total));
  }
  // The tables tile the file tail exactly: [seg table][version table][EOF].
  if (segment_count > (size - kHeaderBytes) / kSegmentEntryBytes ||
      version_count > (size - kHeaderBytes) / kVersionRecordBytes) {
    return err("store.bad-header", "table sizes exceed the file");
  }
  const std::uint64_t seg_table_bytes = segment_count * kSegmentEntryBytes;
  const std::uint64_t ver_table_bytes = version_count * kVersionRecordBytes;
  if (seg_table_off < kHeaderBytes || seg_table_off % 8 != 0 ||
      seg_table_off + seg_table_bytes != ver_table_off ||
      ver_table_off + ver_table_bytes != total) {
    return err("store.bad-header", "table layout inconsistent");
  }
  if (fnv1a64(p + seg_table_off, seg_table_bytes) != seg_table_sum) {
    return err("store.checksum", "segment table checksum mismatch");
  }
  if (fnv1a64(p + ver_table_off, ver_table_bytes) != ver_table_sum) {
    return err("store.checksum", "version table checksum mismatch");
  }

  std::shared_ptr<StoreView> view(new StoreView());
  view->path_ = path;
  view->mapping_ = mapping;

  // --- segment table --------------------------------------------------------
  view->segments_.reserve(segment_count);
  std::vector<std::uint32_t> depth(segment_count, 0);
  std::uint64_t cursor = kHeaderBytes;
  Stats stats;
  for (std::uint64_t i = 0; i < segment_count; ++i) {
    const std::uint8_t* const e = p + seg_table_off + i * kSegmentEntryBytes;
    Segment seg;
    seg.offset = get_u64(e);
    seg.stored = get_u64(e + 8);
    seg.decoded = get_u64(e + 16);
    seg.hash = get_u64(e + 24);
    seg.kind = get_u32(e + 32);
    seg.base = get_u32(e + 36);
    const std::string at = "segment " + std::to_string(i);
    if (seg.kind == kRawSegment) {
      if (seg.base != kNoBase || seg.decoded != seg.stored) {
        return err("store.bad-segment", at + ": raw entry inconsistent");
      }
    } else if (seg.kind == kDeltaSegment) {
      if (seg.base >= i) {
        return err("store.bad-segment", at + ": delta base must be an earlier segment");
      }
      depth[i] = depth[seg.base] + 1;
      if (depth[i] > kMaxChainDepth) {
        return err("store.bad-segment", at + ": delta chain too deep");
      }
    } else {
      return err("store.bad-segment", at + ": unknown kind");
    }
    if (seg.offset < cursor || seg.offset % 8 != 0 || seg.offset > seg_table_off ||
        seg.stored > seg_table_off - seg.offset) {
      return err("store.bad-segment", at + ": data out of bounds");
    }
    if (seg.offset - cursor >= 8) {
      return err("store.bad-padding", at + ": oversized inter-segment gap");
    }
    for (std::uint64_t g = cursor; g < seg.offset; ++g) {
      if (p[g] != 0) return err("store.bad-padding", at + ": nonzero inter-segment padding");
    }
    if (fnv1a64(p + seg.offset, seg.stored) != seg.hash) {
      return err("store.checksum", at + ": stored-byte checksum mismatch");
    }
    cursor = seg.offset + seg.stored;
    if (seg.kind == kRawSegment) {
      ++stats.raw_segments;
      stats.raw_bytes += seg.stored;
    } else {
      ++stats.delta_segments;
      stats.delta_bytes += seg.stored;
    }
    view->segments_.push_back(seg);
  }
  if (seg_table_off - cursor >= 8) {
    return err("store.bad-padding", "oversized gap before the segment table");
  }
  for (std::uint64_t g = cursor; g < seg_table_off; ++g) {
    if (p[g] != 0) return err("store.bad-padding", "nonzero padding before the segment table");
  }

  // --- version table --------------------------------------------------------
  view->versions_.reserve(version_count);
  for (std::uint64_t v = 0; v < version_count; ++v) {
    const std::uint64_t rec_off = ver_table_off + v * kVersionRecordBytes;
    const std::string at = "version " + std::to_string(v);
    const auto parsed = snapshot::parse_header(
        std::span<const std::uint8_t>(p + rec_off, snapshot::kHeaderBytes));
    if (!parsed.ok()) {
      return err("store.bad-record", at + ": " + parsed.error().code + ": " +
                                         parsed.error().message);
    }
    const snapshot::HeaderView& h = *parsed;
    VersionRecord rec;
    rec.meta = h.meta;
    rec.header_offset = rec_off;
    const std::uint64_t section_bytes[4] = {h.nodes_bytes, h.hashes_bytes, h.children_bytes,
                                            h.pool_bytes};
    for (int s = 0; s < 4; ++s) {
      rec.seg[s] = get_u32(p + rec_off + snapshot::kHeaderBytes +
                           static_cast<std::uint64_t>(4 * s));
      if (rec.seg[s] >= segment_count) {
        return err("store.bad-record", at + ": segment index out of range");
      }
      rec.section_bytes[s] = section_bytes[s];
      if (view->segments_[rec.seg[s]].decoded != section_bytes[s]) {
        return err("store.bad-record", at + ": segment size does not match the header");
      }
    }
    if (!view->versions_.empty() &&
        !(view->versions_.back().meta.source_date < rec.meta.source_date)) {
      return err("store.bad-record", "version dates must be strictly increasing");
    }
    view->versions_.push_back(rec);
  }
  if (view->versions_.back().meta.source_date.days_since_epoch() != newest_days) {
    return err("store.bad-header", "newest-date field does not match the last version");
  }

  stats.file_bytes = size;
  stats.standalone_bytes = standalone_bytes;
  stats.version_count = version_count;
  stats.segment_count = segment_count;
  view->stats_ = stats;
  view->decoded_.resize(segment_count);
  view->materialized_.resize(version_count);
  return std::shared_ptr<const StoreView>(std::move(view));
}

util::Result<std::size_t> StoreView::version_index_at(util::Date date) const {
  if (date < versions_.front().meta.source_date) {
    return err("store.no-version", "date " + date.to_string() +
                                       " precedes the first stored version (" +
                                       versions_.front().meta.source_date.to_string() + ")");
  }
  // Last version with source_date <= date.
  std::size_t lo = 0, hi = versions_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (versions_[mid].meta.source_date <= date) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

util::Result<std::pair<std::span<const std::uint8_t>, std::shared_ptr<const void>>>
StoreView::segment_bytes(std::uint32_t s) const {
  const Segment& seg = segments_[s];
  const std::span<const std::uint8_t> stored(mapping_->data + seg.offset,
                                             static_cast<std::size_t>(seg.stored));
  if (seg.kind == kRawSegment) {
    // Zero-copy: the bytes live in the mapping, which the caller's retain
    // struct keeps alive alongside any decoded buffers.
    return std::make_pair(stored, std::shared_ptr<const void>());
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (decoded_[s]) {
      const auto& buf = decoded_[s];
      return std::make_pair(
          std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(buf->data()),
                                        static_cast<std::size_t>(seg.decoded)),
          std::shared_ptr<const void>(buf));
    }
  }
  auto base = segment_bytes(seg.base);  // recursion bounded by kMaxChainDepth
  if (!base.ok()) return base.error();
  auto buf = std::make_shared<std::vector<std::uint64_t>>(
      (static_cast<std::size_t>(seg.decoded) + 7) / 8);
  const std::span<std::uint8_t> out(reinterpret_cast<std::uint8_t*>(buf->data()),
                                    static_cast<std::size_t>(seg.decoded));
  const auto decoded = decode_delta(stored, base->first, out);
  if (!decoded.ok()) {
    return err("store.bad-delta",
               "segment " + std::to_string(s) + ": " + decoded.error().message);
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (!decoded_[s]) decoded_[s] = std::move(buf);  // first decoder wins
  const auto& winner = decoded_[s];
  return std::make_pair(
      std::span<const std::uint8_t>(reinterpret_cast<const std::uint8_t*>(winner->data()),
                                    static_cast<std::size_t>(seg.decoded)),
      std::shared_ptr<const void>(winner));
}

util::Result<snapshot::Snapshot> StoreView::open_version(std::size_t v) const {
  if (v >= versions_.size()) {
    return err("store.no-version", "version index " + std::to_string(v) + " out of range");
  }
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (materialized_[v]) return *materialized_[v];
  }
  const VersionRecord& rec = versions_[v];

  /// Keeps every buffer a materialized Snapshot points into alive: the whole
  /// mapping (raw sections + the verbatim header) and any decoded delta
  /// buffers — so Snapshots outlive the StoreView itself.
  struct Retain {
    std::shared_ptr<const Mapping> mapping;
    std::shared_ptr<const void> sections[4];
  };
  auto retain = std::make_shared<Retain>();
  retain->mapping = mapping_;
  std::span<const std::uint8_t> sections[4];
  for (int s = 0; s < 4; ++s) {
    auto bytes = segment_bytes(rec.seg[s]);
    if (!bytes.ok()) return bytes.error();
    sections[s] = bytes->first;
    retain->sections[s] = bytes->second;
  }
  const std::span<const std::uint8_t> header(mapping_->data + rec.header_offset,
                                             snapshot::kHeaderBytes);
  // Full snapshot validation, checksums included, against the VERBATIM
  // standalone header — this is the bit-identity proof (a reassembly bug or
  // store corruption surfaces here, not in query answers).
  auto snap = snapshot::load_view_sections(header, sections[0], sections[1], sections[2],
                                           sections[3], std::move(retain));
  if (!snap.ok()) return snap.error();
  std::lock_guard<std::mutex> lock(cache_mutex_);
  if (!materialized_[v]) materialized_[v] = std::move(*snap);
  return *materialized_[v];
}

util::Result<snapshot::Snapshot> StoreView::open_at(util::Date date) const {
  auto idx = version_index_at(date);
  if (!idx.ok()) return idx.error();
  return open_version(*idx);
}

util::Result<std::vector<DivergenceRange>> StoreView::divergence(std::string_view host) const {
  std::vector<DivergenceRange> out;
  for (std::size_t v = 0; v < versions_.size(); ++v) {
    auto snap = open_version(v);
    if (!snap.ok()) return snap.error();
    const MatchView m = snap->matcher.match_view(host);
    const util::Date date = versions_[v].meta.source_date;
    if (out.empty() || out.back().registrable_domain != m.registrable_domain) {
      out.push_back(DivergenceRange{date, date, std::string(m.registrable_domain)});
    } else {
      out.back().last_date = date;
    }
  }
  return out;
}

}  // namespace psl::store
