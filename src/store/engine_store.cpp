// serve::Engine's multi-version store methods. They live in psl_store (not
// psl_serve) so the serve library does not depend on the store layer: the
// engine holds the store behind a forward-declared shared_ptr, and only
// binaries that actually use time-travel (psl_net, psld, psltool, tests)
// link these definitions in.

#include "psl/serve/engine.hpp"
#include "psl/store/store.hpp"

namespace psl::serve {

util::Result<std::uint64_t> Engine::open_store(const std::string& path) {
  auto view = store::StoreView::open(path);
  if (!view.ok()) {
    if (reload_failure_) reload_failure_->add();
    return view.error();
  }
  return adopt_store(std::move(*view));
}

util::Result<std::uint64_t> Engine::adopt_store(std::shared_ptr<const store::StoreView> view) {
  if (!view) {
    if (reload_failure_) reload_failure_->add();
    return util::make_error("store.none", "adopt_store called with a null store view");
  }
  // Materialize the newest version BEFORE publishing anything: a store whose
  // tip fails full snapshot validation must leave both the current store and
  // the serving state untouched (keep-last-good, same contract as
  // reload_snapshot).
  auto snap = view->open_version(view->version_count() - 1);
  if (!snap.ok()) {
    if (reload_failure_) reload_failure_->add();
    return snap.error();
  }
  {
    std::lock_guard<std::mutex> lock(store_mutex_);
    store_ = std::move(view);
  }
  return swap(std::move(*snap));
}

std::shared_ptr<const store::StoreView> Engine::store_view() const {
  std::lock_guard<std::mutex> lock(store_mutex_);
  return store_;
}

util::Result<snapshot::Snapshot> Engine::version_at(util::Date date) const {
  const auto view = store_view();
  if (!view) return util::make_error("store.none", "engine has no store attached");
  return view->open_at(date);
}

util::Result<std::uint64_t> Engine::pin_version(util::Date date) {
  auto snap = version_at(date);
  if (!snap.ok()) {
    if (reload_failure_) reload_failure_->add();
    return snap.error();
  }
  return swap(std::move(*snap));
}

util::Result<std::vector<store::DivergenceRange>> Engine::divergence(
    std::string_view host) const {
  const auto view = store_view();
  if (!view) return util::make_error("store.none", "engine has no store attached");
  return view->divergence(host);
}

}  // namespace psl::serve
