#include "psl/dns/server.hpp"

#include <algorithm>
#include <cassert>

namespace psl::dns {

Zone::Zone(Name origin, SoaRecord soa, std::uint32_t soa_ttl)
    : origin_(std::move(origin)), soa_(std::move(soa)), soa_ttl_(soa_ttl) {}

void Zone::add(ResourceRecord record) {
  assert(record.name.is_subdomain_of(origin_));
  records_.push_back(std::move(record));
}

void Zone::add_a(const Name& name, std::array<std::uint8_t, 4> address, std::uint32_t ttl) {
  add(ResourceRecord{name, Type::kA, ttl, ARecord{address}});
}

void Zone::add_txt(const Name& name, std::string text, std::uint32_t ttl) {
  add(ResourceRecord{name, Type::kTxt, ttl, TxtRecord{{std::move(text)}}});
}

void Zone::add_cname(const Name& name, Name target, std::uint32_t ttl) {
  add(ResourceRecord{name, Type::kCname, ttl, CnameRecord{std::move(target)}});
}

void Zone::add_mx(const Name& name, std::uint16_t preference, Name exchange,
                  std::uint32_t ttl) {
  add(ResourceRecord{name, Type::kMx, ttl, MxRecord{preference, std::move(exchange)}});
}

std::size_t Zone::remove(const Name& name) {
  const auto before = records_.size();
  std::erase_if(records_, [&](const ResourceRecord& rr) { return rr.name == name; });
  return before - records_.size();
}

std::vector<const ResourceRecord*> Zone::find(const Name& name, Type type) const {
  std::vector<const ResourceRecord*> out;
  for (const ResourceRecord& rr : records_) {
    if (rr.name == name && rr.type == type) out.push_back(&rr);
  }
  return out;
}

bool Zone::name_exists(const Name& name) const {
  return std::any_of(records_.begin(), records_.end(),
                     [&](const ResourceRecord& rr) { return rr.name == name; });
}

void AuthServer::add_zone(Zone zone) { zones_.push_back(std::move(zone)); }

Zone* AuthServer::find_zone(const Name& qname) {
  return const_cast<Zone*>(static_cast<const AuthServer*>(this)->find_zone(qname));
}

const Zone* AuthServer::find_zone(const Name& qname) const {
  const Zone* best = nullptr;
  for (const Zone& zone : zones_) {
    if (!qname.is_subdomain_of(zone.origin())) continue;
    if (best == nullptr || zone.origin().label_count() > best->origin().label_count()) {
      best = &zone;
    }
  }
  return best;
}

Message AuthServer::handle(const Message& query) const {
  ++queries_handled_;

  Message reply;
  reply.header.id = query.header.id;
  reply.header.qr = true;
  reply.header.rd = query.header.rd;
  reply.questions = query.questions;

  if (query.questions.size() != 1) {
    reply.header.rcode = Rcode::kFormErr;
    return reply;
  }
  const Question& q = query.questions.front();

  const Zone* zone = find_zone(q.qname);
  if (zone == nullptr) {
    reply.header.rcode = Rcode::kRefused;  // not authoritative for the name
    return reply;
  }
  reply.header.aa = true;

  // Chase CNAMEs within the zone (bounded: a chain longer than 8 is a
  // configuration error, answer what we have).
  Name current = q.qname;
  for (int hops = 0; hops < 8; ++hops) {
    const auto exact = zone->find(current, q.qtype);
    if (!exact.empty()) {
      for (const ResourceRecord* rr : exact) reply.answers.push_back(*rr);
      return reply;
    }
    const auto cname = zone->find(current, Type::kCname);
    if (!cname.empty() && q.qtype != Type::kCname) {
      reply.answers.push_back(*cname.front());
      current = std::get<CnameRecord>(cname.front()->rdata).cname;
      if (!current.is_subdomain_of(zone->origin())) break;  // out-of-zone target
      continue;
    }
    break;
  }

  // No data: distinguish NODATA (name exists) from NXDOMAIN.
  if (!zone->name_exists(q.qname) && q.qname != zone->origin()) {
    reply.header.rcode = Rcode::kNxDomain;
  }
  reply.authority.push_back(
      ResourceRecord{zone->origin(), Type::kSoa, zone->soa_ttl(), zone->soa()});
  return reply;
}

std::vector<std::uint8_t> AuthServer::handle_wire(const std::uint8_t* data,
                                                  std::size_t len) const {
  auto query = decode(data, len);
  if (!query) {
    Message formerr;
    formerr.header.qr = true;
    formerr.header.rcode = Rcode::kFormErr;
    // Best effort: echo the id if at least two bytes arrived.
    if (len >= 2) {
      formerr.header.id = static_cast<std::uint16_t>((data[0] << 8) | data[1]);
    }
    return encode(formerr);
  }
  return encode(handle(*query));
}

}  // namespace psl::dns
