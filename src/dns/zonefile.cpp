#include "psl/dns/zonefile.hpp"

#include <charconv>
#include <optional>
#include <vector>

#include "psl/util/strings.hpp"

namespace psl::dns {

namespace {

util::Error at_line(std::size_t line_no, std::string code, std::string message) {
  return util::make_error(std::move(code),
                          "line " + std::to_string(line_no) + ": " + std::move(message));
}

/// Tokenise one zone-file line: whitespace-separated fields, double-quoted
/// strings kept intact (quotes stripped), ';' starts a comment.
util::Result<std::vector<std::string>> tokenize(std::string_view line, std::size_t line_no) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == ';') break;  // comment
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (c == '"') {
      const std::size_t close = line.find('"', i + 1);
      if (close == std::string_view::npos) {
        return at_line(line_no, "zonefile.unterminated-string", "missing closing quote");
      }
      out.emplace_back(line.substr(i + 1, close - i - 1));
      i = close + 1;
      continue;
    }
    std::size_t end = i;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t' && line[end] != ';') {
      ++end;
    }
    out.emplace_back(line.substr(i, end - i));
    i = end;
  }
  return out;
}

util::Result<std::uint32_t> parse_u32(std::string_view field, std::size_t line_no) {
  std::uint32_t value = 0;
  const auto [ptr, ec] = std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec != std::errc{} || ptr != field.data() + field.size()) {
    return at_line(line_no, "zonefile.bad-number",
                   "expected a number, got '" + std::string(field) + "'");
  }
  return value;
}

/// Resolve a possibly-relative owner/target name against the origin.
util::Result<Name> resolve_name(std::string_view token, const std::optional<Name>& origin,
                                std::size_t line_no) {
  if (token == "@") {
    if (!origin) return at_line(line_no, "zonefile.no-origin", "'@' with no $ORIGIN");
    return *origin;
  }
  if (!token.empty() && token.back() == '.') {
    return Name::parse(token);  // absolute
  }
  if (!origin) {
    return at_line(line_no, "zonefile.no-origin",
                   "relative name '" + std::string(token) + "' with no $ORIGIN");
  }
  auto relative = Name::parse(token);
  if (!relative) return relative.error();
  std::vector<std::string> labels = relative->labels();
  labels.insert(labels.end(), origin->labels().begin(), origin->labels().end());
  return Name::from_labels(std::move(labels));
}

struct PendingRecord {
  ResourceRecord record;
};

}  // namespace

util::Result<Zone> parse_zone_file(std::string_view text) {
  std::optional<Name> origin;
  std::uint32_t default_ttl = 3600;
  std::optional<Name> last_owner;

  std::optional<SoaRecord> soa;
  std::uint32_t soa_ttl = 3600;
  std::optional<Name> soa_owner;
  std::vector<ResourceRecord> records;

  std::size_t line_no = 0;
  for (std::string_view raw_line : util::split(text, '\n')) {
    ++line_no;
    // Leading whitespace means "same owner as the previous record".
    const bool continuation =
        !raw_line.empty() && (raw_line.front() == ' ' || raw_line.front() == '\t');

    auto tokens = tokenize(raw_line, line_no);
    if (!tokens) return tokens.error();
    if (tokens->empty()) continue;
    std::size_t cursor = 0;

    // Directives.
    if ((*tokens)[0] == "$ORIGIN") {
      if (tokens->size() < 2) return at_line(line_no, "zonefile.bad-directive", "$ORIGIN needs a name");
      auto name = Name::parse((*tokens)[1]);
      if (!name) return name.error();
      origin = *std::move(name);
      continue;
    }
    if ((*tokens)[0] == "$TTL") {
      if (tokens->size() < 2) return at_line(line_no, "zonefile.bad-directive", "$TTL needs a value");
      auto ttl = parse_u32((*tokens)[1], line_no);
      if (!ttl) return ttl.error();
      default_ttl = *ttl;
      continue;
    }

    // Owner name.
    Name owner;
    if (continuation) {
      if (!last_owner) {
        return at_line(line_no, "zonefile.no-owner", "continuation line before any record");
      }
      owner = *last_owner;
    } else {
      auto resolved = resolve_name((*tokens)[cursor], origin, line_no);
      if (!resolved) return resolved.error();
      owner = *std::move(resolved);
      ++cursor;
    }

    // Optional TTL, optional class "IN", then the type.
    std::uint32_t ttl = default_ttl;
    if (cursor < tokens->size()) {
      std::uint32_t value = 0;
      const std::string& tok = (*tokens)[cursor];
      const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), value);
      if (ec == std::errc{} && ptr == tok.data() + tok.size()) {
        ttl = value;
        ++cursor;
      }
    }
    if (cursor < tokens->size() && util::to_lower((*tokens)[cursor]) == "in") ++cursor;
    if (cursor >= tokens->size()) {
      return at_line(line_no, "zonefile.no-type", "missing record type");
    }
    const std::string type = util::to_lower((*tokens)[cursor]);
    ++cursor;

    const auto need = [&](std::size_t n) -> bool { return tokens->size() - cursor >= n; };

    if (type == "soa") {
      if (!need(7)) return at_line(line_no, "zonefile.bad-soa", "SOA needs 7 fields");
      if (soa) return at_line(line_no, "zonefile.duplicate-soa", "second SOA record");
      SoaRecord record;
      auto mname = resolve_name((*tokens)[cursor++], origin, line_no);
      if (!mname) return mname.error();
      record.mname = *std::move(mname);
      auto rname = resolve_name((*tokens)[cursor++], origin, line_no);
      if (!rname) return rname.error();
      record.rname = *std::move(rname);
      for (std::uint32_t* field :
           {&record.serial, &record.refresh, &record.retry, &record.expire, &record.minimum}) {
        auto value = parse_u32((*tokens)[cursor++], line_no);
        if (!value) return value.error();
        *field = *value;
      }
      soa = std::move(record);
      soa_ttl = ttl;
      soa_owner = owner;
    } else if (type == "a") {
      if (!need(1)) return at_line(line_no, "zonefile.bad-a", "A needs an address");
      const std::string& addr = (*tokens)[cursor++];
      std::array<std::uint8_t, 4> octets{};
      int part = 0;
      std::size_t start = 0;
      for (int k = 0; k < 4; ++k) {
        const std::size_t dot = addr.find('.', start);
        const std::string_view field(addr.data() + start,
                                     (dot == std::string::npos ? addr.size() : dot) - start);
        auto value = parse_u32(field, line_no);
        if (!value || *value > 255 || (k < 3 && dot == std::string::npos)) {
          return at_line(line_no, "zonefile.bad-a", "invalid IPv4 address");
        }
        octets[static_cast<std::size_t>(part++)] = static_cast<std::uint8_t>(*value);
        start = dot + 1;
      }
      records.push_back(ResourceRecord{owner, Type::kA, ttl, ARecord{octets}});
    } else if (type == "ns") {
      if (!need(1)) return at_line(line_no, "zonefile.bad-ns", "NS needs a target");
      auto target = resolve_name((*tokens)[cursor++], origin, line_no);
      if (!target) return target.error();
      records.push_back(ResourceRecord{owner, Type::kNs, ttl, NsRecord{*std::move(target)}});
    } else if (type == "cname") {
      if (!need(1)) return at_line(line_no, "zonefile.bad-cname", "CNAME needs a target");
      auto target = resolve_name((*tokens)[cursor++], origin, line_no);
      if (!target) return target.error();
      records.push_back(
          ResourceRecord{owner, Type::kCname, ttl, CnameRecord{*std::move(target)}});
    } else if (type == "mx") {
      if (!need(2)) return at_line(line_no, "zonefile.bad-mx", "MX needs preference + target");
      auto pref = parse_u32((*tokens)[cursor++], line_no);
      if (!pref) return pref.error();
      auto target = resolve_name((*tokens)[cursor++], origin, line_no);
      if (!target) return target.error();
      records.push_back(ResourceRecord{
          owner, Type::kMx, ttl,
          MxRecord{static_cast<std::uint16_t>(*pref), *std::move(target)}});
    } else if (type == "txt") {
      if (!need(1)) return at_line(line_no, "zonefile.bad-txt", "TXT needs a string");
      TxtRecord txt;
      while (cursor < tokens->size()) txt.strings.push_back((*tokens)[cursor++]);
      records.push_back(ResourceRecord{owner, Type::kTxt, ttl, std::move(txt)});
    } else {
      return at_line(line_no, "zonefile.unknown-type", "unsupported type '" + type + "'");
    }
    last_owner = owner;
  }

  if (!soa || !soa_owner) {
    return util::make_error("zonefile.no-soa", "zone file has no SOA record");
  }

  Zone zone(*soa_owner, *std::move(soa), soa_ttl);
  for (ResourceRecord& record : records) {
    if (!record.name.is_subdomain_of(zone.origin())) {
      return util::make_error("zonefile.out-of-zone",
                              "record " + record.name.to_string() + " outside origin " +
                                  zone.origin().to_string());
    }
    zone.add(std::move(record));
  }
  return zone;
}

}  // namespace psl::dns
