#include "psl/dns/resolver.hpp"

#include <algorithm>

namespace psl::dns {

ResolveResult StubResolver::query(const Name& name, Type type, std::uint64_t now) {
  const auto key = std::make_pair(name, type);
  const auto it = cache_.find(key);
  if (it != cache_.end() && it->second.expires_at > now) {
    ++cache_hits_;
    ResolveResult hit;
    hit.rcode = it->second.rcode;
    hit.answers = it->second.answers;
    hit.from_cache = true;
    return hit;
  }

  // Cache miss: run the full wire round trip.
  Message query_msg;
  query_msg.header.id = next_id_++;
  query_msg.questions.push_back(Question{name, type});
  const std::vector<std::uint8_t> reply_wire = server_->handle_wire(encode(query_msg));
  ++wire_queries_;

  ResolveResult result;
  auto reply = decode(reply_wire);
  if (!reply) {
    result.rcode = Rcode::kServFail;
    return result;
  }
  result.rcode = reply->header.rcode;
  result.answers = reply->answers;

  // TTL for the cache entry: minimum answer TTL on success; the SOA minimum
  // (negative TTL, RFC 2308) otherwise.
  std::uint32_t ttl = 0;
  if (!reply->answers.empty()) {
    ttl = reply->answers.front().ttl;
    for (const ResourceRecord& rr : reply->answers) ttl = std::min(ttl, rr.ttl);
  } else {
    for (const ResourceRecord& rr : reply->authority) {
      if (rr.type == Type::kSoa) {
        ttl = std::get<SoaRecord>(rr.rdata).minimum;
        break;
      }
    }
  }
  if (ttl > 0) {
    cache_[key] = CacheEntry{result.rcode, result.answers, now + ttl};
  }
  return result;
}

}  // namespace psl::dns
