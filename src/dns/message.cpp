#include "psl/dns/message.hpp"

namespace psl::dns {

std::string_view to_string(Type type) noexcept {
  switch (type) {
    case Type::kA: return "A";
    case Type::kNs: return "NS";
    case Type::kCname: return "CNAME";
    case Type::kSoa: return "SOA";
    case Type::kMx: return "MX";
    case Type::kTxt: return "TXT";
  }
  return "TYPE?";
}

std::string TxtRecord::joined() const {
  std::string out;
  for (const std::string& s : strings) out += s;
  return out;
}

namespace {

constexpr std::uint16_t kClassIn = 1;

void encode_record(WireWriter& w, const ResourceRecord& rr) {
  w.name(rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(kClassIn);
  w.u32(rr.ttl);

  const std::size_t rdlength_at = w.size();
  w.u16(0);  // back-patched
  const std::size_t rdata_start = w.size();

  std::visit(
      [&](const auto& data) {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, ARecord>) {
          w.bytes(data.address.data(), data.address.size());
        } else if constexpr (std::is_same_v<T, NsRecord>) {
          w.name(data.nsdname);
        } else if constexpr (std::is_same_v<T, CnameRecord>) {
          w.name(data.cname);
        } else if constexpr (std::is_same_v<T, MxRecord>) {
          w.u16(data.preference);
          w.name(data.exchange);
        } else if constexpr (std::is_same_v<T, SoaRecord>) {
          w.name(data.mname);
          w.name(data.rname);
          w.u32(data.serial);
          w.u32(data.refresh);
          w.u32(data.retry);
          w.u32(data.expire);
          w.u32(data.minimum);
        } else if constexpr (std::is_same_v<T, TxtRecord>) {
          for (const std::string& s : data.strings) {
            // Long strings are split into 255-octet character-strings.
            std::size_t offset = 0;
            do {
              const std::size_t chunk = std::min<std::size_t>(s.size() - offset, 255);
              w.u8(static_cast<std::uint8_t>(chunk));
              w.bytes(reinterpret_cast<const std::uint8_t*>(s.data()) + offset, chunk);
              offset += chunk;
            } while (offset < s.size());
            if (s.empty()) {
              // An explicitly empty character-string.
            }
          }
          if (data.strings.empty()) w.u8(0);
        }
      },
      rr.rdata);

  w.patch_u16(rdlength_at, static_cast<std::uint16_t>(w.size() - rdata_start));
}

util::Result<ResourceRecord> decode_record(WireReader& r) {
  ResourceRecord rr;
  auto name = r.name();
  if (!name) return name.error();
  rr.name = *std::move(name);

  auto type = r.u16();
  if (!type) return type.error();
  auto klass = r.u16();
  if (!klass) return klass.error();
  if (*klass != kClassIn) {
    return util::make_error("dns.bad-class", "only class IN is supported");
  }
  auto ttl = r.u32();
  if (!ttl) return ttl.error();
  rr.ttl = *ttl;
  auto rdlength = r.u16();
  if (!rdlength) return rdlength.error();
  const std::size_t rdata_end = r.position() + *rdlength;
  if (rdata_end > r.position() + r.remaining()) {
    return util::make_error("dns.truncated", "rdata past end");
  }

  switch (static_cast<Type>(*type)) {
    case Type::kA: {
      auto raw = r.bytes(4);
      if (!raw) return raw.error();
      ARecord a;
      std::copy(raw->begin(), raw->end(), a.address.begin());
      rr.type = Type::kA;
      rr.rdata = a;
      break;
    }
    case Type::kNs: {
      auto n = r.name();
      if (!n) return n.error();
      rr.type = Type::kNs;
      rr.rdata = NsRecord{*std::move(n)};
      break;
    }
    case Type::kCname: {
      auto n = r.name();
      if (!n) return n.error();
      rr.type = Type::kCname;
      rr.rdata = CnameRecord{*std::move(n)};
      break;
    }
    case Type::kSoa: {
      SoaRecord soa;
      auto mname = r.name();
      if (!mname) return mname.error();
      soa.mname = *std::move(mname);
      auto rname = r.name();
      if (!rname) return rname.error();
      soa.rname = *std::move(rname);
      for (std::uint32_t* field :
           {&soa.serial, &soa.refresh, &soa.retry, &soa.expire, &soa.minimum}) {
        auto v = r.u32();
        if (!v) return v.error();
        *field = *v;
      }
      rr.type = Type::kSoa;
      rr.rdata = std::move(soa);
      break;
    }
    case Type::kMx: {
      MxRecord mx;
      auto pref = r.u16();
      if (!pref) return pref.error();
      mx.preference = *pref;
      auto exchange = r.name();
      if (!exchange) return exchange.error();
      mx.exchange = *std::move(exchange);
      rr.type = Type::kMx;
      rr.rdata = std::move(mx);
      break;
    }
    case Type::kTxt: {
      TxtRecord txt;
      while (r.position() < rdata_end) {
        auto len = r.u8();
        if (!len) return len.error();
        auto raw = r.bytes(*len);
        if (!raw) return raw.error();
        txt.strings.emplace_back(raw->begin(), raw->end());
      }
      rr.type = Type::kTxt;
      rr.rdata = std::move(txt);
      break;
    }
    default:
      return util::make_error("dns.unknown-type",
                              "unsupported record type " + std::to_string(*type));
  }

  if (r.position() != rdata_end) {
    return util::make_error("dns.bad-rdlength", "rdata length mismatch");
  }
  return rr;
}

}  // namespace

std::vector<std::uint8_t> encode(const Message& message) {
  WireWriter w;
  w.u16(message.header.id);

  std::uint16_t flags = 0;
  if (message.header.qr) flags |= 0x8000;
  if (message.header.aa) flags |= 0x0400;
  if (message.header.tc) flags |= 0x0200;
  if (message.header.rd) flags |= 0x0100;
  if (message.header.ra) flags |= 0x0080;
  flags |= static_cast<std::uint16_t>(message.header.rcode);
  w.u16(flags);

  w.u16(static_cast<std::uint16_t>(message.questions.size()));
  w.u16(static_cast<std::uint16_t>(message.answers.size()));
  w.u16(static_cast<std::uint16_t>(message.authority.size()));
  w.u16(static_cast<std::uint16_t>(message.additional.size()));

  for (const Question& q : message.questions) {
    w.name(q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(kClassIn);
  }
  for (const ResourceRecord& rr : message.answers) encode_record(w, rr);
  for (const ResourceRecord& rr : message.authority) encode_record(w, rr);
  for (const ResourceRecord& rr : message.additional) encode_record(w, rr);
  return std::move(w).take();
}

util::Result<Message> decode(const std::uint8_t* data, std::size_t len) {
  WireReader r(data, len);
  Message m;

  auto id = r.u16();
  if (!id) return id.error();
  m.header.id = *id;
  auto flags = r.u16();
  if (!flags) return flags.error();
  m.header.qr = (*flags & 0x8000) != 0;
  m.header.aa = (*flags & 0x0400) != 0;
  m.header.tc = (*flags & 0x0200) != 0;
  m.header.rd = (*flags & 0x0100) != 0;
  m.header.ra = (*flags & 0x0080) != 0;
  m.header.rcode = static_cast<Rcode>(*flags & 0x000F);

  auto qd = r.u16();
  auto an = r.u16();
  auto ns = r.u16();
  auto ar = r.u16();
  if (!qd || !an || !ns || !ar) return util::make_error("dns.truncated", "header counts");

  for (std::uint16_t i = 0; i < *qd; ++i) {
    Question q;
    auto name = r.name();
    if (!name) return name.error();
    q.qname = *std::move(name);
    auto type = r.u16();
    if (!type) return type.error();
    q.qtype = static_cast<Type>(*type);
    auto klass = r.u16();
    if (!klass) return klass.error();
    if (*klass != kClassIn) {
      return util::make_error("dns.bad-class", "only class IN is supported");
    }
    m.questions.push_back(std::move(q));
  }

  auto read_records = [&](std::uint16_t count,
                          std::vector<ResourceRecord>& out) -> util::Result<bool> {
    for (std::uint16_t i = 0; i < count; ++i) {
      auto rr = decode_record(r);
      if (!rr) return rr.error();
      out.push_back(*std::move(rr));
    }
    return true;
  };
  if (auto ok = read_records(*an, m.answers); !ok) return ok.error();
  if (auto ok = read_records(*ns, m.authority); !ok) return ok.error();
  if (auto ok = read_records(*ar, m.additional); !ok) return ok.error();

  if (!r.at_end()) {
    return util::make_error("dns.trailing-bytes", "garbage after message");
  }
  return m;
}

}  // namespace psl::dns
