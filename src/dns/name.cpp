#include "psl/dns/name.hpp"

#include <algorithm>

#include "psl/util/strings.hpp"

namespace psl::dns {

namespace {

util::Result<bool> validate_label(std::string_view label) {
  if (label.empty()) {
    return util::make_error("dns.empty-label", "empty label");
  }
  if (label.size() > kMaxLabelLen) {
    return util::make_error("dns.label-too-long", "label exceeds 63 octets");
  }
  return true;
}

}  // namespace

util::Result<Name> Name::parse(std::string_view text) {
  text = util::trim(text);
  if (text.empty()) {
    return util::make_error("dns.empty-name", "empty name");
  }
  if (text == ".") return Name{};
  if (text.back() == '.') text.remove_suffix(1);

  std::vector<std::string> labels;
  for (std::string_view label : util::split(text, '.')) {
    auto ok = validate_label(label);
    if (!ok) return ok.error();
    labels.push_back(util::to_lower(label));
  }
  return from_labels(std::move(labels));
}

util::Result<Name> Name::from_labels(std::vector<std::string> labels) {
  std::size_t wire_len = 1;  // terminating root byte
  for (const std::string& label : labels) {
    auto ok = validate_label(label);
    if (!ok) return ok.error();
    wire_len += 1 + label.size();
  }
  if (wire_len > kMaxNameLen) {
    return util::make_error("dns.name-too-long", "name exceeds 255 octets");
  }
  Name n;
  n.labels_ = std::move(labels);
  return n;
}

std::string Name::to_string() const {
  if (labels_.empty()) return ".";
  return util::join(labels_, ".");
}

bool Name::is_subdomain_of(const Name& ancestor) const noexcept {
  if (ancestor.labels_.size() > labels_.size()) return false;
  return std::equal(ancestor.labels_.rbegin(), ancestor.labels_.rend(), labels_.rbegin());
}

Name Name::parent() const {
  Name n;
  n.labels_.assign(labels_.begin() + 1, labels_.end());
  return n;
}

util::Result<Name> Name::child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(util::to_lower(label));
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return from_labels(std::move(labels));
}

// --- WireWriter --------------------------------------------------------------

void WireWriter::u8(std::uint8_t v) { out_.push_back(v); }

void WireWriter::u16(std::uint16_t v) {
  out_.push_back(static_cast<std::uint8_t>(v >> 8));
  out_.push_back(static_cast<std::uint8_t>(v & 0xFF));
}

void WireWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v & 0xFFFF));
}

void WireWriter::bytes(const std::uint8_t* data, std::size_t len) {
  out_.insert(out_.end(), data, data + len);
}

void WireWriter::patch_u16(std::size_t offset, std::uint16_t v) {
  out_[offset] = static_cast<std::uint8_t>(v >> 8);
  out_[offset + 1] = static_cast<std::uint8_t>(v & 0xFF);
}

void WireWriter::name(const Name& n) {
  const auto& labels = n.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    // Dotted form of the remaining suffix, the compression-map key.
    std::string suffix;
    for (std::size_t k = i; k < labels.size(); ++k) {
      if (!suffix.empty()) suffix.push_back('.');
      suffix += labels[k];
    }
    const auto it = offsets_.find(suffix);
    if (it != offsets_.end()) {
      u16(static_cast<std::uint16_t>(0xC000 | it->second));
      return;
    }
    if (out_.size() < 0x4000) {
      offsets_.emplace(std::move(suffix), static_cast<std::uint16_t>(out_.size()));
    }
    u8(static_cast<std::uint8_t>(labels[i].size()));
    bytes(reinterpret_cast<const std::uint8_t*>(labels[i].data()), labels[i].size());
  }
  u8(0);  // root
}

// --- WireReader --------------------------------------------------------------

util::Result<std::uint8_t> WireReader::u8() {
  if (pos_ + 1 > len_) return util::make_error("dns.truncated", "u8 past end");
  return data_[pos_++];
}

util::Result<std::uint16_t> WireReader::u16() {
  if (pos_ + 2 > len_) return util::make_error("dns.truncated", "u16 past end");
  const std::uint16_t v =
      static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

util::Result<std::uint32_t> WireReader::u32() {
  auto hi = u16();
  if (!hi) return hi.error();
  auto lo = u16();
  if (!lo) return lo.error();
  return (static_cast<std::uint32_t>(*hi) << 16) | *lo;
}

util::Result<std::vector<std::uint8_t>> WireReader::bytes(std::size_t count) {
  if (pos_ + count > len_) return util::make_error("dns.truncated", "bytes past end");
  std::vector<std::uint8_t> out(data_ + pos_, data_ + pos_ + count);
  pos_ += count;
  return out;
}

util::Result<Name> WireReader::name() {
  std::vector<std::string> labels;
  std::size_t pos = pos_;
  std::size_t consumed_end = 0;  // where parsing resumes after the first pointer
  int jumps = 0;

  while (true) {
    if (pos >= len_) return util::make_error("dns.truncated", "name past end");
    const std::uint8_t len = data_[pos];

    if ((len & 0xC0) == 0xC0) {
      if (pos + 2 > len_) return util::make_error("dns.truncated", "pointer past end");
      if (++jumps > 32) {
        return util::make_error("dns.pointer-loop", "too many compression pointers");
      }
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | data_[pos + 1];
      if (consumed_end == 0) consumed_end = pos + 2;
      if (target >= pos) {
        return util::make_error("dns.bad-pointer", "forward compression pointer");
      }
      pos = target;
      continue;
    }
    if ((len & 0xC0) != 0) {
      return util::make_error("dns.bad-label-type", "reserved label type");
    }
    if (len == 0) {
      if (consumed_end == 0) consumed_end = pos + 1;
      break;
    }
    if (pos + 1 + len > len_) {
      return util::make_error("dns.truncated", "label past end");
    }
    labels.emplace_back(reinterpret_cast<const char*>(data_ + pos + 1), len);
    pos += 1 + len;
  }

  pos_ = consumed_end;
  return Name::from_labels(std::move(labels));
}

}  // namespace psl::dns
