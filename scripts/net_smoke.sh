#!/usr/bin/env bash
# Loopback end-to-end smoke for psld: compile a snapshot, serve it, query it
# over the PSLN wire protocol, hot-reload via SIGHUP (answers must flip,
# keep-last-good must hold for a corrupt file) and via a wire-level
# `psld reload`, prove the push channel (a subscribed `psld watch` is told
# about a SIGHUP reload without issuing a single query), then drain via
# SIGTERM and require a clean exit 0. A second
# act covers the multi-version store: psltool store build from two dated
# lists, psld --store, match-at answers flipping across the version
# boundary, divergence ranges, a corrupted store rejected at boot, and the
# handlers-before-listener fix (SIGTERM during startup still drains
# cleanly). A third act covers streaming analytics: psld --analytics, a
# psltool-generated corpus replayed into the census, aggregates read back
# over the wire, and a SIGHUP hot swap starting a fresh census for the new
# generation while ingest keeps flowing. A fourth act covers the sharded
# deployment: psld --shards 3 --udp on one SO_REUSEPORT port, queries over
# TCP and the UDP fast path, a SIGHUP flipping every shard to the same latch
# generation, one shard SIGKILLed under live query load (service keeps
# answering; the parent respawns it and the replacement adopts the latch
# generation, not generation 1), and a clean fleet-wide drain.
#
# Every daemon listens on 127.0.0.1:0 — the kernel picks a free ephemeral
# port, the banner names it, and the script greps it back out; nothing here
# can collide with another test's port again. Snapshots are published by
# rename (tmp + mv), never overwritten in place: the daemon serves them from
# shared mappings, and rewriting a mapped file would corrupt live memory.
# CI runs this against the freshly built tree:
#
#   scripts/net_smoke.sh build/examples/psld [build/examples/psltool]
set -euo pipefail

PSLD=${1:-build/examples/psld}
if [[ ! -x "$PSLD" ]]; then
  echo "net_smoke: psld binary not found at $PSLD" >&2
  exit 2
fi
PSLD=$(readlink -f "$PSLD")
PSLTOOL=${2:-$(dirname "$PSLD")/psltool}
if [[ ! -x "$PSLTOOL" ]]; then
  echo "net_smoke: psltool binary not found at $PSLTOOL" >&2
  exit 2
fi
PSLTOOL=$(readlink -f "$PSLTOOL")

WORK=$(mktemp -d)
DAEMON_PID=
STORE_PID=
WATCH_PID=
trap 'kill "$DAEMON_PID" "$STORE_PID" "$WATCH_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
cd "$WORK"

fail() {
  echo "net_smoke: FAIL: $*" >&2
  [[ -f psld.log ]] && sed 's/^/net_smoke: psld| /' psld.log >&2
  [[ -f psld_store.log ]] && sed 's/^/net_smoke: psld-store| /' psld_store.log >&2
  [[ -f psld_shards.log ]] && sed 's/^/net_smoke: psld-shards| /' psld_shards.log >&2
  exit 1
}

# Daemons bind 127.0.0.1:0 and the kernel's pick is announced in the
# "serving generation ... on 127.0.0.1:PORT" banner; fish it back out.
bound_port() {
  sed -n 's/.*serving generation .* on 127\.0\.0\.1:\([0-9]*\).*/\1/p' "$1" | head -1
}

# --- compile two list vintages -------------------------------------------
printf 'com\nuk\nco.uk\ngithub.io\n' > list_a.txt
printf 'com\nuk\nco.uk\ngithub.io\nmyshopify.com\n' > list_b.txt
"$PSLD" compile list_a.txt a.psnap
"$PSLD" compile list_b.txt b.psnap

# --- boot the daemon on an ephemeral port the kernel picks ----------------
cp a.psnap live.psnap
"$PSLD" --listen 127.0.0.1:0 --snapshot live.psnap --threads 2 > psld.log 2> psld.err &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  grep -q "serving generation" psld.log 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
grep -q "serving generation 1" psld.log || fail "daemon did not report generation 1"
PORT=$(bound_port psld.log)
[[ -n "$PORT" && "$PORT" -gt 0 ]] || fail "could not read bound port from the banner"
ADDR="127.0.0.1:$PORT"

# --- liveness + queries under the first vintage --------------------------
"$PSLD" ping "$ADDR" | grep -qx "pong" || fail "ping"
"$PSLD" query "$ADDR" shop1.myshopify.com a.b.co.uk user.github.io > q1.txt
grep -qx "shop1.myshopify.com myshopify.com" q1.txt \
  || fail "expected myshopify.com registrable under list_a, got: $(cat q1.txt)"
grep -qx "a.b.co.uk b.co.uk" q1.txt || fail "co.uk query: $(cat q1.txt)"
grep -qx "user.github.io user.github.io" q1.txt || fail "github.io query: $(cat q1.txt)"
"$PSLD" stats "$ADDR" | grep -q "generation 1, 4 rules" || fail "stats before reload"

# --- SIGHUP hot reload: the answer must flip -----------------------------
# Publish by rename: the daemon maps live.psnap shared, so the new bytes
# must arrive under a fresh inode, never by rewriting the mapped file.
cp b.psnap stage.psnap && mv stage.psnap live.psnap
kill -HUP "$DAEMON_PID"
for _ in $(seq 1 100); do
  grep -q "generation 2" psld.log 2>/dev/null && break
  sleep 0.1
done
grep -q "reloaded .* generation 2" psld.log || fail "SIGHUP reload did not land"
"$PSLD" query "$ADDR" shop1.myshopify.com > q2.txt
grep -qx "shop1.myshopify.com shop1.myshopify.com" q2.txt \
  || fail "reload did not flip the myshopify answer: $(cat q2.txt)"
"$PSLD" stats "$ADDR" | grep -q "generation 2, 5 rules" || fail "stats after reload"

# --- keep-last-good: a corrupt snapshot must be rejected, serving intact --
printf 'not a snapshot' > stage.psnap && mv stage.psnap live.psnap
kill -HUP "$DAEMON_PID"
for _ in $(seq 1 100); do
  grep -q "reload rejected" psld.log 2>/dev/null && break
  sleep 0.1
done
grep -q "reload rejected .*, still serving generation 2" psld.log \
  || fail "corrupt reload was not rejected keep-last-good"
"$PSLD" query "$ADDR" shop1.myshopify.com | grep -qx "shop1.myshopify.com shop1.myshopify.com" \
  || fail "serving disturbed after rejected reload"

# --- wire reload: push a snapshot over the PSLN protocol -----------------
"$PSLD" reload "$ADDR" a.psnap | grep -q "generation 3" || fail "wire reload"
"$PSLD" query "$ADDR" shop1.myshopify.com | grep -qx "shop1.myshopify.com myshopify.com" \
  || fail "wire reload did not flip the answer back: $("$PSLD" query "$ADDR" shop1.myshopify.com)"
"$PSLD" stats "$ADDR" | grep -q "generation 3, 4 rules" || fail "stats after wire reload"

# --- push channel: a subscriber is TOLD about reloads, no polling --------
# `psld watch N` subscribes and then only drains pushes — it never sends a
# query frame after the subscribe handshake, so the "pushed generation" line
# can only come from a server-initiated generation_changed push.
"$PSLD" watch "$ADDR" 1 > watch.log 2> watch.err &
WATCH_PID=$!
for _ in $(seq 1 100); do
  grep -q "watching from generation 3" watch.log 2>/dev/null && break
  kill -0 "$WATCH_PID" 2>/dev/null || fail "watcher died during subscribe: $(cat watch.err)"
  sleep 0.1
done
grep -q "watching from generation 3" watch.log || fail "watcher did not subscribe"

cp b.psnap stage.psnap && mv stage.psnap live.psnap
kill -HUP "$DAEMON_PID"
for _ in $(seq 1 100); do
  grep -q "pushed generation 4" watch.log 2>/dev/null && break
  sleep 0.1
done
grep -qx "psld: pushed generation 4 (5 rules, delta +1)" watch.log \
  || fail "push notification missing or wrong: $(cat watch.log)"
STATUS=0
wait "$WATCH_PID" || STATUS=$?  # count=1: exits 0 after that one push
[[ "$STATUS" -eq 0 ]] || fail "watcher exited $STATUS"
WATCH_PID=

# --- SIGTERM: graceful drain, exit 0 -------------------------------------
kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
[[ "$STATUS" -eq 0 ]] || fail "daemon exited $STATUS on SIGTERM"
grep -q "psld: bye" psld.log || fail "daemon did not drain cleanly"
grep -q '"net.accepted"' psld.err || fail "metrics dump missing from stderr"

# ==========================================================================
# Act 2: the multi-version store. Build one store from the two dated list
# vintages, serve it with --store, and drive the time-travel frames.
# ==========================================================================
"$PSLTOOL" store build hist.pstore \
  --list 2020-01-01:list_a.txt --list 2021-01-01:list_b.txt > store_build.txt \
  || fail "psltool store build"
grep -q "2 versions" store_build.txt || fail "store build report: $(cat store_build.txt)"
"$PSLTOOL" store stat hist.pstore | grep -q "versions:  2" || fail "store stat"

"$PSLD" --listen 127.0.0.1:0 --store hist.pstore --threads 2 \
  > psld_store.log 2> psld_store.err &
STORE_PID=$!
for _ in $(seq 1 100); do
  grep -q "serving generation" psld_store.log 2>/dev/null && break
  kill -0 "$STORE_PID" 2>/dev/null || fail "store daemon died during startup"
  sleep 0.1
done
grep -q "\[store\]" psld_store.log || fail "store daemon did not report store mode"
STORE_PORT=$(bound_port psld_store.log)
[[ -n "$STORE_PORT" ]] || fail "could not read the store daemon's bound port"
STORE_ADDR="127.0.0.1:$STORE_PORT"

# match-at answers must flip across the 2021-01-01 version boundary.
"$PSLD" match-at "$STORE_ADDR" 2020-06-01 shop1.myshopify.com > ma1.txt
grep -q "version 2020-01-01" ma1.txt || fail "match-at resolved wrong version: $(cat ma1.txt)"
grep -qx "shop1.myshopify.com myshopify.com" ma1.txt \
  || fail "match-at under the old vintage: $(cat ma1.txt)"
"$PSLD" match-at "$STORE_ADDR" 2021-06-01 shop1.myshopify.com > ma2.txt
grep -q "version 2021-01-01" ma2.txt || fail "match-at resolved wrong version: $(cat ma2.txt)"
grep -qx "shop1.myshopify.com shop1.myshopify.com" ma2.txt \
  || fail "match-at did not flip past the boundary: $(cat ma2.txt)"
# A date before the first stored version is a clean wire-level error.
"$PSLD" match-at "$STORE_ADDR" 2019-01-01 a.com 2>/dev/null \
  && fail "match-at before the first version should fail" || true

# divergence: exactly the two ranges, oldest first.
"$PSLD" divergence "$STORE_ADDR" shop1.myshopify.com > div.txt
grep -qx "2020-01-01..2020-01-01 myshopify.com" div.txt \
  || fail "divergence first range: $(cat div.txt)"
grep -qx "2021-01-01..2021-01-01 shop1.myshopify.com" div.txt \
  || fail "divergence second range: $(cat div.txt)"
[[ $(wc -l < div.txt) -eq 2 ]] || fail "divergence range count: $(cat div.txt)"

# The plain current-generation path still serves the newest version.
"$PSLD" query "$STORE_ADDR" shop1.myshopify.com \
  | grep -qx "shop1.myshopify.com shop1.myshopify.com" || fail "store daemon query"

kill -TERM "$STORE_PID"
STATUS=0
wait "$STORE_PID" || STATUS=$?
[[ "$STATUS" -eq 0 ]] || fail "store daemon exited $STATUS on SIGTERM"
grep -q "psld: bye" psld_store.log || fail "store daemon did not drain cleanly"
STORE_PID=

# A corrupted store (one flipped byte mid-file) must be rejected at boot.
cp hist.pstore corrupt.pstore
SIZE=$(stat -c %s corrupt.pstore)
printf '\xff' | dd of=corrupt.pstore bs=1 seek=$(( SIZE / 2 )) conv=notrunc status=none
if "$PSLD" --listen 127.0.0.1:0 --store corrupt.pstore > corrupt.log 2>&1; then
  fail "corrupt store was accepted"
fi
grep -q "store" corrupt.log || fail "corrupt store rejection message: $(cat corrupt.log)"

# Handlers-before-listener: SIGTERM inside the widened startup window must
# still be caught and drain cleanly (the old ordering died with the default
# disposition here).
PSLD_STARTUP_DELAY_MS=500 "$PSLD" --listen 127.0.0.1:0 --store hist.pstore \
  > early.log 2>/dev/null &
STORE_PID=$!
sleep 0.1
kill -TERM "$STORE_PID"
STATUS=0
wait "$STORE_PID" || STATUS=$?
[[ "$STATUS" -eq 0 ]] || fail "early SIGTERM killed the daemon (exit $STATUS)"
grep -q "psld: bye" early.log || fail "early SIGTERM did not drain cleanly"
STORE_PID=

# ==========================================================================
# Act 3: streaming analytics. Serve with --analytics, replay a synthetic
# request corpus at the census, read the aggregates back, and prove the
# census-per-generation doctrine: a SIGHUP hot swap starts a FRESH census
# (records drop to zero under the new generation) while ingest keeps
# flowing.
# ==========================================================================
cp a.psnap live_analytics.psnap
"$PSLD" --listen 127.0.0.1:0 --snapshot live_analytics.psnap --threads 2 --analytics \
  > psld_analytics.log 2> psld_analytics.err &
ANALYTICS_PID=$!
trap 'kill "$DAEMON_PID" "$STORE_PID" "$WATCH_PID" "$ANALYTICS_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
for _ in $(seq 1 100); do
  grep -q "serving generation" psld_analytics.log 2>/dev/null && break
  kill -0 "$ANALYTICS_PID" 2>/dev/null || fail "analytics daemon died during startup"
  sleep 0.1
done
grep -q "\[analytics\]" psld_analytics.log || fail "daemon did not report analytics mode"
ANALYTICS_PORT=$(bound_port psld_analytics.log)
[[ -n "$ANALYTICS_PORT" ]] || fail "could not read the analytics daemon's bound port"
ANALYTICS_ADDR="127.0.0.1:$ANALYTICS_PORT"

# An empty census exists from the first generation on.
"$PSLD" census "$ANALYTICS_ADDR" > census0.txt || fail "census query on a fresh daemon"
grep -qx "census generation 1" census0.txt || fail "fresh census generation: $(cat census0.txt)"
grep -qx "census records 0" census0.txt || fail "fresh census not empty: $(cat census0.txt)"

# Replay a synthetic corpus at it; the census totals must account for every
# replayed record exactly.
"$PSLTOOL" census gen corpus.csv > gen.txt || fail "psltool census gen"
REQUESTS=$(sed -n 's/.* hosts, \([0-9]*\) requests/\1/p' gen.txt)
[[ -n "$REQUESTS" && "$REQUESTS" -gt 0 ]] || fail "census gen reported no requests: $(cat gen.txt)"
"$PSLTOOL" census replay corpus.csv "$ANALYTICS_ADDR" > replay1.txt || fail "census replay"
grep -q "replayed $REQUESTS records .* (generation 1..1)" replay1.txt \
  || fail "replay record count or generation: $(cat replay1.txt)"

"$PSLD" census "$ANALYTICS_ADDR" 8 > census1.txt || fail "census query after replay"
grep -qx "census generation 1" census1.txt || fail "census generation: $(cat census1.txt)"
grep -qx "census records $REQUESTS" census1.txt \
  || fail "census did not account for every replayed record: $(grep 'census records' census1.txt)"
FIRST=$(sed -n 's/^census first-party \([0-9]*\)$/\1/p' census1.txt)
THIRD=$(sed -n 's/^census third-party \([0-9]*\)$/\1/p' census1.txt)
[[ $(( FIRST + THIRD )) -eq "$REQUESTS" ]] \
  || fail "first-party ($FIRST) + third-party ($THIRD) != records ($REQUESTS)"
grep -qx "census dropped 0" census1.txt || fail "census dropped records on the tiny corpus"
grep -q "^census tracker " census1.txt || fail "census reported no trackers"
[[ $(grep -c "^census tracker " census1.txt) -le 8 ]] || fail "census ignored top_k 8"

# Queries and ingest share the daemon: the boundary path must still serve.
"$PSLD" query "$ANALYTICS_ADDR" shop1.myshopify.com \
  | grep -qx "shop1.myshopify.com myshopify.com" || fail "analytics daemon query"

# SIGHUP hot swap: the new generation starts a FRESH census — aggregates
# describe exactly one (list, stream) pairing, never a mixture.
cp b.psnap stage.psnap && mv stage.psnap live_analytics.psnap
kill -HUP "$ANALYTICS_PID"
for _ in $(seq 1 100); do
  grep -q "generation 2" psld_analytics.log 2>/dev/null && break
  sleep 0.1
done
grep -q "reloaded .* generation 2" psld_analytics.log || fail "analytics SIGHUP reload"
"$PSLD" census "$ANALYTICS_ADDR" > census2.txt || fail "census query after reload"
grep -qx "census generation 2" census2.txt \
  || fail "census still on the old generation: $(cat census2.txt)"
grep -qx "census records 0" census2.txt \
  || fail "hot swap did not start a fresh census: $(grep 'census records' census2.txt)"

# Ingest keeps flowing into the new generation's census.
"$PSLTOOL" census replay corpus.csv "$ANALYTICS_ADDR" > replay2.txt \
  || fail "census replay after reload"
grep -q "(generation 2..2)" replay2.txt || fail "replay landed on a stale generation: $(cat replay2.txt)"
"$PSLD" census "$ANALYTICS_ADDR" > census3.txt || fail "census query after second replay"
grep -qx "census records $REQUESTS" census3.txt \
  || fail "new generation census did not ingest the second replay: $(grep 'census records' census3.txt)"

kill -TERM "$ANALYTICS_PID"
STATUS=0
wait "$ANALYTICS_PID" || STATUS=$?
[[ "$STATUS" -eq 0 ]] || fail "analytics daemon exited $STATUS on SIGTERM"
grep -q "psld: bye" psld_analytics.log || fail "analytics daemon did not drain cleanly"
grep -q '"analytics.ingest.records"' psld_analytics.err \
  || fail "analytics counters missing from the metrics dump"
ANALYTICS_PID=

# ==========================================================================
# Act 4: the sharded fleet. Two forked shards accept on one SO_REUSEPORT
# port, each mapping the same snapshot file; the UDP fast path answers
# beside TCP; one SIGHUP to the parent publishes a generation through the
# shared latch to every shard; a shard SIGKILLed under live query load is
# respawned and adopts the latch generation (not generation 1); SIGTERM
# drains the whole fleet to a clean exit 0.
# ==========================================================================
cp a.psnap live_shards.psnap
"$PSLD" --listen 127.0.0.1:0 --snapshot live_shards.psnap --shards 2 --udp \
  > psld_shards.log 2> psld_shards.err &
SHARDS_PID=$!
LOAD_PID=
trap 'kill "$DAEMON_PID" "$STORE_PID" "$WATCH_PID" "$ANALYTICS_PID" "$SHARDS_PID" "$LOAD_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
for _ in $(seq 1 100); do
  grep -q "2 shards" psld_shards.log 2>/dev/null && break
  kill -0 "$SHARDS_PID" 2>/dev/null || fail "sharded daemon died during startup"
  sleep 0.1
done
grep -q "serving generation 1 .* 2 shards" psld_shards.log \
  || fail "sharded daemon did not report the fleet banner"
grep -q "\[udp\]" psld_shards.log || fail "sharded daemon did not report UDP mode"
SHARD_PORT=$(bound_port psld_shards.log)
[[ -n "$SHARD_PORT" ]] || fail "could not read the sharded daemon's bound port"
SHARD_ADDR="127.0.0.1:$SHARD_PORT"
for _ in $(seq 1 100); do
  [[ $(grep -c "shard [0-9]* serving generation 1" psld_shards.log) -eq 2 ]] && break
  sleep 0.1
done
[[ $(grep -c "shard [0-9]* serving generation 1" psld_shards.log) -eq 2 ]] \
  || fail "expected 2 shard banners: $(cat psld_shards.log)"

# Both transports answer from the shared snapshot mapping.
"$PSLD" ping "$SHARD_ADDR" | grep -qx "pong" || fail "sharded TCP ping"
"$PSLD" query "$SHARD_ADDR" shop1.myshopify.com a.b.co.uk > qs1.txt
grep -qx "shop1.myshopify.com myshopify.com" qs1.txt || fail "sharded TCP query: $(cat qs1.txt)"
grep -qx "a.b.co.uk b.co.uk" qs1.txt || fail "sharded TCP co.uk query: $(cat qs1.txt)"
"$PSLD" --udp ping "$SHARD_ADDR" | grep -qx "pong" || fail "UDP ping"
"$PSLD" --udp query "$SHARD_ADDR" shop1.myshopify.com a.b.co.uk > qs2.txt
grep -qx "shop1.myshopify.com myshopify.com" qs2.txt || fail "UDP query: $(cat qs2.txt)"
grep -qx "a.b.co.uk b.co.uk" qs2.txt || fail "UDP co.uk query: $(cat qs2.txt)"
"$PSLD" --udp stats "$SHARD_ADDR" | grep -q "generation 1, 4 rules" || fail "UDP stats"

# One SIGHUP to the parent must flip EVERY shard to the same generation.
cp b.psnap stage.psnap && mv stage.psnap live_shards.psnap
kill -HUP "$SHARDS_PID"
for _ in $(seq 1 100); do
  [[ $(grep -c "reloaded -> generation 2" psld_shards.log) -eq 2 ]] && break
  sleep 0.1
done
grep -q "published generation 2 to 2 shards" psld_shards.log \
  || fail "latch publish did not land: $(cat psld_shards.log)"
[[ $(grep -c "reloaded -> generation 2" psld_shards.log) -eq 2 ]] \
  || fail "not every shard reloaded to generation 2: $(cat psld_shards.log)"
"$PSLD" query "$SHARD_ADDR" shop1.myshopify.com \
  | grep -qx "shop1.myshopify.com shop1.myshopify.com" || fail "fleet reload did not flip the answer"

# Kill one shard under live load: the service keeps answering, the parent
# respawns it, and the replacement adopts the LATCH generation — a respawn
# banner saying "generation 2" proves it did not boot back to generation 1.
( while [[ ! -f stop_load ]]; do
    "$PSLD" query "$SHARD_ADDR" a.b.co.uk > /dev/null 2>&1 || true
  done ) &
LOAD_PID=$!
VICTIM=$(sed -n 's/.*shard 0 serving generation 1 .*pid \([0-9]*\)).*/\1/p' psld_shards.log | head -1)
[[ -n "$VICTIM" ]] || fail "could not extract shard 0's pid from: $(cat psld_shards.log)"
kill -KILL "$VICTIM"
for _ in $(seq 1 100); do
  grep -q "exited, respawning" psld_shards.log 2>/dev/null && break
  sleep 0.1
done
grep -q "shard 0 (pid $VICTIM) exited, respawning" psld_shards.log \
  || fail "parent did not respawn the killed shard: $(cat psld_shards.log)"
for _ in $(seq 1 100); do
  grep -q "shard 0 serving generation 2" psld_shards.log 2>/dev/null && break
  sleep 0.1
done
grep -q "shard 0 serving generation 2" psld_shards.log \
  || fail "respawned shard did not adopt the latch generation: $(cat psld_shards.log)"
: > stop_load
wait "$LOAD_PID" 2>/dev/null || true
LOAD_PID=
"$PSLD" query "$SHARD_ADDR" shop1.myshopify.com \
  | grep -qx "shop1.myshopify.com shop1.myshopify.com" || fail "service lost after shard respawn"
"$PSLD" --udp stats "$SHARD_ADDR" | grep -q "generation 2, 5 rules" \
  || fail "UDP stats after respawn"

# SIGTERM drains the whole fleet; the parent exits 0 only after every shard.
kill -TERM "$SHARDS_PID"
STATUS=0
wait "$SHARDS_PID" || STATUS=$?
[[ "$STATUS" -eq 0 ]] || fail "sharded daemon exited $STATUS on SIGTERM"
grep -q "draining 2 shards" psld_shards.log || fail "fleet drain banner missing"
grep -q "psld: bye" psld_shards.log || fail "sharded daemon did not drain cleanly"
SHARDS_PID=

echo "net_smoke: OK (ports $PORT/$STORE_PORT/$ANALYTICS_PORT/$SHARD_PORT)"
