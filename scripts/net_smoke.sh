#!/usr/bin/env bash
# Loopback end-to-end smoke for psld: compile a snapshot, serve it, query it
# over the PSLN wire protocol, hot-reload via SIGHUP (answers must flip,
# keep-last-good must hold for a corrupt file) and via a wire-level
# `psld reload`, then drain via SIGTERM and require a clean exit 0. CI runs
# this against the freshly built tree:
#
#   scripts/net_smoke.sh build/examples/psld
set -euo pipefail

PSLD=${1:-build/examples/psld}
if [[ ! -x "$PSLD" ]]; then
  echo "net_smoke: psld binary not found at $PSLD" >&2
  exit 2
fi
PSLD=$(readlink -f "$PSLD")

WORK=$(mktemp -d)
trap 'kill "$DAEMON_PID" 2>/dev/null || true; rm -rf "$WORK"' EXIT
cd "$WORK"

fail() {
  echo "net_smoke: FAIL: $*" >&2
  [[ -f psld.log ]] && sed 's/^/net_smoke: psld| /' psld.log >&2
  exit 1
}

# --- compile two list vintages -------------------------------------------
printf 'com\nuk\nco.uk\ngithub.io\n' > list_a.txt
printf 'com\nuk\nco.uk\ngithub.io\nmyshopify.com\n' > list_b.txt
"$PSLD" compile list_a.txt a.psnap
"$PSLD" compile list_b.txt b.psnap

# --- boot the daemon on a port derived from the PID ----------------------
PORT=$(( 20000 + ($$ % 20000) ))
ADDR="127.0.0.1:$PORT"
cp a.psnap live.psnap
"$PSLD" --listen "$ADDR" --snapshot live.psnap --threads 2 > psld.log 2> psld.err &
DAEMON_PID=$!

for _ in $(seq 1 100); do
  grep -q "serving generation" psld.log 2>/dev/null && break
  kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
  sleep 0.1
done
grep -q "serving generation 1" psld.log || fail "daemon did not report generation 1"

# --- liveness + queries under the first vintage --------------------------
"$PSLD" ping "$ADDR" | grep -qx "pong" || fail "ping"
"$PSLD" query "$ADDR" shop1.myshopify.com a.b.co.uk user.github.io > q1.txt
grep -qx "shop1.myshopify.com myshopify.com" q1.txt \
  || fail "expected myshopify.com registrable under list_a, got: $(cat q1.txt)"
grep -qx "a.b.co.uk b.co.uk" q1.txt || fail "co.uk query: $(cat q1.txt)"
grep -qx "user.github.io user.github.io" q1.txt || fail "github.io query: $(cat q1.txt)"
"$PSLD" stats "$ADDR" | grep -q "generation 1, 4 rules" || fail "stats before reload"

# --- SIGHUP hot reload: the answer must flip -----------------------------
cp b.psnap live.psnap
kill -HUP "$DAEMON_PID"
for _ in $(seq 1 100); do
  grep -q "generation 2" psld.log 2>/dev/null && break
  sleep 0.1
done
grep -q "reloaded .* generation 2" psld.log || fail "SIGHUP reload did not land"
"$PSLD" query "$ADDR" shop1.myshopify.com > q2.txt
grep -qx "shop1.myshopify.com shop1.myshopify.com" q2.txt \
  || fail "reload did not flip the myshopify answer: $(cat q2.txt)"
"$PSLD" stats "$ADDR" | grep -q "generation 2, 5 rules" || fail "stats after reload"

# --- keep-last-good: a corrupt snapshot must be rejected, serving intact --
printf 'not a snapshot' > live.psnap
kill -HUP "$DAEMON_PID"
for _ in $(seq 1 100); do
  grep -q "reload rejected" psld.log 2>/dev/null && break
  sleep 0.1
done
grep -q "reload rejected .*, still serving generation 2" psld.log \
  || fail "corrupt reload was not rejected keep-last-good"
"$PSLD" query "$ADDR" shop1.myshopify.com | grep -qx "shop1.myshopify.com shop1.myshopify.com" \
  || fail "serving disturbed after rejected reload"

# --- wire reload: push a snapshot over the PSLN protocol -----------------
"$PSLD" reload "$ADDR" a.psnap | grep -q "generation 3" || fail "wire reload"
"$PSLD" query "$ADDR" shop1.myshopify.com | grep -qx "shop1.myshopify.com myshopify.com" \
  || fail "wire reload did not flip the answer back: $("$PSLD" query "$ADDR" shop1.myshopify.com)"
"$PSLD" stats "$ADDR" | grep -q "generation 3, 4 rules" || fail "stats after wire reload"

# --- SIGTERM: graceful drain, exit 0 -------------------------------------
kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
[[ "$STATUS" -eq 0 ]] || fail "daemon exited $STATUS on SIGTERM"
grep -q "psld: bye" psld.log || fail "daemon did not drain cleanly"
grep -q '"net.accepted"' psld.err || fail "metrics dump missing from stderr"

echo "net_smoke: OK (port $PORT)"
