// export_datasets: the paper's data release, regenerated.
//
//   $ ./export_datasets [output-directory]     (default ./datasets)
//
// Writes everything a downstream analysis (or a plotting script) needs:
//   psl_latest.dat       the newest synthetic list, in the published format
//   psl_versions.csv     per-version date, rule count, added, removed
//   request_corpus.csv   the HTTP-Archive-like corpus (hosts + requests)
//   repositories.csv     the 273-project corpus with labels and vintages
//   fig5_6_7.csv         the full 1,142-version sweep series
#include <filesystem>
#include <fstream>
#include <iostream>

#include "psl/archive/csv.hpp"
#include "psl/core/incremental.hpp"
#include "psl/history/timeline.hpp"
#include "psl/repos/corpus.hpp"
#include "psl/repos/csv.hpp"

namespace fs = std::filesystem;

int main(int argc, char** argv) {
  const fs::path out_dir = argc > 1 ? fs::path(argv[1]) : fs::path("datasets");
  fs::create_directories(out_dir);

  std::cout << "[1/5] PSL history...\n";
  const auto history = psl::history::generate_history(psl::history::TimelineSpec{});
  {
    std::ofstream out(out_dir / "psl_latest.dat", std::ios::binary);
    out << history.latest().to_file();
  }
  {
    std::ofstream out(out_dir / "psl_versions.csv", std::ios::binary);
    out << "version,date,rules,added,removed\n";
    const auto deltas = history.version_deltas();
    for (const auto& d : deltas) {
      out << d.version_index << ',' << d.date.to_string() << ','
          << history.rule_count(d.version_index) << ',' << d.rules_added << ','
          << d.rules_removed << '\n';
    }
  }

  {
    // Per-rule provenance: text, section, added/removed dates.
    std::ofstream out(out_dir / "rule_schedule.csv", std::ios::binary);
    out << "rule,section,added,removed\n";
    for (const auto& sr : history.schedule()) {
      out << sr.rule.to_string() << ','
          << (sr.rule.section() == psl::Section::kPrivate ? "private" : "icann") << ','
          << sr.added.to_string() << ',' << (sr.removed ? sr.removed->to_string() : "")
          << '\n';
    }
  }

  std::cout << "[2/5] Request corpus (~100k hosts, ~500k requests)...\n";
  const auto corpus = psl::archive::generate_corpus(psl::archive::CorpusSpec{}, history);
  {
    std::ofstream out(out_dir / "request_corpus.csv", std::ios::binary);
    psl::archive::write_csv(corpus, out);
  }

  std::cout << "[3/5] Repository corpus...\n";
  const auto repos = psl::repos::generate_repo_corpus(psl::repos::RepoCorpusSpec{});
  {
    std::ofstream out(out_dir / "repositories.csv", std::ios::binary);
    psl::repos::write_csv(repos, out);
  }

  std::cout << "[4/5] Full-resolution sweep (1,142 versions)...\n";
  {
    psl::harm::IncrementalSweeper sweeper(history, corpus);
    const auto series = sweeper.sweep_all();
    std::ofstream out(out_dir / "fig5_6_7.csv", std::ios::binary);
    out << "version,date,rules,sites,mean_hosts_per_site,third_party_requests,"
           "divergent_hosts\n";
    for (const auto& m : series) {
      out << m.version_index << ',' << m.date.to_string() << ',' << m.rule_count << ','
          << m.site_count << ',' << m.mean_hosts_per_site << ',' << m.third_party_requests
          << ',' << m.divergent_hosts << '\n';
    }
  }

  std::cout << "[5/5] Verifying the corpus round-trips...\n";
  {
    std::ifstream in(out_dir / "request_corpus.csv", std::ios::binary);
    const auto back = psl::archive::read_csv(in);
    if (!back || back->unique_host_count() != corpus.unique_host_count() ||
        back->request_count() != corpus.request_count()) {
      std::cerr << "round-trip verification FAILED\n";
      return 1;
    }
  }

  std::cout << "\nWrote:\n";
  for (const auto& entry : fs::directory_iterator(out_dir)) {
    std::cout << "  " << entry.path().string() << " ("
              << fs::file_size(entry.path()) / 1024 << " KiB)\n";
  }
  return 0;
}
