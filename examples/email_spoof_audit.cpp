// email_spoof_audit: the DMARC harm of a stale PSL, end to end.
//
//   $ ./email_spoof_audit
//
// RFC 7489 leans on the PSL twice: policy discovery falls back to the
// *organizational domain* (the PSL registrable domain), and "relaxed"
// identifier alignment accepts any DKIM/SPF domain with the same
// organizational domain as the From: header. We run the same spoofed
// message through two mail receivers — one whose PSL predates the
// myshopify.com rule, one current — and show the stale receiver both
// applies the platform's lax policy and lets a cross-tenant DKIM signature
// align.
#include <cstdio>

#include "psl/email/dmarc.hpp"
#include "psl/history/timeline.hpp"

using psl::dns::Name;

namespace {

Name name(const char* text) { return *Name::parse(text); }

void judge(const char* label, const psl::List& list, psl::dns::StubResolver& resolver,
           const char* from_host, const char* dkim_domain) {
  std::printf("--- receiver with %s ---\n", label);
  std::printf("  From: header domain: %s\n", from_host);
  std::printf("  org domain per list: %s\n",
              psl::email::organizational_domain(list, from_host).c_str());

  const auto lookup = psl::email::discover_policy(resolver, list, from_host, 0);
  if (const auto policy = lookup.effective_policy()) {
    std::printf("  DMARC policy found via %s: p(effective)=%s\n",
                lookup.used_org_fallback ? "org-domain fallback" : "direct record",
                std::string(to_string(*policy)).c_str());
  } else {
    std::printf("  no DMARC policy applies (no record at host or org domain)\n");
  }

  const bool aligned =
      psl::email::identifier_aligned(list, from_host, dkim_domain, /*strict=*/false);
  std::printf("  DKIM d=%s relaxed-aligns with From:? %s\n", dkim_domain,
              aligned ? "YES - spoof authenticates" : "no");
  std::printf("\n");
}

}  // namespace

int main() {
  // Mail-side DNS: the platform publishes a deliberately lax DMARC record
  // (platforms cannot reject on behalf of tenants).
  psl::dns::AuthServer internet;
  psl::dns::Zone com(name("com"),
                     psl::dns::SoaRecord{name("a.gtld-servers.net"),
                                         name("nstld.verisign-grs.com"), 1, 1800, 900, 604800,
                                         60});
  com.add_txt(name("_dmarc.myshopify.com"), "v=DMARC1; p=none; sp=none");
  internet.add_zone(std::move(com));

  // The lists: a 2018-vintage snapshot vs. the current one.
  std::printf("Generating PSL history...\n\n");
  const auto history = psl::history::generate_history(psl::history::TimelineSpec{});
  const psl::List stale = history.snapshot_at(psl::util::Date::from_civil(2018, 7, 22));
  const psl::List& current = history.latest();

  // The attack: mail claiming to be victim-store, DKIM-signed by the
  // attacker's own store on the same platform.
  const char* from_host = "victim-store.myshopify.com";
  const char* dkim_domain = "attacker-store.myshopify.com";
  std::printf("Spoofed message: From: orders@%s, DKIM d=%s\n\n", from_host, dkim_domain);

  psl::dns::StubResolver stale_resolver(internet);
  judge("STALE list (2018 vintage)", stale, stale_resolver, from_host, dkim_domain);

  psl::dns::StubResolver current_resolver(internet);
  judge("CURRENT list", current, current_resolver, from_host, dkim_domain);

  std::printf(
      "The stale receiver treats every store as one organization: the\n"
      "platform's p=none applies and the attacker's signature aligns.\n"
      "The current receiver separates the tenants (myshopify.com is a\n"
      "public suffix since 2021), so the spoof neither aligns nor inherits\n"
      "any policy.\n");
  return 0;
}
