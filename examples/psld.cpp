// psld: a miniature PSL query daemon built on psl::serve.
//
//   $ ./psld
//
// Walks through the full deployment lifecycle a real daemon would run:
//
//   1. compile a list into an arena snapshot and persist it with
//      psl::snapshot::write_file (atomic tmp+rename, checksummed format);
//   2. boot an Engine from that file — the validating loader means a corrupt
//      or truncated snapshot can never reach serving;
//   3. serve inline and batched queries from a worker pool;
//   4. hot-reload a newer list while queries keep flowing (RCU swap: every
//      in-flight batch still sees exactly one version);
//   5. demonstrate keep-last-good: a bad reload is rejected, serving
//      continues on the previous generation;
//   6. drain and shut down, then print the obs metrics the engine emitted.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <string_view>
#include <vector>

#include "psl/obs/json.hpp"
#include "psl/obs/metrics.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/engine.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/util/date.hpp"

namespace {

constexpr std::string_view kListV1 = R"(// snapshot v1
com
uk
co.uk
github.io
)";

// v2 adds a private-domain rule: shops on myshopify.com become separate
// sites, exactly the kind of boundary change a PSL update ships.
constexpr std::string_view kListV2 = R"(// snapshot v2
com
uk
co.uk
github.io
myshopify.com
)";

psl::List parse_or_die(std::string_view text) {
  auto parsed = psl::List::parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "list parse error: %s\n", parsed.error().message.c_str());
    std::exit(1);
  }
  return *std::move(parsed);
}

void serve_batch(psl::serve::Engine& engine, const std::vector<std::string>& hosts) {
  auto submitted = engine.submit_registrable_domains(hosts);
  if (!submitted.ok()) {
    std::printf("  [backpressure] %s\n", submitted.error().message.c_str());
    return;
  }
  const std::vector<std::string> domains = submitted->get();
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    std::printf("  %-26s -> %s\n", hosts[i].c_str(),
                domains[i].empty() ? "(is a public suffix)" : domains[i].c_str());
  }
}

}  // namespace

int main() {
  const std::string path = "psld_demo.psnap";

  // --- 1. compile + persist ------------------------------------------------
  const psl::List v1 = parse_or_die(kListV1);
  psl::snapshot::Metadata meta;
  meta.source_date = psl::util::Date::from_civil(2023, 1, 15);
  meta.rule_count = v1.rule_count();
  auto written = psl::snapshot::write_file(path, psl::CompiledMatcher(v1), meta);
  if (!written.ok()) {
    std::fprintf(stderr, "snapshot write failed: %s\n", written.error().message.c_str());
    return 1;
  }
  std::printf("wrote %s (%llu bytes, %zu rules)\n\n", path.c_str(),
              static_cast<unsigned long long>(*written), v1.rule_count());

  // --- 2. boot the engine from the validated snapshot file -----------------
  auto snapshot = psl::snapshot::load_file(path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "snapshot load failed: %s\n", snapshot.error().message.c_str());
    return 1;
  }
  psl::obs::MetricsRegistry metrics;
  psl::serve::Engine engine(*std::move(snapshot),
                            {.threads = 2, .max_queue_depth = 64, .metrics = &metrics});
  std::printf("engine up: generation %llu, %zu workers, %llu rules\n\n",
              static_cast<unsigned long long>(engine.generation()), engine.worker_count(),
              static_cast<unsigned long long>(engine.metadata().rule_count));

  // --- 3. serve ------------------------------------------------------------
  const std::vector<std::string> batch = {"www.amazon.co.uk", "alice.github.io",
                                          "shop1.myshopify.com", "co.uk"};
  std::printf("serving generation %llu:\n",
              static_cast<unsigned long long>(engine.generation()));
  serve_batch(engine, batch);
  std::printf("  same_site(shop1.myshopify.com, shop2.myshopify.com) = %s\n\n",
              engine.same_site("shop1.myshopify.com", "shop2.myshopify.com") ? "true" : "false");

  // --- 4. hot reload -------------------------------------------------------
  const psl::List v2 = parse_or_die(kListV2);
  psl::snapshot::Metadata meta2;
  meta2.source_date = psl::util::Date::from_civil(2023, 6, 1);
  meta2.rule_count = v2.rule_count();
  engine.reload_list(v2, meta2);
  std::printf("hot-reloaded to generation %llu:\n",
              static_cast<unsigned long long>(engine.generation()));
  serve_batch(engine, batch);
  std::printf("  same_site(shop1.myshopify.com, shop2.myshopify.com) = %s\n\n",
              engine.same_site("shop1.myshopify.com", "shop2.myshopify.com") ? "true" : "false");

  // --- 5. keep-last-good ---------------------------------------------------
  const std::vector<std::uint8_t> garbage = {'n', 'o', 't', ' ', 'a', ' ', 's', 'n', 'a', 'p'};
  auto failed = engine.reload_snapshot({garbage.data(), garbage.size()});
  std::printf("bad reload rejected (%s); still serving generation %llu\n\n",
              failed.ok() ? "unexpectedly accepted!" : failed.error().code.c_str(),
              static_cast<unsigned long long>(engine.generation()));

  // --- 6. metrics ----------------------------------------------------------
  std::printf("engine metrics:\n%s\n", psl::obs::to_json(metrics).c_str());
  std::remove(path.c_str());
  return 0;
}
