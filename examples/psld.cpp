// psld: the PSL query daemon — a real network service over psl::net +
// psl::serve.
//
// Serve (the daemon proper):
//
//   $ psld --listen 127.0.0.1:7878 (--snapshot list.psnap | --store hist.pstore)
//          [--threads N] [--max-conns N] [--queue-depth N]
//          [--max-frame BYTES] [--force-poll] [--analytics]
//
//   Boots a serve::Engine from the validated snapshot file — or, with
//   --store, from the newest version of a multi-version psl::store file,
//   which additionally enables the match_at / divergence time-travel frames.
//   Signal handlers are installed BEFORE the listener goes live (and before
//   the snapshot load), so a supervisor that signals the moment the process
//   exists still gets the contract below instead of the default disposition:
//     SIGHUP   re-read --snapshot / --store and hot-swap it (keep-last-good:
//              a corrupt file is rejected and the previous list keeps
//              serving);
//     SIGTERM/SIGINT  graceful drain (in-flight batches finish, responses
//              flush), metrics to stderr, exit 0.
//
//   --analytics attaches a bounded-memory psl::analytics census to every
//   serving generation: clients stream (page_host, resource_host) records
//   via ingest_batch and read the harm aggregates back via census_query.
//   A hot swap starts a FRESH census — the census describes one list
//   generation, never a blend (same RCU doctrine as the per-worker caches).
//
// Tooling subcommands (what the CI loopback smoke job drives):
//
//   $ psld compile <list.txt> <out.psnap>     # PSL text -> snapshot file
//   $ psld query  <addr:port> <host>...       # print eTLD+1 per host
//   $ psld match-at <addr:port> <YYYY-MM-DD> <host>...  # time-travel eTLD+1
//   $ psld divergence <addr:port> <host>      # eTLD+1 history ranges
//   $ psld ping   <addr:port>                 # liveness probe, exit 0/1
//   $ psld stats  <addr:port>                 # generation / rules / conns
//   $ psld census <addr:port> [K]             # analytics census (top-K trackers)
//   $ psld reload <addr:port> <snap.psnap>    # push a snapshot over the wire
//   $ psld watch  <addr:port> [count]         # subscribe; print pushed
//                                             # generation changes (no polling
//                                             # queries — the daemon pushes)
//
// Wire payloads (notably reload snapshots) are bounded by the frame cap;
// --max-frame raises it on both the server and the client subcommands.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "psl/analytics/census.hpp"
#include "psl/net/client.hpp"
#include "psl/net/latch.hpp"
#include "psl/net/server.hpp"
#include "psl/obs/json.hpp"
#include "psl/obs/metrics.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/engine.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/store/store.hpp"
#include "psl/util/date.hpp"

namespace {

// Self-pipe: handlers do one async-signal-safe write; the main thread
// blocks on the read end and turns bytes back into reload/drain actions.
int g_signal_pipe[2] = {-1, -1};

extern "C" void on_signal(int sig) {
  const std::uint8_t byte = sig == SIGHUP ? 'H' : sig == SIGCHLD ? 'C' : 'T';
  (void)!::write(g_signal_pipe[1], &byte, 1);
}

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  psld --listen ADDR:PORT (--snapshot FILE | --store FILE) [--threads N]\n"
               "       [--max-conns N] [--queue-depth N] [--max-frame BYTES]\n"
               "       [--backend auto|epoll|poll|io_uring] [--force-poll] [--udp]\n"
               "       [--shards N] [--analytics]\n"
               "PORT 0 asks the kernel for an ephemeral port; the banner names it.\n"
               "--shards N forks N acceptor processes sharing the port via\n"
               "SO_REUSEPORT and the snapshot via a shared mapping (requires\n"
               "--snapshot; publish new snapshots by rename, never in place).\n"
               "  psld compile LIST_FILE OUT_SNAPSHOT\n"
               "  psld query  ADDR:PORT HOST...\n"
               "  psld match-at ADDR:PORT YYYY-MM-DD HOST...\n"
               "  psld divergence ADDR:PORT HOST\n"
               "  psld ping   ADDR:PORT\n"
               "  psld stats  ADDR:PORT\n"
               "  psld census ADDR:PORT [TOP_K]\n"
               "  psld reload ADDR:PORT SNAPSHOT_FILE\n"
               "  psld watch  ADDR:PORT [COUNT]\n"
               "client subcommands also accept --max-frame BYTES (wire payloads,\n"
               "including reload snapshots, are bounded by the frame cap) and\n"
               "--udp (query/ping/stats over the datagram fast path)\n");
  return 2;
}

bool parse_endpoint(std::string_view endpoint, std::string& address, std::uint16_t& port) {
  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 == endpoint.size()) {
    return false;
  }
  address = std::string(endpoint.substr(0, colon));
  const std::string port_text(endpoint.substr(colon + 1));
  if (port_text.find_first_not_of("0123456789") != std::string::npos) return false;
  const long parsed = std::atol(port_text.c_str());
  // 0 is legal for --listen (kernel-assigned ephemeral port, printed in the
  // serving banner); connecting to 0 just fails at the socket layer.
  if (parsed < 0 || parsed > 65535) return false;
  port = static_cast<std::uint16_t>(parsed);
  return true;
}

int cmd_compile(const std::string& list_path, const std::string& out_path) {
  std::ifstream in(list_path);
  if (!in) {
    std::fprintf(stderr, "psld: cannot read %s\n", list_path.c_str());
    return 1;
  }
  std::ostringstream text;
  text << in.rdbuf();
  auto parsed = psl::List::parse(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "psld: parse error in %s: %s\n", list_path.c_str(),
                 parsed.error().message.c_str());
    return 1;
  }
  psl::snapshot::Metadata meta;
  meta.rule_count = parsed->rules().size();
  auto written = psl::snapshot::write_file(out_path, psl::CompiledMatcher(*parsed), meta);
  if (!written.ok()) {
    std::fprintf(stderr, "psld: snapshot write failed: %s\n", written.error().message.c_str());
    return 1;
  }
  std::printf("wrote %s (%llu bytes, %zu rules)\n", out_path.c_str(),
              static_cast<unsigned long long>(*written), parsed->rules().size());
  return 0;
}

// Client subcommands: --udp (stripped in main, like --max-frame) switches
// query/ping/stats to the datagram fast path.
bool g_client_udp = false;

psl::util::Result<psl::net::Client> connect_to(std::string_view endpoint,
                                               std::size_t max_frame) {
  std::string address;
  std::uint16_t port = 0;
  if (!parse_endpoint(endpoint, address, port)) {
    return psl::util::make_error("net.io", "bad endpoint (want ADDR:PORT): " +
                                               std::string(endpoint));
  }
  psl::net::ClientOptions options;
  options.max_frame_bytes = max_frame;
  return g_client_udp ? psl::net::Client::connect_udp(address, port, options)
                      : psl::net::Client::connect(address, port, options);
}

int cmd_query(std::string_view endpoint, std::vector<std::string> hosts,
              std::size_t max_frame) {
  auto client = connect_to(endpoint, max_frame);
  if (!client.ok()) {
    std::fprintf(stderr, "psld: %s\n", client.error().message.c_str());
    return 1;
  }
  auto domains = client->registrable_domains(hosts);
  if (!domains.ok()) {
    std::fprintf(stderr, "psld: %s (%s)\n", domains.error().message.c_str(),
                 domains.error().code.c_str());
    return 1;
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    std::printf("%s %s\n", hosts[i].c_str(),
                (*domains)[i].empty() ? "-" : (*domains)[i].c_str());
  }
  return 0;
}

int cmd_match_at(std::string_view endpoint, const std::string& date_text,
                 std::vector<std::string> hosts, std::size_t max_frame) {
  const auto date = psl::util::Date::parse(date_text);
  if (!date) {
    std::fprintf(stderr, "psld: bad date %s (want YYYY-MM-DD)\n", date_text.c_str());
    return 1;
  }
  auto client = connect_to(endpoint, max_frame);
  if (!client.ok()) {
    std::fprintf(stderr, "psld: %s\n", client.error().message.c_str());
    return 1;
  }
  auto answer = client->match_at(*date, hosts);
  if (!answer.ok()) {
    std::fprintf(stderr, "psld: %s (%s)\n", answer.error().message.c_str(),
                 answer.error().code.c_str());
    return 1;
  }
  std::printf("version %s (%llu rules)\n",
              psl::util::Date{static_cast<std::int32_t>(answer->version_date_days)}
                  .to_string()
                  .c_str(),
              static_cast<unsigned long long>(answer->rule_count));
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    const auto& m = answer->matches[i];
    std::printf("%s %s\n", hosts[i].c_str(),
                m.registrable_domain.empty() ? "-" : m.registrable_domain.c_str());
  }
  return 0;
}

int cmd_divergence(std::string_view endpoint, const std::string& host,
                   std::size_t max_frame) {
  auto client = connect_to(endpoint, max_frame);
  if (!client.ok()) {
    std::fprintf(stderr, "psld: %s\n", client.error().message.c_str());
    return 1;
  }
  auto ranges = client->divergence(host);
  if (!ranges.ok()) {
    std::fprintf(stderr, "psld: %s (%s)\n", ranges.error().message.c_str(),
                 ranges.error().code.c_str());
    return 1;
  }
  for (const auto& r : *ranges) {
    std::printf("%s..%s %s\n",
                psl::util::Date{static_cast<std::int32_t>(r.first_date_days)}
                    .to_string()
                    .c_str(),
                psl::util::Date{static_cast<std::int32_t>(r.last_date_days)}
                    .to_string()
                    .c_str(),
                r.registrable_domain.empty() ? "-" : r.registrable_domain.c_str());
  }
  return 0;
}

int cmd_ping(std::string_view endpoint, std::size_t max_frame) {
  auto client = connect_to(endpoint, max_frame);
  if (!client.ok() || !client->ping().ok()) return 1;
  std::printf("pong\n");
  return 0;
}

int cmd_stats(std::string_view endpoint, std::size_t max_frame) {
  auto client = connect_to(endpoint, max_frame);
  if (!client.ok()) return 1;
  auto stats = client->stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "psld: %s\n", stats.error().message.c_str());
    return 1;
  }
  std::printf("generation %llu, %llu rules, %u connections, queue depth %u\n",
              static_cast<unsigned long long>(stats->generation),
              static_cast<unsigned long long>(stats->rule_count), stats->connections,
              stats->queue_depth);
  return 0;
}

// Grep-friendly one-fact-per-line census dump (net_smoke.sh asserts on the
// "census generation"/"census records" lines across a SIGHUP reload).
int cmd_census(std::string_view endpoint, long top_k, std::size_t max_frame) {
  auto client = connect_to(endpoint, max_frame);
  if (!client.ok()) {
    std::fprintf(stderr, "psld: %s\n", client.error().message.c_str());
    return 1;
  }
  auto census = client->census(static_cast<std::uint32_t>(top_k));
  if (!census.ok()) {
    std::fprintf(stderr, "psld: %s (%s)\n", census.error().message.c_str(),
                 census.error().code.c_str());
    if (census.error().code == "net.unsupported") {
      std::fprintf(stderr, "psld: server runs without --analytics\n");
    }
    return 1;
  }
  std::printf("census generation %llu\n", static_cast<unsigned long long>(census->generation));
  std::printf("census records %llu\n", static_cast<unsigned long long>(census->records));
  std::printf("census first-party %llu\n",
              static_cast<unsigned long long>(census->first_party));
  std::printf("census third-party %llu\n",
              static_cast<unsigned long long>(census->third_party));
  std::printf("census unique-hosts %llu\n",
              static_cast<unsigned long long>(census->unique_hosts));
  std::printf("census sites-formed %llu\n",
              static_cast<unsigned long long>(census->sites_formed));
  std::printf("census misbound-hosts %llu\n",
              static_cast<unsigned long long>(census->misbound_hosts));
  std::printf("census dropped %llu\n", static_cast<unsigned long long>(census->dropped));
  std::printf("census state-bytes %llu\n",
              static_cast<unsigned long long>(census->state_bytes));
  for (const auto& row : census->etlds) {
    std::printf("census etld %s misbound %llu\n", row.etld.c_str(),
                static_cast<unsigned long long>(row.misbound));
  }
  for (const auto& row : census->trackers) {
    std::printf("census tracker %s requests %llu (+-%llu) reach %llu (-%llu)\n",
                row.domain.c_str(), static_cast<unsigned long long>(row.requests),
                static_cast<unsigned long long>(row.requests_err),
                static_cast<unsigned long long>(row.reach),
                static_cast<unsigned long long>(row.reach_err));
  }
  return 0;
}

int cmd_reload(std::string_view endpoint, const std::string& snapshot_path,
               std::size_t max_frame) {
  std::ifstream in(snapshot_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "psld: cannot read %s\n", snapshot_path.c_str());
    return 1;
  }
  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string bytes = raw.str();
  auto client = connect_to(endpoint, max_frame);
  if (!client.ok()) {
    std::fprintf(stderr, "psld: %s\n", client.error().message.c_str());
    return 1;
  }
  auto swapped = client->reload(
      {reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size()});
  if (!swapped.ok()) {
    std::fprintf(stderr, "psld: %s (%s)\n", swapped.error().message.c_str(),
                 swapped.error().code.c_str());
    if (swapped.error().code == "net.oversize") {
      std::fprintf(stderr, "psld: snapshot exceeds the %zu-byte frame cap; "
                           "raise --max-frame on both psld ends\n", max_frame);
    }
    return 1;
  }
  std::printf("reloaded -> generation %llu\n", static_cast<unsigned long long>(*swapped));
  return 0;
}

// Subscribe and print every pushed generation change — the process never
// sends a query after the subscribe handshake, so each printed line is
// proof of a server-initiated push (what the smoke script asserts on).
// Exits 0 after `count` pushes; count == 0 watches until killed.
int cmd_watch(std::string_view endpoint, long count, std::size_t max_frame) {
  auto client = connect_to(endpoint, max_frame);
  if (!client.ok()) {
    std::fprintf(stderr, "psld: %s\n", client.error().message.c_str());
    return 1;
  }
  long seen = 0;
  client->set_push_callback([&seen](const psl::net::WireGenerationChanged& push) {
    std::printf("psld: pushed generation %llu (%llu rules, delta %+lld)\n",
                static_cast<unsigned long long>(push.generation),
                static_cast<unsigned long long>(push.rule_count),
                static_cast<long long>(push.rule_delta));
    std::fflush(stdout);
    ++seen;
  });
  auto subscribed = client->subscribe();
  if (!subscribed.ok()) {
    std::fprintf(stderr, "psld: subscribe failed: %s (%s)\n",
                 subscribed.error().message.c_str(), subscribed.error().code.c_str());
    return 1;
  }
  std::printf("psld: watching from generation %llu\n",
              static_cast<unsigned long long>(*subscribed));
  std::fflush(stdout);
  while (count == 0 || seen < count) {
    auto drained = client->poll_pushes();
    if (!drained.ok()) {
      std::fprintf(stderr, "psld: watch ended: %s (%s)\n",
                   drained.error().message.c_str(), drained.error().code.c_str());
      return 1;
    }
    if (*drained == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

struct ServeConfig {
  std::string address;
  std::uint16_t port = 0;
  std::string snapshot_path;
  std::string store_path;
  std::size_t threads = 2;
  std::size_t max_conns = 256;
  std::size_t queue_depth = 64;
  std::size_t max_frame = psl::net::kDefaultMaxFrameBytes;
  std::size_t shards = 1;
  psl::net::Backend backend = psl::net::Backend::kAuto;
  bool udp = false;
  bool analytics = false;
};

// The daemon is graceful where the library is strict: an explicit
// --backend io_uring on a kernel without it serves anyway (on epoll/poll)
// with a log line, instead of refusing to boot a fleet over a scheduler
// detail. Tests that NEED io_uring use the library and skip.
psl::net::Backend resolve_backend(psl::net::Backend requested) {
  if (requested == psl::net::Backend::kIoUring && !psl::net::Server::io_uring_supported()) {
    std::fprintf(stderr, "psld: io_uring unsupported on this kernel, falling back\n");
    return psl::net::Backend::kAuto;
  }
  return requested;
}

// One shard: engine + server + signal loop, run in a forked child. The shard
// maps the SAME snapshot file as every other shard (load_file_view — one
// physical copy in the page cache) and installs it as the latch's current
// generation, so a respawned shard rejoins the fleet at the fleet's number,
// not at 1. SIGHUP (forwarded by the parent AFTER it bumped the latch) makes
// the shard reload the file as the published generation.
int shard_main(const ServeConfig& cfg, std::size_t shard_index,
               const psl::net::GenerationLatch& latch, int placeholder_fd) {
  if (placeholder_fd >= 0) ::close(placeholder_fd);
  // The inherited signal pipe belongs to the parent; a shard writing into it
  // would feed the parent's loop. Re-plumb before anything can signal us.
  ::close(g_signal_pipe[0]);
  ::close(g_signal_pipe[1]);
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "psld: shard %zu pipe: %s\n", shard_index, std::strerror(errno));
    return 1;
  }
  ::signal(SIGCHLD, SIG_DFL);  // shards do not fork

  psl::obs::MetricsRegistry metrics;
  psl::serve::EngineOptions engine_options;
  engine_options.threads = cfg.threads;
  engine_options.max_queue_depth = cfg.queue_depth;
  engine_options.metrics = &metrics;
  engine_options.initial_generation = latch.generation();
  if (cfg.analytics) {
    engine_options.census_factory = psl::analytics::census_factory({});
  }

  auto snapshot = psl::snapshot::load_file_view(cfg.snapshot_path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "psld: shard %zu snapshot load failed: %s (%s)\n", shard_index,
                 snapshot.error().message.c_str(), snapshot.error().code.c_str());
    return 1;
  }
  psl::serve::Engine engine(*std::move(snapshot), engine_options);

  psl::net::ServerOptions options;
  options.bind_address = cfg.address;
  options.port = cfg.port;  // concrete by now — the parent resolved port 0
  options.max_connections = cfg.max_conns;
  options.max_frame_bytes = cfg.max_frame;
  options.backend = resolve_backend(cfg.backend);
  options.reuse_port = true;
  options.enable_udp = cfg.udp;
  options.metrics = &metrics;
  psl::net::Server server(engine, options);
  auto started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "psld: shard %zu: %s\n", shard_index,
                 started.error().message.c_str());
    return 1;
  }
  std::printf("psld: shard %zu serving generation %llu on %s:%u (backend %s, pid %d)\n",
              shard_index, static_cast<unsigned long long>(engine.generation()),
              cfg.address.c_str(), *started, server.backend_name(),
              static_cast<int>(::getpid()));
  std::fflush(stdout);

  for (;;) {
    std::uint8_t byte = 0;
    const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (byte == 'H') {
      const psl::net::LatchValue target = latch.read();
      if (target.generation <= engine.generation()) {
        std::printf("psld: shard %zu already at generation %llu\n", shard_index,
                    static_cast<unsigned long long>(engine.generation()));
        std::fflush(stdout);
        continue;
      }
      auto swapped = engine.reload_file_view(cfg.snapshot_path, target.generation);
      if (swapped.ok()) {
        std::printf("psld: shard %zu reloaded -> generation %llu\n", shard_index,
                    static_cast<unsigned long long>(*swapped));
      } else {
        std::printf("psld: shard %zu reload rejected (%s), still serving generation %llu\n",
                    shard_index, swapped.error().code.c_str(),
                    static_cast<unsigned long long>(engine.generation()));
      }
      std::fflush(stdout);
      continue;
    }
    break;  // SIGTERM/SIGINT: drain and exit
  }

  std::printf("psld: shard %zu draining...\n", shard_index);
  std::fflush(stdout);
  server.shutdown();
  std::fprintf(stderr, "%s\n", psl::obs::to_json(metrics).c_str());
  return 0;
}

// Bind a SO_REUSEPORT placeholder to port 0 so the kernel picks ONE
// ephemeral port the whole shard group then binds concretely. The socket
// never listens — a bound, non-listening TCP socket in a reuseport group
// receives nothing — and stays open in the parent for the daemon's life, so
// the port cannot be reassigned between a shard dying and its respawn.
int reserve_shared_port(const std::string& address, std::uint16_t& port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    std::fprintf(stderr, "psld: bad listen address: %s\n", address.c_str());
    return -1;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    std::fprintf(stderr, "psld: socket: %s\n", std::strerror(errno));
    return -1;
  }
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one) != 0 ||
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    std::fprintf(stderr, "psld: port reservation failed: %s\n", std::strerror(errno));
    ::close(fd);
    return -1;
  }
  socklen_t len = sizeof addr;
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port = ntohs(addr.sin_port);
  return fd;
}

// The shard parent: no engine, no sockets (beyond the port placeholder) —
// just the latch, the shard pids, and the signal loop. SIGHUP: validate the
// new snapshot ONCE, bump the latch, then forward SIGHUP to every shard
// (keep-last-good is fleet-wide: a bad file never reaches the latch, so no
// shard even tries it). SIGCHLD: reap and respawn — the replacement re-reads
// the latch and comes back at the fleet's current generation.
int cmd_serve_sharded(ServeConfig cfg) {
  psl::net::LatchValue boot{};
  {
    auto snap = psl::snapshot::load_file_view(cfg.snapshot_path);
    if (!snap.ok()) {
      std::fprintf(stderr, "psld: snapshot load failed: %s (%s)\n",
                   snap.error().message.c_str(), snap.error().code.c_str());
      return 1;
    }
    boot.generation = 1;
    boot.rule_count = snap->meta.rule_count;
    boot.source_date_days = snap->meta.source_date.days_since_epoch();
  }

  auto latch_made = psl::net::GenerationLatch::create_shared();
  if (!latch_made.ok()) {
    std::fprintf(stderr, "psld: %s\n", latch_made.error().message.c_str());
    return 1;
  }
  psl::net::GenerationLatch latch = *std::move(latch_made);
  latch.publish(boot);

  int placeholder_fd = -1;
  if (cfg.port == 0) {
    placeholder_fd = reserve_shared_port(cfg.address, cfg.port);
    if (placeholder_fd < 0) return 1;
  }

  std::vector<pid_t> shard_pids(cfg.shards, -1);
  auto spawn = [&](std::size_t idx) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::fprintf(stderr, "psld: fork: %s\n", std::strerror(errno));
      return false;
    }
    if (pid == 0) ::_exit(shard_main(cfg, idx, latch, placeholder_fd));
    shard_pids[idx] = pid;
    return true;
  };
  for (std::size_t i = 0; i < cfg.shards; ++i) {
    if (!spawn(i)) {
      for (const pid_t pid : shard_pids) {
        if (pid > 0) ::kill(pid, SIGTERM);
      }
      return 1;
    }
  }

  std::printf("psld: serving generation %llu (%llu rules) on %s:%u, %zu shards%s%s\n",
              static_cast<unsigned long long>(boot.generation),
              static_cast<unsigned long long>(boot.rule_count), cfg.address.c_str(),
              cfg.port, cfg.shards, cfg.udp ? " [udp]" : "",
              cfg.analytics ? " [analytics]" : "");
  std::fflush(stdout);

  std::uint64_t generation = boot.generation;
  bool draining = false;
  const auto live_shards = [&] {
    std::size_t n = 0;
    for (const pid_t pid : shard_pids) n += pid > 0 ? 1 : 0;
    return n;
  };
  for (;;) {
    std::uint8_t byte = 0;
    const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) byte = 'T';
    if (byte == 'H' && !draining) {
      auto snap = psl::snapshot::load_file_view(cfg.snapshot_path);
      if (!snap.ok()) {
        std::printf("psld: reload rejected (%s), fleet stays on generation %llu\n",
                    snap.error().code.c_str(), static_cast<unsigned long long>(generation));
        std::fflush(stdout);
        continue;
      }
      psl::net::LatchValue next;
      next.generation = ++generation;
      next.rule_count = snap->meta.rule_count;
      next.source_date_days = snap->meta.source_date.days_since_epoch();
      latch.publish(next);
      for (const pid_t pid : shard_pids) {
        if (pid > 0) ::kill(pid, SIGHUP);
      }
      std::printf("psld: published generation %llu to %zu shards\n",
                  static_cast<unsigned long long>(generation), live_shards());
      std::fflush(stdout);
      continue;
    }
    if (byte == 'C') {
      for (;;) {
        int status = 0;
        const pid_t dead = ::waitpid(-1, &status, WNOHANG);
        if (dead <= 0) break;
        for (std::size_t idx = 0; idx < shard_pids.size(); ++idx) {
          if (shard_pids[idx] != dead) continue;
          shard_pids[idx] = -1;
          if (!draining) {
            std::printf("psld: shard %zu (pid %d) exited, respawning\n", idx,
                        static_cast<int>(dead));
            std::fflush(stdout);
            if (!spawn(idx)) {
              std::fprintf(stderr, "psld: shard %zu respawn failed\n", idx);
            }
          }
        }
      }
      if (draining && live_shards() == 0) break;
      continue;
    }
    if (!draining) {  // 'T' or the pipe died
      draining = true;
      std::printf("psld: draining %zu shards...\n", live_shards());
      std::fflush(stdout);
      for (const pid_t pid : shard_pids) {
        if (pid > 0) ::kill(pid, SIGTERM);
      }
      if (live_shards() == 0) break;
    }
  }
  if (placeholder_fd >= 0) ::close(placeholder_fd);
  std::printf("psld: bye\n");
  return 0;
}

int cmd_serve(const ServeConfig& cfg) {
  // Signal plumbing comes FIRST — before the (possibly slow) snapshot/store
  // load and before the listener goes live. A supervisor that sends SIGTERM
  // as soon as fork() returns must hit our graceful-drain handler, not the
  // default disposition; with the old post-start() ordering that race killed
  // the process with in-flight connections unflushed.
  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "psld: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGHUP, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  ::signal(SIGPIPE, SIG_IGN);

  // Test hook: lets the smoke script widen the handler-installed-but-not-yet-
  // serving window to provoke the old race deterministically.
  if (const char* delay = std::getenv("PSLD_STARTUP_DELAY_MS")) {
    const long ms = std::atol(delay);
    if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }

  if (cfg.shards > 1) {
    // SIGCHLD only matters to the shard parent (respawn); installed before
    // the first fork so no exit can slip past the handler.
    ::sigaction(SIGCHLD, &sa, nullptr);
    return cmd_serve_sharded(cfg);
  }

  psl::obs::MetricsRegistry metrics;
  psl::serve::EngineOptions engine_options;
  engine_options.threads = cfg.threads;
  engine_options.max_queue_depth = cfg.queue_depth;
  engine_options.metrics = &metrics;
  if (cfg.analytics) {
    engine_options.census_factory = psl::analytics::census_factory({});
  }
  std::unique_ptr<psl::serve::Engine> engine;
  if (!cfg.store_path.empty()) {
    auto view = psl::store::StoreView::open(cfg.store_path);
    if (!view.ok()) {
      std::fprintf(stderr, "psld: store open failed: %s (%s)\n",
                   view.error().message.c_str(), view.error().code.c_str());
      return 1;
    }
    auto newest = (*view)->open_version((*view)->version_count() - 1);
    if (!newest.ok()) {
      std::fprintf(stderr, "psld: store materialize failed: %s (%s)\n",
                   newest.error().message.c_str(), newest.error().code.c_str());
      return 1;
    }
    engine = std::make_unique<psl::serve::Engine>(*std::move(newest), engine_options);
    (void)!engine->adopt_store(*std::move(view));
  } else {
    // Shared mapping even single-process: the daemon never holds a private
    // copy of the arena, and the rename-publish contract is uniform.
    auto snapshot = psl::snapshot::load_file_view(cfg.snapshot_path);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "psld: snapshot load failed: %s (%s)\n",
                   snapshot.error().message.c_str(), snapshot.error().code.c_str());
      return 1;
    }
    engine = std::make_unique<psl::serve::Engine>(*std::move(snapshot), engine_options);
  }

  psl::net::ServerOptions options;
  options.bind_address = cfg.address;
  options.port = cfg.port;
  options.max_connections = cfg.max_conns;
  options.max_frame_bytes = cfg.max_frame;
  options.backend = resolve_backend(cfg.backend);
  options.enable_udp = cfg.udp;
  options.metrics = &metrics;
  psl::net::Server server(*engine, options);
  auto started = server.start();
  if (!started.ok()) {
    std::fprintf(stderr, "psld: %s\n", started.error().message.c_str());
    return 1;
  }

  std::printf("psld: serving generation %llu (%llu rules) on %s:%u, %zu workers"
              " (backend %s)%s%s%s\n",
              static_cast<unsigned long long>(engine->generation()),
              static_cast<unsigned long long>(engine->metadata().rule_count),
              cfg.address.c_str(), *started, engine->worker_count(),
              server.backend_name(), cfg.store_path.empty() ? "" : " [store]",
              cfg.udp ? " [udp]" : "", cfg.analytics ? " [analytics]" : "");
  std::fflush(stdout);

  for (;;) {
    std::uint8_t byte = 0;
    const ssize_t n = ::read(g_signal_pipe[0], &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    if (byte == 'H') {
      const std::string& reload_path =
          cfg.store_path.empty() ? cfg.snapshot_path : cfg.store_path;
      auto swapped = cfg.store_path.empty() ? engine->reload_file_view(cfg.snapshot_path)
                                            : engine->open_store(cfg.store_path);
      if (swapped.ok()) {
        std::printf("psld: reloaded %s -> generation %llu\n", reload_path.c_str(),
                    static_cast<unsigned long long>(*swapped));
      } else {
        std::printf("psld: reload rejected (%s), still serving generation %llu\n",
                    swapped.error().code.c_str(),
                    static_cast<unsigned long long>(engine->generation()));
      }
      std::fflush(stdout);
      continue;
    }
    break;  // SIGTERM/SIGINT: drain and exit
  }

  std::printf("psld: draining...\n");
  std::fflush(stdout);
  server.shutdown();
  std::fprintf(stderr, "%s\n", psl::obs::to_json(metrics).c_str());
  std::printf("psld: bye\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);

  // --max-frame caps wire payloads in every mode (ServerOptions for serving,
  // ClientOptions for the subcommands), so strip it before dispatch.
  std::size_t max_frame = psl::net::kDefaultMaxFrameBytes;
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] != "--max-frame") {
      ++i;
      continue;
    }
    if (i + 1 >= args.size()) {
      std::fprintf(stderr, "psld: --max-frame needs a value\n");
      return 2;
    }
    const long long parsed = std::atoll(args[i + 1].c_str());
    if (parsed < 64) {
      std::fprintf(stderr, "psld: bad --max-frame value: %s\n", args[i + 1].c_str());
      return 2;
    }
    max_frame = static_cast<std::size_t>(parsed);
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
               args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
  }
  // --udp is meaningful in both modes: it enables the datagram socket when
  // serving and switches the client subcommands to the datagram fast path.
  bool udp = false;
  for (std::size_t i = 0; i < args.size();) {
    if (args[i] != "--udp") {
      ++i;
      continue;
    }
    udp = true;
    args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
  }
  g_client_udp = udp;
  if (args.empty()) return usage();

  if (args[0] == "compile") {
    return args.size() == 3 ? cmd_compile(args[1], args[2]) : usage();
  }
  if (args[0] == "query") {
    return args.size() >= 3
               ? cmd_query(args[1], {args.begin() + 2, args.end()}, max_frame)
               : usage();
  }
  if (args[0] == "match-at") {
    return args.size() >= 4
               ? cmd_match_at(args[1], args[2], {args.begin() + 3, args.end()}, max_frame)
               : usage();
  }
  if (args[0] == "divergence") {
    return args.size() == 3 ? cmd_divergence(args[1], args[2], max_frame) : usage();
  }
  if (args[0] == "ping") {
    return args.size() == 2 ? cmd_ping(args[1], max_frame) : usage();
  }
  if (args[0] == "stats") {
    return args.size() == 2 ? cmd_stats(args[1], max_frame) : usage();
  }
  if (args[0] == "census") {
    if (args.size() != 2 && args.size() != 3) return usage();
    const long top_k = args.size() == 3 ? std::atol(args[2].c_str()) : 0;
    if (top_k < 0) return usage();
    return cmd_census(args[1], top_k, max_frame);
  }
  if (args[0] == "reload") {
    return args.size() == 3 ? cmd_reload(args[1], args[2], max_frame) : usage();
  }
  if (args[0] == "watch") {
    if (args.size() != 2 && args.size() != 3) return usage();
    const long count = args.size() == 3 ? std::atol(args[2].c_str()) : 0;
    if (count < 0) return usage();
    return cmd_watch(args[1], count, max_frame);
  }

  std::string listen;
  ServeConfig cfg;
  cfg.max_frame = max_frame;
  cfg.udp = udp;
  for (std::size_t i = 0; i < args.size(); ++i) {
    auto value = [&](const char* flag) -> const std::string* {
      if (i + 1 >= args.size()) {
        std::fprintf(stderr, "psld: %s needs a value\n", flag);
        return nullptr;
      }
      return &args[++i];
    };
    if (args[i] == "--listen") {
      const std::string* v = value("--listen");
      if (!v) return 2;
      listen = *v;
    } else if (args[i] == "--snapshot") {
      const std::string* v = value("--snapshot");
      if (!v) return 2;
      cfg.snapshot_path = *v;
    } else if (args[i] == "--store") {
      const std::string* v = value("--store");
      if (!v) return 2;
      cfg.store_path = *v;
    } else if (args[i] == "--threads") {
      const std::string* v = value("--threads");
      if (!v) return 2;
      cfg.threads = static_cast<std::size_t>(std::atol(v->c_str()));
    } else if (args[i] == "--max-conns") {
      const std::string* v = value("--max-conns");
      if (!v) return 2;
      cfg.max_conns = static_cast<std::size_t>(std::atol(v->c_str()));
    } else if (args[i] == "--queue-depth") {
      const std::string* v = value("--queue-depth");
      if (!v) return 2;
      cfg.queue_depth = static_cast<std::size_t>(std::atol(v->c_str()));
    } else if (args[i] == "--shards") {
      const std::string* v = value("--shards");
      if (!v) return 2;
      const long parsed = std::atol(v->c_str());
      if (parsed < 1 || parsed > 64) {
        std::fprintf(stderr, "psld: --shards wants 1..64, got %s\n", v->c_str());
        return 2;
      }
      cfg.shards = static_cast<std::size_t>(parsed);
    } else if (args[i] == "--backend") {
      const std::string* v = value("--backend");
      if (!v) return 2;
      if (*v == "auto") {
        cfg.backend = psl::net::Backend::kAuto;
      } else if (*v == "epoll") {
        cfg.backend = psl::net::Backend::kEpoll;
      } else if (*v == "poll") {
        cfg.backend = psl::net::Backend::kPoll;
      } else if (*v == "io_uring") {
        cfg.backend = psl::net::Backend::kIoUring;
      } else {
        std::fprintf(stderr, "psld: unknown --backend %s\n", v->c_str());
        return 2;
      }
    } else if (args[i] == "--force-poll") {
      cfg.backend = psl::net::Backend::kPoll;  // legacy alias for --backend poll
    } else if (args[i] == "--analytics") {
      cfg.analytics = true;
    } else {
      std::fprintf(stderr, "psld: unknown argument %s\n", args[i].c_str());
      return usage();
    }
  }
  if (listen.empty() || (cfg.snapshot_path.empty() == cfg.store_path.empty())) {
    return usage();
  }
  if (cfg.shards > 1 && cfg.snapshot_path.empty()) {
    // The store serves history (time travel) single-process; the sharded
    // fast path serves the CURRENT list. Latch generations only align with
    // snapshot reloads.
    std::fprintf(stderr, "psld: --shards requires --snapshot (--store is single-process)\n");
    return 2;
  }
  if (!parse_endpoint(listen, cfg.address, cfg.port)) {
    std::fprintf(stderr, "psld: bad --listen endpoint (want ADDR:PORT): %s\n",
                 listen.c_str());
    return 2;
  }
  return cmd_serve(cfg);
}
