// Password-manager audit: Section 2's second scenario.
//
//   $ ./password_audit
//
// A password manager stores credentials captured on shared-hosting tenants
// and suggests them on any same-site domain. We audit how many of those
// suggestions become cross-organization leaks when the manager ships a
// stale PSL — sweeping list vintages from 2010 to 2022.
#include <cstdio>
#include <string>
#include <vector>

#include "psl/history/timeline.hpp"
#include "psl/web/autofill.hpp"

using psl::history::TimelineSpec;
using psl::util::Date;

int main() {
  const auto history = psl::history::generate_history(TimelineSpec{});
  const psl::List& current = history.latest();

  // Credentials the user saved over the years, all on shared-hosting
  // platforms where sibling subdomains belong to strangers.
  psl::web::AutofillMatcher manager;
  manager.store("alice-blog.github.io", "alice", "gh-pages-pw");
  manager.store("familyphotos.blogspot.com", "alice", "blog-pw");
  manager.store("alices-store.myshopify.com", "alice", "shop-pw");
  manager.store("docs-portal.netlify.app", "alice", "netlify-pw");
  manager.store("www.alicebank.com", "alice", "bank-pw");  // a classic site

  // Hosts an attacker can freely register on the same platforms.
  const std::vector<std::string> attacker_hosts = {
      "evil-pages.github.io",
      "evil-blog.blogspot.com",
      "evil-store.myshopify.com",
      "evil-docs.netlify.app",
      "www.evilbank.com",
  };

  std::printf("%-12s %-10s %s\n", "list date", "rules", "credentials leaked to attacker hosts");
  std::printf("--------------------------------------------------------------\n");
  for (int year = 2010; year <= 2022; year += 2) {
    const psl::List stale = history.snapshot_at(Date::from_civil(year, 7, 1));
    std::size_t leaks = 0;
    std::string detail;
    for (const std::string& host : attacker_hosts) {
      for (const auto* cred : manager.leaked_suggestions(host, stale, current)) {
        ++leaks;
        if (!detail.empty()) detail += ", ";
        detail += cred->saved_host + "->" + host.substr(0, host.find('.'));
      }
    }
    std::printf("%d-07-01   %-10zu %zu%s%s\n", year, stale.rule_count(), leaks,
                leaks ? "  " : "", detail.c_str());
  }

  std::printf(
      "\nEvery row counts autofill prompts that the stale list would show on an\n"
      "attacker's domain but the current list would not — the Figure 1 harm.\n");
  return 0;
}
