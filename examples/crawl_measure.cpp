// crawl_measure: the measurement loop behind an HTTP-Archive-style corpus,
// run for real.
//
//   $ ./crawl_measure
//
// Builds a virtual web from the synthetic request corpus (every page view
// becomes an HTML page embedding its sub-resources; every resource host
// sets tracker cookies), then crawls it twice over actual HTTP messages —
// once with a 2015-vintage PSL, once with the current one — and compares
// both the request logs (identical: the list does not change what you
// fetch) and the cookie outcomes (very different: the list changes what
// you ACCEPT).
#include <cstdio>

#include "psl/history/timeline.hpp"
#include "psl/http/crawler.hpp"

int main() {
  std::printf("[1/3] Generating history + corpus...\n");
  const auto history = psl::history::generate_history(psl::history::TimelineSpec{});
  psl::archive::CorpusSpec corpus_spec;
  corpus_spec.page_views = 3000;
  corpus_spec.organizations = 3000;
  corpus_spec.platform_tenant_scale = 0.1;
  const auto corpus = psl::archive::generate_corpus(corpus_spec, history);

  std::printf("[2/3] Materialising the virtual web (%zu pages)...\n", corpus_spec.page_views);
  const psl::http::VirtualWeb web(corpus, history.latest(), /*max_pages=*/1500);
  std::printf("      %zu origins, %zu seed pages\n", web.origin_count(),
              web.page_urls().size());

  std::printf("[3/3] Crawling twice over real HTTP...\n\n");
  const psl::List stale = history.snapshot_at(psl::util::Date::from_civil(2015, 1, 1));

  psl::http::Crawler stale_crawler(web, stale);
  const auto stale_log = stale_crawler.crawl(web.page_urls());

  psl::http::Crawler fresh_crawler(web, history.latest());
  const auto fresh_log = fresh_crawler.crawl(web.page_urls());

  const auto print = [](const char* label, const psl::http::CrawlStats& stats,
                        std::size_t log_size) {
    std::printf("--- crawler with %s ---\n", label);
    std::printf("  pages fetched:       %zu\n", stats.pages_fetched);
    std::printf("  resources fetched:   %zu\n", stats.resources_fetched);
    std::printf("  request log entries: %zu\n", log_size);
    std::printf("  http errors:         %zu\n", stats.http_errors);
    std::printf("  cookies stored:      %zu\n", stats.cookies_stored);
    std::printf("  cookies rejected:    %zu  <- supercookie defence\n",
                stats.cookies_rejected);
    std::printf("  cookies attached:    %zu\n\n", stats.cookies_attached);
  };
  print("2015-vintage PSL", stale_crawler.stats(), stale_log.size());
  print("current PSL", fresh_crawler.stats(), fresh_log.size());

  std::printf("Both crawlers fetched the identical request log (%s), but the stale\n"
              "one accepted %zd tracking cookies the current list refuses — measuring\n"
              "the web with a stale list ALSO means leaking while you measure.\n",
              stale_log.size() == fresh_log.size() ? "verified" : "MISMATCH!",
              static_cast<std::ptrdiff_t>(stale_crawler.stats().cookies_stored) -
                  static_cast<std::ptrdiff_t>(fresh_crawler.stats().cookies_stored));
  return 0;
}
