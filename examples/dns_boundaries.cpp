// dns_boundaries: the paper's proposed alternative, working end to end.
//
//   $ ./dns_boundaries
//
// The paper closes by arguing that list-based privacy boundaries are
// inherently stale and pointing at the IETF DBOUND idea: let domains
// advertise their own boundaries in the DNS. This example runs that world:
// a shared platform publishes a registry-policy _bound record, a brand
// publishes an org record, and a browser-side client discovers boundaries
// through a caching stub resolver — over real RFC 1035 wire messages —
// then we flip a boundary on and watch every client converge within one
// TTL, something no shipped list can do.
#include <cstdio>

#include "psl/dbound/dbound.hpp"

using psl::dbound::discover;
using psl::dns::Name;

namespace {

Name name(const char* text) { return *Name::parse(text); }

void probe(psl::dns::StubResolver& resolver, const char* host, std::uint64_t now) {
  const auto d = discover(resolver, host, now);
  std::printf("  %-34s -> org: %-26s (%zu names walked)\n", host,
              d.org_domain ? d.org_domain->c_str() : "(none advertised)", d.names_walked);
}

}  // namespace

int main() {
  // --- the authoritative world ---------------------------------------------
  psl::dns::AuthServer internet;

  psl::dns::Zone shopify(name("myshopify.com"),
                         psl::dns::SoaRecord{name("ns1.myshopify.com"),
                                             name("hostmaster.myshopify.com"), 1, 7200, 900,
                                             1209600, /*negative ttl*/ 60});
  psl::dbound::publish_registry(shopify, "myshopify.com", /*ttl=*/3600);
  internet.add_zone(std::move(shopify));

  psl::dns::Zone bigcorp(name("bigcorp.com"),
                         psl::dns::SoaRecord{name("ns1.bigcorp.com"),
                                             name("hostmaster.bigcorp.com"), 1, 7200, 900,
                                             1209600, 60});
  psl::dbound::publish_org(bigcorp, "bigcorp.com", "bigcorp.com");
  internet.add_zone(std::move(bigcorp));

  psl::dns::Zone startup(name("newplatform.io"),
                         psl::dns::SoaRecord{name("ns1.newplatform.io"),
                                             name("hostmaster.newplatform.io"), 1, 7200, 900,
                                             1209600, 60});
  internet.add_zone(std::move(startup));

  psl::dns::StubResolver browser(internet);

  std::printf("Boundary discovery straight from the DNS (no list shipped):\n");
  probe(browser, "alice-store.myshopify.com", 0);
  probe(browser, "checkout.alice-store.myshopify.com", 1);
  probe(browser, "bob-store.myshopify.com", 2);
  probe(browser, "mail.bigcorp.com", 3);
  probe(browser, "www.bigcorp.com", 4);
  probe(browser, "tenant1.newplatform.io", 5);

  std::printf("\nsame_org(alice-store, bob-store) = %s  <- tenants separated, no PSL\n",
              psl::dbound::same_org(browser, "alice-store.myshopify.com",
                                    "bob-store.myshopify.com", 6)
                  ? "true"
                  : "false");

  // --- a boundary change propagating ---------------------------------------
  std::printf("\nnewplatform.io now opens tenant registrations and publishes\n"
              "a registry boundary (with the PSL this would be a pull request\n"
              "plus YEARS of stale embedded copies):\n");
  psl::dns::Zone* zone = internet.find_zone(name("newplatform.io"));
  psl::dbound::publish_registry(*zone, "newplatform.io", /*ttl=*/3600);

  probe(browser, "tenant1.newplatform.io", 30);  // negative cache still live
  std::printf("    ...one negative TTL (60s) later...\n");
  probe(browser, "tenant1.newplatform.io", 100);

  std::printf("\nResolver stats: %zu wire queries, %zu cache hits.\n",
              browser.wire_queries(), browser.cache_hits());
  return 0;
}
