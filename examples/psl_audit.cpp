// psl_audit: the audit tool the paper's methodology implies.
//
//   $ ./psl_audit <project-directory>
//   $ ./psl_audit            # self-demo against a generated scratch tree
//
// Walks a checkout looking for embedded PSL copies (public_suffix_list.dat
// or the legacy effective_tld_names.dat), estimates how old each copy is by
// matching its rules against the list's version history, classifies the
// usage (production / test / updated-at-build), and reports the rules the
// copy is missing relative to the newest list.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "psl/history/timeline.hpp"
#include "psl/repos/scanner.hpp"
#include "psl/util/strings.hpp"

namespace fs = std::filesystem;
using psl::history::TimelineSpec;
using psl::util::Date;

namespace {

/// With no argument, build a scratch "checkout" with three embedded copies
/// of different vintages so the tool has something to show.
fs::path make_demo_tree(const psl::history::History& history) {
  const fs::path root = fs::temp_directory_path() / "psl_audit_demo";
  fs::remove_all(root);

  auto write = [&](const fs::path& rel, const std::string& contents) {
    fs::create_directories((root / rel).parent_path());
    std::ofstream(root / rel, std::ios::binary) << contents;
  };

  write("password-manager/resources/public_suffix_list.dat",
        history.snapshot_at(Date::from_civil(2018, 7, 22)).to_file());
  write("crawler/tests/fixtures/public_suffix_list.dat",
        history.snapshot_at(Date::from_civil(2020, 1, 1)).to_file());
  write("dns-tool/data/effective_tld_names.dat",
        history.snapshot_at(Date::from_civil(2013, 3, 1)).to_file());
  write("dns-tool/Makefile",
        "psl:\n\tcurl -sSL https://publicsuffix.org/list/public_suffix_list.dat -o "
        "data/effective_tld_names.dat\n");
  return root;
}

}  // namespace

int main(int argc, char** argv) {
  std::printf("Building PSL version history (synthetic replay of 2007-2022)...\n");
  const auto history = psl::history::generate_history(TimelineSpec{});

  const fs::path root = argc > 1 ? fs::path(argv[1]) : make_demo_tree(history);
  std::printf("Auditing %s\n\n", root.string().c_str());

  const psl::repos::Scanner scanner(history);
  const auto findings = scanner.scan(root);
  if (!findings) {
    std::fprintf(stderr, "scan failed: %s\n", findings.error().message.c_str());
    return 1;
  }
  if (findings->empty()) {
    std::printf("No embedded PSL copies found.\n");
    return 0;
  }

  for (const auto& f : *findings) {
    std::printf("%s\n", f.path.string().c_str());
    std::printf("  usage:    %s\n", std::string(to_string(f.classified_usage)).c_str());
    std::printf("  rules:    %zu\n", f.rule_count);
    if (f.estimated_date) {
      std::printf("  vintage:  %s (~%d days old)\n", f.estimated_date->to_string().c_str(),
                  *f.estimated_age_days);
    } else {
      std::printf("  vintage:  unknown (no dated rules recognised)\n");
    }
    std::printf("  missing:  %s rules vs. the newest list\n",
                psl::util::with_commas(static_cast<long long>(f.missing_rule_count)).c_str());
    for (const auto& rule : f.missing_rules) {
      std::printf("            - %s\n", rule.c_str());
    }
    if (f.missing_rule_count > f.missing_rules.size()) {
      std::printf("            ... and %zu more\n", f.missing_rule_count - f.missing_rules.size());
    }
    std::printf("\n");
  }
  return 0;
}
