// Cookie guard: the paper's central harm, demonstrated end to end.
//
//   $ ./cookie_guard
//
// Replays the same Set-Cookie traffic through two browser cookie jars: one
// using the PSL as of mid-2018 (the vintage bitwarden/server shipped with
// at the paper's measurement date) and one using the newest list. The
// stale jar accepts "supercookies" scoped to shared-hosting suffixes the
// old list does not know, and then happily attaches them to requests for
// other tenants — cross-organization tracking.
#include <cstdio>

#include "psl/history/timeline.hpp"
#include "psl/web/cookie_jar.hpp"

using psl::history::TimelineSpec;
using psl::url::Url;
using psl::web::CookieJar;
using psl::web::SetCookieOutcome;

namespace {

void replay(CookieJar& jar, const char* label) {
  std::printf("--- %s ---\n", label);

  const auto origin = Url::parse("https://attacker-shop.myshopify.com/");
  const auto outcome =
      jar.set_from_header(*origin, "track=victim-123; Domain=myshopify.com; Path=/");
  std::printf("  store sets 'track=...; Domain=myshopify.com' -> %s\n",
              std::string(psl::web::to_string(outcome)).c_str());

  for (const char* target :
       {"https://attacker-shop.myshopify.com/", "https://victim-shop.myshopify.com/checkout"}) {
    const auto url = Url::parse(target);
    const auto sent = jar.cookies_for(*url);
    std::printf("  request to %-46s -> %zu cookie(s) attached\n", target, sent.size());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Generating the synthetic PSL history (2007-2022)...\n");
  const auto history = psl::history::generate_history(TimelineSpec{});

  const psl::List stale = history.snapshot_at(psl::util::Date::from_civil(2018, 7, 22));
  const psl::List& fresh = history.latest();
  std::printf("  stale list: %zu rules (2018-07); fresh list: %zu rules (2022-10)\n\n",
              stale.rule_count(), fresh.rule_count());

  CookieJar stale_jar(stale);
  replay(stale_jar, "browser with the STALE list (bitwarden-era copy)");

  CookieJar fresh_jar(fresh);
  replay(fresh_jar, "browser with the CURRENT list");

  std::printf(
      "With the stale list the supercookie lands and follows the user onto\n"
      "every other myshopify.com store; the current list rejects it outright,\n"
      "because myshopify.com was added to the PSL in 2021.\n");
  return 0;
}
