// Quickstart: parse a Public Suffix List and ask the questions browsers ask.
//
//   $ ./quickstart
//
// Demonstrates the core psl::List API: parsing the published file format,
// public_suffix() / registrable_domain() lookups, wildcard and exception
// rules, and the same_site() predicate that defines privacy boundaries.
#include <cstdio>

#include "psl/psl/list.hpp"

namespace {

constexpr std::string_view kListFile = R"(// A miniature PSL in the published format
// ===BEGIN ICANN DOMAINS===
com
uk
co.uk
jp
*.kawasaki.jp
!city.kawasaki.jp
// ===END ICANN DOMAINS===
// ===BEGIN PRIVATE DOMAINS===
github.io
myshopify.com
// ===END PRIVATE DOMAINS===
)";

void show(const psl::List& list, std::string_view host) {
  const psl::Match m = list.match(host);
  std::printf("  %-28s eTLD=%-16s eTLD+1=%-24s rule=%s\n", std::string(host).c_str(),
              m.public_suffix.c_str(),
              m.registrable_domain.empty() ? "(is a public suffix)" : m.registrable_domain.c_str(),
              m.prevailing_rule.empty() ? "(implicit *)" : m.prevailing_rule.c_str());
}

}  // namespace

int main() {
  auto parsed = psl::List::parse(kListFile);
  if (!parsed) {
    std::fprintf(stderr, "parse error: %s\n", parsed.error().message.c_str());
    return 1;
  }
  const psl::List& list = *parsed;
  std::printf("Loaded %zu rules.\n\n", list.rule_count());

  std::printf("Suffix lookups:\n");
  show(list, "www.google.com");
  show(list, "maps.google.com");
  show(list, "google.co.uk");
  show(list, "co.uk");
  show(list, "alice.github.io");
  show(list, "mystore.myshopify.com");
  show(list, "a.b.kawasaki.jp");          // wildcard rule
  show(list, "assets.city.kawasaki.jp");  // exception rule
  show(list, "something.unknown-tld");    // implicit * fallback

  std::printf("\nSite boundaries (the privacy question):\n");
  const auto same = [&](std::string_view a, std::string_view b) {
    std::printf("  same_site(%s, %s) = %s\n", std::string(a).c_str(), std::string(b).c_str(),
                list.same_site(a, b) ? "true" : "false");
  };
  same("www.google.com", "maps.google.com");
  same("google.co.uk", "yahoo.co.uk");
  same("alice.github.io", "bob.github.io");
  same("shop1.myshopify.com", "shop2.myshopify.com");
  return 0;
}
