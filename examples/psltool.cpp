// psltool: a command-line front end for the library.
//
//   psltool lookup <host> [list-file]        suffix / site / rule for a host
//   psltool check-cookie <origin-url> <set-cookie-header> [list-file]
//   psltool check-cert <pattern> [list-file] wildcard issuance verdict
//   psltool diff <old-list-file> <new-list-file>
//   psltool scan <directory>                 audit embedded PSL copies
//   psltool gen-list [YYYY-MM-DD]            emit a synthetic snapshot
//   psltool store build <out.pstore> [--tiny] [--max-versions N]
//                       [--list YYYY-MM-DD:FILE ...]
//                                            build a multi-version store file
//   psltool store stat <file.pstore>         store layout + dedup report
//   psltool census gen <out.csv> [--full]    emit a synthetic request corpus
//   psltool census replay <file.csv> <addr:port> [--batch N]
//                                            stream the corpus at a psld
//                                            --analytics census over the wire
//
// Without a list-file argument, commands run against the newest synthetic
// list (the full 9,368-rule 2022-10-20 snapshot). `store build` with no
// --list entries packs the synthetic history itself (every version, or the
// 96-version tiny timeline with --tiny); with --list entries it packs those
// dated PSL text files instead, oldest date first.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "psl/archive/corpus.hpp"
#include "psl/archive/csv.hpp"
#include "psl/history/timeline.hpp"
#include "psl/net/client.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/lint.hpp"
#include "psl/repos/scanner.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/store/store.hpp"
#include "psl/tls/wildcard.hpp"
#include "psl/url/url.hpp"
#include "psl/util/date.hpp"
#include "psl/util/strings.hpp"
#include "psl/web/cookie_jar.hpp"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: psltool <command> [args]\n"
               "  lookup <host> [list-file]\n"
               "  check-cookie <origin-url> <set-cookie-header> [list-file]\n"
               "  check-cert <pattern> [list-file]\n"
               "  diff <old-list-file> <new-list-file>\n"
               "  lint <list-file>\n"
               "  scan <directory>\n"
               "  advise <directory>\n"
               "  gen-list [YYYY-MM-DD]\n"
               "  store build <out.pstore> [--tiny] [--max-versions N]\n"
               "              [--list YYYY-MM-DD:FILE ...]\n"
               "  store stat <file.pstore>\n"
               "  census gen <out.csv> [--full]\n"
               "  census replay <file.csv> <addr:port> [--batch N]\n");
  return 2;
}

const psl::history::History& history() {
  static const psl::history::History h =
      psl::history::generate_history(psl::history::TimelineSpec{});
  return h;
}

std::optional<psl::List> load_list(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "psltool: cannot open %s\n", path);
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = psl::List::parse(buf.str());
  if (!parsed) {
    std::fprintf(stderr, "psltool: %s: %s\n", path, parsed.error().message.c_str());
    return std::nullopt;
  }
  return *std::move(parsed);
}

int cmd_lookup(int argc, char** argv) {
  if (argc < 3) return usage();
  auto host = psl::url::Host::parse(argv[2]);
  if (!host) {
    std::fprintf(stderr, "psltool: bad host: %s\n", host.error().message.c_str());
    return 1;
  }
  if (host->is_ip()) {
    std::printf("%s is an IP literal: no public suffix; it is its own site\n",
                host->name().c_str());
    return 0;
  }

  const auto run = [&](const psl::List& list) {
    const psl::Match m = list.match(host->name());
    std::printf("host:               %s\n", host->name().c_str());
    std::printf("public suffix:      %s\n", m.public_suffix.c_str());
    std::printf("registrable domain: %s\n",
                m.registrable_domain.empty() ? "(host is a public suffix)"
                                             : m.registrable_domain.c_str());
    std::printf("prevailing rule:    %s\n",
                m.prevailing_rule.empty() ? "(implicit *)" : m.prevailing_rule.c_str());
    std::printf("rule section:       %s\n",
                !m.matched_explicit_rule ? "-"
                : m.section == psl::Section::kPrivate ? "PRIVATE"
                                                      : "ICANN");
  };

  if (argc > 3) {
    const auto list = load_list(argv[3]);
    if (!list) return 1;
    run(*list);
  } else {
    run(history().latest());
  }
  return 0;
}

int cmd_check_cookie(int argc, char** argv) {
  if (argc < 4) return usage();
  auto origin = psl::url::Url::parse(argv[2]);
  if (!origin) {
    std::fprintf(stderr, "psltool: bad origin URL: %s\n", origin.error().message.c_str());
    return 1;
  }

  const auto run = [&](const psl::List& list) {
    psl::web::CookieJar jar(list);
    const auto outcome = jar.set_from_header(*origin, argv[3]);
    std::printf("origin:   %s\n", origin->to_string().c_str());
    std::printf("header:   %s\n", argv[3]);
    std::printf("verdict:  %s\n", std::string(to_string(outcome)).c_str());
    if (outcome == psl::web::SetCookieOutcome::kStored) {
      const psl::web::Cookie& c = jar.cookies().front();
      std::printf("stored:   %s=%s; domain=%s%s; path=%s\n", c.name.c_str(), c.value.c_str(),
                  c.host_only ? "" : ".", c.domain.c_str(), c.path.c_str());
    }
    return outcome == psl::web::SetCookieOutcome::kStored ? 0 : 1;
  };

  if (argc > 4) {
    const auto list = load_list(argv[4]);
    if (!list) return 1;
    return run(*list);
  }
  return run(history().latest());
}

int cmd_check_cert(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto run = [&](const psl::List& list) {
    const auto verdict = psl::tls::check_issuance(list, argv[2]);
    std::printf("pattern: %s\nverdict: %s\n", argv[2],
                std::string(to_string(verdict)).c_str());
    return verdict == psl::tls::IssuanceVerdict::kOk ? 0 : 1;
  };
  if (argc > 3) {
    const auto list = load_list(argv[3]);
    if (!list) return 1;
    return run(*list);
  }
  return run(history().latest());
}

int cmd_diff(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto old_list = load_list(argv[2]);
  const auto new_list = load_list(argv[3]);
  if (!old_list || !new_list) return 1;

  const auto [added, removed] = old_list->diff(*new_list);
  std::printf("%s: %zu rules\n%s: %zu rules\n", argv[2], old_list->rule_count(), argv[3],
              new_list->rule_count());
  std::printf("added (%zu):\n", added.size());
  for (const auto& rule : added) std::printf("  + %s\n", rule.to_string().c_str());
  std::printf("removed (%zu):\n", removed.size());
  for (const auto& rule : removed) std::printf("  - %s\n", rule.to_string().c_str());
  return added.empty() && removed.empty() ? 0 : 1;
}

int cmd_lint(int argc, char** argv) {
  if (argc < 3) return usage();
  const auto list = load_list(argv[2]);
  if (!list) return 1;
  const auto findings = psl::lint(*list);
  if (findings.empty()) {
    std::printf("%s: %zu rules, no lint findings\n", argv[2], list->rule_count());
    return 0;
  }
  for (const auto& f : findings) {
    std::printf("%s: %s: %s (%s)\n",
                f.severity == psl::LintSeverity::kError ? "error" : "warning",
                std::string(to_string(f.code)).c_str(), f.rule_text.c_str(),
                f.detail.c_str());
  }
  return 1;
}

int cmd_advise(int argc, char** argv) {
  if (argc < 3) return usage();
  const psl::repos::Scanner scanner(history());
  const auto findings = scanner.scan(argv[2]);
  if (!findings) {
    std::fprintf(stderr, "psltool: %s\n", findings.error().message.c_str());
    return 1;
  }
  for (const auto& f : *findings) {
    if (f.missing_rule_count == 0) continue;
    std::printf("%s\n%s\n", std::string(72, '=').c_str(),
                psl::repos::advisory_text(f).c_str());
  }
  return 0;
}

int cmd_scan(int argc, char** argv) {
  if (argc < 3) return usage();
  const psl::repos::Scanner scanner(history());
  const auto findings = scanner.scan(argv[2]);
  if (!findings) {
    std::fprintf(stderr, "psltool: %s\n", findings.error().message.c_str());
    return 1;
  }
  if (findings->empty()) {
    std::printf("no embedded PSL copies under %s\n", argv[2]);
    return 0;
  }
  for (const auto& f : *findings) {
    std::printf("%s\n  usage=%s rules=%zu", f.path.string().c_str(),
                std::string(to_string(f.classified_usage)).c_str(), f.rule_count);
    if (f.estimated_age_days) std::printf(" age=%dd", *f.estimated_age_days);
    std::printf(" missing=%zu\n", f.missing_rule_count);
  }
  return 0;
}

int cmd_gen_list(int argc, char** argv) {
  psl::List snapshot = [&] {
    if (argc > 2) {
      const auto date = psl::util::Date::parse(argv[2]);
      if (!date) {
        std::fprintf(stderr, "psltool: bad date %s (want YYYY-MM-DD)\n", argv[2]);
        std::exit(1);
      }
      return history().snapshot_at(*date);
    }
    return history().snapshot(history().version_count() - 1);
  }();
  std::fputs(snapshot.to_file().c_str(), stdout);
  return 0;
}

int cmd_store_build(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string out_path = argv[3];
  bool tiny = false;
  std::size_t max_versions = 0;  // 0 = unlimited
  struct DatedList {
    psl::util::Date date{0};
    std::string path;
  };
  std::vector<DatedList> lists;
  for (int i = 4; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tiny") {
      tiny = true;
    } else if (arg == "--max-versions") {
      if (i + 1 >= argc) return usage();
      max_versions = static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (arg == "--list") {
      if (i + 1 >= argc) return usage();
      const std::string_view spec = argv[++i];
      const std::size_t colon = spec.find(':');
      if (colon == std::string_view::npos) {
        std::fprintf(stderr, "psltool: bad --list spec %s (want YYYY-MM-DD:FILE)\n",
                     std::string(spec).c_str());
        return 1;
      }
      const auto date = psl::util::Date::parse(std::string(spec.substr(0, colon)));
      if (!date) {
        std::fprintf(stderr, "psltool: bad date in --list spec %s\n",
                     std::string(spec).c_str());
        return 1;
      }
      lists.push_back({*date, std::string(spec.substr(colon + 1))});
    } else {
      std::fprintf(stderr, "psltool: unknown store build argument %s\n", argv[i]);
      return usage();
    }
  }

  psl::store::Builder builder;
  const auto add = [&](const psl::List& list, psl::util::Date date) -> bool {
    psl::snapshot::Metadata meta;
    meta.source_date = date;
    meta.rule_count = list.rule_count();
    const auto added = builder.add(psl::CompiledMatcher(list), meta);
    if (!added) {
      std::fprintf(stderr, "psltool: store add (%s) failed: %s (%s)\n",
                   date.to_string().c_str(), added.error().message.c_str(),
                   added.error().code.c_str());
      return false;
    }
    return true;
  };

  if (!lists.empty()) {
    // Builder requires strictly increasing dates; accept specs in any order.
    std::sort(lists.begin(), lists.end(),
              [](const DatedList& a, const DatedList& b) { return a.date < b.date; });
    for (const auto& entry : lists) {
      const auto list = load_list(entry.path.c_str());
      if (!list) return 1;
      if (!add(*list, entry.date)) return 1;
      if (max_versions != 0 && builder.version_count() >= max_versions) break;
    }
  } else {
    psl::history::TimelineSpec spec;
    if (tiny) spec = psl::history::TimelineSpec::tiny();
    const auto h = psl::history::generate_history(spec);
    std::size_t count = h.version_count();
    if (max_versions != 0 && max_versions < count) count = max_versions;
    for (std::size_t v = 0; v < count; ++v) {
      if (!add(h.snapshot(v), h.version_date(v))) return 1;
    }
  }

  const auto written = builder.write_file(out_path);
  if (!written) {
    std::fprintf(stderr, "psltool: store write failed: %s (%s)\n",
                 written.error().message.c_str(), written.error().code.c_str());
    return 1;
  }
  const auto s = builder.stats();
  std::printf("wrote %s: %llu versions, %llu bytes (%.1f%% of %llu standalone bytes)\n",
              out_path.c_str(), static_cast<unsigned long long>(s.version_count),
              static_cast<unsigned long long>(*written), 100.0 * s.dedup_ratio(),
              static_cast<unsigned long long>(s.standalone_bytes));
  return 0;
}

int cmd_store_stat(int argc, char** argv) {
  if (argc < 4) return usage();
  const auto view = psl::store::StoreView::open(argv[3]);
  if (!view) {
    std::fprintf(stderr, "psltool: %s: %s (%s)\n", argv[3],
                 view.error().message.c_str(), view.error().code.c_str());
    return 1;
  }
  const psl::store::Stats s = (*view)->stats();
  std::printf("%s\n", argv[3]);
  std::printf("  versions:  %llu (%s .. %s)\n",
              static_cast<unsigned long long>(s.version_count),
              (*view)->version_date(0).to_string().c_str(),
              (*view)->version_date((*view)->version_count() - 1).to_string().c_str());
  std::printf("  file:      %llu bytes (%.1f%% of %llu standalone bytes)\n",
              static_cast<unsigned long long>(s.file_bytes), 100.0 * s.dedup_ratio(),
              static_cast<unsigned long long>(s.standalone_bytes));
  std::printf("  segments:  %llu (%llu raw / %llu bytes, %llu delta / %llu bytes)\n",
              static_cast<unsigned long long>(s.segment_count),
              static_cast<unsigned long long>(s.raw_segments),
              static_cast<unsigned long long>(s.raw_bytes),
              static_cast<unsigned long long>(s.delta_segments),
              static_cast<unsigned long long>(s.delta_bytes));
  std::printf("  newest:    %llu rules\n",
              static_cast<unsigned long long>(
                  (*view)->rule_count((*view)->version_count() - 1)));
  return 0;
}

int cmd_census_gen(int argc, char** argv) {
  if (argc < 4) return usage();
  const std::string out_path = argv[3];
  bool full = false;
  for (int i = 4; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--full") {
      full = true;
    } else {
      std::fprintf(stderr, "psltool: unknown census gen argument %s\n", argv[i]);
      return usage();
    }
  }
  const auto spec = full ? psl::archive::CorpusSpec{} : psl::archive::CorpusSpec::tiny();
  const auto corpus = psl::archive::generate_corpus(spec, history());
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::fprintf(stderr, "psltool: cannot write %s\n", out_path.c_str());
    return 1;
  }
  psl::archive::write_csv(corpus, out);
  if (!out.flush()) {
    std::fprintf(stderr, "psltool: write to %s failed\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s: %zu hosts, %zu requests\n", out_path.c_str(),
              corpus.unique_host_count(), corpus.request_count());
  return 0;
}

// Stream an archive CSV corpus at a psld --analytics census: each request
// becomes one (page_host, resource_host) record, timestamped with its
// record index so the census observes a deterministic monotonic clock.
int cmd_census_replay(int argc, char** argv) {
  if (argc < 5) return usage();
  const std::string csv_path = argv[3];
  const std::string_view endpoint = argv[4];
  std::size_t batch_size = 1024;
  for (int i = 5; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--batch" && i + 1 < argc) {
      const long parsed = std::atol(argv[++i]);
      if (parsed < 1) {
        std::fprintf(stderr, "psltool: bad --batch value\n");
        return 1;
      }
      batch_size = static_cast<std::size_t>(parsed);
    } else {
      std::fprintf(stderr, "psltool: unknown census replay argument %s\n", argv[i]);
      return usage();
    }
  }

  std::ifstream in(csv_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "psltool: cannot open %s\n", csv_path.c_str());
    return 1;
  }
  auto corpus = psl::archive::read_csv(in);
  if (!corpus) {
    std::fprintf(stderr, "psltool: %s: %s\n", csv_path.c_str(),
                 corpus.error().message.c_str());
    return 1;
  }

  const std::size_t colon = endpoint.rfind(':');
  if (colon == std::string_view::npos || colon == 0 || colon + 1 == endpoint.size()) {
    std::fprintf(stderr, "psltool: bad endpoint (want ADDR:PORT): %s\n",
                 std::string(endpoint).c_str());
    return 1;
  }
  const long port = std::atol(std::string(endpoint.substr(colon + 1)).c_str());
  if (port < 1 || port > 65535) {
    std::fprintf(stderr, "psltool: bad port in %s\n", std::string(endpoint).c_str());
    return 1;
  }
  auto client = psl::net::Client::connect(std::string(endpoint.substr(0, colon)),
                                          static_cast<std::uint16_t>(port));
  if (!client) {
    std::fprintf(stderr, "psltool: %s\n", client.error().message.c_str());
    return 1;
  }

  const auto& requests = corpus->requests();
  std::vector<psl::net::WireIngestRecord> batch;
  batch.reserve(batch_size);
  std::uint64_t sent = 0;
  std::uint64_t first_generation = 0, last_generation = 0;
  for (std::size_t offset = 0; offset < requests.size(); offset += batch_size) {
    const std::size_t end = std::min(offset + batch_size, requests.size());
    batch.clear();
    for (std::size_t i = offset; i < end; ++i) {
      batch.push_back(psl::net::WireIngestRecord{corpus->hostname(requests[i].page_host),
                                                 corpus->hostname(requests[i].resource_host),
                                                 static_cast<std::uint64_t>(i)});
    }
    for (;;) {
      auto ack = client->ingest_batch(batch);
      if (!ack) {
        if (ack.error().code == "net.backpressure") {
          // Engine queue full: nothing was ingested, retry the same batch.
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        }
        std::fprintf(stderr, "psltool: ingest failed at record %zu: %s (%s)\n", offset,
                     ack.error().message.c_str(), ack.error().code.c_str());
        return 1;
      }
      sent += ack->accepted;
      if (first_generation == 0) first_generation = ack->generation;
      last_generation = ack->generation;
      break;
    }
  }
  std::printf("replayed %llu records from %s (generation %llu..%llu)\n",
              static_cast<unsigned long long>(sent), csv_path.c_str(),
              static_cast<unsigned long long>(first_generation),
              static_cast<unsigned long long>(last_generation));
  return 0;
}

int cmd_census(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string_view sub = argv[2];
  if (sub == "gen") return cmd_census_gen(argc, argv);
  if (sub == "replay") return cmd_census_replay(argc, argv);
  return usage();
}

int cmd_store(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string_view sub = argv[2];
  if (sub == "build") return cmd_store_build(argc, argv);
  if (sub == "stat") return cmd_store_stat(argc, argv);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string_view command = argv[1];
  if (command == "lookup") return cmd_lookup(argc, argv);
  if (command == "check-cookie") return cmd_check_cookie(argc, argv);
  if (command == "check-cert") return cmd_check_cert(argc, argv);
  if (command == "diff") return cmd_diff(argc, argv);
  if (command == "lint") return cmd_lint(argc, argv);
  if (command == "scan") return cmd_scan(argc, argv);
  if (command == "advise") return cmd_advise(argc, argv);
  if (command == "gen-list") return cmd_gen_list(argc, argv);
  if (command == "store") return cmd_store(argc, argv);
  if (command == "census") return cmd_census(argc, argv);
  return usage();
}
