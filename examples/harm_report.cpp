// harm_report: the whole measurement study in one run.
//
//   $ ./harm_report [--small] [--markdown <file>]
//
// Generates the three corpora (PSL history, HTTP-Archive-like requests,
// repository dataset), runs the full harm analysis, and prints a compact
// version of every number the paper reports; --markdown additionally
// renders the full report as a markdown document. The bench/ binaries
// print the same artifacts one table/figure at a time; this example is the
// end-to-end tour of the public API.
#include <cstdio>
#include <cstring>
#include <fstream>

#include "psl/core/report.hpp"
#include "psl/core/report_writer.hpp"
#include "psl/history/timeline.hpp"
#include "psl/repos/corpus.hpp"
#include "psl/util/strings.hpp"
#include "psl/util/table.hpp"

#include <iostream>

using psl::util::with_commas;

int main(int argc, char** argv) {
  bool small = false;
  const char* markdown_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) small = true;
    if (std::strcmp(argv[i], "--markdown") == 0 && i + 1 < argc) markdown_path = argv[++i];
  }

  std::printf("[1/4] Generating PSL history (1,142 versions, 2007-2022)...\n");
  const auto history = psl::history::generate_history(psl::history::TimelineSpec{});

  std::printf("[2/4] Generating HTTP-Archive-like request corpus...\n");
  psl::archive::CorpusSpec corpus_spec;
  if (small) {
    corpus_spec.page_views = 4000;
    corpus_spec.organizations = 3000;
    corpus_spec.platform_tenant_scale = 0.1;
  }
  const auto corpus = psl::archive::generate_corpus(corpus_spec, history);
  std::printf("      %s unique hostnames, %s requests\n",
              with_commas(static_cast<long long>(corpus.unique_host_count())).c_str(),
              with_commas(static_cast<long long>(corpus.request_count())).c_str());

  std::printf("[3/4] Generating repository corpus (273 projects)...\n");
  const auto repos = psl::repos::generate_repo_corpus(psl::repos::RepoCorpusSpec{});

  std::printf("[4/4] Running the harm analysis...\n\n");
  psl::harm::ReportOptions options;
  options.sweep_points = small ? 12 : 24;
  const auto report = psl::harm::generate_report(history, corpus, repos, options);

  std::printf("== The list (Fig. 2) ==\n");
  std::printf("  rules: %zu (2007) -> %zu (2022)\n", report.first_version_rules,
              report.last_version_rules);
  for (const auto& [components, count] : report.component_histogram) {
    std::printf("  %zu-component rules: %zu (%.1f%%)\n", components, count,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(report.last_version_rules));
  }

  std::printf("\n== Project taxonomy (Table 1) ==\n");
  const auto& t = report.taxonomy;
  std::printf("  fixed:      %zu (%.1f%%)  [production %zu, test %zu, other %zu]\n", t.fixed,
              100.0 * t.fraction(t.fixed), t.fixed_production, t.fixed_test, t.fixed_other);
  std::printf("  updated:    %zu (%.1f%%)  [build %zu, user %zu, server %zu]\n", t.updated,
              100.0 * t.fraction(t.updated), t.updated_build, t.updated_user, t.updated_server);
  std::printf("  dependency: %zu (%.1f%%)\n", t.dependency, 100.0 * t.fraction(t.dependency));

  std::printf("\n== List ages (Fig. 3) ==\n");
  std::printf("  median (all/fixed/updated): %.0f / %.0f / %.0f days\n", report.ages.median_all,
              report.ages.median_fixed, report.ages.median_updated);
  std::printf("  stars-forks Pearson r (Fig. 4): %.3f\n", report.stars_forks_correlation);

  std::printf("\n== Version sweep (Figs. 5-7) ==\n");
  std::printf("  %-12s %8s %9s %12s %10s\n", "date", "rules", "sites", "3rd-party", "divergent");
  for (const auto& m : report.sweep) {
    std::printf("  %-12s %8zu %9zu %12zu %10zu\n", m.date.to_string().c_str(), m.rule_count,
                m.site_count, m.third_party_requests, m.divergent_hosts);
  }
  std::printf("  newest list forms %s more sites than the oldest (paper: +359,966 at full\n"
              "  HTTP Archive scale)\n",
              with_commas(static_cast<long long>(report.additional_sites_latest_vs_first)).c_str());

  std::printf("\n== Missing-eTLD impact (Table 2) ==\n");
  psl::util::TextTable table({"eTLD", "hostnames", "added", "D", "Prd", "T/O", "U"});
  for (const auto& i : report.top_impacts) {
    table.add_row({i.etld, std::to_string(i.hostnames), i.rule_added.to_string(),
                   std::to_string(i.missing_dependency),
                   std::to_string(i.missing_fixed_production),
                   std::to_string(i.missing_fixed_test_other),
                   std::to_string(i.missing_updated)});
  }
  table.print(std::cout);

  std::printf("\n== Headline ==\n");
  std::printf("  %s eTLDs are missing from at least one fixed-production project,\n",
              with_commas(static_cast<long long>(report.harmed_etlds)).c_str());
  std::printf("  affecting %s hostnames (paper: 1,313 eTLDs / 50,750 hostnames).\n",
              with_commas(static_cast<long long>(report.harmed_hostnames)).c_str());

  std::printf("\n== Per-project misclassified hostnames (Table 3, top 10 by stars) ==\n");
  std::size_t shown = 0;
  for (const auto& impact : report.repo_impacts) {
    if (shown++ >= 10) break;
    std::printf("  %-36s stars=%-6d age=%-5d misclassified=%zu\n", impact.repo->name.c_str(),
                impact.repo->stars, *impact.repo->list_age(),
                impact.misclassified_hostnames);
  }

  if (markdown_path != nullptr) {
    std::ofstream out(markdown_path, std::ios::binary);
    psl::harm::write_markdown(report, out);
    std::printf("\nMarkdown report written to %s\n", markdown_path);
  }
  return 0;
}
