#include "psl/idna/punycode.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "psl/idna/utf8.hpp"
#include "psl/util/rng.hpp"

namespace psl::idna {
namespace {

std::vector<CodePoint> cps_of(std::string_view utf8) {
  auto r = utf8_decode(utf8);
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

struct Vector {
  const char* unicode_utf8;
  const char* punycode;
};

// Well-known IDNA punycode pairs (label content, without the xn-- prefix).
const Vector kVectors[] = {
    {"b\xC3\xBC\x63her", "bcher-kva"},                              // bücher
    {"m\xC3\xBCnchen", "mnchen-3ya"},                               // münchen
    {"\xE4\xB8\xAD\xE5\x9B\xBD", "fiqs8s"},                         // 中国
    {"\xD0\xB8\xD1\x81\xD0\xBF\xD1\x8B\xD1\x82\xD0\xB0\xD0\xBD\xD0\xB8\xD0\xB5",
     "80akhbyknj4f"},                                               // испытание
    {"\xE2\x98\x83", "n3h"},                                        // ☃ snowman
};

class PunycodeVectorTest : public ::testing::TestWithParam<Vector> {};

TEST_P(PunycodeVectorTest, EncodesToKnownForm) {
  const auto encoded = punycode_encode(cps_of(GetParam().unicode_utf8));
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(*encoded, GetParam().punycode);
}

TEST_P(PunycodeVectorTest, DecodesFromKnownForm) {
  const auto decoded = punycode_decode(GetParam().punycode);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, cps_of(GetParam().unicode_utf8));
}

INSTANTIATE_TEST_SUITE_P(KnownVectors, PunycodeVectorTest, ::testing::ValuesIn(kVectors));

TEST(PunycodeTest, AllBasicInputGetsTrailingDelimiter) {
  // RFC 3492 section 7.1 (S): "-> $1.00 <-" encodes to itself plus "-".
  const auto encoded = punycode_encode(cps_of("-> $1.00 <-"));
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(*encoded, "-> $1.00 <--");
  const auto decoded = punycode_decode("-> $1.00 <--");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, cps_of("-> $1.00 <-"));
}

TEST(PunycodeTest, EmptyInput) {
  const auto encoded = punycode_encode({});
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(*encoded, "");
  const auto decoded = punycode_decode("");
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(PunycodeTest, DecodeRejectsInvalidDigits) {
  EXPECT_FALSE(punycode_decode("!!!").ok());
  EXPECT_FALSE(punycode_decode("abc_def").ok());
}

TEST(PunycodeTest, DecodeRejectsNonAsciiBeforeDelimiter) {
  EXPECT_EQ(punycode_decode("\xC3\xBC-abc").error().code, "punycode.non-basic");
}

TEST(PunycodeTest, DecodeRejectsTruncatedInteger) {
  // "a-" then nothing after starting a variable-length integer... a trailing
  // incomplete digit sequence must error, not crash.
  EXPECT_FALSE(punycode_decode("a-\x7F").ok());
}

TEST(PunycodeTest, EncodeRejectsSurrogates) {
  EXPECT_EQ(punycode_encode({0xD800}).error().code, "punycode.bad-scalar");
}

TEST(PunycodeTest, DecodeIsCaseInsensitiveInDigits) {
  const auto lower = punycode_decode("fiqs8s");
  const auto upper = punycode_decode("FIQS8S");
  ASSERT_TRUE(lower.ok());
  ASSERT_TRUE(upper.ok());
  EXPECT_EQ(*lower, *upper);
}

TEST(PunycodeTest, RandomRoundTripProperty) {
  util::Rng rng(1234);
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<CodePoint> input;
    const std::size_t len = 1 + rng.below(20);
    for (std::size_t i = 0; i < len; ++i) {
      if (rng.chance(0.5)) {
        input.push_back('a' + static_cast<CodePoint>(rng.below(26)));
      } else {
        // Non-ASCII scalar, avoiding surrogates.
        CodePoint cp;
        do {
          cp = 0x80 + static_cast<CodePoint>(rng.below(0x10FFFF - 0x80));
        } while (cp >= 0xD800 && cp <= 0xDFFF);
        input.push_back(cp);
      }
    }
    const auto encoded = punycode_encode(input);
    ASSERT_TRUE(encoded.ok());
    for (char c : *encoded) {
      EXPECT_LT(static_cast<unsigned char>(c), 0x80u);
    }
    const auto decoded = punycode_decode(*encoded);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, input) << "round-trip failed for iteration " << iter;
  }
}

}  // namespace
}  // namespace psl::idna
