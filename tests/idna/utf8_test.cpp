#include "psl/idna/utf8.hpp"

#include <gtest/gtest.h>

namespace psl::idna {
namespace {

TEST(Utf8Test, DecodesAscii) {
  const auto cps = utf8_decode("abc");
  ASSERT_TRUE(cps.ok());
  EXPECT_EQ(*cps, (std::vector<CodePoint>{'a', 'b', 'c'}));
}

TEST(Utf8Test, DecodesMultiByteSequences) {
  // U+00FC (2 bytes), U+4E2D (3 bytes), U+1F600 (4 bytes).
  const auto two = utf8_decode("\xC3\xBC");
  ASSERT_TRUE(two.ok());
  EXPECT_EQ((*two)[0], 0xFCu);

  const auto three = utf8_decode("\xE4\xB8\xAD");
  ASSERT_TRUE(three.ok());
  EXPECT_EQ((*three)[0], 0x4E2Du);

  const auto four = utf8_decode("\xF0\x9F\x98\x80");
  ASSERT_TRUE(four.ok());
  EXPECT_EQ((*four)[0], 0x1F600u);
}

TEST(Utf8Test, RejectsOverlongEncodings) {
  // 0xC0 0xAF is an overlong encoding of '/'.
  EXPECT_FALSE(utf8_decode("\xC0\xAF").ok());
  // Overlong 3-byte encoding of U+0000.
  EXPECT_FALSE(utf8_decode("\xE0\x80\x80").ok());
  EXPECT_EQ(utf8_decode("\xC0\xAF").error().code, "utf8.overlong");
}

TEST(Utf8Test, RejectsSurrogates) {
  // U+D800 encoded as ED A0 80.
  const auto r = utf8_decode("\xED\xA0\x80");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "utf8.surrogate");
}

TEST(Utf8Test, RejectsAboveMaxCodePoint) {
  // F4 90 80 80 is U+110000.
  const auto r = utf8_decode("\xF4\x90\x80\x80");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "utf8.out-of-range");
}

TEST(Utf8Test, RejectsTruncatedSequences) {
  EXPECT_EQ(utf8_decode("\xC3").error().code, "utf8.truncated");
  EXPECT_EQ(utf8_decode("\xE4\xB8").error().code, "utf8.truncated");
  EXPECT_EQ(utf8_decode("abc\xF0\x9F\x98").error().code, "utf8.truncated");
}

TEST(Utf8Test, RejectsBareContinuationAndBadLead) {
  EXPECT_EQ(utf8_decode("\x80").error().code, "utf8.bad-lead");
  EXPECT_EQ(utf8_decode("\xFF").error().code, "utf8.bad-lead");
  EXPECT_EQ(utf8_decode("\xC3\x41").error().code, "utf8.bad-continuation");
}

TEST(Utf8Test, EncodeBoundaryCodePoints) {
  // Each boundary encodes at its minimal length and round-trips.
  const std::vector<CodePoint> boundaries{0x7F, 0x80, 0x7FF, 0x800, 0xFFFF, 0x10000, 0x10FFFF};
  const auto encoded = utf8_encode(boundaries);
  ASSERT_TRUE(encoded.ok());
  EXPECT_EQ(encoded->size(), 1u + 2u + 2u + 3u + 3u + 4u + 4u);
  const auto decoded = utf8_decode(*encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, boundaries);
}

TEST(Utf8Test, EncodeRejectsNonScalars) {
  EXPECT_FALSE(utf8_encode({0xD800}).ok());
  EXPECT_FALSE(utf8_encode({0x110000}).ok());
}

TEST(Utf8Test, RoundTripMixedString) {
  const std::string original = "caf\xC3\xA9-\xE4\xB8\xAD\xE5\x9B\xBD-\xF0\x9F\x8C\x90";
  const auto cps = utf8_decode(original);
  ASSERT_TRUE(cps.ok());
  const auto back = utf8_encode(*cps);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, original);
}

TEST(Utf8Test, ValidityHelpers) {
  EXPECT_TRUE(utf8_valid("plain ascii"));
  EXPECT_TRUE(utf8_valid("\xC3\xBC"));
  EXPECT_FALSE(utf8_valid("\xC3"));
  EXPECT_TRUE(is_ascii("abc-123"));
  EXPECT_FALSE(is_ascii("\xC3\xBC"));
  EXPECT_TRUE(is_ascii(""));
}

}  // namespace
}  // namespace psl::idna
