#include "psl/idna/idna.hpp"

#include <gtest/gtest.h>

#include <string>

namespace psl::idna {
namespace {

TEST(IdnaLabelTest, AsciiLabelLowercased) {
  const auto r = label_to_ascii("ExAmPlE");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "example");
}

TEST(IdnaLabelTest, UnicodeLabelGetsAcePrefix) {
  const auto r = label_to_ascii("b\xC3\xBC\x63her");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "xn--bcher-kva");
}

TEST(IdnaLabelTest, UppercaseUnicodeFoldsAsciiLetters) {
  const auto upper = label_to_ascii("B\xC3\xBC\x43HER");
  const auto lower = label_to_ascii("b\xC3\xBC\x63her");
  ASSERT_TRUE(upper.ok());
  ASSERT_TRUE(lower.ok());
  EXPECT_EQ(*upper, *lower);
}

TEST(IdnaLabelTest, EmptyLabelRejected) {
  EXPECT_EQ(label_to_ascii("").error().code, "idna.empty-label");
}

TEST(IdnaLabelTest, OverlongLabelRejected) {
  const std::string long_label(64, 'a');
  EXPECT_EQ(label_to_ascii(long_label).error().code, "idna.label-too-long");
  const std::string max_label(63, 'a');
  EXPECT_TRUE(label_to_ascii(max_label).ok());
}

TEST(IdnaLabelTest, InvalidUtf8Rejected) {
  EXPECT_FALSE(label_to_ascii("\xC3").ok());
}

TEST(IdnaLabelTest, ToUnicodeDecodesAceLabels) {
  const auto r = label_to_unicode("xn--bcher-kva");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "b\xC3\xBC\x63her");
}

TEST(IdnaLabelTest, ToUnicodePassesAsciiThrough) {
  const auto r = label_to_unicode("Example");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "example");
}

TEST(IdnaLabelTest, RoundTripAsciiUnicode) {
  for (const char* label : {"b\xC3\xBC\x63her", "m\xC3\xBCnchen", "\xE4\xB8\xAD\xE5\x9B\xBD"}) {
    const auto ascii = label_to_ascii(label);
    ASSERT_TRUE(ascii.ok());
    const auto unicode = label_to_unicode(*ascii);
    ASSERT_TRUE(unicode.ok());
    EXPECT_EQ(*unicode, label);
  }
}

TEST(IdnaHostTest, ConvertsWholeHost) {
  const auto r = host_to_ascii("WWW.Example.COM");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "www.example.com");
}

TEST(IdnaHostTest, StripsSingleTrailingDot) {
  const auto r = host_to_ascii("example.com.");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "example.com");
}

TEST(IdnaHostTest, RejectsEmptyAndDotOnlyHosts) {
  EXPECT_EQ(host_to_ascii("").error().code, "idna.empty-host");
  EXPECT_EQ(host_to_ascii(".").error().code, "idna.empty-host");
}

TEST(IdnaHostTest, RejectsEmptyLabels) {
  EXPECT_FALSE(host_to_ascii("a..b").ok());
  EXPECT_FALSE(host_to_ascii(".leading.com").ok());
}

TEST(IdnaHostTest, MixedUnicodeHost) {
  const auto r = host_to_ascii("www.b\xC3\xBC\x63her.de");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "www.xn--bcher-kva.de");
}

TEST(IdnaHostTest, HostToUnicode) {
  const auto r = host_to_unicode("www.xn--bcher-kva.de");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "www.b\xC3\xBC\x63her.de");
}

TEST(IdnaHostTest, RejectsOverlongHost) {
  // 64 labels of "abc." is 256 chars > 253.
  std::string host;
  for (int i = 0; i < 64; ++i) host += "abc.";
  host.pop_back();
  EXPECT_EQ(host_to_ascii(host).error().code, "idna.host-too-long");
}

TEST(LdhTest, AcceptsValidLabels) {
  EXPECT_TRUE(is_ldh_label("example"));
  EXPECT_TRUE(is_ldh_label("EXAMPLE"));
  EXPECT_TRUE(is_ldh_label("foo-bar"));
  EXPECT_TRUE(is_ldh_label("a1b2"));
  EXPECT_TRUE(is_ldh_label("x"));
  EXPECT_TRUE(is_ldh_label(std::string(63, 'z')));
}

TEST(LdhTest, RejectsInvalidLabels) {
  EXPECT_FALSE(is_ldh_label(""));
  EXPECT_FALSE(is_ldh_label("-leading"));
  EXPECT_FALSE(is_ldh_label("trailing-"));
  EXPECT_FALSE(is_ldh_label("under_score"));
  EXPECT_FALSE(is_ldh_label("sp ace"));
  EXPECT_FALSE(is_ldh_label("b\xC3\xBC\x63her"));
  EXPECT_FALSE(is_ldh_label(std::string(64, 'z')));
}

}  // namespace
}  // namespace psl::idna
