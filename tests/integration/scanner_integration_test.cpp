// Scanner-over-synthetic-repo integration: materialise fake project
// checkouts whose embedded PSL copies come from real history snapshots,
// then verify the scanner reconstructs the vintage/usage labels the corpus
// generator assigned — the round trip at the heart of the paper's method.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "psl/core/impact.hpp"
#include "psl/history/timeline.hpp"
#include "psl/repos/corpus.hpp"
#include "psl/repos/scanner.hpp"

namespace psl::repos {
namespace {

namespace fs = std::filesystem;
using util::Date;

const history::History& hist() {
  static const history::History h = history::generate_history(history::TimelineSpec::tiny());
  return h;
}

class ScratchTree {
 public:
  ScratchTree() {
    // ctest runs each test case as its own parallel process: include the
    // pid so concurrent cases never share a tree.
    root_ = fs::temp_directory_path() /
            ("psl_scan_integ_" + std::to_string(::getpid()) + "_" + std::to_string(counter_++));
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~ScratchTree() { fs::remove_all(root_); }
  const fs::path& root() const { return root_; }

  void write(const fs::path& rel, const std::string& contents) const {
    fs::create_directories((root_ / rel).parent_path());
    std::ofstream(root_ / rel, std::ios::binary) << contents;
  }

 private:
  static inline int counter_ = 0;
  fs::path root_;
};

TEST(ScannerIntegrationTest, ReconstructsVintagesAcrossManyRepos) {
  ScratchTree tree;

  // Materialise 8 "repositories" with embedded copies of increasing age.
  std::vector<Date> vintages;
  const std::size_t n_versions = hist().version_count();
  for (int i = 0; i < 8; ++i) {
    const std::size_t version = n_versions - 1 - static_cast<std::size_t>(i) * (n_versions / 9);
    const Date date = hist().version_date(version);
    vintages.push_back(date);
    tree.write("repo" + std::to_string(i) + "/data/public_suffix_list.dat",
               hist().snapshot(version).to_file());
  }

  const Scanner scanner(hist());
  auto findings = scanner.scan(tree.root());
  ASSERT_TRUE(findings.ok());
  ASSERT_EQ(findings->size(), 8u);

  // Sort findings by path to line up with repo index.
  std::sort(findings->begin(), findings->end(),
            [](const ScanFinding& a, const ScanFinding& b) { return a.path < b.path; });

  for (int i = 0; i < 8; ++i) {
    const ScanFinding& f = (*findings)[static_cast<std::size_t>(i)];
    ASSERT_TRUE(f.estimated_date.has_value()) << f.path;
    // Lower bound is sound: estimate never postdates the actual vintage.
    EXPECT_LE(*f.estimated_date, vintages[static_cast<std::size_t>(i)]);
  }

  // Older copies miss at least as many rules as newer ones.
  for (int i = 1; i < 8; ++i) {
    EXPECT_GE((*findings)[static_cast<std::size_t>(i)].missing_rule_count,
              (*findings)[static_cast<std::size_t>(i - 1)].missing_rule_count)
        << "repo" << i;
  }
}

TEST(ScannerIntegrationTest, FindingsFeedTheImpactPipeline) {
  // A finding's estimated date can be used directly as a RepoRecord list
  // date, connecting the scanner to the Table 2/3 analyses.
  ScratchTree tree;
  const Date vintage = hist().version_date(hist().version_count() / 2);
  tree.write("myapp/public_suffix_list.dat", hist().snapshot_at(vintage).to_file());

  const Scanner scanner(hist());
  auto findings = scanner.scan(tree.root());
  ASSERT_TRUE(findings.ok());
  ASSERT_EQ(findings->size(), 1u);
  const ScanFinding& f = (*findings)[0];
  ASSERT_TRUE(f.estimated_date.has_value());

  RepoRecord record;
  record.name = "local/myapp";
  record.usage = f.classified_usage;
  record.list_date = f.estimated_date;
  record.anchored = true;

  const archive::Corpus corpus =
      archive::generate_corpus(archive::CorpusSpec::tiny(), hist());
  const harm::Sweeper sweeper(hist(), corpus);
  const std::vector<RepoRecord> one{record};
  const auto impacts = harm::per_repo_divergence(hist(), corpus, sweeper, one, true);
  ASSERT_EQ(impacts.size(), 1u);
  EXPECT_GT(impacts[0].misclassified_hostnames, 0u);
}

TEST(ScannerIntegrationTest, MixedUsageTreeClassifiedPerCopy) {
  ScratchTree tree;
  const std::string latest_file = hist().latest().to_file();
  tree.write("proj/src/public_suffix_list.dat", latest_file);
  tree.write("proj/tests/fixtures/public_suffix_list.dat", latest_file);
  tree.write("updated/data/public_suffix_list.dat", latest_file);
  tree.write("updated/Makefile", "all:\n\tcurl https://publicsuffix.org/list/ -o data/psl\n");

  const Scanner scanner(hist());
  auto findings = scanner.scan(tree.root());
  ASSERT_TRUE(findings.ok());
  ASSERT_EQ(findings->size(), 3u);

  std::size_t production = 0, test = 0, updated = 0;
  for (const ScanFinding& f : *findings) {
    switch (f.classified_usage) {
      case Usage::kFixedProduction: ++production; break;
      case Usage::kFixedTest: ++test; break;
      case Usage::kUpdatedBuild: ++updated; break;
      default: break;
    }
  }
  EXPECT_EQ(production, 1u);
  EXPECT_EQ(test, 1u);
  EXPECT_EQ(updated, 1u);
}

}  // namespace
}  // namespace psl::repos
