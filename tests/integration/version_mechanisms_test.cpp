// Cross-version property sweep: the browser-side mechanisms must get
// strictly more protective as the list gets newer — the temporal essence of
// the paper, stated as an invariant and checked at every sampled vintage.
#include <gtest/gtest.h>

#include "psl/history/timeline.hpp"
#include "psl/tls/wildcard.hpp"
#include "psl/web/cookie_jar.hpp"
#include "psl/web/navigation.hpp"

namespace psl {
namespace {

const history::History& hist() {
  static const history::History h = history::generate_history(history::TimelineSpec{});
  return h;
}

/// The PRIVATE-section suffixes of the newest list — the attack surface.
const std::vector<std::string>& platform_suffixes() {
  static const std::vector<std::string> suffixes = [] {
    std::vector<std::string> out;
    for (const Rule& rule : hist().latest().rules()) {
      if (rule.section() == Section::kPrivate && rule.kind() == RuleKind::kNormal) {
        out.push_back(rule.to_string());
      }
    }
    return out;
  }();
  return suffixes;
}

class VersionYearTest : public ::testing::TestWithParam<int> {};

std::size_t supercookies_rejected(const List& list) {
  web::CookieJar jar(list);
  std::size_t rejected = 0;
  for (const std::string& suffix : platform_suffixes()) {
    const auto origin = url::Url::parse("https://tenant." + suffix + "/");
    if (!origin.ok()) continue;
    if (jar.set_from_header(*origin, "t=1; Domain=" + suffix) ==
        web::SetCookieOutcome::kRejectedSupercookie) {
      ++rejected;
    }
  }
  return rejected;
}

TEST_P(VersionYearTest, SupercookieRejectionGrowsWithListFreshness) {
  const int year = GetParam();
  const List this_year = hist().snapshot_at(util::Date::from_civil(year, 7, 1));
  const List next_year = hist().snapshot_at(util::Date::from_civil(year + 2, 7, 1));
  EXPECT_LE(supercookies_rejected(this_year), supercookies_rejected(next_year))
      << "between " << year << " and " << year + 2;
}

TEST_P(VersionYearTest, WildcardIssuanceRefusalGrows) {
  const int year = GetParam();
  const List this_year = hist().snapshot_at(util::Date::from_civil(year, 7, 1));
  const List next_year = hist().snapshot_at(util::Date::from_civil(year + 2, 7, 1));
  const auto refused = [&](const List& list) {
    std::size_t n = 0;
    for (const std::string& suffix : platform_suffixes()) {
      n += tls::check_issuance(list, "*." + suffix) ==
           tls::IssuanceVerdict::kRejectedPublicSuffix;
    }
    return n;
  };
  EXPECT_LE(refused(this_year), refused(next_year));
}

TEST_P(VersionYearTest, DocumentDomainRefusalGrows) {
  const int year = GetParam();
  const List this_year = hist().snapshot_at(util::Date::from_civil(year, 7, 1));
  const List next_year = hist().snapshot_at(util::Date::from_civil(year + 2, 7, 1));
  const auto refused = [&](const List& list) {
    std::size_t n = 0;
    for (const std::string& suffix : platform_suffixes()) {
      n += web::check_document_domain(list, "tenant." + suffix, suffix) ==
           web::DocumentDomainOutcome::kRejectedPublicSuffix;
    }
    return n;
  };
  EXPECT_LE(refused(this_year), refused(next_year));
}

TEST(VersionMechanismsTest, NewestListRejectsEveryPlatformSupercookie) {
  EXPECT_EQ(supercookies_rejected(hist().latest()), platform_suffixes().size());
}

TEST(VersionMechanismsTest, EarliestListRejectsAlmostNone) {
  const List earliest = hist().snapshot(0);
  EXPECT_LT(supercookies_rejected(earliest), platform_suffixes().size() / 100);
}

INSTANTIATE_TEST_SUITE_P(Years, VersionYearTest,
                         ::testing::Values(2008, 2010, 2012, 2014, 2016, 2018, 2020));

}  // namespace
}  // namespace psl
