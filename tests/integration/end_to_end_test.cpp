// Full-pipeline integration: generate every corpus, run the complete harm
// report, and check the cross-module invariants and paper-shape claims that
// no single module can see on its own.
#include <gtest/gtest.h>

#include "psl/core/report.hpp"
#include "psl/history/timeline.hpp"
#include "psl/repos/corpus.hpp"
#include "psl/web/autofill.hpp"
#include "psl/web/cookie_jar.hpp"

namespace psl::harm {
namespace {

struct Fixture {
  history::History history;
  archive::Corpus corpus;
  std::vector<repos::RepoRecord> repos;
  HarmReport report;
};

const Fixture& fixture() {
  static const Fixture f = [] {
    history::History h = history::generate_history(history::TimelineSpec::tiny());
    archive::Corpus c = archive::generate_corpus(archive::CorpusSpec::tiny(), h);
    std::vector<repos::RepoRecord> r = repos::generate_repo_corpus(repos::RepoCorpusSpec{});
    ReportOptions options;
    options.sweep_points = 12;
    HarmReport report = generate_report(h, c, r, options);
    return Fixture{std::move(h), std::move(c), std::move(r), std::move(report)};
  }();
  return f;
}

TEST(EndToEndTest, ReportCoversEveryPaperArtifact) {
  const HarmReport& r = fixture().report;
  // Fig. 2 inputs.
  EXPECT_GT(r.last_version_rules, r.first_version_rules);
  EXPECT_FALSE(r.component_histogram.empty());
  // Table 1.
  EXPECT_EQ(r.taxonomy.total, 273u);
  // Fig. 3.
  EXPECT_GT(r.ages.median_fixed, 0.0);
  // Fig. 4 companion.
  EXPECT_GT(r.stars_forks_correlation, 0.9);
  // Figs. 5-7.
  ASSERT_GE(r.sweep.size(), 2u);
  EXPECT_GT(r.additional_sites_latest_vs_first, 0u);
  // Table 2 + headline.
  EXPECT_FALSE(r.top_impacts.empty());
  EXPECT_GT(r.harmed_etlds, 0u);
  EXPECT_GT(r.harmed_hostnames, 0u);
  // Table 3 column.
  EXPECT_EQ(r.repo_impacts.size(), 47u);
}

TEST(EndToEndTest, SweepEndpointsAnchorTheHeadline) {
  const HarmReport& r = fixture().report;
  EXPECT_EQ(r.sweep.back().divergent_hosts, 0u);
  EXPECT_GT(r.sweep.front().divergent_hosts, 0u);
  EXPECT_EQ(r.additional_sites_latest_vs_first,
            r.sweep.back().site_count - r.sweep.front().site_count);
}

TEST(EndToEndTest, TopImpactsRespectOptionLimit) {
  EXPECT_LE(fixture().report.top_impacts.size(), ReportOptions{}.top_etlds);
}

TEST(EndToEndTest, HarmedHostnamesIsPlausibleFractionOfCorpus) {
  const Fixture& f = fixture();
  EXPECT_LT(f.report.harmed_hostnames, f.corpus.unique_host_count());
  EXPECT_GT(f.report.harmed_hostnames, f.corpus.unique_host_count() / 1000);
}

TEST(EndToEndTest, RepoImpactsAlignWithDivergenceSweep) {
  // Every anchored repo's misclassified count must sit between the newest
  // and oldest versions' divergence counts.
  const Fixture& f = fixture();
  const std::size_t max_divergence = f.report.sweep.front().divergent_hosts;
  for (const RepoImpact& impact : f.report.repo_impacts) {
    EXPECT_LE(impact.misclassified_hostnames, max_divergence + 10);
  }
}

TEST(EndToEndTest, DeterministicEndToEnd) {
  // Re-running the entire pipeline reproduces the headline numbers exactly.
  history::History h = history::generate_history(history::TimelineSpec::tiny());
  archive::Corpus c = archive::generate_corpus(archive::CorpusSpec::tiny(), h);
  std::vector<repos::RepoRecord> r = repos::generate_repo_corpus(repos::RepoCorpusSpec{});
  ReportOptions options;
  options.sweep_points = 12;
  const HarmReport again = generate_report(h, c, r, options);

  const HarmReport& first = fixture().report;
  EXPECT_EQ(again.harmed_etlds, first.harmed_etlds);
  EXPECT_EQ(again.harmed_hostnames, first.harmed_hostnames);
  EXPECT_EQ(again.additional_sites_latest_vs_first, first.additional_sites_latest_vs_first);
  ASSERT_EQ(again.sweep.size(), first.sweep.size());
  for (std::size_t i = 0; i < again.sweep.size(); ++i) {
    EXPECT_EQ(again.sweep[i].site_count, first.sweep[i].site_count);
    EXPECT_EQ(again.sweep[i].third_party_requests, first.sweep[i].third_party_requests);
  }
}

TEST(EndToEndTest, CookieHarmMatchesSiteFormationHarm) {
  // Cross-module consistency: for a platform suffix the old list is
  // missing, the cookie jar accepts the supercookie exactly when the site
  // former merges the tenants.
  const Fixture& f = fixture();
  const List old_list = f.history.snapshot_at(util::Date::from_civil(2018, 7, 1));
  const List& new_list = f.history.latest();

  const auto origin = url::Url::parse("https://store1.myshopify.com/");
  ASSERT_TRUE(origin.ok());

  web::CookieJar stale_jar(old_list);
  web::CookieJar fresh_jar(new_list);
  const auto header = "track=x; Domain=myshopify.com";
  EXPECT_EQ(stale_jar.set_from_header(*origin, header), web::SetCookieOutcome::kStored);
  EXPECT_EQ(fresh_jar.set_from_header(*origin, header),
            web::SetCookieOutcome::kRejectedSupercookie);

  EXPECT_TRUE(old_list.same_site("store1.myshopify.com", "store2.myshopify.com"));
  EXPECT_FALSE(new_list.same_site("store1.myshopify.com", "store2.myshopify.com"));
}

TEST(EndToEndTest, AutofillHarmTracksRuleAdditions) {
  const Fixture& f = fixture();
  const List old_list = f.history.snapshot_at(util::Date::from_civil(2018, 7, 1));
  const List& new_list = f.history.latest();

  web::AutofillMatcher manager;
  manager.store("mystore.myshopify.com", "merchant", "secret");
  const auto leaked =
      manager.leaked_suggestions("evilstore.myshopify.com", old_list, new_list);
  ASSERT_EQ(leaked.size(), 1u);
  EXPECT_EQ(leaked[0]->username, "merchant");
}

}  // namespace
}  // namespace psl::harm
