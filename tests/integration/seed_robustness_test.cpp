// Seed-robustness: the paper-shape conclusions must not be artifacts of the
// particular default seeds. Rerun the (tiny-scale) pipeline under several
// unrelated seeds and check that every DIRECTIONAL claim survives — growth,
// monotone divergence, strategy orderings, harm ordering by rule age.
// Absolute values may and do move; directions may not.
#include <gtest/gtest.h>

#include <algorithm>

#include "psl/core/report.hpp"
#include "psl/history/timeline.hpp"
#include "psl/repos/corpus.hpp"

namespace psl::harm {
namespace {

struct Pipeline {
  history::History history;
  archive::Corpus corpus;
  std::vector<repos::RepoRecord> repos;
  HarmReport report;
};

Pipeline run_pipeline(std::uint64_t seed) {
  history::TimelineSpec tspec = history::TimelineSpec::tiny();
  tspec.seed = seed;
  history::History history = history::generate_history(tspec);

  archive::CorpusSpec cspec = archive::CorpusSpec::tiny();
  cspec.seed = seed ^ 0xC0FFEE;
  archive::Corpus corpus = archive::generate_corpus(cspec, history);

  repos::RepoCorpusSpec rspec;
  rspec.seed = seed ^ 0xBEEF;
  std::vector<repos::RepoRecord> repos = repos::generate_repo_corpus(rspec);

  ReportOptions options;
  options.sweep_points = 10;
  HarmReport report = generate_report(history, corpus, repos, options);
  return Pipeline{std::move(history), std::move(corpus), std::move(repos),
                  std::move(report)};
}

class SeedRobustnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedRobustnessTest, DirectionalClaimsHold) {
  const Pipeline p = run_pipeline(GetParam());
  const HarmReport& r = p.report;

  // The list grows; the corpus forms more sites under newer lists.
  EXPECT_GT(r.last_version_rules, r.first_version_rules);
  EXPECT_GT(r.sweep.back().site_count, r.sweep.front().site_count);

  // Divergence ends at zero and starts positive.
  EXPECT_EQ(r.sweep.back().divergent_hosts, 0u);
  EXPECT_GT(r.sweep.front().divergent_hosts, 0u);

  // Taxonomy counts are seed-independent (anchored to Table 1).
  EXPECT_EQ(r.taxonomy.total, 273u);
  EXPECT_EQ(r.taxonomy.fixed_production, 43u);

  // The fixed median is pinned by the Table 3 anchors regardless of seed.
  EXPECT_DOUBLE_EQ(r.ages.median_fixed, 825.0);

  // Popularity proxy correlation persists.
  EXPECT_GT(r.stars_forks_correlation, 0.9);

  // Harm exists and is a minority of the corpus.
  EXPECT_GT(r.harmed_etlds, 0u);
  EXPECT_GT(r.harmed_hostnames, 0u);
  EXPECT_LT(r.harmed_hostnames, p.corpus.unique_host_count());
}

TEST_P(SeedRobustnessTest, LateRulesMissedByMoreProjects) {
  const Pipeline p = run_pipeline(GetParam());
  const ImpactSummary impacts = compute_etld_impacts(p.history, p.corpus, p.repos);
  const auto find = [&](std::string_view etld) -> const EtldImpact* {
    for (const auto& i : impacts.impacts) {
      if (i.etld == etld) return &i;
    }
    return nullptr;
  };
  const EtldImpact* early = find("sp.gov.br");               // 2017 rule
  const EtldImpact* late = find("digitaloceanspaces.com");   // 2022 rule
  ASSERT_NE(early, nullptr);
  ASSERT_NE(late, nullptr);
  EXPECT_LT(early->missing_fixed_production, late->missing_fixed_production);
}

TEST_P(SeedRobustnessTest, OlderRepoListsMisclassifyMore) {
  const Pipeline p = run_pipeline(GetParam());
  // Spearman-ish check: among anchored repos, the oldest third must on
  // average misclassify more than the newest third.
  std::vector<const RepoImpact*> sorted;
  for (const RepoImpact& impact : p.report.repo_impacts) sorted.push_back(&impact);
  ASSERT_GE(sorted.size(), 9u);
  std::sort(sorted.begin(), sorted.end(), [](const RepoImpact* a, const RepoImpact* b) {
    return *a->repo->list_age() < *b->repo->list_age();
  });
  const std::size_t third = sorted.size() / 3;
  double newest = 0, oldest = 0;
  for (std::size_t i = 0; i < third; ++i) {
    newest += static_cast<double>(sorted[i]->misclassified_hostnames);
    oldest += static_cast<double>(sorted[sorted.size() - 1 - i]->misclassified_hostnames);
  }
  EXPECT_GT(oldest, newest);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedRobustnessTest, ::testing::Values(11, 1234, 987654321));

}  // namespace
}  // namespace psl::harm
