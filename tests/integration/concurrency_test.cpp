// Concurrency: const lookups on shared immutable structures must be safe
// from many threads (Core Guidelines CP.2 — a const API implies thread-safe
// reads). Run under the full list and the corpus pipeline.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "psl/core/site_former.hpp"
#include "psl/history/timeline.hpp"
#include "psl/web/cookie_jar.hpp"

namespace psl {
namespace {

const history::History& hist() {
  static const history::History h = generate_history(history::TimelineSpec{});
  return h;
}

TEST(ConcurrencyTest, ParallelMatchesAgree) {
  const List& list = hist().latest();
  const std::vector<std::string> hosts = {
      "www.amazon.co.uk", "store.myshopify.com", "a.b.kawasaki.jp",
      "alice.github.io",  "deep.x.y.example.com", "www.ck",
  };

  // Reference answers, single-threaded.
  std::vector<std::string> expected;
  for (const auto& host : hosts) expected.push_back(list.public_suffix(host));

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 20000; ++iter) {
        const std::size_t i = static_cast<std::size_t>(iter) % hosts.size();
        if (list.public_suffix(hosts[i]) != expected[i]) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, ParallelSiteAssignmentsAreIdentical) {
  const List& list = hist().latest();
  const std::vector<std::string> hosts = {
      "a.x.com", "b.x.com", "c.y.co.uk", "d.myshopify.com", "10.1.2.3",
  };
  const harm::SiteAssignment reference = harm::assign_sites(list, hosts);

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int iter = 0; iter < 500; ++iter) {
        const harm::SiteAssignment mine = harm::assign_sites(list, hosts);
        if (harm::divergent_hosts(mine, reference) != 0) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ConcurrencyTest, IndependentCookieJarsDoNotInterfere) {
  const List& list = hist().latest();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&, t] {
      web::CookieJar jar(list);  // one jar per thread
      const auto origin =
          url::Url::parse("https://tenant" + std::to_string(t) + ".example.com/");
      for (int iter = 0; iter < 2000; ++iter) {
        if (jar.set_from_header(*origin, "c" + std::to_string(iter % 16) + "=v") !=
            web::SetCookieOutcome::kStored) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (jar.size() != 16) failures.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace psl
