#include "psl/http/crawler.hpp"

#include <gtest/gtest.h>

#include <map>

#include "psl/history/timeline.hpp"

namespace psl::http {
namespace {

const history::History& hist() {
  static const history::History h = history::generate_history(history::TimelineSpec::tiny());
  return h;
}

const archive::Corpus& corpus() {
  static const archive::Corpus c =
      archive::generate_corpus(archive::CorpusSpec::tiny(), hist());
  return c;
}

const VirtualWeb& vweb() {
  static const VirtualWeb web(corpus(), hist().latest(), /*max_pages=*/120);
  return web;
}

TEST(VirtualWebTest, ServesPagesAndAssets) {
  Request request;
  request.target = "/page/0";
  const std::string first_page_host =
      url::Url::parse(vweb().page_urls().front())->host().name();
  const Response page = vweb().serve(first_page_host, request);
  EXPECT_EQ(page.status, 200);
  EXPECT_NE(page.body.find("<html>"), std::string::npos);

  Request asset;
  asset.target = "/asset/0";
  const Response resource = vweb().serve(corpus().hostname(0), asset);
  EXPECT_EQ(resource.status, 200);
}

TEST(VirtualWebTest, ErrorPaths) {
  Request request;
  request.target = "/page/0";
  EXPECT_EQ(vweb().serve("no-such-host.example", request).status, 502);
  Request missing;
  missing.target = "/definitely/missing";
  EXPECT_EQ(vweb().serve(corpus().hostname(0), missing).status, 404);
}

TEST(CrawlerTest, CrawlReproducesTheCorpusRequestLog) {
  // The validation loop: corpus -> synthetic web -> HTTP crawl -> request
  // log. The multiset of (page, resource) pairs must match the corpus's
  // own first N page views exactly.
  Crawler crawler(vweb(), hist().latest());
  const auto log = crawler.crawl(vweb().page_urls());

  // Expected log from the corpus directly.
  std::map<std::pair<std::string, std::string>, int> expected, actual;
  std::size_t pages_seen = 0;
  for (const archive::Request& r : corpus().requests()) {
    if (r.page_host == r.resource_host) {
      ++pages_seen;
      if (pages_seen > vweb().page_urls().size()) break;
    }
    if (pages_seen == 0) continue;
    ++expected[{corpus().hostname(r.page_host), corpus().hostname(r.resource_host)}];
  }
  for (const CrawlRecord& r : log) {
    ++actual[{r.page_host, r.resource_host}];
  }
  EXPECT_EQ(actual, expected);
}

TEST(CrawlerTest, StatsAddUp) {
  Crawler crawler(vweb(), hist().latest());
  const auto log = crawler.crawl(vweb().page_urls());
  const CrawlStats& stats = crawler.stats();
  EXPECT_EQ(stats.pages_fetched, vweb().page_urls().size());
  EXPECT_EQ(log.size(), stats.pages_fetched + stats.resources_fetched);
  EXPECT_EQ(stats.http_errors, 0u);
  EXPECT_GT(stats.cookies_stored, 0u);
}

TEST(CrawlerTest, StaleCrawlerAcceptsMoreCookies) {
  // Server-side cookies are scoped under the CURRENT list; a crawler with
  // a stale list accepts Domain=<platform suffix> cookies that the fresh
  // crawler rejects as supercookies.
  const List stale = hist().snapshot_at(util::Date::from_civil(2015, 1, 1));

  Crawler stale_crawler(vweb(), stale);
  stale_crawler.crawl(vweb().page_urls());
  Crawler fresh_crawler(vweb(), hist().latest());
  fresh_crawler.crawl(vweb().page_urls());

  EXPECT_GT(stale_crawler.stats().cookies_stored, fresh_crawler.stats().cookies_stored);
  EXPECT_LT(stale_crawler.stats().cookies_rejected,
            fresh_crawler.stats().cookies_rejected);
}

TEST(CrawlerTest, BadSeedsAreSkipped) {
  Crawler crawler(vweb(), hist().latest());
  const auto log = crawler.crawl({"not a url", "https://no-such-host.example/page/0"});
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(crawler.stats().http_errors, 1u);  // the 502 from the unknown host
}

}  // namespace
}  // namespace psl::http
