#include "psl/http/html.hpp"

#include <gtest/gtest.h>

namespace psl::http {
namespace {

url::Url page() { return *url::Url::parse("https://www.example.com/news/today.html"); }

TEST(HtmlExtractTest, FindsScriptImgLinkIframe) {
  const auto links = extract_links(
      R"(<html><head>
        <script src="https://cdn.example.com/app.js"></script>
        <link href="/style.css" rel="stylesheet">
      </head><body>
        <img src='logo.png'>
        <iframe src="https://ads.tracker.com/frame"></iframe>
      </body></html>)",
      page());
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links[0].tag, "script");
  EXPECT_EQ(links[0].url.to_string(), "https://cdn.example.com/app.js");
  EXPECT_EQ(links[1].tag, "link");
  EXPECT_EQ(links[1].url.to_string(), "https://www.example.com/style.css");
  EXPECT_EQ(links[2].tag, "img");
  EXPECT_EQ(links[2].url.to_string(), "https://www.example.com/news/logo.png");
  EXPECT_EQ(links[3].tag, "iframe");
  EXPECT_TRUE(links[3].is_resource);
}

TEST(HtmlExtractTest, AnchorsAreNavigationNotResources) {
  const auto links = extract_links(R"(<a href="https://other.com/page">link</a>)", page());
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].tag, "a");
  EXPECT_FALSE(links[0].is_resource);
}

TEST(HtmlExtractTest, QuoteStyles) {
  const auto links = extract_links(
      "<img src=\"a.png\"><img src='b.png'><img src=c.png>", page());
  ASSERT_EQ(links.size(), 3u);
  EXPECT_EQ(links[2].url.to_string(), "https://www.example.com/news/c.png");
}

TEST(HtmlExtractTest, AttributeOrderAndCase) {
  const auto links = extract_links(
      R"(<SCRIPT type="module" SRC="/x.js"></SCRIPT>)", page());
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].url.to_string(), "https://www.example.com/x.js");
}

TEST(HtmlExtractTest, IgnoresDataSrcAndComments) {
  // data-src is not src; the commented-out img sits inside the "<!--" tag
  // body (which runs to the first '>'), so it is skipped too.
  const auto links = extract_links(
      R"(<img data-src="lazy.png"><!-- <img src="commented.png"> -->)", page());
  EXPECT_TRUE(links.empty());
}

TEST(HtmlExtractTest, SchemeRelativeAndParentPaths) {
  const auto links = extract_links(
      R"(<img src="//static.example.org/i.png"><img src="../up.png">)", page());
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0].url.to_string(), "https://static.example.org/i.png");
  EXPECT_EQ(links[1].url.to_string(), "https://www.example.com/up.png");
}

TEST(HtmlExtractTest, SkipsNonHttpSchemes) {
  const auto links = extract_links(
      R"html(<a href="mailto:x@example.com">m</a><a href="javascript:void(0)">j</a>)html",
      page());
  EXPECT_TRUE(links.empty());
}

TEST(HtmlExtractTest, EmptyAndMalformedHtml) {
  EXPECT_TRUE(extract_links("", page()).empty());
  EXPECT_TRUE(extract_links("plain text only", page()).empty());
  EXPECT_TRUE(extract_links("<img src=", page()).empty());
  EXPECT_TRUE(extract_links("<img", page()).empty());  // unterminated tag
}

}  // namespace
}  // namespace psl::http
