#include "psl/http/message.hpp"

#include <gtest/gtest.h>

namespace psl::http {
namespace {

TEST(HeadersTest, CaseInsensitiveLookup) {
  Headers h;
  h.add("Content-Type", "text/html");
  h.add("SET-COOKIE", "a=1");
  h.add("set-cookie", "b=2");
  EXPECT_EQ(*h.get("content-type"), "text/html");
  EXPECT_EQ(*h.get("Set-Cookie"), "a=1");  // first wins
  EXPECT_EQ(h.get_all("Set-Cookie").size(), 2u);
  EXPECT_FALSE(h.get("X-Missing").has_value());
  EXPECT_EQ(h.size(), 3u);
}

TEST(RequestTest, SerializeParseRoundTrip) {
  Request request;
  request.method = "POST";
  request.target = "/submit?a=1";
  request.headers.add("Host", "example.com");
  request.headers.add("Cookie", "sid=9");
  request.body = "payload=42";

  const auto back = parse_request(request.serialize());
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back->method, "POST");
  EXPECT_EQ(back->target, "/submit?a=1");
  EXPECT_EQ(*back->headers.get("Host"), "example.com");
  EXPECT_EQ(back->body, "payload=42");
  // Content-Length was auto-added.
  EXPECT_EQ(*back->headers.get("Content-Length"), "10");
}

TEST(RequestTest, BodylessGet) {
  Request request;
  request.headers.add("Host", "example.com");
  const std::string wire = request.serialize();
  EXPECT_NE(wire.find("GET / HTTP/1.1\r\n"), std::string::npos);
  EXPECT_EQ(wire.find("Content-Length"), std::string::npos);
  ASSERT_TRUE(parse_request(wire).ok());
}

TEST(ResponseTest, SerializeParseRoundTrip) {
  Response response;
  response.status = 404;
  response.reason = "Not Found";
  response.headers.add("Content-Type", "text/plain");
  response.body = "nope";
  const auto back = parse_response(response.serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->status, 404);
  EXPECT_EQ(back->reason, "Not Found");
  EXPECT_EQ(back->body, "nope");
}

TEST(ParseTest, Rejections) {
  EXPECT_FALSE(parse_request("").ok());
  EXPECT_FALSE(parse_request("GET /\r\n\r\n").ok());             // no HTTP version
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\nNoColon\r\n\r\n").ok());
  EXPECT_FALSE(parse_request("GET / HTTP/1.1\r\nbad name: x\r\n\r\n").ok());
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort").ok());
  EXPECT_FALSE(
      parse_request("GET / HTTP/1.1\r\nContent-Length: abc\r\n\r\n").ok());
  EXPECT_FALSE(parse_response("HTTP/1.1 999999 Huh\r\n\r\n").ok());
  EXPECT_FALSE(parse_response("HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(parse_response("totally not http").ok());
}

TEST(ParseTest, BodyHonoursContentLengthExactly) {
  const auto r =
      parse_request("GET / HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcdEXTRA");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->body, "abcd");
}

TEST(ParseTest, HeaderValueWhitespaceTrimmed) {
  const auto r = parse_request("GET / HTTP/1.1\r\nHost:    spaced.example.com  \r\n\r\n");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r->headers.get("Host"), "spaced.example.com");
}

}  // namespace
}  // namespace psl::http
