#include <gtest/gtest.h>

#include <numeric>

#include "psl/history/timeline.hpp"

namespace psl::history {
namespace {

const History& hist() {
  static const History h = generate_history(TimelineSpec{});
  return h;
}

TEST(VersionDeltasTest, OneEntryPerVersionInOrder) {
  const auto deltas = hist().version_deltas();
  ASSERT_EQ(deltas.size(), hist().version_count());
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    EXPECT_EQ(deltas[i].version_index, i);
    EXPECT_EQ(deltas[i].date, hist().version_date(i));
  }
}

TEST(VersionDeltasTest, TotalsMatchScheduleAndRuleCounts) {
  const auto deltas = hist().version_deltas();
  std::size_t added = 0, removed = 0;
  for (const auto& d : deltas) {
    added += d.rules_added;
    removed += d.rules_removed;
  }
  EXPECT_EQ(added, hist().schedule().size());
  EXPECT_EQ(added - removed, hist().rule_count(hist().version_count() - 1));
}

TEST(VersionDeltasTest, DeltasReconstructRuleCounts) {
  // Prefix sums of (added - removed) must equal rule_count at each sampled
  // version — an independent consistency check of snapshot logic.
  const auto deltas = hist().version_deltas();
  std::size_t running = 0;
  std::size_t next_sample = 0;
  const auto samples = hist().sampled_versions(12);
  for (std::size_t i = 0; i < deltas.size(); ++i) {
    running += deltas[i].rules_added;
    running -= deltas[i].rules_removed;
    if (next_sample < samples.size() && samples[next_sample] == i) {
      EXPECT_EQ(running, hist().rule_count(i)) << "at version " << i;
      ++next_sample;
    }
  }
}

TEST(VersionDeltasTest, JpSpikeIsTheLargestPostSeedVersion) {
  const auto deltas = hist().version_deltas();
  ASSERT_GT(deltas.size(), 1u);
  // Version 0 is the seed (all 2,447 initial rules at once); among the
  // published updates after it, the mid-2012 JP city event is the largest.
  const auto biggest = std::max_element(
      deltas.begin() + 1, deltas.end(),
      [](const auto& a, const auto& b) { return a.rules_added < b.rules_added; });
  ASSERT_NE(biggest, deltas.end());
  EXPECT_EQ(biggest->date.year(), 2012);
  EXPECT_GT(biggest->rules_added, 1500u);
}

TEST(VersionDeltasTest, WildcardRetirementsShowAsRemovals) {
  const auto deltas = hist().version_deltas();
  std::size_t versions_with_removals = 0;
  for (const auto& d : deltas) {
    if (d.rules_removed > 0) ++versions_with_removals;
  }
  // The four retired ccTLD wildcards (*.uk, *.jp, *.nz, *.za).
  EXPECT_GE(versions_with_removals, 3u);
}

}  // namespace
}  // namespace psl::history
