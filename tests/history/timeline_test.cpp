#include "psl/history/timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace psl::history {
namespace {

using util::Date;

// The full-size history is expensive enough to build once and share.
const History& full_history() {
  static const History h = generate_history(TimelineSpec{});
  return h;
}

TEST(TimelineTest, MatchesPaperVersionCount) {
  EXPECT_EQ(full_history().version_count(), 1142u);
}

TEST(TimelineTest, FirstAndLastVersionDates) {
  const History& h = full_history();
  EXPECT_EQ(h.version_date(0).to_string(), "2007-03-22");
  EXPECT_EQ(h.version_date(h.version_count() - 1).to_string(), "2022-10-20");
}

TEST(TimelineTest, VersionDatesStrictlyIncreasing) {
  const History& h = full_history();
  for (std::size_t i = 1; i < h.version_count(); ++i) {
    ASSERT_LT(h.version_date(i - 1), h.version_date(i));
  }
}

TEST(TimelineTest, MatchesPaperRuleCounts) {
  const History& h = full_history();
  // "The list began life with 2447 entries ... 9368 suffixes by October 2022."
  EXPECT_EQ(h.rule_count(0), 2447u);
  EXPECT_EQ(h.rule_count(h.version_count() - 1), 9368u);
}

TEST(TimelineTest, GrowthIsMonotoneWithinNoise) {
  // Rule count grows over time; wildcard retirements can dip it by a few.
  const History& h = full_history();
  std::size_t prev = h.rule_count(0);
  for (std::size_t i : h.sampled_versions(40)) {
    const std::size_t now = h.rule_count(i);
    ASSERT_GT(now + 20, prev) << "big regression at version " << i;
    prev = std::max(prev, now);
  }
}

TEST(TimelineTest, ComponentMixMatchesPaper) {
  // "17% ... single component, 57.5% ... two components, 25.3% three,
  //  ~0.1% four or more."
  const auto hist = full_history().latest().component_histogram();
  const double total = 9368.0;
  auto frac = [&](std::size_t k) {
    const auto it = hist.find(k);
    return it == hist.end() ? 0.0 : static_cast<double>(it->second) / total;
  };
  EXPECT_NEAR(frac(1), 0.170, 0.02);
  EXPECT_NEAR(frac(2), 0.575, 0.03);
  EXPECT_NEAR(frac(3), 0.253, 0.03);
  double four_plus = 0.0;
  for (const auto& [k, v] : hist) {
    if (k >= 4) four_plus += static_cast<double>(v) / total;
  }
  EXPECT_NEAR(four_plus, 0.001, 0.002);
}

TEST(TimelineTest, Mid2012JapaneseSpike) {
  // "In mid-2012, a significant number of suffixes (~1623) are added ..."
  const History& h = full_history();
  const std::size_t before = h.snapshot_at(Date::from_civil(2012, 6, 1)).rule_count();
  const std::size_t after = h.snapshot_at(Date::from_civil(2012, 9, 1)).rule_count();
  EXPECT_GT(after - before, 1500u);
  EXPECT_LT(after - before, 1800u);
  // The spike is three-component .jp city rules.
  const List& latest = full_history().latest();
  EXPECT_EQ(*latest.registrable_domain("shop.mycity.tokyo.jp"),
            latest.registrable_domain("shop.mycity.tokyo.jp").value());
}

TEST(TimelineTest, EarlyWildcardsExistThenRetire) {
  const History& h = full_history();
  const List early = h.snapshot_at(Date::from_civil(2008, 1, 1));
  EXPECT_TRUE(early.is_public_suffix("parliament.uk"));

  const List later = h.snapshot_at(Date::from_civil(2010, 6, 1));
  EXPECT_EQ(*later.registrable_domain("www.parliament.uk"), "parliament.uk");
  EXPECT_TRUE(later.is_public_suffix("co.uk"));
}

TEST(TimelineTest, PermanentWildcardsSurvive) {
  const List& latest = full_history().latest();
  EXPECT_TRUE(latest.is_public_suffix("anything.ck"));
  EXPECT_EQ(*latest.registrable_domain("www.ck"), "www.ck");  // the exception
}

TEST(TimelineTest, AnchorRulesAddedAtTheirDates) {
  const History& h = full_history();
  for (const PlatformAnchor& anchor : platform_anchors()) {
    const auto added = h.added_date(anchor.rule_text);
    ASSERT_TRUE(added.has_value()) << anchor.rule_text;
    // Snapping moves a rule to the next published version; within days.
    EXPECT_GE(*added, anchor.added) << anchor.rule_text;
    EXPECT_LE(*added - anchor.added, 30) << anchor.rule_text;
  }
}

TEST(TimelineTest, AnchorSemanticsUnderOldAndNewLists) {
  const History& h = full_history();
  const List old_list = h.snapshot_at(Date::from_civil(2018, 7, 1));
  const List& new_list = h.latest();
  // myshopify.com entered in 2021: a 2018 list groups all stores together.
  EXPECT_EQ(*old_list.registrable_domain("store1.myshopify.com"), "myshopify.com");
  EXPECT_EQ(*new_list.registrable_domain("store1.myshopify.com"), "store1.myshopify.com");
  EXPECT_FALSE(old_list.same_site("store1.myshopify.com", "store2.myshopify.com") ==
               new_list.same_site("store1.myshopify.com", "store2.myshopify.com"));
}

TEST(TimelineTest, DeterministicForSameSeed) {
  const TimelineSpec spec = TimelineSpec::tiny();
  const History a = generate_history(spec);
  const History b = generate_history(spec);
  ASSERT_EQ(a.version_count(), b.version_count());
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < a.schedule().size(); ++i) {
    EXPECT_EQ(a.schedule()[i].rule, b.schedule()[i].rule);
    EXPECT_EQ(a.schedule()[i].added, b.schedule()[i].added);
  }
}

TEST(TimelineTest, DifferentSeedsProduceDifferentFiller) {
  TimelineSpec s1 = TimelineSpec::tiny();
  TimelineSpec s2 = TimelineSpec::tiny();
  s2.seed = s1.seed + 1;
  const History a = generate_history(s1);
  const History b = generate_history(s2);
  std::size_t differing = 0;
  const std::size_t n = std::min(a.schedule().size(), b.schedule().size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(a.schedule()[i].rule == b.schedule()[i].rule)) ++differing;
  }
  EXPECT_GT(differing, 0u);
}

TEST(TimelineTest, TinySpecHitsItsTargets) {
  const TimelineSpec spec = TimelineSpec::tiny();
  const History h = generate_history(spec);
  EXPECT_GE(h.version_count(), spec.version_count);
  EXPECT_EQ(h.rule_count(h.version_count() - 1), spec.final_rule_count);
}

TEST(TimelineTest, ScheduleDatesWithinVersionRange) {
  const History& h = full_history();
  const Date first = h.version_date(0);
  const Date last = h.version_date(h.version_count() - 1);
  for (const ScheduledRule& sr : h.schedule()) {
    ASSERT_GE(sr.added, first);
    ASSERT_LE(sr.added, last);
    if (sr.removed) {
      ASSERT_GT(*sr.removed, sr.added);
      ASSERT_LE(*sr.removed, last);
    }
  }
}

TEST(TimelineTest, EveryScheduleDateIsAVersionDate) {
  const History& h = full_history();
  std::vector<Date> versions = h.version_dates();
  for (const ScheduledRule& sr : h.schedule()) {
    ASSERT_TRUE(std::binary_search(versions.begin(), versions.end(), sr.added));
    if (sr.removed) {
      ASSERT_TRUE(std::binary_search(versions.begin(), versions.end(), *sr.removed));
    }
  }
}

}  // namespace
}  // namespace psl::history
