#include "psl/history/history.hpp"

#include <gtest/gtest.h>

namespace psl::history {
namespace {

using util::Date;

Rule rule(std::string_view text, Section section = Section::kIcann) {
  auto r = Rule::parse(text, section);
  EXPECT_TRUE(r.ok());
  return *std::move(r);
}

History tiny_history() {
  const Date v0 = Date::from_civil(2010, 1, 1);
  const Date v1 = Date::from_civil(2012, 1, 1);
  const Date v2 = Date::from_civil(2014, 1, 1);
  const Date v3 = Date::from_civil(2016, 1, 1);
  std::vector<ScheduledRule> schedule{
      {rule("com"), v0, std::nullopt},
      {rule("uk"), v0, std::nullopt},
      {rule("*.uk"), v0, v2},  // removed at v2
      {rule("co.uk"), v2, std::nullopt},
      {rule("github.io", Section::kPrivate), v3, std::nullopt},
  };
  return History({v0, v1, v2, v3}, std::move(schedule));
}

TEST(HistoryTest, VersionCountAndDates) {
  const History h = tiny_history();
  EXPECT_EQ(h.version_count(), 4u);
  EXPECT_EQ(h.version_date(0), Date::from_civil(2010, 1, 1));
  EXPECT_EQ(h.version_date(3), Date::from_civil(2016, 1, 1));
}

TEST(HistoryTest, VersionIndexAt) {
  const History h = tiny_history();
  EXPECT_FALSE(h.version_index_at(Date::from_civil(2009, 6, 1)).has_value());
  EXPECT_EQ(*h.version_index_at(Date::from_civil(2010, 1, 1)), 0u);
  EXPECT_EQ(*h.version_index_at(Date::from_civil(2011, 7, 1)), 0u);
  EXPECT_EQ(*h.version_index_at(Date::from_civil(2012, 1, 1)), 1u);
  EXPECT_EQ(*h.version_index_at(Date::from_civil(2030, 1, 1)), 3u);
}

TEST(HistoryTest, RuleCountsPerVersion) {
  const History h = tiny_history();
  EXPECT_EQ(h.rule_count(0), 3u);  // com, uk, *.uk
  EXPECT_EQ(h.rule_count(1), 3u);
  EXPECT_EQ(h.rule_count(2), 3u);  // *.uk removed, co.uk added
  EXPECT_EQ(h.rule_count(3), 4u);  // + github.io
}

TEST(HistoryTest, SnapshotReflectsAddsAndRemoves) {
  const History h = tiny_history();
  const List v0 = h.snapshot(0);
  // Wildcard era: parliament.uk is a public suffix under *.uk.
  EXPECT_TRUE(v0.is_public_suffix("parliament.uk"));
  EXPECT_FALSE(v0.registrable_domain("parliament.uk").has_value());

  const List v2 = h.snapshot(2);
  // Wildcard retired: parliament.uk is now registrable; co.uk is a suffix.
  EXPECT_EQ(*v2.registrable_domain("www.parliament.uk"), "parliament.uk");
  EXPECT_TRUE(v2.is_public_suffix("co.uk"));

  const List v3 = h.snapshot(3);
  EXPECT_EQ(*v3.registrable_domain("alice.github.io"), "alice.github.io");
  // Before github.io existed, alice.github.io grouped under github.io.
  EXPECT_EQ(*v2.registrable_domain("alice.github.io"), "github.io");
}

TEST(HistoryTest, SnapshotAtPreHistoryDateIsEmpty) {
  const History h = tiny_history();
  EXPECT_EQ(h.snapshot_at(Date::from_civil(2005, 1, 1)).rule_count(), 0u);
}

TEST(HistoryTest, SnapshotAtMidTimelinePicksPriorVersion) {
  const History h = tiny_history();
  EXPECT_EQ(h.snapshot_at(Date::from_civil(2015, 6, 1)).rule_count(), 3u);
  EXPECT_EQ(h.snapshot_at(Date::from_civil(2016, 1, 1)).rule_count(), 4u);
}

TEST(HistoryTest, LatestIsLastVersionAndCached) {
  const History h = tiny_history();
  const List& a = h.latest();
  const List& b = h.latest();
  EXPECT_EQ(&a, &b);  // cached object
  EXPECT_EQ(a.rule_count(), 4u);
}

TEST(HistoryTest, AddedDateLookup) {
  const History h = tiny_history();
  EXPECT_EQ(*h.added_date("com"), Date::from_civil(2010, 1, 1));
  EXPECT_EQ(*h.added_date("co.uk"), Date::from_civil(2014, 1, 1));
  EXPECT_EQ(*h.added_date("github.io"), Date::from_civil(2016, 1, 1));
  EXPECT_EQ(*h.added_date("*.uk"), Date::from_civil(2010, 1, 1));
  EXPECT_FALSE(h.added_date("never.existed").has_value());
}

TEST(HistoryTest, SampledVersionsCoverEndpoints) {
  const History h = tiny_history();
  const auto all = h.sampled_versions(100);
  EXPECT_EQ(all.size(), 4u);
  const auto two = h.sampled_versions(2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two.front(), 0u);
  EXPECT_EQ(two.back(), 3u);
  EXPECT_TRUE(h.sampled_versions(0).empty());
}

TEST(HistoryTest, SampledVersionsAreStrictlyIncreasing) {
  std::vector<Date> dates;
  std::vector<ScheduledRule> schedule{{rule("com"), Date::from_civil(2010, 1, 1), std::nullopt}};
  for (int i = 0; i < 57; ++i) dates.push_back(Date::from_civil(2010, 1, 1) + i * 30);
  const History h(std::move(dates), std::move(schedule));
  const auto sampled = h.sampled_versions(10);
  for (std::size_t i = 1; i < sampled.size(); ++i) {
    EXPECT_LT(sampled[i - 1], sampled[i]);
  }
  EXPECT_EQ(sampled.front(), 0u);
  EXPECT_EQ(sampled.back(), 56u);
}

}  // namespace
}  // namespace psl::history
