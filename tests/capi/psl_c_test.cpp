#include "psl/capi/psl_c.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "psl/analytics/census.hpp"
#include "psl/net/server.hpp"
#include "psl/psl/compiled_matcher.hpp"
#include "psl/psl/list.hpp"
#include "psl/serve/engine.hpp"
#include "psl/serve/snapshot.hpp"
#include "psl/store/store.hpp"
#include "psl/util/date.hpp"

namespace {

/// RAII wrapper for C-API strings inside the tests.
std::string take(const char* s) {
  std::string out = s == nullptr ? std::string{} : std::string(s);
  pslh_free_string(s);
  return out;
}

TEST(CApiTest, BuiltinIsLoaded) {
  const pslh_ctx_t* psl = pslh_builtin();
  ASSERT_NE(psl, nullptr);
  EXPECT_EQ(pslh_rule_count(psl), 9368u);
  EXPECT_EQ(pslh_builtin(), psl);  // singleton
}

TEST(CApiTest, BuiltinLookups) {
  const pslh_ctx_t* psl = pslh_builtin();
  EXPECT_EQ(pslh_is_public_suffix(psl, "com"), 1);
  EXPECT_EQ(pslh_is_public_suffix(psl, "co.uk"), 1);
  EXPECT_EQ(pslh_is_public_suffix(psl, "myshopify.com"), 1);
  EXPECT_EQ(pslh_is_public_suffix(psl, "example.com"), 0);

  EXPECT_EQ(take(pslh_unregistrable_domain(psl, "www.amazon.co.uk")), "co.uk");
  EXPECT_EQ(take(pslh_registrable_domain(psl, "www.amazon.co.uk")), "amazon.co.uk");
  EXPECT_EQ(pslh_registrable_domain(psl, "co.uk"), nullptr);

  EXPECT_EQ(pslh_same_site(psl, "a.example.com", "b.example.com"), 1);
  EXPECT_EQ(pslh_same_site(psl, "a.myshopify.com", "b.myshopify.com"), 0);
}

TEST(CApiTest, LoadFromData) {
  const std::string file = "com\nuk\nco.uk\n";
  pslh_ctx_t* psl = pslh_load_from_data(file.data(), file.size());
  ASSERT_NE(psl, nullptr);
  EXPECT_EQ(pslh_rule_count(psl), 3u);
  EXPECT_EQ(take(pslh_registrable_domain(psl, "shop.example.co.uk")), "example.co.uk");
  pslh_free(psl);
}

TEST(CApiTest, LoadRejectsBadData) {
  const std::string bad = "a..b\n";
  EXPECT_EQ(pslh_load_from_data(bad.data(), bad.size()), nullptr);
  EXPECT_EQ(pslh_load_from_data(nullptr, 0), nullptr);
}

TEST(CApiTest, NullSafety) {
  EXPECT_EQ(pslh_is_public_suffix(nullptr, "com"), 0);
  EXPECT_EQ(pslh_is_public_suffix(pslh_builtin(), nullptr), 0);
  EXPECT_EQ(pslh_registrable_domain(nullptr, "x.com"), nullptr);
  EXPECT_EQ(pslh_unregistrable_domain(pslh_builtin(), ""), nullptr);
  EXPECT_EQ(pslh_same_site(pslh_builtin(), nullptr, "x.com"), 0);
  EXPECT_EQ(pslh_rule_count(nullptr), 0u);
  pslh_free(nullptr);          // no-ops
  pslh_free_string(nullptr);
  pslh_string_free(nullptr);
}

TEST(CApiTest, SameSiteBatch) {
  const pslh_ctx_t* psl = pslh_builtin();
  const char* a[] = {"a.example.com", "a.myshopify.com", "one.com"};
  const char* b[] = {"b.example.com", "b.myshopify.com", "two.com"};
  int out[3] = {-1, -1, -1};
  ASSERT_EQ(pslh_same_site_batch(psl, a, b, 3, out), 1);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);

  // Empty batch succeeds trivially; NULL pointers fail and zero the output.
  EXPECT_EQ(pslh_same_site_batch(psl, nullptr, nullptr, 0, nullptr), 1);
  out[0] = out[1] = out[2] = -1;
  EXPECT_EQ(pslh_same_site_batch(nullptr, a, b, 3, out), 0);
  EXPECT_EQ(out[0], 0);
  EXPECT_EQ(pslh_same_site_batch(psl, a, b, 3, nullptr), 0);
  const char* holey_b[] = {"b.example.com", nullptr, "two.com"};
  EXPECT_EQ(pslh_same_site_batch(psl, a, holey_b, 3, out), 0);
}

TEST(CApiTest, AllocationFailureReturnsNull) {
  const pslh_ctx_t* psl = pslh_builtin();
  pslh_test_fail_next_allocs(1);
  EXPECT_EQ(pslh_registrable_domain(psl, "www.amazon.co.uk"), nullptr);
  // The countdown is consumed: the next call succeeds again.
  EXPECT_EQ(take(pslh_registrable_domain(psl, "www.amazon.co.uk")), "amazon.co.uk");
  pslh_test_fail_next_allocs(1);
  EXPECT_EQ(pslh_unregistrable_domain(psl, "www.amazon.co.uk"), nullptr);
  pslh_test_fail_next_allocs(0);  // disarm
}

TEST(CApiEngineTest, LifecycleAndBatches) {
  const std::string file = "com\nuk\nco.uk\n";
  pslh_ctx_t* ctx = pslh_load_from_data(file.data(), file.size());
  ASSERT_NE(ctx, nullptr);
  pslh_engine_t* engine = pslh_engine_new(ctx, 2, 0);
  pslh_free(ctx);  // the engine compiled its own copy
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(pslh_engine_generation(engine), 1u);

  const char* hosts[] = {"a.b.example.com", "x.co.uk", "co.uk"};
  const char* out[3] = {nullptr, nullptr, nullptr};
  ASSERT_EQ(pslh_engine_registrable_domains(engine, hosts, 3, out), 1);
  EXPECT_EQ(take(out[0]), "example.com");
  EXPECT_EQ(take(out[1]), "x.co.uk");
  EXPECT_EQ(out[2], nullptr);  // co.uk is itself a suffix

  const char* a[] = {"a.example.com", "one.com"};
  const char* b[] = {"b.example.com", "two.com"};
  int sites[2] = {-1, -1};
  ASSERT_EQ(pslh_engine_same_site(engine, a, b, 2, sites), 1);
  EXPECT_EQ(sites[0], 1);
  EXPECT_EQ(sites[1], 0);

  pslh_engine_free(engine);
}

TEST(CApiEngineTest, ReloadKeepsLastGood) {
  const std::string file = "com\nuk\nco.uk\n";
  pslh_ctx_t* ctx = pslh_load_from_data(file.data(), file.size());
  pslh_engine_t* engine = pslh_engine_new(ctx, 1, 0);
  pslh_free(ctx);
  ASSERT_NE(engine, nullptr);

  // Bad list and bad snapshot bytes both fail without disturbing serving.
  const std::string bad = "a..b\n";
  EXPECT_EQ(pslh_engine_reload_list(engine, bad.data(), bad.size()), 0);
  const unsigned char garbage[] = {'n', 'o', 'p', 'e'};
  EXPECT_EQ(pslh_engine_reload_snapshot(engine, garbage, sizeof garbage), 0);
  EXPECT_EQ(pslh_engine_generation(engine), 1u);

  const char* hosts[] = {"a.b.example.com"};
  const char* out[1] = {nullptr};
  ASSERT_EQ(pslh_engine_registrable_domains(engine, hosts, 1, out), 1);
  EXPECT_EQ(take(out[0]), "example.com");

  // A good reload swaps in and bumps the generation.
  const std::string next = "com\nexample.com\n";
  EXPECT_EQ(pslh_engine_reload_list(engine, next.data(), next.size()), 1);
  EXPECT_EQ(pslh_engine_generation(engine), 2u);
  ASSERT_EQ(pslh_engine_registrable_domains(engine, hosts, 1, out), 1);
  EXPECT_EQ(take(out[0]), "b.example.com");

  pslh_engine_free(engine);
}

TEST(CApiEngineTest, NullSafetyAndAllocationFailure) {
  EXPECT_EQ(pslh_engine_new(nullptr, 1, 1), nullptr);
  EXPECT_EQ(pslh_engine_generation(nullptr), 0u);
  EXPECT_EQ(pslh_engine_reload_list(nullptr, "com\n", 4), 0);
  EXPECT_EQ(pslh_engine_reload_snapshot(nullptr, nullptr, 0), 0);
  pslh_engine_free(nullptr);  // no-op

  const std::string file = "com\nco.uk\n";
  pslh_ctx_t* ctx = pslh_load_from_data(file.data(), file.size());
  pslh_engine_t* engine = pslh_engine_new(ctx, 1, 0);
  pslh_free(ctx);
  ASSERT_NE(engine, nullptr);

  const char* hosts[] = {"a.example.com", "b.example.com"};
  const char* out[2] = {nullptr, nullptr};
  EXPECT_EQ(pslh_engine_registrable_domains(engine, nullptr, 2, out), 0);
  EXPECT_EQ(pslh_engine_registrable_domains(engine, hosts, 2, nullptr), 0);
  const char* holey[] = {"a.example.com", nullptr};
  EXPECT_EQ(pslh_engine_registrable_domains(engine, holey, 2, out), 0);
  EXPECT_EQ(out[0], nullptr);
  EXPECT_EQ(out[1], nullptr);

  int sites[2] = {-1, -1};
  EXPECT_EQ(pslh_engine_same_site(engine, nullptr, hosts, 2, sites), 0);
  EXPECT_EQ(sites[0], 0);
  EXPECT_EQ(pslh_engine_same_site(engine, hosts, hosts, 2, nullptr), 0);

  // A mid-batch string-duplication failure frees what was already built and
  // reports failure with an all-NULL output array.
  pslh_test_fail_next_allocs(1);
  EXPECT_EQ(pslh_engine_registrable_domains(engine, hosts, 2, out), 0);
  EXPECT_EQ(out[0], nullptr);
  EXPECT_EQ(out[1], nullptr);
  pslh_test_fail_next_allocs(0);
  ASSERT_EQ(pslh_engine_registrable_domains(engine, hosts, 2, out), 1);
  EXPECT_EQ(take(out[0]), "example.com");
  EXPECT_EQ(take(out[1]), "example.com");

  pslh_engine_free(engine);
}

/// A real psl::net server on an ephemeral loopback port for the
/// pslh_client_* surface (the C API wraps psl::net::Client).
struct LoopbackDaemon {
  psl::serve::Engine engine;
  psl::net::Server server;
  unsigned short port = 0;

  explicit LoopbackDaemon(const std::string& list_text, bool analytics = false)
      : engine(snapshot_of(list_text), engine_options(analytics)), server(engine, {}) {
    auto started = server.start();
    EXPECT_TRUE(started.ok());
    port = started.ok() ? *started : 0;
  }

  static psl::serve::EngineOptions engine_options(bool analytics) {
    psl::serve::EngineOptions options;
    options.threads = 1;
    if (analytics) options.census_factory = psl::analytics::census_factory({});
    return options;
  }

  static psl::snapshot::Snapshot snapshot_of(const std::string& text) {
    auto parsed = psl::List::parse(text);
    EXPECT_TRUE(parsed.ok());
    psl::snapshot::Metadata meta;
    meta.rule_count = parsed->rules().size();
    return psl::snapshot::Snapshot{psl::CompiledMatcher(*parsed), meta};
  }
};

TEST(CApiClientTest, ConnectQueryAndFree) {
  LoopbackDaemon daemon("com\nuk\nco.uk\n");
  ASSERT_NE(daemon.port, 0);

  pslh_client_t* client = pslh_client_connect("127.0.0.1", daemon.port, 5000);
  ASSERT_NE(client, nullptr);
  EXPECT_EQ(pslh_client_connected(client), 1);
  EXPECT_EQ(pslh_client_ping(client), 1);
  EXPECT_EQ(pslh_client_generation(client), 1u);

  const char* hosts[] = {"a.b.example.com", "x.co.uk", "co.uk"};
  const char* out[3] = {nullptr, nullptr, nullptr};
  ASSERT_EQ(pslh_client_registrable_domains(client, hosts, 3, out), 1);
  EXPECT_EQ(take(out[0]), "example.com");
  EXPECT_EQ(take(out[1]), "x.co.uk");
  EXPECT_EQ(out[2], nullptr);  // co.uk is itself a suffix

  const char* a[] = {"a.example.com", "one.com"};
  const char* b[] = {"b.example.com", "two.com"};
  int sites[2] = {-1, -1};
  ASSERT_EQ(pslh_client_same_site(client, a, b, 2, sites), 1);
  EXPECT_EQ(sites[0], 1);
  EXPECT_EQ(sites[1], 0);

  pslh_client_free(client);
}

TEST(CApiClientTest, WireReloadBumpsGeneration) {
  LoopbackDaemon daemon("com\nuk\nco.uk\n");
  ASSERT_NE(daemon.port, 0);
  pslh_client_t* client = pslh_client_connect("127.0.0.1", daemon.port, 5000);
  ASSERT_NE(client, nullptr);

  // Garbage is rejected keep-last-good; the C surface reports 0.
  const unsigned char garbage[] = {'n', 'o', 'p', 'e'};
  EXPECT_EQ(pslh_client_reload_snapshot(client, garbage, sizeof garbage), 0);
  EXPECT_EQ(pslh_client_generation(client), 1u);

  auto parsed = psl::List::parse("com\nexample.com\n");
  ASSERT_TRUE(parsed.ok());
  psl::snapshot::Metadata meta;
  meta.rule_count = parsed->rules().size();
  const std::string bytes = psl::snapshot::serialize(psl::CompiledMatcher(*parsed), meta);
  ASSERT_EQ(pslh_client_reload_snapshot(
                client, reinterpret_cast<const unsigned char*>(bytes.data()), bytes.size()),
            1);
  EXPECT_EQ(pslh_client_generation(client), 2u);

  const char* hosts[] = {"a.b.example.com"};
  const char* out[1] = {nullptr};
  ASSERT_EQ(pslh_client_registrable_domains(client, hosts, 1, out), 1);
  EXPECT_EQ(take(out[0]), "b.example.com");  // example.com is now a suffix

  pslh_client_free(client);
}

TEST(CApiClientTest, NullSafetyAndConnectFailure) {
  EXPECT_EQ(pslh_client_connect(nullptr, 1, 0), nullptr);
  // Port 1 on loopback: nothing listens there in the test environment.
  EXPECT_EQ(pslh_client_connect("127.0.0.1", 1, 500), nullptr);

  EXPECT_EQ(pslh_client_connected(nullptr), 0);
  EXPECT_EQ(pslh_client_ping(nullptr), 0);
  EXPECT_EQ(pslh_client_generation(nullptr), 0u);
  EXPECT_EQ(pslh_client_reload_snapshot(nullptr, nullptr, 0), 0);
  pslh_client_free(nullptr);  // no-op

  LoopbackDaemon daemon("com\n");
  ASSERT_NE(daemon.port, 0);
  pslh_client_t* client = pslh_client_connect("127.0.0.1", daemon.port, 5000);
  ASSERT_NE(client, nullptr);
  const char* hosts[] = {"a.example.com", nullptr};
  const char* out[2] = {nullptr, nullptr};
  EXPECT_EQ(pslh_client_registrable_domains(client, nullptr, 2, out), 0);
  EXPECT_EQ(pslh_client_registrable_domains(client, hosts, 2, nullptr), 0);
  EXPECT_EQ(pslh_client_registrable_domains(client, hosts, 2, out), 0);  // NULL host
  EXPECT_EQ(out[0], nullptr);
  EXPECT_EQ(out[1], nullptr);
  EXPECT_EQ(pslh_client_registrable_domains(client, hosts, 0, out), 1);  // empty batch

  int sites[1] = {-1};
  EXPECT_EQ(pslh_client_same_site(client, nullptr, hosts, 1, sites), 0);
  EXPECT_EQ(sites[0], 0);

  // A mid-batch string-duplication failure frees what was built and reports
  // failure with an all-NULL output array (same contract as the engine API).
  const char* two[] = {"a.example.com", "b.example.com"};
  pslh_test_fail_next_allocs(1);
  EXPECT_EQ(pslh_client_registrable_domains(client, two, 2, out), 0);
  EXPECT_EQ(out[0], nullptr);
  EXPECT_EQ(out[1], nullptr);
  pslh_test_fail_next_allocs(0);

  pslh_client_free(client);
}

TEST(CApiClientTest, MatchAtAndDivergence) {
  LoopbackDaemon daemon("com\nuk\nco.uk\nmyshopify.com\n");
  ASSERT_NE(daemon.port, 0);

  // Attach a two-version store: 2020-06-01 lacks the myshopify.com rule,
  // 2021-06-01 has it — the host's answer flips between the two.
  psl::store::Builder builder;
  const auto add = [&](const std::string& text, int year) {
    auto parsed = psl::List::parse(text);
    ASSERT_TRUE(parsed.ok());
    psl::snapshot::Metadata meta;
    meta.source_date = psl::util::Date::from_civil(year, 6, 1);
    meta.rule_count = parsed->rules().size();
    ASSERT_TRUE(builder.add(psl::CompiledMatcher(*parsed), meta).ok());
  };
  add("com\nuk\nco.uk\n", 2020);
  add("com\nuk\nco.uk\nmyshopify.com\n", 2021);
  const std::string path = testing::TempDir() + "capi_two_version.pstore";
  ASSERT_TRUE(builder.write_file(path).ok());
  ASSERT_TRUE(daemon.engine.open_store(path).ok());

  pslh_client_t* client = pslh_client_connect("127.0.0.1", daemon.port, 5000);
  ASSERT_NE(client, nullptr);

  const long long early = psl::util::Date::from_civil(2020, 12, 1).days_since_epoch();
  const long long late = psl::util::Date::from_civil(2022, 1, 1).days_since_epoch();
  const char* hosts[] = {"shop1.myshopify.com", "co.uk"};
  const char* out[2] = {nullptr, nullptr};
  long long version_date = 0;

  ASSERT_EQ(pslh_client_match_at(client, early, hosts, 2, out, &version_date), 1);
  EXPECT_EQ(version_date, psl::util::Date::from_civil(2020, 6, 1).days_since_epoch());
  EXPECT_EQ(take(out[0]), "myshopify.com");
  EXPECT_EQ(out[1], nullptr);  // co.uk is itself a suffix in every version

  ASSERT_EQ(pslh_client_match_at(client, late, hosts, 2, out, &version_date), 1);
  EXPECT_EQ(version_date, psl::util::Date::from_civil(2021, 6, 1).days_since_epoch());
  EXPECT_EQ(take(out[0]), "shop1.myshopify.com");

  // A date before the first version, and bad arguments, report 0 all-NULL.
  EXPECT_EQ(pslh_client_match_at(client, 0, hosts, 2, out, nullptr), 0);
  EXPECT_EQ(out[0], nullptr);
  EXPECT_EQ(pslh_client_match_at(client, early, nullptr, 2, out, nullptr), 0);
  EXPECT_EQ(pslh_client_match_at(client, early, hosts, 0, out, nullptr), 1);

  // Divergence: count-only probe, then the filled arrays.
  size_t total = 0;
  ASSERT_EQ(pslh_client_divergence(client, "shop1.myshopify.com", nullptr, nullptr, nullptr,
                                   0, &total),
            PSLH_OK);
  ASSERT_EQ(total, 2u);
  long long first[2] = {0, 0};
  long long last[2] = {0, 0};
  const char* domains[2] = {nullptr, nullptr};
  ASSERT_EQ(pslh_client_divergence(client, "shop1.myshopify.com", first, last, domains, 2,
                                   &total),
            PSLH_OK);
  EXPECT_EQ(total, 2u);
  EXPECT_EQ(first[0], psl::util::Date::from_civil(2020, 6, 1).days_since_epoch());
  EXPECT_EQ(last[1], psl::util::Date::from_civil(2021, 6, 1).days_since_epoch());
  EXPECT_EQ(take(domains[0]), "myshopify.com");
  EXPECT_EQ(take(domains[1]), "shop1.myshopify.com");

  EXPECT_EQ(pslh_client_divergence(client, nullptr, first, last, domains, 2, &total),
            PSLH_ERROR);
  EXPECT_EQ(pslh_client_divergence(client, "shop1.myshopify.com", first, last, domains, 2,
                                   nullptr),
            PSLH_ERROR);  // total_out is required

  pslh_client_free(client);
}

/// The C mirror of the push channel: subscribe converges immediately, a
/// server-side reload is observed through the pushed generation (and the
/// registered callback) without the client issuing any query.
TEST(CApiClientTest, SubscribePushAndCallback) {
  LoopbackDaemon daemon("com\nuk\nco.uk\n");
  ASSERT_NE(daemon.port, 0);
  pslh_client_t* client = pslh_client_connect("127.0.0.1", daemon.port, 5000);
  ASSERT_NE(client, nullptr);

  struct Seen {
    std::vector<std::pair<unsigned long long, long long>> pushes;  // (generation, delta)
  } seen;
  ASSERT_EQ(pslh_client_set_push_callback(
                client,
                [](unsigned long long generation, unsigned long long, long long rule_delta,
                   void* user_data) {
                  static_cast<Seen*>(user_data)->pushes.emplace_back(generation, rule_delta);
                },
                &seen),
            PSLH_OK);

  unsigned long long generation = 0;
  ASSERT_EQ(pslh_client_subscribe(client, &generation), PSLH_OK);
  EXPECT_EQ(generation, 1u);
  EXPECT_EQ(pslh_client_last_pushed_generation(client), 1u);

  // Reload server-side; the client learns about it by draining pushes only.
  auto parsed = psl::List::parse("com\nuk\nco.uk\ngithub.io\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(daemon.engine.reload_list(*std::move(parsed)), 2u);
  size_t drained = 0;
  for (int waited = 0; waited < 5000 && pslh_client_last_pushed_generation(client) < 2u;
       waited += 5) {
    ASSERT_EQ(pslh_client_poll_pushes(client, &drained), PSLH_OK);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(pslh_client_last_pushed_generation(client), 2u);
  ASSERT_EQ(seen.pushes.size(), 1u);
  EXPECT_EQ(seen.pushes[0].first, 2u);
  EXPECT_EQ(seen.pushes[0].second, 1);  // one rule more than the subscribed generation

  // NULL safety for the push surface.
  EXPECT_EQ(pslh_client_subscribe(nullptr, &generation), PSLH_ERROR);
  EXPECT_EQ(pslh_client_set_push_callback(nullptr, nullptr, nullptr), PSLH_ERROR);
  EXPECT_EQ(pslh_client_poll_pushes(nullptr, &drained), PSLH_ERROR);
  EXPECT_EQ(pslh_client_last_pushed_generation(nullptr), 0u);
  EXPECT_EQ(pslh_client_reconnect(nullptr), PSLH_ERROR);
  EXPECT_EQ(pslh_client_set_push_callback(client, nullptr, nullptr), PSLH_OK);  // unregister

  pslh_client_free(client);
}

/// The C mirror of the analytics surface: stream a batch, read the census
/// back with every row family allocated, and free it twice safely.
TEST(CApiClientTest, IngestBatchAndCensus) {
  LoopbackDaemon daemon("com\nuk\nco.uk\nnet\n", /*analytics=*/true);
  ASSERT_NE(daemon.port, 0);
  pslh_client_t* client = pslh_client_connect("127.0.0.1", daemon.port, 5000);
  ASSERT_NE(client, nullptr);

  const char* pages[] = {"www.example.com", "www.example.com", "shop.example.co.uk"};
  const char* resources[] = {"tracker.net", "cdn.example.com", "tracker.net"};
  const long long timestamps[] = {10, 20, 30};
  unsigned long long generation = 0;
  ASSERT_EQ(pslh_client_ingest_batch(client, pages, resources, timestamps, 3, &generation),
            PSLH_OK);
  EXPECT_EQ(generation, 1u);
  // NULL timestamps are allowed (they ingest as 0).
  ASSERT_EQ(pslh_client_ingest_batch(client, pages, resources, nullptr, 0, nullptr), PSLH_OK);

  pslh_census_t census;
  ASSERT_EQ(pslh_client_census(client, 8, &census), PSLH_OK);
  EXPECT_EQ(census.generation, 1u);
  EXPECT_EQ(census.records, 3u);
  EXPECT_EQ(census.first_party, 1u);   // cdn.example.com under example.com
  EXPECT_EQ(census.third_party, 2u);   // tracker.net from both sites
  EXPECT_EQ(census.unique_hosts, 4u);
  EXPECT_EQ(census.sites_formed, 3u);
  EXPECT_EQ(census.dropped, 0u);
  EXPECT_GT(census.state_bytes, 0u);
  ASSERT_EQ(census.tracker_count, 1u);
  EXPECT_EQ(take(census.tracker_domains[0]), "tracker.net");
  census.tracker_domains[0] = nullptr;  // take() freed it
  EXPECT_EQ(census.tracker_requests[0], 2u);
  EXPECT_EQ(census.tracker_reach[0], 2u);
  pslh_census_free(&census);
  pslh_census_free(&census);  // freeing the zeroed struct is a no-op
  pslh_census_free(nullptr);

  // NULL safety.
  EXPECT_EQ(pslh_client_ingest_batch(nullptr, pages, resources, nullptr, 3, nullptr),
            PSLH_ERROR);
  EXPECT_EQ(pslh_client_ingest_batch(client, nullptr, resources, nullptr, 3, nullptr),
            PSLH_ERROR);
  EXPECT_EQ(pslh_client_ingest_batch(client, pages, nullptr, nullptr, 3, nullptr),
            PSLH_ERROR);
  EXPECT_EQ(pslh_client_census(nullptr, 0, &census), PSLH_ERROR);
  EXPECT_EQ(pslh_client_census(client, 0, nullptr), PSLH_ERROR);

  // A duplication failure mid-copy unwinds the whole census, not half of it.
  pslh_test_fail_next_allocs(1);
  EXPECT_EQ(pslh_client_census(client, 8, &census), PSLH_ERROR);
  pslh_test_fail_next_allocs(0);
  EXPECT_EQ(census.tracker_count, 0u);
  EXPECT_EQ(census.etlds, nullptr);

  pslh_client_free(client);
}

/// Without a census on the server, the analytics calls fail cleanly and the
/// connection keeps serving.
TEST(CApiClientTest, AnalyticsUnsupportedWithoutCensus) {
  LoopbackDaemon daemon("com\n");
  ASSERT_NE(daemon.port, 0);
  pslh_client_t* client = pslh_client_connect("127.0.0.1", daemon.port, 5000);
  ASSERT_NE(client, nullptr);

  const char* pages[] = {"a.example.com"};
  const char* resources[] = {"b.example.com"};
  unsigned long long generation = 7;
  EXPECT_EQ(pslh_client_ingest_batch(client, pages, resources, nullptr, 1, &generation),
            PSLH_ERROR);
  EXPECT_EQ(generation, 0u);  // outputs are zeroed on failure
  pslh_census_t census;
  EXPECT_EQ(pslh_client_census(client, 0, &census), PSLH_ERROR);
  EXPECT_EQ(census.records, 0u);
  EXPECT_EQ(pslh_client_ping(client), 1);  // the rejection is not fatal

  pslh_client_free(client);
}

}  // namespace
