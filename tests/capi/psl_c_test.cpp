#include "psl/capi/psl_c.h"

#include <gtest/gtest.h>

#include <string>

namespace {

/// RAII wrapper for C-API strings inside the tests.
std::string take(const char* s) {
  std::string out = s == nullptr ? std::string{} : std::string(s);
  pslh_free_string(s);
  return out;
}

TEST(CApiTest, BuiltinIsLoaded) {
  const pslh_ctx_t* psl = pslh_builtin();
  ASSERT_NE(psl, nullptr);
  EXPECT_EQ(pslh_rule_count(psl), 9368u);
  EXPECT_EQ(pslh_builtin(), psl);  // singleton
}

TEST(CApiTest, BuiltinLookups) {
  const pslh_ctx_t* psl = pslh_builtin();
  EXPECT_EQ(pslh_is_public_suffix(psl, "com"), 1);
  EXPECT_EQ(pslh_is_public_suffix(psl, "co.uk"), 1);
  EXPECT_EQ(pslh_is_public_suffix(psl, "myshopify.com"), 1);
  EXPECT_EQ(pslh_is_public_suffix(psl, "example.com"), 0);

  EXPECT_EQ(take(pslh_unregistrable_domain(psl, "www.amazon.co.uk")), "co.uk");
  EXPECT_EQ(take(pslh_registrable_domain(psl, "www.amazon.co.uk")), "amazon.co.uk");
  EXPECT_EQ(pslh_registrable_domain(psl, "co.uk"), nullptr);

  EXPECT_EQ(pslh_same_site(psl, "a.example.com", "b.example.com"), 1);
  EXPECT_EQ(pslh_same_site(psl, "a.myshopify.com", "b.myshopify.com"), 0);
}

TEST(CApiTest, LoadFromData) {
  const std::string file = "com\nuk\nco.uk\n";
  pslh_ctx_t* psl = pslh_load_from_data(file.data(), file.size());
  ASSERT_NE(psl, nullptr);
  EXPECT_EQ(pslh_rule_count(psl), 3u);
  EXPECT_EQ(take(pslh_registrable_domain(psl, "shop.example.co.uk")), "example.co.uk");
  pslh_free(psl);
}

TEST(CApiTest, LoadRejectsBadData) {
  const std::string bad = "a..b\n";
  EXPECT_EQ(pslh_load_from_data(bad.data(), bad.size()), nullptr);
  EXPECT_EQ(pslh_load_from_data(nullptr, 0), nullptr);
}

TEST(CApiTest, NullSafety) {
  EXPECT_EQ(pslh_is_public_suffix(nullptr, "com"), 0);
  EXPECT_EQ(pslh_is_public_suffix(pslh_builtin(), nullptr), 0);
  EXPECT_EQ(pslh_registrable_domain(nullptr, "x.com"), nullptr);
  EXPECT_EQ(pslh_unregistrable_domain(pslh_builtin(), ""), nullptr);
  EXPECT_EQ(pslh_same_site(pslh_builtin(), nullptr, "x.com"), 0);
  EXPECT_EQ(pslh_rule_count(nullptr), 0u);
  pslh_free(nullptr);          // no-ops
  pslh_free_string(nullptr);
}

}  // namespace
