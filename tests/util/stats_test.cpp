#include "psl/util/stats.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace psl::util {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_EQ(mean({}), 0.0);
  const std::vector<double> xs{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(StatsTest, StddevBasics) {
  EXPECT_EQ(stddev({}), 0.0);
  const std::vector<double> one{5.0};
  EXPECT_EQ(stddev(one), 0.0);
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stddev(xs), 2.0);  // classic textbook example
}

TEST(StatsTest, MedianOddAndEven) {
  const std::vector<double> odd{9, 1, 5};
  EXPECT_DOUBLE_EQ(median(odd), 5.0);
  const std::vector<double> even{1, 2, 3, 10};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
  EXPECT_EQ(median({}), 0.0);
}

TEST(StatsTest, MedianUnaffectedByOrder) {
  const std::vector<double> a{825, 1596, 746, 2070, 31};
  const std::vector<double> b{31, 746, 825, 1596, 2070};
  EXPECT_DOUBLE_EQ(median(a), median(b));
  EXPECT_DOUBLE_EQ(median(a), 825.0);
}

TEST(StatsTest, PercentileEndpoints) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(StatsTest, PercentileInterpolates) {
  const std::vector<double> xs{0, 10};
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 75), 7.5);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const std::vector<double> ys{2, 4, 6, 8, 10};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg{10, 8, 6, 4, 2};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateInputs) {
  const std::vector<double> xs{1, 2, 3};
  const std::vector<double> constant{5, 5, 5};
  EXPECT_EQ(pearson(xs, constant), 0.0);
  const std::vector<double> short_ys{1, 2};
  EXPECT_EQ(pearson(xs, short_ys), 0.0);  // length mismatch
  EXPECT_EQ(pearson({}, {}), 0.0);
}

TEST(StatsTest, PearsonUncorrelatedNearZero) {
  // A deterministic "uncorrelated" pattern.
  std::vector<double> xs, ys;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(i);
    ys.push_back((i * 7919) % 1000);
  }
  EXPECT_LT(std::abs(pearson(xs, ys)), 0.1);
}

TEST(EcdfTest, StepValues) {
  const std::vector<double> xs{1, 2, 2, 3};
  const Ecdf ecdf(xs);
  EXPECT_DOUBLE_EQ(ecdf.at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.at(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.at(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.at(3.0), 1.0);
  EXPECT_DOUBLE_EQ(ecdf.at(99.0), 1.0);
}

TEST(EcdfTest, CurveIsMonotoneAndCovers) {
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) xs.push_back((i * 37) % 100);
  const Ecdf ecdf(xs);
  const auto curve = ecdf.curve(50);
  ASSERT_EQ(curve.size(), 50u);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].second, curve[i - 1].second);
    EXPECT_GE(curve[i].first, curve[i - 1].first);
  }
  EXPECT_DOUBLE_EQ(curve.back().second, 1.0);
}

TEST(EcdfTest, EmptyInputs) {
  const Ecdf ecdf(std::vector<double>{});
  EXPECT_EQ(ecdf.at(1.0), 0.0);
  EXPECT_TRUE(ecdf.curve(10).empty());
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);   // bin 0
  h.add(9.9);   // bin 4
  h.add(-3.0);  // clamps to bin 0
  h.add(42.0);  // clamps to bin 4
  h.add(5.0);   // bin 2
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.count(1), 0u);
}

TEST(HistogramTest, BinBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_low(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_high(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_low(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_high(4), 10.0);
}

}  // namespace
}  // namespace psl::util
