#include "psl/util/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace psl::util {
namespace {

TEST(ZipfTest, SingleElementAlwaysRankZero) {
  ZipfSampler z(1, 1.0);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(rng), 0u);
}

TEST(ZipfTest, ProbabilitiesSumToOne) {
  ZipfSampler z(1000, 0.9);
  double total = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) total += z.probability(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, ProbabilityDecreasesWithRank) {
  ZipfSampler z(100, 1.1);
  for (std::size_t k = 1; k < z.size(); ++k) {
    EXPECT_GT(z.probability(k - 1), z.probability(k));
  }
}

TEST(ZipfTest, ProbabilityRatioMatchesExponent) {
  const double s = 1.3;
  ZipfSampler z(50, s);
  // P(1)/P(2) should be 2^s.
  EXPECT_NEAR(z.probability(0) / z.probability(1), std::pow(2.0, s), 1e-9);
  EXPECT_NEAR(z.probability(1) / z.probability(3), std::pow(2.0, s), 1e-9);
}

TEST(ZipfTest, OutOfRangeRankHasZeroProbability) {
  ZipfSampler z(10, 1.0);
  EXPECT_EQ(z.probability(10), 0.0);
  EXPECT_EQ(z.probability(1000), 0.0);
}

TEST(ZipfTest, EmpiricalFrequenciesTrackTheory) {
  ZipfSampler z(20, 1.0);
  Rng rng(99);
  std::vector<int> counts(20, 0);
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) ++counts[z.sample(rng)];
  for (std::size_t k = 0; k < 20; ++k) {
    const double expected = z.probability(k) * kDraws;
    EXPECT_NEAR(counts[k], expected, 5.0 * std::sqrt(expected) + 10.0) << "rank " << k;
  }
}

TEST(ZipfTest, SamplesAlwaysInRange) {
  ZipfSampler z(37, 0.7);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.sample(rng), 37u);
}

TEST(ZipfTest, HigherExponentConcentratesMass) {
  ZipfSampler flat(100, 0.5);
  ZipfSampler steep(100, 2.0);
  EXPECT_LT(flat.probability(0), steep.probability(0));
}

}  // namespace
}  // namespace psl::util
