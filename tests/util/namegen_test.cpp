#include "psl/util/namegen.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace psl::util {
namespace {

TEST(NameGenTest, ProducesUniqueLabels) {
  NameGen gen{Rng(1)};
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 20000; ++i) {
    EXPECT_TRUE(seen.insert(gen.fresh()).second) << "duplicate at " << i;
  }
}

TEST(NameGenTest, DeterministicForSameSeed) {
  NameGen a{Rng(7)};
  NameGen b{Rng(7)};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.fresh(), b.fresh());
}

TEST(NameGenTest, LabelsAreValidLdh) {
  NameGen gen{Rng(3)};
  for (int i = 0; i < 5000; ++i) {
    const std::string label = gen.fresh();
    ASSERT_FALSE(label.empty());
    EXPECT_LE(label.size(), 63u);
    for (char c : label) {
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) << label;
    }
  }
}

TEST(NameGenTest, ReserveBlocksCollisions) {
  NameGen probe{Rng(11)};
  const std::string first = probe.fresh();

  NameGen gen{Rng(11)};
  gen.reserve(first);
  EXPECT_NE(gen.fresh(), first);
}

TEST(NameGenTest, ExhaustionFallsBackToNumericSuffix) {
  // One-syllable space is small; requesting many labels forces numeric
  // disambiguation but must stay unique.
  NameGen gen{Rng(13)};
  std::unordered_set<std::string> seen;
  for (int i = 0; i < 8000; ++i) {
    EXPECT_TRUE(seen.insert(gen.fresh(1)).second);
  }
}

TEST(NameGenTest, ProducedCounts) {
  NameGen gen{Rng(17)};
  EXPECT_EQ(gen.produced(), 0u);
  gen.fresh();
  gen.fresh();
  EXPECT_EQ(gen.produced(), 2u);
}

}  // namespace
}  // namespace psl::util
