#include "psl/util/date.hpp"

#include <gtest/gtest.h>

namespace psl::util {
namespace {

TEST(DateTest, EpochIsDayZero) {
  const Date epoch = Date::from_civil(1970, 1, 1);
  EXPECT_EQ(epoch.days_since_epoch(), 0);
  EXPECT_EQ(epoch.year(), 1970);
  EXPECT_EQ(epoch.month(), 1u);
  EXPECT_EQ(epoch.day(), 1u);
}

TEST(DateTest, KnownDayNumbers) {
  EXPECT_EQ(Date::from_civil(1970, 1, 2).days_since_epoch(), 1);
  EXPECT_EQ(Date::from_civil(1969, 12, 31).days_since_epoch(), -1);
  EXPECT_EQ(Date::from_civil(2000, 3, 1).days_since_epoch(), 11017);
  // The PSL's first version date.
  EXPECT_EQ(Date::from_civil(2007, 3, 22).days_since_epoch(), 13594);
}

TEST(DateTest, RoundTripsCivilAcrossDecades) {
  for (int year = 1995; year <= 2035; ++year) {
    for (unsigned month = 1; month <= 12; ++month) {
      const Date d = Date::from_civil(year, month, 17);
      EXPECT_EQ(d.year(), year);
      EXPECT_EQ(d.month(), month);
      EXPECT_EQ(d.day(), 17u);
    }
  }
}

TEST(DateTest, RoundTripsDayNumberExhaustively) {
  // Every day across 2000-2030 survives days -> civil -> days.
  const Date start = Date::from_civil(2000, 1, 1);
  const Date end = Date::from_civil(2030, 12, 31);
  for (Date d = start; d <= end; d += 1) {
    EXPECT_EQ(Date::from_civil(d.year(), d.month(), d.day()), d);
  }
}

TEST(DateTest, LeapYearHandling) {
  EXPECT_TRUE(Date::is_valid_civil(2000, 2, 29));   // divisible by 400
  EXPECT_FALSE(Date::is_valid_civil(1900, 2, 29));  // divisible by 100 only
  EXPECT_TRUE(Date::is_valid_civil(2020, 2, 29));
  EXPECT_FALSE(Date::is_valid_civil(2021, 2, 29));
  EXPECT_EQ(Date::from_civil(2020, 2, 29) + 1, Date::from_civil(2020, 3, 1));
  EXPECT_EQ(Date::from_civil(2021, 2, 28) + 1, Date::from_civil(2021, 3, 1));
}

TEST(DateTest, ValidityRejectsOutOfRangeFields) {
  EXPECT_FALSE(Date::is_valid_civil(2020, 0, 1));
  EXPECT_FALSE(Date::is_valid_civil(2020, 13, 1));
  EXPECT_FALSE(Date::is_valid_civil(2020, 4, 31));
  EXPECT_FALSE(Date::is_valid_civil(2020, 1, 0));
  EXPECT_TRUE(Date::is_valid_civil(2020, 12, 31));
}

TEST(DateTest, ArithmeticAndDifference) {
  const Date a = Date::from_civil(2022, 12, 8);  // the paper's t
  const Date b = Date::from_civil(2018, 7, 22);
  EXPECT_EQ(a - b, 1600);
  EXPECT_EQ(b + 1600, a);
  Date c = b;
  c += 1600;
  EXPECT_EQ(c, a);
  c -= 1600;
  EXPECT_EQ(c, b);
}

TEST(DateTest, Ordering) {
  EXPECT_LT(Date::from_civil(2007, 3, 22), Date::from_civil(2022, 10, 20));
  EXPECT_GT(Date::from_civil(2022, 10, 20), Date::from_civil(2022, 10, 19));
  EXPECT_EQ(Date::from_civil(2010, 6, 1), Date::from_civil(2010, 6, 1));
}

TEST(DateTest, ToStringPadsFields) {
  EXPECT_EQ(Date::from_civil(2007, 3, 2).to_string(), "2007-03-02");
  EXPECT_EQ(Date::from_civil(2022, 12, 8).to_string(), "2022-12-08");
}

TEST(DateTest, ParseAcceptsCanonicalForm) {
  const auto d = Date::parse("2019-02-28");
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(*d, Date::from_civil(2019, 2, 28));
}

TEST(DateTest, ParseRoundTripsToString) {
  for (const char* s : {"2007-03-22", "2012-07-15", "2022-10-20", "1999-12-31"}) {
    const auto d = Date::parse(s);
    ASSERT_TRUE(d.has_value()) << s;
    EXPECT_EQ(d->to_string(), s);
  }
}

TEST(DateTest, ParseRejectsMalformedInput) {
  EXPECT_FALSE(Date::parse(""));
  EXPECT_FALSE(Date::parse("2020-1-01"));
  EXPECT_FALSE(Date::parse("2020/01/01"));
  EXPECT_FALSE(Date::parse("2020-01-01x"));
  EXPECT_FALSE(Date::parse("20-01-0111"));
  EXPECT_FALSE(Date::parse("2020-13-01"));
  EXPECT_FALSE(Date::parse("2020-02-30"));
  EXPECT_FALSE(Date::parse("abcd-ef-gh"));
}

TEST(DateTest, WeekdayMatchesKnownDates) {
  EXPECT_EQ(Date::from_civil(1970, 1, 1).weekday(), 4u);   // Thursday
  EXPECT_EQ(Date::from_civil(2022, 12, 8).weekday(), 4u);  // Thursday
  EXPECT_EQ(Date::from_civil(2023, 10, 24).weekday(), 2u); // Tuesday (IMC '23 day 1)
}

TEST(DateTest, FractionalYearIsMonotonic) {
  EXPECT_LT(Date::from_civil(2007, 1, 1).fractional_year(),
            Date::from_civil(2007, 12, 31).fractional_year());
  EXPECT_NEAR(Date::from_civil(2007, 1, 1).fractional_year(), 2007.0, 0.01);
}

TEST(DateTest, MeasurementDateConstant) {
  EXPECT_EQ(kMeasurementDate.to_string(), "2022-12-08");
}

}  // namespace
}  // namespace psl::util
