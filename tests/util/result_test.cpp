#include "psl/util/result.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace psl::util {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = make_error("x.bad", "something went wrong");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error().code, "x.bad");
  EXPECT_EQ(r.error().message, "something went wrong");
}

TEST(ResultTest, ValueOr) {
  Result<std::string> good = std::string("hit");
  Result<std::string> bad = make_error("e", "m");
  EXPECT_EQ(good.value_or("fallback"), "hit");
  EXPECT_EQ(bad.value_or("fallback"), "fallback");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, MutableAccess) {
  Result<std::vector<int>> r = std::vector<int>{1, 2};
  r->push_back(3);
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r = std::vector<int>{1, 2, 3};
  const std::vector<int> moved = *std::move(r);
  EXPECT_EQ(moved.size(), 3u);
}

TEST(ResultTest, ErrorEquality) {
  EXPECT_EQ(make_error("a", "b"), make_error("a", "b"));
  EXPECT_NE(make_error("a", "b"), make_error("a", "c"));
}

}  // namespace
}  // namespace psl::util
