#include "psl/util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <array>
#include <set>
#include <vector>

namespace psl::util {
namespace {

TEST(SplitMix64Test, MatchesReferenceVector) {
  // Reference outputs for seed 1234567 from the canonical SplitMix64.
  SplitMix64 sm(1234567);
  EXPECT_EQ(sm.next(), 6457827717110365317ULL);
  EXPECT_EQ(sm.next(), 3203168211198807973ULL);
  EXPECT_EQ(sm.next(), 9817491932198370423ULL);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(11);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(10)];
  for (int count : buckets) {
    EXPECT_GT(count, kDraws / 10 - 800);
    EXPECT_LT(count, kDraws / 10 + 800);
  }
}

TEST(RngTest, BetweenIsInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, Uniform01InHalfOpenInterval) {
  Rng rng(17);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(19);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.25);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.25, 0.01);
}

TEST(RngTest, NormalHasZeroMeanUnitVariance) {
  Rng rng(23);
  double sum = 0.0, sum_sq = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, LognormalMedianNearExpMu) {
  Rng rng(29);
  std::vector<double> xs(20001);
  for (double& x : xs) x = rng.lognormal(std::log(915.0), 0.5);
  std::nth_element(xs.begin(), xs.begin() + 10000, xs.end());
  EXPECT_NEAR(xs[10000], 915.0, 40.0);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  auto sorted = v;
  rng.shuffle(v);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), sorted.begin()));
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  const auto original = v;
  rng.shuffle(v);
  EXPECT_NE(v, original);
}

TEST(RngTest, ForkProducesIndependentStreams) {
  Rng parent(41);
  Rng child_a = parent.fork(1);
  Rng child_b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (child_a() == child_b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~0ULL);
}

}  // namespace
}  // namespace psl::util
