#include "psl/util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace psl::util {
namespace {

TEST(TextTableTest, AlignsColumns) {
  TextTable t({"eTLD", "Hosts"});
  t.add_row({"myshopify.com", "7848"});
  t.add_row({"web.app", "871"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("eTLD"), std::string::npos);
  EXPECT_NE(out.find("myshopify.com  7848"), std::string::npos);
  // Narrow value padded to column width.
  EXPECT_NE(out.find("web.app        871"), std::string::npos);
}

TEST(TextTableTest, HeaderRuleSpansColumns) {
  TextTable t({"a", "bb"});
  t.add_row({"x", "y"});
  std::ostringstream os;
  t.print(os);
  // Rule line: width(a)=1 + 2 + width(bb)=2 -> 5 dashes.
  EXPECT_NE(os.str().find("-----\n"), std::string::npos);
}

TEST(TextTableTest, RowAndColumnCounts) {
  TextTable t({"x", "y", "z"});
  EXPECT_EQ(t.column_count(), 3u);
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.row_count(), 1u);
}

TEST(TextTableTest, CsvEscapesSpecials) {
  TextTable t({"name", "note"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quo\"te", "line\nbreak"});
  std::ostringstream os;
  t.print_csv(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name,note\n"), std::string::npos);
  EXPECT_NE(out.find("plain,\"with,comma\"\n"), std::string::npos);
  EXPECT_NE(out.find("\"quo\"\"te\""), std::string::npos);
  EXPECT_NE(out.find("\"line\nbreak\""), std::string::npos);
}

TEST(FormatTest, FmtDouble) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(2.0, 0), "2");
  EXPECT_EQ(fmt_double(-0.5, 1), "-0.5");
}

TEST(FormatTest, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.249, 1), "24.9%");
  EXPECT_EQ(fmt_percent(0.128, 1), "12.8%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace psl::util
