#include "psl/util/strings.hpp"

#include <gtest/gtest.h>

namespace psl::util {
namespace {

TEST(StringsTest, ToLowerAsciiOnly) {
  EXPECT_EQ(to_lower("WWW.Example.COM"), "www.example.com");
  EXPECT_EQ(to_lower("already-lower_09"), "already-lower_09");
  EXPECT_EQ(to_lower(""), "");
  // Non-ASCII bytes pass through untouched.
  EXPECT_EQ(to_lower("\xC3\x9C"), "\xC3\x9C");
}

TEST(StringsTest, SplitKeepsEmptyFields) {
  const auto parts = split("a..b", '.');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitEdgeCases) {
  EXPECT_EQ(split("", '.').size(), 1u);
  EXPECT_EQ(split("nodots", '.').size(), 1u);
  const auto leading = split(".a", '.');
  ASSERT_EQ(leading.size(), 2u);
  EXPECT_EQ(leading[0], "");
  const auto trailing = split("a.", '.');
  ASSERT_EQ(trailing.size(), 2u);
  EXPECT_EQ(trailing[1], "");
}

TEST(StringsTest, JoinInvertsSplit) {
  const std::string host = "maps.google.co.uk";
  EXPECT_EQ(join(split(host, '.'), "."), host);
  EXPECT_EQ(join(std::vector<std::string>{"co", "uk"}, "."), "co.uk");
  EXPECT_EQ(join(std::vector<std::string>{}, "."), "");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\t\r\ncookie\n"), "cookie");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("no-trim"), "no-trim");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("xn--abc", "xn--"));
  EXPECT_FALSE(starts_with("xn", "xn--"));
  EXPECT_TRUE(ends_with("foo.github.io", "github.io"));
  EXPECT_FALSE(ends_with("io", "github.io"));
  EXPECT_TRUE(ends_with("x", ""));
}

TEST(StringsTest, HostMatchesDomain) {
  EXPECT_TRUE(host_matches_domain("example.com", "example.com"));
  EXPECT_TRUE(host_matches_domain("www.example.com", "example.com"));
  EXPECT_TRUE(host_matches_domain("a.b.example.com", "example.com"));
  // The classic suffix-without-dot trap: badexample.com must NOT match.
  EXPECT_FALSE(host_matches_domain("badexample.com", "example.com"));
  EXPECT_FALSE(host_matches_domain("example.com", "www.example.com"));
  EXPECT_FALSE(host_matches_domain("example.com", ""));
  EXPECT_FALSE(host_matches_domain("com", "example.com"));
}

TEST(StringsTest, LabelCount) {
  EXPECT_EQ(label_count(""), 0u);
  EXPECT_EQ(label_count("com"), 1u);
  EXPECT_EQ(label_count("co.uk"), 2u);
  EXPECT_EQ(label_count("a.b.c.d"), 4u);
}

TEST(StringsTest, WithCommas) {
  EXPECT_EQ(with_commas(0), "0");
  EXPECT_EQ(with_commas(999), "999");
  EXPECT_EQ(with_commas(1000), "1,000");
  EXPECT_EQ(with_commas(50750), "50,750");
  EXPECT_EQ(with_commas(359966), "359,966");
  EXPECT_EQ(with_commas(1234567890LL), "1,234,567,890");
  EXPECT_EQ(with_commas(-1234), "-1,234");
}

}  // namespace
}  // namespace psl::util
