#include "psl/archive/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "psl/history/timeline.hpp"

namespace psl::archive {
namespace {

const Corpus& tiny_corpus() {
  static const history::History h = history::generate_history(history::TimelineSpec::tiny());
  static const Corpus c = generate_corpus(CorpusSpec::tiny(), h);
  return c;
}

TEST(CorpusCsvTest, RoundTripsExactly) {
  std::stringstream buffer;
  write_csv(tiny_corpus(), buffer);

  const auto back = read_csv(buffer);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back->hostnames(), tiny_corpus().hostnames());
  ASSERT_EQ(back->request_count(), tiny_corpus().request_count());
  for (std::size_t i = 0; i < back->request_count(); ++i) {
    ASSERT_EQ(back->requests()[i].page_host, tiny_corpus().requests()[i].page_host);
    ASSERT_EQ(back->requests()[i].resource_host, tiny_corpus().requests()[i].resource_host);
  }
}

TEST(CorpusCsvTest, EmptyCorpus) {
  std::stringstream buffer;
  write_csv(Corpus({}, {}), buffer);
  const auto back = read_csv(buffer);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->unique_host_count(), 0u);
}

TEST(CorpusCsvTest, RejectsMalformedInput) {
  const auto fail = [](std::string_view text) {
    std::stringstream in{std::string(text)};
    return !read_csv(in).ok();
  };
  EXPECT_TRUE(fail(""));
  EXPECT_TRUE(fail("0,a.com\n"));                       // data before a section
  EXPECT_TRUE(fail("#hosts\nnot-a-row\n"));             // missing comma
  EXPECT_TRUE(fail("#hosts\n5,a.com\n"));               // non-dense id
  EXPECT_TRUE(fail("#hosts\n0,\n"));                    // empty hostname
  EXPECT_TRUE(fail("#hosts\n0,a.com\n#requests\n0,7\n"));  // id out of range
  EXPECT_TRUE(fail("#hosts\n0,a.com\n#requests\nx,0\n"));  // non-numeric
}

TEST(CorpusCsvTest, AcceptsBlankLines) {
  std::stringstream in{"#hosts\n0,a.com\n\n1,b.com\n#requests\n\n0,1\n"};
  const auto back = read_csv(in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->unique_host_count(), 2u);
  EXPECT_EQ(back->request_count(), 1u);
}

}  // namespace
}  // namespace psl::archive
