#include "psl/archive/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "psl/history/timeline.hpp"
#include "psl/obs/metrics.hpp"
#include "psl/util/rng.hpp"

namespace psl::archive {
namespace {

const Corpus& tiny_corpus() {
  static const history::History h = history::generate_history(history::TimelineSpec::tiny());
  static const Corpus c = generate_corpus(CorpusSpec::tiny(), h);
  return c;
}

TEST(CorpusCsvTest, RoundTripsExactly) {
  std::stringstream buffer;
  write_csv(tiny_corpus(), buffer);

  const auto back = read_csv(buffer);
  ASSERT_TRUE(back.ok()) << back.error().message;
  EXPECT_EQ(back->hostnames(), tiny_corpus().hostnames());
  ASSERT_EQ(back->request_count(), tiny_corpus().request_count());
  for (std::size_t i = 0; i < back->request_count(); ++i) {
    ASSERT_EQ(back->requests()[i].page_host, tiny_corpus().requests()[i].page_host);
    ASSERT_EQ(back->requests()[i].resource_host, tiny_corpus().requests()[i].resource_host);
  }
}

TEST(CorpusCsvTest, EmptyCorpus) {
  std::stringstream buffer;
  write_csv(Corpus({}, {}), buffer);
  const auto back = read_csv(buffer);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->unique_host_count(), 0u);
}

TEST(CorpusCsvTest, RejectsMalformedInput) {
  const auto fail = [](std::string_view text) {
    std::stringstream in{std::string(text)};
    return !read_csv(in).ok();
  };
  EXPECT_TRUE(fail(""));
  EXPECT_TRUE(fail("0,a.com\n"));                       // data before a section
  EXPECT_TRUE(fail("#hosts\nnot-a-row\n"));             // missing comma
  EXPECT_TRUE(fail("#hosts\n5,a.com\n"));               // non-dense id
  EXPECT_TRUE(fail("#hosts\n0,\n"));                    // empty hostname
  EXPECT_TRUE(fail("#hosts\n0,a.com\n#requests\n0,7\n"));  // id out of range
  EXPECT_TRUE(fail("#hosts\n0,a.com\n#requests\nx,0\n"));  // non-numeric
}

TEST(CorpusCsvTest, AcceptsBlankLines) {
  std::stringstream in{"#hosts\n0,a.com\n\n1,b.com\n#requests\n\n0,1\n"};
  const auto back = read_csv(in);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->unique_host_count(), 2u);
  EXPECT_EQ(back->request_count(), 1u);
}

// --- section structure: each header once, #hosts first ----------------------

TEST(CorpusCsvTest, RejectsRepeatedHostsHeader) {
  // A #hosts header mid-stream used to silently reset section state; every
  // later "request" row would then be parsed as a host row.
  std::stringstream in{"#hosts\n0,a.com\n#requests\n0,0\n#hosts\n1,b.com\n"};
  const auto result = read_csv(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "csv.duplicate-section");

  std::stringstream twice{"#hosts\n0,a.com\n#hosts\n1,b.com\n"};
  EXPECT_EQ(read_csv(twice).error().code, "csv.duplicate-section");
}

TEST(CorpusCsvTest, RejectsRequestsBeforeHosts) {
  std::stringstream in{"#requests\n0,0\n"};
  const auto result = read_csv(in);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, "csv.requests-before-hosts");

  std::stringstream repeated{"#hosts\n0,a.com\n#requests\n#requests\n0,0\n"};
  EXPECT_EQ(read_csv(repeated).error().code, "csv.duplicate-section");
}

TEST(CorpusCsvTest, SectionErrorsAreFatalEvenInRecoverMode) {
  CsvOptions recover;
  recover.recover = true;
  std::stringstream in{"#hosts\n0,a.com\n#requests\n0,0\n#hosts\n1,b.com\n"};
  EXPECT_FALSE(read_csv(in, recover).ok());
}

// --- recover mode: skip malformed rows, account for every skip --------------

TEST(CorpusCsvRecoverTest, SkipsMalformedRowsAndReportsExactLines) {
  const std::string file =
      "#hosts\n"          // line 1
      "0,a.com\n"         // line 2
      "not-a-row\n"       // line 3: missing comma
      "x,b.com\n"         // line 4: bad id
      "2,\n"              // line 5: empty hostname
      "3,c.com\n"         // line 6 (kept despite the gap at id 2)
      "0,dup.com\n"       // line 7: duplicate id
      "#requests\n"       // line 8
      "0,3\n"             // line 9
      "0,2\n"             // line 10: id 2 was never defined
      "9,0\n"             // line 11: id 9 out of range
      "z,0\n"             // line 12: bad number
      "3,0\n";            // line 13

  obs::MetricsRegistry registry;
  CsvOptions options;
  options.recover = true;
  options.metrics = &registry;
  std::stringstream in{file};
  const auto corpus = read_csv(in, options);
  ASSERT_TRUE(corpus.ok()) << corpus.error().message;

  ASSERT_EQ(corpus->unique_host_count(), 2u);
  EXPECT_EQ(corpus->hostname(0), "a.com");
  EXPECT_EQ(corpus->hostname(1), "c.com");  // file id 3 -> corpus id 1
  ASSERT_EQ(corpus->request_count(), 2u);
  EXPECT_EQ(corpus->requests()[0].page_host, 0u);
  EXPECT_EQ(corpus->requests()[0].resource_host, 1u);
  EXPECT_EQ(corpus->requests()[1].page_host, 1u);
  EXPECT_EQ(corpus->requests()[1].resource_host, 0u);

  const auto diagnostics = registry.diagnostics();
  ASSERT_EQ(diagnostics.size(), 7u);
  EXPECT_EQ(diagnostics[0].code, "csv.bad-row");
  EXPECT_EQ(diagnostics[0].line, 3u);
  EXPECT_EQ(diagnostics[1].code, "csv.bad-number");
  EXPECT_EQ(diagnostics[1].line, 4u);
  EXPECT_EQ(diagnostics[2].code, "csv.empty-host");
  EXPECT_EQ(diagnostics[2].line, 5u);
  EXPECT_EQ(diagnostics[3].code, "csv.duplicate-host-id");
  EXPECT_EQ(diagnostics[3].line, 7u);
  EXPECT_EQ(diagnostics[4].code, "csv.bad-request-id");
  EXPECT_EQ(diagnostics[4].line, 10u);
  EXPECT_EQ(diagnostics[5].code, "csv.bad-request-id");
  EXPECT_EQ(diagnostics[5].line, 11u);
  EXPECT_EQ(diagnostics[6].code, "csv.bad-number");
  EXPECT_EQ(diagnostics[6].line, 12u);
  EXPECT_EQ(registry.counter("csv.rows_skipped").value(), 7);
  EXPECT_EQ(registry.counter("csv.hosts").value(), 2);
  EXPECT_EQ(registry.counter("csv.requests").value(), 2);
}

TEST(CorpusCsvRecoverTest, BadNumberRequestRowIsAlsoDiagnosed) {
  obs::MetricsRegistry registry;
  CsvOptions options;
  options.recover = true;
  options.metrics = &registry;
  std::stringstream in{"#hosts\n0,a.com\n#requests\nz,0\n"};
  ASSERT_TRUE(read_csv(in, options).ok());
  const auto diagnostics = registry.diagnostics();
  ASSERT_EQ(diagnostics.size(), 1u);
  EXPECT_EQ(diagnostics[0].code, "csv.bad-number");
  EXPECT_EQ(diagnostics[0].line, 4u);
}

TEST(CorpusCsvRecoverTest, CleanFileMatchesStrictRead) {
  std::stringstream strict_in;
  write_csv(tiny_corpus(), strict_in);
  std::stringstream recover_in{strict_in.str()};

  obs::MetricsRegistry registry;
  CsvOptions options;
  options.recover = true;
  options.metrics = &registry;
  const auto strict = read_csv(strict_in);
  const auto recovered = read_csv(recover_in, options);
  ASSERT_TRUE(strict.ok());
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->hostnames(), strict->hostnames());
  ASSERT_EQ(recovered->request_count(), strict->request_count());
  EXPECT_EQ(registry.counter("csv.rows_skipped").value(), 0);
  EXPECT_TRUE(registry.diagnostics().empty());
}

TEST(CorpusCsvRecoverTest, WorksWithoutARegistry) {
  CsvOptions options;
  options.recover = true;
  std::stringstream in{"#hosts\n0,a.com\nbroken\n#requests\n0,0\n"};
  const auto corpus = read_csv(in, options);
  ASSERT_TRUE(corpus.ok());
  EXPECT_EQ(corpus->unique_host_count(), 1u);
  EXPECT_EQ(corpus->request_count(), 1u);
}

// --- write -> read round-trip property --------------------------------------

TEST(CorpusCsvPropertyTest, RandomCorporaRoundTripExactly) {
  util::Rng rng(20230805);
  static constexpr char kHostAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789.-";
  for (int round = 0; round < 50; ++round) {
    const std::size_t host_count = 1 + rng.below(40);
    std::vector<std::string> hosts;
    for (std::size_t i = 0; i < host_count; ++i) {
      std::string host;
      const std::size_t len = 1 + rng.below(30);
      for (std::size_t c = 0; c < len; ++c) {
        host.push_back(kHostAlphabet[rng.below(sizeof kHostAlphabet - 1)]);
      }
      hosts.push_back(std::move(host));
    }
    std::vector<Request> requests;
    const std::size_t request_count = rng.below(120);
    for (std::size_t i = 0; i < request_count; ++i) {
      requests.push_back(Request{static_cast<HostId>(rng.below(host_count)),
                                 static_cast<HostId>(rng.below(host_count))});
    }
    const Corpus original(std::move(hosts), std::move(requests));

    std::stringstream buffer;
    write_csv(original, buffer);
    const auto strict = read_csv(buffer);
    ASSERT_TRUE(strict.ok()) << strict.error().message;
    EXPECT_EQ(strict->hostnames(), original.hostnames());
    ASSERT_EQ(strict->request_count(), original.request_count());
    for (std::size_t i = 0; i < original.request_count(); ++i) {
      ASSERT_EQ(strict->requests()[i].page_host, original.requests()[i].page_host);
      ASSERT_EQ(strict->requests()[i].resource_host, original.requests()[i].resource_host);
    }

    // Recover mode must agree bit-for-bit on a clean file.
    std::stringstream again{buffer.str()};
    CsvOptions options;
    options.recover = true;
    const auto recovered = read_csv(again, options);
    ASSERT_TRUE(recovered.ok());
    EXPECT_EQ(recovered->hostnames(), strict->hostnames());
  }
}

}  // namespace
}  // namespace psl::archive
