#include "psl/archive/corpus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "psl/history/timeline.hpp"
#include "psl/util/strings.hpp"

namespace psl::archive {
namespace {

const history::History& tiny_hist() {
  static const history::History h = history::generate_history(history::TimelineSpec::tiny());
  return h;
}

const Corpus& tiny_corpus() {
  static const Corpus c = generate_corpus(CorpusSpec::tiny(), tiny_hist());
  return c;
}

TEST(CorpusTest, ProducesHostsAndRequests) {
  const Corpus& c = tiny_corpus();
  EXPECT_GT(c.unique_host_count(), 500u);
  EXPECT_GT(c.request_count(), 2000u);
}

TEST(CorpusTest, HostnamesAreUnique) {
  const Corpus& c = tiny_corpus();
  std::unordered_set<std::string> seen(c.hostnames().begin(), c.hostnames().end());
  EXPECT_EQ(seen.size(), c.unique_host_count());
}

TEST(CorpusTest, RequestsReferenceValidHosts) {
  const Corpus& c = tiny_corpus();
  for (const Request& r : c.requests()) {
    ASSERT_LT(r.page_host, c.unique_host_count());
    ASSERT_LT(r.resource_host, c.unique_host_count());
  }
}

TEST(CorpusTest, DeterministicForSameSeed) {
  const Corpus a = generate_corpus(CorpusSpec::tiny(), tiny_hist());
  const Corpus b = generate_corpus(CorpusSpec::tiny(), tiny_hist());
  ASSERT_EQ(a.unique_host_count(), b.unique_host_count());
  EXPECT_EQ(a.hostnames(), b.hostnames());
  ASSERT_EQ(a.request_count(), b.request_count());
  for (std::size_t i = 0; i < a.request_count(); ++i) {
    ASSERT_EQ(a.requests()[i].page_host, b.requests()[i].page_host);
    ASSERT_EQ(a.requests()[i].resource_host, b.requests()[i].resource_host);
  }
}

TEST(CorpusTest, SeedChangesCorpus) {
  CorpusSpec spec = CorpusSpec::tiny();
  spec.seed += 1;
  const Corpus other = generate_corpus(spec, tiny_hist());
  EXPECT_NE(other.hostnames(), tiny_corpus().hostnames());
}

TEST(CorpusTest, EveryPageEmitsDocumentRequest) {
  const Corpus& c = tiny_corpus();
  std::size_t self_requests = 0;
  for (const Request& r : c.requests()) {
    if (r.page_host == r.resource_host) ++self_requests;
  }
  EXPECT_GE(self_requests, CorpusSpec::tiny().page_views);
}

TEST(CorpusTest, ContainsPlatformTenantsProportionalToWeights) {
  // At scale 1.0 the corpus holds ~tenant_weight hosts per anchor platform;
  // tiny uses 0.02. Check the biggest anchor is present and roughly scaled.
  const Corpus& c = tiny_corpus();
  std::unordered_map<std::string, std::size_t> per_suffix;
  for (const std::string& host : c.hostnames()) {
    for (const auto& anchor : history::platform_anchors()) {
      if (util::host_matches_domain(host, std::string(anchor.rule_text)) &&
          host != anchor.rule_text) {
        ++per_suffix[std::string(anchor.rule_text)];
      }
    }
  }
  // myshopify.com: 7848 * 0.02 ~ 157 (plus 1-2 shared hosts).
  const double expected = 7848 * 0.02;
  EXPECT_NEAR(per_suffix["myshopify.com"], expected, expected * 0.2 + 5);
  // Ordering: myshopify > web.app, mirroring Table 2.
  EXPECT_GT(per_suffix["myshopify.com"], per_suffix["web.app"]);
}

TEST(CorpusTest, ZeroTenantScaleOmitsPlatformHosts) {
  CorpusSpec spec = CorpusSpec::tiny();
  spec.platform_tenant_scale = 0.0;
  spec.generic_platform_tenant_mean = 0.0;
  const Corpus c = generate_corpus(spec, tiny_hist());
  for (const std::string& host : c.hostnames()) {
    EXPECT_FALSE(util::host_matches_domain(host, "myshopify.com")) << host;
  }
}

TEST(CorpusTest, ContainsInstitutionalCcHosts) {
  // parliament.uk-style hosts under retired-wildcard ccTLDs must exist —
  // they carry the Fig. 6 early-drop signal.
  const Corpus& c = tiny_corpus();
  std::size_t direct_cc = 0;
  for (const std::string& host : c.hostnames()) {
    const auto labels = util::split(host, '.');
    if (labels.size() == 2 &&
        (labels[1] == "uk" || labels[1] == "jp" || labels[1] == "nz" || labels[1] == "za")) {
      ++direct_cc;
    }
  }
  EXPECT_GT(direct_cc, 10u);
}

TEST(CorpusTest, ContainsIpLiteralHosts) {
  const Corpus& c = tiny_corpus();
  const bool has_ip = std::any_of(
      c.hostnames().begin(), c.hostnames().end(), [](const std::string& h) {
        return h.find_first_not_of("0123456789.") == std::string::npos;
      });
  EXPECT_TRUE(has_ip);
}

TEST(CorpusTest, HostnamesAreWellFormedDnsNamesOrIps) {
  const Corpus& c = tiny_corpus();
  for (const std::string& host : c.hostnames()) {
    ASSERT_FALSE(host.empty());
    ASSERT_EQ(host, util::to_lower(host)) << host;
    ASSERT_EQ(host.find(".."), std::string::npos) << host;
    ASSERT_NE(host.front(), '.') << host;
    ASSERT_NE(host.back(), '.') << host;
  }
}

TEST(CorpusTest, ThirdPartyRequestsExist) {
  // Under the newest list a solid share of requests crosses site boundaries.
  const Corpus& c = tiny_corpus();
  const List& latest = tiny_hist().latest();
  std::size_t third = 0, sample = 0;
  for (std::size_t i = 0; i < c.request_count(); i += 7) {
    const Request& r = c.requests()[i];
    ++sample;
    if (!latest.same_site(c.hostname(r.page_host), c.hostname(r.resource_host))) ++third;
  }
  const double frac = static_cast<double>(third) / static_cast<double>(sample);
  EXPECT_GT(frac, 0.2);
  EXPECT_LT(frac, 0.8);
}

TEST(CorpusTest, HostIdsAreDense) {
  const Corpus& c = tiny_corpus();
  EXPECT_EQ(c.hostname(0), c.hostnames().front());
  EXPECT_EQ(c.hostname(static_cast<HostId>(c.unique_host_count() - 1)),
            c.hostnames().back());
}

}  // namespace
}  // namespace psl::archive
